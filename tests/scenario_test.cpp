// Tests for the scenario layer: testbed geometry, mobility helpers, flow
// routing, metrics collection, and the ablation knobs added on top of the
// paper's design.
#include <gtest/gtest.h>

#include "phy/esnr.h"
#include "scenario/experiment.h"
#include "scenario/metrics.h"
#include "scenario/testbed.h"
#include "util/units.h"

namespace wgtt::scenario {
namespace {

TEST(TestbedTest, DefaultLayoutMatchesPaper) {
  TestbedConfig cfg;
  ASSERT_EQ(cfg.ap_x.size(), 8u);
  // Dense cluster AP1-AP4 at 7.5 m; sparse stretch AP5-AP7 at ~12 m.
  EXPECT_DOUBLE_EQ(cfg.ap_x[1] - cfg.ap_x[0], 7.5);
  EXPECT_DOUBLE_EQ(cfg.ap_x[2] - cfg.ap_x[1], 7.5);
  EXPECT_GE(cfg.ap_x[5] - cfg.ap_x[4], 11.0);
  EXPECT_GE(cfg.ap_x[6] - cfg.ap_x[5], 11.0);
}

TEST(TestbedTest, RoadLengthAndTransit) {
  Testbed bed{TestbedConfig{}};
  EXPECT_DOUBLE_EQ(bed.road_length(), 65.5);
  // 95.5 m at 15 mph (6.7 m/s) ~ 14.2 s.
  EXPECT_NEAR(bed.transit_duration(15.0).to_sec(), 14.2, 0.2);
  // Static clients get a fixed observation window.
  EXPECT_DOUBLE_EQ(bed.transit_duration(0.0).to_sec(), 10.0);
}

TEST(TestbedTest, DriveMobilityDirections) {
  Testbed bed{TestbedConfig{}};
  auto fwd = bed.drive_mobility(15.0, 15.0, 0.0, +1);
  auto rev = bed.drive_mobility(15.0, 15.0, 3.0, -1);
  EXPECT_DOUBLE_EQ(fwd->position(Time::zero()).x, -15.0);
  EXPECT_GT(fwd->velocity(Time::zero()).x, 0.0);
  EXPECT_DOUBLE_EQ(rev->position(Time::zero()).x, 95.5 - 15.0);
  EXPECT_LT(rev->velocity(Time::zero()).x, 0.0);
  EXPECT_DOUBLE_EQ(rev->position(Time::zero()).y, 3.0);
}

TEST(TestbedTest, ApDevicesGetSitesInOrder) {
  Testbed bed{TestbedConfig{}};
  WgttNetwork net(bed);
  ASSERT_EQ(bed.ap_ids().size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& site = bed.channel().ap(bed.ap_ids()[i]);
    EXPECT_DOUBLE_EQ(site.position.x, bed.config().ap_x[i]);
  }
}

TEST(FlowRouterTest, DispatchesByFlowId) {
  FlowRouter router;
  int a = 0;
  int b = 0;
  router.register_flow(1, [&](const net::PacketPtr&) { ++a; });
  router.register_flow(2, [&](const net::PacketPtr&) { ++b; });
  net::Packet p;
  p.flow_id = 2;
  router.deliver(net::make_packet(p));
  p.flow_id = 9;  // unregistered: counted as dropped
  router.deliver(net::make_packet(p));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(router.dropped(), 1u);
}

TEST(FlowRouterTest, UnhandledFlowCountsAndLogs) {
  CapturingLogSink sink(LogLevel::kDebug);
  ScopedLogSink scope(&sink);
  FlowRouter router;
  net::Packet p;
  p.flow_id = 77;
  router.deliver(net::make_packet(p));
  router.deliver(net::make_packet(p));
  EXPECT_EQ(router.dropped(), 2u);
  ASSERT_EQ(sink.entries().size(), 2u);
  EXPECT_EQ(sink.entries()[0].level, LogLevel::kDebug);
  EXPECT_EQ(sink.entries()[0].component, "flow");
  EXPECT_NE(sink.entries()[0].message.find("flow 77"), std::string::npos);
}

TEST(TestbedTest, InstallsConfiguredLogSinkForItsLifetime) {
  auto sink = std::make_shared<CapturingLogSink>(LogLevel::kDebug);
  {
    TestbedConfig cfg;
    cfg.log_sink = sink;
    Testbed bed{cfg};
    EXPECT_EQ(&current_log_sink(), sink.get());
    WGTT_LOG(kInfo, "test", "inside testbed scope");
  }
  EXPECT_EQ(&current_log_sink(), &default_log_sink());
  ASSERT_EQ(sink->entries().size(), 1u);
  EXPECT_EQ(sink->entries()[0].message, "inside testbed scope");
}

TEST(MetricsTest, AccuracyIsOneWhenFollowingOptimal) {
  Testbed bed{TestbedConfig{}};
  WgttNetwork net(bed);
  const net::NodeId client =
      bed.add_client(bed.drive_mobility(15.0), kWgttBssid);
  // An oracle lookup that always reports the optimal AP.
  DriveMetrics metrics(bed, [&](net::NodeId c) {
    return bed.channel().best_ap(c, bed.sched().now());
  });
  metrics.track_client(client);
  metrics.start();
  bed.sched().run_until(Time::sec(5));
  EXPECT_DOUBLE_EQ(metrics.switching_accuracy(client), 1.0);
}

TEST(MetricsTest, OutOfCoverageSamplesExcluded) {
  TestbedConfig cfg;
  Testbed bed{cfg};
  WgttNetwork net(bed);
  // Parked 300 m away: never in coverage; accuracy is 0-of-0.
  const net::NodeId client = bed.add_client(
      std::make_shared<channel::StaticMobility>(
          channel::Vec3{300.0, 0.0, 1.5}),
      kWgttBssid);
  DriveMetrics metrics(bed, [&](net::NodeId) { return net::NodeId{1}; });
  metrics.track_client(client);
  metrics.start();
  bed.sched().run_until(Time::sec(2));
  EXPECT_DOUBLE_EQ(metrics.switching_accuracy(client), 0.0);
  for (const auto& pt : metrics.timeline(client)) {
    EXPECT_FALSE(pt.in_coverage);
  }
}

TEST(MetricsTest, UntrackedClientYieldsEmptyResultsNotUB) {
  // Regression: these accessors used to assert(it != end()) and then
  // dereference — in a release build the assert compiles away and an
  // untracked client id walked straight into UB.  They now degrade to empty
  // results.
  Testbed bed{TestbedConfig{}};
  DriveMetrics metrics(bed, {});
  metrics.track_client(net::kClientBase);
  const net::NodeId never_tracked = net::kClientBase + 7;
  EXPECT_TRUE(metrics.timeline(never_tracked).empty());
  EXPECT_EQ(metrics.bitrate_samples(never_tracked).count(), 0u);
  EXPECT_TRUE(metrics.bitrate_series(never_tracked).empty());
  EXPECT_DOUBLE_EQ(metrics.switching_accuracy(never_tracked), 0.0);
  // The tracked client is unaffected.
  metrics.start();
  bed.sched().run_until(Time::ms(50));
  EXPECT_FALSE(metrics.timeline(net::kClientBase).empty());
}

TEST(AblationTest, LatestReadingSelectorSwitchesMore) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  auto median = run_drive(cfg);
  cfg.wgtt.controller.use_latest_reading = true;
  auto latest = run_drive(cfg);
  // A single-reading metric chases fading spikes: more switches, equal or
  // worse accuracy.
  EXPECT_GE(latest.switches.size(), median.switches.size());
  EXPECT_LE(latest.clients[0].switching_accuracy,
            median.clients[0].switching_accuracy + 0.02);
}

TEST(AblationTest, FanoutActiveOnlyStillDelivers) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  cfg.wgtt.controller.fanout_active_only = true;
  auto r = run_drive(cfg);
  EXPECT_GT(r.clients[0].goodput_mbps, 3.0);
  // Without fan-out the new AP starts with an empty ring at each handover;
  // downlink copies drop to ~one per packet.
  EXPECT_GT(r.switches.size(), 10u);
}

TEST(AblationTest, EsnrRateControlWorksEndToEnd) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  cfg.wgtt.rate_control = RateControlKind::kEsnr;
  auto r = run_drive(cfg);
  EXPECT_GT(r.clients[0].goodput_mbps, 5.0);
  EXPECT_GT(r.clients[0].switching_accuracy, 0.8);
}

TEST(AblationTest, NoBaForwardingStillWorks) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  cfg.wgtt.enable_ba_forwarding = false;
  auto r = run_drive(cfg);
  EXPECT_GT(r.clients[0].goodput_mbps, 5.0);
}

TEST(ScenarioTest, HysteresisKnobChangesSwitchRate) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  cfg.wgtt.controller.switch_hysteresis = Time::ms(40);
  auto fast = run_drive(cfg);
  cfg.wgtt.controller.switch_hysteresis = Time::ms(400);
  auto slow = run_drive(cfg);
  EXPECT_GT(fast.switches.size(), slow.switches.size() * 2);
}

TEST(MultiChannelTest, ApChannelPlanApplied) {
  Testbed bed{TestbedConfig{}};
  WgttNetworkConfig cfg;
  cfg.ap_channels = {1, 6, 11};
  WgttNetwork net(bed, cfg);
  EXPECT_EQ(net.ap_channel(1), 1u);
  EXPECT_EQ(net.ap_channel(2), 6u);
  EXPECT_EQ(net.ap_channel(3), 11u);
  EXPECT_EQ(net.ap_channel(4), 1u);  // round-robin
  EXPECT_EQ(bed.ap_device(1).channel(), 1u);
  EXPECT_EQ(bed.ap_device(2).channel(), 6u);
}

TEST(MultiChannelTest, ClientFollowsActiveApAcrossChannels) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  cfg.wgtt.ap_channels = {1, 11};
  auto r = run_drive(cfg);
  // The system keeps working across channel boundaries: switches happen
  // and a usable fraction of traffic is delivered.
  EXPECT_GT(r.switches.size(), 5u);
  EXPECT_GT(r.clients[0].goodput_mbps, 1.0);
  // But (the paper's §7 point) it costs substantially vs single channel.
  cfg.wgtt.ap_channels.clear();
  auto single = run_drive(cfg);
  EXPECT_GT(single.mean_goodput_mbps(), r.mean_goodput_mbps());
}

TEST(ScenarioTest, MeasuredDurationExcludesSetup) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 25.0;
  cfg.seed = 1;
  auto r = run_drive(cfg);
  const Time expected = Testbed{TestbedConfig{}}.transit_duration(25.0);
  EXPECT_NEAR(r.measured_duration.to_sec(), expected.to_sec(), 0.01);
}

}  // namespace
}  // namespace wgtt::scenario
