// Handoff-policy suite (ctest label: policy).
//
// Locks down the HandoffPolicy seam from three sides: the PolicySpec
// grammar and factory, each shipped policy's decision logic against a fake
// PolicyEnv (hysteresis gates, margin checks, switch styles, trajectory
// prediction), and full drives proving (a) an explicit median_esnr spec
// replays the default controller byte for byte, (b) the overlap policies
// (make_before_break, bicast) really deliver duplicate downlink frames that
// the client-side Deduplicator absorbs, and (c) every policy stamps its
// name into the decision log and the bench reports.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ap_selector.h"
#include "core/handoff_policy.h"
#include "scenario/experiment.h"
#include "scenario/report.h"
#include "util/time.h"

namespace wgtt {
namespace {

using core::DecisionOutcome;
using core::DecisionReason;
using core::HandoffPolicy;
using core::MedianEsnrSelector;
using core::PolicyDecision;
using core::PolicyInput;
using core::PolicySpec;
using core::PolicyTuning;
using core::SwitchStyle;

// ---------------------------------------------------------------------------
// PolicySpec grammar + factory
// ---------------------------------------------------------------------------

TEST(PolicySpecTest, ParsesNameAndParams) {
  PolicySpec spec;
  ASSERT_TRUE(core::parse_policy_spec("median_esnr", spec));
  EXPECT_EQ(spec.name, "median_esnr");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "median_esnr");

  ASSERT_TRUE(core::parse_policy_spec("bicast:hold_ms=20", spec));
  EXPECT_EQ(spec.name, "bicast");
  EXPECT_DOUBLE_EQ(spec.param("hold_ms", 0.0), 20.0);
  EXPECT_TRUE(spec.has_param("hold_ms"));
  EXPECT_FALSE(spec.has_param("margin_db"));
  EXPECT_EQ(spec.to_string(), "bicast:hold_ms=20");

  ASSERT_TRUE(core::parse_policy_spec(
      "predictive:hysteresis_scale=0.25,min_speed_mps=1", spec));
  EXPECT_EQ(spec.name, "predictive");
  EXPECT_DOUBLE_EQ(spec.param("hysteresis_scale", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(spec.param("min_speed_mps", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(spec.param("absent", 7.0), 7.0);
}

TEST(PolicySpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                      // empty name
      "bogus",                 // unknown policy
      "bicast:hold_ms",        // param without '='
      "bicast:=5",             // param without a key
      "bicast:hold_ms=abc",    // non-numeric value
      "bicast:hold_ms=5,",     // trailing empty param
      "median_esnr:a=1,,b=2",  // empty param in the middle
  };
  for (const char* text : bad) {
    PolicySpec spec;
    std::string err;
    EXPECT_FALSE(core::parse_policy_spec(text, spec, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(PolicySpecTest, KnownNamesAndDuplicationFlags) {
  const auto& names = core::policy_names();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    PolicySpec spec;
    EXPECT_TRUE(core::parse_policy_spec(name, spec)) << name;
    const auto policy = core::make_handoff_policy(spec, PolicyTuning{});
    EXPECT_EQ(policy->name(), name);
  }
  PolicySpec spec;
  EXPECT_FALSE(core::policy_duplicates_downlink(spec));  // median_esnr
  spec.name = "predictive";
  EXPECT_FALSE(core::policy_duplicates_downlink(spec));
  spec.name = "make_before_break";
  EXPECT_TRUE(core::policy_duplicates_downlink(spec));
  spec.name = "bicast";
  EXPECT_TRUE(core::policy_duplicates_downlink(spec));
}

TEST(PolicySpecTest, FactoryFallsBackToMedianOnUnknownName) {
  PolicySpec spec;
  spec.name = "not_a_policy";  // benches validate; the factory stays lenient
  const auto policy = core::make_handoff_policy(spec, PolicyTuning{});
  EXPECT_STREQ(policy->name(), "median_esnr");
}

TEST(MobilityHintTest, SpeedIsVelocityNorm) {
  core::MobilityHint hint;
  EXPECT_DOUBLE_EQ(hint.speed_mps(), 0.0);
  hint.vx = 3.0;
  hint.vy = 4.0;
  EXPECT_DOUBLE_EQ(hint.speed_mps(), 5.0);
}

// ---------------------------------------------------------------------------
// Decision logic against a fake environment
// ---------------------------------------------------------------------------

class FakeEnv final : public core::PolicyEnv {
 public:
  bool fault_aware() const override { return false; }
  net::NodeId select_live() override { return 0; }
  bool ap_live(net::NodeId) const override { return true; }
  core::MobilityHint mobility() const override { return hint; }
  const std::vector<core::ApSite>& ap_sites() const override { return sites; }

  core::MobilityHint hint;
  std::vector<core::ApSite> sites;
};

/// Two in-window readings per AP, so `esnr` is the AP's median.
void feed(MedianEsnrSelector& sel, Time now, net::NodeId ap, double esnr) {
  sel.add_reading(ap, now - Time::ms(2), esnr);
  sel.add_reading(ap, now - Time::ms(1), esnr);
}

std::unique_ptr<HandoffPolicy> make(const std::string& text,
                                    Time hysteresis = Time::ms(40),
                                    double margin_db = 0.0) {
  PolicySpec spec;
  EXPECT_TRUE(core::parse_policy_spec(text, spec)) << text;
  return core::make_handoff_policy(spec,
                                   PolicyTuning{hysteresis, margin_db});
}

TEST(MedianPolicyTest, DecisionSequenceMatchesPaperPass) {
  const Time now = Time::ms(100);
  FakeEnv env;
  MedianEsnrSelector sel;
  auto policy = make("median_esnr");

  // Inside the hysteresis window: defer with the remaining time.
  PolicyDecision d = policy->decide(
      PolicyInput{7, 1, now, now - Time::ms(10), sel, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kDefer);
  EXPECT_EQ(d.reason, DecisionReason::kHysteresis);
  EXPECT_EQ(d.hysteresis_remaining, Time::ms(30));

  // No readings at all: keep with no candidate.
  d = policy->decide(PolicyInput{7, 1, now, Time::zero(), sel, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kKeep);
  EXPECT_EQ(d.reason, DecisionReason::kNoCandidate);

  // Incumbent is the argmax: keep.
  feed(sel, now, 1, 20.0);
  feed(sel, now, 2, 10.0);
  d = policy->decide(PolicyInput{7, 1, now, Time::zero(), sel, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kKeep);
  EXPECT_EQ(d.reason, DecisionReason::kIncumbentBest);
  EXPECT_EQ(d.target, 1u);

  // Challenger ahead: switch, stop-then-start style.
  MedianEsnrSelector sel2;
  feed(sel2, now, 1, 10.0);
  feed(sel2, now, 2, 12.0);
  d = policy->decide(PolicyInput{7, 1, now, Time::zero(), sel2, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kSwitch);
  EXPECT_EQ(d.reason, DecisionReason::kChallengerAhead);
  EXPECT_EQ(d.target, 2u);
  EXPECT_EQ(d.style, SwitchStyle::kStopStart);
  EXPECT_EQ(d.prearm, 0u);

  // The same challenger under a 3 dB margin: not ahead enough.
  auto guarded = make("median_esnr:margin_db=3");
  d = guarded->decide(PolicyInput{7, 1, now, Time::zero(), sel2, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kKeep);
  EXPECT_EQ(d.reason, DecisionReason::kBelowMargin);
  EXPECT_EQ(d.target, 2u);
}

TEST(OverlapPolicyTest, SwitchStylesAndBicastHold) {
  const Time now = Time::ms(100);
  FakeEnv env;
  MedianEsnrSelector sel;
  feed(sel, now, 1, 10.0);
  feed(sel, now, 2, 12.0);
  const PolicyInput in{7, 1, now, Time::zero(), sel, env};

  PolicyDecision d = make("make_before_break")->decide(in);
  EXPECT_EQ(d.outcome, DecisionOutcome::kSwitch);
  EXPECT_EQ(d.style, SwitchStyle::kStartFirst);
  EXPECT_EQ(d.bicast_hold, Time::zero());

  d = make("bicast")->decide(in);
  EXPECT_EQ(d.outcome, DecisionOutcome::kSwitch);
  EXPECT_EQ(d.style, SwitchStyle::kBicast);
  EXPECT_EQ(d.bicast_hold, Time::ms(30));  // default hold

  d = make("bicast:hold_ms=50")->decide(in);
  EXPECT_EQ(d.bicast_hold, Time::ms(50));

  // Keep decisions never carry an overlap style.
  MedianEsnrSelector keep_sel;
  feed(keep_sel, now, 1, 20.0);
  d = make("bicast")->decide(PolicyInput{7, 1, now, Time::zero(), keep_sel,
                                         env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kKeep);
  EXPECT_EQ(d.style, SwitchStyle::kStopStart);
}

TEST(PredictivePolicyTest, PredictsNextSiteAlongTrack) {
  const Time now = Time::ms(100);
  FakeEnv env;
  env.sites = {{1, 0.0, 0.0, 3.0}, {2, 10.0, 0.0, 3.0}, {3, 20.0, 0.0, 3.0}};
  env.hint.valid = true;
  env.hint.x = 2.0;
  env.hint.vx = 5.0;  // heading +x: AP 2 is next, AP 1 is behind
  MedianEsnrSelector sel;
  auto policy = make("predictive");

  PolicyDecision d =
      policy->decide(PolicyInput{7, 1, now, Time::zero(), sel, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kKeep);  // no CSI yet
  EXPECT_EQ(d.reason, DecisionReason::kNoCandidate);
  EXPECT_EQ(d.prearm, 2u) << "should pre-arm the next AP along the track";

  // Parked below min_speed_mps: no prediction, nothing pre-armed.
  env.hint.vx = 0.2;
  d = policy->decide(PolicyInput{7, 1, now, Time::zero(), sel, env});
  EXPECT_EQ(d.prearm, 0u);

  // No mobility provider registered: same.
  env.hint.valid = false;
  d = policy->decide(PolicyInput{7, 1, now, Time::zero(), sel, env});
  EXPECT_EQ(d.prearm, 0u);
}

TEST(PredictivePolicyTest, CorroborationShortensHysteresis) {
  const Time now = Time::ms(100);
  const Time last_switch = now - Time::ms(25);  // inside 40 ms, past 20 ms
  FakeEnv env;
  env.sites = {{1, 0.0, 0.0, 3.0}, {2, 10.0, 0.0, 3.0}};
  env.hint.valid = true;
  env.hint.x = 2.0;
  env.hint.vx = 5.0;
  MedianEsnrSelector sel;
  feed(sel, now, 1, 10.0);
  feed(sel, now, 2, 20.0);
  auto policy = make("predictive");  // default hysteresis_scale = 0.5

  // ESNR argmax (AP 2) agrees with the trajectory: the scaled 20 ms window
  // has already elapsed, so the switch commits early.
  PolicyDecision d =
      policy->decide(PolicyInput{7, 1, now, last_switch, sel, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kSwitch);
  EXPECT_EQ(d.target, 2u);
  EXPECT_EQ(d.style, SwitchStyle::kStopStart);
  EXPECT_EQ(d.prearm, 2u);

  // Without the mobility hint there is no corroboration: the full 40 ms
  // window applies and the same instant defers.
  env.hint.valid = false;
  d = policy->decide(PolicyInput{7, 1, now, last_switch, sel, env});
  EXPECT_EQ(d.outcome, DecisionOutcome::kDefer);
  EXPECT_EQ(d.reason, DecisionReason::kHysteresis);
  EXPECT_EQ(d.hysteresis_remaining, Time::ms(15));
}

// ---------------------------------------------------------------------------
// Full drives: byte-identity, duplicate absorption, log/report attribution
// ---------------------------------------------------------------------------

scenario::DriveScenarioConfig drive_config(const std::string& policy = {}) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 25.0;
  cfg.duration = Time::sec(2);
  cfg.seed = 7;
  cfg.testbed.enable_decision_log = true;
  cfg.testbed.enable_packet_log = true;
  if (!policy.empty()) {
    EXPECT_TRUE(
        core::parse_policy_spec(policy, cfg.wgtt.controller.policy));
  }
  return cfg;
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(PolicyDriveTest, ExplicitMedianSpecReplaysDefaultByteIdentically) {
  const scenario::DriveResult def = scenario::run_drive(drive_config());
  const scenario::DriveResult med =
      scenario::run_drive(drive_config("median_esnr"));
  ASSERT_GT(def.decision_records, 0u);
  EXPECT_EQ(def.decision_jsonl, med.decision_jsonl)
      << "median_esnr spec diverged from the default controller";
  EXPECT_EQ(def.packet_jsonl, med.packet_jsonl);
  // Every selection record is attributed to the paper's policy.
  EXPECT_GT(count_occurrences(def.decision_jsonl, "\"policy\":\"median_esnr\""),
            0u);
  EXPECT_EQ(def.downlink_duplicates_removed, 0u)
      << "stop-start switching must not duplicate downlink frames";
}

TEST(PolicyDriveTest, BicastAbsorbsSustainedDuplicationAtTheClient) {
  const scenario::DriveResult r =
      scenario::run_drive(drive_config("bicast:hold_ms=50"));
  EXPECT_GT(r.mean_goodput_mbps(), 0.0);
  ASSERT_GT(r.switches.size(), 0u) << "drive produced no switches";
  // During each 50 ms hold both APs transmit the flow; the client-side
  // Deduplicator must have swallowed the overlap copies.
  EXPECT_GT(r.downlink_duplicates_removed, 0u)
      << "bicast hold produced no client-side duplicates";
  EXPECT_GT(count_occurrences(r.decision_jsonl, "\"policy\":\"bicast"), 0u);
  EXPECT_GT(count_occurrences(r.decision_jsonl, "\"outcome\":\"switch\""), 0u);
}

TEST(PolicyDriveTest, MakeBeforeBreakSwitchesAndStaysAttributed) {
  const scenario::DriveResult r =
      scenario::run_drive(drive_config("make_before_break"));
  EXPECT_GT(r.mean_goodput_mbps(), 0.0);
  EXPECT_GT(r.switches.size(), 0u);
  EXPECT_GT(
      count_occurrences(r.decision_jsonl, "\"policy\":\"make_before_break\""),
      0u);
  EXPECT_GT(count_occurrences(r.decision_jsonl, "\"outcome\":\"switch\""), 0u);
}

TEST(PolicyDriveTest, PredictiveDrivesAndStaysAttributed) {
  const scenario::DriveResult r =
      scenario::run_drive(drive_config("predictive"));
  EXPECT_GT(r.mean_goodput_mbps(), 0.0);
  EXPECT_GT(count_occurrences(r.decision_jsonl, "\"policy\":\"predictive\""),
            0u);
  EXPECT_EQ(r.downlink_duplicates_removed, 0u)
      << "predictive keeps the paper's stop-start switching";
}

TEST(PolicyReportTest, RunReportsCarryThePolicy) {
  scenario::DriveScenarioConfig cfg = drive_config("bicast:hold_ms=50");
  scenario::DriveResult result;  // empty result is fine for labeling
  scenario::RunReport r = scenario::make_run_report("x", cfg, result);
  EXPECT_EQ(r.policy, "bicast:hold_ms=50");

  cfg.system = scenario::SystemType::kEnhanced80211r;
  r = scenario::make_run_report("x", cfg, result);
  EXPECT_EQ(r.policy, "client_roam");

  scenario::SweepReport sweep;
  sweep.bench_id = "t";
  sweep.runs.push_back(r);
  EXPECT_NE(sweep.to_json().find("\"policy\":\"client_roam\""),
            std::string::npos);
}

}  // namespace
}  // namespace wgtt
