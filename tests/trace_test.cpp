// Golden-trace regression suite (ctest label: trace).
//
// Locks down the deterministic event-tracing pipeline end to end: a
// fixed-seed drive must emit Chrome trace-event JSON whose SHA-256 matches
// the hash pinned below, and the very same bytes must come out of a repeat
// run and of a 4-worker parallel sweep.  If an intentional change to the
// simulation or to the instrumentation shifts the trace, rerun this test and
// update kGoldenTraceSha256 to the "actual" value it prints.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/experiment.h"
#include "scenario/report.h"
#include "scenario/sweep.h"
#include "util/json.h"
#include "util/profiler.h"
#include "util/sha256.h"
#include "util/trace.h"

namespace wgtt {
namespace {

// SHA-256 of the trace JSON emitted by golden_config() below.  Pinned from a
// run of this test; any drift in event content, ordering, or formatting for
// a fixed seed is a determinism regression.
constexpr char kGoldenTraceSha256[] =
    "83faa7a2e27a813a4981e548320d062dbc09f3d66a4fc0e08646920f4fea67ba";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The pinned scenario: a short fixed-seed WGTT drive through the testbed.
scenario::DriveScenarioConfig golden_config(std::string trace_path) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 25.0;
  cfg.duration = Time::sec(2);
  cfg.seed = 7;
  cfg.testbed.trace_path = std::move(trace_path);
  return cfg;
}

std::string run_golden_drive(const std::string& path) {
  scenario::run_drive(golden_config(path));  // trace flushes on teardown
  const std::string trace = read_file(path);
  std::remove(path.c_str());
  return trace;
}

TEST(TracerTest, FormatTsIsPureIntegerMath) {
  EXPECT_EQ(trace::Tracer::format_ts(Time::zero()), "0.000");
  EXPECT_EQ(trace::Tracer::format_ts(Time::ns(1)), "0.001");
  EXPECT_EQ(trace::Tracer::format_ts(Time::us(1)), "1.000");
  EXPECT_EQ(trace::Tracer::format_ts(Time::ns(1'234'567)), "1234.567");
  EXPECT_EQ(trace::Tracer::format_ts(Time::sec(3)), "3000000.000");
}

TEST(TracerTest, FormatTsStaysExactAtSoakHorizons) {
  // Multi-hour simulated timestamps sit far past double's 2^53 ns mantissa
  // range; the integer formatter must not lose the sub-microsecond digits.
  EXPECT_EQ(trace::Tracer::format_ts(Time::sec(3600)), "3600000000.000");
  EXPECT_EQ(trace::Tracer::format_ts(Time::sec(8 * 3600)), "28800000000.000");
  EXPECT_EQ(trace::Tracer::format_ts(Time::sec(24 * 3600) + Time::ns(1)),
            "86400000000.001");
  EXPECT_EQ(trace::Tracer::format_ts(Time::sec(7 * 24 * 3600) + Time::ns(999)),
            "604800000000.999");
  // ~106 simulated days, near the int64 microsecond scale used by reports.
  EXPECT_EQ(trace::Tracer::format_ts(Time::ns(9'216'000'000'000'000)),
            "9216000000000.000");
}

TEST(TracerTest, EmitsWellFormedChromeTraceDocument) {
  trace::Tracer t;
  t.instant("core", "switch_start", Time::ms(1), 0, {{"client", 100.0}});
  t.complete("mac", "ampdu_dl", Time::ms(2), Time::us(500), 5,
             {{"mpdus", 16.0}});
  t.counter("core", "backlog", Time::ms(3), 1700.0, 1);
  EXPECT_EQ(t.events(), 3u);
  const std::string& json = t.finish();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"name\":\"switch_start\",\"cat\":\"core\",\"ph\":\"i\","
                      "\"ts\":1000.000,\"pid\":1,\"tid\":0,\"s\":\"t\","
                      "\"args\":{\"client\":100}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":2000.000,\"pid\":1,\"tid\":5,"
                      "\"dur\":500.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // finish() is idempotent.
  EXPECT_EQ(&t.finish(), &json);
}

TEST(TracerTest, ScopedContextInstallsAndNests) {
  EXPECT_EQ(trace::Tracer::current(), nullptr);
  trace::Tracer outer, inner;
  {
    trace::ScopedTracer a(&outer);
    EXPECT_EQ(trace::Tracer::current(), &outer);
    {
      trace::ScopedTracer b(&inner);
      EXPECT_EQ(trace::Tracer::current(), &inner);
      trace::ScopedTracer c(nullptr);  // no-op, not an uninstall
      EXPECT_EQ(trace::Tracer::current(), &inner);
    }
    EXPECT_EQ(trace::Tracer::current(), &outer);
  }
  EXPECT_EQ(trace::Tracer::current(), nullptr);
}

TEST(Sha256Test, MatchesKnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                       "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Tail spanning two blocks (length 56..63 forces the 2-block padding path).
  EXPECT_EQ(sha256_hex(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(GoldenTraceTest, FixedSeedDriveMatchesPinnedHash) {
  const std::string trace = run_golden_drive("golden_trace_pin.json");
  ASSERT_FALSE(trace.empty());
  // Structural sanity: a loadable Chrome trace document with real events.
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(trace.substr(trace.size() - 2), "]}");
  EXPECT_NE(trace.find("\"cat\":\"mac\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"core\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"switch\""), std::string::npos);

  // Keep a copy for CI artifact upload when requested.
  if (const char* keep = std::getenv("WGTT_TRACE_KEEP")) {
    write_text_file(keep, trace);
  }

  EXPECT_EQ(sha256_hex(trace), kGoldenTraceSha256)
      << "trace drifted for a fixed seed; if intentional, repin the hash";
}

TEST(GoldenTraceTest, ByteIdenticalAcrossRunsAndParallelSweep) {
  const std::string first = run_golden_drive("golden_trace_a.json");
  const std::string second = run_golden_drive("golden_trace_b.json");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "repeat run produced a different trace";

  // The same config as run i of a 4-worker sweep: the trace must not care
  // which thread ran the simulation.  The other runs vary seed/system so
  // the workers genuinely interleave different sims.
  std::vector<scenario::DriveScenarioConfig> configs;
  configs.push_back(golden_config("golden_trace_sweep.json"));
  for (std::uint64_t seed : {8, 9, 10}) {
    scenario::DriveScenarioConfig cfg = golden_config({});
    cfg.seed = seed;
    if (seed == 9) cfg.system = scenario::SystemType::kEnhanced80211r;
    configs.push_back(cfg);
  }
  scenario::SweepRunner runner(scenario::SweepOptions{.jobs = 4});
  runner.run(configs);
  const std::string swept = read_file("golden_trace_sweep.json");
  std::remove("golden_trace_sweep.json");
  EXPECT_EQ(first, swept) << "parallel sweep produced a different trace";
}

// ---------------------------------------------------------------------------
// Decision audit log + telemetry: same determinism contract as the trace
// ---------------------------------------------------------------------------

/// Golden config plus the observability layer this suite locks down.
scenario::DriveScenarioConfig observed_config() {
  scenario::DriveScenarioConfig cfg = golden_config({});
  cfg.testbed.enable_decision_log = true;
  cfg.testbed.enable_telemetry = true;
  cfg.testbed.telemetry_period = Time::ms(100);
  return cfg;
}

TEST(DecisionLogTest, ByteIdenticalAcrossRunsAndParallelSweep) {
  const auto cfg = observed_config();
  const scenario::DriveResult first = scenario::run_drive(cfg);
  const scenario::DriveResult second = scenario::run_drive(cfg);
  ASSERT_GT(first.decision_records, 0u);
  ASSERT_FALSE(first.decision_jsonl.empty());
  EXPECT_EQ(first.decision_jsonl, second.decision_jsonl)
      << "repeat run produced a different decision log";
  EXPECT_EQ(first.decision_records, second.decision_records);

  // Same config as run 0 of an 8-worker sweep; the other seven runs vary
  // seed/system so the workers genuinely interleave different sims.
  std::vector<scenario::DriveScenarioConfig> configs{cfg};
  for (std::uint64_t seed = 8; seed < 15; ++seed) {
    scenario::DriveScenarioConfig other = observed_config();
    other.seed = seed;
    if (seed % 3 == 0) other.system = scenario::SystemType::kEnhanced80211r;
    configs.push_back(other);
  }
  scenario::SweepRunner runner(scenario::SweepOptions{.jobs = 8});
  const scenario::SweepOutcome outcome = runner.run(configs);
  EXPECT_EQ(first.decision_jsonl, outcome.runs[0].result.decision_jsonl)
      << "8-worker sweep produced a different decision log";
  EXPECT_EQ(first.telemetry.to_csv(), outcome.runs[0].result.telemetry.to_csv())
      << "8-worker sweep produced a different telemetry CSV";
}

TEST(DecisionLogTest, RecordsEverySwitchCountedInMetrics) {
  const scenario::DriveResult r = scenario::run_drive(observed_config());
  // One JSONL line per decision evaluation, plus the schema header.
  std::size_t lines = 0;
  for (char ch : r.decision_jsonl) lines += ch == '\n';
  EXPECT_EQ(lines, r.decision_records + 1);
  EXPECT_EQ(r.decision_jsonl.rfind(
                "{\"kind\":\"schema\",\"stream\":\"wgtt.decisions\"", 0),
            0u);
  // "switch" outcomes in the log match the counted switch records...
  std::size_t switch_lines = 0;
  for (std::size_t pos = r.decision_jsonl.find("\"outcome\":\"switch\"");
       pos != std::string::npos;
       pos = r.decision_jsonl.find("\"outcome\":\"switch\"", pos + 1)) {
    ++switch_lines;
  }
  EXPECT_EQ(switch_lines, r.decision_switch_records);
  // ...and every switch the metrics block counted has an audit entry
  // (decisions are recorded at initiation, so completed <= logged).
  std::uint64_t completed = 0;
  for (const auto& [name, value] : r.metrics.counters) {
    if (name == "core.switches_completed") completed = value;
  }
  ASSERT_GT(completed, 0u);
  EXPECT_GE(r.decision_switch_records, completed);
  EXPECT_EQ(r.switches.size(), static_cast<std::size_t>(completed));
}

TEST(TelemetryTest, CsvShapeAndDeterminism) {
  const auto cfg = observed_config();
  const scenario::DriveResult a = scenario::run_drive(cfg);
  const scenario::DriveResult b = scenario::run_drive(cfg);
  const std::string csv = a.telemetry.to_csv();
  ASSERT_FALSE(csv.empty());
  EXPECT_EQ(csv, b.telemetry.to_csv())
      << "repeat run produced a different telemetry CSV";

  // Header names the standard drive columns.
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header.rfind("t_us,", 0), 0u);
  EXPECT_NE(header.find(".ap"), std::string::npos);
  EXPECT_NE(header.find(".goodput_mbps"), std::string::npos);
  EXPECT_NE(header.find(".cwnd"), std::string::npos);  // golden run is TCP
  EXPECT_NE(header.find(".backlog"), std::string::npos);

  // Rectangular: every line has the header's field count.
  const std::size_t fields = 1 + static_cast<std::size_t>(std::count(
                                     header.begin(), header.end(), ','));
  std::size_t rows = 0;
  std::size_t start = header.size() + 1;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    const std::string line = csv.substr(start, end - start);
    EXPECT_EQ(1 + static_cast<std::size_t>(
                      std::count(line.begin(), line.end(), ',')),
              fields);
    ++rows;
    start = end + 1;
  }
  EXPECT_EQ(rows, a.telemetry.row_count());
  ASSERT_GT(rows, 10u);  // 2 s drive, 100 ms period, started at app_start
}

TEST(TelemetryTest, CsvTimestampsStayExactAtSoakHorizons) {
  // An hourly sampler ticking for eight simulated hours: every t_us in the
  // CSV must be the exact integer-formatted microsecond count — a double
  // round-trip would corrupt the low digits past a few simulated hours.
  sim::Scheduler sched;
  scenario::TelemetrySampler sampler(sched, Time::sec(3600));
  double ticks = 0.0;
  sampler.add_column("unit.ticks", 0, [&ticks]() { return ticks++; });
  sampler.start();
  sched.run_until(Time::sec(8 * 3600) + Time::ms(1));

  const std::string csv = sampler.to_csv();
  EXPECT_EQ(sampler.table().row_count(), 9u);  // t=0h..8h inclusive
  EXPECT_NE(csv.find("\n3600000000.000,"), std::string::npos);
  EXPECT_NE(csv.find("\n28800000000.000,"), std::string::npos);
  ASSERT_EQ(sampler.table().times.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(sampler.table().times[i], Time::sec(3600) * static_cast<int>(i));
  }
}

TEST(ProfilerTest, RunProfileIsNonEmptyAndBoundedByWallTime) {
  const std::int64_t start = prof::Profiler::now_ns();
  const scenario::DriveResult r = scenario::run_drive(golden_config({}));
  const std::int64_t wall_ns = prof::Profiler::now_ns() - start;
  ASSERT_FALSE(r.profile.empty());
  // Exclusive self-time: the per-section totals can never sum past the
  // run's wall clock.
  EXPECT_LE(r.profile.total_ns(), wall_ns);
  bool saw_dispatch = false;
  for (const auto& s : r.profile.sections) {
    EXPECT_GT(s.calls, 0u);
    EXPECT_GE(s.self_ns, 0);
    if (s.name == "sim.dispatch") saw_dispatch = true;
  }
  EXPECT_TRUE(saw_dispatch);

  // The profile lands in the bench-report JSON and parses back.
  scenario::SweepReport report;
  report.bench_id = "unit";
  report.runs.push_back(
      scenario::make_run_report("run", golden_config({}), r, 1.0));
  JsonValue parsed;
  std::string err;
  ASSERT_TRUE(json_parse(report.to_json(), parsed, &err)) << err;
  const JsonValue* run = &parsed.find("runs")->as_array()[0];
  const JsonValue* profile = run->find("profile");
  ASSERT_TRUE(profile != nullptr);
  EXPECT_TRUE(profile->find("sections") != nullptr);
}

TEST(GoldenTraceTest, MetricsSnapshotIdenticalAcrossRunsAndJson) {
  // Metrics ride the same determinism guarantee as the trace: snapshot JSON
  // (ordered maps, %.10g doubles) must be byte-stable for a fixed seed.
  const auto cfg = golden_config({});
  const std::string a = scenario::run_drive(cfg).metrics.to_json();
  const std::string b = scenario::run_drive(cfg).metrics.to_json();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The counters the bench reports surface are present and non-trivial.
  EXPECT_NE(a.find("\"sim.events_dispatched\":"), std::string::npos);
  EXPECT_NE(a.find("\"mac.airtime_ns_total\":"), std::string::npos);
  EXPECT_NE(a.find("\"core.switches_completed\":"), std::string::npos);
}

}  // namespace
}  // namespace wgtt
