// Unit + integration tests for the MAC: airtime accounting, A-MPDU
// construction, the block-ACK reorder buffer, the medium's carrier-sense
// behaviour, and end-to-end WifiDevice exchanges over a real channel.
#include <gtest/gtest.h>

#include <memory>

#include "channel/channel_model.h"
#include "mac/airtime.h"
#include "mac/ampdu.h"
#include "mac/block_ack.h"
#include "mac/medium.h"
#include "mac/wifi_device.h"
#include "phy/error_model.h"

namespace wgtt::mac {
namespace {

// ---------------------------------------------------------------------------
// Airtime
// ---------------------------------------------------------------------------

TEST(AirtimeTest, HigherMcsIsFaster) {
  AirtimeCalculator at;
  EXPECT_GT(at.mpdu_duration(phy::mcs(0), 1500).to_ns(),
            at.mpdu_duration(phy::mcs(7), 1500).to_ns());
}

TEST(AirtimeTest, Mcs0MpduDurationBallpark) {
  AirtimeCalculator at;
  // ~1534 B at 6.5 Mb/s ~ 1.9 ms.
  const double ms = at.mpdu_duration(phy::mcs(0), 1500).to_ms();
  EXPECT_GT(ms, 1.5);
  EXPECT_LT(ms, 2.3);
}

TEST(AirtimeTest, ExchangeIncludesOverheads) {
  AirtimeCalculator at;
  const Time one = at.exchange_duration(phy::mcs(7), 1, 1500);
  // preamble + data + SIFS + BA must exceed the raw bits duration.
  EXPECT_GT(one, at.mpdu_duration(phy::mcs(7), 1500));
  EXPECT_GT(one, at.block_ack_duration());
}

TEST(AirtimeTest, AggregationAmortizesOverhead) {
  AirtimeCalculator at;
  const Time one = at.exchange_duration(phy::mcs(7), 1, 1500);
  const Time many = at.exchange_duration(phy::mcs(7), 32, 32 * 1500);
  // 32 MPDUs cost far less than 32 single exchanges (the reason frame
  // aggregation exists, paper §1).
  EXPECT_LT(many.to_ns(), one.to_ns() * 32 * 7 / 10);
}

TEST(AirtimeTest, MaxMpdusRespectsDurationCap) {
  AirtimeCalculator at;
  // At MCS 0 only a couple of 1500 B MPDUs fit under 4 ms.
  EXPECT_LE(at.max_mpdus_in_ampdu(phy::mcs(0), 1500), 3u);
  // At MCS 7 roughly twenty 1500 B MPDUs fit under 4 ms.
  EXPECT_GE(at.max_mpdus_in_ampdu(phy::mcs(7), 1500), 19u);
  EXPECT_LE(at.max_mpdus_in_ampdu(phy::mcs(7), 1500), 22u);
}

TEST(AirtimeTest, ShortGiIsFaster) {
  AirtimeConfig cfg;
  cfg.short_gi = true;
  AirtimeCalculator sgi(cfg);
  AirtimeCalculator lgi;
  EXPECT_LT(sgi.mpdu_duration(phy::mcs(7), 1500).to_ns(),
            lgi.mpdu_duration(phy::mcs(7), 1500).to_ns());
}

// ---------------------------------------------------------------------------
// A-MPDU aggregation
// ---------------------------------------------------------------------------

std::deque<Mpdu> make_queue(std::size_t n, std::uint16_t first_seq = 0,
                            std::size_t bytes = 1500) {
  std::deque<Mpdu> q;
  for (std::size_t i = 0; i < n; ++i) {
    net::Packet p;
    p.size_bytes = bytes;
    Mpdu m;
    m.pkt = net::make_packet(p);
    m.seq = static_cast<std::uint16_t>((first_seq + i) & (kSeqModulo - 1));
    q.push_back(std::move(m));
  }
  return q;
}

TEST(AmpduTest, RespectsFrameCap) {
  AirtimeCalculator at;
  AmpduAggregator agg(at);
  auto q = make_queue(100, 0, 100);  // tiny MPDUs: the 64-frame cap binds
  auto a = agg.build(q, phy::mcs(7));
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(q.size(), 36u);
}

TEST(AmpduTest, RespectsDurationCap) {
  AirtimeCalculator at;
  AmpduAggregator agg(at);
  auto q = make_queue(100);
  auto a = agg.build(q, phy::mcs(0));
  EXPECT_LE(a.size(), 3u);
  EXPECT_GE(a.size(), 1u);
}

TEST(AmpduTest, RespectsBaWindow) {
  AirtimeCalculator at;
  AmpduAggregator agg(at);
  // Sequence numbers jump beyond the 64-wide window mid-queue.
  auto q = make_queue(10, 0, 100);
  auto extra = make_queue(5, 200, 100);
  for (auto& m : extra) q.push_back(std::move(m));
  auto a = agg.build(q, phy::mcs(7));
  EXPECT_EQ(a.size(), 10u);  // stops at the window break
}

TEST(AmpduTest, MaxFramesParameter) {
  AirtimeCalculator at;
  AmpduAggregator agg(at);
  auto q = make_queue(50, 0, 100);
  auto a = agg.build(q, phy::mcs(7), 4);  // probe-sized
  EXPECT_EQ(a.size(), 4u);
}

TEST(AmpduTest, AlwaysReturnsAtLeastOne) {
  AirtimeCalculator at;
  AmpduAggregator agg(at);
  auto q = make_queue(1, 0, 64000);  // huge MPDU, still must go
  auto a = agg.build(q, phy::mcs(0));
  EXPECT_EQ(a.size(), 1u);
}

// ---------------------------------------------------------------------------
// Reorder buffer
// ---------------------------------------------------------------------------

net::PacketPtr pkt_with_seq(std::uint64_t seq) {
  net::Packet p;
  p.seq = seq;
  p.size_bytes = 100;
  return net::make_packet(p);
}

TEST(ReorderBufferTest, InOrderPassThrough) {
  std::vector<std::uint64_t> out;
  ReorderBuffer rb([&](net::PacketPtr p) { out.push_back(p->seq); });
  for (std::uint16_t s = 0; s < 10; ++s) {
    rb.on_mpdu(s, pkt_with_seq(s), Time::ms(s));
  }
  EXPECT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(ReorderBufferTest, HoldsGapThenReleasesInOrder) {
  std::vector<std::uint64_t> out;
  ReorderBuffer rb([&](net::PacketPtr p) { out.push_back(p->seq); });
  rb.on_mpdu(0, pkt_with_seq(0), Time::zero());
  rb.on_mpdu(2, pkt_with_seq(2), Time::zero());  // hole at 1
  EXPECT_EQ(out.size(), 1u);
  rb.on_mpdu(1, pkt_with_seq(1), Time::zero());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(out[2], 2u);
}

TEST(ReorderBufferTest, DuplicatesDropped) {
  std::vector<std::uint64_t> out;
  ReorderBuffer rb([&](net::PacketPtr p) { out.push_back(p->seq); });
  rb.on_mpdu(0, pkt_with_seq(0), Time::zero());
  rb.on_mpdu(0, pkt_with_seq(0), Time::zero());
  rb.on_mpdu(2, pkt_with_seq(2), Time::zero());
  rb.on_mpdu(2, pkt_with_seq(2), Time::zero());
  EXPECT_EQ(rb.duplicates_dropped(), 2u);
  EXPECT_EQ(out.size(), 1u);
}

TEST(ReorderBufferTest, GapTimeoutFlushes) {
  std::vector<std::uint64_t> out;
  ReorderBuffer rb([&](net::PacketPtr p) { out.push_back(p->seq); },
                   Time::ms(10));
  rb.on_mpdu(0, pkt_with_seq(0), Time::zero());
  rb.on_mpdu(2, pkt_with_seq(2), Time::ms(1));
  EXPECT_EQ(rb.flush_expired(Time::ms(5)), 0u);   // too early
  EXPECT_EQ(rb.flush_expired(Time::ms(20)), 1u);  // hole skipped
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.back(), 2u);
}

TEST(ReorderBufferTest, WindowJumpReleases) {
  std::vector<std::uint64_t> out;
  ReorderBuffer rb([&](net::PacketPtr p) { out.push_back(p->seq); });
  rb.on_mpdu(0, pkt_with_seq(0), Time::zero());
  rb.on_mpdu(5, pkt_with_seq(5), Time::zero());
  // Jump far beyond the 64-window: buffered 5 must be released.
  rb.on_mpdu(200, pkt_with_seq(200), Time::zero());
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[1], 5u);
}

TEST(ReorderBufferTest, SequenceWraparound) {
  std::vector<std::uint64_t> out;
  ReorderBuffer rb([&](net::PacketPtr p) { out.push_back(p->seq); });
  for (std::uint16_t i = 0; i < 10; ++i) {
    const std::uint16_t seq = (4090 + i) & (kSeqModulo - 1);
    rb.on_mpdu(seq, pkt_with_seq(seq), Time::zero());
  }
  EXPECT_EQ(out.size(), 10u);  // wrap 4094,4095,0,1,... all in order
}

TEST(SeqDistanceTest, Wraparound) {
  EXPECT_EQ(seq_distance(4095, 0), 1u);
  EXPECT_EQ(seq_distance(0, 4095), 4095u);
  EXPECT_EQ(seq_distance(100, 100), 0u);
}

TEST(BlockAckInfoTest, BitmapSemantics) {
  BlockAckInfo ba;
  ba.start_seq = 4090;
  ba.bitmap.set(0);
  ba.bitmap.set(7);
  EXPECT_TRUE(ba.acks(4090));
  EXPECT_TRUE(ba.acks((4090 + 7) & (kSeqModulo - 1)));  // wraps to 1
  EXPECT_FALSE(ba.acks(4091));
  EXPECT_FALSE(ba.acks(2000));  // outside the window
}

// ---------------------------------------------------------------------------
// Medium + WifiDevice end-to-end over a real channel
// ---------------------------------------------------------------------------

class MacWorld {
 public:
  explicit MacWorld(std::uint64_t seed = 1)
      : channel(channel::RadioConfig{18.0, 20.0, 0.0, 20e6, 6.0, 2.462e9},
                channel::PathLossConfig{}, channel::ShadowingConfig{},
                channel::FadingConfig{}, Rng(seed)),
        medium(sched, channel),
        ctx(sched, medium, channel, error_model, Rng(seed + 1)) {
    channel::ApSite site;
    site.id = 1;
    site.position = {0.0, 10.0, 5.0};
    site.boresight = channel::Vec3{0, -10, -3.5}.normalized();
    site.antenna = std::make_shared<channel::ParabolicAntenna>();
    channel.add_ap(site);
    channel.add_client(net::kClientBase,
                       std::make_shared<channel::StaticMobility>(
                           channel::Vec3{0, 0, 1.5}));

    mac::WifiDeviceConfig ap_cfg;
    ap_cfg.is_ap = true;
    ap_cfg.bssid = 1;
    ap = std::make_unique<WifiDevice>(ctx, 1, ap_cfg);
    mac::WifiDeviceConfig cl_cfg;
    cl_cfg.bssid = 1;
    client = std::make_unique<WifiDevice>(ctx, net::kClientBase, cl_cfg);
  }

  sim::Scheduler sched;
  phy::ErrorModel error_model;
  channel::ChannelModel channel;
  Medium medium;
  MacContext ctx;
  std::unique_ptr<WifiDevice> ap;
  std::unique_ptr<WifiDevice> client;
};

net::PacketPtr data_pkt(net::NodeId src, net::NodeId dst, std::uint64_t seq) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  p.size_bytes = 1500;
  return net::make_packet(p);
}

TEST(WifiDeviceTest, DownlinkDeliveryOverGoodLink) {
  MacWorld w;
  std::vector<std::uint64_t> delivered;
  w.client->on_deliver = [&](net::PacketPtr p, const RxMeta& meta) {
    delivered.push_back(p->seq);
    EXPECT_EQ(meta.transmitter, 1u);
    EXPECT_TRUE(meta.addressed);
  };
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(w.ap->enqueue(net::kClientBase,
                              data_pkt(net::kServerBase, net::kClientBase, i)));
  }
  w.sched.run_until(Time::ms(200));
  ASSERT_EQ(delivered.size(), 20u);
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], i);  // in order
  }
  EXPECT_GT(w.ap->stats().mpdus_delivered, 0u);
}

TEST(WifiDeviceTest, UplinkDeliveryAndCsiReports) {
  MacWorld w;
  int delivered = 0;
  int heard = 0;
  w.ap->on_deliver = [&](net::PacketPtr, const RxMeta&) { ++delivered; };
  w.ap->on_frame_heard = [&](const RxMeta& meta) {
    ++heard;
    EXPECT_GT(meta.csi.mean_snr_db(), 0.0);
  };
  for (std::uint64_t i = 0; i < 10; ++i) {
    w.client->enqueue(1, data_pkt(net::kClientBase, net::kServerBase, i));
  }
  w.sched.run_until(Time::ms(200));
  EXPECT_EQ(delivered, 10);
  EXPECT_GT(heard, 0);  // every decoded uplink frame is a CSI source
}

TEST(WifiDeviceTest, ExplicitSequenceNumbers) {
  // The WGTT integration: the 12-bit cyclic index is the 802.11 sequence.
  MacWorld w;
  std::vector<std::uint64_t> delivered;
  w.client->on_deliver = [&](net::PacketPtr p, const RxMeta&) {
    delivered.push_back(p->seq);
  };
  for (std::uint64_t i = 0; i < 5; ++i) {
    w.ap->enqueue(net::kClientBase,
                  data_pkt(net::kServerBase, net::kClientBase, i),
                  static_cast<std::uint16_t>(1000 + i));
  }
  w.sched.run_until(Time::ms(100));
  EXPECT_EQ(delivered.size(), 5u);
}

TEST(WifiDeviceTest, QueueLimitEnforced) {
  MacWorld w;
  mac::WifiDeviceConfig cfg;  // default hw_queue_limit = 32
  int accepted = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (w.ap->enqueue(net::kClientBase,
                      data_pkt(net::kServerBase, net::kClientBase, i))) {
      ++accepted;
    }
  }
  // The first aggregate may already be in flight, so allow a little slack.
  EXPECT_LE(accepted, 32 + 64);
  EXPECT_LT(accepted, 100);
}

TEST(WifiDeviceTest, FlushQueueDropsPending) {
  MacWorld w;
  for (std::uint64_t i = 0; i < 30; ++i) {
    w.ap->enqueue(net::kClientBase,
                  data_pkt(net::kServerBase, net::kClientBase, i));
  }
  const std::size_t flushed = w.ap->flush_queue(net::kClientBase);
  EXPECT_GT(flushed, 0u);
  EXPECT_EQ(w.ap->queue_depth(net::kClientBase) -
                (w.ap->queue_depth(net::kClientBase) - 0),
            0u);
}

TEST(WifiDeviceTest, RefillHandlerInvoked) {
  MacWorld w;
  int refills = 0;
  w.ap->set_refill_handler(net::kClientBase, [&]() { ++refills; });
  for (std::uint64_t i = 0; i < 10; ++i) {
    w.ap->enqueue(net::kClientBase,
                  data_pkt(net::kServerBase, net::kClientBase, i));
  }
  w.sched.run_until(Time::ms(100));
  EXPECT_GT(refills, 0);
}

TEST(WifiDeviceTest, BroadcastBeaconReachesClient) {
  MacWorld w;
  int beacons = 0;
  w.client->on_management = [&](net::PacketPtr p, const RxMeta&) {
    if (p->type == net::PacketType::kBeacon) ++beacons;
  };
  net::Packet b;
  b.type = net::PacketType::kBeacon;
  b.src = 1;
  b.dst = net::kBroadcast;
  b.size_bytes = 128;
  w.ap->send_management(net::kBroadcast, net::make_packet(b));
  w.sched.run_until(Time::ms(50));
  EXPECT_EQ(beacons, 1);
}

TEST(WifiDeviceTest, UnicastManagementAcked) {
  MacWorld w;
  bool done_ok = false;
  net::Packet m;
  m.type = net::PacketType::kMgmt;
  m.src = net::kClientBase;
  m.dst = 1;
  m.size_bytes = 90;
  w.client->send_management(1, net::make_packet(m),
                            [&](bool ok) { done_ok = ok; });
  w.sched.run_until(Time::ms(50));
  EXPECT_TRUE(done_ok);
}

TEST(WifiDeviceTest, ExternalBlockAckRecoversExchange) {
  // Force BA loss by parking the client out of uplink range... instead we
  // inject a forwarded BA while an exchange awaits completion, using a
  // device configured with a long grace window and a dead reverse channel.
  MacWorld w;
  // Move the client out of range so the AP's own BA reception fails: use a
  // second client stationed far away.
  w.channel.add_client(net::kClientBase + 1,
                       std::make_shared<channel::StaticMobility>(
                           channel::Vec3{500, 0, 1.5}));
  mac::WifiDeviceConfig cfg;
  cfg.bssid = 1;
  WifiDevice far_client(w.ctx, net::kClientBase + 1, cfg);

  mac::WifiDeviceConfig ap2_cfg;
  ap2_cfg.is_ap = true;
  ap2_cfg.bssid = 1;
  ap2_cfg.ba_completion_grace = Time::ms(50);
  WifiDevice ap2(w.ctx, 2, ap2_cfg);
  // AP2 has no channel entry for itself... it transmits to the far client;
  // every MPDU will be lost, and no BA will arrive.
  // Note: AP2 needs a channel site.
  channel::ApSite site;
  site.id = 2;
  site.position = {0.0, 10.0, 5.0};
  site.boresight = channel::Vec3{0, -10, -3.5}.normalized();
  site.antenna = std::make_shared<channel::ParabolicAntenna>();
  w.channel.add_ap(site);

  ap2.enqueue(net::kClientBase + 1,
              data_pkt(net::kServerBase, net::kClientBase + 1, 0),
              std::uint16_t{100});
  // Let the exchange start and finish on air, then inject a forwarded BA
  // inside the grace window claiming successful delivery.
  w.sched.run_until(Time::ms(4));
  BlockAckInfo ba;
  ba.client = net::kClientBase + 1;
  ba.addressed_ap = 2;
  ba.start_seq = 100;
  ba.bitmap.set(0);
  const bool applied = ap2.apply_external_block_ack(ba);
  w.sched.run_until(Time::ms(100));
  EXPECT_TRUE(applied);
  EXPECT_EQ(ap2.stats().block_acks_recovered, 1u);
  EXPECT_EQ(ap2.stats().mpdus_delivered, 1u);
}

TEST(MediumTest, SerializesAudibleTransmitters) {
  MacWorld w;
  // Two clients close together must not overlap their transmissions.
  w.channel.add_client(net::kClientBase + 1,
                       std::make_shared<channel::StaticMobility>(
                           channel::Vec3{2, 0, 1.5}));
  int grants = 0;
  Time first_end;
  Time second_start;
  w.medium.request(net::kClientBase, Time::ms(2), 0, [&]() {
    ++grants;
    first_end = w.sched.now() + Time::ms(2);
  });
  w.sched.schedule(Time::us(100), [&]() {
    w.medium.attach(net::kClientBase + 1, 20.0);
    w.medium.request(net::kClientBase + 1, Time::ms(2), 0, [&]() {
      ++grants;
      second_start = w.sched.now();
    });
  });
  w.sched.run_until(Time::ms(20));
  EXPECT_EQ(grants, 2);
  EXPECT_GE(second_start, first_end);
}

TEST(MediumTest, OrthogonalChannelsDoNotCarrierSense) {
  MacWorld w;
  // Put a second client right next to the first but on another channel.
  w.channel.add_client(net::kClientBase + 1,
                       std::make_shared<channel::StaticMobility>(
                           channel::Vec3{1, 0, 1.5}));
  w.medium.attach(net::kClientBase + 1, 20.0, /*channel=*/6);
  Time first_grant;
  Time second_grant;
  w.medium.request(net::kClientBase, Time::ms(5), 0,
                   [&]() { first_grant = w.sched.now(); });
  w.sched.schedule(Time::us(100), [&]() {
    w.medium.request(net::kClientBase + 1, Time::ms(5), 0,
                     [&]() { second_grant = w.sched.now(); });
  });
  w.sched.run_until(Time::ms(20));
  // Concurrent transmissions: the second did not wait for the first.
  EXPECT_LT(second_grant, first_grant + Time::ms(5));
}

TEST(MediumTest, OrthogonalChannelsDoNotInterfere) {
  MacWorld w;
  w.channel.add_client(net::kClientBase + 1,
                       std::make_shared<channel::StaticMobility>(
                           channel::Vec3{1, 0, 1.5}));
  w.medium.attach(net::kClientBase + 1, 20.0, /*channel=*/6);
  w.medium.request(net::kClientBase + 1, Time::ms(10), 0, []() {});
  w.sched.run_until(Time::ms(1));
  // The channel-11 AP sees no interference from the channel-6 transmitter.
  EXPECT_EQ(w.medium.interference_mw_at(1, net::kClientBase), 0.0);
}

TEST(WifiDeviceTest, CrossChannelFramesNotReceived) {
  MacWorld w;
  w.client->set_channel(6, Time::zero());
  int delivered = 0;
  w.client->on_deliver = [&](net::PacketPtr, const RxMeta&) { ++delivered; };
  for (std::uint64_t i = 0; i < 5; ++i) {
    w.ap->enqueue(net::kClientBase,
                  data_pkt(net::kServerBase, net::kClientBase, i));
  }
  w.sched.run_until(Time::ms(100));
  EXPECT_EQ(delivered, 0);  // AP is on 11, client on 6
}

TEST(WifiDeviceTest, RetunePauseMakesRadioDeaf) {
  MacWorld w;
  EXPECT_TRUE(w.client->can_receive(w.sched.now()));
  w.client->set_channel(6, Time::ms(3));
  EXPECT_FALSE(w.client->can_receive(w.sched.now()));
  EXPECT_FALSE(w.client->can_receive(w.sched.now() + Time::ms(2)));
  EXPECT_TRUE(w.client->can_receive(w.sched.now() + Time::ms(4)));
  EXPECT_EQ(w.client->channel(), 6u);
}

TEST(MediumTest, UtilizationTracksOccupancy) {
  MacWorld w;
  w.medium.request(net::kClientBase, Time::ms(10), 0, []() {});
  w.sched.run_until(Time::ms(100));
  EXPECT_NEAR(w.medium.utilization(), 0.1, 0.02);
}

}  // namespace
}  // namespace wgtt::mac
