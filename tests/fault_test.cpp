// Fault-injection / graceful-degradation suite (ctest label: chaos).
//
// Locks down the chaos contract end to end: the FaultPlan grammar and seeded
// chaos generator, the FaultInjector's window bookkeeping on the simulated
// clock, and the controller's degradation machinery under real drives — an
// AP crash mid-dwell must fail the client over with a machine-readable
// "ap_suspect" reason and recover goodput after the window, a flapping AP
// must see its quarantine double per flap up to the cap, and the same
// (plan, seed) must replay byte-identical decision and packet logs from a
// repeat run and from run 0 of an 8-worker parallel sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/decision_log.h"
#include "net/fault_injector.h"
#include "net/packet.h"
#include "scenario/experiment.h"
#include "scenario/sweep.h"
#include "sim/fault_plan.h"
#include "sim/scheduler.h"
#include "util/json.h"
#include "util/rng.h"

namespace wgtt {
namespace {

using sim::FaultKind;
using sim::FaultPlan;

// ---------------------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryKindAndKey) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "ap_crash:ap=3,at=1s,for=500ms;"
      "link_drop:src=2,dst=0,at=2s,for=1s,rate=0.5;"
      "link_latency:src=4,dst=0,at=250ms,for=100ms,extra=5ms;"
      "partition:ap=1,at=3s,for=2s;"
      "csi_freeze:ap=5,at=1500us,for=2s;"
      "csi_garbage:ap=6,at=4s,for=1s",
      plan, &err))
      << err;
  ASSERT_EQ(plan.events.size(), 6u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::kApCrash);
  EXPECT_EQ(plan.events[0].node, 3u);
  EXPECT_EQ(plan.events[0].at, Time::sec(1));
  EXPECT_EQ(plan.events[0].duration, Time::ms(500));

  EXPECT_EQ(plan.events[1].kind, FaultKind::kLinkDrop);
  EXPECT_EQ(plan.events[1].node, 2u);
  EXPECT_EQ(plan.events[1].peer, 0u);
  EXPECT_DOUBLE_EQ(plan.events[1].rate, 0.5);

  EXPECT_EQ(plan.events[2].kind, FaultKind::kLinkLatency);
  EXPECT_EQ(plan.events[2].extra, Time::ms(5));

  EXPECT_EQ(plan.events[3].kind, FaultKind::kPartition);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kCsiFreeze);
  EXPECT_EQ(plan.events[4].at, Time::us(1500));
  EXPECT_EQ(plan.events[5].kind, FaultKind::kCsiGarbage);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "ap_crash",                          // missing ':'
      "reboot:ap=1,at=1s",                 // unknown kind
      "ap_crash:ap=1",                     // missing at=
      "ap_crash:at=1s",                    // missing node
      "ap_crash:ap=1,at=5",                // time without unit suffix
      "ap_crash:ap=1,at=1s,for=oops",      // unparseable time
      "ap_crash:ap=1,at=1s,color=red",     // unknown key
      "ap_crash:ap=1,at=1s,for",           // missing '='
      "link_drop:src=1,at=1s,rate=0",      // a drop burst that drops nothing
      "link_drop:src=1,at=1s,rate=1.5",    // rate out of [0, 1]
      "link_latency:src=1,at=1s",          // link_latency without extra
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(spec, plan, &err)) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(FaultPlanTest, EmptyAndSeparatorOnlySpecsParseToNoFaults) {
  for (const char* spec : {"", ";", ";;;"}) {
    FaultPlan plan;
    EXPECT_TRUE(FaultPlan::parse(spec, plan)) << spec;
    EXPECT_TRUE(plan.empty()) << spec;
  }
}

TEST(FaultPlanTest, ChaosIsSeededDeterministicAndBounded) {
  const Time horizon = Time::sec(10);
  const FaultPlan a = FaultPlan::chaos(1.0, horizon, 8, 42);
  const FaultPlan b = FaultPlan::chaos(1.0, horizon, 8, 42);
  ASSERT_EQ(a.events.size(), 10u);  // intensity * horizon seconds
  ASSERT_EQ(b.events.size(), a.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].node, b.events[i].node) << i;
    EXPECT_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_EQ(a.events[i].duration, b.events[i].duration) << i;
  }
  // Events are time-sorted, land inside the middle of the horizon, and only
  // name real APs.
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (i > 0) EXPECT_GE(a.events[i].at, a.events[i - 1].at);
    EXPECT_GE(a.events[i].at, horizon * 0.15);
    EXPECT_LE(a.events[i].at, horizon * 0.85);
    EXPECT_GE(a.events[i].node, 1u);
    EXPECT_LE(a.events[i].node, 8u);
  }
  // A different seed draws a different schedule.
  const FaultPlan c = FaultPlan::chaos(1.0, horizon, 8, 43);
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    differs |= c.events[i].at != a.events[i].at ||
               c.events[i].kind != a.events[i].kind;
  }
  EXPECT_TRUE(differs);
  // Degenerate inputs produce the empty (injector-free) plan.
  EXPECT_TRUE(FaultPlan::chaos(0.0, horizon, 8, 42).empty());
  EXPECT_TRUE(FaultPlan::chaos(1.0, Time::zero(), 8, 42).empty());
  EXPECT_TRUE(FaultPlan::chaos(1.0, horizon, 0, 42).empty());
}

TEST(FaultPlanTest, DescribeNamesEveryEvent) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::parse(
      "ap_crash:ap=3,at=1s,for=500ms;link_drop:src=2,dst=0,at=2s,for=1s,"
      "rate=0.5;link_latency:src=4,dst=0,at=3s,for=1s,extra=5ms",
      plan));
  const std::string text = plan.describe();
  EXPECT_NE(text.find("ap_crash"), std::string::npos);
  EXPECT_NE(text.find("rate=0.50"), std::string::npos);
  EXPECT_NE(text.find("extra=5.0ms"), std::string::npos);
  EXPECT_EQ(FaultPlan{}.describe(), "no faults");
}

// ---------------------------------------------------------------------------
// FaultInjector window bookkeeping (bare scheduler, no testbed)
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, WindowsOpenAndCloseOnTheSimClock) {
  sim::Scheduler sched;
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::parse(
      "ap_crash:ap=3,at=1ms,for=2ms;"
      "csi_freeze:ap=2,at=1ms,for=4ms;"
      "csi_garbage:ap=2,at=2ms,for=1ms;"
      "partition:src=4,dst=0,at=1ms,for=2ms;"
      "link_latency:src=5,dst=0,at=1ms,for=2ms,extra=3ms;"
      "link_drop:src=6,dst=0,at=1ms,for=2ms,rate=0.5",
      plan));
  net::FaultInjector inj(sched, plan, Rng(1).fork("faults"));

  std::vector<bool> transitions;
  inj.on_ap_fault(3, [&](bool down) { transitions.push_back(down); });

  // Nothing is faulted before the first onset fires.
  EXPECT_FALSE(inj.ap_down(3));
  EXPECT_EQ(inj.csi_mode(2), net::CsiFaultMode::kNormal);
  EXPECT_FALSE(inj.link(4, 0).impaired());
  EXPECT_EQ(inj.active_faults(), 0u);

  sched.run_until(Time::us(1500));
  EXPECT_TRUE(inj.ap_down(3));
  EXPECT_FALSE(inj.ap_down(4));
  EXPECT_EQ(inj.csi_mode(2), net::CsiFaultMode::kFreeze);
  EXPECT_TRUE(inj.link(4, 0).blocked);
  EXPECT_TRUE(inj.link(0, 4).blocked);  // links are undirected
  EXPECT_EQ(inj.link(5, 0).extra_latency, Time::ms(3));
  EXPECT_DOUBLE_EQ(inj.link(6, 0).drop_rate, 0.5);
  EXPECT_FALSE(inj.link(7, 0).impaired());
  EXPECT_EQ(inj.faults_applied(), 5u);
  EXPECT_EQ(inj.active_faults(), 5u);

  // Garbage opens inside the freeze window and wins while both are open.
  sched.run_until(Time::us(2200));
  EXPECT_EQ(inj.csi_mode(2), net::CsiFaultMode::kGarbage);
  EXPECT_EQ(inj.faults_applied(), 6u);

  // At 3 ms everything but the long freeze has cleared.
  sched.run_until(Time::us(3500));
  EXPECT_FALSE(inj.ap_down(3));
  EXPECT_EQ(inj.csi_mode(2), net::CsiFaultMode::kFreeze);
  EXPECT_FALSE(inj.link(4, 0).impaired());
  EXPECT_FALSE(inj.link(5, 0).impaired());
  EXPECT_FALSE(inj.link(6, 0).impaired());
  EXPECT_EQ(inj.active_faults(), 1u);

  sched.run_until(Time::ms(6));
  EXPECT_EQ(inj.csi_mode(2), net::CsiFaultMode::kNormal);
  EXPECT_EQ(inj.active_faults(), 0u);
  EXPECT_EQ(inj.faults_applied(), 6u);

  // The crash subscriber saw exactly onset then recovery.
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_TRUE(transitions[0]);
  EXPECT_FALSE(transitions[1]);
}

// ---------------------------------------------------------------------------
// Decision-log reason vocabulary stays exhaustive
// ---------------------------------------------------------------------------

TEST(DecisionLogTest, ReasonAndOutcomeNamesAreExhaustive) {
  for (std::size_t i = 0; i < core::kDecisionReasonCount; ++i) {
    EXPECT_STRNE(core::to_string(static_cast<core::DecisionReason>(i)), "?")
        << "DecisionReason " << i << " unnamed";
  }
  EXPECT_STREQ(core::to_string(static_cast<core::DecisionReason>(
                   core::kDecisionReasonCount)),
               "?");
}

// ---------------------------------------------------------------------------
// Controller degradation under real drives
// ---------------------------------------------------------------------------

/// The golden-trace scenario with both audit logs enabled.
scenario::DriveScenarioConfig chaos_config() {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 25.0;
  cfg.duration = Time::sec(2);
  cfg.seed = 7;
  cfg.testbed.enable_decision_log = true;
  cfg.testbed.enable_packet_log = true;
  cfg.testbed.packet_sample = 1;
  return cfg;
}

std::vector<JsonValue> parse_jsonl(const std::string& jsonl) {
  std::vector<JsonValue> out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string::npos) eol = jsonl.size();
    const std::string_view line(jsonl.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    JsonValue v;
    std::string error;
    EXPECT_TRUE(json_parse(line, v, &error)) << error << "\n" << line;
    out.push_back(std::move(v));
  }
  return out;
}

/// The client's active AP at simulated time `t_us`, replayed from the
/// decision log (chosen on a switch, incumbent otherwise).
net::NodeId active_ap_at(const std::string& decision_jsonl, double t_us) {
  net::NodeId ap = 0;
  for (const JsonValue& rec : parse_jsonl(decision_jsonl)) {
    if (rec.find("kind") != nullptr) continue;  // liveness lines
    if (rec.number_or("t_us", 0.0) > t_us) break;
    const bool switched = rec.string_or("outcome", "") == "switch";
    const double id = switched ? rec.number_or("chosen", 0.0)
                               : rec.number_or("incumbent", 0.0);
    if (id > 0.0) ap = static_cast<net::NodeId>(id);
  }
  return ap;
}

TEST(ChaosDriveTest, ApCrashMidDwellFailsOverAndRecovers) {
  // Probe run (fault-free) to learn which AP the client dwells on at t = 2 s
  // — late enough in the drive that TCP is flowing and the victim's queues
  // are loaded when the crash lands.
  scenario::DriveScenarioConfig base = chaos_config();
  base.duration = Time::sec(3);
  const scenario::DriveResult probe = scenario::run_drive(base);
  const net::NodeId victim = active_ap_at(probe.decision_jsonl, 2.0e6);
  ASSERT_NE(victim, 0u) << "probe run never joined an AP";

  scenario::DriveScenarioConfig cfg = base;
  char spec[64];
  std::snprintf(spec, sizeof spec, "ap_crash:ap=%u,at=2s,for=500ms", victim);
  ASSERT_TRUE(FaultPlan::parse(spec, cfg.testbed.faults));
  const scenario::DriveResult r = scenario::run_drive(cfg);

  // The liveness monitor flagged the victim and the controller recorded a
  // failover with the machine-readable reason.
  bool suspect = false;
  bool ap_suspect_switch = false;
  for (const JsonValue& rec : parse_jsonl(r.decision_jsonl)) {
    if (rec.string_or("kind", "") == "liveness" &&
        rec.string_or("event", "") == "suspect" &&
        static_cast<net::NodeId>(rec.number_or("ap", 0.0)) == victim) {
      suspect = true;
    }
    if (rec.string_or("reason", "") == "ap_suspect" &&
        rec.string_or("outcome", "") == "switch") {
      ap_suspect_switch = true;
    }
  }
  EXPECT_TRUE(suspect) << "no liveness suspect record for AP " << victim;
  EXPECT_TRUE(ap_suspect_switch)
      << "no switch decision with reason=ap_suspect";

  // The flight recorder saw the fault window open and close on the victim,
  // the crash purge attributed its drops to the injected fault, and every
  // terminal record still carries a cause.
  bool fault_on = false, fault_off = false, fault_drop = false;
  for (const JsonValue& rec : parse_jsonl(r.packet_jsonl)) {
    const std::string hop = rec.string_or("hop", "?");
    if (hop == "fault_on" &&
        static_cast<net::NodeId>(rec.number_or("node", 0.0)) == victim) {
      fault_on = true;
    }
    if (hop == "fault_off" &&
        static_cast<net::NodeId>(rec.number_or("node", 0.0)) == victim) {
      fault_off = true;
    }
    const bool terminal = hop == "transport_drop" || hop == "backhaul_drop" ||
                          hop == "ap_drop" || hop == "mac_drop" ||
                          hop == "dedup_suppress";
    if (!terminal) continue;
    EXPECT_NE(rec.string_or("cause", ""), "") << hop << " without a cause";
    if (rec.string_or("cause", "") == "fault_injected") fault_drop = true;
  }
  EXPECT_TRUE(fault_on) << "missing fault_on marker";
  EXPECT_TRUE(fault_off) << "missing fault_off marker";
  EXPECT_TRUE(fault_drop) << "crash purge produced no fault_injected drop";

  // Goodput comes back after the fault window clears at t = 2.5 s (bins are
  // 500 ms wide on the absolute sim clock, so the last bin is post-fault).
  ASSERT_EQ(r.clients.size(), 1u);
  double recovered = 0.0;
  for (const auto& [t, mbps] : r.clients[0].throughput_bins) {
    if (t >= Time::ms(2500)) recovered += mbps;
  }
  EXPECT_GT(recovered, 0.0) << "no goodput after the fault cleared";
  EXPECT_GT(r.mean_goodput_mbps(), 0.0);
}

TEST(ChaosDriveTest, FlappingApQuarantineDoublesThenCaps) {
  scenario::DriveScenarioConfig cfg = chaos_config();
  cfg.duration = Time::sec(2.5);
  cfg.wgtt.controller.quarantine_base = Time::ms(200);
  cfg.wgtt.controller.quarantine_cap = Time::ms(600);
  // Three short crashes: each recovery lands a heartbeat while the AP is
  // suspect, so every flap re-quarantines it with a doubled window.
  ASSERT_TRUE(FaultPlan::parse(
      "ap_crash:ap=3,at=500ms,for=150ms;"
      "ap_crash:ap=3,at=1200ms,for=150ms;"
      "ap_crash:ap=3,at=1900ms,for=150ms",
      cfg.testbed.faults));
  const scenario::DriveResult r = scenario::run_drive(cfg);

  std::vector<double> quarantines;
  std::size_t reinstated = 0;
  for (const JsonValue& rec : parse_jsonl(r.decision_jsonl)) {
    if (rec.string_or("kind", "") != "liveness") continue;
    if (static_cast<net::NodeId>(rec.number_or("ap", 0.0)) != 3) continue;
    const std::string event = rec.string_or("event", "");
    if (event == "quarantined") {
      quarantines.push_back(rec.number_or("quarantine_us", 0.0));
    }
    if (event == "reinstated") ++reinstated;
  }
  // 200 ms, doubled to 400 ms, then capped at 600 ms (not 800 ms).
  ASSERT_EQ(quarantines.size(), 3u)
      << "expected one quarantine per flap:\n" << r.decision_jsonl;
  EXPECT_DOUBLE_EQ(quarantines[0], 200000.0);
  EXPECT_DOUBLE_EQ(quarantines[1], 400000.0);
  EXPECT_DOUBLE_EQ(quarantines[2], 600000.0);
  EXPECT_GE(reinstated, 2u) << "quarantine windows never expired";
}

TEST(ChaosDriveTest, ByteIdenticalAcrossRepeatAndParallelSweep) {
  scenario::DriveScenarioConfig cfg = chaos_config();
  cfg.testbed.faults = FaultPlan::chaos(2.0, Time::sec(2), 8, cfg.seed);
  ASSERT_FALSE(cfg.testbed.faults.empty());

  const scenario::DriveResult first = scenario::run_drive(cfg);
  const scenario::DriveResult second = scenario::run_drive(cfg);
  ASSERT_GT(first.packet_records, 0u);
  ASSERT_GT(first.decision_records, 0u);
  EXPECT_EQ(first.decision_jsonl, second.decision_jsonl)
      << "repeat chaos run produced a different decision log";
  EXPECT_EQ(first.packet_jsonl, second.packet_jsonl)
      << "repeat chaos run produced a different packet log";

  // Same config as run 0 of an 8-worker sweep; the other seven runs vary
  // seed and chaos intensity so the workers interleave different fault
  // schedules while run 0 must still replay byte-identically.
  std::vector<scenario::DriveScenarioConfig> configs{cfg};
  for (std::uint64_t seed = 21; seed < 28; ++seed) {
    scenario::DriveScenarioConfig other = chaos_config();
    other.seed = seed;
    other.testbed.faults = FaultPlan::chaos(
        1.0 + static_cast<double>(seed % 3), Time::sec(2), 8, seed);
    configs.push_back(other);
  }
  scenario::SweepRunner runner(scenario::SweepOptions{.jobs = 8});
  const scenario::SweepOutcome outcome = runner.run(configs);
  EXPECT_EQ(first.decision_jsonl, outcome.runs[0].result.decision_jsonl)
      << "8-worker chaos sweep produced a different decision log";
  EXPECT_EQ(first.packet_jsonl, outcome.runs[0].result.packet_jsonl)
      << "8-worker chaos sweep produced a different packet log";
}

}  // namespace
}  // namespace wgtt
