// Tests for the parallel sweep engine: thread-count-independent determinism
// (the property the whole evaluation pipeline rests on), seed derivation,
// the bounded parallel_for primitive, and report serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "scenario/report.h"
#include "scenario/sweep.h"

namespace wgtt::scenario {
namespace {

/// The comparable fingerprint of a run: every headline metric, captured
/// exactly (no tolerance — parallel execution must be bitwise-identical).
struct Fingerprint {
  std::vector<double> goodput;
  std::vector<double> loss;
  std::vector<double> accuracy;
  std::vector<std::size_t> handovers;
  std::size_t switches;
  std::uint64_t stop_retx;
  double utilization;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const DriveResult& r) {
  Fingerprint f;
  for (const auto& c : r.clients) {
    f.goodput.push_back(c.goodput_mbps);
    f.loss.push_back(c.udp_loss_rate);
    f.accuracy.push_back(c.switching_accuracy);
    f.handovers.push_back(c.handovers + c.failed_handovers);
  }
  f.switches = r.switches.size();
  f.stop_retx = r.stop_retransmissions;
  f.utilization = r.medium_utilization;
  return f;
}

/// Short-but-real drives: both systems, both transports, truncated to keep
/// the test (and its TSan build) fast.
std::vector<DriveScenarioConfig> test_configs() {
  std::vector<DriveScenarioConfig> configs;
  const SystemType systems[] = {SystemType::kWgtt,
                                SystemType::kEnhanced80211r};
  const TrafficType traffics[] = {TrafficType::kTcpDownlink,
                                  TrafficType::kUdpDownlink};
  std::uint64_t seed = 7;
  for (SystemType sys : systems) {
    for (TrafficType traffic : traffics) {
      DriveScenarioConfig cfg;
      cfg.system = sys;
      cfg.traffic = traffic;
      cfg.speed_mph = 15.0;
      cfg.duration = Time::sec(2);
      cfg.seed = seed++;
      configs.push_back(cfg);
    }
  }
  return configs;
}

TEST(SweepRunnerTest, ParallelMatchesSerialForAnyThreadCount) {
  const auto configs = test_configs();

  // Ground truth: plain serial run_drive calls, no SweepRunner involved.
  std::vector<Fingerprint> serial;
  for (const auto& cfg : configs) serial.push_back(fingerprint(run_drive(cfg)));

  for (std::size_t jobs : {1u, 2u, 8u}) {
    SweepRunner runner(SweepOptions{.jobs = jobs});
    ASSERT_EQ(runner.jobs(), jobs);
    const SweepOutcome outcome = runner.run(configs);
    ASSERT_EQ(outcome.runs.size(), configs.size());
    EXPECT_EQ(outcome.jobs, jobs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      EXPECT_EQ(fingerprint(outcome.runs[i].result), serial[i])
          << "run " << i << " diverged from serial with jobs=" << jobs;
    }
  }
}

TEST(SweepRunnerTest, ResolveJobsPrefersExplicitValue) {
  EXPECT_EQ(SweepRunner::resolve_jobs(3), 3u);
  EXPECT_GE(SweepRunner::resolve_jobs(0), 1u);  // env or hardware fallback
}

TEST(SeedReplicatesTest, DeterministicAndDistinct) {
  DriveScenarioConfig base;
  const auto a = seed_replicates(base, 8, 1234);
  const auto b = seed_replicates(base, 8, 1234);
  ASSERT_EQ(a.size(), 8u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);  // independent of when/where expanded
    seeds.insert(a[i].seed);
  }
  EXPECT_EQ(seeds.size(), a.size());  // all replicates draw distinct seeds
  // Follows the Rng::fork discipline exactly.
  EXPECT_EQ(a[3].seed, Rng(1234).fork(3).next_u64());
  // A different sweep seed yields a different family.
  EXPECT_NE(seed_replicates(base, 1, 99)[0].seed, a[0].seed);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t jobs : {1u, 3u, 16u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for(hits.size(), jobs, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(10, 4,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelForTest, ZeroItemsIsNoOp) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(SweepReportTest, SerializesRunsAndSummary) {
  SweepReport report;
  report.bench_id = "unit";
  report.title = "unit test";
  report.jobs = 2;
  report.wall_ms = 12.5;
  report.summary.emplace_back("speedup", 1.9);

  DriveScenarioConfig cfg;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  DriveResult result;
  ClientDriveResult c;
  c.goodput_mbps = 6.25;
  c.switching_accuracy = 0.5;
  result.clients.push_back(c);
  report.runs.push_back(make_run_report("r0", cfg, result, 3.0));
  report.runs.back().extra.emplace_back("knob", 1.0);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":1.9"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"r0\""), std::string::npos);
  EXPECT_NE(json.find("\"goodput_mbps\":6.25"), std::string::npos);
  EXPECT_NE(json.find("\"system\":\"wgtt\""), std::string::npos);
  EXPECT_NE(json.find("\"knob\":1"), std::string::npos);
}

TEST(SweepReportTest, MakeRunReportAveragesClients) {
  DriveScenarioConfig cfg;
  DriveResult result;
  for (double g : {2.0, 4.0}) {
    ClientDriveResult c;
    c.goodput_mbps = g;
    c.udp_loss_rate = g / 10.0;
    c.handovers = 1;
    result.clients.push_back(c);
  }
  const RunReport r = make_run_report("x", cfg, result, 0.0);
  EXPECT_DOUBLE_EQ(r.goodput_mbps, 3.0);
  EXPECT_DOUBLE_EQ(r.udp_loss_rate, 0.3);
  EXPECT_EQ(r.handovers, 2u);
}

}  // namespace
}  // namespace wgtt::scenario
