// wgtt-report `diff` exit-code contract, exercised end-to-end on
// hand-written report pairs: relative tolerance (softenable), the hard
// per-row --budget-ms ceiling (NOT softenable), and the schema gates.
// These tests drive the real binary — the same artifact CI's perf gate
// runs — so the gate semantics can't drift from what is tested.
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"

#ifndef WGTT_REPORT_BIN
#error "build must define WGTT_REPORT_BIN (path to the wgtt-report binary)"
#endif

namespace wgtt {
namespace {

// A minimal two-row report the differ accepts.  wall1/wall2 are per-run
// wall times; sweep wall is their sum.
std::string make_report(double wall1, double wall2, double goodput = 10.0) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "budget_fixture");
  w.field("title", "hand-written diff fixture");
  w.field("jobs", 1);
  w.field("wall_ms", wall1 + wall2);
  w.key("runs").begin_array();
  w.begin_object();
  w.field("label", "row/one");
  w.field("policy", "median_esnr");
  w.field("wall_ms", wall1);
  w.field("goodput_mbps", goodput);
  w.field("switches", 3);
  w.end_object();
  w.begin_object();
  w.field("label", "row/two");
  w.field("policy", "median_esnr");
  w.field("wall_ms", wall2);
  w.field("goodput_mbps", goodput);
  w.field("switches", 5);
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

class ReportDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "wgtt_report_" + info->name();
    base_path_ = dir_ + "_base.json";
    cur_path_ = dir_ + "_cur.json";
  }

  void write_pair(const std::string& base, const std::string& cur) {
    ASSERT_TRUE(write_text_file(base_path_, base));
    ASSERT_TRUE(write_text_file(cur_path_, cur));
  }

  int run_diff(const std::string& extra_args) {
    const std::string cmd = std::string(WGTT_REPORT_BIN) + " diff " +
                            base_path_ + " " + cur_path_ + " " + extra_args +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WEXITSTATUS(status);
  }

  std::string dir_, base_path_, cur_path_;
};

TEST_F(ReportDiffTest, IdenticalReportsPass) {
  const std::string report = make_report(100.0, 200.0);
  write_pair(report, report);
  EXPECT_EQ(run_diff(""), 0);
  EXPECT_EQ(run_diff("--budget-ms 250"), 0);
}

TEST_F(ReportDiffTest, RelativeRegressionFailsHardByDefault) {
  write_pair(make_report(100.0, 200.0), make_report(100.0, 400.0));
  EXPECT_EQ(run_diff("--tolerance 25"), 1);
}

TEST_F(ReportDiffTest, SoftDowngradesRelativeRegressionToWarning) {
  write_pair(make_report(100.0, 200.0), make_report(100.0, 400.0));
  EXPECT_EQ(run_diff("--tolerance 25 --soft"), 0);
}

TEST_F(ReportDiffTest, BudgetViolationFailsEvenUnderSoft) {
  // Rows at 100 and 400 ms against a 250 ms/row budget: row/two busts it.
  write_pair(make_report(100.0, 200.0), make_report(100.0, 400.0));
  EXPECT_EQ(run_diff("--budget-ms 250 --soft --tolerance 100"), 1);
  EXPECT_EQ(run_diff("--budget-ms=250 --soft --tolerance 100"), 1);
}

TEST_F(ReportDiffTest, BudgetAppliesPerRowNotToTheSweepTotal) {
  // Sweep total (300 ms) exceeds the 250 ms budget but each row is within
  // it — the budget is a per-row ceiling, so this passes.
  const std::string report = make_report(150.0, 150.0);
  write_pair(report, report);
  EXPECT_EQ(run_diff("--budget-ms 250"), 0);
}

TEST_F(ReportDiffTest, BudgetJudgesCurrentRowsNotBaseline) {
  // Baseline rows bust the budget, current rows are within it: pass —
  // the ceiling guards what the tree produces now.
  write_pair(make_report(400.0, 400.0), make_report(100.0, 100.0));
  EXPECT_EQ(run_diff("--budget-ms 250 --tolerance 100"), 0);
}

TEST_F(ReportDiffTest, SchemaMismatchesExitTwoRegardlessOfFlags) {
  // Different run labels: schema error, not a perf result.
  std::string other = make_report(100.0, 200.0);
  const std::size_t at = other.find("row/two");
  ASSERT_NE(at, std::string::npos);
  other.replace(at, 7, "row/TWO");
  write_pair(make_report(100.0, 200.0), other);
  EXPECT_EQ(run_diff(""), 2);
  EXPECT_EQ(run_diff("--soft --budget-ms 1000"), 2);
}

TEST_F(ReportDiffTest, UnparseableReportExitsTwo) {
  write_pair(make_report(100.0, 200.0), "{\"bench\":");
  EXPECT_EQ(run_diff("--soft"), 2);
}

TEST_F(ReportDiffTest, MetricDriftWarnsButPasses) {
  write_pair(make_report(100.0, 200.0, 10.0), make_report(100.0, 200.0, 12.0));
  EXPECT_EQ(run_diff(""), 0);
}

TEST_F(ReportDiffTest, ShowJsonEmitsMachineReadableSummary) {
  // `show --json` must print a single parseable JSON object carrying the
  // same per-run fields the human table shows — CI consumes this instead of
  // scraping the table.
  ASSERT_TRUE(write_text_file(base_path_, make_report(100.0, 200.0, 12.5)));
  const std::string out_path = dir_ + "_show.json";
  const std::string cmd = std::string(WGTT_REPORT_BIN) + " show --json " +
                          base_path_ + " > " + out_path + " 2>/dev/null";
  ASSERT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 0);

  std::string out;
  ASSERT_TRUE(read_text_file(out_path, out));
  JsonValue parsed;
  std::string err;
  ASSERT_TRUE(json_parse(out, parsed, &err)) << err;

  EXPECT_EQ(parsed.string_or("bench", "?"), "budget_fixture");
  EXPECT_DOUBLE_EQ(parsed.number_or("wall_ms", 0.0), 300.0);
  const JsonValue* runs = parsed.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->as_array().size(), 2u);
  const JsonValue& row = runs->as_array()[1];
  EXPECT_EQ(row.string_or("label", "?"), "row/two");
  EXPECT_DOUBLE_EQ(row.number_or("goodput_mbps", 0.0), 12.5);
  EXPECT_DOUBLE_EQ(row.number_or("switches", 0.0), 5.0);
}

TEST_F(ReportDiffTest, ShowJsonUnparseableReportExitsTwo) {
  ASSERT_TRUE(write_text_file(base_path_, "{\"bench\":"));
  const std::string cmd = std::string(WGTT_REPORT_BIN) + " show --json " +
                          base_path_ + " > /dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 2);
}

}  // namespace
}  // namespace wgtt
