// Differential-correctness suite for the hot-path campaign (ctest label
// `diff`).
//
// The optimized channel/PHY hot paths keep the original scalar math alive
// behind reference seams — channel::ReferenceFading for the fading process
// and phy::reference_effective_snr_db for the ESNR reduction — and this
// suite pins the equivalence contract between the two sides:
//
//  * Bitwise identity where the optimization only moves work around
//    (twiddle caching, SoA layout, memoization): enforced whenever the
//    vectorized kernels are unavailable, since every expression then runs
//    on scalar libm in the reference association.
//  * ULP-bounded equality where the vectorized libmvec kernels are in play
//    (vecm::available()): the per-element transcendentals are documented
//    within 4 ulp of scalar libm, every surrounding sum keeps the reference
//    association, so the response error is bounded by a per-summand ulp
//    budget times the number of unit-magnitude summands.
//
// RNG-stream consumption is load-bearing: FadingProcess and ReferenceFading
// must draw (LOS angle, LOS phase, then per-sinusoid theta, phase) per tap
// in exactly that order, or the same seed realises different channels.  The
// suite checks this two ways: identical seeds must produce matching
// responses across randomized configs (order/count drift in any draw that
// matters shows up as an O(1) mismatch), and a hand-replicated draw
// sequence must predict the single-tap response exactly.
#include <array>
#include <cmath>
#include <complex>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "channel/fading.h"
#include "channel/reference_fading.h"
#include "phy/esnr.h"
#include "util/rng.h"
#include "util/units.h"
#include "util/vec_math.h"

namespace wgtt {
namespace {

using channel::FadingConfig;
using channel::FadingProcess;
using channel::ReferenceFading;
using channel::TapSpec;

// Error budget for one complex response sample.  Each tap contributes
// nlos_fraction * sin_count cosine/sine summands of magnitude <= 1, each
// within kKernelUlp ulp of the scalar value, plus an exactly-scalar LOS
// term; the twiddle accumulation multiplies by unit-magnitude factors and
// sums over taps in reference order.  A 16x safety factor keeps the bound
// robust across libm builds while staying ~10 orders of magnitude below
// any real bug (wrong phase, wrong draw order, wrong tap slice => O(1)).
double response_error_bound(const FadingProcess& p, int sinusoids_per_tap) {
  constexpr double kKernelUlp = 4.0;
  constexpr double kSafety = 16.0;
  const double summands =
      static_cast<double>(p.tap_count()) *
      (static_cast<double>(sinusoids_per_tap) + 2.0);
  return kSafety * kKernelUlp * std::numeric_limits<double>::epsilon() *
         summands;
}

FadingConfig random_config(Rng& rng) {
  FadingConfig cfg;
  const std::array<double, 3> carriers{2.412e9, 2.462e9, 5.18e9};
  cfg.carrier_hz = carriers[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  const std::array<int, 5> sinusoid_counts{1, 4, 8, 16, 32};
  cfg.sinusoids_per_tap =
      sinusoid_counts[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  const int taps = static_cast<int>(rng.uniform_int(1, 6));
  cfg.taps.clear();
  double delay = 0.0;
  for (int t = 0; t < taps; ++t) {
    TapSpec spec;
    spec.delay_ns = delay;
    delay += rng.uniform(20.0, 200.0);
    spec.relative_power_db = t == 0 ? 0.0 : rng.uniform(-25.0, 0.0);
    // Mix Rayleigh taps with Rician ones (linear K up to ~10 dB).
    spec.rician_k = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 10.0);
    cfg.taps.push_back(spec);
  }
  return cfg;
}

std::vector<double> random_grid(Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // the production HT20 grid
      auto span = channel::ht20_subcarrier_offsets_hz();
      return {span.begin(), span.end()};
    }
    case 1: {  // narrow grid
      std::vector<double> g;
      for (int k = -4; k <= 4; ++k) g.push_back(k * 312.5e3);
      return g;
    }
    case 2: {  // single subcarrier
      return {rng.uniform(-10e6, 10e6)};
    }
    default: {  // random irregular grid
      std::vector<double> g(static_cast<std::size_t>(rng.uniform_int(2, 24)));
      for (double& f : g) f = rng.uniform(-20e6, 20e6);
      return g;
    }
  }
}

void expect_responses_match(const FadingConfig& cfg, std::uint64_t seed,
                            Rng& scenario_rng) {
  // Both sides constructed from identical fork streams, as ChannelModel
  // does for its per-link processes.
  const FadingProcess opt(cfg, Rng(seed).fork(7));
  const ReferenceFading ref(cfg, Rng(seed).fork(7));
  ASSERT_EQ(opt.tap_count(), ref.tap_count());

  const double bound = response_error_bound(opt, cfg.sinusoids_per_tap);
  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<double> grid = random_grid(scenario_rng);
    const double distance =
        rep == 0 ? 0.0 : scenario_rng.uniform(0.0, 2000.0);
    std::vector<std::complex<double>> h_opt(grid.size());
    std::vector<std::complex<double>> h_ref(grid.size());
    opt.response(distance, grid, h_opt);
    ref.response(distance, grid, h_ref);
    for (std::size_t k = 0; k < grid.size(); ++k) {
      const double dre = std::abs(h_opt[k].real() - h_ref[k].real());
      const double dim = std::abs(h_opt[k].imag() - h_ref[k].imag());
      if (vecm::available()) {
        EXPECT_LE(dre, bound) << "subcarrier " << k << " distance "
                              << distance;
        EXPECT_LE(dim, bound) << "subcarrier " << k << " distance "
                              << distance;
      } else {
        // Scalar fallback: every expression is libm in reference
        // association — the seam owes bitwise identity.
        EXPECT_EQ(h_opt[k].real(), h_ref[k].real())
            << "subcarrier " << k << " distance " << distance;
        EXPECT_EQ(h_opt[k].imag(), h_ref[k].imag())
            << "subcarrier " << k << " distance " << distance;
      }
    }
    // Wideband gain goes through the same response; its reduction is
    // shared code on both sides.
    const double g_opt = opt.wideband_gain(distance, grid);
    const double g_ref = ref.wideband_gain(distance, grid);
    EXPECT_LE(std::abs(g_opt - g_ref),
              vecm::available() ? 8.0 * bound : 0.0);
  }
}

// ~200 randomized configs, sharded so a failure names its shard and the
// suite parallelises under ctest -j.
class FadingDiffShard : public ::testing::TestWithParam<int> {};

TEST_P(FadingDiffShard, RandomizedConfigsMatchReference) {
  const int shard = GetParam();
  Rng rng(0xD1FFu * 1000003u + static_cast<std::uint64_t>(shard));
  for (int i = 0; i < 20; ++i) {
    const FadingConfig cfg = random_config(rng);
    const std::uint64_t seed = rng.next_u64();
    SCOPED_TRACE(::testing::Message() << "shard " << shard << " config " << i);
    expect_responses_match(cfg, seed, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(HotPath, FadingDiffShard, ::testing::Range(0, 10));

// The default (production) config on the production grid, many distances —
// the exact code path the simulation drives.
TEST(FadingDiff, DefaultConfigProductionGrid) {
  const FadingConfig cfg;  // street-canyon defaults
  const FadingProcess opt(cfg, Rng(42).fork(3));
  const ReferenceFading ref(cfg, Rng(42).fork(3));
  const auto grid = channel::ht20_subcarrier_offsets_hz();
  const double bound = response_error_bound(opt, cfg.sinusoids_per_tap);
  std::array<std::complex<double>, channel::kNumSubcarriers> h_opt;
  std::array<std::complex<double>, channel::kNumSubcarriers> h_ref;
  for (double d = 0.0; d < 120.0; d += 0.37) {
    opt.response(d, grid, h_opt);
    ref.response(d, grid, h_ref);
    for (std::size_t k = 0; k < h_opt.size(); ++k) {
      ASSERT_LE(std::abs(h_opt[k] - h_ref[k]), bound) << "d=" << d;
    }
  }
}

// Hand-replicated RNG draw sequence: a single Rayleigh tap with one
// sinusoid realises H(f=0, d=0) = (cos(phase), sin(phase)) where `phase`
// is the 4th uniform draw (after LOS angle, LOS phase, theta).  Both
// classes must consume the stream in exactly that order.
TEST(FadingDiff, RngDrawOrderPinnedBySingleTapPrediction) {
  FadingConfig cfg;
  cfg.sinusoids_per_tap = 1;
  cfg.taps = {{0.0, 0.0, 0.0}};  // one Rayleigh tap => amplitude 1, nlos 1
  const Rng seed_rng = Rng(1234).fork(9);

  Rng replica = seed_rng;
  (void)replica.uniform(0.0, kPi);        // LOS angle (unused: K = 0)
  (void)replica.uniform(0.0, 2.0 * kPi);  // LOS phase (unused)
  (void)replica.uniform(0.0, 2.0 * kPi);  // sinusoid theta
  const double phase = replica.uniform(0.0, 2.0 * kPi);
  const std::complex<double> expected{std::cos(phase), std::sin(phase)};

  const std::array<double, 1> grid{0.0};
  std::array<std::complex<double>, 1> h{};
  const FadingProcess opt(cfg, seed_rng);
  opt.response(0.0, grid, h);
  EXPECT_LE(std::abs(h[0] - expected), 64.0 * 4.0 *
                                           std::numeric_limits<double>::epsilon());

  const ReferenceFading ref(cfg, seed_rng);
  h[0] = {0.0, 0.0};
  ref.response(0.0, grid, h);
  EXPECT_EQ(h[0].real(), expected.real());
  EXPECT_EQ(h[0].imag(), expected.imag());
}

// Same seed must give the same realisation through both classes even when
// the twiddle-cache capacity is exhausted (the inline-fallback loop).
TEST(FadingDiff, TwiddleCacheOverflowFallsBackToSameMath) {
  FadingConfig cfg;
  cfg.sinusoids_per_tap = 4;
  const FadingProcess opt(cfg, Rng(77).fork(1));
  const ReferenceFading ref(cfg, Rng(77).fork(1));
  const double bound = response_error_bound(opt, cfg.sinusoids_per_tap);
  Rng grid_rng(5150);
  // More than kMaxCachedGrids (8) distinct grids forces the uncached path.
  for (int g = 0; g < 12; ++g) {
    std::vector<double> grid(4);
    for (double& f : grid) f = grid_rng.uniform(-15e6, 15e6);
    std::vector<std::complex<double>> h_opt(grid.size());
    std::vector<std::complex<double>> h_ref(grid.size());
    opt.response(3.25, grid, h_opt);
    ref.response(3.25, grid, h_ref);
    for (std::size_t k = 0; k < grid.size(); ++k) {
      ASSERT_LE(std::abs(h_opt[k] - h_ref[k]), bound) << "grid " << g;
    }
  }
}

// ---------------------------------------------------------------------------
// ESNR seam: effective_snr_db (vectorized mean-BER when available) against
// reference_effective_snr_db (the retained scalar reduction).
// ---------------------------------------------------------------------------

// The vectorized mean-BER differs from the scalar one by per-element ulps
// of exp10-vs-pow and vector-vs-scalar erfc; through the monotone BER
// table inverse and linear_to_db the output perturbation stays many
// orders below 1e-9 dB (the table interpolation divides by a cell height
// proportional to the BER itself, so relative error passes through
// roughly 1:1).  Any reassociation or dropped subcarrier shows up at
// >= 1e-4 dB.
constexpr double kEsnrTolDb = 1e-9;

TEST(EsnrDiff, RandomSpansMatchReference) {
  Rng rng(0xE5AAu);
  const std::array<phy::Modulation, 4> mods{
      phy::Modulation::kBpsk, phy::Modulation::kQpsk,
      phy::Modulation::kQam16, phy::Modulation::kQam64};
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 64));
    std::vector<double> snr_db(n);
    for (double& s : snr_db) s = rng.uniform(-40.0, 60.0);
    const phy::Modulation mod =
        mods[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const double opt = phy::effective_snr_db(snr_db, mod);
    const double ref = phy::reference_effective_snr_db(snr_db, mod);
    if (vecm::available()) {
      EXPECT_NEAR(opt, ref, kEsnrTolDb) << "n=" << n << " case " << i;
    } else {
      EXPECT_EQ(opt, ref) << "n=" << n << " case " << i;
    }
  }
}

TEST(EsnrDiff, ProductionWidthCsiMatchesReference) {
  Rng rng(0xC51u);
  for (int i = 0; i < 50; ++i) {
    phy::Csi csi;
    for (double& s : csi.subcarrier_snr_db) s = rng.uniform(-10.0, 45.0);
    const double opt = phy::effective_snr_db(csi, phy::Modulation::kQam16);
    const double ref = phy::reference_effective_snr_db(
        std::span<const double>(csi.subcarrier_snr_db.data(),
                                phy::kNumSubcarriers),
        phy::Modulation::kQam16);
    if (vecm::available()) {
      EXPECT_NEAR(opt, ref, kEsnrTolDb) << "case " << i;
    } else {
      EXPECT_EQ(opt, ref) << "case " << i;
    }
  }
}

// Spans wider than the vector scratch (64) must dispatch to the reference
// implementation — bitwise, vectors or not.
TEST(EsnrDiff, OversizedSpanDispatchesToReferenceBitwise) {
  Rng rng(0xB16u);
  std::vector<double> snr_db(200);
  for (double& s : snr_db) s = rng.uniform(-20.0, 50.0);
  EXPECT_EQ(phy::effective_snr_db(snr_db, phy::Modulation::kQam64),
            phy::reference_effective_snr_db(snr_db, phy::Modulation::kQam64));
}

// Degenerate spans: extreme SNRs hit the BER-table clamps identically on
// both sides.
TEST(EsnrDiff, ExtremeSnrsClampIdentically) {
  const std::array<double, 4> extremes{-200.0, -40.0, 80.0, 300.0};
  for (double v : extremes) {
    std::vector<double> snr_db(8, v);
    const double opt = phy::effective_snr_db(snr_db, phy::Modulation::kQpsk);
    const double ref =
        phy::reference_effective_snr_db(snr_db, phy::Modulation::kQpsk);
    EXPECT_NEAR(opt, ref, kEsnrTolDb) << "snr " << v;
  }
}

// ---------------------------------------------------------------------------
// vecm kernels against their scalar reference expressions, elementwise.
// ---------------------------------------------------------------------------

TEST(VecMathDiff, KernelsWithinUlpBudgetOfScalar) {
  constexpr double kUlp = 4.0;
  Rng rng(0x7EC4u);
  std::vector<double> x(37);  // deliberately not a multiple of 4 (tail path)
  for (double& v : x) v = rng.uniform(-30.0, 30.0);
  std::vector<double> out(x.size()), c(x.size()), s(x.size());

  vecm::db_to_linear(x.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = db_to_linear(x[i]);
    EXPECT_LE(std::abs(out[i] - ref),
              kUlp * std::numeric_limits<double>::epsilon() * std::abs(ref))
        << "db_to_linear(" << x[i] << ")";
  }

  for (double& v : x) v = std::abs(v) + 1e-6;
  vecm::linear_to_db(x.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = linear_to_db(x[i]);
    EXPECT_LE(std::abs(out[i] - ref),
              kUlp * std::numeric_limits<double>::epsilon() *
                  std::max(1.0, std::abs(ref)))
        << "linear_to_db(" << x[i] << ")";
  }

  for (double& v : x) v = rng.uniform(-600.0, 600.0);
  vecm::sin_cos(x.data(), c.data(), s.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(c[i] - std::cos(x[i])),
              kUlp * std::numeric_limits<double>::epsilon());
    EXPECT_LE(std::abs(s[i] - std::sin(x[i])),
              kUlp * std::numeric_limits<double>::epsilon());
  }

  for (double& v : x) v = rng.uniform(0.0, 8.0);
  vecm::erfc(x.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = std::erfc(x[i]);
    EXPECT_LE(std::abs(out[i] - ref),
              kUlp * std::numeric_limits<double>::epsilon() *
                  std::max(ref, std::numeric_limits<double>::min()))
        << "erfc(" << x[i] << ")";
  }
}

TEST(VecMathDiff, ZeroLengthSweepsAreNoOps) {
  double sentinel = 123.0;
  vecm::db_to_linear(nullptr, &sentinel, 0);
  vecm::linear_to_db(nullptr, &sentinel, 0);
  vecm::erfc(nullptr, &sentinel, 0);
  vecm::sin_cos(nullptr, &sentinel, &sentinel, 0);
  EXPECT_EQ(sentinel, 123.0);
}

}  // namespace
}  // namespace wgtt
