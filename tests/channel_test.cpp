// Unit + property tests for the channel substrate: geometry, mobility,
// antennas, path loss, correlated shadowing, fading statistics, and the
// composite channel model (reciprocity, coherence scaling, picocell shape).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "channel/antenna.h"
#include "channel/channel_model.h"
#include "channel/fading.h"
#include "channel/geometry.h"
#include "channel/mobility.h"
#include "channel/pathloss.h"
#include "channel/shadowing.h"
#include "phy/esnr.h"
#include "util/stats.h"
#include "util/units.h"

namespace wgtt::channel {
namespace {

// ---------------------------------------------------------------------------
// Geometry / mobility
// ---------------------------------------------------------------------------

TEST(GeometryTest, DistanceAndNorm) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 2}).norm(), 3.0);
}

TEST(GeometryTest, AngleBetween) {
  EXPECT_NEAR(angle_between({1, 0, 0}, {0, 1, 0}), kPi / 2, 1e-12);
  EXPECT_NEAR(angle_between({1, 0, 0}, {1, 0, 0}), 0.0, 1e-12);
  EXPECT_NEAR(angle_between({1, 0, 0}, {-1, 0, 0}), kPi, 1e-12);
}

TEST(GeometryTest, NormalizedZeroVectorIsSafe) {
  const Vec3 n = Vec3{}.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
}

TEST(MobilityTest, LinearPositionAndDistance) {
  LinearMobility m({10, 0, 1.5}, {5, 0, 0});
  EXPECT_DOUBLE_EQ(m.position(Time::sec(2)).x, 20.0);
  EXPECT_DOUBLE_EQ(m.distance_travelled(Time::sec(2)), 10.0);
  EXPECT_DOUBLE_EQ(m.speed_mps(Time::sec(1)), 5.0);
}

TEST(MobilityTest, StaticNeverMoves) {
  StaticMobility m({1, 2, 3});
  EXPECT_DOUBLE_EQ(m.position(Time::sec(100)).y, 2.0);
  EXPECT_DOUBLE_EQ(m.distance_travelled(Time::sec(100)), 0.0);
}

TEST(MobilityTest, WaypointInterpolation) {
  WaypointMobility m({{Time::sec(0), {0, 0, 0}},
                      {Time::sec(10), {10, 0, 0}},
                      {Time::sec(20), {10, 10, 0}}});
  EXPECT_DOUBLE_EQ(m.position(Time::sec(5)).x, 5.0);
  EXPECT_DOUBLE_EQ(m.position(Time::sec(15)).y, 5.0);
  // Clamped outside the range.
  EXPECT_DOUBLE_EQ(m.position(Time::sec(100)).y, 10.0);
  EXPECT_DOUBLE_EQ(m.position(Time::sec(0) - Time::sec(1)).x, 0.0);
  // Distance accumulates along the path.
  EXPECT_DOUBLE_EQ(m.distance_travelled(Time::sec(20)), 20.0);
  EXPECT_DOUBLE_EQ(m.distance_travelled(Time::sec(15)), 15.0);
}

TEST(MobilityTest, WaypointVelocity) {
  WaypointMobility m({{Time::sec(0), {0, 0, 0}}, {Time::sec(10), {20, 0, 0}}});
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(5)).x, 2.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(50)).x, 0.0);  // stopped at the end
}

// PredictivePolicy steers on these hints, so the boundary semantics are
// load-bearing: exactly at an interior waypoint the velocity must belong to
// the segment being *entered* (segments are half-open [a, b)), and outside
// the schedule the client is parked.
TEST(MobilityTest, WaypointVelocityAtSegmentBoundaries) {
  WaypointMobility m({{Time::sec(0), {0, 0, 0}},
                      {Time::sec(10), {10, 0, 0}},     // 1 m/s east
                      {Time::sec(20), {10, 20, 0}}});  // 2 m/s north
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(0)).x, 1.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(0)).y, 0.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(10)).x, 0.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(10)).y, 2.0);
  // Parked before the first and from the last waypoint on.
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(0) - Time::ms(1)).norm(), 0.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(20)).norm(), 0.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(25)).norm(), 0.0);
}

// Duplicate-time waypoints (a teleport / stop marker) must not divide by the
// zero segment span: position snaps to the later waypoint, velocity stays
// finite, and the jump's path length still accumulates.
TEST(MobilityTest, WaypointZeroLengthSegment) {
  WaypointMobility m({{Time::sec(0), {0, 0, 0}},
                      {Time::sec(10), {10, 0, 0}},
                      {Time::sec(10), {12, 0, 0}},
                      {Time::sec(20), {12, 5, 0}}});
  EXPECT_DOUBLE_EQ(m.position(Time::sec(10)).x, 12.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(10)).x, 0.0);
  EXPECT_DOUBLE_EQ(m.velocity(Time::sec(10)).y, 0.5);
  EXPECT_TRUE(std::isfinite(m.velocity(Time::sec(10)).norm()));
  EXPECT_DOUBLE_EQ(m.distance_travelled(Time::sec(10)), 12.0);
  EXPECT_DOUBLE_EQ(m.distance_travelled(Time::sec(20)), 17.0);
  // A trailing zero-length segment parks the client at the final position.
  WaypointMobility tail({{Time::sec(0), {0, 0, 0}},
                         {Time::sec(5), {5, 0, 0}},
                         {Time::sec(5), {6, 0, 0}}});
  EXPECT_DOUBLE_EQ(tail.position(Time::sec(5)).x, 6.0);
  EXPECT_DOUBLE_EQ(tail.velocity(Time::sec(5)).norm(), 0.0);
}

// speed_mps is defined as |velocity| for every model — the predictive
// policy's along-track projection assumes the two agree.
TEST(MobilityTest, SpeedMpsMatchesVelocityNorm) {
  WaypointMobility m(
      {{Time::sec(0), {0, 0, 0}}, {Time::sec(10), {30, 40, 0}}});
  EXPECT_DOUBLE_EQ(m.speed_mps(Time::sec(5)), 5.0);
  EXPECT_DOUBLE_EQ(m.speed_mps(Time::sec(5)),
                   m.velocity(Time::sec(5)).norm());
  EXPECT_DOUBLE_EQ(m.speed_mps(Time::sec(15)), 0.0);  // clamped: parked
  LinearMobility lin({0, 0, 0}, {3, 4, 0});
  EXPECT_DOUBLE_EQ(lin.speed_mps(Time::sec(7)), 5.0);
  StaticMobility st({1, 1, 1});
  EXPECT_DOUBLE_EQ(st.speed_mps(Time::sec(1)), 0.0);
}

// ---------------------------------------------------------------------------
// Antennas
// ---------------------------------------------------------------------------

TEST(AntennaTest, ParabolicPeakAndHpbw) {
  ParabolicAntenna a(14.0, 21.0, 30.0);
  EXPECT_DOUBLE_EQ(a.gain_dbi(0.0), 14.0);
  // -3 dB at half the HPBW off boresight.
  EXPECT_NEAR(a.gain_dbi(deg_to_rad(10.5)), 11.0, 0.01);
}

TEST(AntennaTest, SideLobeFloor) {
  ParabolicAntenna a(14.0, 21.0, 30.0);
  EXPECT_NEAR(a.gain_dbi(deg_to_rad(90)), -16.0, 0.01);
  EXPECT_NEAR(a.gain_dbi(deg_to_rad(180)), -16.0, 0.01);
}

TEST(AntennaTest, MonotoneInMainLobe) {
  ParabolicAntenna a;
  double prev = a.gain_dbi(0.0);
  for (double deg = 1; deg <= 30; deg += 1) {
    const double g = a.gain_dbi(deg_to_rad(deg));
    EXPECT_LE(g, prev + 1e-12);
    prev = g;
  }
}

TEST(AntennaTest, OmniIsFlat) {
  OmniAntenna a(2.0);
  EXPECT_DOUBLE_EQ(a.gain_dbi(0.0), 2.0);
  EXPECT_DOUBLE_EQ(a.gain_dbi(kPi), 2.0);
}

// ---------------------------------------------------------------------------
// Path loss / shadowing
// ---------------------------------------------------------------------------

TEST(PathLossTest, ReferenceAndSlope) {
  LogDistancePathLoss pl(PathLossConfig{2.7, 40.0, 1.0});
  EXPECT_DOUBLE_EQ(pl.loss_db(1.0), 40.0);
  EXPECT_NEAR(pl.loss_db(10.0), 67.0, 1e-9);
  EXPECT_NEAR(pl.loss_db(100.0) - pl.loss_db(10.0), 27.0, 1e-9);
}

TEST(PathLossTest, NearFieldClamped) {
  LogDistancePathLoss pl;
  EXPECT_DOUBLE_EQ(pl.loss_db(0.001), pl.loss_db(1.0));
}

TEST(ShadowingTest, MarginalStatistics) {
  ShadowingConfig cfg;
  cfg.sigma_db = 3.0;
  RunningStats stats;
  // Many independent processes sampled far apart approximate the marginal.
  for (std::uint64_t s = 0; s < 300; ++s) {
    ShadowingProcess p(cfg, Rng(s));
    stats.add(p.at(500.0));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.6);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.8);
}

TEST(ShadowingTest, SpatialCorrelationDecays) {
  ShadowingConfig cfg;
  cfg.sigma_db = 3.0;
  cfg.decorrelation_m = 10.0;
  double short_gap = 0.0;
  double long_gap = 0.0;
  const int n = 400;
  for (int s = 0; s < n; ++s) {
    ShadowingProcess p(cfg, Rng(static_cast<std::uint64_t>(s) + 1000));
    const double a = p.at(50.0);
    short_gap += a * p.at(51.0);
    long_gap += a * p.at(150.0);
  }
  // Nearby samples strongly correlated; 100 m apart essentially not.
  EXPECT_GT(short_gap / n, 0.7 * 9.0);
  EXPECT_LT(std::abs(long_gap / n), 2.5);
}

TEST(ShadowingTest, DeterministicGivenSeed) {
  ShadowingProcess a(ShadowingConfig{}, Rng(7));
  ShadowingProcess b(ShadowingConfig{}, Rng(7));
  for (double x : {0.0, 3.3, 17.2, 123.4}) {
    EXPECT_DOUBLE_EQ(a.at(x), b.at(x));
  }
}

TEST(ShadowingTest, InterpolationIsContinuous) {
  ShadowingProcess p(ShadowingConfig{}, Rng(3));
  const double a = p.at(10.0);
  const double b = p.at(10.01);
  EXPECT_NEAR(a, b, 0.2);
}

// ---------------------------------------------------------------------------
// Fading
// ---------------------------------------------------------------------------

TEST(FadingTest, UnitAveragePower) {
  FadingConfig cfg;
  RunningStats power;
  for (std::uint64_t s = 0; s < 50; ++s) {
    FadingProcess f(cfg, Rng(s));
    for (double x = 0; x < 20; x += 0.5) {
      power.add(f.wideband_gain(x, ht20_subcarrier_offsets_hz()));
    }
  }
  EXPECT_NEAR(power.mean(), 1.0, 0.15);
}

TEST(FadingTest, SpatialCoherenceIsAWavelength) {
  // Autocorrelation of the complex tap should fall off over ~lambda/2.
  FadingConfig cfg;
  const double lambda = wavelength_m(cfg.carrier_hz);
  double corr_close = 0.0;
  double corr_far = 0.0;
  const int n = 200;
  for (int s = 0; s < n; ++s) {
    FadingProcess f(cfg, Rng(static_cast<std::uint64_t>(s)));
    std::array<std::complex<double>, kNumSubcarriers> h0, h1, h2;
    f.response(0.0, ht20_subcarrier_offsets_hz(), h0);
    f.response(lambda / 20.0, ht20_subcarrier_offsets_hz(), h1);
    f.response(lambda * 3.0, ht20_subcarrier_offsets_hz(), h2);
    corr_close += std::abs(h0[0] * std::conj(h1[0]));
    corr_far += std::abs(h0[0] * std::conj(h2[0]) ) *
                ((std::arg(h0[0] * std::conj(h2[0])) > 0) ? 1.0 : -1.0);
  }
  // Samples lambda/20 apart are nearly identical in magnitude-correlation.
  EXPECT_GT(corr_close / n, 0.5);
}

TEST(FadingTest, FrequencySelectivity) {
  // With multiple taps, subcarriers at opposite band edges must differ.
  FadingProcess f(FadingConfig{}, Rng(11));
  std::array<std::complex<double>, kNumSubcarriers> h;
  f.response(5.0, ht20_subcarrier_offsets_hz(), h);
  double min_p = 1e9;
  double max_p = 0;
  for (const auto& v : h) {
    min_p = std::min(min_p, std::norm(v));
    max_p = std::max(max_p, std::norm(v));
  }
  EXPECT_GT(max_p / std::max(min_p, 1e-9), 1.5);
}

TEST(FadingTest, DeterministicGivenSeed) {
  FadingProcess a(FadingConfig{}, Rng(5));
  FadingProcess b(FadingConfig{}, Rng(5));
  std::array<std::complex<double>, kNumSubcarriers> ha, hb;
  a.response(7.7, ht20_subcarrier_offsets_hz(), ha);
  b.response(7.7, ht20_subcarrier_offsets_hz(), hb);
  for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
    EXPECT_EQ(ha[k], hb[k]);
  }
}

TEST(FadingTest, Ht20SubcarrierLayout) {
  auto offsets = ht20_subcarrier_offsets_hz();
  ASSERT_EQ(offsets.size(), kNumSubcarriers);
  EXPECT_DOUBLE_EQ(offsets.front(), -28 * 312.5e3);
  EXPECT_DOUBLE_EQ(offsets.back(), 28 * 312.5e3);
  for (double o : offsets) EXPECT_NE(o, 0.0);  // DC is unused
}

// ---------------------------------------------------------------------------
// Composite channel model
// ---------------------------------------------------------------------------

class ChannelModelTest : public ::testing::Test {
 protected:
  ChannelModelTest()
      : model(RadioConfig{18.0, 20.0, 35.0, 20e6, 6.0, 2.462e9},
              PathLossConfig{}, ShadowingConfig{}, FadingConfig{}, Rng(42)) {
    ApSite site;
    site.id = 1;
    site.position = {0.0, 15.0, 8.0};
    site.boresight = Vec3{0.0, -15.0, -6.5}.normalized();
    site.antenna = std::make_shared<ParabolicAntenna>(14.0, 21.0, 32.0);
    model.add_ap(site);
    ApSite site2 = site;
    site2.id = 2;
    site2.position = {7.5, 15.0, 8.0};
    model.add_ap(site2);
  }
  ChannelModel model;
};

TEST_F(ChannelModelTest, NoiseFloor) {
  EXPECT_NEAR(model.noise_floor_dbm(), -95.0, 0.1);
}

TEST_F(ChannelModelTest, ReciprocalFading) {
  // Up- and downlink CSI must differ only by the TX power offset — the
  // property WGTT relies on to predict downlink delivery from uplink CSI.
  model.add_client(net::kClientBase,
                   std::make_shared<StaticMobility>(Vec3{0, 0, 1.5}));
  const auto down = model.downlink_csi(1, net::kClientBase, Time::ms(5));
  const auto up = model.uplink_csi(1, net::kClientBase, Time::ms(5));
  const double offset = 18.0 - 20.0;  // ap_tx - client_tx
  for (std::size_t k = 0; k < phy::kNumSubcarriers; ++k) {
    EXPECT_NEAR(down.subcarrier_snr_db[k] - up.subcarrier_snr_db[k], offset,
                1e-9);
  }
}

TEST_F(ChannelModelTest, PicocellShape) {
  // SNR at the cell centre is strong; 20 m down the road it is unusable.
  model.add_client(net::kClientBase,
                   std::make_shared<StaticMobility>(Vec3{0, 0, 1.5}));
  model.add_client(net::kClientBase + 1,
                   std::make_shared<StaticMobility>(Vec3{20, 0, 1.5}));
  const double center =
      model.downlink_csi(1, net::kClientBase, Time::zero()).mean_snr_db();
  const double far =
      model.downlink_csi(1, net::kClientBase + 1, Time::zero()).mean_snr_db();
  EXPECT_GT(center, 10.0);
  EXPECT_LT(far, 5.0);
  EXPECT_GT(center - far, 10.0);
}

TEST_F(ChannelModelTest, BestApTracksPosition) {
  model.add_client(net::kClientBase,
                   std::make_shared<StaticMobility>(Vec3{0, 0, 1.5}));
  model.add_client(net::kClientBase + 1,
                   std::make_shared<StaticMobility>(Vec3{7.5, 0, 1.5}));
  EXPECT_EQ(model.best_ap(net::kClientBase, Time::zero()), 1u);
  EXPECT_EQ(model.best_ap(net::kClientBase + 1, Time::zero()), 2u);
}

TEST_F(ChannelModelTest, ApToApCouplingIsWeak) {
  // Directional antennas + the AP system loss (twice) bury AP-AP coupling
  // far below carrier sense — the hidden-terminal regime of the testbed.
  const double gain = model.path_gain_db(1, 2, Time::zero());
  EXPECT_LT(18.0 + gain, -90.0);  // received power way below CS at -82 dBm
}

TEST_F(ChannelModelTest, ClientToClientGain) {
  model.add_client(net::kClientBase,
                   std::make_shared<StaticMobility>(Vec3{0, 0, 1.5}));
  model.add_client(net::kClientBase + 1,
                   std::make_shared<StaticMobility>(Vec3{3, 0, 1.5}));
  const double g =
      model.client_to_client_gain_db(net::kClientBase, net::kClientBase + 1,
                                     Time::zero());
  // Two cars 3 m apart hear each other loudly (carrier sense holds).
  EXPECT_GT(20.0 + g, -82.0);
}

TEST_F(ChannelModelTest, RssiConsistentWithSnr) {
  model.add_client(net::kClientBase,
                   std::make_shared<StaticMobility>(Vec3{0, 0, 1.5}));
  const auto csi = model.downlink_csi(1, net::kClientBase, Time::zero());
  EXPECT_NEAR(csi.rssi_dbm - model.noise_floor_dbm(), csi.mean_snr_db(), 6.0);
}

}  // namespace
}  // namespace wgtt::channel
