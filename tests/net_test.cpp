// Unit tests for net: packet construction, tunneling, dedup keys, and the
// backhaul latency/ordering model.
#include <gtest/gtest.h>

#include "net/backhaul.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::net {
namespace {

Packet data_packet(NodeId src, NodeId dst, std::size_t size = 1500) {
  Packet p;
  p.type = PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.size_bytes = size;
  return p;
}

TEST(PacketTest, UniqueUids) {
  auto a = make_packet(data_packet(1, 2));
  auto b = make_packet(data_packet(1, 2));
  EXPECT_NE(a->uid, b->uid);
}

TEST(PacketTest, NodeClassification) {
  EXPECT_TRUE(is_ap(1));
  EXPECT_TRUE(is_ap(8));
  EXPECT_FALSE(is_ap(kControllerId));
  EXPECT_TRUE(is_client(kClientBase));
  EXPECT_FALSE(is_client(kServerBase));
  EXPECT_FALSE(is_client(5));
}

TEST(PacketTest, DedupKeyCompositionMatchesPaper) {
  // 48-bit key: source address ++ IP-ID (§3.2.2).
  Packet p = data_packet(kClientBase, kServerBase);
  p.ip_id = 0xBEEF;
  const std::uint64_t key = dedup_key(p);
  EXPECT_EQ(key & 0xFFFF, 0xBEEFu);
  EXPECT_EQ(key >> 16, kClientBase);
}

TEST(PacketTest, DedupKeyDistinguishesSources) {
  Packet a = data_packet(kClientBase, kServerBase);
  Packet b = data_packet(kClientBase + 1, kServerBase);
  a.ip_id = b.ip_id = 7;
  EXPECT_NE(dedup_key(a), dedup_key(b));
}

TEST(PacketTest, PayloadRoundTrip) {
  struct Custom {
    int x;
  };
  Packet p = data_packet(1, 2);
  p.payload = Custom{42};
  auto pkt = make_packet(std::move(p));
  const Custom* c = payload_as<Custom>(*pkt);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->x, 42);
  EXPECT_EQ(payload_as<int>(*pkt), nullptr);  // type mismatch -> nullptr
}

TEST(TunnelTest, EncapAddsOverheadAndPreservesInner) {
  auto inner = make_packet(data_packet(kClientBase, kServerBase, 1000));
  TunneledPacket t = encapsulate(inner, 3, kControllerId);
  EXPECT_EQ(t.outer_src, 3u);
  EXPECT_EQ(t.outer_dst, kControllerId);
  EXPECT_EQ(t.wire_bytes, 1000 + kTunnelOverheadBytes);
  EXPECT_EQ(decapsulate(t)->uid, inner->uid);
  // Inner addressing unchanged — the AP must still see the client's L2/L3
  // destination (§3.1.3).
  EXPECT_EQ(decapsulate(t)->dst, kServerBase);
}

// ---------------------------------------------------------------------------
// Backhaul
// ---------------------------------------------------------------------------

class BackhaulTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  BackhaulConfig cfg;
  Rng rng{99};
};

TEST_F(BackhaulTest, DeliversToAttachedNode) {
  cfg.jitter = Time::zero();
  Backhaul bh(sched, cfg, rng);
  int got = 0;
  bh.attach(2, [&](const TunneledPacket&) { ++got; });
  bh.send(encapsulate(make_packet(data_packet(1, 2)), 1, 2));
  sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(bh.frames_sent(), 1u);
}

TEST_F(BackhaulTest, DropsToUnattachedNode) {
  Backhaul bh(sched, cfg, rng);
  bh.send(encapsulate(make_packet(data_packet(1, 2)), 1, 7));
  sched.run();
  EXPECT_EQ(bh.frames_dropped(), 1u);
  EXPECT_EQ(bh.frames_sent(), 0u);
}

TEST_F(BackhaulTest, LatencyIncludesSerialization) {
  cfg.jitter = Time::zero();
  cfg.base_latency = Time::us(100);
  cfg.link_rate_bps = 1e9;
  Backhaul bh(sched, cfg, rng);
  Time arrival;
  bh.attach(2, [&](const TunneledPacket&) { arrival = sched.now(); });
  auto inner = make_packet(data_packet(1, 2, 1000 - kTunnelOverheadBytes));
  bh.send(encapsulate(inner, 1, 2));  // 1000 bytes on the wire
  sched.run();
  // 100 us base + 8 us serialization of 1000 B at 1 Gb/s.
  EXPECT_EQ(arrival, Time::us(108));
}

TEST_F(BackhaulTest, FifoPerPairDespiteJitter) {
  cfg.jitter = Time::us(500);  // heavy jitter
  Backhaul bh(sched, cfg, rng);
  std::vector<std::uint64_t> order;
  bh.attach(2, [&](const TunneledPacket& f) { order.push_back(f.inner->uid); });
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 20; ++i) {
    auto pkt = make_packet(data_packet(1, 2, 100));
    sent.push_back(pkt->uid);
    bh.send(encapsulate(pkt, 1, 2));
  }
  sched.run();
  EXPECT_EQ(order, sent);
}

TEST_F(BackhaulTest, LossInjection) {
  cfg.loss_rate = 1.0;
  Backhaul bh(sched, cfg, rng);
  int got = 0;
  bh.attach(2, [&](const TunneledPacket&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    bh.send(encapsulate(make_packet(data_packet(1, 2)), 1, 2));
  }
  sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(bh.frames_dropped(), 10u);
}

TEST_F(BackhaulTest, BytesAccounted) {
  cfg.jitter = Time::zero();
  Backhaul bh(sched, cfg, rng);
  bh.attach(2, [](const TunneledPacket&) {});
  bh.send(encapsulate(make_packet(data_packet(1, 2, 500)), 1, 2));
  sched.run();
  EXPECT_EQ(bh.bytes_sent(), 500 + kTunnelOverheadBytes);
}

}  // namespace
}  // namespace wgtt::net
