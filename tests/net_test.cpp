// Unit tests for net: packet construction, tunneling, dedup keys, and the
// backhaul latency/ordering model.
#include <gtest/gtest.h>

#include "net/backhaul.h"
#include "net/flight_recorder.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "transport/udp_flow.h"
#include "util/rng.h"

namespace wgtt::net {
namespace {

Packet data_packet(NodeId src, NodeId dst, std::size_t size = 1500) {
  Packet p;
  p.type = PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.size_bytes = size;
  return p;
}

TEST(PacketTest, UniqueUids) {
  auto a = make_packet(data_packet(1, 2));
  auto b = make_packet(data_packet(1, 2));
  EXPECT_NE(a->uid, b->uid);
}

TEST(PacketTest, NodeClassification) {
  EXPECT_TRUE(is_ap(1));
  EXPECT_TRUE(is_ap(8));
  EXPECT_FALSE(is_ap(kControllerId));
  EXPECT_TRUE(is_client(kClientBase));
  EXPECT_FALSE(is_client(kServerBase));
  EXPECT_FALSE(is_client(5));
}

TEST(PacketTest, DedupKeyCompositionMatchesPaper) {
  // 48-bit key: source address ++ IP-ID (§3.2.2).
  Packet p = data_packet(kClientBase, kServerBase);
  p.ip_id = 0xBEEF;
  const std::uint64_t key = dedup_key(p);
  EXPECT_EQ(key & 0xFFFF, 0xBEEFu);
  EXPECT_EQ(key >> 16, kClientBase);
}

TEST(PacketTest, DedupKeyDistinguishesSources) {
  Packet a = data_packet(kClientBase, kServerBase);
  Packet b = data_packet(kClientBase + 1, kServerBase);
  a.ip_id = b.ip_id = 7;
  EXPECT_NE(dedup_key(a), dedup_key(b));
}

TEST(PacketTest, PayloadRoundTrip) {
  struct Custom {
    int x;
  };
  Packet p = data_packet(1, 2);
  p.payload = Custom{42};
  auto pkt = make_packet(std::move(p));
  const Custom* c = payload_as<Custom>(*pkt);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->x, 42);
  EXPECT_EQ(payload_as<int>(*pkt), nullptr);  // type mismatch -> nullptr
}

TEST(TunnelTest, EncapAddsOverheadAndPreservesInner) {
  auto inner = make_packet(data_packet(kClientBase, kServerBase, 1000));
  TunneledPacket t = encapsulate(inner, 3, kControllerId);
  EXPECT_EQ(t.outer_src, 3u);
  EXPECT_EQ(t.outer_dst, kControllerId);
  EXPECT_EQ(t.wire_bytes, 1000 + kTunnelOverheadBytes);
  EXPECT_EQ(decapsulate(t)->uid, inner->uid);
  // Inner addressing unchanged — the AP must still see the client's L2/L3
  // destination (§3.1.3).
  EXPECT_EQ(decapsulate(t)->dst, kServerBase);
}

// ---------------------------------------------------------------------------
// Backhaul
// ---------------------------------------------------------------------------

class BackhaulTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  BackhaulConfig cfg;
  Rng rng{99};
};

TEST_F(BackhaulTest, DeliversToAttachedNode) {
  cfg.jitter = Time::zero();
  Backhaul bh(sched, cfg, rng);
  int got = 0;
  bh.attach(2, [&](const TunneledPacket&) { ++got; });
  bh.send(encapsulate(make_packet(data_packet(1, 2)), 1, 2));
  sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(bh.frames_sent(), 1u);
}

TEST_F(BackhaulTest, DropsToUnattachedNode) {
  Backhaul bh(sched, cfg, rng);
  bh.send(encapsulate(make_packet(data_packet(1, 2)), 1, 7));
  sched.run();
  EXPECT_EQ(bh.frames_dropped(), 1u);
  EXPECT_EQ(bh.frames_sent(), 0u);
}

TEST_F(BackhaulTest, LatencyIncludesSerialization) {
  cfg.jitter = Time::zero();
  cfg.base_latency = Time::us(100);
  cfg.link_rate_bps = 1e9;
  Backhaul bh(sched, cfg, rng);
  Time arrival;
  bh.attach(2, [&](const TunneledPacket&) { arrival = sched.now(); });
  auto inner = make_packet(data_packet(1, 2, 1000 - kTunnelOverheadBytes));
  bh.send(encapsulate(inner, 1, 2));  // 1000 bytes on the wire
  sched.run();
  // 100 us base + 8 us serialization of 1000 B at 1 Gb/s.
  EXPECT_EQ(arrival, Time::us(108));
}

TEST_F(BackhaulTest, FifoPerPairDespiteJitter) {
  cfg.jitter = Time::us(500);  // heavy jitter
  Backhaul bh(sched, cfg, rng);
  std::vector<std::uint64_t> order;
  bh.attach(2, [&](const TunneledPacket& f) { order.push_back(f.inner->uid); });
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 20; ++i) {
    auto pkt = make_packet(data_packet(1, 2, 100));
    sent.push_back(pkt->uid);
    bh.send(encapsulate(pkt, 1, 2));
  }
  sched.run();
  EXPECT_EQ(order, sent);
}

TEST_F(BackhaulTest, LossInjection) {
  cfg.loss_rate = 1.0;
  Backhaul bh(sched, cfg, rng);
  int got = 0;
  bh.attach(2, [&](const TunneledPacket&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    bh.send(encapsulate(make_packet(data_packet(1, 2)), 1, 2));
  }
  sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(bh.frames_dropped(), 10u);
}

TEST_F(BackhaulTest, BytesAccounted) {
  cfg.jitter = Time::zero();
  Backhaul bh(sched, cfg, rng);
  bh.attach(2, [](const TunneledPacket&) {});
  bh.send(encapsulate(make_packet(data_packet(1, 2, 500)), 1, 2));
  sched.run();
  EXPECT_EQ(bh.bytes_sent(), 500 + kTunnelOverheadBytes);
}

// ---------------------------------------------------------------------------
// Dedup key vs the IP-ID counter
// ---------------------------------------------------------------------------

TEST(PacketTest, DedupKeyIpIdWraparound) {
  // The per-source IP-ID counter is 16 bits and wraps at 65535 -> 0, so the
  // 48-bit src ++ IP-ID key repeats after 65536 packets from one source —
  // which is exactly why the controller ages dedup entries out (§3.2.2).
  transport::IpIdAllocator ids;
  EXPECT_EQ(ids.next(kClientBase), 0u);
  for (int i = 1; i < 65535; ++i) ids.next(kClientBase);
  EXPECT_EQ(ids.next(kClientBase), 65535u);
  EXPECT_EQ(ids.next(kClientBase), 0u);  // wrapped

  Packet first = data_packet(kClientBase, kServerBase);
  first.ip_id = 0;
  Packet last = data_packet(kClientBase, kServerBase);
  last.ip_id = 65535;
  Packet wrapped = data_packet(kClientBase, kServerBase);
  wrapped.ip_id = 0;
  EXPECT_NE(dedup_key(first), dedup_key(last));
  EXPECT_EQ(dedup_key(first), dedup_key(wrapped));
}

TEST(PacketTest, DedupKeyDistinguishesIpIdsOfOneSource) {
  Packet a = data_packet(kClientBase, kServerBase);
  Packet b = data_packet(kClientBase, kServerBase);
  a.ip_id = 7;
  b.ip_id = 8;
  EXPECT_NE(dedup_key(a), dedup_key(b));
}

// ---------------------------------------------------------------------------
// Exhaustive PacketType coverage (describe / to_string)
// ---------------------------------------------------------------------------

TEST(PacketTest, ToStringCoversEveryPacketType) {
  for (std::size_t i = 0; i < kPacketTypeCount; ++i) {
    const auto t = static_cast<PacketType>(i);
    EXPECT_STRNE(to_string(t), "?") << "PacketType " << i << " unnamed";
  }
  EXPECT_STREQ(to_string(static_cast<PacketType>(kPacketTypeCount)), "?");
}

TEST(PacketTest, DescribeNamesEveryPacketType) {
  for (std::size_t i = 0; i < kPacketTypeCount; ++i) {
    Packet p = data_packet(kClientBase, kServerBase);
    p.type = static_cast<PacketType>(i);
    const std::string text = describe(p);
    EXPECT_NE(text.find(to_string(p.type)), std::string::npos)
        << "describe() output missing type name for PacketType " << i;
  }
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, HopNamesAreExhaustive) {
  for (std::size_t i = 0; i < kHopCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<Hop>(i)), "?") << "Hop " << i;
  }
  EXPECT_STREQ(to_string(static_cast<Hop>(kHopCount)), "?");
}

TEST(FlightRecorderTest, DropCauseNamesAreExhaustive) {
  for (std::size_t i = 0; i < kDropCauseCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<DropCause>(i)), "?")
        << "DropCause " << i << " unnamed";
  }
  EXPECT_STREQ(to_string(static_cast<DropCause>(kDropCauseCount)), "?");
}

TEST(FlightRecorderTest, JsonlShapeIsFixedFieldOrder) {
  FlightRecorder r;
  r.record(7, Time::us(1500), Hop::kCtrlFanout, 0, {{"ap", 3}, {"index", 12}});
  r.drop(7, Time::us(2500), Hop::kApDrop, 4, DropCause::kStale,
         {{"client", 100}});
  r.marker(Time::us(3000), Hop::kSwitchStart, 0, {{"client", 100}});
  EXPECT_EQ(r.records(), 3u);
  EXPECT_EQ(
      r.jsonl(),
      "{\"kind\":\"schema\",\"stream\":\"wgtt.packets\",\"version\":1}\n"
      "{\"uid\":7,\"t_us\":1500.000,\"hop\":\"ctrl_fanout\",\"node\":0,"
      "\"ap\":3,\"index\":12}\n"
      "{\"uid\":7,\"t_us\":2500.000,\"hop\":\"ap_drop\",\"node\":4,"
      "\"client\":100,\"cause\":\"stale\"}\n"
      "{\"uid\":0,\"t_us\":3000.000,\"hop\":\"switch_start\",\"node\":0,"
      "\"client\":100}\n");
}

TEST(FlightRecorderTest, SamplerIsSeededDeterministicAndKeepsMarkers) {
  FlightRecorder r(FlightRecorderConfig{42, 4});
  EXPECT_TRUE(r.sampled(0));  // markers always pass
  std::size_t hits = 0;
  for (std::uint64_t uid = 1; uid <= 4096; ++uid) {
    const bool s = r.sampled(uid);
    EXPECT_EQ(s, r.sampled(uid));  // stable per uid
    hits += s;
  }
  // ~1 in 4 of a well-mixed hash; generous bounds, no flakiness.
  EXPECT_GT(hits, 4096u / 8);
  EXPECT_LT(hits, 4096u / 2);
  // A different seed selects a different subset.
  FlightRecorder other(FlightRecorderConfig{43, 4});
  std::size_t differs = 0;
  for (std::uint64_t uid = 1; uid <= 4096; ++uid) {
    differs += r.sampled(uid) != other.sampled(uid);
  }
  EXPECT_GT(differs, 0u);
  // Unsampled records write nothing.
  FlightRecorder none(FlightRecorderConfig{42, 1 << 30});
  std::uint64_t skipped = 1;
  while (none.sampled(skipped)) ++skipped;
  none.record(skipped, Time::us(1), Hop::kMacTx, 1);
  EXPECT_EQ(none.records(), 0u);
  // Only the schema header — no packet records.
  EXPECT_EQ(none.jsonl(),
            "{\"kind\":\"schema\",\"stream\":\"wgtt.packets\",\"version\":1}\n");
}

TEST(FlightRecorderTest, ScopedInstallNestsAndNullKeepsCurrent) {
  FlightRecorder* before = FlightRecorder::current();
  FlightRecorder a, b;
  {
    ScopedFlightRecorder sa(&a);
    EXPECT_EQ(FlightRecorder::current(), &a);
    {
      ScopedFlightRecorder keep(nullptr);
      EXPECT_EQ(FlightRecorder::current(), &a);
      ScopedFlightRecorder sb(&b);
      EXPECT_EQ(FlightRecorder::current(), &b);
    }
    EXPECT_EQ(FlightRecorder::current(), &a);
  }
  EXPECT_EQ(FlightRecorder::current(), before);
}

TEST(PacketTest, ScopedUidAllocatorRestartsPerSim) {
  PacketUidAllocator sim_a, sim_b;
  {
    ScopedPacketUidAllocator scope_a(&sim_a);
    EXPECT_EQ(make_packet(data_packet(1, 2))->uid, 1u);
    EXPECT_EQ(make_packet(data_packet(1, 2))->uid, 2u);
    {
      ScopedPacketUidAllocator scope_b(&sim_b);
      EXPECT_EQ(make_packet(data_packet(1, 2))->uid, 1u);
    }
    EXPECT_EQ(make_packet(data_packet(1, 2))->uid, 3u);
  }
}

}  // namespace
}  // namespace wgtt::net
