// Tests for the application workloads: video streaming (pre-buffer and
// rebuffer accounting), conferencing (fps + adaptation), and web browsing
// (object pipeline, load time, the "inf" case) — over ideal fake pipes so
// the app logic is isolated from the radio.
#include <gtest/gtest.h>

#include "apps/conference.h"
#include "apps/video_stream.h"
#include "apps/web_browse.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::apps {
namespace {

// ---------------------------------------------------------------------------
// Video streaming
// ---------------------------------------------------------------------------

struct VideoWorld {
  explicit VideoWorld(double pipe_mbps) : pipe_mbps_(pipe_mbps),
        app(sched, ids, transport::TcpConfig{}, VideoStreamConfig{}, 1,
            net::kServerBase, net::kClientBase) {
    // Model the pipe as a fixed-rate leaky bucket: data packets get a
    // serialization + propagation delay proportional to backlog.
    app.connection().transmit_data = [this](net::PacketPtr p) {
      const Time ser = Time::sec(static_cast<double>(p->size_bytes) * 8.0 /
                                 (pipe_mbps_ * 1e6));
      busy_until_ = std::max(busy_until_, sched.now()) + ser;
      sched.schedule_at(busy_until_, [this, p]() {
        app.connection().on_network_data(p);
      });
    };
    app.connection().transmit_ack = [this](net::PacketPtr p) {
      sched.schedule(Time::ms(2), [this, p]() {
        app.connection().on_network_ack(p);
      });
    };
  }
  sim::Scheduler sched;
  transport::IpIdAllocator ids;
  double pipe_mbps_;
  Time busy_until_;
  VideoStreamApp app;
};

TEST(VideoStreamTest, FastPipePlaysWithoutRebuffering) {
  VideoWorld w(20.0);  // 20 Mb/s pipe for a 4 Mb/s video
  w.app.start();
  w.sched.run_until(Time::sec(10));
  EXPECT_EQ(w.app.rebuffer_events(), 0u);
  EXPECT_GT(w.app.playing_time().to_sec(), 7.0);
  // Initial pre-buffering is the only stall.
  EXPECT_LT(w.app.stalled_time().to_sec(), 2.0);
}

TEST(VideoStreamTest, SlowPipeRebuffers) {
  VideoWorld w(2.0);  // pipe slower than the video bitrate
  w.app.start();
  w.sched.run_until(Time::sec(20));
  EXPECT_GT(w.app.rebuffer_events(), 0u);
  EXPECT_GT(w.app.rebuffer_ratio(Time::sec(20)), 0.3);
}

TEST(VideoStreamTest, PrebufferDelaysPlayback) {
  VideoWorld w(20.0);
  w.app.start();
  w.sched.run_until(Time::ms(100));
  EXPECT_FALSE(w.app.playing());  // still pre-buffering 1500 ms of video
  w.sched.run_until(Time::sec(3));
  EXPECT_TRUE(w.app.playing());
}

// ---------------------------------------------------------------------------
// Conferencing
// ---------------------------------------------------------------------------

TEST(ConferenceTest, PerfectPipeRendersFullFps) {
  sim::Scheduler sched;
  transport::IpIdAllocator ids;
  ConferenceConfig cfg;
  cfg.frame_rate = 30.0;
  ConferenceApp app(sched, ids, cfg);
  app.transmit = [&](net::PacketPtr p) { app.on_packet(p); };
  app.start();
  sched.run_until(Time::sec(10));
  EXPECT_NEAR(app.fps_samples().median(), 30.0, 1.5);
  EXPECT_EQ(app.frames_rendered(), app.frames_sent());
}

TEST(ConferenceTest, FragmentLossKillsWholeFrame) {
  sim::Scheduler sched;
  transport::IpIdAllocator ids;
  ConferenceConfig cfg;
  cfg.frame_rate = 30.0;
  cfg.nominal_bitrate_bps = 3e6;  // ~4 fragments per frame
  ConferenceApp app(sched, ids, cfg);
  int n = 0;
  app.transmit = [&](net::PacketPtr p) {
    if (++n % 4 != 0) app.on_packet(p);  // lose every 4th fragment
  };
  app.start();
  sched.run_until(Time::sec(5));
  // ~every frame loses one fragment: almost nothing renders.
  EXPECT_LT(app.fps_samples().median(), 5.0);
}

TEST(ConferenceTest, AdaptiveSenderShrinksFrames) {
  sim::Scheduler sched;
  transport::IpIdAllocator ids;
  ConferenceConfig cfg;
  cfg.frame_rate = 30.0;
  cfg.nominal_bitrate_bps = 3e6;
  cfg.adaptive = true;
  ConferenceApp app(sched, ids, cfg);
  wgtt::Rng rng(5);
  app.transmit = [&](net::PacketPtr p) {
    if (!rng.bernoulli(0.15)) app.on_packet(p);  // 15% fragment loss
  };
  app.start();
  sched.run_until(Time::sec(15));
  // The Hangouts behaviour: resolution shrinks until frames fit in one
  // fragment, fps partially recovers.
  EXPECT_LT(app.current_scale(), 0.9);
  EXPECT_GT(app.fps_samples().percentile(0.75), 10.0);
}

TEST(ConferenceTest, FpsSampledOncePerSecond) {
  sim::Scheduler sched;
  transport::IpIdAllocator ids;
  ConferenceApp app(sched, ids, ConferenceConfig{});
  app.transmit = [&](net::PacketPtr p) { app.on_packet(p); };
  app.start();
  sched.run_until(Time::sec(5) + Time::ms(500));
  EXPECT_EQ(app.fps_samples().count(), 5u);
}

// ---------------------------------------------------------------------------
// Web browsing
// ---------------------------------------------------------------------------

struct WebWorld {
  explicit WebWorld(double pipe_mbps) {
    WebBrowseConfig cfg;
    cfg.server = net::kServerBase;
    cfg.client = net::kClientBase;
    app = std::make_unique<WebBrowseApp>(sched, ids, transport::TcpConfig{},
                                         cfg);
    app->transmit_request = [this](net::PacketPtr p) {
      // Request reaches the server after 5 ms.
      sched.schedule(Time::ms(5), [this, p]() {
        const auto* req = net::payload_as<WebRequestMsg>(*p);
        ASSERT_NE(req, nullptr);
        app->on_request(*req);
      });
    };
    for (std::size_t i = 0; i < app->connections(); ++i) {
      auto& conn = app->connection(i);
      conn.transmit_data = [this, pipe_mbps, &conn](net::PacketPtr p) {
        const Time ser = Time::sec(static_cast<double>(p->size_bytes) * 8.0 /
                                   (pipe_mbps * 1e6));
        busy_until_ = std::max(busy_until_, sched.now()) + ser;
        sched.schedule_at(busy_until_ + Time::ms(2), [&conn, p]() {
          conn.on_network_data(p);
        });
      };
      conn.transmit_ack = [this, &conn](net::PacketPtr p) {
        sched.schedule(Time::ms(2), [&conn, p]() { conn.on_network_ack(p); });
      };
    }
  }
  sim::Scheduler sched;
  transport::IpIdAllocator ids;
  Time busy_until_;
  std::unique_ptr<WebBrowseApp> app;
};

TEST(WebBrowseTest, LoadsWholePage) {
  WebWorld w(10.0);
  w.app->start();
  w.sched.run_until(Time::sec(60));
  ASSERT_TRUE(w.app->loaded());
  EXPECT_EQ(w.app->objects_completed(), WebBrowseConfig{}.num_objects);
  // 2.1 MB over a 10 Mb/s pipe: somewhere in the 1.7 - 15 s range once
  // request round trips and TCP ramp-up are accounted for.
  EXPECT_GT(w.app->load_time()->to_sec(), 1.5);
  EXPECT_LT(w.app->load_time()->to_sec(), 15.0);
}

TEST(WebBrowseTest, FasterPipeLoadsFaster) {
  WebWorld slow(5.0);
  WebWorld fast(40.0);
  slow.app->start();
  fast.app->start();
  slow.sched.run_until(Time::sec(120));
  fast.sched.run_until(Time::sec(120));
  ASSERT_TRUE(slow.app->loaded());
  ASSERT_TRUE(fast.app->loaded());
  EXPECT_LT(fast.app->load_time()->to_sec(), slow.app->load_time()->to_sec());
}

TEST(WebBrowseTest, DeadPipeNeverLoads) {
  WebWorld w(10.0);
  // Sever the request path entirely.
  w.app->transmit_request = [](net::PacketPtr) {};
  w.app->start();
  w.sched.run_until(Time::sec(30));
  EXPECT_FALSE(w.app->loaded());
  EXPECT_FALSE(w.app->load_time().has_value());  // the paper's "inf"
}

TEST(WebBrowseTest, ParallelConnectionsAllUsed) {
  WebWorld w(20.0);
  w.app->start();
  w.sched.run_until(Time::sec(60));
  ASSERT_TRUE(w.app->loaded());
  for (std::size_t i = 0; i < w.app->connections(); ++i) {
    EXPECT_GT(w.app->connection(i).delivered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace wgtt::apps
