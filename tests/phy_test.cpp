// Unit + property tests for the PHY: BER curves, ESNR (Halperin), the MCS
// table, the logistic PER model, and both rate controllers.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/csi.h"
#include "phy/error_model.h"
#include "phy/esnr.h"
#include "phy/mcs.h"
#include "phy/rate_control.h"
#include "util/units.h"

namespace wgtt::phy {
namespace {

Csi flat_csi(double snr_db) {
  Csi csi;
  for (auto& s : csi.subcarrier_snr_db) s = snr_db;
  return csi;
}

// ---------------------------------------------------------------------------
// BER / ESNR
// ---------------------------------------------------------------------------

TEST(BerTest, MonotoneDecreasingInSnr) {
  for (Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                       Modulation::kQam16, Modulation::kQam64}) {
    double prev = 1.0;
    for (double db = -10; db <= 40; db += 1) {
      const double b = ber(m, db_to_linear(db));
      EXPECT_LE(b, prev + 1e-15);
      prev = b;
    }
  }
}

TEST(BerTest, HigherOrderModulationIsWorse) {
  const double snr = db_to_linear(10.0);
  EXPECT_LT(ber(Modulation::kBpsk, snr), ber(Modulation::kQpsk, snr));
  EXPECT_LT(ber(Modulation::kQpsk, snr), ber(Modulation::kQam16, snr));
  EXPECT_LT(ber(Modulation::kQam16, snr), ber(Modulation::kQam64, snr));
}

TEST(BerTest, KnownBpskValue) {
  // BPSK at 9.6 dB -> BER ~1e-5 (textbook value).
  EXPECT_NEAR(std::log10(ber(Modulation::kBpsk, db_to_linear(9.6))), -5.0,
              0.35);
}

TEST(BerInverseTest, RoundTrip) {
  for (Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                       Modulation::kQam16, Modulation::kQam64}) {
    for (double target : {1e-2, 1e-3, 1e-5}) {
      const double snr = ber_inverse(m, target);
      EXPECT_NEAR(std::log10(ber(m, snr)), std::log10(target), 0.1);
    }
  }
}

TEST(EsnrTest, FlatChannelIsIdentity) {
  // On a flat channel ESNR equals the per-subcarrier SNR.
  for (double snr : {5.0, 10.0, 15.0}) {
    EXPECT_NEAR(effective_snr_db(flat_csi(snr), Modulation::kQam16), snr,
                0.15);
  }
}

TEST(EsnrTest, DeepFadesDominate) {
  // Half the subcarriers at 20 dB, half at 0 dB: the mean SNR is 10 dB but
  // the effective SNR must sit far below it — the whole point of ESNR.
  Csi csi;
  for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
    csi.subcarrier_snr_db[k] = (k % 2 == 0) ? 20.0 : 0.0;
  }
  const double esnr = effective_snr_db(csi, Modulation::kQam16);
  EXPECT_NEAR(csi.mean_snr_db(), 10.0, 1e-9);
  EXPECT_LT(esnr, csi.mean_snr_db() - 2.0);  // well below the flat average
}

TEST(EsnrTest, MonotoneInChannelQuality) {
  double prev = -100;
  for (double snr = 0; snr <= 20; snr += 2) {
    const double e = selection_esnr_db(flat_csi(snr));
    EXPECT_GT(e, prev);
    prev = e;
  }
}

// ---------------------------------------------------------------------------
// MCS table
// ---------------------------------------------------------------------------

TEST(McsTest, TableShape) {
  auto table = mcs_table();
  ASSERT_EQ(table.size(), kNumMcs);
  for (unsigned i = 0; i < kNumMcs; ++i) {
    EXPECT_EQ(table[i].index, i);
    if (i > 0) {
      // Faster rates need more SNR.
      EXPECT_GT(table[i].rate_mbps_lgi, table[i - 1].rate_mbps_lgi);
      EXPECT_GT(table[i].per50_esnr_db, table[i - 1].per50_esnr_db);
    }
  }
}

TEST(McsTest, KnownRates) {
  EXPECT_DOUBLE_EQ(mcs(0).rate_mbps_lgi, 6.5);
  EXPECT_DOUBLE_EQ(mcs(7).rate_mbps_lgi, 65.0);
  EXPECT_DOUBLE_EQ(mcs(7).rate_mbps_sgi, 72.2);
  EXPECT_EQ(basic_mcs().index, 0u);
}

TEST(McsTest, ShortGiSelectable) {
  EXPECT_DOUBLE_EQ(mcs(3).rate_mbps(false), 26.0);
  EXPECT_DOUBLE_EQ(mcs(3).rate_mbps(true), 28.9);
}

// ---------------------------------------------------------------------------
// Error model
// ---------------------------------------------------------------------------

TEST(ErrorModelTest, AnchoredAtFiftyPercent) {
  ErrorModel em;
  for (const McsInfo& m : mcs_table()) {
    EXPECT_NEAR(em.per(m, m.per50_esnr_db, 1460), 0.5, 1e-9);
  }
}

TEST(ErrorModelTest, SigmoidShape) {
  ErrorModel em;
  const McsInfo& m = mcs(4);
  EXPECT_GT(em.per(m, m.per50_esnr_db - 3.0, 1460), 0.95);
  EXPECT_LT(em.per(m, m.per50_esnr_db + 3.0, 1460), 0.05);
}

TEST(ErrorModelTest, MonotoneInEsnr) {
  ErrorModel em;
  double prev = 1.1;
  for (double e = -5; e <= 30; e += 0.5) {
    const double p = em.per(mcs(3), e, 1460);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ErrorModelTest, LongerFramesFailMore) {
  ErrorModel em;
  const double e = mcs(3).per50_esnr_db + 1.0;
  EXPECT_GT(em.per(mcs(3), e, 1460), em.per(mcs(3), e, 100));
}

TEST(ErrorModelTest, BestMcsForThresholds) {
  ErrorModel em;
  // Far below everything: falls back to MCS 0.
  EXPECT_EQ(em.best_mcs_for(-10.0, 1460).index, 0u);
  // Comfortably above the whole table: MCS 7.
  EXPECT_EQ(em.best_mcs_for(35.0, 1460).index, 7u);
  // Monotone: higher ESNR never selects a slower MCS.
  unsigned prev = 0;
  for (double e = 0; e <= 30; e += 0.5) {
    const unsigned idx = em.best_mcs_for(e, 1460).index;
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

// ---------------------------------------------------------------------------
// Rate control
// ---------------------------------------------------------------------------

TEST(MinstrelTest, ConvergesDownOnFailure) {
  MinstrelRateControl rc;
  Time now = Time::zero();
  // Everything above MCS 2 always fails; MCS <= 2 always succeeds.
  for (int i = 0; i < 300; ++i) {
    now += Time::ms(2);
    const McsInfo& m = rc.select(now);
    const unsigned delivered = m.index <= 2 ? 32 : 0;
    rc.report(m, 32, delivered, now);
  }
  // The steady-state (non-probe) choice must be MCS 2.
  int mcs2 = 0;
  int total = 0;
  for (int i = 0; i < 100; ++i) {
    now += Time::ms(2);
    const McsInfo& m = rc.select(now);
    if (!rc.last_was_probe()) {
      ++total;
      if (m.index == 2) ++mcs2;
    }
    rc.report(m, 32, m.index <= 2 ? 32 : 0, now);
  }
  EXPECT_GT(total, 0);
  EXPECT_EQ(mcs2, total);
}

TEST(MinstrelTest, ClimbsWhenChannelImproves) {
  MinstrelRateControl rc;
  Time now = Time::zero();
  // Phase 1: only MCS 0 works.
  for (int i = 0; i < 200; ++i) {
    now += Time::ms(2);
    const McsInfo& m = rc.select(now);
    rc.report(m, 32, m.index == 0 ? 32 : 0, now);
  }
  // Phase 2: channel improves, everything up to MCS 5 works.
  int high_rate_uses = 0;
  for (int i = 0; i < 400; ++i) {
    now += Time::ms(2);
    const McsInfo& m = rc.select(now);
    rc.report(m, 32, m.index <= 5 ? 32 : 0, now);
    if (!rc.last_was_probe() && m.index >= 4) ++high_rate_uses;
  }
  // Lookaround probing must rediscover the higher rates quickly.
  EXPECT_GT(high_rate_uses, 150);
}

TEST(MinstrelTest, ProbesAreFlagged) {
  MinstrelRateControl rc(MinstrelConfig{0.25, 4});
  Time now = Time::zero();
  int probes = 0;
  for (int i = 0; i < 100; ++i) {
    now += Time::ms(1);
    rc.select(now);
    if (rc.last_was_probe()) ++probes;
    rc.report(mcs(0), 1, 1, now);
  }
  EXPECT_GE(probes, 5);
  EXPECT_LT(probes, 40);
}

TEST(EsnrRateControlTest, TracksEsnrAndAges) {
  ErrorModel em;
  EsnrRateControl rc(em, Time::ms(50));
  // No estimate yet: robust rate.
  EXPECT_EQ(rc.select(Time::ms(1)).index, 0u);
  rc.update_esnr(25.0, Time::ms(10));
  EXPECT_GE(rc.select(Time::ms(20)).index, 6u);
  // Stale estimate: falls back to robust.
  EXPECT_EQ(rc.select(Time::ms(100)).index, 0u);
}

}  // namespace
}  // namespace wgtt::phy
