// Unit tests for the discrete-event scheduler: ordering, cancellation,
// bounded runs, re-entrant scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace wgtt::sim {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::ms(3), [&]() { order.push_back(3); });
  s.schedule(Time::ms(1), [&]() { order.push_back(1); });
  s.schedule(Time::ms(2), [&]() { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, SameTimeFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Time::ms(5), [&order, i]() { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler s;
  Time seen;
  s.schedule(Time::ms(7), [&]() { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::ms(7));
}

TEST(SchedulerTest, RunUntilStopsAtBound) {
  Scheduler s;
  int fired = 0;
  s.schedule(Time::ms(1), [&]() { ++fired; });
  s.schedule(Time::ms(10), [&]() { ++fired; });
  s.run_until(Time::ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::ms(5));
  s.run_until(Time::ms(20));
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule(Time::ms(1), [&]() { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, DoubleCancelReturnsFalse) {
  Scheduler s;
  EventId id = s.schedule(Time::ms(1), []() {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, InvalidEventIdCancelFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventId{}));
}

TEST(SchedulerTest, ReentrantScheduling) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::ms(1), [&]() {
    order.push_back(1);
    s.schedule(Time::ms(1), [&]() { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), Time::ms(2));
}

TEST(SchedulerTest, StopHaltsLoop) {
  Scheduler s;
  int fired = 0;
  s.schedule(Time::ms(1), [&]() {
    ++fired;
    s.stop();
  });
  s.schedule(Time::ms(2), [&]() { ++fired; });
  s.run_until(Time::ms(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::ms(1));
}

TEST(SchedulerTest, EventCountTracked) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule(Time::ms(i), []() {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(SchedulerTest, SelfReschedulingChainHonoursBound) {
  Scheduler s;
  int ticks = 0;
  std::function<void()> tick = [&]() {
    ++ticks;
    s.schedule(Time::ms(10), tick);
  };
  s.schedule(Time::ms(10), tick);
  s.run_until(Time::ms(105));
  EXPECT_EQ(ticks, 10);
}

TEST(SchedulerTest, CancelAfterFireReturnsFalse) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule(Time::ms(1), [&]() { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  // The event already fired: cancelling its id is a recognised no-op, not a
  // deferred cancellation of some future event.
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(SchedulerTest, StaleCancelDoesNotUndercountPending) {
  Scheduler s;
  EventId fired_id = s.schedule(Time::ms(1), []() {});
  s.run();
  EXPECT_FALSE(s.cancel(fired_id));  // regression: used to return true...
  int fired = 0;
  s.schedule(Time::ms(2), [&]() { ++fired; });
  // ...and leave a stale entry in the cancelled set, undercounting pending.
  EXPECT_EQ(s.events_pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, CancelAfterCancelledEventPoppedReturnsFalse) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule(Time::ms(1), [&]() { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();  // pops and skips the cancelled event
  EXPECT_FALSE(fired);
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(SchedulerTest, OutOfOrderPopStillRejectsStaleCancel) {
  Scheduler s;
  // Seqs pop in time order, not allocation order: `late` (seq 1) is still
  // queued when `early` (seq 2) has already fired.
  bool late_fired = false;
  EventId late = s.schedule(Time::ms(10), [&]() { late_fired = true; });
  EventId early = s.schedule(Time::ms(1), []() {});
  s.run_until(Time::ms(5));
  EXPECT_FALSE(s.cancel(early));  // already fired
  EXPECT_TRUE(s.cancel(late));    // genuinely pending
  s.run();
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(SchedulerTest, ManyStaleCancelsStayRejected) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(s.schedule(Time::ms(i), []() {}));
  }
  s.run();
  for (const EventId& id : ids) EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(SchedulerTest, BulkCancellationAcrossMaximalOutOfOrderWindow) {
  // Adversarial schedule for the popped-seq tracking: event times descend as
  // seqs ascend, so the queue pops in exactly reverse seq order and the
  // low-water mark cannot advance past 0 until the very last (lowest-seq)
  // event pops.  The sparse popped-ahead set must therefore hold the whole
  // half-run window while a bulk cancellation lands in the middle of it.
  Scheduler s;
  constexpr int kN = 257;
  std::vector<EventId> ids(kN);
  int fired = 0;
  for (int i = 0; i < kN; ++i) {
    ids[static_cast<std::size_t>(i)] =
        s.schedule(Time::ms(kN - i), [&]() { ++fired; });
  }

  // Fire the first half: times 1..128 ms, i.e. seqs kN down to kN-127 — all
  // strictly above the (stuck) low-water mark.
  s.run_until(Time::ms(128));
  EXPECT_EQ(fired, 128);
  for (int i = kN - 128; i < kN; ++i) {
    EXPECT_FALSE(s.cancel(ids[static_cast<std::size_t>(i)])) << i;
  }

  // Bulk-cancel half of the still-pending events, interleaved with the
  // popped window above; each id cancels exactly once.
  int cancelled = 0;
  for (int i = 0; i < kN - 128; i += 2) {
    EXPECT_TRUE(s.cancel(ids[static_cast<std::size_t>(i)])) << i;
    ++cancelled;
  }
  EXPECT_FALSE(s.cancel(ids[0]));
  EXPECT_EQ(s.events_pending(),
            static_cast<std::size_t>(kN - 128 - cancelled));

  // Draining the queue pops every remaining seq (cancelled ones skipped),
  // collapsing the popped-ahead set back into the low-water mark.
  s.run();
  EXPECT_EQ(fired, kN - cancelled);
  EXPECT_EQ(s.events_pending(), 0u);
  for (const EventId& id : ids) EXPECT_FALSE(s.cancel(id));

  // Fresh events after the collapse still allocate, cancel, and fire
  // normally.
  bool again = false;
  EventId fresh = s.schedule(Time::ms(1), [&]() { again = true; });
  EXPECT_TRUE(s.cancel(fresh));
  EXPECT_FALSE(s.cancel(fresh));
  s.schedule(Time::ms(2), [&]() { again = true; });
  s.run();
  EXPECT_TRUE(again);
}

TEST(SchedulerTest, PendingCountExactUnderInterleavedCancelPopSchedule) {
  // Regression for the events_pending() bookkeeping audit: the old
  // queue_.size() - cancelled_.size() expression was only correct while
  // every cancelled seq was still *in* the queue.  Interleaving pops of
  // cancelled events with fresh schedules and further cancels exercises
  // every transient the expression depended on; the explicit counter must
  // stay exact (and in particular never wrap a size_t) throughout.
  Scheduler s;
  EXPECT_EQ(s.events_pending(), 0u);

  EventId a = s.schedule(Time::ms(1), []() {});
  EventId b = s.schedule(Time::ms(2), []() {});
  EventId c = s.schedule(Time::ms(3), []() {});
  EXPECT_EQ(s.events_pending(), 3u);

  EXPECT_TRUE(s.cancel(a));
  EXPECT_TRUE(s.cancel(b));
  EXPECT_EQ(s.events_pending(), 1u);

  // Pop the two cancelled events (skipped) and the live one.  With the old
  // expression this transient — cancelled seqs popped but not yet pruned —
  // is exactly where queue_.size() < cancelled_.size() could underflow.
  s.run_until(Time::ms(1));
  EXPECT_EQ(s.events_pending(), 1u);
  s.run_until(Time::ms(10));
  EXPECT_EQ(s.events_pending(), 0u);

  // Mixed wave: schedule, cancel some, fire some, schedule more mid-run.
  // Clock is now 10ms; delays are relative, so wave[i] fires at 30+i ms.
  std::vector<EventId> wave;
  for (int i = 0; i < 8; ++i) {
    wave.push_back(s.schedule(Time::ms(20 + i), []() {}));
  }
  EXPECT_EQ(s.events_pending(), 8u);
  EXPECT_TRUE(s.cancel(wave[1]));  // 31ms
  EXPECT_TRUE(s.cancel(wave[6]));  // 36ms
  EXPECT_EQ(s.events_pending(), 6u);
  s.schedule(Time::ms(21), [&]() {  // 31ms, same instant as cancelled wave[1]
    // Re-entrant: one more event and one more cancel while dispatching.
    s.schedule(Time::ms(40), []() {});  // 71ms
    EXPECT_TRUE(s.cancel(wave[7]));     // 37ms
  });
  EXPECT_EQ(s.events_pending(), 7u);
  // Fires wave[0], the re-entrant lambda (skipping cancelled wave[1] at the
  // same instant), and wave[2..5]; wave[6] and wave[7] pop later as skips.
  s.run_until(Time::ms(35));
  EXPECT_EQ(s.events_pending(), 1u);  // just the 71ms event
  s.run();
  EXPECT_EQ(s.events_pending(), 0u);
  EXPECT_FALSE(s.cancel(c));  // long-fired id stays a recognised no-op
}

TEST(SchedulerTest, CurrentEventExposesDispatchProvenance) {
  // current_event() is the parent-capture contract the causal tracer builds
  // on: zero outside dispatch, the executing event's seq inside it, and
  // restored to zero afterwards (roots scheduled from the outside world get
  // parent 0).
  Scheduler s;
  EXPECT_EQ(s.current_event(), 0u);
  std::uint64_t inside = 0, inside_child = 0;
  s.schedule(Time::ms(1), [&]() {
    inside = s.current_event();
    s.schedule(Time::ms(1), [&]() { inside_child = s.current_event(); });
  });
  s.run();
  EXPECT_NE(inside, 0u);
  EXPECT_NE(inside_child, 0u);
  EXPECT_NE(inside, inside_child);
  EXPECT_EQ(s.current_event(), 0u);
}

TEST(SchedulerTest, ScheduleAtAbsoluteTime) {
  Scheduler s;
  Time seen;
  s.schedule_at(Time::ms(42), [&]() { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::ms(42));
}

}  // namespace
}  // namespace wgtt::sim
