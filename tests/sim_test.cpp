// Unit tests for the discrete-event scheduler: ordering, cancellation,
// bounded runs, re-entrant scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace wgtt::sim {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::ms(3), [&]() { order.push_back(3); });
  s.schedule(Time::ms(1), [&]() { order.push_back(1); });
  s.schedule(Time::ms(2), [&]() { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, SameTimeFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Time::ms(5), [&order, i]() { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler s;
  Time seen;
  s.schedule(Time::ms(7), [&]() { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::ms(7));
}

TEST(SchedulerTest, RunUntilStopsAtBound) {
  Scheduler s;
  int fired = 0;
  s.schedule(Time::ms(1), [&]() { ++fired; });
  s.schedule(Time::ms(10), [&]() { ++fired; });
  s.run_until(Time::ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::ms(5));
  s.run_until(Time::ms(20));
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule(Time::ms(1), [&]() { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, DoubleCancelReturnsFalse) {
  Scheduler s;
  EventId id = s.schedule(Time::ms(1), []() {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, InvalidEventIdCancelFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventId{}));
}

TEST(SchedulerTest, ReentrantScheduling) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::ms(1), [&]() {
    order.push_back(1);
    s.schedule(Time::ms(1), [&]() { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), Time::ms(2));
}

TEST(SchedulerTest, StopHaltsLoop) {
  Scheduler s;
  int fired = 0;
  s.schedule(Time::ms(1), [&]() {
    ++fired;
    s.stop();
  });
  s.schedule(Time::ms(2), [&]() { ++fired; });
  s.run_until(Time::ms(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::ms(1));
}

TEST(SchedulerTest, EventCountTracked) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule(Time::ms(i), []() {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(SchedulerTest, SelfReschedulingChainHonoursBound) {
  Scheduler s;
  int ticks = 0;
  std::function<void()> tick = [&]() {
    ++ticks;
    s.schedule(Time::ms(10), tick);
  };
  s.schedule(Time::ms(10), tick);
  s.run_until(Time::ms(105));
  EXPECT_EQ(ticks, 10);
}

TEST(SchedulerTest, ScheduleAtAbsoluteTime) {
  Scheduler s;
  Time seen;
  s.schedule_at(Time::ms(42), [&]() { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::ms(42));
}

}  // namespace
}  // namespace wgtt::sim
