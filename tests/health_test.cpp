// Runtime health engine suite (ctest label: health).
//
// Covers the engine's contract at both levels.  Unit: the streaming window
// rollups (schema header, fixed-memory ring, gauge sampling), the invariant
// watchdogs (conservation, in-flight ceiling, bounded gauges), and the
// finalize semantics (idempotent, never re-samples gauges — overlay gauge
// closures die before the Testbed does).  Integration: a fault-free drive
// with health enabled is violation-free, the observer leaves every other
// deterministic output byte-identical, and a seeded packet leak — a drop
// site whose ledger mirror is withheld — is provably caught.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/experiment.h"
#include "util/health.h"
#include "util/metrics.h"

namespace wgtt {
namespace {

obs::HealthConfig unit_config() {
  obs::HealthConfig cfg;
  cfg.window = Time::ms(100);
  cfg.ring_capacity = 4;
  return cfg;
}

TEST(HealthEngineTest, SchemaHeaderLeadsTheStream) {
  obs::HealthEngine h(unit_config());
  EXPECT_EQ(h.jsonl(),
            "{\"kind\":\"schema\",\"stream\":\"wgtt.health\",\"version\":1}\n");
}

TEST(HealthEngineTest, LedgerArithmeticAndWindowShape) {
  obs::HealthEngine h(unit_config());
  int probes = 0;
  h.add_gauge("unit.depth", [&probes]() { return 7.0 + probes++; });
  h.packet_sent(3);
  h.packet_copies(5);
  h.packet_delivered(2);
  h.packet_retired(1);
  h.packet_dropped(1);
  EXPECT_EQ(h.in_flight(), 4);

  h.on_window_close(Time::ms(100));
  ASSERT_EQ(h.windows_closed(), 1u);
  const auto windows = h.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].sent, 3u);
  EXPECT_EQ(windows[0].copies, 5u);
  EXPECT_EQ(windows[0].delivered, 2u);
  EXPECT_EQ(windows[0].retired, 1u);
  EXPECT_EQ(windows[0].dropped, 1u);
  EXPECT_EQ(windows[0].in_flight, 4);
  ASSERT_EQ(windows[0].gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].gauges[0], 7.0);
  EXPECT_EQ(probes, 1);  // sampled exactly once, at window close
  EXPECT_NE(h.jsonl().find("\"kind\":\"window\",\"t_us\":100000.000"),
            std::string::npos);
  EXPECT_NE(h.jsonl().find("\"unit.depth\":7.000"), std::string::npos);
  EXPECT_TRUE(h.violations().empty());
}

TEST(HealthEngineTest, RingKeepsOnlyTheNewestWindowsOldestFirst) {
  obs::HealthEngine h(unit_config());  // ring_capacity = 4
  for (int i = 1; i <= 10; ++i) {
    h.packet_sent();  // make each window distinct
    h.on_window_close(Time::ms(100 * i));
  }
  EXPECT_EQ(h.windows_closed(), 10u);
  const auto windows = h.windows();
  ASSERT_EQ(windows.size(), 4u);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].t, Time::ms(100 * (7 + static_cast<int>(i))));
    EXPECT_EQ(windows[i].sent, 7 + i);  // cumulative ledger at close
  }
}

TEST(HealthEngineTest, ConservationCatchesDoubleTermination) {
  obs::HealthEngine h(unit_config());
  h.packet_sent(1);
  h.packet_delivered(1);
  h.packet_dropped(1);  // the same instance terminated twice
  h.on_window_close(Time::ms(100));
  ASSERT_EQ(h.violations().size(), 1u);
  EXPECT_EQ(h.violations()[0].watchdog, "packet_conservation");
  EXPECT_EQ(h.violations()[0].severity, "error");
  EXPECT_NE(h.jsonl().find("\"kind\":\"violation\""), std::string::npos);
}

TEST(HealthEngineTest, SeededLeakTripsTheInFlightCeiling) {
  // The acceptance scenario: a component egresses packets whose drop site
  // "forgot" its ledger mirror.  With the mirror withheld the watchdog must
  // fire; with it present the identical traffic is green.
  obs::HealthConfig cfg = unit_config();
  cfg.max_in_flight = 8;

  obs::HealthEngine leaky(cfg);
  for (int i = 0; i < 20; ++i) leaky.packet_sent();
  for (int i = 0; i < 12; ++i) leaky.packet_delivered();
  // 8 instances hit a drop site with no packet_dropped() mirror... plus the
  // 0 still legitimately in flight: the ledger reads 8, one more send leaks
  // past the ceiling.
  leaky.packet_sent();
  leaky.on_window_close(Time::ms(100));
  ASSERT_FALSE(leaky.violations().empty());
  EXPECT_EQ(leaky.violations()[0].watchdog, "in_flight_ceiling");
  EXPECT_EQ(leaky.violations()[0].severity, "error");

  obs::HealthEngine sound(cfg);
  for (int i = 0; i < 20; ++i) sound.packet_sent();
  for (int i = 0; i < 12; ++i) sound.packet_delivered();
  sound.packet_dropped(8);  // the mirror is in place
  sound.packet_sent();
  sound.packet_delivered();
  sound.on_window_close(Time::ms(100));
  EXPECT_TRUE(sound.violations().empty());
}

TEST(HealthEngineTest, BoundedGaugeWarnsAboveItsCeiling) {
  obs::HealthEngine h(unit_config());
  double depth = 3.0;
  h.add_gauge("unit.queue", [&depth]() { return depth; }, /*ceiling=*/5.0);
  h.on_window_close(Time::ms(100));
  EXPECT_TRUE(h.violations().empty());
  depth = 6.0;
  h.on_window_close(Time::ms(200));
  ASSERT_EQ(h.violations().size(), 1u);
  EXPECT_EQ(h.violations()[0].watchdog, "bounded_gauge");
  EXPECT_EQ(h.violations()[0].severity, "warn");
}

TEST(HealthEngineTest, FinalizeIsIdempotentAndNeverSamplesGauges) {
  obs::HealthEngine h(unit_config());
  int probes = 0;
  h.add_gauge("unit.depth", [&probes]() { return static_cast<double>(probes++); });
  h.on_window_close(Time::ms(100));
  EXPECT_EQ(probes, 1);
  // Overlay-owned gauge closures dangle by Testbed-destructor time, so
  // finalize must never probe them.
  h.finalize(Time::ms(150));
  h.finalize(Time::ms(150));
  EXPECT_EQ(probes, 1);
  const std::string jsonl = h.jsonl();
  std::size_t summaries = 0;
  for (std::size_t pos = jsonl.find("\"kind\":\"summary\"");
       pos != std::string::npos;
       pos = jsonl.find("\"kind\":\"summary\"", pos + 1)) {
    ++summaries;
  }
  EXPECT_EQ(summaries, 1u);
}

TEST(HealthEngineTest, ScopedInstallNestsAndNullKeepsCurrent) {
  obs::HealthEngine* before = obs::HealthEngine::current();
  obs::HealthEngine a(unit_config()), b(unit_config());
  {
    obs::ScopedHealthEngine sa(&a);
    EXPECT_EQ(obs::HealthEngine::current(), &a);
    {
      obs::ScopedHealthEngine keep(nullptr);
      EXPECT_EQ(obs::HealthEngine::current(), &a);
      obs::ScopedHealthEngine sb(&b);
      EXPECT_EQ(obs::HealthEngine::current(), &b);
    }
    EXPECT_EQ(obs::HealthEngine::current(), &a);
  }
  EXPECT_EQ(obs::HealthEngine::current(), before);
}

// ---------------------------------------------------------------------------
// Integration: the health engine inside a real drive
// ---------------------------------------------------------------------------

scenario::DriveScenarioConfig healthy_config() {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 25.0;
  cfg.duration = Time::sec(2);
  cfg.seed = 7;
  cfg.testbed.enable_health = true;
  cfg.testbed.health_window = Time::ms(200);
  return cfg;
}

TEST(HealthDriveTest, FaultFreeDriveIsViolationFree) {
  const scenario::DriveResult r = scenario::run_drive(healthy_config());
  EXPECT_GT(r.health_windows, 5u);
  EXPECT_GT(r.health_checks, 0u);
  EXPECT_EQ(r.health_violations, 0u) << r.health_jsonl;
  EXPECT_EQ(r.health_errors, 0u);
  // Whatever is still in flight at teardown is real queued residue (cyclic
  // rings, reorder buffers); the ledger must never go negative.
  EXPECT_GE(r.health_in_flight, 0);
  EXPECT_EQ(r.health_jsonl.rfind(
                "{\"kind\":\"schema\",\"stream\":\"wgtt.health\"", 0),
            0u);
}

TEST(HealthDriveTest, BaselineDriveIsViolationFree) {
  scenario::DriveScenarioConfig cfg = healthy_config();
  cfg.system = scenario::SystemType::kEnhanced80211r;
  const scenario::DriveResult r = scenario::run_drive(cfg);
  EXPECT_GT(r.health_windows, 5u);
  EXPECT_EQ(r.health_violations, 0u) << r.health_jsonl;
  EXPECT_GE(r.health_in_flight, 0);
}

TEST(HealthDriveTest, ObserverLeavesOtherOutputsByteIdentical) {
  scenario::DriveScenarioConfig cfg = healthy_config();
  cfg.testbed.enable_health = false;
  cfg.testbed.enable_packet_log = true;
  cfg.testbed.enable_decision_log = true;
  cfg.testbed.enable_telemetry = true;
  cfg.testbed.telemetry_period = Time::ms(100);
  const scenario::DriveResult off = scenario::run_drive(cfg);

  cfg.testbed.enable_health = true;
  const scenario::DriveResult on = scenario::run_drive(cfg);

  ASSERT_GT(off.packet_records, 0u);
  EXPECT_EQ(off.packet_jsonl, on.packet_jsonl)
      << "health engine perturbed the packet log";
  EXPECT_EQ(off.decision_jsonl, on.decision_jsonl)
      << "health engine perturbed the decision log";
  EXPECT_EQ(off.telemetry.to_csv(), on.telemetry.to_csv())
      << "health engine perturbed the telemetry CSV";
  EXPECT_EQ(off.mean_goodput_mbps(), on.mean_goodput_mbps());
  EXPECT_EQ(off.switches.size(), on.switches.size());
  EXPECT_GT(on.health_windows, 0u);
  EXPECT_EQ(on.health_violations, 0u);
}

TEST(HealthDriveTest, HealthStreamIsDeterministic) {
  const auto cfg = healthy_config();
  const scenario::DriveResult a = scenario::run_drive(cfg);
  const scenario::DriveResult b = scenario::run_drive(cfg);
  ASSERT_FALSE(a.health_jsonl.empty());
  EXPECT_EQ(a.health_jsonl, b.health_jsonl)
      << "repeat run produced a different health stream";
}

}  // namespace
}  // namespace wgtt
