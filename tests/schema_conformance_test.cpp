// Shared JSONL schema-header conformance suite.
//
// Every JSONL emitter in the stack — decision log, packet flight recorder,
// health engine, causal tracer — must open its stream with a
// {"kind":"schema","stream":...,"version":N} header, and `wgtt-report` must
// refuse (exit 2) a stream whose version it does not understand.  One
// parameterized test pins that contract for all four streams so a new
// emitter can't ship headerless and an old tool can't silently misread a
// newer stream.  Drives the real wgtt-report binary, like the diff suite.
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "scenario/experiment.h"
#include "util/json.h"

#ifndef WGTT_REPORT_BIN
#error "build must define WGTT_REPORT_BIN (path to the wgtt-report binary)"
#endif

namespace wgtt {
namespace {

struct StreamCase {
  const char* stream;                           // schema header stream name
  const char* subcommand;                       // wgtt-report reader
  std::string scenario::DriveResult::*field;    // where the drive puts it
};

/// One fixed-seed drive with every JSONL emitter enabled, shared across all
/// parameter instantiations (the streams are independent observers of the
/// same simulation).
const scenario::DriveResult& observed_drive() {
  static const scenario::DriveResult result = [] {
    scenario::DriveScenarioConfig cfg;
    cfg.system = scenario::SystemType::kWgtt;
    cfg.traffic = scenario::TrafficType::kTcpDownlink;
    cfg.speed_mph = 25.0;
    cfg.duration = Time::sec(2);
    cfg.seed = 7;
    cfg.testbed.enable_decision_log = true;
    cfg.testbed.enable_packet_log = true;
    cfg.testbed.enable_health = true;
    cfg.testbed.enable_causal = true;
    return scenario::run_drive(cfg);
  }();
  return result;
}

class SchemaHeaderTest : public ::testing::TestWithParam<StreamCase> {
 protected:
  std::string temp_path(const char* tag) const {
    return ::testing::TempDir() + "wgtt_schema_" + GetParam().subcommand +
           "_" + tag + ".jsonl";
  }

  int run_report(const std::string& file) const {
    const std::string cmd = std::string(WGTT_REPORT_BIN) + " " +
                            GetParam().subcommand + " " + file +
                            " > /dev/null 2>&1";
    return WEXITSTATUS(std::system(cmd.c_str()));
  }
};

TEST_P(SchemaHeaderTest, StreamOpensWithValidSchemaHeader) {
  const std::string& jsonl = observed_drive().*(GetParam().field);
  ASSERT_FALSE(jsonl.empty()) << GetParam().stream << " emitted nothing";

  const std::string first = jsonl.substr(0, jsonl.find('\n'));
  JsonValue header;
  std::string err;
  ASSERT_TRUE(json_parse(first, header, &err))
      << GetParam().stream << " header is not valid JSON: " << err;
  EXPECT_EQ(header.string_or("kind", ""), "schema");
  EXPECT_EQ(header.string_or("stream", ""), GetParam().stream);
  EXPECT_GE(header.number_or("version", 0.0), 1.0);
}

TEST_P(SchemaHeaderTest, ReportReadsStreamAndRejectsUnknownVersion) {
  const std::string& jsonl = observed_drive().*(GetParam().field);
  ASSERT_FALSE(jsonl.empty());

  // The tool must accept what the simulator emitted today (0 ok, 1 is a
  // legitimate gate verdict for the health reader — anything but 2).
  const std::string good = temp_path("good");
  ASSERT_TRUE(write_text_file(good, jsonl));
  EXPECT_NE(run_report(good), 2)
      << GetParam().subcommand << " rejected its own emitter's header";

  // Bump the header's version far past anything this tool understands: the
  // reader must refuse with the schema exit code rather than guess.
  std::string doctored = jsonl;
  const std::size_t at = doctored.find("\"version\":");
  ASSERT_NE(at, std::string::npos);
  std::size_t digit = at + std::strlen("\"version\":");
  std::size_t end = digit;
  while (end < doctored.size() &&
         std::isdigit(static_cast<unsigned char>(doctored[end]))) {
    ++end;
  }
  ASSERT_GT(end, digit);
  doctored.replace(digit, end - digit, "999");
  const std::string bad = temp_path("bad");
  ASSERT_TRUE(write_text_file(bad, doctored));
  EXPECT_EQ(run_report(bad), 2)
      << GetParam().subcommand << " accepted schema version 999";
}

INSTANTIATE_TEST_SUITE_P(
    AllStreams, SchemaHeaderTest,
    ::testing::Values(
        StreamCase{"wgtt.decisions", "decisions",
                   &scenario::DriveResult::decision_jsonl},
        StreamCase{"wgtt.packets", "packets",
                   &scenario::DriveResult::packet_jsonl},
        StreamCase{"wgtt.health", "health",
                   &scenario::DriveResult::health_jsonl},
        StreamCase{"wgtt.causal", "critical-path",
                   &scenario::DriveResult::causal_jsonl}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      std::string name = info.param.subcommand;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace wgtt
