// Unit tests for the transport layer: UDP flows and TCP Reno dynamics over
// a controllable fake network (delay + programmable loss).
#include <gtest/gtest.h>

#include <deque>
#include <functional>

#include "sim/scheduler.h"
#include "util/rng.h"
#include "transport/tcp_connection.h"
#include "transport/udp_flow.h"

namespace wgtt::transport {
namespace {

// A programmable pipe: fixed one-way delay, per-packet loss decided by a
// callback.
class FakePipe {
 public:
  FakePipe(sim::Scheduler& sched, Time delay) : sched_(sched), delay_(delay) {}
  std::function<bool(const net::PacketPtr&)> drop;  // true = lose the packet
  std::function<void(const net::PacketPtr&)> deliver;

  void send(net::PacketPtr pkt) {
    if (drop && drop(pkt)) return;
    sched_.schedule(delay_, [this, pkt = std::move(pkt)]() { deliver(pkt); });
  }

 private:
  sim::Scheduler& sched_;
  Time delay_;
};

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

TEST(UdpFlowTest, OfferedLoadRespected) {
  sim::Scheduler sched;
  IpIdAllocator ids;
  UdpFlowConfig cfg;
  cfg.flow_id = 1;
  cfg.src = net::kServerBase;
  cfg.dst = net::kClientBase;
  cfg.offered_load_bps = 8e6;
  UdpSender sender(sched, ids, cfg);
  UdpReceiver receiver(sched);
  sender.transmit = [&](net::PacketPtr p) { receiver.on_packet(p); };
  sender.start();
  sched.run_until(Time::sec(2));
  EXPECT_NEAR(receiver.throughput().average_mbps_over(Time::sec(2)), 8.0,
              0.5);
  EXPECT_EQ(receiver.loss_rate(), 0.0);
}

TEST(UdpFlowTest, LossAndDuplicatesCounted) {
  sim::Scheduler sched;
  IpIdAllocator ids;
  UdpFlowConfig cfg;
  cfg.offered_load_bps = 8e6;
  UdpSender sender(sched, ids, cfg);
  UdpReceiver receiver(sched);
  int n = 0;
  sender.transmit = [&](net::PacketPtr p) {
    if (++n % 4 == 0) return;  // drop every 4th
    receiver.on_packet(p);
    if (n % 5 == 0) receiver.on_packet(p);  // duplicate every 5th
  };
  sender.start();
  sched.run_until(Time::sec(1));
  EXPECT_NEAR(receiver.loss_rate(), 0.25, 0.02);
  EXPECT_GT(receiver.duplicates(), 0u);
}

TEST(UdpFlowTest, IpIdsIncrementPerSource) {
  IpIdAllocator ids;
  EXPECT_EQ(ids.next(5), 0);
  EXPECT_EQ(ids.next(5), 1);
  EXPECT_EQ(ids.next(9), 0);  // independent counter per source
}

TEST(UdpFlowTest, StopHaltsEmission) {
  sim::Scheduler sched;
  IpIdAllocator ids;
  UdpFlowConfig cfg;
  UdpSender sender(sched, ids, cfg);
  int sent = 0;
  sender.transmit = [&](net::PacketPtr) { ++sent; };
  sender.start();
  sched.schedule(Time::ms(100), [&]() { sender.stop(); });
  sched.run_until(Time::sec(1));
  const int at_stop = sent;
  sched.run_until(Time::sec(2));
  EXPECT_EQ(sent, at_stop);
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

struct TcpWorld {
  explicit TcpWorld(Time rtt = Time::ms(20))
      : data_pipe(sched, rtt * 0.5),
        ack_pipe(sched, rtt * 0.5),
        conn(sched, ids, TcpConfig{}, 1, net::kServerBase, net::kClientBase) {
    conn.transmit_data = [this](net::PacketPtr p) { data_pipe.send(p); };
    conn.transmit_ack = [this](net::PacketPtr p) { ack_pipe.send(p); };
    data_pipe.deliver = [this](const net::PacketPtr& p) {
      conn.on_network_data(p);
    };
    ack_pipe.deliver = [this](const net::PacketPtr& p) {
      conn.on_network_ack(p);
    };
  }
  sim::Scheduler sched;
  IpIdAllocator ids;
  FakePipe data_pipe;
  FakePipe ack_pipe;
  TcpConnection conn;
};

TEST(TcpTest, TransfersExactByteCount) {
  TcpWorld w;
  std::uint64_t app_bytes = 0;
  w.conn.on_app_receive = [&](std::size_t b, Time) { app_bytes += b; };
  w.conn.app_send(100'000);
  w.sched.run_until(Time::sec(5));
  EXPECT_EQ(app_bytes, 100'000u);
  EXPECT_EQ(w.conn.acked_bytes(), 100'000u);
  EXPECT_EQ(w.conn.stats().retransmissions, 0u);
}

TEST(TcpTest, SlowStartGrowsCwnd) {
  TcpWorld w;
  const double before = w.conn.cwnd_segments();
  w.conn.app_send(1'000'000);
  w.sched.run_until(Time::ms(200));
  EXPECT_GT(w.conn.cwnd_segments(), before);
}

TEST(TcpTest, RecoversFromSingleLoss) {
  TcpWorld w;
  int n = 0;
  w.data_pipe.drop = [&](const net::PacketPtr&) { return ++n == 30; };
  std::uint64_t app_bytes = 0;
  w.conn.on_app_receive = [&](std::size_t b, Time) { app_bytes += b; };
  w.conn.app_send(200'000);
  w.sched.run_until(Time::sec(10));
  EXPECT_EQ(app_bytes, 200'000u);
  EXPECT_GE(w.conn.stats().retransmissions, 1u);
  // Recovered by fast retransmit, not timeout.
  EXPECT_EQ(w.conn.stats().timeouts, 0u);
  EXPECT_GE(w.conn.stats().fast_retransmits, 1u);
}

TEST(TcpTest, RecoversFromBurstLossViaTimeout) {
  TcpWorld w;
  int n = 0;
  // Kill a 40-packet burst mid-flow: dupacks can't recover everything.
  w.data_pipe.drop = [&](const net::PacketPtr&) {
    ++n;
    return n >= 50 && n < 90;
  };
  std::uint64_t app_bytes = 0;
  w.conn.on_app_receive = [&](std::size_t b, Time) { app_bytes += b; };
  w.conn.app_send(400'000);
  w.sched.run_until(Time::sec(30));
  EXPECT_EQ(app_bytes, 400'000u);
}

TEST(TcpTest, SteadyLossLimitsThroughputButCompletes) {
  TcpWorld w;
  wgtt::Rng rng(7);
  w.data_pipe.drop = [&](const net::PacketPtr&) { return rng.bernoulli(0.02); };
  std::uint64_t app_bytes = 0;
  w.conn.on_app_receive = [&](std::size_t b, Time) { app_bytes += b; };
  w.conn.app_send(500'000);
  w.sched.run_until(Time::sec(60));
  EXPECT_EQ(app_bytes, 500'000u);
}

TEST(TcpTest, RttEstimateTracksPathDelay) {
  TcpWorld w(Time::ms(50));
  w.conn.app_send(200'000);
  w.sched.run_until(Time::sec(3));
  EXPECT_NEAR(w.conn.srtt().to_ms(), 50.0, 10.0);
}

TEST(TcpTest, ReceiverReordersOutOfOrderSegments) {
  // Deliver even segments with extra delay: receiver must reassemble.
  sim::Scheduler sched;
  IpIdAllocator ids;
  TcpConnection conn(sched, ids, TcpConfig{}, 1, 10, 20);
  std::uint64_t app_bytes = 0;
  std::uint64_t last_end = 0;
  bool monotone = true;
  conn.on_app_receive = [&](std::size_t b, Time) {
    app_bytes += b;
    if (app_bytes < last_end) monotone = false;
    last_end = app_bytes;
  };
  int n = 0;
  conn.transmit_data = [&](net::PacketPtr p) {
    const Time delay = (++n % 2 == 0) ? Time::ms(30) : Time::ms(10);
    sched.schedule(delay, [&conn, p]() { conn.on_network_data(p); });
  };
  conn.transmit_ack = [&](net::PacketPtr p) {
    sched.schedule(Time::ms(5), [&conn, p]() { conn.on_network_ack(p); });
  };
  conn.app_send(100'000);
  sched.run_until(Time::sec(10));
  EXPECT_EQ(app_bytes, 100'000u);
  EXPECT_TRUE(monotone);
}

TEST(TcpTest, DupAcksCounted) {
  TcpWorld w;
  int n = 0;
  w.data_pipe.drop = [&](const net::PacketPtr&) { return ++n == 15; };
  w.conn.app_send(300'000);
  w.sched.run_until(Time::sec(5));
  EXPECT_GT(w.conn.stats().dup_acks, 0u);
}

TEST(TcpTest, TotalBlackoutThenRecovery) {
  // The Enhanced-802.11r pathology: the path dies for 2 s mid-transfer.
  TcpWorld w;
  bool blackout = false;
  w.data_pipe.drop = [&](const net::PacketPtr&) { return blackout; };
  w.ack_pipe.drop = [&](const net::PacketPtr&) { return blackout; };
  std::uint64_t app_bytes = 0;
  w.conn.on_app_receive = [&](std::size_t b, Time) { app_bytes += b; };
  w.conn.app_send(20'000'000);
  w.sched.schedule(Time::ms(30), [&]() { blackout = true; });
  w.sched.schedule(Time::ms(2030), [&]() { blackout = false; });
  w.sched.run_until(Time::sec(60));
  EXPECT_EQ(app_bytes, 20'000'000u);
  EXPECT_GE(w.conn.stats().timeouts, 1u);  // RTO fired during the blackout
}

}  // namespace
}  // namespace wgtt::transport
