// End-to-end integration tests: the full WGTT system (channel, MAC,
// controller, APs, transport) exercised through the scenario layer, plus
// invariants the paper's design guarantees (no duplicate delivery, switch
// protocol liveness, BA forwarding actually recovering losses).
#include <gtest/gtest.h>

#include "apps/bulk.h"
#include "scenario/experiment.h"
#include "scenario/testbed.h"

namespace wgtt::scenario {
namespace {

TEST(IntegrationTest, WgttClientAssociatesAndReceives) {
  TestbedConfig tb;
  tb.seed = 1;
  Testbed bed(tb);
  WgttNetwork net(bed);
  const net::NodeId client = net.add_client(bed.drive_mobility(15.0));

  transport::IpIdAllocator ids;
  transport::UdpFlowConfig ucfg;
  ucfg.flow_id = 100;
  ucfg.src = kServerId;
  ucfg.dst = client;
  ucfg.offered_load_bps = 5e6;
  apps::BulkUdpApp app(bed.sched(), ids, ucfg);
  net.wire_udp_downlink(app.sender(), app.receiver(), client);
  bed.sched().schedule_at(Time::ms(500), [&]() { app.start(); });
  bed.sched().run_until(Time::sec(5));

  EXPECT_NE(net.controller().active_ap(client), 0u);
  EXPECT_GT(app.receiver().received(), 100u);
  // The receiver never sees the same UDP sequence twice: cyclic-queue
  // handover plus controller de-dup guarantee no duplicate delivery.
  EXPECT_EQ(app.receiver().duplicates(), 0u);
}

TEST(IntegrationTest, SwitchesFollowTheCar) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 7;
  auto r = run_drive(cfg);
  // Multiple switches, and the active-AP sequence trends forward along the
  // road (AP ids increase over time, modulo fast-fading local flips).
  EXPECT_GT(r.switches.size(), 10u);
  const auto& tl = r.clients[0].timeline;
  net::NodeId first_ap = 0;
  net::NodeId last_ap = 0;
  for (const auto& pt : tl) {
    if (pt.active != 0 && pt.in_coverage) {
      if (first_ap == 0) first_ap = pt.active;
      last_ap = pt.active;
    }
  }
  EXPECT_LT(first_ap, 3u);
  EXPECT_GT(last_ap, 6u);
}

TEST(IntegrationTest, SwitchLatencyMatchesTable1) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 7;
  auto r = run_drive(cfg);
  ASSERT_GT(r.switch_latencies_ms.size(), 5u);
  double mean = 0;
  for (double v : r.switch_latencies_ms) mean += v;
  mean /= static_cast<double>(r.switch_latencies_ms.size());
  EXPECT_GT(mean, 12.0);
  EXPECT_LT(mean, 25.0);
}

TEST(IntegrationTest, WgttSwitchingAccuracyHigh) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  auto r = run_drive(cfg);
  EXPECT_GT(r.clients[0].switching_accuracy, 0.8);
}

TEST(IntegrationTest, WgttBeatsBaselineAtDrivingSpeed) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 20.0;
  cfg.seed = 42;
  cfg.system = SystemType::kWgtt;
  const double wgtt = run_drive(cfg).mean_goodput_mbps();
  cfg.system = SystemType::kEnhanced80211r;
  const double base = run_drive(cfg).mean_goodput_mbps();
  EXPECT_GT(wgtt, base * 1.5);  // the paper's headline direction
}

TEST(IntegrationTest, TcpSurvivesWholeTransit) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kTcpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  auto r = run_drive(cfg);
  const auto& c = r.clients[0];
  EXPECT_GT(c.goodput_mbps, 2.0);
  // Throughput present in the middle AND the late portion of the drive
  // (the baseline's failure mode is dying halfway).
  const auto& bins = c.throughput_bins;
  ASSERT_GT(bins.size(), 10u);
  double late = 0;
  for (std::size_t i = bins.size() / 2; i + 2 < bins.size(); ++i) {
    late += bins[i].second;
  }
  EXPECT_GT(late, 1.0);
}

TEST(IntegrationTest, BlockAckForwardingRecoversLosses) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  TestbedConfig tb;
  Testbed bed(tb);
  WgttNetwork net(bed);
  const net::NodeId client = net.add_client(bed.drive_mobility(15.0));
  transport::IpIdAllocator ids;
  transport::UdpFlowConfig ucfg;
  ucfg.flow_id = 100;
  ucfg.src = kServerId;
  ucfg.dst = client;
  ucfg.offered_load_bps = 15e6;
  apps::BulkUdpApp app(bed.sched(), ids, ucfg);
  net.wire_udp_downlink(app.sender(), app.receiver(), client);
  bed.sched().schedule_at(Time::ms(500), [&]() { app.start(); });
  bed.sched().run_until(bed.transit_duration(15.0));

  std::uint64_t forwarded = 0;
  std::uint64_t duplicates = 0;
  for (net::NodeId ap : bed.ap_ids()) {
    forwarded += net.ap(ap).stats().block_acks_forwarded;
    duplicates += net.ap(ap).stats().forwarded_bas_duplicate;
  }
  // Monitor-mode APs overhear and forward BAs continuously, and the
  // receiving AP's duplicate filter is exercised (several monitors forward
  // the same BA).  Actual exchange recovery is rare end-to-end — the
  // reciprocal channel means a delivered aggregate's BA usually survives,
  // and WGTT switches away before cell-edge BA loss bites; the recovery
  // path itself is covered by WifiDeviceTest.ExternalBlockAckRecovers.
  EXPECT_GT(forwarded, 100u);
  EXPECT_GT(duplicates, 0u);
}

TEST(IntegrationTest, MultiClientSharesAirtime) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.num_clients = 2;
  cfg.pattern = MultiClientPattern::kParallel;
  cfg.udp_offered_mbps = 10.0;
  cfg.speed_mph = 15.0;
  cfg.seed = 13;
  auto r = run_drive(cfg);
  ASSERT_EQ(r.clients.size(), 2u);
  for (const auto& c : r.clients) {
    EXPECT_GT(c.goodput_mbps, 1.0);  // both clients are served
  }
}

TEST(IntegrationTest, OpposingClientsBeatParallel) {
  auto run_pattern = [](MultiClientPattern p) {
    DriveScenarioConfig cfg;
    cfg.traffic = TrafficType::kUdpDownlink;
    cfg.num_clients = 2;
    cfg.pattern = p;
    cfg.udp_offered_mbps = 15.0;
    cfg.speed_mph = 15.0;
    cfg.seed = 13;
    return run_drive(cfg).mean_goodput_mbps();
  };
  // The paper's Fig. 20 ordering (allow a small tolerance: fading noise).
  EXPECT_GT(run_pattern(MultiClientPattern::kOpposing) * 1.15,
            run_pattern(MultiClientPattern::kParallel));
}

TEST(IntegrationTest, DeterministicGivenSeed) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 25.0;
  cfg.seed = 99;
  auto a = run_drive(cfg);
  auto b = run_drive(cfg);
  EXPECT_DOUBLE_EQ(a.mean_goodput_mbps(), b.mean_goodput_mbps());
  EXPECT_EQ(a.switches.size(), b.switches.size());
}

TEST(IntegrationTest, UplinkDiversityRemovesDuplicates) {
  DriveScenarioConfig cfg;
  cfg.traffic = TrafficType::kUdpUplink;
  cfg.udp_offered_mbps = 4.0;
  cfg.speed_mph = 15.0;
  cfg.seed = 21;
  auto r = run_drive(cfg);
  // Several APs hear each uplink frame; the controller removed duplicates
  // and the server-side receiver saw each sequence exactly once.
  EXPECT_GT(r.uplink_duplicates_removed, 100u);
  EXPECT_LT(r.clients[0].udp_loss_rate, 0.4);
}

TEST(IntegrationTest, SwitchProtocolWireLevel) {
  // Drive the real stop/start/ack protocol between two genuine WgttAp
  // instances and the controller, watching the AP-side state directly
  // (the SwitchFsm tests in core_test emulate the AP side; this one does
  // not).
  TestbedConfig tb;
  tb.ap_x = {0.0, 7.5};
  Testbed bed(tb);
  WgttNetwork net(bed);
  // A static client parked between the two APs, slightly nearer AP1.
  const net::NodeId client = net.add_client(
      std::make_shared<channel::StaticMobility>(channel::Vec3{3.0, 0, 1.5}));
  bed.sched().run_until(Time::sec(1));
  const net::NodeId first = net.controller().active_ap(client);
  ASSERT_NE(first, 0u);
  EXPECT_TRUE(net.ap(first).active_for(client));
  const net::NodeId other = first == 1 ? 2 : 1;
  EXPECT_FALSE(net.ap(other).active_for(client));

  // Force a switch by injecting superior scan-style CSI for the other AP,
  // sustained so the genuine channel readings cannot flip it back.
  for (int i = 0; i < 1000; ++i) {
    bed.sched().schedule(Time::ms(i), [&net, &bed, other, client]() {
      phy::Csi csi;
      for (auto& snr : csi.subcarrier_snr_db) snr = 30.0;
      csi.measured_at = bed.sched().now();
      net.controller().inject_csi(other, client, csi);
    });
  }
  bed.sched().run_until(Time::sec(2));
  EXPECT_EQ(net.controller().active_ap(client), other);
  EXPECT_TRUE(net.ap(other).active_for(client));
  EXPECT_FALSE(net.ap(first).active_for(client));
  EXPECT_GE(net.ap(first).stats().stops_handled, 1u);
  EXPECT_GE(net.ap(other).stats().starts_handled, 1u);
  // The handed-over stack is inactive; the new one is active.
  const auto* old_stack = net.ap(first).stack_for(client);
  ASSERT_NE(old_stack, nullptr);
  EXPECT_FALSE(old_stack->active());
}

TEST(IntegrationTest, StockClientFailsAtSpeed) {
  DriveScenarioConfig cfg;
  cfg.system = SystemType::kStock80211r;
  cfg.traffic = TrafficType::kUdpDownlink;
  cfg.speed_mph = 20.0;
  cfg.seed = 17;
  cfg.testbed.ap_x = {0.0, 7.5};
  auto r = run_drive(cfg);
  EXPECT_EQ(r.clients[0].handovers, 0u);  // Fig. 4(a)
}

}  // namespace
}  // namespace wgtt::scenario
