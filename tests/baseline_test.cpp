// Tests for the Enhanced 802.11r baseline: distribution bridging, beaconing,
// the roaming state machine (threshold + persistence hysteresis, stock
// 5-second rule), and handover behaviour on a real testbed.
#include <gtest/gtest.h>

#include "baseline/enhanced_80211r.h"
#include "scenario/testbed.h"
#include "util/units.h"

namespace wgtt::baseline {
namespace {

// ---------------------------------------------------------------------------
// Distribution
// ---------------------------------------------------------------------------

TEST(DistributionTest, DropsWithoutAssociation) {
  sim::Scheduler sched;
  net::Backhaul bh(sched, net::BackhaulConfig{}, Rng(1));
  Distribution dist(sched, bh);
  net::Packet p;
  p.type = net::PacketType::kData;
  p.dst = net::kClientBase;
  p.size_bytes = 100;
  dist.send_downlink(net::kClientBase, net::make_packet(p));
  sched.run();
  EXPECT_EQ(dist.packets_dropped_no_assoc(), 1u);
}

TEST(DistributionTest, BridgesToAssociatedApAfterRelearn) {
  sim::Scheduler sched;
  net::Backhaul bh(sched, net::BackhaulConfig{}, Rng(1));
  Distribution dist(sched, bh, Time::ms(15));
  int ap1_got = 0;
  bh.attach(1, [&](const net::TunneledPacket&) { ++ap1_got; });
  dist.set_association(net::kClientBase, 1);
  EXPECT_EQ(dist.associated_ap(net::kClientBase), 0u);  // not live yet
  sched.run_until(Time::ms(20));
  EXPECT_EQ(dist.associated_ap(net::kClientBase), 1u);
  net::Packet p;
  p.type = net::PacketType::kData;
  p.dst = net::kClientBase;
  p.size_bytes = 100;
  dist.send_downlink(net::kClientBase, net::make_packet(p));
  sched.run_until(Time::ms(30));
  EXPECT_EQ(ap1_got, 1);
}

TEST(DistributionTest, ReassociationSupersedesPending) {
  sim::Scheduler sched;
  net::Backhaul bh(sched, net::BackhaulConfig{}, Rng(1));
  Distribution dist(sched, bh, Time::ms(15));
  dist.set_association(net::kClientBase, 1);
  sched.run_until(Time::ms(5));
  dist.set_association(net::kClientBase, 2);  // supersedes before relearn
  sched.run_until(Time::ms(40));
  EXPECT_EQ(dist.associated_ap(net::kClientBase), 2u);
}

// ---------------------------------------------------------------------------
// Roaming over the real testbed
// ---------------------------------------------------------------------------

TEST(RoamingTest, AssociatesFromFirstBeacon) {
  scenario::TestbedConfig tb;
  tb.seed = 2;
  scenario::Testbed bed(tb);
  scenario::BaselineNetwork net(bed);
  // A static client parked in front of AP3.
  auto mob = std::make_shared<channel::StaticMobility>(
      channel::Vec3{bed.config().ap_x[2], 0.0, 1.5});
  const net::NodeId client = bed.add_client(mob, 0);
  auto rc = std::make_unique<RoamingClient>(bed.sched(),
                                            bed.client_device(client),
                                            RoamingConfig{});
  rc->start();
  bed.sched().run_until(Time::sec(2));
  // It associates with some AP it heard (the nearest decodes strongest).
  EXPECT_NE(rc->associated_ap(), 0u);
  EXPECT_GT(rc->rssi_of(rc->associated_ap()), -90.0);
}

TEST(RoamingTest, StaticClientDoesNotRoam) {
  scenario::TestbedConfig tb;
  tb.seed = 3;
  scenario::Testbed bed(tb);
  scenario::BaselineNetwork net(bed);
  const net::NodeId client = net.add_client(
      std::make_shared<channel::StaticMobility>(
          channel::Vec3{bed.config().ap_x[3], 0.0, 1.5}));
  bed.sched().run_until(Time::sec(8));
  // At a cell centre the RSSI never persists below threshold.
  EXPECT_LE(net.roaming(client).handovers().size(), 1u);
}

TEST(RoamingTest, DrivingClientHandsOver) {
  scenario::TestbedConfig tb;
  tb.seed = 4;
  scenario::Testbed bed(tb);
  scenario::BaselineNetwork net(bed);
  const net::NodeId client = net.add_client(bed.drive_mobility(15.0));
  bed.sched().run_until(bed.transit_duration(15.0));
  // Multiple reassociations across the 8-AP deployment.
  std::size_t successes = 0;
  for (const auto& h : net.roaming(client).handovers()) {
    if (h.success && h.from_ap != 0) ++successes;
  }
  EXPECT_GE(successes, 2u);
}

TEST(RoamingTest, StockModeRefusesEarlyDecision) {
  // The §2 experiment: with the 5 s history requirement and a 20 mph
  // drive-through of a 2-AP picocell deployment, the client cannot hand
  // over before it leaves AP1's range.
  scenario::TestbedConfig tb;
  tb.seed = 5;
  tb.ap_x = {0.0, 7.5};
  scenario::Testbed bed(tb);
  scenario::BaselineNetworkConfig cfg;
  cfg.roaming.stock_history_requirement = Time::sec(5);
  scenario::BaselineNetwork net(bed, cfg);
  const net::NodeId client = net.add_client(bed.drive_mobility(20.0));
  bed.sched().run_until(bed.transit_duration(20.0));
  std::size_t successes = 0;
  for (const auto& h : net.roaming(client).handovers()) {
    if (h.success && h.from_ap != 0) ++successes;
  }
  EXPECT_EQ(successes, 0u);  // the paper's Fig. 4(a): handover fails
}

TEST(RoamingTest, HysteresisRequiresPersistence) {
  // Synthetic check of the state machine via the real testbed at crawl
  // speed: a brief fade below threshold must not trigger a handover.
  scenario::TestbedConfig tb;
  tb.seed = 6;
  scenario::Testbed bed(tb);
  scenario::BaselineNetworkConfig cfg;
  cfg.roaming.hysteresis = Time::sec(30);  // effectively: never persist
  scenario::BaselineNetwork net(bed, cfg);
  const net::NodeId client = net.add_client(bed.drive_mobility(10.0));
  bed.sched().run_until(Time::sec(10));
  std::size_t roams = 0;
  for (const auto& h : net.roaming(client).handovers()) {
    if (h.from_ap != 0) ++roams;
  }
  EXPECT_EQ(roams, 0u);
}

}  // namespace
}  // namespace wgtt::baseline
