// Unit tests for util: Time arithmetic, RNG determinism and distributions,
// statistics accumulators, unit conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/json.h"
#include "util/logging.h"
#include "util/profiler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/units.h"

namespace wgtt {
namespace {

TEST(TimeTest, ConstructorsAgree) {
  EXPECT_EQ(Time::us(1).to_ns(), 1000);
  EXPECT_EQ(Time::ms(1).to_ns(), 1'000'000);
  EXPECT_EQ(Time::sec(1).to_ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Time::ms(2.5).to_ms(), 2.5);
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::ms(3);
  const Time b = Time::ms(1);
  EXPECT_EQ((a + b).to_ms(), 4.0);
  EXPECT_EQ((a - b).to_ms(), 2.0);
  EXPECT_EQ((a * 2.0).to_ms(), 6.0);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(TimeTest, Ordering) {
  EXPECT_LT(Time::us(999), Time::ms(1));
  EXPECT_GT(Time::infinity(), Time::sec(1e9));
  EXPECT_EQ(Time::zero(), Time::ns(0));
}

TEST(TimeTest, CompoundAssignment) {
  Time t = Time::ms(1);
  t += Time::ms(2);
  EXPECT_EQ(t, Time::ms(3));
  t -= Time::ms(1);
  EXPECT_EQ(t, Time::ms(2));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(0, 7);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(5.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(23);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
  // Forking with the same tag from the same parent state is reproducible.
  Rng parent2(23);
  Rng a2 = parent2.fork(1);
  Rng a3(23);
  EXPECT_EQ(Rng(23).fork(1).next_u64(), a3.fork(1).next_u64());
  (void)a2;
}

TEST(RngTest, ForkByString) {
  Rng parent(29);
  Rng a = parent.fork("channel");
  Rng b = parent.fork("mac");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RunningStatsTest, Basic) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.add(42.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, PercentilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0.9), 90.1, 0.2);
}

TEST(SampleSetTest, CdfIsMonotone) {
  SampleSet s;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) s.add(rng.gaussian());
  const auto cdf = s.cdf(50);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SampleSetTest, MeanStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(ThroughputSeriesTest, BinningAndAverage) {
  ThroughputSeries ts(Time::ms(100));
  // 1000 bytes every 10 ms for 1 s => 800 kbit/s.
  for (int i = 0; i < 100; ++i) ts.add(Time::ms(i * 10), 1000);
  EXPECT_EQ(ts.total_bytes(), 100'000u);
  EXPECT_NEAR(ts.average_mbps_over(Time::sec(1)), 0.8, 1e-9);
  const auto bins = ts.bins();
  ASSERT_EQ(bins.size(), 10u);
  for (const auto& [t, mbps] : bins) EXPECT_NEAR(mbps, 0.8, 1e-9);
}

TEST(ThroughputSeriesTest, EmptySeries) {
  ThroughputSeries ts;
  EXPECT_EQ(ts.total_bytes(), 0u);
  EXPECT_EQ(ts.average_mbps(), 0.0);
  EXPECT_TRUE(ts.bins().empty());
}

TEST(LoggingTest, DefaultSinkIsCurrentAndOff) {
  EXPECT_EQ(&current_log_sink(), &default_log_sink());
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(LoggingTest, ScopedSinkCapturesAndRestores) {
  CapturingLogSink sink(LogLevel::kDebug);
  {
    ScopedLogSink scope(&sink);
    EXPECT_EQ(&current_log_sink(), &sink);
    WGTT_LOG(kInfo, "test", "hello " << 42);
    WGTT_LOG(kTrace, "test", "below threshold");  // filtered
  }
  EXPECT_EQ(&current_log_sink(), &default_log_sink());
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_EQ(sink.entries()[0].level, LogLevel::kInfo);
  EXPECT_EQ(sink.entries()[0].component, "test");
  EXPECT_EQ(sink.entries()[0].message, "hello 42");
}

TEST(LoggingTest, NullScopedSinkIsNoOp) {
  CapturingLogSink outer(LogLevel::kTrace);
  ScopedLogSink outer_scope(&outer);
  {
    ScopedLogSink noop(nullptr);
    EXPECT_EQ(&current_log_sink(), &outer);
  }
  EXPECT_EQ(&current_log_sink(), &outer);
}

TEST(LoggingTest, ScopesNest) {
  CapturingLogSink a(LogLevel::kTrace);
  CapturingLogSink b(LogLevel::kTrace);
  ScopedLogSink sa(&a);
  {
    ScopedLogSink sb(&b);
    WGTT_LOG(kWarn, "nest", "inner");
  }
  WGTT_LOG(kWarn, "nest", "outer");
  ASSERT_EQ(b.entries().size(), 1u);
  EXPECT_EQ(b.entries()[0].message, "inner");
  ASSERT_EQ(a.entries().size(), 1u);
  EXPECT_EQ(a.entries()[0].message, "outer");
}

TEST(LoggingTest, SetLogLevelTargetsCurrentSink) {
  CapturingLogSink sink(LogLevel::kOff);
  ScopedLogSink scope(&sink);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(sink.threshold(), LogLevel::kError);
  // The process-wide default is untouched.
  EXPECT_EQ(default_log_sink().threshold(), LogLevel::kOff);
}

TEST(LoggingTest, CurrentSinkIsPerThread) {
  CapturingLogSink sink(LogLevel::kTrace);
  ScopedLogSink scope(&sink);
  LogSink* other_thread_sink = nullptr;
  std::thread t([&]() { other_thread_sink = &current_log_sink(); });
  t.join();
  // A sibling thread never sees this thread's scoped sink.
  EXPECT_EQ(other_thread_sink, &default_log_sink());
  EXPECT_EQ(&current_log_sink(), &sink);
}

TEST(JsonWriterTest, ObjectWithScalars) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "fig13").field("jobs", 4).field("ratio", 2.5);
  w.field("ok", true);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"fig13\",\"jobs\":4,\"ratio\":2.5,\"ok\":true}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object();
  w.key("runs").begin_array();
  w.begin_object().field("i", 0).end_object();
  w.begin_object().field("i", 1).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"runs\":[{\"i\":0},{\"i\":1}]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.field("k", "a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.value(3.25);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,3.25]");
}

TEST(JsonWriterTest, TopLevelArray) {
  JsonWriter w;
  w.begin_array().value(1).value(2).value(3).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(UnitsTest, DbRoundTrip) {
  for (double db : {-20.0, -3.0, 0.0, 3.0, 10.0, 30.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
  EXPECT_NEAR(db_to_linear(3.0), 2.0, 0.01);
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(100.0), 20.0, 1e-9);
}

TEST(UnitsTest, SpeedConversion) {
  EXPECT_NEAR(mph_to_mps(25.0), 11.176, 0.001);
  EXPECT_NEAR(mps_to_mph(mph_to_mps(35.0)), 35.0, 1e-9);
}

TEST(UnitsTest, NoiseFloor20MHz) {
  // -174 + 10log10(20e6) + 6 = -95 dBm.
  EXPECT_NEAR(noise_floor_dbm(20e6, 6.0), -95.0, 0.05);
}

TEST(UnitsTest, Wavelength24GHz) {
  EXPECT_NEAR(wavelength_m(2.462e9), 0.1218, 0.001);
}

// ---------------------------------------------------------------------------
// JSON parser (wgtt-report's input side)
// ---------------------------------------------------------------------------

TEST(JsonParseTest, ScalarsAndContainers) {
  JsonValue v;
  ASSERT_TRUE(json_parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "hi", "n": -3e2})", v));
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.number_or("a", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(v.number_or("n", 0.0), -300.0);
  EXPECT_EQ(v.string_or("s", ""), "hi");
  const JsonValue* arr = v.find("b");
  ASSERT_TRUE(arr && arr->is_array());
  ASSERT_EQ(arr->as_array().size(), 3u);
  EXPECT_TRUE(arr->as_array()[0].as_bool());
  EXPECT_TRUE(arr->as_array()[2].is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7.0), 7.0);
}

TEST(JsonParseTest, StringEscapes) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"(["a\"b\\c\n", "Aé", "😀"])",
                         v));
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.as_array()[0].as_string(), "a\"b\\c\n");
  EXPECT_EQ(v.as_array()[1].as_string(), "A\xc3\xa9");
  EXPECT_EQ(v.as_array()[2].as_string(), "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonParseTest, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("", v, &err));
  EXPECT_FALSE(json_parse("{", v, &err));
  EXPECT_FALSE(json_parse("[1,]", v, &err));
  EXPECT_FALSE(json_parse("{\"a\":1} trailing", v, &err));
  EXPECT_FALSE(json_parse("\"lone \\ud800 surrogate\"", v, &err));
  EXPECT_FALSE(err.empty());
  // Depth cap: 200 nested arrays exceed the 128-level limit.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(json_parse(deep, v, &err));
}

TEST(JsonParseTest, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "bench");
  w.field("wall_ms", 12.625);
  w.key("runs").begin_array();
  w.begin_object();
  w.field("label", "a/b");
  w.field("goodput", 5.25);
  w.end_object();
  w.end_array();
  w.end_object();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(w.str(), v, &err)) << err;
  EXPECT_EQ(v.string_or("name", ""), "bench");
  EXPECT_DOUBLE_EQ(v.number_or("wall_ms", 0.0), 12.625);
  const JsonValue* runs = v.find("runs");
  ASSERT_TRUE(runs && runs->is_array());
  EXPECT_DOUBLE_EQ(runs->as_array()[0].number_or("goodput", 0.0), 5.25);
}

// ---------------------------------------------------------------------------
// Host-time profiler
// ---------------------------------------------------------------------------

TEST(ProfilerTest, SectionsAccumulateCallsAndSelfTime) {
  prof::Profiler p;
  prof::Section& outer = p.section("outer");
  prof::Section& inner = p.section("inner");
  EXPECT_EQ(&p.section("outer"), &outer);  // find-or-create is stable
  for (int i = 0; i < 3; ++i) {
    prof::ScopedSection a(&p, &outer);
    prof::ScopedSection b(&p, &inner);
  }
  const prof::ProfileSnapshot snap = p.snapshot();
  ASSERT_EQ(snap.sections.size(), 2u);
  EXPECT_FALSE(snap.empty());
  // Lexicographic order: inner before outer.
  EXPECT_EQ(snap.sections[0].name, "inner");
  EXPECT_EQ(snap.sections[0].calls, 3u);
  EXPECT_EQ(snap.sections[1].name, "outer");
  EXPECT_EQ(snap.sections[1].calls, 3u);
  EXPECT_GE(snap.sections[0].self_ns, 0);
  EXPECT_GE(snap.sections[1].self_ns, 0);
  EXPECT_EQ(snap.total_ns(),
            snap.sections[0].self_ns + snap.sections[1].self_ns);
}

TEST(ProfilerTest, NestedSelfTimeIsExclusive) {
  // Exclusive attribution: the time a nested section runs must not also be
  // charged to its parent, so the section totals can never exceed the
  // enclosing wall time.
  prof::Profiler p;
  prof::Section& outer = p.section("outer");
  prof::Section& inner = p.section("inner");
  const std::int64_t start = prof::Profiler::now_ns();
  {
    prof::ScopedSection a(&p, &outer);
    prof::ScopedSection b(&p, &inner);
    // Busy-wait so inner accumulates measurable time.
    while (prof::Profiler::now_ns() - start < 2'000'000) {
    }
  }
  const std::int64_t wall = prof::Profiler::now_ns() - start;
  const prof::ProfileSnapshot snap = p.snapshot();
  EXPECT_LE(snap.total_ns(), wall);
  EXPECT_GE(p.section("inner").self_ns, 1'500'000);
}

TEST(ProfilerTest, NullProfilerScopedSectionIsNoOp) {
  prof::Section s;
  prof::ScopedSection timer(nullptr, &s);
  EXPECT_EQ(s.calls, 0u);
}

TEST(ProfilerTest, ScopedContextInstallsAndNests) {
  EXPECT_EQ(prof::Profiler::current(), nullptr);
  prof::Profiler outer, inner;
  {
    prof::ScopedProfiler a(&outer);
    EXPECT_EQ(prof::Profiler::current(), &outer);
    {
      prof::ScopedProfiler b(&inner);
      EXPECT_EQ(prof::Profiler::current(), &inner);
      prof::ScopedProfiler c(nullptr);  // no-op, not an uninstall
      EXPECT_EQ(prof::Profiler::current(), &inner);
    }
    EXPECT_EQ(prof::Profiler::current(), &outer);
  }
  EXPECT_EQ(prof::Profiler::current(), nullptr);
}

TEST(ProfilerTest, SnapshotJsonShapeParses) {
  prof::Profiler p;
  {
    prof::ScopedSection t(&p, &p.section("sim.dispatch"));
  }
  const std::string json = p.snapshot().to_json();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(json, v, &err)) << err;
  const JsonValue* sections = v.find("sections");
  ASSERT_TRUE(sections && sections->is_object());
  const JsonValue* d = sections->find("sim.dispatch");
  ASSERT_TRUE(d != nullptr);
  EXPECT_DOUBLE_EQ(d->number_or("calls", 0.0), 1.0);
  EXPECT_TRUE(v.find("total_ns") != nullptr);
}

}  // namespace
}  // namespace wgtt
