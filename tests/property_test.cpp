// Property-based tests (parameterized gtest): invariants that must hold
// across whole parameter ranges — every MCS, every seed, every sequence
// offset, every loss rate, every driving speed — rather than at single
// hand-picked points.
#include <gtest/gtest.h>

#include <complex>

#include "channel/fading.h"
#include "core/ap_selector.h"
#include "core/cyclic_queue.h"
#include "mac/airtime.h"
#include "mac/block_ack.h"
#include "phy/error_model.h"
#include "phy/esnr.h"
#include "scenario/experiment.h"
#include "transport/tcp_connection.h"
#include "util/rng.h"

namespace wgtt {
namespace {

// ---------------------------------------------------------------------------
// Per-MCS invariants
// ---------------------------------------------------------------------------

class McsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(McsProperty, PerIsMonotoneDecreasingInEsnr) {
  phy::ErrorModel em;
  const phy::McsInfo& m = phy::mcs(GetParam());
  double prev = 1.0 + 1e-12;
  for (double e = -10.0; e <= 40.0; e += 0.25) {
    const double p = em.per(m, e, 1460);
    EXPECT_LE(p, prev + 1e-12) << "at esnr " << e;
    prev = p;
  }
}

TEST_P(McsProperty, PerAnchoredAtHalf) {
  phy::ErrorModel em;
  const phy::McsInfo& m = phy::mcs(GetParam());
  EXPECT_NEAR(em.per(m, m.per50_esnr_db, 1460), 0.5, 1e-9);
}

TEST_P(McsProperty, PerMonotoneInLength) {
  phy::ErrorModel em;
  const phy::McsInfo& m = phy::mcs(GetParam());
  const double e = m.per50_esnr_db + 1.5;
  double prev = 0.0;
  for (std::size_t bytes : {40u, 100u, 500u, 1000u, 1460u, 4000u}) {
    const double p = em.per(m, e, bytes);
    EXPECT_GE(p, prev - 1e-12) << "at " << bytes << " bytes";
    prev = p;
  }
}

TEST_P(McsProperty, CleanWellAboveThreshold) {
  phy::ErrorModel em;
  const phy::McsInfo& m = phy::mcs(GetParam());
  EXPECT_GT(em.delivery_probability(m, m.per50_esnr_db + 6.0, 1460), 0.995);
}

TEST_P(McsProperty, AirtimeScalesInverselyWithRate) {
  mac::AirtimeCalculator at;
  const unsigned idx = GetParam();
  if (idx == 0) return;
  // Strictly faster than the previous MCS for the same payload.
  EXPECT_LT(at.mpdu_duration(phy::mcs(idx), 1500).to_ns(),
            at.mpdu_duration(phy::mcs(idx - 1), 1500).to_ns());
}

TEST_P(McsProperty, EsnrOfFlatChannelIsUnbiased) {
  // For each MCS's modulation, ESNR of a flat channel equals the SNR in the
  // modulation's sensitive range.
  const phy::McsInfo& m = phy::mcs(GetParam());
  phy::Csi csi;
  const double snr = m.per50_esnr_db;  // mid-sensitivity point
  for (auto& s : csi.subcarrier_snr_db) s = snr;
  EXPECT_NEAR(phy::effective_snr_db(csi, m.modulation), snr, 0.2);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, McsProperty, ::testing::Range(0u, 8u));

// ---------------------------------------------------------------------------
// Fading realisations across seeds
// ---------------------------------------------------------------------------

class FadingSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FadingSeedProperty, AveragePowerNearUnity) {
  channel::FadingProcess f(channel::FadingConfig{}, Rng(GetParam()));
  double p = 0.0;
  int n = 0;
  for (double x = 0.0; x < 60.0; x += 0.25) {
    p += f.wideband_gain(x, channel::ht20_subcarrier_offsets_hz());
    ++n;
  }
  // Single-realisation spatial average: generous tolerance.
  EXPECT_NEAR(p / n, 1.0, 0.5);
}

TEST_P(FadingSeedProperty, ResponseIsReproducible) {
  channel::FadingProcess a(channel::FadingConfig{}, Rng(GetParam()));
  channel::FadingProcess b(channel::FadingConfig{}, Rng(GetParam()));
  std::array<std::complex<double>, channel::kNumSubcarriers> ha, hb;
  a.response(13.7, channel::ht20_subcarrier_offsets_hz(), ha);
  b.response(13.7, channel::ht20_subcarrier_offsets_hz(), hb);
  for (std::size_t k = 0; k < ha.size(); ++k) EXPECT_EQ(ha[k], hb[k]);
}

TEST_P(FadingSeedProperty, ExhibitsDeepFades) {
  // Rayleigh-like fading must dip well below its mean somewhere: this is
  // the millisecond structure the whole system exploits.
  channel::FadingProcess f(channel::FadingConfig{}, Rng(GetParam()));
  double min_gain = 1e9;
  double max_gain = 0.0;
  for (double x = 0.0; x < 30.0; x += 0.01) {
    const double g = f.wideband_gain(x, channel::ht20_subcarrier_offsets_hz());
    min_gain = std::min(min_gain, g);
    max_gain = std::max(max_gain, g);
  }
  EXPECT_GT(max_gain / std::max(min_gain, 1e-9), 10.0);  // >10 dB swing
}

INSTANTIATE_TEST_SUITE_P(Seeds, FadingSeedProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---------------------------------------------------------------------------
// Cyclic queue across start offsets (including the 4096 wrap)
// ---------------------------------------------------------------------------

class CyclicQueueOffsetProperty
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CyclicQueueOffsetProperty, FifoAcrossWrap) {
  const std::uint32_t start = GetParam();
  core::CyclicQueue q;
  q.set_head(start);
  for (std::uint32_t i = 0; i < 200; ++i) {
    net::Packet p;
    p.index = (start + i) & (core::CyclicQueue::kSlots - 1);
    p.size_bytes = 100;
    q.insert(p.index, net::make_packet(p));
  }
  for (std::uint32_t i = 0; i < 200; ++i) {
    auto item = q.pop();
    ASSERT_TRUE(item) << "at offset " << i;
    EXPECT_EQ(item->first, (start + i) & (core::CyclicQueue::kSlots - 1));
  }
  EXPECT_TRUE(q.empty());
}

TEST_P(CyclicQueueOffsetProperty, HandoverMidStream) {
  const std::uint32_t start = GetParam();
  core::CyclicQueue q;
  q.set_head(start);
  for (std::uint32_t i = 0; i < 100; ++i) {
    net::Packet p;
    p.index = (start + i) & (core::CyclicQueue::kSlots - 1);
    q.insert(p.index, net::make_packet(p));
  }
  // start(c, k) at k = start + 40.
  const std::uint32_t k = (start + 40) & (core::CyclicQueue::kSlots - 1);
  q.set_head(k);
  EXPECT_EQ(q.pending(), 60u);
  auto item = q.pop();
  ASSERT_TRUE(item);
  EXPECT_EQ(item->first, k);
}

INSTANTIATE_TEST_SUITE_P(Offsets, CyclicQueueOffsetProperty,
                         ::testing::Values(0u, 1u, 1000u, 4000u, 4095u));

// ---------------------------------------------------------------------------
// Reorder buffer across sequence-space positions
// ---------------------------------------------------------------------------

class ReorderOffsetProperty : public ::testing::TestWithParam<std::uint16_t> {
};

TEST_P(ReorderOffsetProperty, ShuffledWindowDeliversInOrder) {
  const std::uint16_t start = GetParam();
  std::vector<std::uint16_t> delivered;
  mac::ReorderBuffer rb([&](net::PacketPtr p) {
    delivered.push_back(static_cast<std::uint16_t>(p->seq));
  });
  // Deliver a 32-frame window in a fixed shuffled order.
  std::vector<std::uint16_t> order;
  for (std::uint16_t i = 0; i < 32; ++i) order.push_back(i);
  Rng rng(start + 5);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(i) - 1))]);
  }
  // The first frame must establish the window start.
  rb.on_mpdu(start, [&] {
    net::Packet p;
    p.seq = start;
    return net::make_packet(p);
  }(), Time::zero());
  for (std::uint16_t off : order) {
    const auto seq =
        static_cast<std::uint16_t>((start + off) & (mac::kSeqModulo - 1));
    net::Packet p;
    p.seq = seq;
    rb.on_mpdu(seq, net::make_packet(p), Time::zero());
  }
  ASSERT_EQ(delivered.size(), 32u);
  for (std::uint16_t i = 0; i < 32; ++i) {
    EXPECT_EQ(delivered[i],
              static_cast<std::uint16_t>((start + i) & (mac::kSeqModulo - 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(SeqPositions, ReorderOffsetProperty,
                         ::testing::Values(0, 100, 2047, 4080, 4095));

// ---------------------------------------------------------------------------
// TCP under a sweep of loss rates
// ---------------------------------------------------------------------------

class TcpLossProperty : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossProperty, CompletesAndThroughputDegradesGracefully) {
  const double loss = GetParam();
  sim::Scheduler sched;
  transport::IpIdAllocator ids;
  transport::TcpConnection conn(sched, ids, transport::TcpConfig{}, 1, 10,
                                20);
  Rng rng(static_cast<std::uint64_t>(loss * 1000) + 3);
  std::uint64_t app_bytes = 0;
  conn.on_app_receive = [&](std::size_t b, Time) { app_bytes += b; };
  conn.transmit_data = [&](net::PacketPtr p) {
    if (rng.bernoulli(loss)) return;
    sched.schedule(Time::ms(10), [&conn, p]() { conn.on_network_data(p); });
  };
  conn.transmit_ack = [&](net::PacketPtr p) {
    sched.schedule(Time::ms(10), [&conn, p]() { conn.on_network_ack(p); });
  };
  conn.app_send(300'000);
  sched.run_until(Time::sec(120));
  EXPECT_EQ(app_bytes, 300'000u) << "loss " << loss;
  // At tiny loss rates a 208-segment transfer can get lucky;
  // only demand visible recovery work once loss is material.
  if (loss >= 0.02) {
    EXPECT_GT(conn.stats().retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossProperty,
                         ::testing::Values(0.0, 0.005, 0.02, 0.05, 0.10));

// ---------------------------------------------------------------------------
// Selector across window sizes
// ---------------------------------------------------------------------------

class SelectorWindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(SelectorWindowProperty, MedianBoundedByWindowExtremes) {
  const Time w = Time::ms(GetParam());
  core::MedianEsnrSelector sel(w, 1);
  Rng rng(11);
  double lo = 1e9;
  double hi = -1e9;
  const Time now = Time::ms(1000);
  for (int i = 0; i < 50; ++i) {
    const double v = rng.uniform(0.0, 30.0);
    const Time t = now - Time::ms(rng.uniform(0.0, GetParam() * 0.99));
    sel.add_reading(1, t, v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  auto m = sel.median(1, now);
  ASSERT_TRUE(m);
  EXPECT_GE(*m, lo);
  EXPECT_LE(*m, hi);
}

TEST_P(SelectorWindowProperty, PruneDropsEverythingPastWindow) {
  const Time w = Time::ms(GetParam());
  core::MedianEsnrSelector sel(w, 1);
  sel.add_reading(1, Time::ms(0), 10.0);
  const Time later = Time::ms(GetParam()) + Time::ms(1);
  sel.prune(later);
  EXPECT_FALSE(sel.median(1, later));
  EXPECT_TRUE(sel.aps_in_range(later).empty());
}

INSTANTIATE_TEST_SUITE_P(Windows, SelectorWindowProperty,
                         ::testing::Values(2, 5, 10, 50, 200));

// ---------------------------------------------------------------------------
// End-to-end across driving speeds
// ---------------------------------------------------------------------------

class DriveSpeedProperty : public ::testing::TestWithParam<double> {};

TEST_P(DriveSpeedProperty, WgttStaysAccurateAndServing) {
  scenario::DriveScenarioConfig cfg;
  cfg.traffic = scenario::TrafficType::kUdpDownlink;
  cfg.speed_mph = GetParam();
  cfg.seed = 42;
  auto r = scenario::run_drive(cfg);
  // The paper's central claim: accuracy and delivery hold across speeds.
  EXPECT_GT(r.clients[0].switching_accuracy, 0.75) << GetParam() << " mph";
  EXPECT_GT(r.clients[0].goodput_mbps, 4.0) << GetParam() << " mph";
  // Every switch completed within a bounded protocol time.
  for (double ms : r.switch_latencies_ms) {
    EXPECT_LT(ms, 60.0);  // stop + (<=1 retransmission) + start + ack
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, DriveSpeedProperty,
                         ::testing::Values(5.0, 15.0, 25.0, 35.0));

}  // namespace
}  // namespace wgtt
