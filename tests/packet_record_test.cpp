// Per-packet flight-recorder suite (ctest label: packets).
//
// Locks down the packet-record determinism contract end to end: a fixed-seed
// drive with recording enabled must emit byte-identical JSONL from a repeat
// run and from run 0 of an 8-worker parallel sweep, every sampled packet's
// waterfall must be time-monotone, every drop/suppress record must carry a
// cause, and the controller's uplink de-duplication counter must match the
// dedup_suppress records one for one.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/experiment.h"
#include "scenario/sweep.h"
#include "util/json.h"

namespace wgtt {
namespace {

/// The golden-trace scenario (trace_test.cpp) plus full packet recording.
scenario::DriveScenarioConfig recorded_config() {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 25.0;
  cfg.duration = Time::sec(2);
  cfg.seed = 7;
  cfg.testbed.enable_packet_log = true;
  cfg.testbed.packet_sample = 1;
  return cfg;
}

std::vector<JsonValue> parse_jsonl(const std::string& jsonl) {
  std::vector<JsonValue> out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string::npos) eol = jsonl.size();
    const std::string_view line(jsonl.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    JsonValue v;
    std::string error;
    EXPECT_TRUE(json_parse(line, v, &error)) << error << "\n" << line;
    out.push_back(std::move(v));
  }
  return out;
}

TEST(PacketRecordTest, ByteIdenticalAcrossRunsAndParallelSweep) {
  const auto cfg = recorded_config();
  const scenario::DriveResult first = scenario::run_drive(cfg);
  const scenario::DriveResult second = scenario::run_drive(cfg);
  ASSERT_GT(first.packet_records, 0u);
  ASSERT_FALSE(first.packet_jsonl.empty());
  EXPECT_EQ(first.packet_jsonl, second.packet_jsonl)
      << "repeat run produced a different packet log";
  EXPECT_EQ(first.packet_records, second.packet_records);

  // Same config as run 0 of an 8-worker sweep; the other seven runs vary
  // seed/system so the workers genuinely interleave different sims.
  std::vector<scenario::DriveScenarioConfig> configs{cfg};
  for (std::uint64_t seed = 8; seed < 15; ++seed) {
    scenario::DriveScenarioConfig other = recorded_config();
    other.seed = seed;
    if (seed % 3 == 0) other.system = scenario::SystemType::kEnhanced80211r;
    configs.push_back(other);
  }
  scenario::SweepRunner runner(scenario::SweepOptions{.jobs = 8});
  const scenario::SweepOutcome outcome = runner.run(configs);
  EXPECT_EQ(first.packet_jsonl, outcome.runs[0].result.packet_jsonl)
      << "8-worker sweep produced a different packet log";
}

TEST(PacketRecordTest, OneLinePerRecordAndRequiredFields) {
  const scenario::DriveResult r = scenario::run_drive(recorded_config());
  std::size_t lines = 0;
  for (char ch : r.packet_jsonl) lines += ch == '\n';
  // One line per record plus the stream's schema header.
  EXPECT_EQ(lines, r.packet_records + 1);

  const std::vector<JsonValue> recs = parse_jsonl(r.packet_jsonl);
  ASSERT_EQ(recs.size(), r.packet_records + 1);
  ASSERT_TRUE(recs.front().is_object());
  EXPECT_EQ(recs.front().string_or("kind", ""), "schema");
  EXPECT_EQ(recs.front().string_or("stream", ""), "wgtt.packets");
  for (std::size_t i = 1; i < recs.size(); ++i) {
    const JsonValue& rec = recs[i];
    ASSERT_TRUE(rec.is_object());
    EXPECT_NE(rec.find("uid"), nullptr);
    EXPECT_NE(rec.find("t_us"), nullptr);
    EXPECT_NE(rec.find("hop"), nullptr);
    EXPECT_NE(rec.find("node"), nullptr);
    EXPECT_NE(rec.string_or("hop", "?"), "?");
  }
}

TEST(PacketRecordTest, WaterfallTimestampsMonotonePerPacket) {
  const scenario::DriveResult r = scenario::run_drive(recorded_config());
  std::map<std::uint64_t, double> last_t;
  std::size_t followed = 0;
  for (const JsonValue& rec : parse_jsonl(r.packet_jsonl)) {
    const auto uid = static_cast<std::uint64_t>(rec.number_or("uid", 0.0));
    if (uid == 0) continue;  // markers interleave freely
    const double t = rec.number_or("t_us", -1.0);
    auto [it, inserted] = last_t.try_emplace(uid, t);
    if (!inserted) {
      EXPECT_GE(t, it->second)
          << "uid " << uid << " went backwards at " << rec.string_or("hop", "?");
      it->second = t;
    }
    ++followed;
  }
  EXPECT_GT(last_t.size(), 10u) << "expected many sampled packets";
  EXPECT_GT(followed, last_t.size()) << "expected multi-hop waterfalls";
}

TEST(PacketRecordTest, EveryDropAndSuppressRecordCarriesACause) {
  const scenario::DriveResult r = scenario::run_drive(recorded_config());
  std::size_t terminal = 0;
  for (const JsonValue& rec : parse_jsonl(r.packet_jsonl)) {
    const std::string hop = rec.string_or("hop", "?");
    const bool is_terminal = hop == "transport_drop" || hop == "backhaul_drop" ||
                             hop == "ap_drop" || hop == "mac_drop" ||
                             hop == "dedup_suppress";
    if (!is_terminal) continue;
    ++terminal;
    EXPECT_NE(rec.string_or("cause", ""), "")
        << hop << " record without a cause";
  }
  EXPECT_GT(terminal, 0u) << "a 2 s drive should evict at least one packet";
}

TEST(PacketRecordTest, SwitchMarkersPairUpAndMatchTheSwitchLog) {
  const scenario::DriveResult r = scenario::run_drive(recorded_config());
  std::size_t starts = 0, dones = 0;
  for (const JsonValue& rec : parse_jsonl(r.packet_jsonl)) {
    if (static_cast<std::uint64_t>(rec.number_or("uid", 0.0)) != 0) continue;
    const std::string hop = rec.string_or("hop", "?");
    if (hop == "switch_start") ++starts;
    if (hop == "switch_done") {
      ++dones;
      EXPECT_GT(rec.number_or("gap_us", -1.0), 0.0);
    }
  }
  EXPECT_GT(starts, 0u);
  EXPECT_LE(dones, starts);
  // switch_latencies_ms has one sample per completed switch.
  EXPECT_EQ(dones, r.switch_latencies_ms.size());
}

TEST(PacketRecordTest, DedupSuppressionsMatchControllerCountOnUplink) {
  // Multi-AP uplink UDP: every uplink datagram is heard (and tunneled) by
  // several APs, so the controller's src ++ IP-ID filter has real work.
  scenario::DriveScenarioConfig cfg = recorded_config();
  cfg.traffic = scenario::TrafficType::kUdpUplink;
  const scenario::DriveResult r = scenario::run_drive(cfg);
  std::size_t suppressed = 0;
  for (const JsonValue& rec : parse_jsonl(r.packet_jsonl)) {
    if (rec.string_or("hop", "?") == "dedup_suppress") ++suppressed;
  }
  EXPECT_GT(r.uplink_duplicates_removed, 0u)
      << "uplink run produced no duplicates to suppress";
  EXPECT_EQ(suppressed, r.uplink_duplicates_removed)
      << "flight recorder and controller disagree on suppressed duplicates";
}

TEST(PacketRecordTest, SamplingThinsRecordsDeterministically) {
  scenario::DriveScenarioConfig cfg = recorded_config();
  cfg.testbed.packet_sample = 8;
  const scenario::DriveResult sampled = scenario::run_drive(cfg);
  const scenario::DriveResult sampled2 = scenario::run_drive(cfg);
  const scenario::DriveResult full = scenario::run_drive(recorded_config());
  ASSERT_GT(sampled.packet_records, 0u);
  EXPECT_LT(sampled.packet_records, full.packet_records / 2);
  EXPECT_EQ(sampled.packet_jsonl, sampled2.packet_jsonl);
  // Markers survive any sampling rate (switch attribution depends on them).
  EXPECT_NE(sampled.packet_jsonl.find("\"hop\":\"switch_start\""),
            std::string::npos);
}

TEST(PacketRecordTest, RecorderOffLeavesResultEmpty) {
  scenario::DriveScenarioConfig cfg = recorded_config();
  cfg.testbed.enable_packet_log = false;
  const scenario::DriveResult r = scenario::run_drive(cfg);
  EXPECT_EQ(r.packet_records, 0u);
  EXPECT_TRUE(r.packet_jsonl.empty());
}

}  // namespace
}  // namespace wgtt
