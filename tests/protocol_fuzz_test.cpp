// Control-plane hardening suite (ctest label: protocol).
//
// Locks down the idempotent, fenced switch protocol end to end:
//
//  * regression tests for the two pre-hardening corruption bugs — a stale
//    SwitchAckMsg completing the wrong switch at the controller, and a
//    replayed StartMsg re-activating an already-handed-over AP (the
//    dual-active transmitter bug);
//  * the deterministic protocol fuzzer: 32 seeded adversarial schedules per
//    mode ({msg_dup, msg_reorder, ctrl_crash, combined}) driven through
//    full drives, asserting zero health errors, no client stranded, the
//    at-most-one-active-transmitter invariant, and per-client
//    (epoch, switch_id) monotonicity across the switch log;
//  * byte-reproducibility of adversarial runs (the new impairments draw
//    from the injector's own RNG stream, so same (plan, seed) replays the
//    exact same decision and packet logs).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "channel/channel_model.h"
#include "core/control_messages.h"
#include "core/wgtt_ap.h"
#include "core/wgtt_controller.h"
#include "mac/medium.h"
#include "mac/wifi_device.h"
#include "net/backhaul.h"
#include "net/fault_injector.h"
#include "net/packet.h"
#include "phy/error_model.h"
#include "scenario/experiment.h"
#include "scenario/sweep.h"
#include "sim/fault_plan.h"
#include "sim/scheduler.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace wgtt {
namespace {

using core::ControllerConfig;
using core::StartMsg;
using core::StopMsg;
using core::SwitchAckMsg;
using core::WgttController;
using sim::FaultPlan;

// ---------------------------------------------------------------------------
// Regression: stale SwitchAckMsg fencing at the controller
// ---------------------------------------------------------------------------

// The SwitchFsmTest harness from core_test, but with a FaultInjector
// installed before the controller constructs — that arms the fences.  The
// (empty) plan never fires a fault; only the hardening machinery is active.
class HardenedFsmTest : public ::testing::Test {
 protected:
  HardenedFsmTest()
      : injector(sched, FaultPlan{}, Rng(2).fork("faults")),
        scope(&injector),
        backhaul(sched, net::BackhaulConfig{}, Rng(1)),
        controller(sched, backhaul, {1, 2}, ControllerConfig{}) {}

  void attach_ap(net::NodeId id, bool respond_to_stop) {
    backhaul.attach(id, [this, respond_to_stop](
                            const net::TunneledPacket& f) {
      auto inner = net::decapsulate(f);
      if (inner->type == net::PacketType::kStop) {
        ++stops_seen;
        if (!respond_to_stop) return;  // swallow: ack never comes
        const auto* stop = net::payload_as<StopMsg>(*inner);
        ASSERT_NE(stop, nullptr);
        net::Packet ack;
        ack.type = net::PacketType::kSwitchAck;
        ack.size_bytes = SwitchAckMsg::kWireBytes;
        // A real AP echoes the fencing epoch the start carried (relayed
        // from this stop).
        ack.payload =
            SwitchAckMsg{stop->client, stop->next_ap, stop->switch_id,
                         stop->epoch};
        ack.src = stop->next_ap;
        ack.dst = net::kControllerId;
        backhaul.send(net::encapsulate(net::make_packet(std::move(ack)),
                                       stop->next_ap, net::kControllerId));
      }
    });
  }

  void join_client(net::NodeId ap) {
    core::StaInfo info;
    info.client = net::kClientBase;
    info.associating_ap = ap;
    net::Packet p;
    p.type = net::PacketType::kAssocSync;
    p.size_bytes = core::ClientJoinedMsg::kWireBytes;
    p.payload = core::ClientJoinedMsg{info};
    backhaul.send(net::encapsulate(net::make_packet(std::move(p)), ap,
                                   net::kControllerId));
  }

  void feed_csi(net::NodeId ap, double esnr_snr_db, int count) {
    for (int i = 0; i < count; ++i) {
      phy::Csi csi;
      for (auto& s : csi.subcarrier_snr_db) s = esnr_snr_db;
      net::Packet p;
      p.type = net::PacketType::kCsiReport;
      p.size_bytes = core::CsiReportMsg::kWireBytes;
      p.payload = core::CsiReportMsg{ap, net::kClientBase, csi};
      backhaul.send(net::encapsulate(net::make_packet(std::move(p)), ap,
                                     net::kControllerId));
    }
  }

  void send_ack(std::uint32_t switch_id, std::uint32_t epoch,
                net::NodeId new_ap = 2) {
    net::Packet p;
    p.type = net::PacketType::kSwitchAck;
    p.size_bytes = SwitchAckMsg::kWireBytes;
    p.payload = SwitchAckMsg{net::kClientBase, new_ap, switch_id, epoch};
    backhaul.send(net::encapsulate(net::make_packet(std::move(p)), new_ap,
                                   net::kControllerId));
  }

  /// Drive the 1 -> 2 switch to completion (bootstrap on 1 first).
  void complete_one_switch() {
    attach_ap(1, true);
    attach_ap(2, true);
    join_client(1);
    sched.run_until(Time::ms(50));
    for (int burst = 0; burst < 10; ++burst) {
      sched.schedule(Time::ms(burst * 2), [this]() {
        feed_csi(1, 5.0, 2);
        feed_csi(2, 18.0, 2);
      });
    }
    sched.run_until(Time::ms(200));
    ASSERT_EQ(controller.active_ap(net::kClientBase), 2u);
    ASSERT_EQ(controller.stats().switches_completed, 1u);
  }

  sim::Scheduler sched;
  net::FaultInjector injector;
  net::ScopedFaultInjector scope;
  net::Backhaul backhaul;
  WgttController controller;
  int stops_seen = 0;
};

TEST_F(HardenedFsmTest, DuplicateAndPreRestartAcksAreFencedOff) {
  complete_one_switch();

  // A duplicate of the already-consumed ack (msg_dup, or the same ack
  // tunneled by two paths): no switch is in flight, so it is stale.
  send_ack(/*switch_id=*/1, controller.epoch());
  // An ack stamped before any restart (epoch 0 != current epoch): stale
  // even if a recycled switch_id happened to match.
  send_ack(/*switch_id=*/1, /*epoch=*/0);
  sched.run_until(Time::ms(250));

  EXPECT_EQ(controller.stats().stale_acks, 2u);
  // Neither corrupted the FSM: still exactly one completed switch, the
  // active AP unchanged.
  EXPECT_EQ(controller.stats().switches_completed, 1u);
  EXPECT_EQ(controller.active_ap(net::kClientBase), 2u);
}

TEST_F(HardenedFsmTest, ForeignAckCannotCompleteAnInflightSwitch) {
  // AP1 swallows the stop, so the 1 -> 2 switch stays open and retries.
  attach_ap(1, false);
  attach_ap(2, true);
  join_client(1);
  sched.run_until(Time::ms(50));
  for (int burst = 0; burst < 40; ++burst) {
    sched.schedule(Time::ms(burst * 2), [this]() {
      feed_csi(1, 5.0, 2);
      feed_csi(2, 18.0, 2);
    });
  }
  sched.run_until(Time::ms(120));
  ASSERT_TRUE(controller.switch_in_flight(net::kClientBase));

  // Before the fence, any ack naming this client completed the in-flight
  // switch regardless of which handshake it belonged to.  An ack with a
  // foreign switch_id must bounce off.
  send_ack(/*switch_id=*/999, controller.epoch());
  sched.run_until(Time::ms(160));

  EXPECT_GE(controller.stats().stale_acks, 1u);
  EXPECT_EQ(controller.stats().switches_completed, 0u);
  EXPECT_EQ(controller.active_ap(net::kClientBase), 1u);
  EXPECT_TRUE(controller.switch_in_flight(net::kClientBase));
}

// ---------------------------------------------------------------------------
// Regression: stale StartMsg fencing at the AP (the dual-active bug)
// ---------------------------------------------------------------------------

// One real WgttAp on a real radio, with an injector installed so the
// (epoch, switch_id) fences are armed.  The controller side is a plain
// backhaul sink.
class HardenedApWorld {
 public:
  HardenedApWorld()
      : channel(channel::RadioConfig{18.0, 20.0, 0.0, 20e6, 6.0, 2.462e9},
                channel::PathLossConfig{}, channel::ShadowingConfig{},
                channel::FadingConfig{}, Rng(3)),
        medium(sched, channel),
        ctx(sched, medium, channel, error_model, Rng(4)),
        injector(sched, FaultPlan{}, Rng(2).fork("faults")),
        scope(&injector),
        backhaul(sched, net::BackhaulConfig{}, Rng(1)) {
    channel::ApSite site;
    site.id = 1;
    site.position = {0.0, 10.0, 5.0};
    site.boresight = channel::Vec3{0, -10, -3.5}.normalized();
    site.antenna = std::make_shared<channel::ParabolicAntenna>();
    channel.add_ap(site);
    channel.add_client(net::kClientBase,
                       std::make_shared<channel::StaticMobility>(
                           channel::Vec3{0, 0, 1.5}));
    mac::WifiDeviceConfig dev_cfg;
    dev_cfg.is_ap = true;
    dev_cfg.bssid = 1;
    device = std::make_unique<mac::WifiDevice>(ctx, 1, dev_cfg);
    core::WgttApConfig cfg;
    cfg.id = 1;
    ap = std::make_unique<core::WgttAp>(sched, backhaul, *device, cfg);
    // Swallow everything the AP sends upstream (acks, heartbeats, CSI);
    // count the switch acks.
    backhaul.attach(net::kControllerId, [this](const net::TunneledPacket& f) {
      auto inner = net::decapsulate(f);
      if (inner->type == net::PacketType::kSwitchAck) ++acks_seen;
    });
    // The stop relays a start to AP2; give the frame somewhere to die.
    backhaul.attach(2, [](const net::TunneledPacket&) {});
  }

  void send_start(std::uint32_t switch_id, std::uint32_t epoch) {
    net::Packet p;
    p.type = net::PacketType::kStart;
    p.size_bytes = StartMsg::kWireBytes;
    p.payload = StartMsg{net::kClientBase, core::kResumeHeadIndex, switch_id,
                         /*from_ap=*/0, epoch};
    backhaul.send(net::encapsulate(net::make_packet(std::move(p)),
                                   net::kControllerId, 1));
  }

  void send_stop(std::uint32_t switch_id, std::uint32_t epoch) {
    net::Packet p;
    p.type = net::PacketType::kStop;
    p.size_bytes = StopMsg::kWireBytes;
    StopMsg stop;
    stop.client = net::kClientBase;
    stop.next_ap = 2;
    stop.switch_id = switch_id;
    stop.epoch = epoch;
    p.payload = stop;
    backhaul.send(net::encapsulate(net::make_packet(std::move(p)),
                                   net::kControllerId, 1));
  }

  sim::Scheduler sched;
  phy::ErrorModel error_model;
  channel::ChannelModel channel;
  mac::Medium medium;
  mac::MacContext ctx;
  net::FaultInjector injector;
  net::ScopedFaultInjector scope;
  net::Backhaul backhaul;
  std::unique_ptr<mac::WifiDevice> device;
  std::unique_ptr<core::WgttAp> ap;
  int acks_seen = 0;
};

TEST(StaleStartRegression, ReplayedStartCannotReactivateAHandedOverAp) {
  HardenedApWorld w;

  // Switch 5 activates this AP (controller-originated failover start).
  w.send_start(/*switch_id=*/5, /*epoch=*/1);
  w.sched.run_until(Time::ms(40));
  ASSERT_TRUE(w.ap->active_for(net::kClientBase));
  ASSERT_EQ(w.acks_seen, 1);

  // Switch 6 hands the client over to AP2: stop, flush, relay.
  w.send_stop(/*switch_id=*/6, /*epoch=*/1);
  w.sched.run_until(Time::ms(80));
  ASSERT_FALSE(w.ap->active_for(net::kClientBase));

  // An msg_reorder/msg_dup replay of the old start(5) arrives late.  Before
  // the fence this re-activated the stack unconditionally — two APs then
  // transmitted to the client under the shared BSSID (dual-active).  The
  // (epoch, switch_id) fence sits at (1, 6) and must reject (1, 5).
  w.send_start(/*switch_id=*/5, /*epoch=*/1);
  w.sched.run_until(Time::ms(120));

  EXPECT_EQ(w.ap->stats().stale_starts_rejected, 1u);
  EXPECT_FALSE(w.ap->active_for(net::kClientBase));
  EXPECT_FALSE(w.ap->transmitting(net::kClientBase));
  EXPECT_EQ(w.acks_seen, 1);  // the stale start earned no second ack
}

TEST(StaleStartRegression, RetransmittedCurrentStopReprocessesIdempotently) {
  HardenedApWorld w;
  w.send_start(5, 1);
  w.sched.run_until(Time::ms(40));

  // The controller's ack timeout retransmits stop(6): the fence holds an
  // equal pair, which must re-process (re-deriving the same k), not bounce.
  w.send_stop(6, 1);
  w.sched.run_until(Time::ms(80));
  w.send_stop(6, 1);
  w.sched.run_until(Time::ms(120));

  EXPECT_EQ(w.ap->stats().stops_handled, 2u);
  EXPECT_EQ(w.ap->stats().stale_stops_rejected, 0u);
  EXPECT_FALSE(w.ap->active_for(net::kClientBase));
}

// ---------------------------------------------------------------------------
// The deterministic protocol fuzzer
// ---------------------------------------------------------------------------

constexpr std::size_t kFuzzSeeds = 32;
const Time kFuzzHorizon = Time::sec(3);

/// One adversarial drive: the golden-trace scenario under a seeded
/// control-chaos schedule, with the health engine's outage ledger on.
/// control_chaos confines every fault window to [10%, 75%] of the horizon,
/// so the final ~0.75 s is fault-free convergence headroom.
scenario::DriveScenarioConfig fuzz_config(std::uint64_t seed, unsigned mask) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 25.0;
  cfg.duration = kFuzzHorizon;
  cfg.seed = seed;
  cfg.testbed.enable_health = true;
  cfg.testbed.faults =
      FaultPlan::control_chaos(1.5, kFuzzHorizon, 8, seed, mask);
  return cfg;
}

std::uint64_t counter_sum(const metrics::Snapshot& snap,
                          std::string_view name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

struct FuzzSummary {
  std::uint64_t faults_injected = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t stale_rejected = 0;
  std::uint64_t stale_acks = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t switches = 0;
};

/// Run kFuzzSeeds adversarial drives for one fault-kind mask (8-way
/// parallel), assert the protocol contract on every run, and return the
/// summed hardening counters for the per-mode expectations.
FuzzSummary fuzz_mode(unsigned mask) {
  std::vector<scenario::DriveScenarioConfig> configs;
  for (std::uint64_t seed = 1; seed <= kFuzzSeeds; ++seed) {
    configs.push_back(fuzz_config(seed, mask));
    EXPECT_FALSE(configs.back().testbed.faults.empty()) << "seed " << seed;
  }
  scenario::SweepRunner runner(scenario::SweepOptions{.jobs = 8});
  const scenario::SweepOutcome outcome = runner.run(configs);
  EXPECT_EQ(outcome.runs.size(), kFuzzSeeds);

  FuzzSummary sum;
  for (std::size_t i = 0; i < outcome.runs.size(); ++i) {
    const scenario::DriveResult& r = outcome.runs[i].result;
    const std::uint64_t seed = i + 1;

    // Contract 1: no watchdog tripped (conservation, ledger sanity).
    EXPECT_EQ(r.health_errors, 0u) << "seed " << seed;
    // Contract 2: at most one active transmitter per client once the
    // schedule's faults have cleared (in-flight handshakes excluded).
    EXPECT_TRUE(r.dual_active_clients.empty())
        << "seed " << seed << ": " << r.dual_active_clients.size()
        << " client(s) had two active transmitters at end of run";
    // Contract 3: no client stranded — every outage window the health
    // ledger opened was closed again before the run ended.
    EXPECT_EQ(r.unconverged_clients, 0u)
        << "seed " << seed << ": client still stranded at end of run ("
        << r.outages << " outages, longest " << r.longest_outage_ms << " ms)";
    // Contract 4: (epoch, switch_id) is lexicographically non-decreasing
    // per client across the completed-switch log.
    std::map<net::NodeId, std::pair<std::uint32_t, std::uint32_t>> last;
    for (const core::SwitchRecord& rec : r.switches) {
      EXPECT_GE(rec.epoch, 1u) << "seed " << seed << ": unfenced record";
      const auto stamp = std::make_pair(rec.epoch, rec.switch_id);
      auto it = last.find(rec.client);
      if (it != last.end()) {
        EXPECT_GE(stamp, it->second)
            << "seed " << seed << " client " << rec.client
            << ": switch identity went backwards";
      }
      last[rec.client] = stamp;
    }

    sum.faults_injected += counter_sum(r.metrics, "fault.injected");
    sum.dup_suppressed +=
        counter_sum(r.metrics, "controller.protocol.dup_suppressed");
    sum.stale_rejected +=
        counter_sum(r.metrics, "controller.protocol.stale_rejected");
    sum.stale_acks += counter_sum(r.metrics, "controller.protocol.stale_acks");
    sum.resyncs += counter_sum(r.metrics, "controller.protocol.resyncs");
    sum.switches += r.switches.size();
  }
  // The schedules actually exercised something: faults fired and the
  // control plane kept switching through them.
  EXPECT_GT(sum.faults_injected, 0u);
  EXPECT_GT(sum.switches, 0u);
  return sum;
}

TEST(ProtocolFuzz, MsgDupSchedulesConvergeWithoutViolations) {
  const FuzzSummary s = fuzz_mode(FaultPlan::kChaosMsgDup);
  // 32 seeds of adversarial duplication: the receivers' seq dedup must
  // have seen and dropped real duplicates somewhere.
  EXPECT_GT(s.dup_suppressed, 0u);
}

TEST(ProtocolFuzz, MsgReorderSchedulesConvergeWithoutViolations) {
  fuzz_mode(FaultPlan::kChaosMsgReorder);
}

TEST(ProtocolFuzz, CtrlCrashSchedulesWarmRestartAndResync) {
  const FuzzSummary s = fuzz_mode(FaultPlan::kChaosCtrlCrash);
  // Every crash clear runs a warm restart; at least one resync round must
  // have been broadcast across the 32 seeds.
  EXPECT_GT(s.resyncs, 0u);
}

TEST(ProtocolFuzz, CombinedAdversarialSchedulesConverge) {
  const FuzzSummary s = fuzz_mode(FaultPlan::kChaosControlAll);
  EXPECT_GT(s.dup_suppressed + s.stale_rejected + s.stale_acks + s.resyncs,
            0u);
}

// ---------------------------------------------------------------------------
// Adversarial runs stay byte-reproducible
// ---------------------------------------------------------------------------

TEST(ProtocolFuzz, AdversarialRunsAreByteReproducible) {
  scenario::DriveScenarioConfig cfg =
      fuzz_config(11, FaultPlan::kChaosControlAll);
  cfg.testbed.enable_decision_log = true;
  cfg.testbed.enable_packet_log = true;
  cfg.testbed.packet_sample = 1;
  const scenario::DriveResult a = scenario::run_drive(cfg);
  const scenario::DriveResult b = scenario::run_drive(cfg);
  ASSERT_GT(a.decision_records, 0u);
  ASSERT_GT(a.packet_records, 0u);
  EXPECT_EQ(a.decision_jsonl, b.decision_jsonl)
      << "control chaos replay produced a different decision log";
  EXPECT_EQ(a.packet_jsonl, b.packet_jsonl)
      << "control chaos replay produced a different packet log";
}

}  // namespace
}  // namespace wgtt
