// Causal event-graph regression suite (ctest label: causality).
//
// Locks down the provenance layer end to end: the causal JSONL stream must
// be byte-identical across repeat runs and across a parallel sweep (event
// ids come from the scheduler's deterministic seq counter, so thread
// placement must not leak in), and `wgtt-report critical-path` must produce
// a per-layer attribution whose segments sum exactly — on the simulated
// clock — to the measured switch latency, for every handoff policy and
// under a chaos plan.  The exactness gate lives in the binary (exit 1 on
// any mismatch), so these tests drive the real artifact like the diff
// suite does.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/handoff_policy.h"
#include "scenario/experiment.h"
#include "scenario/sweep.h"
#include "sim/fault_plan.h"
#include "util/json.h"

#ifndef WGTT_REPORT_BIN
#error "build must define WGTT_REPORT_BIN (path to the wgtt-report binary)"
#endif

namespace wgtt {
namespace {

/// The pinned scenario (same shape as the trace/packets suites) with the
/// causal tracer on.
scenario::DriveScenarioConfig causal_config() {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 25.0;
  cfg.duration = Time::sec(2);
  cfg.seed = 7;
  cfg.testbed.enable_causal = true;
  return cfg;
}

std::string read_file(const std::string& path) {
  std::string out;
  read_text_file(path, out);
  return out;
}

TEST(CausalLogTest, SchemaHeaderEdgesAndAnnotations) {
  const scenario::DriveResult r = scenario::run_drive(causal_config());
  ASSERT_GT(r.causal_records, 0u);
  ASSERT_FALSE(r.causal_jsonl.empty());

  // Schema header is the first line.
  EXPECT_EQ(r.causal_jsonl.rfind(
                "{\"kind\":\"schema\",\"stream\":\"wgtt.causal\"", 0),
            0u);
  // Edges carry provenance (a parent field) and the switch-window markers
  // the analyzer joins against the decision log are annotated.
  EXPECT_NE(r.causal_jsonl.find("\"parent\":"), std::string::npos);
  EXPECT_NE(r.causal_jsonl.find("\"site\":\"ctrl.switch_start\""),
            std::string::npos);
  EXPECT_NE(r.causal_jsonl.find("\"site\":\"ctrl.switch_done\""),
            std::string::npos);
  EXPECT_NE(r.causal_jsonl.find("\"site\":\"ap.ioctl\""), std::string::npos);

  // One JSONL line per record, plus the schema header.
  std::size_t lines = 0;
  for (char ch : r.causal_jsonl) lines += ch == '\n';
  EXPECT_EQ(lines, r.causal_records + 1);
}

TEST(CausalLogTest, ByteIdenticalAcrossRunsAndParallelSweep) {
  const auto cfg = causal_config();
  const scenario::DriveResult first = scenario::run_drive(cfg);
  const scenario::DriveResult second = scenario::run_drive(cfg);
  ASSERT_GT(first.causal_records, 0u);
  EXPECT_EQ(first.causal_jsonl, second.causal_jsonl)
      << "repeat run produced a different causal stream";
  EXPECT_EQ(first.causal_records, second.causal_records);

  // Same config as run 0 of an 8-worker sweep; the other seven runs vary
  // seed/system so the workers genuinely interleave different sims.
  std::vector<scenario::DriveScenarioConfig> configs{cfg};
  for (std::uint64_t seed = 8; seed < 15; ++seed) {
    scenario::DriveScenarioConfig other = causal_config();
    other.seed = seed;
    if (seed % 3 == 0) other.system = scenario::SystemType::kEnhanced80211r;
    configs.push_back(other);
  }
  scenario::SweepRunner runner(scenario::SweepOptions{.jobs = 8});
  const scenario::SweepOutcome outcome = runner.run(configs);
  EXPECT_EQ(first.causal_jsonl, outcome.runs[0].result.causal_jsonl)
      << "8-worker sweep produced a different causal stream";
}

TEST(CausalLogTest, DisabledTracerEmitsNothing) {
  scenario::DriveScenarioConfig cfg = causal_config();
  cfg.testbed.enable_causal = false;
  const scenario::DriveResult r = scenario::run_drive(cfg);
  EXPECT_EQ(r.causal_records, 0u);
  EXPECT_TRUE(r.causal_jsonl.empty());
}

// ---------------------------------------------------------------------------
// Critical-path exactness, gated by the real wgtt-report binary
// ---------------------------------------------------------------------------

class CriticalPathTest : public ::testing::Test {
 protected:
  /// Runs the drive, writes its causal stream, and returns wgtt-report
  /// critical-path's exit code (0 ok, 1 attribution mismatch, 2 schema).
  int analyze(const scenario::DriveScenarioConfig& cfg, const char* tag,
              std::string* out_text = nullptr) {
    const scenario::DriveResult r = scenario::run_drive(cfg);
    EXPECT_GT(r.causal_records, 0u) << tag;
    EXPECT_GT(r.switches.size(), 0u)
        << tag << ": drive produced no switch windows to attribute";
    const std::string base = ::testing::TempDir() + "wgtt_causal_" + tag;
    const std::string in = base + ".jsonl";
    const std::string out = base + ".txt";
    EXPECT_TRUE(write_text_file(in, r.causal_jsonl));
    const std::string cmd = std::string(WGTT_REPORT_BIN) + " critical-path " +
                            in + " > " + out + " 2>&1";
    const int code = WEXITSTATUS(std::system(cmd.c_str()));
    if (out_text) *out_text = read_file(out);
    std::remove(in.c_str());
    std::remove(out.c_str());
    return code;
  }
};

TEST_F(CriticalPathTest, SegmentsSumExactlyForEveryPolicy) {
  for (const char* policy :
       {"median_esnr", "predictive", "make_before_break", "bicast"}) {
    scenario::DriveScenarioConfig cfg = causal_config();
    ASSERT_TRUE(core::parse_policy_spec(policy, cfg.wgtt.controller.policy))
        << policy;
    std::string text;
    EXPECT_EQ(analyze(cfg, policy, &text), 0)
        << policy << " attribution mismatch:\n" << text;
    EXPECT_NE(text.find("result: ok"), std::string::npos) << policy;
  }
}

TEST_F(CriticalPathTest, SegmentsSumExactlyUnderChaos) {
  scenario::DriveScenarioConfig cfg = causal_config();
  cfg.testbed.faults = sim::FaultPlan::chaos(1.0, cfg.duration, 8, 42);
  std::string text;
  EXPECT_EQ(analyze(cfg, "chaos", &text), 0)
      << "chaos attribution mismatch:\n" << text;
  EXPECT_NE(text.find("result: ok"), std::string::npos);
}

}  // namespace
}  // namespace wgtt
