// Adversarial grammar tests for the three text formats the repo accepts
// from the outside world: handoff-policy specs ("name[:k=v,...]"), fault
// plans (the --faults clause grammar), and the hand-rolled JSON parser that
// re-loads bench reports.  Each parser must reject malformed, truncated,
// and overlong input with a precise error — never crash, loop, or read out
// of bounds — and canonical renderings must round-trip:
// parse(to_string(x)) == x.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/handoff_policy.h"
#include "sim/fault_plan.h"
#include "util/json.h"
#include "util/rng.h"

namespace wgtt {
namespace {

// ---------------------------------------------------------------------------
// util/json json_parse
// ---------------------------------------------------------------------------

bool json_equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.as_bool() == b.as_bool();
    case JsonValue::Kind::kNumber: return a.as_number() == b.as_number();
    case JsonValue::Kind::kString: return a.as_string() == b.as_string();
    case JsonValue::Kind::kArray: {
      if (a.as_array().size() != b.as_array().size()) return false;
      for (std::size_t i = 0; i < a.as_array().size(); ++i) {
        if (!json_equal(a.as_array()[i], b.as_array()[i])) return false;
      }
      return true;
    }
    case JsonValue::Kind::kObject: {
      if (a.as_object().size() != b.as_object().size()) return false;
      auto ia = a.as_object().begin();
      auto ib = b.as_object().begin();
      for (; ia != a.as_object().end(); ++ia, ++ib) {
        if (ia->first != ib->first) return false;
        if (!json_equal(ia->second, ib->second)) return false;
      }
      return true;
    }
  }
  return false;
}

// Render a parsed value back through JsonWriter — the canonical rendering
// whose re-parse must reproduce the same tree.
void render(const JsonValue& v, JsonWriter& w) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: w.null(); break;
    case JsonValue::Kind::kBool: w.value(v.as_bool()); break;
    case JsonValue::Kind::kNumber: w.value(v.as_number()); break;
    case JsonValue::Kind::kString: w.value(v.as_string()); break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& e : v.as_array()) render(e, w);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.as_object()) {
        w.key(k);
        render(e, w);
      }
      w.end_object();
      break;
  }
}

TEST(JsonGrammar, MalformedDocumentsRejectWithOffset) {
  const std::vector<std::string> bad = {
      "",          "{",        "[",           "}",          "]",
      "\"abc",     "{\"a\"",   "{\"a\":}",    "{\"a\":1,}", "[1,]",
      "[1 2]",     "tru",      "nul",         "falsey",     "abc",
      "--1",       "+",        "-",           "1e",         "1.2.3",
      "{1:2}",     "{\"a\" 1}", "'single'",   "1 x",        "   ",
      "{\"a\":1}{", "\x01",
  };
  for (const std::string& doc : bad) {
    JsonValue out;
    std::string error;
    EXPECT_FALSE(json_parse(doc, out, &error)) << "doc: " << doc;
    EXPECT_NE(error.find("offset"), std::string::npos)
        << "error lacks byte offset for doc: " << doc << " (" << error << ")";
  }
}

TEST(JsonGrammar, TruncatedDocumentsReject) {
  const std::string whole =
      "{\"runs\":[{\"label\":\"udp_25mph\",\"wall_ms\":120.5,\"ok\":true}]}";
  JsonValue out;
  ASSERT_TRUE(json_parse(whole, out, nullptr));
  // Every proper prefix must fail cleanly — none may crash or accept.
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(json_parse(whole.substr(0, cut), v, &error))
        << "prefix length " << cut;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonGrammar, HostileNestingIsDepthBoundedNotStackBound) {
  // Far beyond the parser's depth cap; must return "nesting too deep"
  // without touching the process stack proportionally.
  const std::string deep_array(100000, '[');
  const std::string deep_object = [] {
    std::string s;
    for (int i = 0; i < 50000; ++i) s += "{\"a\":";
    return s;
  }();
  for (const std::string& doc : {deep_array, deep_object}) {
    JsonValue out;
    std::string error;
    EXPECT_FALSE(json_parse(doc, out, &error));
    EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
  }
  // At or under the cap, deep but legal nesting parses.
  std::string legal;
  for (int i = 0; i < 100; ++i) legal += '[';
  legal += '1';
  for (int i = 0; i < 100; ++i) legal += ']';
  JsonValue out;
  EXPECT_TRUE(json_parse(legal, out, nullptr));
}

TEST(JsonGrammar, StringEscapesAndSurrogates) {
  JsonValue out;
  std::string error;

  // Escapes decode; \u0000 yields a real embedded NUL.
  ASSERT_TRUE(json_parse("\"a\\n\\t\\\\\\\"\\u0041\\u0000b\"", out, nullptr));
  const std::string expect{"a\n\t\\\"A\0b", 8};
  EXPECT_EQ(out.as_string(), expect);

  // Surrogate pair -> 4-byte UTF-8.
  ASSERT_TRUE(json_parse("\"\\ud83d\\ude00\"", out, nullptr));
  EXPECT_EQ(out.as_string(), "\xF0\x9F\x98\x80");

  // Lone or malformed surrogates reject.
  for (const char* doc : {"\"\\ud800\"", "\"\\udc00\"", "\"\\ud800\\u0041\"",
                          "\"\\ud800\\udb00\"", "\"\\uZZZZ\"", "\"\\u12\"",
                          "\"\\x41\"", "\"a\x01b\""}) {
    EXPECT_FALSE(json_parse(doc, out, &error)) << doc;
  }
}

TEST(JsonGrammar, OverlongInputsParseWithoutPathology) {
  // A large flat document exercises the allocation paths, not the stack.
  std::string doc = "[";
  for (int i = 0; i < 50000; ++i) {
    if (i) doc += ',';
    doc += std::to_string(i);
  }
  doc += ']';
  JsonValue out;
  ASSERT_TRUE(json_parse(doc, out, nullptr));
  ASSERT_EQ(out.as_array().size(), 50000u);
  EXPECT_EQ(out.as_array()[49999].as_number(), 49999.0);

  // A single long string value.
  const std::string big(1 << 20, 'x');
  ASSERT_TRUE(json_parse("\"" + big + "\"", out, nullptr));
  EXPECT_EQ(out.as_string().size(), big.size());
}

TEST(JsonGrammar, WriterOutputRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "fig13_speed_sweep");
  w.field("jobs", 8);
  w.field("wall_ms", 6221.75);
  w.field("ok", true);
  w.key("tags").begin_array();
  w.value("quoted \"inner\"").value("line\nbreak").value("unicode \u00e9");
  w.end_array();
  w.key("nested").begin_object();
  w.field("depth", 2).key("null_member").null();
  w.end_object();
  w.end_object();

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(json_parse(w.str(), parsed, &error)) << error;
  EXPECT_EQ(parsed.string_or("bench", ""), "fig13_speed_sweep");
  EXPECT_EQ(parsed.number_or("wall_ms", 0.0), 6221.75);
  ASSERT_NE(parsed.find("tags"), nullptr);
  EXPECT_EQ(parsed.find("tags")->as_array()[0].as_string(),
            "quoted \"inner\"");

  // parse(render(parse(doc))) == parse(doc): the canonical rendering is a
  // fixed point of the parser.
  JsonWriter w2;
  render(parsed, w2);
  JsonValue reparsed;
  ASSERT_TRUE(json_parse(w2.str(), reparsed, &error)) << error;
  EXPECT_TRUE(json_equal(parsed, reparsed));
}

// ---------------------------------------------------------------------------
// core::PolicySpec "name[:key=val,...]"
// ---------------------------------------------------------------------------

TEST(PolicySpecGrammar, KnownNamesRoundTrip) {
  for (const std::string& name : core::policy_names()) {
    core::PolicySpec spec;
    std::string err;
    ASSERT_TRUE(core::parse_policy_spec(name, spec, &err)) << err;
    EXPECT_EQ(spec.name, name);
    EXPECT_TRUE(spec.params.empty());
    // parse(to_string(x)) == x
    core::PolicySpec again;
    ASSERT_TRUE(core::parse_policy_spec(spec.to_string(), again, &err)) << err;
    EXPECT_EQ(again.name, spec.name);
    EXPECT_EQ(again.params, spec.params);
  }
}

TEST(PolicySpecGrammar, ParamsParseAndRoundTrip) {
  core::PolicySpec spec;
  std::string err;
  ASSERT_TRUE(core::parse_policy_spec(
      "predictive:horizon_ms=120,margin_db=1.5,alpha=0.25", spec, &err))
      << err;
  EXPECT_EQ(spec.name, "predictive");
  ASSERT_EQ(spec.params.size(), 3u);
  EXPECT_EQ(spec.param("horizon_ms", 0.0), 120.0);
  EXPECT_EQ(spec.param("margin_db", 0.0), 1.5);
  EXPECT_EQ(spec.param("alpha", 0.0), 0.25);
  EXPECT_TRUE(spec.has_param("alpha"));
  EXPECT_FALSE(spec.has_param("beta"));

  core::PolicySpec again;
  ASSERT_TRUE(core::parse_policy_spec(spec.to_string(), again, &err)) << err;
  EXPECT_EQ(again.name, spec.name);
  EXPECT_EQ(again.params, spec.params);
}

TEST(PolicySpecGrammar, MalformedSpecsRejectWithPreciseErrors) {
  struct Case {
    const char* text;
    const char* expect_in_error;
  };
  const std::vector<Case> cases = {
      {"", "unknown policy"},
      {"frobnicate", "unknown policy"},
      {":k=1", "unknown policy"},
      {"median_esnr:", "bad policy param"},
      {"median_esnr:=1", "bad policy param"},
      {"median_esnr:k", "bad policy param"},
      {"median_esnr:k=", "bad numeric value"},
      {"median_esnr:k=abc", "bad numeric value"},
      {"median_esnr:k=1,,j=2", "bad policy param"},
      {"bicast:k=1=2", "bad numeric value"},
      {"median_esnr:k=1,", "bad policy param"},
  };
  for (const Case& c : cases) {
    core::PolicySpec spec;
    std::string err;
    EXPECT_FALSE(core::parse_policy_spec(c.text, spec, &err))
        << "accepted: " << c.text;
    EXPECT_NE(err.find(c.expect_in_error), std::string::npos)
        << "spec '" << c.text << "' produced error: " << err;
  }
  // The unknown-name error teaches the caller the valid names.
  core::PolicySpec spec;
  std::string err;
  EXPECT_FALSE(core::parse_policy_spec("nope", spec, &err));
  for (const std::string& name : core::policy_names()) {
    EXPECT_NE(err.find(name), std::string::npos) << err;
  }
}

TEST(PolicySpecGrammar, OverlongInputsStayGraceful) {
  // A megabyte of garbage name: rejected, not crashed on.
  core::PolicySpec spec;
  std::string err;
  EXPECT_FALSE(core::parse_policy_spec(std::string(1 << 20, 'z'), spec, &err));

  // Thousands of parameters on a valid name: accepted, all retained.
  std::string text = "median_esnr:";
  for (int i = 0; i < 2000; ++i) {
    if (i) text += ',';
    text += "k" + std::to_string(i) + "=" + std::to_string(i);
  }
  ASSERT_TRUE(core::parse_policy_spec(text, spec, &err)) << err;
  EXPECT_EQ(spec.params.size(), 2000u);
  EXPECT_EQ(spec.param("k1999", -1.0), 1999.0);
}

// ---------------------------------------------------------------------------
// sim::FaultPlan "--faults" clause grammar
// ---------------------------------------------------------------------------

// Canonical spec rendering for round-trip checks; times are generated as
// whole microseconds so the us-suffixed rendering re-parses exactly.
std::string render_spec(const sim::FaultPlan& plan) {
  std::string out;
  for (const sim::FaultEvent& ev : plan.events) {
    if (!out.empty()) out += ';';
    out += sim::to_string(ev.kind);
    out += ":ap=" + std::to_string(ev.node);
    out += ",dst=" + std::to_string(ev.peer);
    out += ",at=" + std::to_string(ev.at.to_us()) + "us";
    out += ",for=" + std::to_string(ev.duration.to_us()) + "us";
    char buf[48];
    std::snprintf(buf, sizeof buf, ",rate=%.17g", ev.rate);
    out += buf;
    out += ",extra=" + std::to_string(ev.extra.to_us()) + "us";
  }
  return out;
}

TEST(FaultPlanGrammar, RandomPlansRoundTripThroughSpecGrammar) {
  Rng rng(0xFA17u);
  for (int trial = 0; trial < 50; ++trial) {
    sim::FaultPlan plan;
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      sim::FaultEvent ev;
      ev.kind = static_cast<sim::FaultKind>(
          rng.uniform_int(0, static_cast<std::int64_t>(sim::kFaultKindCount) - 1));
      ev.node = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
      ev.peer = static_cast<std::uint32_t>(rng.uniform_int(0, 64));
      ev.at = Time::us(static_cast<double>(rng.uniform_int(1, 30'000'000)));
      ev.duration = Time::us(static_cast<double>(rng.uniform_int(1, 5'000'000)));
      ev.rate = static_cast<double>(rng.uniform_int(1, 100)) / 100.0;
      ev.extra = Time::us(static_cast<double>(rng.uniform_int(1, 50'000)));
      plan.events.push_back(ev);
    }
    sim::FaultPlan reparsed;
    std::string error;
    ASSERT_TRUE(sim::FaultPlan::parse(render_spec(plan), reparsed, &error))
        << error;
    ASSERT_EQ(reparsed.events.size(), plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const sim::FaultEvent& a = plan.events[i];
      const sim::FaultEvent& b = reparsed.events[i];
      EXPECT_EQ(a.kind, b.kind) << "event " << i;
      EXPECT_EQ(a.node, b.node) << "event " << i;
      EXPECT_EQ(a.peer, b.peer) << "event " << i;
      EXPECT_EQ(a.at.to_ns(), b.at.to_ns()) << "event " << i;
      EXPECT_EQ(a.duration.to_ns(), b.duration.to_ns()) << "event " << i;
      EXPECT_EQ(a.rate, b.rate) << "event " << i;
      EXPECT_EQ(a.extra.to_ns(), b.extra.to_ns()) << "event " << i;
    }
  }
}

TEST(FaultPlanGrammar, EmptySpecsYieldEmptyPlans) {
  for (const char* spec : {"", ";", ";;;"}) {
    sim::FaultPlan plan;
    std::string error;
    EXPECT_TRUE(sim::FaultPlan::parse(spec, plan, &error)) << error;
    EXPECT_TRUE(plan.empty());
  }
}

TEST(FaultPlanGrammar, MalformedClausesRejectWithPreciseErrors) {
  struct Case {
    const char* spec;
    const char* expect_in_error;
  };
  const std::vector<Case> cases = {
      {"ap_crash", "missing ':'"},
      {"meteor_strike:ap=1,at=1s", "unknown fault kind"},
      {"ap_crash:ap=1", "missing at="},
      {"ap_crash:at=1s", "missing ap=/src="},
      {"ap_crash:ap=1,at=5", "bad time"},
      {"ap_crash:ap=1,at=5m", "bad time"},
      {"ap_crash:ap=1,at=1s,for=xyzms", "bad time"},
      {"ap_crash:ap=1,at=1s,vigor=3", "unknown key"},
      {"ap_crash:ap 1,at=1s", "missing '='"},
      // rate defaults to 1.0, so only an explicit zero hits the missing-
      // rate check.
      {"link_drop:src=1,at=1s,rate=0", "missing rate="},
      {"link_drop:src=1,at=1s,rate=1.5", "rate must be in [0, 1]"},
      {"link_drop:src=1,at=1s,rate=-0.1", "rate must be in [0, 1]"},
      {"link_latency:src=1,at=1s", "missing extra="},
      {"link_latency:src=1,at=1s,extra=3", "bad time"},
      // Adversarial-backhaul kinds (control-plane hardening).
      {"msg_dup:src=1,at=1s,rate=0", "missing rate="},
      {"msg_dup:src=1,at=1s", "missing rate="},
      {"msg_dup:src=1,at=1s,rate=1.01", "rate must be in [0, 1]"},
      {"msg_dup:src=1,at=1s,rate=-1", "rate must be in [0, 1]"},
      {"msg_reorder:src=1,at=1s,extra=5ms,rate=0", "missing rate="},
      {"msg_reorder:src=1,at=1s,extra=5ms", "missing rate="},
      {"msg_reorder:src=1,at=1s,rate=0.5", "missing extra= (jitter bound)"},
      {"msg_reorder:src=1,at=1s,rate=0.5,extra=0us",
       "missing extra= (jitter bound)"},
      {"msg_reorder:src=1,at=1s,rate=2,extra=5ms", "rate must be in [0, 1]"},
      {"msg_reorder:src=1,at=1s,rate=0.5,extra=7", "bad time"},
      {"ctrl_crash:ap=0", "missing at="},
      {"ctrl_crash:at=800", "bad time"},
      {"ctrl_crash:at=1s,for=2x", "bad time"},
      {"ctrl_crash:at=1s,blast=5", "unknown key"},
  };
  for (const Case& c : cases) {
    sim::FaultPlan plan;
    std::string error;
    EXPECT_FALSE(sim::FaultPlan::parse(c.spec, plan, &error))
        << "accepted: " << c.spec;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
        << "spec '" << c.spec << "' produced error: " << error;
  }
}

TEST(FaultPlanGrammar, ControlChaosKindsParseAndRoundTrip) {
  // ctrl_crash needs no node id (the controller is always node 0); the two
  // message-corruption kinds take the usual link syntax.
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse(
      "ctrl_crash:at=2s,for=300ms;"
      "msg_dup:src=1,dst=0,at=1s,for=2s,rate=0.3;"
      "msg_reorder:src=2,at=1500ms,for=1s,rate=0.4,extra=8ms",
      plan, &error))
      << error;
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, sim::FaultKind::kCtrlCrash);
  EXPECT_EQ(plan.events[1].kind, sim::FaultKind::kMsgDup);
  EXPECT_EQ(plan.events[1].rate, 0.3);
  EXPECT_EQ(plan.events[2].kind, sim::FaultKind::kMsgReorder);
  EXPECT_EQ(plan.events[2].extra.to_ns(), Time::ms(8).to_ns());
  // parse(render(x)) == x through the shared canonical renderer.
  sim::FaultPlan again;
  ASSERT_TRUE(sim::FaultPlan::parse(render_spec(plan), again, &error))
      << error;
  ASSERT_EQ(again.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(again.events[i].rate, plan.events[i].rate);
    EXPECT_EQ(again.events[i].extra.to_ns(), plan.events[i].extra.to_ns());
  }
  const std::string text = plan.describe();
  EXPECT_NE(text.find("ctrl_crash"), std::string::npos);
  EXPECT_NE(text.find("msg_dup"), std::string::npos);
  EXPECT_NE(text.find("msg_reorder"), std::string::npos);
}

TEST(FaultPlanGrammar, ControlChaosGeneratorHonoursKindMask) {
  using sim::FaultKind;
  const Time horizon = Time::sec(20);
  // Each single-kind mask yields only that kind; ctrl_crash plans pin the
  // victim to the controller.
  struct MaskCase {
    unsigned mask;
    FaultKind want;
  };
  for (const MaskCase& mc :
       {MaskCase{sim::FaultPlan::kChaosMsgDup, FaultKind::kMsgDup},
        MaskCase{sim::FaultPlan::kChaosMsgReorder, FaultKind::kMsgReorder},
        MaskCase{sim::FaultPlan::kChaosCtrlCrash, FaultKind::kCtrlCrash}}) {
    const sim::FaultPlan plan =
        sim::FaultPlan::control_chaos(1.0, horizon, 8, 7, mc.mask);
    ASSERT_FALSE(plan.empty());
    for (const sim::FaultEvent& ev : plan.events) {
      EXPECT_EQ(ev.kind, mc.want);
      if (ev.kind == FaultKind::kCtrlCrash) EXPECT_EQ(ev.node, 0u);
      EXPECT_GE(ev.at.to_ns(), (horizon * 0.10).to_ns());
      EXPECT_LE(ev.at.to_ns(), (horizon * 0.75).to_ns());
      EXPECT_GT(ev.duration.to_ns(), 0);
    }
  }
  // Same (seed, mask) reproduces the exact same schedule.
  const sim::FaultPlan a =
      sim::FaultPlan::control_chaos(1.0, horizon, 8, 11, sim::FaultPlan::kChaosControlAll);
  const sim::FaultPlan b =
      sim::FaultPlan::control_chaos(1.0, horizon, 8, 11, sim::FaultPlan::kChaosControlAll);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at.to_ns(), b.events[i].at.to_ns());
  }
}

TEST(FaultPlanGrammar, TruncatedSpecsNeverCrash) {
  const std::string whole =
      "ap_crash:ap=3,at=1s,for=500ms;link_drop:src=2,dst=0,at=2s,for=1s,"
      "rate=0.5;link_latency:src=4,at=3s,extra=10ms";
  sim::FaultPlan plan;
  ASSERT_TRUE(sim::FaultPlan::parse(whole, plan, nullptr));
  ASSERT_EQ(plan.events.size(), 3u);
  // Any prefix must either parse (clause boundary) or reject cleanly.
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    sim::FaultPlan p;
    std::string error;
    (void)sim::FaultPlan::parse(whole.substr(0, cut), p, &error);
  }
}

TEST(FaultPlanGrammar, OverlongSpecsStayGraceful) {
  // Thousands of clauses: accepted, all retained, linear behaviour.
  std::string spec;
  for (int i = 0; i < 4000; ++i) {
    if (i) spec += ';';
    spec += "csi_freeze:ap=" + std::to_string(1 + i % 16) + ",at=" +
            std::to_string(1 + i) + "ms,for=50ms";
  }
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse(spec, plan, &error)) << error;
  EXPECT_EQ(plan.events.size(), 4000u);

  // A megabyte of separator noise parses to an empty plan.
  sim::FaultPlan empty;
  EXPECT_TRUE(sim::FaultPlan::parse(std::string(1 << 20, ';'), empty, &error));
  EXPECT_TRUE(empty.empty());
}

TEST(FaultPlanGrammar, DescribeNamesEveryEvent) {
  sim::FaultPlan plan;
  ASSERT_TRUE(sim::FaultPlan::parse(
      "ap_crash:ap=3,at=1s,for=500ms;link_drop:src=2,at=2s,rate=0.5", plan,
      nullptr));
  const std::string text = plan.describe();
  EXPECT_NE(text.find("ap_crash"), std::string::npos);
  EXPECT_NE(text.find("link_drop"), std::string::npos);
  EXPECT_NE(text.find("rate=0.50"), std::string::npos);
  EXPECT_EQ(sim::FaultPlan{}.describe(), "no faults");
}

}  // namespace
}  // namespace wgtt
