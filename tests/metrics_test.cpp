// Unit and property tests for util/metrics: histogram bucket accounting,
// quantile bracketing on synthetic distributions, merge equivalence, and the
// thread-scoped registry context the per-sim instrumentation hangs off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/rng.h"

namespace wgtt::metrics {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge basics
// ---------------------------------------------------------------------------

TEST(CounterTest, Accumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, SaturatesAtUint64MaxInsteadOfWrapping) {
  // Soak horizons must never make a counter appear to decrease: the health
  // engine's monotone watchdog treats a decrease as a hard violation.
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  Counter c;
  c.add(kMax - 5);
  EXPECT_EQ(c.value(), kMax - 5);
  c.add(10);  // would wrap to 4
  EXPECT_EQ(c.value(), kMax);
  c.add(kMax);  // pinned once saturated
  EXPECT_EQ(c.value(), kMax);
  c.add();
  EXPECT_EQ(c.value(), kMax);
}

TEST(HistogramTest, CountSaturatesUnderMergeDoubling) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  Histogram a(std::vector<double>{1.0});
  a.record(0.5);
  Histogram b(std::vector<double>{1.0});
  b.record(2.0);
  // Ping-pong merges grow the counts super-exponentially; well past 2^64
  // both total and per-bucket counts must pin at the max, not wrap.
  for (int i = 0; i < 200; ++i) {
    b.merge(a);
    a.merge(b);
  }
  EXPECT_EQ(a.count(), kMax);
  for (std::uint64_t bucket : a.buckets()) EXPECT_LE(bucket, kMax);
  // Derived views stay well-defined at saturation.
  const double q = a.quantile(0.5);
  EXPECT_GE(q, a.min());
  EXPECT_LE(q, a.max());
  a.record(0.25);  // further samples cannot decrease anything
  EXPECT_EQ(a.count(), kMax);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge g;
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  g.add(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  EXPECT_DOUBLE_EQ(g.max(), 12.0);
}

// ---------------------------------------------------------------------------
// Histogram properties
// ---------------------------------------------------------------------------

// The bucket index record() assigns to x (upper-inclusive bounds).
std::size_t bucket_of(const std::vector<double>& bounds, double x) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), x);
  return static_cast<std::size_t>(it - bounds.begin());
}

// Exact nearest-rank quantile of a sample set.
double exact_quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
  return samples[rank - 1];
}

// Synthetic distributions keyed by index so the property runs over several
// shapes: uniform, exponential (heavy overflow tail), gaussian, constant.
std::vector<double> synthetic_samples(int kind, std::size_t n,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case 0: s.push_back(rng.uniform(0.0, 100.0)); break;
      case 1: s.push_back(rng.exponential(12.0)); break;
      case 2: s.push_back(rng.gaussian(50.0, 15.0)); break;
      default: s.push_back(42.0); break;
    }
  }
  return s;
}

class HistogramProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramProperty, BucketCountsSumToSampleCount) {
  const auto samples = synthetic_samples(GetParam(), 1000, 7);
  Histogram h(linear_buckets(0.0, 10.0, 10));
  for (double x : samples) h.record(x);

  std::uint64_t total = 0;
  for (std::uint64_t b : h.buckets()) total += b;
  EXPECT_EQ(total, samples.size());
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.buckets().size(), h.bounds().size() + 1);
}

TEST_P(HistogramProperty, QuantileEstimateBracketsExactQuantile) {
  const auto samples = synthetic_samples(GetParam(), 500, 11);
  const auto bounds = linear_buckets(0.0, 10.0, 10);
  Histogram h(bounds);
  for (double x : samples) h.record(x);

  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double exact = exact_quantile(samples, q);
    const double est = h.quantile(q);
    // The estimate must land inside the bucket holding the exact sample
    // quantile (clamped to the observed extremes at the edges).
    const std::size_t b = bucket_of(bounds, exact);
    const double lo =
        std::max(b == 0 ? h.min() : bounds[b - 1], h.min());
    const double hi = std::min(b < bounds.size() ? bounds[b] : h.max(),
                               h.max());
    EXPECT_GE(est, lo - 1e-9) << "q=" << q << " exact=" << exact;
    EXPECT_LE(est, hi + 1e-9) << "q=" << q << " exact=" << exact;
  }
}

TEST_P(HistogramProperty, MergeEqualsRecordingUnion) {
  // Integer-valued samples so sums compare exactly in floating point.
  Rng rng(23 + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(static_cast<double>(rng.uniform_int(0, 120)));
  }
  for (int i = 0; i < 170; ++i) {
    b.push_back(static_cast<double>(rng.uniform_int(-5, 90)));
  }

  const auto bounds = exponential_buckets(1.0, 2.0, 7);
  Histogram ha(bounds), hb(bounds), hu(bounds);
  for (double x : a) { ha.record(x); hu.record(x); }
  for (double x : b) { hb.record(x); hu.record(x); }

  ha.merge(hb);
  EXPECT_EQ(ha.count(), hu.count());
  EXPECT_EQ(ha.buckets(), hu.buckets());
  EXPECT_DOUBLE_EQ(ha.sum(), hu.sum());
  EXPECT_DOUBLE_EQ(ha.min(), hu.min());
  EXPECT_DOUBLE_EQ(ha.max(), hu.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(ha.quantile(q), hu.quantile(q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramProperty,
                         ::testing::Values(0, 1, 2, 3));

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h(linear_buckets(0.0, 1.0, 4));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsExtremes) {
  const auto bounds = linear_buckets(0.0, 10.0, 4);
  Histogram empty(bounds), full(bounds);
  full.record(3.5);
  full.record(17.0);
  empty.merge(full);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 3.5);
  EXPECT_DOUBLE_EQ(empty.max(), 17.0);
}

TEST(HistogramTest, EmptyBoundsDegenerateToSingleOverflowBucket) {
  // Regression: empty bounds used to trip an assertion; they are now legal
  // and behave as one overflow bucket whose quantiles span [min, max].
  Histogram h({});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);  // empty histogram: defined, 0
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  h.record(10.0);
  h.record(30.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{2}));
  // All mass in one bucket: estimates interpolate over [min, max] and are
  // always bracketed by the observed extremes.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  for (double q : {0.0, 0.25, 0.5, 0.75}) {
    EXPECT_GE(h.quantile(q), 10.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 30.0) << "q=" << q;
  }
}

TEST(HistogramTest, SingleSampleQuantilesAreThatSample) {
  Histogram h(linear_buckets(0.0, 1.0, 4));
  h.record(2.5);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 2.5) << "q=" << q;
  }
}

TEST(HistogramTest, EmptyBoundsMergeAndSnapshot) {
  Histogram a({}), b({});
  a.record(1.0);
  b.record(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);

  MetricsRegistry reg;
  reg.histogram("edge", {}).record(2.0);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_TRUE(snap.histograms[0].bounds.empty());
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 2.0);
}

TEST(HistogramTest, UpperBoundIsInclusive) {
  Histogram h(linear_buckets(10.0, 10.0, 2));  // bounds 10, 20
  h.record(10.0);  // first bucket (x <= 10)
  h.record(10.1);  // second bucket
  h.record(25.0);  // overflow
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{1, 1, 1}));
}

// ---------------------------------------------------------------------------
// Registry + thread context
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a");
  c1.add(5);
  EXPECT_EQ(&reg.counter("a"), &c1);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  Histogram& h1 = reg.histogram("h", linear_buckets(0.0, 1.0, 2));
  // Later callers get the existing instrument regardless of bounds.
  EXPECT_EQ(&reg.histogram("h", linear_buckets(0.0, 5.0, 9)), &h1);
}

TEST(MetricsRegistryTest, SnapshotIsLexicographicallyOrdered) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.counter("mid").add(3);
  const Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].first, "alpha");
  EXPECT_EQ(s.counters[1].first, "mid");
  EXPECT_EQ(s.counters[2].first, "zeta");
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry reg;
  reg.counter("events").add(3);
  reg.gauge("depth").set(2.5);
  reg.histogram("lat", linear_buckets(1.0, 1.0, 2)).record(1.5);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\":{\"events\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"depth\":2.5}"), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1,0]"), std::string::npos);
}

TEST(MetricsRegistryTest, ScopedContextInstallsAndNests) {
  EXPECT_EQ(MetricsRegistry::current(), nullptr);
  MetricsRegistry outer, inner;
  {
    ScopedMetricsRegistry a(&outer);
    EXPECT_EQ(MetricsRegistry::current(), &outer);
    {
      ScopedMetricsRegistry b(&inner);
      EXPECT_EQ(MetricsRegistry::current(), &inner);
      // Null installer is a no-op, not an uninstall.
      ScopedMetricsRegistry c(nullptr);
      EXPECT_EQ(MetricsRegistry::current(), &inner);
    }
    EXPECT_EQ(MetricsRegistry::current(), &outer);
  }
  EXPECT_EQ(MetricsRegistry::current(), nullptr);
}

TEST(MetricsRegistryTest, ContextIsPerThread) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(&reg);
  MetricsRegistry* seen = &reg;
  std::thread([&seen]() { seen = MetricsRegistry::current(); }).join();
  EXPECT_EQ(seen, nullptr);  // other threads see no registry
  EXPECT_EQ(MetricsRegistry::current(), &reg);
}

}  // namespace
}  // namespace wgtt::metrics
