// Unit tests for the WGTT core: cyclic queue, de-duplication, association
// table, AP selector, queue stack, and the switching protocol wired over a
// real backhaul (stop/start/ack, retransmission, bootstrap).
#include <gtest/gtest.h>

#include <memory>

#include "core/ap_queue_stack.h"
#include "core/ap_selector.h"
#include "core/association.h"
#include "core/control_messages.h"
#include "core/cyclic_queue.h"
#include "core/dedup.h"
#include "core/wgtt_controller.h"
#include "net/backhaul.h"
#include "sim/scheduler.h"

namespace wgtt::core {
namespace {

net::PacketPtr mk(std::uint32_t index, Time created = Time::zero()) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.index = index;
  p.size_bytes = 1500;
  p.created = created;
  return net::make_packet(p);
}

// ---------------------------------------------------------------------------
// CyclicQueue
// ---------------------------------------------------------------------------

TEST(CyclicQueueTest, FifoByIndex) {
  CyclicQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) q.insert(i, mk(i));
  EXPECT_EQ(q.pending(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto item = q.pop();
    ASSERT_TRUE(item);
    EXPECT_EQ(item->first, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CyclicQueueTest, PopSkipsGaps) {
  CyclicQueue q;
  q.insert(0, mk(0));
  q.insert(5, mk(5));
  EXPECT_EQ(q.pop()->first, 0u);
  EXPECT_EQ(q.pop()->first, 5u);
  EXPECT_FALSE(q.pop());
}

TEST(CyclicQueueTest, SetHeadDiscardsDelivered) {
  CyclicQueue q;
  for (std::uint32_t i = 0; i < 20; ++i) q.insert(i, mk(i));
  q.set_head(10);  // start(c, k = 10)
  EXPECT_EQ(q.discarded(), 10u);
  EXPECT_EQ(q.pending(), 10u);
  EXPECT_EQ(q.pop()->first, 10u);
}

TEST(CyclicQueueTest, IndexWraparound) {
  CyclicQueue q;
  // Fill across the 4096 boundary.
  for (std::uint32_t i = 4090; i < 4096 + 6; ++i) {
    q.insert(i & (CyclicQueue::kSlots - 1), mk(i));
  }
  q.set_head(4090);
  std::uint32_t expect = 4090;
  while (auto item = q.pop()) {
    EXPECT_EQ(item->first, expect & (CyclicQueue::kSlots - 1));
    ++expect;
  }
  EXPECT_EQ(expect, 4096u + 6u);
}

TEST(CyclicQueueTest, OverwriteCountsOverrun) {
  CyclicQueue q;
  q.insert(7, mk(7));
  q.insert(7, mk(7));  // producer lapped the ring
  EXPECT_EQ(q.overruns(), 1u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(CyclicQueueTest, BackwardSetHeadIsReposition) {
  CyclicQueue q;
  q.insert(100, mk(100));
  q.set_head(101);
  EXPECT_TRUE(q.empty());
  q.set_head(50);  // "backwards": authoritative reset, nothing discarded
  q.insert(50, mk(50));
  EXPECT_EQ(q.pop()->first, 50u);
}

TEST(CyclicQueueTest, ClearResets) {
  CyclicQueue q;
  for (std::uint32_t i = 0; i < 5; ++i) q.insert(i, mk(i));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.head(), 0u);
}

// --- adversarial reordering -------------------------------------------------

TEST(CyclicQueueTest, ShuffledInsertsAcrossWrapPopInIndexOrder) {
  // The backhaul fans packets out per-AP with independent jitter, so an AP
  // can receive a window of indices in any order — including a window that
  // straddles the 4095 -> 0 boundary.  Pop order must follow the index ring
  // regardless of arrival order.
  CyclicQueue q;
  q.set_head(4093);
  const std::uint32_t arrival[] = {2, 4095, 0, 4093, 3, 1, 4094};
  for (std::uint32_t i : arrival) q.insert(i, mk(i));
  const std::uint32_t expect[] = {4093, 4094, 4095, 0, 1, 2, 3};
  for (std::uint32_t e : expect) {
    auto item = q.pop();
    ASSERT_TRUE(item);
    EXPECT_EQ(item->first, e);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CyclicQueueTest, DuplicateInsertAcrossWrapKeepsNewestCopy) {
  // A full index-space lap maps index i and i + 4096 to the same slot.  A
  // still-pending old-lap packet must be dropped as an overrun and the new
  // copy kept — delivering the stale one would hand TCP a 4096-packet-old
  // duplicate.
  CyclicQueue q;
  q.set_head(5);
  q.insert(5, mk(5, Time::ms(1)));
  q.insert((5 + CyclicQueue::kSlots) & (CyclicQueue::kSlots - 1),
           mk(5, Time::ms(900)));
  EXPECT_EQ(q.overruns(), 1u);
  EXPECT_EQ(q.pending(), 1u);
  auto item = q.pop();
  ASSERT_TRUE(item);
  EXPECT_EQ(item->first, 5u);
  EXPECT_EQ(item->second->created, Time::ms(900));  // the new-lap copy
}

TEST(CyclicQueueTest, SetHeadAcrossWrapDiscardsOnlyPassedSlots) {
  // start(c, k) where the discarded range [old_head, k) wraps through 0.
  CyclicQueue q;
  q.set_head(4090);
  for (std::uint32_t i = 0; i < 12; ++i) {
    q.insert((4090 + i) & (CyclicQueue::kSlots - 1), mk(i));
  }
  q.set_head(4);  // forward distance 10: discard 4090..4095, 0..3
  EXPECT_EQ(q.discarded(), 10u);
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.pop()->first, 4u);
  EXPECT_EQ(q.pop()->first, 5u);
  EXPECT_FALSE(q.pop());
}

TEST(CyclicQueueTest, SetHeadPastEverythingLeavesConsistentEmptyQueue) {
  CyclicQueue q;
  for (std::uint32_t i = 0; i < 8; ++i) q.insert(i, mk(i));
  q.set_head(100);  // out-of-window k: beyond every pending index
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop());
  // The queue must remain usable at the new position.
  q.insert(100, mk(100));
  auto item = q.pop();
  ASSERT_TRUE(item);
  EXPECT_EQ(item->first, 100u);
}

// ---------------------------------------------------------------------------
// ApQueueStack (the Fig. 7 buffering stack)
// ---------------------------------------------------------------------------

class QueueStackWorld {
 public:
  QueueStackWorld()
      : channel(channel::RadioConfig{18.0, 20.0, 0.0, 20e6, 6.0, 2.462e9},
                channel::PathLossConfig{}, channel::ShadowingConfig{},
                channel::FadingConfig{}, Rng(3)),
        medium(sched, channel),
        ctx(sched, medium, channel, error_model, Rng(4)) {
    channel::ApSite site;
    site.id = 1;
    site.position = {0.0, 10.0, 5.0};
    site.boresight = channel::Vec3{0, -10, -3.5}.normalized();
    site.antenna = std::make_shared<channel::ParabolicAntenna>();
    channel.add_ap(site);
    channel.add_client(net::kClientBase,
                       std::make_shared<channel::StaticMobility>(
                           channel::Vec3{0, 0, 1.5}));
    mac::WifiDeviceConfig ap_cfg;
    ap_cfg.is_ap = true;
    ap_cfg.bssid = 1;
    ap = std::make_unique<mac::WifiDevice>(ctx, 1, ap_cfg);
    mac::WifiDeviceConfig cl_cfg;
    cl_cfg.bssid = 1;
    client = std::make_unique<mac::WifiDevice>(ctx, net::kClientBase, cl_cfg);
  }
  net::PacketPtr pkt(std::uint32_t index) {
    net::Packet p;
    p.type = net::PacketType::kData;
    p.dst = net::kClientBase;
    p.index = index;
    p.size_bytes = 1500;
    p.created = sched.now();
    return net::make_packet(p);
  }
  sim::Scheduler sched;
  phy::ErrorModel error_model;
  channel::ChannelModel channel;
  mac::Medium medium;
  mac::MacContext ctx;
  std::unique_ptr<mac::WifiDevice> ap;
  std::unique_ptr<mac::WifiDevice> client;
};

TEST(ApQueueStackTest, InactiveStackOnlyBuffers) {
  QueueStackWorld w;
  ApQueueStack stack(w.sched, *w.ap, net::kClientBase);
  for (std::uint32_t i = 0; i < 50; ++i) stack.on_downlink(i, w.pkt(i));
  EXPECT_EQ(stack.cyclic_pending(), 50u);
  EXPECT_EQ(stack.nic_pending(), 0u);  // nothing reaches the NIC until active
  EXPECT_EQ(stack.next_nic_index(), 0u);
}

TEST(ApQueueStackTest, ActivationFeedsNicAndTransmits) {
  QueueStackWorld w;
  ApQueueStack stack(w.sched, *w.ap, net::kClientBase);
  int delivered = 0;
  w.client->on_deliver = [&](net::PacketPtr, const mac::RxMeta&) {
    ++delivered;
  };
  for (std::uint32_t i = 0; i < 50; ++i) stack.on_downlink(i, w.pkt(i));
  stack.activate(0);
  w.sched.run_until(Time::ms(300));
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(stack.total_backlog(), 0u);
}

TEST(ApQueueStackTest, DeactivateReturnsFirstUnsentIndex) {
  QueueStackWorld w;
  ApQueueStack stack(w.sched, *w.ap, net::kClientBase);
  for (std::uint32_t i = 0; i < 600; ++i) stack.on_downlink(i, w.pkt(i));
  stack.activate(0);
  w.sched.run_until(Time::ms(50));  // deliver some, backlog remains
  const std::size_t nic_before = stack.nic_pending();
  const std::uint32_t k = stack.deactivate();
  // k = everything already handed to the NIC (sent or in its queue).
  std::uint64_t acked = w.ap->stats().mpdus_delivered;
  EXPECT_GE(k, acked);
  EXPECT_GT(k, 0u);
  // Kernel stage flushed; NIC keeps its frames (paper: the 6 ms drain).
  EXPECT_EQ(stack.kernel_pending(), 0u);
  EXPECT_GT(stack.kernel_flushed(), 0u);
  EXPECT_EQ(stack.nic_pending(), nic_before);
  EXPECT_FALSE(stack.active());
}

TEST(ApQueueStackTest, HandoverResumesExactlyAtK) {
  QueueStackWorld w;
  // AP1's stack runs for a while; AP2's stack buffered everything too.
  ApQueueStack stack1(w.sched, *w.ap, net::kClientBase);
  for (std::uint32_t i = 0; i < 400; ++i) stack1.on_downlink(i, w.pkt(i));
  stack1.activate(0);
  w.sched.run_until(Time::ms(60));
  const std::uint32_t k = stack1.deactivate();
  // A fresh stack (the next AP) with the same packets picks up at k.
  ApQueueStack stack2(w.sched, *w.ap, net::kClientBase + 50);  // other peer
  for (std::uint32_t i = 0; i < 400; ++i) stack2.on_downlink(i, w.pkt(i));
  stack2.activate(k);
  EXPECT_EQ(stack2.cyclic().discarded(), k);  // 0..k-1 already delivered
  // Activation immediately feeds the NIC, so the next kernel->NIC index sits
  // exactly nic_pending() past k: no packet skipped, none duplicated.
  EXPECT_EQ(stack2.next_nic_index(),
            (k + stack2.nic_pending()) & (net::kIndexSpace - 1));
}

TEST(ApQueueStackTest, StalePacketsDroppedOnDequeue) {
  QueueStackWorld w;
  QueueStackConfig cfg;
  cfg.max_packet_age = Time::ms(100);
  ApQueueStack stack(w.sched, *w.ap, net::kClientBase, cfg);
  for (std::uint32_t i = 0; i < 20; ++i) stack.on_downlink(i, w.pkt(i));
  // Let the packets age out while inactive, then activate.
  w.sched.run_until(Time::ms(500));
  stack.activate(0);
  w.sched.run_until(Time::ms(600));
  EXPECT_EQ(stack.stale_dropped(), 20u);
}

// ---------------------------------------------------------------------------
// Deduplicator
// ---------------------------------------------------------------------------

TEST(DedupTest, DropsSecondCopy) {
  Deduplicator d;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = net::kClientBase;
  p.ip_id = 42;
  EXPECT_FALSE(d.is_duplicate(p, Time::ms(1)));
  EXPECT_TRUE(d.is_duplicate(p, Time::ms(2)));
  EXPECT_TRUE(d.is_duplicate(p, Time::ms(3)));
  EXPECT_EQ(d.duplicates_dropped(), 2u);
}

TEST(DedupTest, DistinctPacketsPass) {
  Deduplicator d;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = net::kClientBase;
  for (std::uint16_t id = 0; id < 100; ++id) {
    p.ip_id = id;
    EXPECT_FALSE(d.is_duplicate(p, Time::ms(id)));
  }
}

TEST(DedupTest, WindowExpiry) {
  Deduplicator d(Time::sec(1));
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = net::kClientBase;
  p.ip_id = 1;
  EXPECT_FALSE(d.is_duplicate(p, Time::sec(0)));
  EXPECT_FALSE(d.is_duplicate(p, Time::sec(5)));  // key aged out (IP-ID reuse)
}

TEST(DedupTest, NonIpExempt) {
  // ARP-style packets carry no IP-ID and bypass de-duplication (§3.2.2).
  Deduplicator d;
  net::Packet p;
  p.type = net::PacketType::kMgmt;
  p.src = net::kClientBase;
  p.ip_id = 9;
  EXPECT_FALSE(d.is_duplicate(p, Time::ms(1)));
  EXPECT_FALSE(d.is_duplicate(p, Time::ms(2)));
}

// --- adversarial reordering -------------------------------------------------

namespace {
net::Packet uplink(net::NodeId src, std::uint16_t ip_id) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = src;
  p.ip_id = ip_id;
  return p;
}
}  // namespace

TEST(DedupTest, InterleavedCopiesFromThreeApsPassExactlyOnce) {
  // Three APs hear the same uplink burst and tunnel independent copies; the
  // backhaul then interleaves and reorders them.  Exactly one copy of each
  // IP-ID must pass, no matter the arrival order of the copies.
  Deduplicator d;
  std::vector<std::uint16_t> arrivals;
  for (int copy = 0; copy < 3; ++copy) {
    for (std::uint16_t id = 0; id < 50; ++id) arrivals.push_back(id);
  }
  // Deterministic shuffle: stride by a unit coprime to 150.
  std::size_t passed = 0;
  Time t = Time::zero();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const std::uint16_t id = arrivals[(i * 77) % arrivals.size()];
    t += Time::us(50);
    if (!d.is_duplicate(uplink(net::kClientBase, id), t)) ++passed;
  }
  EXPECT_EQ(passed, 50u);
  EXPECT_EQ(d.duplicates_dropped(), 100u);
}

TEST(DedupTest, LateCopiesAfterAPartitionHealsAreStillSuppressed) {
  // A partitioned AP buffers its tunnel traffic; when the backhaul heals,
  // stale copies of uplinks the controller forwarded long ago arrive in a
  // burst.  Copies inside the dedup window must still be suppressed; only a
  // copy older than the window slips through (the window is the documented
  // suppression bound, sized far under the IP-ID wrap period).
  Deduplicator d(Time::sec(2));
  // First copies arrive via a healthy AP at t = 0 .. 2 ms.
  for (std::uint16_t id = 0; id < 20; ++id) {
    EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, id),
                                Time::us(100 * id)));
  }
  // The partition heals 1.9 s later and the stale copies flood in; all of
  // them are still inside the window and every one is swallowed.
  for (std::uint16_t id = 0; id < 20; ++id) {
    EXPECT_TRUE(d.is_duplicate(uplink(net::kClientBase, id),
                               Time::ms(1900) + Time::us(10 * id)))
        << "late copy of IP-ID " << id << " leaked upstream";
  }
  EXPECT_EQ(d.duplicates_dropped(), 20u);
  // A straggler beyond the window reads as new: its key expired, and at
  // line rate the IP-ID would legitimately be reused by then.
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 0), Time::sec(3)));
}

TEST(DedupTest, IpIdWraparoundIsNotADuplicate) {
  // IP-ID is 16-bit and wraps; 65535 followed by 0 are distinct packets,
  // and a straggler copy of the pre-wrap packet is still caught.
  Deduplicator d;
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 65535), Time::ms(1)));
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 0), Time::ms(2)));
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 1), Time::ms(3)));
  EXPECT_TRUE(d.is_duplicate(uplink(net::kClientBase, 65535), Time::ms(4)));
  EXPECT_EQ(d.duplicates_dropped(), 1u);
}

TEST(DedupTest, OutOfWindowSequenceNumbersReadmitAfterExpiry) {
  // A key older than the window has been expired, so the same (src, IP-ID)
  // passes again — that is IP-ID reuse, not a duplicate.  Interleave other
  // traffic so expiry has to skip over still-hot keys correctly.
  Deduplicator d(Time::ms(100));
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 7), Time::ms(0)));
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 8), Time::ms(90)));
  // t=150: key 7 (age 150) is out-of-window, key 8 (age 60) is still hot.
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 7), Time::ms(150)));
  EXPECT_TRUE(d.is_duplicate(uplink(net::kClientBase, 8), Time::ms(150)));
  // The readmitted key 7 is hot again from t=150.
  EXPECT_TRUE(d.is_duplicate(uplink(net::kClientBase, 7), Time::ms(200)));
}

TEST(DedupTest, SameIpIdDifferentClientsAreDistinct) {
  // The paper's 48-bit key is (source address ++ IP-ID): two clients using
  // the same IP-ID must never shadow each other.
  Deduplicator d;
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase, 42), Time::ms(1)));
  EXPECT_FALSE(d.is_duplicate(uplink(net::kClientBase + 1, 42), Time::ms(2)));
  EXPECT_TRUE(d.is_duplicate(uplink(net::kClientBase, 42), Time::ms(3)));
  EXPECT_TRUE(d.is_duplicate(uplink(net::kClientBase + 1, 42), Time::ms(4)));
}

TEST(DedupTest, WindowedSizeStaysBounded) {
  // Sustained line-rate traffic must not grow the key set beyond the
  // window's worth of packets (the §3.2.3 memory argument).
  Deduplicator d(Time::ms(10));
  for (std::uint32_t i = 0; i < 5000; ++i) {
    d.is_duplicate(uplink(net::kClientBase, static_cast<std::uint16_t>(i)),
                   Time::us(i * 100));  // 10k pkt/s: window holds ~100 keys
  }
  EXPECT_LE(d.size(), 101u);
}

// ---------------------------------------------------------------------------
// AssociationTable
// ---------------------------------------------------------------------------

TEST(AssociationTest, AddFindRemove) {
  AssociationTable t;
  StaInfo info;
  info.client = net::kClientBase;
  info.authorized = true;
  info.associating_ap = 3;
  EXPECT_TRUE(t.add(info));
  EXPECT_FALSE(t.add(info));  // refresh, not new
  EXPECT_TRUE(t.known(net::kClientBase));
  EXPECT_TRUE(t.authorized(net::kClientBase));
  ASSERT_NE(t.find(net::kClientBase), nullptr);
  EXPECT_EQ(t.find(net::kClientBase)->associating_ap, 3u);
  t.remove(net::kClientBase);
  EXPECT_FALSE(t.known(net::kClientBase));
}

TEST(AssociationTest, ClientEnumeration) {
  AssociationTable t;
  for (net::NodeId c = net::kClientBase; c < net::kClientBase + 3; ++c) {
    StaInfo info;
    info.client = c;
    t.add(info);
  }
  EXPECT_EQ(t.clients().size(), 3u);
}

// ---------------------------------------------------------------------------
// MedianEsnrSelector
// ---------------------------------------------------------------------------

TEST(SelectorTest, MedianOfWindow) {
  MedianEsnrSelector sel(Time::ms(10), 2);
  sel.add_reading(1, Time::ms(1), 10.0);
  sel.add_reading(1, Time::ms(2), 30.0);
  sel.add_reading(1, Time::ms(3), 20.0);
  auto m = sel.median(1, Time::ms(5));
  ASSERT_TRUE(m);
  EXPECT_DOUBLE_EQ(*m, 20.0);
}

TEST(SelectorTest, MinReadingsGate) {
  MedianEsnrSelector sel(Time::ms(10), 2);
  sel.add_reading(1, Time::ms(1), 10.0);
  EXPECT_FALSE(sel.median(1, Time::ms(2)));
  EXPECT_EQ(sel.select(Time::ms(2)), 0u);
}

TEST(SelectorTest, WindowSlides) {
  MedianEsnrSelector sel(Time::ms(10), 2);
  sel.add_reading(1, Time::ms(1), 30.0);
  sel.add_reading(1, Time::ms(2), 30.0);
  sel.add_reading(1, Time::ms(14), 5.0);
  sel.add_reading(1, Time::ms(15), 5.0);
  sel.prune(Time::ms(16));
  // The 30 dB readings fell out of the 10 ms window.
  EXPECT_DOUBLE_EQ(*sel.median(1, Time::ms(16)), 5.0);
}

TEST(SelectorTest, PicksArgmaxMedian) {
  MedianEsnrSelector sel(Time::ms(10), 2);
  for (int i = 0; i < 4; ++i) {
    sel.add_reading(1, Time::ms(i), 10.0 + i);        // median ~11.5
    sel.add_reading(2, Time::ms(i), 18.0 - i);        // median ~16.5
    sel.add_reading(3, Time::ms(i), 5.0);
  }
  EXPECT_EQ(sel.select(Time::ms(5)), 2u);
}

TEST(SelectorTest, MedianRobustToSpike) {
  // One constructive-fade spike must not flip the selection — the reason
  // WGTT uses the median rather than the latest reading (§3.1.1).
  MedianEsnrSelector sel(Time::ms(10), 2);
  for (int i = 0; i < 5; ++i) sel.add_reading(1, Time::ms(i), 15.0);
  for (int i = 0; i < 4; ++i) sel.add_reading(2, Time::ms(i), 8.0);
  sel.add_reading(2, Time::ms(4), 40.0);  // spike
  EXPECT_EQ(sel.select(Time::ms(5)), 1u);
}

TEST(SelectorTest, ApsInRange) {
  MedianEsnrSelector sel(Time::ms(10), 2);
  sel.add_reading(1, Time::ms(1), 10.0);
  sel.add_reading(2, Time::ms(8), 10.0);
  auto in_range = sel.aps_in_range(Time::ms(13));
  // AP1's reading is 12 ms old (outside W); AP2's is 5 ms old.
  ASSERT_EQ(in_range.size(), 1u);
  EXPECT_EQ(in_range[0], 2u);
}

// ---------------------------------------------------------------------------
// Controller switch FSM over a real backhaul (without radios: we inject
// CSI reports and emulate the AP side's stop/start handling).
// ---------------------------------------------------------------------------

class SwitchFsmTest : public ::testing::Test {
 protected:
  SwitchFsmTest()
      : backhaul(sched, net::BackhaulConfig{}, Rng(1)),
        controller(sched, backhaul, {1, 2}, ControllerConfig{}) {}

  void attach_ap(net::NodeId id, bool respond_to_stop) {
    backhaul.attach(id, [this, id, respond_to_stop](
                            const net::TunneledPacket& f) {
      auto inner = net::decapsulate(f);
      if (inner->type == net::PacketType::kStop && respond_to_stop) {
        const auto* stop = net::payload_as<StopMsg>(*inner);
        ASSERT_NE(stop, nullptr);
        ++stops_seen;
        // Forward start to the next AP (we shortcut straight to the ack).
        net::Packet ack;
        ack.type = net::PacketType::kSwitchAck;
        ack.size_bytes = SwitchAckMsg::kWireBytes;
        ack.payload = SwitchAckMsg{stop->client, stop->next_ap,
                                   stop->switch_id};
        ack.src = stop->next_ap;
        ack.dst = net::kControllerId;
        backhaul.send(net::encapsulate(net::make_packet(std::move(ack)),
                                       stop->next_ap, net::kControllerId));
      } else if (inner->type == net::PacketType::kStop) {
        ++stops_seen;  // swallow: ack never comes
      }
    });
  }

  void join_client(net::NodeId ap) {
    StaInfo info;
    info.client = net::kClientBase;
    info.associating_ap = ap;
    net::Packet p;
    p.type = net::PacketType::kAssocSync;
    p.size_bytes = ClientJoinedMsg::kWireBytes;
    p.payload = ClientJoinedMsg{info};
    backhaul.send(net::encapsulate(net::make_packet(std::move(p)), ap,
                                   net::kControllerId));
  }

  void feed_csi(net::NodeId ap, double esnr_snr_db, int count) {
    for (int i = 0; i < count; ++i) {
      phy::Csi csi;
      for (auto& s : csi.subcarrier_snr_db) s = esnr_snr_db;
      net::Packet p;
      p.type = net::PacketType::kCsiReport;
      p.size_bytes = CsiReportMsg::kWireBytes;
      p.payload = CsiReportMsg{ap, net::kClientBase, csi};
      backhaul.send(net::encapsulate(net::make_packet(std::move(p)), ap,
                                     net::kControllerId));
    }
  }

  sim::Scheduler sched;
  net::Backhaul backhaul;
  WgttController controller;
  int stops_seen = 0;
};

TEST_F(SwitchFsmTest, BootstrapSetsActiveAp) {
  attach_ap(1, true);
  attach_ap(2, true);
  join_client(1);
  sched.run_until(Time::ms(10));
  EXPECT_EQ(controller.active_ap(net::kClientBase), 1u);
}

TEST_F(SwitchFsmTest, SwitchesToBetterAp) {
  attach_ap(1, true);
  attach_ap(2, true);
  join_client(1);
  sched.run_until(Time::ms(50));
  // AP2 reports much better CSI repeatedly.
  for (int burst = 0; burst < 10; ++burst) {
    sched.schedule(Time::ms(burst * 2), [this]() {
      feed_csi(1, 5.0, 2);
      feed_csi(2, 18.0, 2);
    });
  }
  sched.run_until(Time::ms(200));
  EXPECT_EQ(controller.active_ap(net::kClientBase), 2u);
  EXPECT_EQ(controller.stats().switches_completed, 1u);
  EXPECT_EQ(stops_seen, 1);
}

TEST_F(SwitchFsmTest, StopRetransmittedOnAckTimeout) {
  attach_ap(1, /*respond_to_stop=*/false);  // ack never arrives
  attach_ap(2, true);
  join_client(1);
  sched.run_until(Time::ms(50));
  for (int burst = 0; burst < 40; ++burst) {
    sched.schedule(Time::ms(burst * 2), [this]() {
      feed_csi(1, 5.0, 2);
      feed_csi(2, 18.0, 2);
    });
  }
  sched.run_until(Time::ms(200));
  // 30 ms ack timeout -> multiple stop retransmissions, switch still open.
  EXPECT_GT(controller.stats().stop_retransmissions, 1u);
  EXPECT_GE(stops_seen, 3);
  EXPECT_EQ(controller.stats().switches_completed, 0u);
  EXPECT_EQ(controller.active_ap(net::kClientBase), 1u);
}

TEST_F(SwitchFsmTest, HysteresisBlocksRapidSwitches) {
  ControllerConfig cfg;
  cfg.switch_hysteresis = Time::ms(500);
  WgttController slow(sched, backhaul, {1, 2}, cfg);
  // (The fixture controller also attached to the backhaul as the
  // controller id; detach by re-attaching ours last.)
  attach_ap(1, true);
  attach_ap(2, true);
  StaInfo info;
  info.client = net::kClientBase;
  info.associating_ap = 1;
  net::Packet p;
  p.type = net::PacketType::kAssocSync;
  p.size_bytes = ClientJoinedMsg::kWireBytes;
  p.payload = ClientJoinedMsg{info};
  backhaul.send(net::encapsulate(net::make_packet(std::move(p)), 1,
                                 net::kControllerId));
  for (int burst = 0; burst < 100; ++burst) {
    sched.schedule(Time::ms(burst * 2), [this]() {
      feed_csi(1, 5.0, 2);
      feed_csi(2, 18.0, 2);
    });
  }
  sched.run_until(Time::ms(400));
  // The bootstrap counts as the hysteresis anchor: no switch before 500 ms.
  EXPECT_EQ(slow.stats().switches_completed, 0u);
}

TEST_F(SwitchFsmTest, UplinkDedupAtController) {
  attach_ap(1, true);
  int delivered = 0;
  controller.on_uplink = [&](net::PacketPtr) { ++delivered; };
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = net::kClientBase;
  p.dst = net::kServerBase;
  p.ip_id = 77;
  p.size_bytes = 1500;
  auto pkt = net::make_packet(std::move(p));
  // Same packet tunneled by two APs (both heard it).
  backhaul.send(net::encapsulate(pkt, 1, net::kControllerId));
  backhaul.send(net::encapsulate(pkt, 2, net::kControllerId));
  sched.run_until(Time::ms(10));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(controller.stats().uplink_duplicates, 1u);
}

}  // namespace
}  // namespace wgtt::core
