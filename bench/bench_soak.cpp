// Soak run: hours of simulated shuttle service under periodic chaos, gated
// by the runtime health engine.
//
// Not a paper figure — a longevity gate.  Two TCP clients shuttle back and
// forth across the 8-AP deployment for --sim-minutes of simulated time while
// a low-intensity FaultPlan::chaos schedule crashes APs and degrades
// backhaul links throughout.  The interesting output is not goodput but the
// health stream: the per-window rollups in HEALTH_soak.jsonl must show flat
// resource trends (no RSS/backlog/ledger drift) and zero watchdog errors no
// matter how long the run is stretched.
//
// The health file is always written (the bench force-enables --health) and
// CI feeds it to `wgtt-report health --strict --baseline
// bench/baselines/soak.json`; regenerate the baseline with
// bench/refresh_baselines.sh after an intentional behaviour change.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "sim/fault_plan.h"
#include "util/units.h"

using namespace wgtt;

namespace {

// Roughly one fault every 20 simulated seconds: enough churn that every
// failover path runs hundreds of times in an hour without the network
// spending most of the run degraded.
constexpr double kChaosIntensity = 0.05;

double parse_sim_minutes(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sim-minutes=", 14) == 0)
      return std::atof(argv[i] + 14);
    if (std::strcmp(argv[i], "--sim-minutes") == 0 && i + 1 < argc)
      return std::atof(argv[i + 1]);
  }
  return 12.0;  // CI default: comfortably past the 10-minute gate floor
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const double sim_minutes = parse_sim_minutes(argc, argv);
  bench::header("Soak", "long-horizon shuttle run under chaos, health-gated");

  scenario::DriveScenarioConfig cfg;
  cfg.speed_mph = 25.0;
  cfg.seed = 42;
  cfg.num_clients = 2;
  cfg.shuttle = true;
  cfg.duration = Time::sec(60.0 * sim_minutes);
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.testbed.faults = sim::FaultPlan::chaos(
      kChaosIntensity, cfg.duration,
      static_cast<std::uint32_t>(cfg.testbed.ap_x.size()), cfg.seed);
  // Healthy steady state keeps 5-15k ledger instances in flight (fan-out
  // copies resident in the 8 cyclic rings dominate); a real leak grows past
  // any constant, so the ceiling just needs headroom over the plateau.
  cfg.testbed.health_max_in_flight = 30000;

  // The whole point of the bench is the health stream, so --health is on by
  // default; --health=PATH / --force still work as usual.
  args.health = true;

  std::vector<scenario::DriveScenarioConfig> configs{cfg};
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "soak");

  const scenario::SweepRunner runner(args.sweep);
  std::printf("running %.0f simulated minutes (%zu faults scheduled)...\n",
              sim_minutes, configs.front().testbed.faults.events.size());
  const scenario::SweepOutcome outcome = runner.run(configs);
  const scenario::SweepRun& run = outcome.runs.front();

  scenario::SweepReport report;
  report.bench_id = "soak";
  report.title = "long-horizon shuttle run under chaos, health-gated";
  report.note_outcome(outcome);
  report.runs.push_back(scenario::make_run_report("soak/25mph/chaos",
                                                  configs.front(), run.result,
                                                  run.wall_ms));
  report.summary.emplace_back("sim_minutes", sim_minutes);
  report.summary.emplace_back(
      "faults", static_cast<double>(configs.front().testbed.faults.events.size()));
  report.summary.emplace_back(
      "sim_speedup",
      run.wall_ms > 0.0 ? 60.0 * 1000.0 * sim_minutes / run.wall_ms : 0.0);

  std::printf("\n%-14s %-12s %-10s %-12s %-10s\n", "sim minutes", "goodput",
              "switches", "windows", "in-flight");
  std::printf("%-14.0f %-12.2f %-10zu %-12llu %-10lld\n", sim_minutes,
              run.result.mean_goodput_mbps(), run.result.switches.size(),
              static_cast<unsigned long long>(run.result.health_windows),
              static_cast<long long>(run.result.health_in_flight));

  bench::note(
      "gate on the health stream, not goodput: `wgtt-report health "
      "HEALTH_soak.jsonl --strict` must report flat drift slopes and zero "
      "watchdog errors however large --sim-minutes is.");
  bench::emit_report(report, args);
  return 0;
}
