// Paper Fig. 4 / §2: stock 802.11r in the vehicular picocell regime.
//
// Two APs 7.5 m apart, a constant-rate UDP stream, and a stock-802.11r
// client (5-second RSSI history before any roaming decision).  At 20 mph
// the handover fails outright — the client leaves AP1's radio range before
// it is allowed to decide; at 5 mph it succeeds but far later than it
// should.  We report the received-sequence trace landmarks and the
// accumulated channel-capacity loss (paper: 20.5 Mbit/s avg at 20 mph,
// 82.2 Mbit/s at 5 mph — note the paper's low-speed loss is *larger*
// because the client lingers in the dead zone longer in absolute terms).

#include <cstdio>

#include "bench_util.h"
#include "phy/error_model.h"
#include "phy/esnr.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

void run_case(double mph) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kStock80211r;
  cfg.traffic = scenario::TrafficType::kUdpDownlink;
  cfg.udp_offered_mbps = 20.0;
  cfg.speed_mph = mph;
  cfg.seed = 17;
  cfg.record_seq_trace = true;
  cfg.testbed.ap_x = {0.0, 7.5};
  auto r = scenario::run_drive(cfg);
  const auto& c = r.clients.front();

  std::printf("\n--- client at %.0f mph ---\n", mph);
  std::printf("successful handovers : %zu\n", c.handovers);
  std::printf("failed handovers     : %zu\n", c.failed_handovers);
  std::printf("UDP received         : %.2f Mbit/s (offered %.0f)\n",
              c.goodput_mbps, cfg.udp_offered_mbps);
  std::printf("UDP loss rate        : %.1f %%\n", c.udp_loss_rate * 100.0);
  if (!c.seq_trace.empty()) {
    std::printf("last packet received : t=%.2f s (seq %llu)\n",
                c.seq_trace.back().first.to_sec(),
                static_cast<unsigned long long>(c.seq_trace.back().second));
  }

  // Accumulated capacity loss: integral of (capacity of the optimal AP
  // minus achieved throughput), expressed as an average rate — the dashed
  // area in the paper's figure.
  phy::ErrorModel em;
  double capacity_integral_mbit = 0.0;
  const auto& tl = c.timeline;
  for (std::size_t i = 1; i < tl.size(); ++i) {
    const double dt = (tl[i].t - tl[i - 1].t).to_sec();
    if (!tl[i].in_coverage) continue;
    const auto& best = em.best_mcs_for(tl[i].optimal_esnr_db, 1460);
    // A-MPDU efficiency factor ~0.8, capped by the offered load.
    const double cap =
        std::min(best.rate_mbps_lgi * 0.8, cfg.udp_offered_mbps);
    capacity_integral_mbit += cap * dt;
  }
  const double achieved_mbit =
      c.goodput_mbps * r.measured_duration.to_sec();
  const double loss_mbit = capacity_integral_mbit - achieved_mbit;
  std::printf("accumulated capacity loss : %.1f Mbit over the transit "
              "(avg %.1f Mbit/s)\n",
              loss_mbit > 0 ? loss_mbit : 0.0,
              loss_mbit > 0 ? loss_mbit / r.measured_duration.to_sec() : 0.0);
}

}  // namespace

int main() {
  bench::header("Fig. 4",
                "stock 802.11r handover failure at driving speed (2 APs)");
  run_case(20.0);
  run_case(5.0);
  std::printf("\npaper: at 20 mph the handover fails (reassociation frames "
              "unanswered);\n       at 5 mph it succeeds but late, after the "
              "link already degraded.\n");
  return 0;
}
