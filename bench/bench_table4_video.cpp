// Paper Table 4 / §5.4: online HD video streaming — rebuffer ratio vs speed.
//
// VLC-style playback (1,500 ms pre-buffer) of a 720p stream over TCP while
// driving past the eight APs.  Paper: WGTT plays back with zero rebuffering
// at every speed; Enhanced 802.11r rebuffers 54-69 % of the transit.

#include <cstdio>
#include <memory>

#include "apps/video_stream.h"
#include "bench_util.h"
#include "scenario/testbed.h"

using namespace wgtt;

namespace {

double rebuffer_ratio(bool use_wgtt, double mph, std::uint64_t seed) {
  scenario::TestbedConfig tb;
  tb.seed = seed;
  scenario::Testbed bed(tb);
  std::unique_ptr<scenario::WgttNetwork> wgtt;
  std::unique_ptr<scenario::BaselineNetwork> baseline;
  net::NodeId client;
  if (use_wgtt) {
    wgtt = std::make_unique<scenario::WgttNetwork>(bed);
    client = wgtt->add_client(bed.drive_mobility(mph));
  } else {
    baseline = std::make_unique<scenario::BaselineNetwork>(bed);
    client = baseline->add_client(bed.drive_mobility(mph));
  }
  transport::IpIdAllocator ip_ids;
  apps::VideoStreamApp app(bed.sched(), ip_ids, transport::TcpConfig{},
                           apps::VideoStreamConfig{}, 100,
                           scenario::kServerId, client);
  if (use_wgtt) {
    wgtt->wire_tcp_downlink(app.connection());
  } else {
    baseline->wire_tcp_downlink(app.connection());
  }
  const Time start = Time::ms(500);
  bed.sched().schedule_at(start, [&app]() { app.start(); });
  const Time end = bed.transit_duration(mph) + start;
  bed.sched().run_until(end);
  return app.rebuffer_ratio(end - start);
}

}  // namespace

int main() {
  bench::header("Table 4", "video rebuffer ratio vs driving speed");

  std::printf("\n%-20s", "Client speed (mph)");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) std::printf("%8.0f", mph);
  std::printf("\n%-20s", "WGTT");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    std::printf("%8.2f", rebuffer_ratio(true, mph, 42));
    std::fflush(stdout);
  }
  std::printf("\n%-20s", "Enhanced 802.11r");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    std::printf("%8.2f", rebuffer_ratio(false, mph, 42));
    std::fflush(stdout);
  }
  std::printf("\n\npaper: WGTT 0 at all speeds; Enhanced 802.11r 0.69 at\n"
              "5 mph tapering to 0.54 at 20 mph (shorter transit).\n");
  return 0;
}
