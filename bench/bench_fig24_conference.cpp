// Paper Fig. 24 / §5.4: remote video conferencing over WGTT — CDF of the
// rendered frame rate at 5 and 15 mph, for a Skype-like fixed-resolution
// sender and a Hangouts-like resolution-adaptive sender.
//
// Paper: Skype reaches ~20 fps at the 85th percentile; Hangouts reaches
// ~56 fps because it trades resolution for frame rate.

#include <cstdio>
#include <memory>

#include "apps/conference.h"
#include "bench_util.h"
#include "scenario/testbed.h"

using namespace wgtt;

namespace {

SampleSet run_conference(bool adaptive, double mph, std::uint64_t seed) {
  scenario::TestbedConfig tb;
  tb.seed = seed;
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);
  const net::NodeId client = net.add_client(bed.drive_mobility(mph));

  transport::IpIdAllocator ip_ids;
  // Bidirectional call: downlink video to the car + uplink video from it.
  apps::ConferenceConfig down;
  down.flow_id = 100;
  down.src = scenario::kServerId;
  down.dst = client;
  down.adaptive = adaptive;
  down.frame_rate = adaptive ? 60.0 : 24.0;  // Hangouts favours fps
  apps::ConferenceApp down_app(bed.sched(), ip_ids, down);
  net.wire_conference_downlink(down_app, client);

  apps::ConferenceConfig up = down;
  up.flow_id = 101;
  up.src = client;
  up.dst = scenario::kServerId;
  apps::ConferenceApp up_app(bed.sched(), ip_ids, up);
  net.wire_conference_uplink(up_app, client);

  bed.sched().schedule_at(Time::ms(600), [&]() {
    down_app.start();
    up_app.start();
  });
  bed.sched().run_until(bed.transit_duration(mph) + Time::ms(600));
  return down_app.fps_samples();
}

void report(const char* name, bool adaptive, double mph) {
  SampleSet fps = run_conference(adaptive, mph, 42);
  std::printf("%-26s p15 %5.1f | p50 %5.1f | p85 %5.1f | max %5.1f  (n=%zu)\n",
              name, fps.percentile(0.15), fps.percentile(0.50),
              fps.percentile(0.85), fps.max(), fps.count());
  std::fflush(stdout);
}

}  // namespace

int main() {
  bench::header("Fig. 24", "video-conference frame rate CDF over WGTT");
  std::printf("\nrendered downlink fps during the transit:\n");
  report("Skype-like, 5 mph", false, 5.0);
  report("Skype-like, 15 mph", false, 15.0);
  report("Hangouts-like, 5 mph", true, 5.0);
  report("Hangouts-like, 15 mph", true, 15.0);
  std::printf("\npaper: ~20 fps at the 85th percentile for Skype at both\n"
              "speeds; ~56 fps for Hangouts (it lowers resolution to keep\n"
              "frame rate).\n");
  return 0;
}
