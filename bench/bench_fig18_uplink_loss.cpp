// Paper Fig. 18: uplink UDP packet loss for three simultaneous clients —
// multi-AP reception (WGTT: every AP forwards overheard packets, the
// controller de-duplicates) against single-AP reception (baseline).
//
// Claim: with uplink diversity the loss rate stays below ~0.02 throughout
// the transit; with a single uplink it swings abruptly to large values.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

void run_case(const char* name, scenario::SystemType sys) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = sys;
  cfg.traffic = scenario::TrafficType::kUdpUplink;
  cfg.num_clients = 3;
  cfg.pattern = scenario::MultiClientPattern::kFollowing;
  cfg.following_gap_m = 6.0;
  cfg.udp_offered_mbps = 4.0;
  cfg.speed_mph = 15.0;
  cfg.seed = 21;
  auto r = scenario::run_drive(cfg);

  std::printf("\n--- %s ---\n", name);
  for (std::size_t i = 0; i < r.clients.size(); ++i) {
    std::printf("client %zu: uplink loss %.3f  (received %.2f Mb/s of %.1f "
                "offered)\n",
                i + 1, r.clients[i].udp_loss_rate,
                r.clients[i].goodput_mbps, cfg.udp_offered_mbps);
  }
  if (sys == scenario::SystemType::kWgtt) {
    std::printf("duplicates removed by the controller: %llu\n",
                static_cast<unsigned long long>(r.uplink_duplicates_removed));
  }
}

}  // namespace

int main() {
  bench::header("Fig. 18", "uplink loss, 3 clients: multi-AP vs single-AP");
  run_case("WGTT (multi-AP reception + de-dup)", scenario::SystemType::kWgtt);
  run_case("Enhanced 802.11r (single uplink)",
           scenario::SystemType::kEnhanced80211r);
  std::printf("\npaper: WGTT's loss stays below ~0.02 for all three clients;\n"
              "the single-uplink baseline swings to 0.2-0.6 repeatedly.\n");
  return 0;
}
