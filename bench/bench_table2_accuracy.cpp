// Paper Table 2: switching accuracy — the fraction of time the handover
// algorithm uses the optimal AP (max instantaneous ESNR) — for TCP and UDP
// flows at 15 mph.
//
// Paper: WGTT 90.12 % (TCP) / 91.38 % (UDP); Enhanced 802.11r 20.24 % /
// 18.72 %.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

double accuracy(scenario::SystemType sys, scenario::TrafficType traffic) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = sys;
  cfg.traffic = traffic;
  cfg.speed_mph = 15.0;
  cfg.udp_offered_mbps = 20.0;
  cfg.seed = 42;
  auto r = scenario::run_drive(cfg);
  return r.clients.front().switching_accuracy * 100.0;
}

}  // namespace

int main() {
  bench::header("Table 2", "switching accuracy at 15 mph (optimal-AP match)");

  std::printf("\n%-6s %-12s %-20s\n", "", "WGTT (%)", "Enhanced 802.11r (%)");
  std::printf("%-6s %-12.2f %-20.2f\n", "TCP",
              accuracy(scenario::SystemType::kWgtt,
                       scenario::TrafficType::kTcpDownlink),
              accuracy(scenario::SystemType::kEnhanced80211r,
                       scenario::TrafficType::kTcpDownlink));
  std::printf("%-6s %-12.2f %-20.2f\n", "UDP",
              accuracy(scenario::SystemType::kWgtt,
                       scenario::TrafficType::kUdpDownlink),
              accuracy(scenario::SystemType::kEnhanced80211r,
                       scenario::TrafficType::kUdpDownlink));
  std::printf("\npaper: WGTT 90.12 / 91.38; Enhanced 802.11r 20.24 / 18.72.\n");
  return 0;
}
