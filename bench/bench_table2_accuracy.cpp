// Paper Table 2: switching accuracy — the fraction of time the handover
// algorithm uses the optimal AP (max instantaneous ESNR) — for TCP and UDP
// flows at 15 mph.
//
// Paper: WGTT 90.12 % (TCP) / 91.38 % (UDP); Enhanced 802.11r 20.24 % /
// 18.72 %.  The four drives run in parallel via SweepRunner and the table
// is also emitted as BENCH_table2_accuracy.json.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Table 2", "switching accuracy at 15 mph (optimal-AP match)");

  const scenario::SystemType systems[] = {scenario::SystemType::kWgtt,
                                          scenario::SystemType::kEnhanced80211r};
  const scenario::TrafficType traffics[] = {
      scenario::TrafficType::kTcpDownlink, scenario::TrafficType::kUdpDownlink};

  std::vector<scenario::DriveScenarioConfig> configs;
  for (auto traffic : traffics) {
    for (auto sys : systems) {
      scenario::DriveScenarioConfig cfg;
      cfg.system = sys;
      cfg.traffic = traffic;
      cfg.speed_mph = 15.0;
      cfg.udp_offered_mbps = 20.0;
      cfg.seed = 42;
      configs.push_back(cfg);
    }
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "table2_accuracy");

  const scenario::SweepRunner runner(args.sweep);
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "table2_accuracy";
  report.title = "switching accuracy at 15 mph";
  report.note_outcome(outcome);
  auto accuracy = [&](std::size_t i) {
    report.runs.push_back(scenario::make_run_report(
        std::string(scenario::to_string(configs[i].traffic)) + "/" +
            scenario::to_string(configs[i].system),
        configs[i], outcome.runs[i].result, outcome.runs[i].wall_ms));
    return outcome.runs[i].result.clients.front().switching_accuracy * 100.0;
  };

  std::printf("\n%-6s %-12s %-20s\n", "", "WGTT (%)", "Enhanced 802.11r (%)");
  std::printf("%-6s %-12.2f %-20.2f\n", "TCP", accuracy(0), accuracy(1));
  std::printf("%-6s %-12.2f %-20.2f\n", "UDP", accuracy(2), accuracy(3));
  std::printf("\npaper: WGTT 90.12 / 91.38; Enhanced 802.11r 20.24 / 18.72.\n");
  bench::emit_report(report, args);
  return 0;
}
