// Paper Fig. 16: CDF of the link bit rate during a 15 mph transit, TCP and
// UDP, WGTT vs Enhanced 802.11r.
//
// Claim: WGTT's 90th percentile is ~70 Mb/s, roughly 30 Mb/s higher than
// the baseline's — better switching keeps the client near cell centres
// where high MCS works (and it is the switching, not rate adaptation, that
// delivers the gain).

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "util/stats.h"

using namespace wgtt;

namespace {

SampleSet collect(scenario::SystemType sys, scenario::TrafficType traffic) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = sys;
  cfg.traffic = traffic;
  cfg.speed_mph = 15.0;
  cfg.udp_offered_mbps = 30.0;  // keep the link busy so rates are sampled
  cfg.seed = 42;
  auto r = scenario::run_drive(cfg);
  SampleSet s;
  for (double v : r.clients.front().bitrate_samples) s.add(v);
  return s;
}

}  // namespace

int main() {
  bench::header("Fig. 16", "CDF of link bit rate (client at 15 mph)");

  struct Case {
    const char* name;
    scenario::SystemType sys;
    scenario::TrafficType traffic;
  };
  const Case cases[] = {
      {"TCP - WGTT", scenario::SystemType::kWgtt,
       scenario::TrafficType::kTcpDownlink},
      {"UDP - WGTT", scenario::SystemType::kWgtt,
       scenario::TrafficType::kUdpDownlink},
      {"TCP - Enhanced 802.11r", scenario::SystemType::kEnhanced80211r,
       scenario::TrafficType::kTcpDownlink},
      {"UDP - Enhanced 802.11r", scenario::SystemType::kEnhanced80211r,
       scenario::TrafficType::kUdpDownlink},
  };

  std::printf("\n%-26s %8s %8s %8s %8s %8s\n", "", "p10", "p25", "p50", "p75",
              "p90");
  for (const Case& c : cases) {
    SampleSet s = collect(c.sys, c.traffic);
    std::printf("%-26s %8.1f %8.1f %8.1f %8.1f %8.1f   (n=%zu)\n", c.name,
                s.percentile(0.10), s.percentile(0.25), s.percentile(0.50),
                s.percentile(0.75), s.percentile(0.90), s.count());
    std::fflush(stdout);
  }
  std::printf("\npaper: WGTT's 90%% quantile is ~70 Mb/s — ~30 Mb/s above\n"
              "Enhanced 802.11r's.\n");
  return 0;
}
