// Paper Fig. 16: CDF of the link bit rate during a 15 mph transit, TCP and
// UDP, WGTT vs Enhanced 802.11r.
//
// Claim: WGTT's 90th percentile is ~70 Mb/s, roughly 30 Mb/s higher than
// the baseline's — better switching keeps the client near cell centres
// where high MCS works (and it is the switching, not rate adaptation, that
// delivers the gain).
//
// The four transits run through SweepRunner and the bench leaves a
// BENCH_fig16_bitrate_cdf.json report behind (per-run bitrate percentiles
// in "extra"), so wgtt-report can inspect and diff it.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "util/stats.h"

using namespace wgtt;

namespace {

struct Case {
  const char* name;
  const char* label;
  scenario::SystemType sys;
  scenario::TrafficType traffic;
};

constexpr Case kCases[] = {
    {"TCP - WGTT", "tcp/wgtt", scenario::SystemType::kWgtt,
     scenario::TrafficType::kTcpDownlink},
    {"UDP - WGTT", "udp/wgtt", scenario::SystemType::kWgtt,
     scenario::TrafficType::kUdpDownlink},
    {"TCP - Enhanced 802.11r", "tcp/80211r",
     scenario::SystemType::kEnhanced80211r,
     scenario::TrafficType::kTcpDownlink},
    {"UDP - Enhanced 802.11r", "udp/80211r",
     scenario::SystemType::kEnhanced80211r,
     scenario::TrafficType::kUdpDownlink},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 16", "CDF of link bit rate (client at 15 mph)");

  std::vector<scenario::DriveScenarioConfig> configs;
  for (const Case& c : kCases) {
    scenario::DriveScenarioConfig cfg;
    cfg.system = c.sys;
    cfg.traffic = c.traffic;
    cfg.speed_mph = 15.0;
    cfg.udp_offered_mbps = 30.0;  // keep the link busy so rates are sampled
    cfg.seed = 42;
    configs.push_back(cfg);
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "fig16_bitrate_cdf");

  const scenario::SweepRunner runner(args.sweep);
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "fig16_bitrate_cdf";
  report.title = "CDF of link bit rate (client at 15 mph)";
  report.note_outcome(outcome);

  std::printf("\n%-26s %8s %8s %8s %8s %8s\n", "", "p10", "p25", "p50", "p75",
              "p90");
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    const scenario::SweepRun& run = outcome.runs[i];
    SampleSet s;
    for (double v : run.result.clients.front().bitrate_samples) s.add(v);
    std::printf("%-26s %8.1f %8.1f %8.1f %8.1f %8.1f   (n=%zu)\n",
                kCases[i].name, s.percentile(0.10), s.percentile(0.25),
                s.percentile(0.50), s.percentile(0.75), s.percentile(0.90),
                s.count());
    scenario::RunReport r = scenario::make_run_report(
        kCases[i].label, configs[i], run.result, run.wall_ms);
    r.extra.emplace_back("bitrate_p10_mbps", s.percentile(0.10));
    r.extra.emplace_back("bitrate_p50_mbps", s.percentile(0.50));
    r.extra.emplace_back("bitrate_p90_mbps", s.percentile(0.90));
    r.extra.emplace_back("bitrate_samples", static_cast<double>(s.count()));
    report.runs.push_back(std::move(r));
  }
  std::printf("\npaper: WGTT's 90%% quantile is ~70 Mb/s — ~30 Mb/s above\n"
              "Enhanced 802.11r's.\n");
  bench::emit_report(report, args);
  return 0;
}
