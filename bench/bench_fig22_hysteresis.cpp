// Paper Fig. 22 / §5.3.3: impact of the AP-switching time hysteresis T.
//
// TCP at 15 mph with T = 40 / 80 / 120 ms.  Claim: throughput never drops
// to zero for any setting (switching still happens), but a smaller T tracks
// the fast-fading channel better and wins — throughput grows as T shrinks.
//
// All 15 drives (3 hysteresis settings x 5 seeds) run in one SweepRunner
// batch; the seed-42 run doubles as the representative timeline, so the
// bench no longer re-simulates it.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 22", "TCP throughput vs switching hysteresis T");

  constexpr double kHysteresisMs[] = {40.0, 80.0, 120.0};
  constexpr int kRuns = 5;

  std::vector<scenario::DriveScenarioConfig> configs;
  for (double t_ms : kHysteresisMs) {
    for (int s = 0; s < kRuns; ++s) {
      scenario::DriveScenarioConfig cfg;
      cfg.traffic = scenario::TrafficType::kTcpDownlink;
      cfg.speed_mph = 15.0;
      cfg.wgtt.controller.switch_hysteresis = Time::ms(t_ms);
      cfg.seed = 42 + static_cast<unsigned>(s);
      configs.push_back(cfg);
    }
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "fig22_hysteresis");

  const scenario::SweepRunner runner(args.sweep);
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "fig22_hysteresis";
  report.title = "TCP throughput vs switching hysteresis T";
  report.note_outcome(outcome);

  for (std::size_t h = 0; h < std::size(kHysteresisMs); ++h) {
    double goodput = 0.0;
    double accuracy = 0.0;
    std::size_t switches = 0;
    for (int s = 0; s < kRuns; ++s) {
      const std::size_t i = h * kRuns + static_cast<std::size_t>(s);
      const auto& r = outcome.runs[i].result;
      goodput += r.clients.front().goodput_mbps;
      accuracy += r.clients.front().switching_accuracy;
      switches += r.switches.size();
      char label[48];
      std::snprintf(label, sizeof label, "T=%.0fms/seed%llu",
                    kHysteresisMs[h],
                    static_cast<unsigned long long>(configs[i].seed));
      report.runs.push_back(scenario::make_run_report(
          label, configs[i], r, outcome.runs[i].wall_ms));
      report.runs.back().extra.emplace_back("hysteresis_ms", kHysteresisMs[h]);
    }
    std::printf("\n--- T = %.0f ms (avg of %d runs) ---\n", kHysteresisMs[h],
                kRuns);
    std::printf("goodput %.2f Mb/s, %.1f switches/run, accuracy %.1f%%\n",
                goodput / kRuns, static_cast<double>(switches) / kRuns,
                accuracy / kRuns * 100.0);
    // One representative timeline (the paper's time-series panel): the
    // seed-42 run, already in the batch.
    const auto& rep = outcome.runs[h * kRuns].result;
    for (const auto& [t, mbps] : rep.clients.front().throughput_bins) {
      std::printf("  t=%5.1fs %7.2f %s\n", t.to_sec(), mbps,
                  bench::bar(mbps, 25, 24).c_str());
    }
    std::fflush(stdout);
  }
  std::printf("\npaper: all three settings avoid zero-throughput periods;\n"
              "smaller hysteresis adapts faster and yields higher\n"
              "throughput (1.3 -> 6.4 Mb/s at the 2 s mark as T drops\n"
              "from 120 ms to 40 ms).\n");
  bench::emit_report(report, args);
  return 0;
}
