// Paper Fig. 22 / §5.3.3: impact of the AP-switching time hysteresis T.
//
// TCP at 15 mph with T = 40 / 80 / 120 ms.  Claim: throughput never drops
// to zero for any setting (switching still happens), but a smaller T tracks
// the fast-fading channel better and wins — throughput grows as T shrinks.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

int main() {
  bench::header("Fig. 22", "TCP throughput vs switching hysteresis T");

  for (double t_ms : {40.0, 80.0, 120.0}) {
    double goodput = 0.0;
    double accuracy = 0.0;
    std::size_t switches = 0;
    const int runs = 5;
    scenario::DriveScenarioConfig cfg;
    cfg.traffic = scenario::TrafficType::kTcpDownlink;
    cfg.speed_mph = 15.0;
    cfg.wgtt.controller.switch_hysteresis = Time::ms(t_ms);
    for (int s = 0; s < runs; ++s) {
      cfg.seed = 42 + static_cast<unsigned>(s);
      auto r = scenario::run_drive(cfg);
      goodput += r.clients.front().goodput_mbps;
      accuracy += r.clients.front().switching_accuracy;
      switches += r.switches.size();
    }
    std::printf("\n--- T = %.0f ms (avg of %d runs) ---\n", t_ms, runs);
    std::printf("goodput %.2f Mb/s, %.1f switches/run, accuracy %.1f%%\n",
                goodput / runs, static_cast<double>(switches) / runs,
                accuracy / runs * 100.0);
    // One representative timeline (the paper's time-series panel).
    cfg.seed = 42;
    auto r = scenario::run_drive(cfg);
    for (const auto& [t, mbps] : r.clients.front().throughput_bins) {
      std::printf("  t=%5.1fs %7.2f %s\n", t.to_sec(), mbps,
                  bench::bar(mbps, 25, 24).c_str());
    }
    std::fflush(stdout);
  }
  std::printf("\npaper: all three settings avoid zero-throughput periods;\n"
              "smaller hysteresis adapts faster and yields higher\n"
              "throughput (1.3 -> 6.4 Mb/s at the 2 s mark as T drops\n"
              "from 120 ms to 40 ms).\n");
  return 0;
}
