// Hot-path microbenchmarks.
//
// Times the primitives the fig13 acceleration campaign optimized — the
// fading response, the ESNR kernel, the full CSI/selection stack, A-MPDU
// assembly, packet allocation, and scheduler churn — each in isolation,
// and leaves a BENCH_hotpath.json behind in the same report schema the
// sweep benches use.  CI diffs it against bench/baselines/hotpath.json
// with a hard `--budget-ms` ceiling, so a reverted optimization (or an
// accidentally quadratic "improvement") fails the perf gate even though
// every correctness test still passes.
//
// Timing protocol: each kernel runs a fixed-iteration batch `reps` times
// and reports the MINIMUM batch wall time.  Best-of-N is deliberately the
// statistic of record: noise on a shared CI box only ever inflates a
// batch, so the minimum tracks the true cost of the code and the hard
// budget can sit close above it without flaking.
#include <algorithm>
#include <array>
#include <chrono>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "channel/antenna.h"
#include "channel/channel_model.h"
#include "channel/fading.h"
#include "channel/mobility.h"
#include "mac/airtime.h"
#include "mac/ampdu.h"
#include "net/packet.h"
#include "phy/esnr.h"
#include "phy/mcs.h"
#include "sim/scheduler.h"
#include "util/json.h"
#include "util/rng.h"

namespace wgtt::bench {
namespace {

// Defeats dead-code elimination; printed at the end so the compiler must
// materialize every kernel's result.
double g_sink = 0.0;

double run_batch_ms(const std::function<void()>& batch) {
  const auto t0 = std::chrono::steady_clock::now();
  batch();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Row {
  std::string label;
  std::size_t iters = 0;
  double wall_ms = 0.0;  // best-of-reps batch time
};

Row time_kernel(const std::string& label, std::size_t iters, int reps,
                const std::function<void()>& batch) {
  double best = run_batch_ms(batch);
  for (int r = 1; r < reps; ++r) best = std::min(best, run_batch_ms(batch));
  std::printf("  %-24s %9zu iters   %9.2f ms   %8.1f ns/iter\n", label.c_str(),
              iters, best, best * 1e6 / static_cast<double>(iters));
  std::fflush(stdout);
  return {label, iters, best};
}

// --- Kernels -------------------------------------------------------------

// Per-subcarrier fading response over the production HT20 grid: the
// twiddle-cached SoA sum-of-sinusoids path (campaign item 1).
Row bench_fading_response(int reps) {
  const channel::FadingConfig cfg;  // production street-canyon profile
  const channel::FadingProcess fp(cfg, Rng(42));
  const auto grid = channel::ht20_subcarrier_offsets_hz();
  std::vector<std::complex<double>> h(grid.size());
  const std::size_t iters = 80000;
  return time_kernel("fading/response", iters, reps, [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      fp.response(0.005 * static_cast<double>(i), grid, h);
      acc += h[0].real() + h[grid.size() - 1].imag();
    }
    g_sink += acc;
  });
}

// ESNR over a bare 56-subcarrier SNR array: the vectorized erfc/exp10
// kernel (the inner loop of every selection decision).
Row bench_esnr(int reps) {
  std::vector<std::array<double, phy::kNumSubcarriers>> spans(64);
  Rng rng(7);
  for (auto& s : spans)
    for (double& v : s) v = rng.uniform(-5.0, 35.0);
  const std::size_t iters = 100000;
  return time_kernel("phy/esnr", iters, reps, [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      const auto& s = spans[i % spans.size()];
      acc += phy::effective_snr_db(s, phy::Modulation::kQam16);
    }
    g_sink += acc;
  });
}

// Full selection-ESNR stack for a moving client — geometry, shadowing,
// fading refresh, ESNR — via the lazy-CSI entry point (campaign item 2).
// Time advances every query so the per-link memos cannot absorb the work.
Row bench_selection_stack(int reps) {
  channel::ChannelModel model({}, {}, {}, {}, Rng(3));
  for (int i = 0; i < 8; ++i) {
    channel::ApSite site;
    site.id = static_cast<net::NodeId>(i + 1);
    site.position = {30.0 * i, 0.0, 6.0};
    site.boresight = {0.0, 1.0, 0.0};
    site.antenna = std::make_shared<channel::OmniAntenna>(8.0);
    model.add_ap(site);
  }
  const net::NodeId client = 100;
  model.add_client(client, std::make_shared<channel::LinearMobility>(
                               channel::Vec3{0.0, 12.0, 1.5},
                               channel::Vec3{11.0, 0.0, 0.0}));
  const auto& aps = model.ap_ids();
  const std::size_t iters = 30000;
  return time_kernel("channel/selection_esnr", iters, reps, [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      const Time t = Time::us(static_cast<double>(i % 2000000) * 0.5);
      acc += model.downlink_selection_esnr_db(aps[i % aps.size()], client, t);
    }
    g_sink += acc;
  });
}

// A-MPDU assembly: refill a 64-deep per-peer FIFO and build the aggregate
// under the duration / frame-count / block-ACK-window caps.
Row bench_ampdu_build(int reps) {
  const mac::AirtimeCalculator airtime;
  const mac::AmpduAggregator agg(airtime);
  const phy::McsInfo mcs = phy::mcs_table()[5];
  std::vector<net::PacketPtr> pkts;
  for (int i = 0; i < 64; ++i) {
    net::Packet p;
    p.size_bytes = 1460;
    p.seq = static_cast<std::uint64_t>(i);
    pkts.push_back(net::make_packet(std::move(p)));
  }
  std::deque<mac::Mpdu> queue;
  const std::size_t iters = 200000;
  std::uint16_t seq = 0;
  return time_kernel("mac/ampdu_build", iters, reps, [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      if (queue.empty()) {
        for (const auto& pkt : pkts)
          queue.push_back({pkt, static_cast<std::uint16_t>(seq++ & 0x0FFF), 0});
      }
      const auto aggregate = agg.build(queue, mcs);
      acc += static_cast<double>(
          mac::AmpduAggregator::total_bytes(aggregate));
    }
    g_sink += acc;
  });
}

// Packet allocate/release churn through the per-sim freelist pool
// (campaign item 3): the lifecycle every forwarded frame pays.
Row bench_packet_churn(int reps) {
  net::PacketUidAllocator uids;
  net::ScopedPacketUidAllocator uid_scope(&uids);
  net::PacketPool pool;
  net::ScopedPacketPool pool_scope(&pool);
  const std::size_t iters = 2000000;
  Row row = time_kernel("net/packet_churn", iters, reps, [&] {
    double acc = 0.0;
    net::PacketPtr window[8];
    for (std::size_t i = 0; i < iters; ++i) {
      net::Packet p;
      p.size_bytes = 1460;
      p.seq = i;
      window[i % 8] = net::make_packet(std::move(p));
      acc += static_cast<double>(window[i % 8]->uid & 1);
    }
    g_sink += acc;
  });
  std::printf("  %-24s pool reused %zu / fresh %zu\n", "", pool.reused(),
              pool.fresh());
  return row;
}

// Scheduler churn: push a pseudo-random burst of timers, drain it, repeat
// — the event-queue cost under the MAC's batched delivery pattern
// (campaign item 4).
Row bench_scheduler_churn(int reps) {
  const std::size_t iters = 200000;  // total events pushed+popped per batch
  return time_kernel("sim/scheduler_churn", iters, reps, [&] {
    sim::Scheduler sched;
    Rng rng(11);
    std::uint64_t fired = 0;
    constexpr std::size_t kBurst = 1000;
    for (std::size_t done = 0; done < iters; done += kBurst) {
      for (std::size_t i = 0; i < kBurst; ++i) {
        sched.schedule(Time::us(rng.uniform(0.0, 500.0)), [&] { ++fired; });
      }
      sched.run();
    }
    g_sink += static_cast<double>(fired);
  });
}

// --- Report --------------------------------------------------------------

void write_report(const std::string& path, const std::vector<Row>& rows) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "hotpath");
  w.field("title", "hot-path microbenchmarks (best-of-reps batch times)");
  w.field("jobs", 1);
  double total = 0.0;
  for (const Row& r : rows) total += r.wall_ms;
  w.field("wall_ms", total);
  w.key("runs").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.field("label", r.label);
    w.field("policy", "microbench");
    w.field("wall_ms", r.wall_ms);
    w.field("goodput_mbps", 0.0);
    w.field("switches", 0);
    w.key("metrics").begin_object();
    w.field("iters", static_cast<double>(r.iters));
    w.field("ns_per_iter", r.wall_ms * 1e6 / static_cast<double>(r.iters));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!write_text_file(path, w.str())) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("report: %s (%zu rows, %.2f ms best-of total)\n", path.c_str(),
              rows.size(), total);
}

int run(int argc, char** argv) {
  bool force = false;
  int reps = 5;
  std::string out = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--force") {
      force = true;
    } else if ((arg == "-o" || arg == "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--reps N] [-o PATH] [--force]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  header("hotpath", "hot-path microbenchmarks");
  note("best-of-" + std::to_string(reps) +
       " batch times; CI gates rows with wgtt-report diff --budget-ms");
  const std::string path = claim_output_path(out, force, "report");

  std::vector<Row> rows;
  rows.push_back(bench_fading_response(reps));
  rows.push_back(bench_esnr(reps));
  rows.push_back(bench_selection_stack(reps));
  rows.push_back(bench_ampdu_build(reps));
  rows.push_back(bench_packet_churn(reps));
  rows.push_back(bench_scheduler_churn(reps));
  write_report(path, rows);
  std::printf("(sink %.3g)\n", g_sink);
  return 0;
}

}  // namespace
}  // namespace wgtt::bench

int main(int argc, char** argv) { return wgtt::bench::run(argc, argv); }
