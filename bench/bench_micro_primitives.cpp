// Micro-benchmarks of the library's hot primitives (google-benchmark):
// ESNR computation, fading evaluation, cyclic-queue operations, the uplink
// de-duplication hashset, Minstrel updates, and raw scheduler throughput.
#include <benchmark/benchmark.h>

#include "channel/fading.h"
#include "core/cyclic_queue.h"
#include "core/dedup.h"
#include "phy/esnr.h"
#include "phy/rate_control.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace {

using namespace wgtt;

void BM_EffectiveSnr(benchmark::State& state) {
  phy::Csi csi;
  Rng rng(1);
  for (auto& s : csi.subcarrier_snr_db) s = rng.uniform(0.0, 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phy::effective_snr_db(csi, phy::Modulation::kQam16));
  }
}
BENCHMARK(BM_EffectiveSnr);

void BM_FadingResponse(benchmark::State& state) {
  channel::FadingProcess fading{channel::FadingConfig{}, Rng{2}};
  std::array<std::complex<double>, channel::kNumSubcarriers> h;
  double x = 0.0;
  for (auto _ : state) {
    x += 0.01;
    fading.response(x, channel::ht20_subcarrier_offsets_hz(),
                    std::span<std::complex<double>>(h.data(), h.size()));
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_FadingResponse);

void BM_CyclicQueueInsertPop(benchmark::State& state) {
  core::CyclicQueue q;
  std::uint32_t idx = 0;
  net::Packet p;
  p.size_bytes = 1500;
  auto pkt = net::make_packet(p);
  for (auto _ : state) {
    q.insert(idx++ & 0xFFF, pkt);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_CyclicQueueInsertPop);

void BM_DedupLookup(benchmark::State& state) {
  core::Deduplicator dedup;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = net::kClientBase;
  std::uint16_t id = 0;
  Time now = Time::zero();
  for (auto _ : state) {
    p.ip_id = id++;
    now += Time::us(10);
    benchmark::DoNotOptimize(dedup.is_duplicate(p, now));
  }
}
BENCHMARK(BM_DedupLookup);

void BM_MinstrelSelectReport(benchmark::State& state) {
  phy::MinstrelRateControl rc;
  Time now = Time::zero();
  for (auto _ : state) {
    now += Time::ms(2);
    const phy::McsInfo& mcs = rc.select(now);
    rc.report(mcs, 32, 30, now);
    benchmark::DoNotOptimize(&mcs);
  }
}
BENCHMARK(BM_MinstrelSelectReport);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      sched.schedule(Time::us(i), []() {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.events_executed());
  }
}
BENCHMARK(BM_SchedulerThroughput)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
