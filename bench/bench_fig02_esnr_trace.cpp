// Paper Fig. 2: "Constructive and destructive wireless multipath fading as
// measured by Effective SNR conspire with vehicular-speed mobility to change
// the AP best able to deliver packets at millisecond timescales."
//
// Reproduces both panels from ONE telemetry table: a TelemetrySampler ticks
// every simulated millisecond and probes each AP's ESNR toward a client
// driving by at 25 mph.  Panel 1 prints the second-scale traces (every
// 100th row), panel 2 the millisecond-scale best-AP detail (rows 900-1259).
// The paper's claim to check: the best AP flips at millisecond granularity,
// and radio coverage between APs overlaps ~10 m.
//
// Pass --telemetry [PATH] to keep the full CSV (default
// TELEMETRY_fig02_esnr_trace.csv); --force overwrites an existing file.

#include <cstdio>

#include "bench_util.h"
#include "phy/esnr.h"
#include "scenario/telemetry.h"
#include "scenario/testbed.h"
#include "util/units.h"

using namespace wgtt;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 2", "ESNR vs time for 3 APs; best-AP flips at ms scale");

  scenario::TestbedConfig tb;
  tb.ap_x = {0.0, 7.5, 15.0};
  tb.seed = 3;
  tb.enable_telemetry = true;
  tb.telemetry_period = Time::ms(1);
  if (args.telemetry) {
    tb.telemetry_path = bench::claim_output_path(
        args.telemetry_path.empty() ? "TELEMETRY_fig02_esnr_trace.csv"
                                    : args.telemetry_path,
        args.force, "telemetry");
  }
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);
  const double mph = 25.0;
  const net::NodeId client =
      bed.add_client(bed.drive_mobility(mph, 5.0), scenario::kWgttBssid);

  auto esnr_at_now = [&bed, client](std::size_t a) {
    return phy::selection_esnr_db(
        bed.channel().downlink_csi(bed.ap_ids()[a], client, bed.sched().now()));
  };
  scenario::TelemetrySampler* tel = bed.telemetry();
  for (std::size_t a = 0; a < 3; ++a) {
    tel->add_column("esnr_ap" + std::to_string(a + 1), 3,
                    [esnr_at_now, a]() { return esnr_at_now(a); });
  }
  tel->add_column("best_ap", 0, [esnr_at_now]() {
    std::size_t best = 0;
    double best_e = esnr_at_now(0);
    for (std::size_t a = 1; a < 3; ++a) {
      if (const double e = esnr_at_now(a); e > best_e) {
        best_e = e;
        best = a;
      }
    }
    return static_cast<double>(best + 1);
  });
  tel->start();
  bed.sched().run_until(Time::ms(3001));

  const scenario::TelemetryTable& table = tel->table();
  const std::size_t col_e1 = table.column_index("esnr_ap1");
  const std::size_t col_best = table.column_index("best_ap");

  // Panel 1: ESNR every 100 ms over 3 s (every 100th telemetry row).
  std::printf("\nESNR (dB) at 25 mph, sampled every 100 ms:\n");
  std::printf("%-8s %-7s %-7s %-7s %s\n", "t(ms)", "AP1", "AP2", "AP3",
              "best");
  for (std::size_t i = 0; i < table.row_count(); i += 100) {
    const auto& row = table.rows[i];
    std::printf("%-8lld %-7.1f %-7.1f %-7.1f AP%d\n",
                static_cast<long long>(table.times[i].to_ms()), row[col_e1],
                row[col_e1 + 1], row[col_e1 + 2],
                static_cast<int>(row[col_best]));
  }

  // Panel 2 (right detail view): best AP per millisecond over a 360 ms
  // window in the overlap region, plus flip statistics.
  std::printf("\nbest AP per ms, 360 ms detail in the AP1/AP2 overlap:\n");
  int flips = 0;
  int prev = -1;
  std::string strip;
  for (std::size_t i = 900; i < 1260 && i < table.row_count(); ++i) {
    const int best = static_cast<int>(table.rows[i][col_best]);
    strip += static_cast<char>('0' + best);
    if (prev >= 0 && best != prev) ++flips;
    prev = best;
  }
  for (std::size_t i = 0; i < strip.size(); i += 60) {
    std::printf("  %s\n", strip.substr(i, 60).c_str());
  }
  std::printf("\nbest-AP flips in the 360 ms window : %d\n", flips);
  std::printf("mean time between flips            : %.1f ms\n",
              flips > 0 ? 360.0 / flips : 0.0);

  // Coverage overlap: span where two APs are both above a usable ESNR
  // (scanned past the sampled window, so computed directly).
  double overlap_start = 1e9;
  double overlap_end = -1e9;
  for (int ms = 0; ms <= 4000; ms += 5) {
    const Time t = Time::ms(ms);
    int usable = 0;
    for (int a = 0; a < 3; ++a) {
      if (phy::selection_esnr_db(bed.channel().downlink_csi(
              bed.ap_ids()[static_cast<std::size_t>(a)], client, t)) > 3.0) {
        ++usable;
      }
    }
    const double x = bed.channel().client_mobility(client).position(t).x;
    if (usable >= 2) {
      overlap_start = std::min(overlap_start, x);
      overlap_end = std::max(overlap_end, x);
    }
  }
  std::printf("multi-AP coverage overlap span     : %.1f m (paper: ~10 m)\n",
              overlap_end > overlap_start ? overlap_end - overlap_start : 0.0);
  std::printf("\npaper: best AP changes every few ms in overlap regions;\n"
              "       coverage between APs overlaps by around 10 m.\n");
  return 0;
}
