// Paper Fig. 2: "Constructive and destructive wireless multipath fading as
// measured by Effective SNR conspire with vehicular-speed mobility to change
// the AP best able to deliver packets at millisecond timescales."
//
// Reproduces both panels: the second-scale ESNR traces of three adjacent
// APs as a client drives by at 25 mph, and the millisecond-scale detail of
// which AP is best.  The paper's claim to check: the best AP flips at
// millisecond granularity, and radio coverage between APs overlaps ~10 m.

#include <cstdio>

#include "bench_util.h"
#include "phy/esnr.h"
#include "scenario/testbed.h"
#include "util/units.h"

using namespace wgtt;

int main() {
  bench::header("Fig. 2", "ESNR vs time for 3 APs; best-AP flips at ms scale");

  scenario::TestbedConfig tb;
  tb.ap_x = {0.0, 7.5, 15.0};
  tb.seed = 3;
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);
  const double mph = 25.0;
  const net::NodeId client =
      bed.add_client(bed.drive_mobility(mph, 5.0), scenario::kWgttBssid);

  // Panel 1: ESNR every 100 ms over 3 s.
  std::printf("\nESNR (dB) at 25 mph, sampled every 100 ms:\n");
  std::printf("%-8s %-7s %-7s %-7s %s\n", "t(ms)", "AP1", "AP2", "AP3",
              "best");
  for (int ms = 0; ms <= 3000; ms += 100) {
    const Time t = Time::ms(ms);
    double e[3];
    int best = 0;
    for (int a = 0; a < 3; ++a) {
      e[a] = phy::selection_esnr_db(
          bed.channel().downlink_csi(bed.ap_ids()[static_cast<std::size_t>(a)],
                                     client, t));
      if (e[a] > e[best]) best = a;
    }
    std::printf("%-8d %-7.1f %-7.1f %-7.1f AP%d\n", ms, e[0], e[1], e[2],
                best + 1);
  }

  // Panel 2 (right detail view): best AP per millisecond over a 360 ms
  // window in the overlap region, plus flip statistics.
  std::printf("\nbest AP per ms, 360 ms detail in the AP1/AP2 overlap:\n");
  int flips = 0;
  int prev = -1;
  std::string strip;
  for (int ms = 900; ms < 1260; ++ms) {
    const Time t = Time::ms(ms);
    double best_e = -1e9;
    int best = 0;
    for (int a = 0; a < 3; ++a) {
      const double e = phy::selection_esnr_db(bed.channel().downlink_csi(
          bed.ap_ids()[static_cast<std::size_t>(a)], client, t));
      if (e > best_e) {
        best_e = e;
        best = a;
      }
    }
    strip += static_cast<char>('1' + best);
    if (prev >= 0 && best != prev) ++flips;
    prev = best;
  }
  for (std::size_t i = 0; i < strip.size(); i += 60) {
    std::printf("  %s\n", strip.substr(i, 60).c_str());
  }
  std::printf("\nbest-AP flips in the 360 ms window : %d\n", flips);
  std::printf("mean time between flips            : %.1f ms\n",
              flips > 0 ? 360.0 / flips : 0.0);

  // Coverage overlap: span where two APs are both above a usable ESNR.
  double overlap_start = 1e9;
  double overlap_end = -1e9;
  for (int ms = 0; ms <= 4000; ms += 5) {
    const Time t = Time::ms(ms);
    int usable = 0;
    for (int a = 0; a < 3; ++a) {
      if (phy::selection_esnr_db(bed.channel().downlink_csi(
              bed.ap_ids()[static_cast<std::size_t>(a)], client, t)) > 3.0) {
        ++usable;
      }
    }
    const double x = bed.channel().client_mobility(client).position(t).x;
    if (usable >= 2) {
      overlap_start = std::min(overlap_start, x);
      overlap_end = std::max(overlap_end, x);
    }
  }
  std::printf("multi-AP coverage overlap span     : %.1f m (paper: ~10 m)\n",
              overlap_end > overlap_start ? overlap_end - overlap_start : 0.0);
  std::printf("\npaper: best AP changes every few ms in overlap regions;\n"
              "       coverage between APs overlaps by around 10 m.\n");
  return 0;
}
