// Paper Fig. 13: TCP and UDP throughput vs client speed (0-35 mph),
// WGTT vs Enhanced 802.11r.
//
// The headline result: 2.4-4.7x TCP and 2.6-4.0x UDP improvement at driving
// speeds, with WGTT staying roughly flat as speed increases while the
// baseline collapses.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

int main() {
  bench::header("Fig. 13", "TCP/UDP throughput vs driving speed");

  std::printf("\n%-7s %-12s %-12s %-7s %-12s %-12s %-7s\n", "speed",
              "TCP WGTT", "TCP 802.11r", "ratio", "UDP WGTT", "UDP 802.11r",
              "ratio");

  for (double mph : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 35.0}) {
    double tput[2][2];  // [tcp/udp][wgtt/baseline]
    for (int traffic = 0; traffic < 2; ++traffic) {
      for (int sys = 0; sys < 2; ++sys) {
        scenario::DriveScenarioConfig cfg;
        cfg.speed_mph = mph;
        cfg.seed = 42;
        cfg.traffic = traffic == 0 ? scenario::TrafficType::kTcpDownlink
                                   : scenario::TrafficType::kUdpDownlink;
        cfg.system = sys == 0 ? scenario::SystemType::kWgtt
                              : scenario::SystemType::kEnhanced80211r;
        tput[traffic][sys] = scenario::run_drive(cfg).mean_goodput_mbps();
      }
    }
    std::printf("%-5.0f   %-12.2f %-12.2f %-7.1f %-12.2f %-12.2f %-7.1f\n",
                mph, tput[0][0], tput[0][1],
                tput[0][1] > 0.01 ? tput[0][0] / tput[0][1] : 0.0, tput[1][0],
                tput[1][1],
                tput[1][1] > 0.01 ? tput[1][0] / tput[1][1] : 0.0);
    std::fflush(stdout);
  }
  std::printf("\npaper: WGTT averages 6.6 (TCP) / 8.7 (UDP) Mb/s across\n"
              "speeds; Enhanced 802.11r falls from 2.7/3.3 at 5 mph to\n"
              "0.8/1.9 at 35 mph — a 2.4-4.7x (TCP) and 2.6-4.0x (UDP) gap\n"
              "at driving speeds.\n");
  return 0;
}
