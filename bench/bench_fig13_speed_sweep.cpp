// Paper Fig. 13: TCP and UDP throughput vs client speed (0-35 mph),
// WGTT vs Enhanced 802.11r.
//
// The headline result: 2.4-4.7x TCP and 2.6-4.0x UDP improvement at driving
// speeds, with WGTT staying roughly flat as speed increases while the
// baseline collapses.
//
// The 28 simulations (7 speeds x 2 traffic types x 2 systems) run through
// SweepRunner on all cores; metrics are identical to the serial loop this
// bench used to be, and BENCH_fig13_speed_sweep.json records every run plus
// the parallel speedup achieved.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

constexpr double kSpeeds[] = {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 35.0};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 13", "TCP/UDP throughput vs driving speed");

  // Config order: (speed major, then traffic, then system) — the same
  // deterministic order the serial version ran, so run i is comparable
  // across serial and parallel executions.
  std::vector<scenario::DriveScenarioConfig> configs;
  for (double mph : kSpeeds) {
    for (int traffic = 0; traffic < 2; ++traffic) {
      for (int sys = 0; sys < 2; ++sys) {
        scenario::DriveScenarioConfig cfg;
        cfg.speed_mph = mph;
        cfg.seed = 42;
        cfg.traffic = traffic == 0 ? scenario::TrafficType::kTcpDownlink
                                   : scenario::TrafficType::kUdpDownlink;
        cfg.system = sys == 0 ? scenario::SystemType::kWgtt
                              : scenario::SystemType::kEnhanced80211r;
        configs.push_back(cfg);
      }
    }
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "fig13_speed_sweep");

  const scenario::SweepRunner runner(args.sweep);
  std::printf("running %zu drives on %zu threads...\n", configs.size(),
              runner.jobs());
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "fig13_speed_sweep";
  report.title = "TCP/UDP throughput vs driving speed";
  report.note_outcome(outcome);

  std::printf("\n%-7s %-12s %-12s %-7s %-12s %-12s %-7s\n", "speed",
              "TCP WGTT", "TCP 802.11r", "ratio", "UDP WGTT", "UDP 802.11r",
              "ratio");
  double serial_ms = 0.0;
  for (std::size_t s = 0; s < std::size(kSpeeds); ++s) {
    double tput[2][2];  // [tcp/udp][wgtt/baseline]
    for (int traffic = 0; traffic < 2; ++traffic) {
      for (int sys = 0; sys < 2; ++sys) {
        const std::size_t i = s * 4 + static_cast<std::size_t>(traffic) * 2 +
                              static_cast<std::size_t>(sys);
        const scenario::SweepRun& run = outcome.runs[i];
        tput[traffic][sys] = run.result.mean_goodput_mbps();
        serial_ms += run.wall_ms;
        char label[64];
        std::snprintf(label, sizeof label, "%s/%s/%.0fmph",
                      traffic == 0 ? "tcp" : "udp",
                      sys == 0 ? "wgtt" : "80211r", kSpeeds[s]);
        report.runs.push_back(scenario::make_run_report(
            label, configs[i], run.result, run.wall_ms));
      }
    }
    std::printf("%-5.0f   %-12.2f %-12.2f %-7.1f %-12.2f %-12.2f %-7.1f\n",
                kSpeeds[s], tput[0][0], tput[0][1],
                tput[0][1] > 0.01 ? tput[0][0] / tput[0][1] : 0.0, tput[1][0],
                tput[1][1],
                tput[1][1] > 0.01 ? tput[1][0] / tput[1][1] : 0.0);
  }
  report.summary.emplace_back("serial_wall_ms_estimate", serial_ms);
  report.summary.emplace_back(
      "parallel_speedup",
      outcome.wall_ms > 0.0 ? serial_ms / outcome.wall_ms : 0.0);

  std::printf("\npaper: WGTT averages 6.6 (TCP) / 8.7 (UDP) Mb/s across\n"
              "speeds; Enhanced 802.11r falls from 2.7/3.3 at 5 mph to\n"
              "0.8/1.9 at 35 mph — a 2.4-4.7x (TCP) and 2.6-4.0x (UDP) gap\n"
              "at driving speeds.\n");
  bench::emit_report(report, args);
  return 0;
}
