// Paper Table 3 / §5.3.2: link-layer ACK collision rate at the client.
//
// All WGTT APs are associated with the client, so several may respond to
// the same uplink frame.  The paper measures the resulting collision rate
// (upper-bounded by uplink retransmissions, RTS/CTS off) at 0.001-0.004 %:
// microsecond response jitter plus the power disparity from the parabolic
// antennas' side lobes mean the client almost always captures one response.
//
// We drive uplink traffic through the full system and report the fraction
// of response opportunities that ended in a collision at the client.

#include <cstdio>

#include "bench_util.h"
#include "scenario/testbed.h"
#include "transport/udp_flow.h"
#include "apps/bulk.h"

using namespace wgtt;

namespace {

double collision_rate_percent(double offered_mbps, std::uint64_t seed) {
  scenario::TestbedConfig tb;
  tb.seed = seed;
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);
  const net::NodeId client = net.add_client(bed.drive_mobility(15.0));

  transport::IpIdAllocator ip_ids;
  transport::UdpFlowConfig ucfg;
  ucfg.flow_id = 100;
  ucfg.src = client;
  ucfg.dst = scenario::kServerId;
  ucfg.offered_load_bps = offered_mbps * 1e6;
  apps::BulkUdpApp app(bed.sched(), ip_ids, ucfg);
  net.wire_udp_uplink(app.sender(), app.receiver(), client);
  bed.sched().schedule_at(Time::ms(500), [&app]() { app.start(); });
  bed.sched().run_until(bed.transit_duration(15.0));

  const auto& st = bed.client_device(client).stats();
  const std::uint64_t opportunities = st.aggregates_sent;
  if (opportunities == 0) return 0.0;
  return 100.0 * static_cast<double>(st.ack_collisions) /
         static_cast<double>(opportunities);
}

}  // namespace

int main() {
  bench::header("Table 3", "link-layer ACK collision rate at the client");

  std::printf("\n%-22s", "Data rate (Mb/s)");
  for (double mbps : {70.0, 80.0, 90.0}) std::printf("%10.0f", mbps);
  std::printf("\n%-22s", "Ack collision rate (%)");
  for (double mbps : {70.0, 80.0, 90.0}) {
    // Average over several seeds: collisions are rare events.
    double total = 0.0;
    const int runs = 3;
    for (int s = 0; s < runs; ++s) {
      total += collision_rate_percent(mbps, 100 + static_cast<unsigned>(s));
    }
    std::printf("%10.4f", total / runs);
    std::fflush(stdout);
  }
  std::printf("\n\npaper: 0.001 %% at 70 Mb/s rising to 0.004 %% at 90 Mb/s —\n"
              "rare enough to have no measurable throughput impact.\n"
              "note: our mechanistic response-contention model is an upper\n"
              "bound (the paper's is too, via uplink retransmissions); it\n"
              "lands 2 orders higher but supports the same conclusion — the\n"
              "collision rate is far too small to affect throughput.\n");
  return 0;
}
