// Paper Table 1: running time of the switching protocol vs offered load.
//
// The stop(c) -> start(c, k) -> ack round trip measured at the controller,
// for UDP offered loads of 50..90 Mbit/s.  Paper: mean 17-21 ms with 3-5 ms
// standard deviation, roughly independent of load (the cost is user-level
// control processing, not queue length).

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "util/stats.h"

using namespace wgtt;

int main() {
  bench::header("Table 1", "switching protocol execution time vs data rate");
  std::printf("\n%-18s", "Data rate (Mb/s)");
  for (double mbps : {50.0, 60.0, 70.0, 80.0, 90.0}) {
    std::printf("%8.0f", mbps);
  }
  std::printf("\n");

  std::vector<double> means;
  std::vector<double> stddevs;
  for (double mbps : {50.0, 60.0, 70.0, 80.0, 90.0}) {
    scenario::DriveScenarioConfig cfg;
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.udp_offered_mbps = mbps;
    cfg.speed_mph = 15.0;
    cfg.seed = 5;
    auto r = scenario::run_drive(cfg);
    SampleSet lat;
    for (double ms : r.switch_latencies_ms) lat.add(ms);
    means.push_back(lat.mean());
    stddevs.push_back(lat.stddev());
  }
  std::printf("%-18s", "Mean exec (ms)");
  for (double m : means) std::printf("%8.1f", m);
  std::printf("\n%-18s", "Stddev (ms)");
  for (double s : stddevs) std::printf("%8.1f", s);
  std::printf("\n\npaper: mean 17-21 ms, stddev 3-5 ms, flat across loads.\n");
  return 0;
}
