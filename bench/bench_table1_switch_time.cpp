// Paper Table 1: running time of the switching protocol vs offered load.
//
// The stop(c) -> start(c, k) -> ack round trip measured at the controller,
// for UDP offered loads of 50..90 Mbit/s.  Paper: mean 17-21 ms with 3-5 ms
// standard deviation, roughly independent of load (the cost is user-level
// control processing, not queue length).
//
// The five transits run through SweepRunner and the bench leaves a
// BENCH_table1_switch_time.json report behind (per-run switch-latency
// mean/stddev in "extra"), so wgtt-report can inspect and diff it.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "util/stats.h"

using namespace wgtt;

namespace {

constexpr double kLoadsMbps[] = {50.0, 60.0, 70.0, 80.0, 90.0};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Table 1", "switching protocol execution time vs data rate");

  std::vector<scenario::DriveScenarioConfig> configs;
  for (double mbps : kLoadsMbps) {
    scenario::DriveScenarioConfig cfg;
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.udp_offered_mbps = mbps;
    cfg.speed_mph = 15.0;
    cfg.seed = 5;
    configs.push_back(cfg);
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "table1_switch_time");

  const scenario::SweepRunner runner(args.sweep);
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "table1_switch_time";
  report.title = "switching protocol execution time vs data rate";
  report.note_outcome(outcome);

  std::printf("\n%-18s", "Data rate (Mb/s)");
  for (double mbps : kLoadsMbps) std::printf("%8.0f", mbps);
  std::printf("\n");

  std::vector<double> means;
  std::vector<double> stddevs;
  for (std::size_t i = 0; i < std::size(kLoadsMbps); ++i) {
    const scenario::SweepRun& run = outcome.runs[i];
    SampleSet lat;
    for (double ms : run.result.switch_latencies_ms) lat.add(ms);
    means.push_back(lat.mean());
    stddevs.push_back(lat.stddev());
    char label[32];
    std::snprintf(label, sizeof label, "udp/%.0fmbps", kLoadsMbps[i]);
    scenario::RunReport r = scenario::make_run_report(label, configs[i],
                                                      run.result, run.wall_ms);
    r.extra.emplace_back("switch_exec_mean_ms", lat.mean());
    r.extra.emplace_back("switch_exec_stddev_ms", lat.stddev());
    report.runs.push_back(std::move(r));
  }
  std::printf("%-18s", "Mean exec (ms)");
  for (double m : means) std::printf("%8.1f", m);
  std::printf("\n%-18s", "Stddev (ms)");
  for (double s : stddevs) std::printf("%8.1f", s);
  std::printf("\n\npaper: mean 17-21 ms, stddev 3-5 ms, flat across loads.\n");
  bench::emit_report(report, args);
  return 0;
}
