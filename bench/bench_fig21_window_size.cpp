// Paper Fig. 21 / §5.3.1: choosing the AP-selection window W.
//
// Emulation-based, exactly as the paper does it: record ESNR traces from
// drives at 15 mph, then replay them through the median-ESNR selector at
// different window sizes and compute the average channel-capacity loss
// versus an oracle that always uses the best AP.  Small windows make the
// median noisy (spurious switches, each costing the ~17 ms protocol
// execution); large windows lag the channel.  Paper: minimum at W = 10 ms.

// Trace recording dominates the runtime and each recording builds its own
// Testbed, so the 10 recordings run concurrently via scenario::parallel_for;
// the replay grid is cheap and stays serial.  Results land in
// BENCH_fig21_window_size.json.

#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/ap_selector.h"
#include "phy/error_model.h"
#include "phy/esnr.h"
#include "scenario/testbed.h"

using namespace wgtt;

namespace {

struct TraceSample {
  Time t;
  std::map<net::NodeId, double> downlink_esnr;  // ground truth per AP
  std::map<net::NodeId, double> uplink_esnr;    // what CSI reports would say
};

std::vector<TraceSample> record_trace(std::uint64_t seed,
                                      std::string trace_path = {}) {
  scenario::TestbedConfig tb;
  tb.seed = seed;
  tb.trace_path = std::move(trace_path);
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);
  const net::NodeId client =
      bed.add_client(bed.drive_mobility(15.0), scenario::kWgttBssid);

  std::vector<TraceSample> trace;
  const Time step = Time::ms(2);  // ~CSI report cadence under load
  const Time end = bed.transit_duration(15.0);
  for (Time t = Time::zero(); t < end; t += step) {
    TraceSample s;
    s.t = t;
    for (net::NodeId ap : bed.ap_ids()) {
      s.downlink_esnr[ap] =
          phy::selection_esnr_db(bed.channel().downlink_csi(ap, client, t));
      s.uplink_esnr[ap] =
          phy::selection_esnr_db(bed.channel().uplink_csi(ap, client, t));
    }
    trace.push_back(std::move(s));
  }
  return trace;
}

double capacity_mbps(const phy::ErrorModel& em, double esnr_db) {
  if (esnr_db < 1.0) return 0.0;
  return em.best_mcs_for(esnr_db, 1460).rate_mbps_lgi * 0.8;  // MAC efficiency
}

/// Replay one trace through the selector at window W; returns the average
/// capacity loss (Mbit/s) versus the oracle.  During a switch the *old* AP
/// keeps serving (§3.1.2: the NIC queue drains while the protocol runs), so
/// churn costs the difference between old and new, not an outage.
double replay(const std::vector<TraceSample>& trace, Time window) {
  core::MedianEsnrSelector selector(window, /*min_readings=*/2);
  phy::ErrorModel em;
  const Time hysteresis = Time::zero();  // the W-experiment isolates selection
  const Time switch_cost = Time::ms(17);  // protocol execution (Table 1)

  net::NodeId active = 0;
  net::NodeId previous = 0;
  Time last_switch = Time::zero() - Time::sec(1);
  Time switch_until = Time::zero();
  double loss_integral = 0.0;
  double covered = 0.0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceSample& s = trace[i];
    // Feed CSI readings: only APs that can actually decode the client's
    // uplink frame report.
    for (const auto& [ap, up] : s.uplink_esnr) {
      if (up > 2.0) selector.add_reading(ap, s.t, up);
    }
    selector.prune(s.t);

    const net::NodeId choice = selector.select(s.t);
    if (choice != 0 && choice != active &&
        s.t - last_switch >= hysteresis) {
      previous = active;
      active = choice;
      last_switch = s.t;
      switch_until = s.t + switch_cost;
    }

    // Oracle capacity vs achieved capacity at this instant.
    double best = 0.0;
    for (const auto& [ap, dn] : s.downlink_esnr) {
      best = std::max(best, capacity_mbps(em, dn));
    }
    if (best <= 0.0) continue;  // out of coverage: nobody can win
    double got = 0.0;
    const net::NodeId serving =
        (s.t < switch_until && previous != 0) ? previous : active;
    if (serving != 0) got = capacity_mbps(em, s.downlink_esnr.at(serving));
    loss_integral += best - got;
    covered += 1.0;
  }
  return covered > 0 ? loss_integral / covered : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 21", "capacity loss vs AP-selection window size W");

  const std::size_t jobs = scenario::SweepRunner::resolve_jobs(args.sweep.jobs);
  const auto start = std::chrono::steady_clock::now();

  // 10 recorded runs, as in the paper — each builds an independent testbed,
  // so they record in parallel.
  std::vector<std::vector<TraceSample>> traces(10);
  scenario::parallel_for(traces.size(), jobs, [&](std::size_t i) {
    traces[i] = record_trace(
        static_cast<std::uint64_t>(i) + 1,
        i == 0 && args.trace ? (args.trace_path.empty()
                                    ? "TRACE_fig21_window_size.json"
                                    : args.trace_path)
                             : std::string{});
  });

  scenario::SweepReport report;
  report.bench_id = "fig21_window_size";
  report.title = "capacity loss vs AP-selection window size W";
  report.jobs = jobs;

  std::printf("\n%-12s %s\n", "W (ms)", "avg capacity loss (Mbit/s)");
  double best_loss = 1e9;
  double best_w = 0.0;
  for (double w_ms : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0}) {
    double total = 0.0;
    for (const auto& trace : traces) total += replay(trace, Time::ms(w_ms));
    const double avg = total / static_cast<double>(traces.size());
    std::printf("%-12.0f %.2f %s\n", w_ms, avg,
                bench::bar(avg, 12.0, 30).c_str());
    char key[32];
    std::snprintf(key, sizeof key, "loss_mbps_w%.0fms", w_ms);
    report.summary.emplace_back(key, avg);
    if (avg < best_loss) {
      best_loss = avg;
      best_w = w_ms;
    }
  }
  report.summary.emplace_back("best_w_ms", best_w);
  report.summary.emplace_back("best_loss_mbps", best_loss);
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  std::printf("\nminimum capacity loss at W = %.0f ms\n", best_w);
  std::printf("paper: loss decreases down to W = 10 ms, then increases for\n"
              "larger windows; W = 10 ms is chosen.\n");
  bench::emit_report(report);
  return 0;
}
