// Handoff-policy tournament: every shipped policy under the fig13 speed
// sweep and the chaos sweep, in one report.
//
// Not a paper figure — the payoff of the HandoffPolicy seam.  Part A reruns
// the fig13 TCP/WGTT speed points (same seed/traffic/testbed, so the
// median_esnr rows must reproduce the committed fig13 baseline numbers
// exactly) once per policy, plus the Enhanced 802.11r reference rows through
// the same run_drive harness.  Part B stresses each policy with the chaos
// sweep's deterministic fault schedule at the highest speed.
//
// Every run records its controller decision log in memory; the bench
// verifies each WGTT run produced records naming its policy, and surfaces
// the duplicate-absorption cost of the overlap policies (make_before_break,
// bicast) via the client-side dedup counters.
//
// BENCH_policy_tournament.json is diffed against
// bench/baselines/tournament.json by the CI perf gate.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/handoff_policy.h"
#include "scenario/experiment.h"
#include "sim/fault_plan.h"
#include "util/units.h"

using namespace wgtt;

namespace {

constexpr const char* kPolicies[] = {"median_esnr", "predictive",
                                     "make_before_break", "bicast"};
constexpr double kSpeeds[] = {5.0, 15.0, 25.0, 35.0};  // fig13 subset
constexpr double kChaosSpeed = 35.0;                   // most switches
constexpr double kIntensities[] = {1.0, 2.0};          // faults per sim-sec

core::PolicySpec spec_for(const char* name) {
  core::PolicySpec spec;
  std::string err;
  if (!core::parse_policy_spec(name, spec, &err)) {
    std::fprintf(stderr, "error: tournament policy \"%s\": %s\n", name,
                 err.c_str());
    std::exit(2);
  }
  return spec;
}

scenario::DriveScenarioConfig tcp_drive(double mph) {
  scenario::DriveScenarioConfig cfg;
  cfg.speed_mph = mph;
  cfg.seed = 42;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.testbed.enable_decision_log = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Tournament", "handoff policies under speed + chaos sweeps");
  if (args.policy_set) {
    bench::note("--policy is ignored: this bench sweeps the policy axis.");
  }

  std::vector<scenario::DriveScenarioConfig> configs;
  std::vector<std::string> labels;

  // --- part A: fig13-style speed sweep, once per policy ------------------
  for (const char* pol : kPolicies) {
    const core::PolicySpec spec = spec_for(pol);
    for (double mph : kSpeeds) {
      scenario::DriveScenarioConfig cfg = tcp_drive(mph);
      cfg.wgtt.controller.policy = spec;
      configs.push_back(cfg);
      char label[64];
      std::snprintf(label, sizeof label, "speed/%s/%.0fmph", pol, mph);
      labels.emplace_back(label);
    }
  }
  // Enhanced 802.11r reference rows, through the same run_drive harness the
  // policies use (no separate bench_fig04-style loop).
  for (double mph : kSpeeds) {
    scenario::DriveScenarioConfig cfg = tcp_drive(mph);
    cfg.system = scenario::SystemType::kEnhanced80211r;
    configs.push_back(cfg);
    char label[64];
    std::snprintf(label, sizeof label, "speed/80211r/%.0fmph", mph);
    labels.emplace_back(label);
  }
  const std::size_t chaos_begin = configs.size();

  // --- part B: chaos sweep, once per policy ------------------------------
  for (const char* pol : kPolicies) {
    const core::PolicySpec spec = spec_for(pol);
    for (double intensity : kIntensities) {
      scenario::DriveScenarioConfig cfg = tcp_drive(kChaosSpeed);
      cfg.wgtt.controller.policy = spec;
      // Same fault horizon the chaos sweep uses: one transit of the road
      // (span plus the default 15 m lead-in/out) at this speed.
      const double road_m = 65.5 + 2.0 * 15.0;
      const Time horizon = Time::sec(road_m / mph_to_mps(kChaosSpeed));
      cfg.testbed.faults = sim::FaultPlan::chaos(
          intensity, horizon,
          static_cast<std::uint32_t>(cfg.testbed.ap_x.size()), cfg.seed);
      configs.push_back(cfg);
      char label[64];
      std::snprintf(label, sizeof label, "chaos/%s/%.0fmph/x%.1f", pol,
                    kChaosSpeed, intensity);
      labels.emplace_back(label);
    }
  }
  args.apply_outputs(configs.front(), "policy_tournament");

  const scenario::SweepRunner runner(args.sweep);
  std::printf("running %zu drives on %zu threads...\n", configs.size(),
              runner.jobs());
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "policy_tournament";
  report.title = "handoff policies under speed + chaos sweeps";
  report.note_outcome(outcome);

  double serial_ms = 0.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    serial_ms += outcome.runs[i].wall_ms;
    report.runs.push_back(scenario::make_run_report(
        labels[i], configs[i], outcome.runs[i].result,
        outcome.runs[i].wall_ms));
  }

  // Every WGTT run must have produced decision records naming its policy —
  // the audit trail that makes per-policy switch autopsies possible.
  std::size_t unattributed = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].system != scenario::SystemType::kWgtt) continue;
    const std::string needle =
        "\"policy\":\"" + configs[i].wgtt.controller.policy.to_string() + "\"";
    const scenario::DriveResult& r = outcome.runs[i].result;
    if (r.decision_records == 0 ||
        r.decision_jsonl.find(needle) == std::string::npos) {
      std::fprintf(stderr, "warning: run %s has no decision records for %s\n",
                   labels[i].c_str(), needle.c_str());
      ++unattributed;
    }
  }
  report.summary.emplace_back("unattributed_runs",
                              static_cast<double>(unattributed));

  // --- per-policy table ---------------------------------------------------
  std::printf("\n%-18s %14s %9s %10s %14s\n", "policy", "goodput Mb/s",
              "switches", "dup rm'd", "chaos Mb/s");
  const std::size_t n_pol = std::size(kPolicies);
  const std::size_t n_spd = std::size(kSpeeds);
  const std::size_t n_int = std::size(kIntensities);
  for (std::size_t p = 0; p <= n_pol; ++p) {
    const bool is_baseline = p == n_pol;
    const char* name = is_baseline ? "80211r" : kPolicies[p];
    double goodput = 0.0;
    double switches = 0.0;
    double dups = 0.0;
    for (std::size_t s = 0; s < n_spd; ++s) {
      const std::size_t i = p * n_spd + s;  // baseline block follows policies
      const scenario::DriveResult& r = outcome.runs[i].result;
      goodput += r.mean_goodput_mbps() / static_cast<double>(n_spd);
      switches += static_cast<double>(r.switches.size());
      dups += static_cast<double>(r.downlink_duplicates_removed);
    }
    double chaos = 0.0;
    if (!is_baseline) {
      for (std::size_t f = 0; f < n_int; ++f) {
        const std::size_t i = chaos_begin + p * n_int + f;
        chaos += outcome.runs[i].result.mean_goodput_mbps() /
                 static_cast<double>(n_int);
        dups += static_cast<double>(
            outcome.runs[i].result.downlink_duplicates_removed);
      }
    }
    if (is_baseline) {
      std::printf("%-18s %14.2f %9.0f %10.0f %14s\n", name, goodput, switches,
                  dups, "-");
    } else {
      std::printf("%-18s %14.2f %9.0f %10.0f %14.2f\n", name, goodput,
                  switches, dups, chaos);
    }
    const std::string key = name;
    report.summary.emplace_back(key + "_goodput_mbps", goodput);
    report.summary.emplace_back(key + "_switches", switches);
    report.summary.emplace_back(key + "_dup_removed", dups);
    if (!is_baseline) {
      report.summary.emplace_back(key + "_chaos_goodput_mbps", chaos);
    }
  }
  report.summary.emplace_back("serial_wall_ms_estimate", serial_ms);
  report.summary.emplace_back(
      "parallel_speedup",
      outcome.wall_ms > 0.0 ? serial_ms / outcome.wall_ms : 0.0);

  bench::note(
      "the median_esnr speed rows share seed/config with fig13's tcp/wgtt "
      "rows, so their goodput must match bench/baselines/fig13.json exactly; "
      "dup rm'd counts client-side duplicates absorbed by the overlap "
      "policies (zero for median_esnr/predictive stop-start switches).");
  bench::emit_report(report, args);
  return unattributed == 0 ? 0 : 1;
}
