// Large-area deployment scaling (paper §7: "we plan a large deployment and
// a large-scale measurement study, e.g., measuring the achievable network
// capacity").
//
// Sweeps the corridor length (8 -> 32 APs) and the client count, measuring
// per-client and aggregate UDP capacity.  Picocells re-use the spectrum
// along the road, so aggregate capacity should grow once clients are spread
// out beyond carrier-sense range of each other — the capacity argument that
// motivates the whole system (§1, Cooper's law).
//
// Both sweeps run as one SweepRunner batch (the corridor runs are the
// slowest in the suite, so parallelism pays off most here); results land in
// BENCH_scaleout.json.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

scenario::TestbedConfig corridor(std::size_t aps) {
  scenario::TestbedConfig tb;
  tb.ap_x.clear();
  for (std::size_t i = 0; i < aps; ++i) {
    tb.ap_x.push_back(static_cast<double>(i) * 7.5);
  }
  return tb;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Scale-out (§7)", "corridor length and client count sweep");

  constexpr std::size_t kCorridors[] = {8, 16, 24, 32};
  constexpr std::size_t kClientCounts[] = {1, 2, 3, 4};

  std::vector<scenario::DriveScenarioConfig> configs;
  for (std::size_t aps : kCorridors) {
    scenario::DriveScenarioConfig cfg;
    cfg.testbed = corridor(aps);
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.speed_mph = 15.0;
    cfg.seed = 42;
    configs.push_back(cfg);
  }
  for (std::size_t n : kClientCounts) {
    scenario::DriveScenarioConfig cfg;
    cfg.testbed = corridor(24);
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.udp_offered_mbps = 15.0;
    cfg.speed_mph = 15.0;
    cfg.num_clients = n;
    cfg.pattern = scenario::MultiClientPattern::kFollowing;
    cfg.following_gap_m = 45.0;  // ~6 cells apart: out of mutual CS range
    cfg.seed = 42;
    configs.push_back(cfg);
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "scaleout");

  const scenario::SweepRunner runner(args.sweep);
  std::printf("running %zu drives on %zu threads...\n", configs.size(),
              runner.jobs());
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "scaleout";
  report.title = "corridor length and client count sweep";
  report.note_outcome(outcome);

  std::printf("\n-- corridor length (1 client, UDP 15 Mb/s, 15 mph) --\n");
  std::printf("%-8s %10s %12s %12s\n", "APs", "Mb/s", "accuracy",
              "switches");
  for (std::size_t c = 0; c < std::size(kCorridors); ++c) {
    const auto& r = outcome.runs[c].result;
    std::printf("%-8zu %10.2f %11.1f%% %12zu\n", kCorridors[c],
                r.mean_goodput_mbps(),
                r.clients[0].switching_accuracy * 100.0, r.switches.size());
    report.runs.push_back(scenario::make_run_report(
        "corridor/" + std::to_string(kCorridors[c]) + "aps", configs[c], r,
        outcome.runs[c].wall_ms));
    report.runs.back().extra.emplace_back(
        "aps", static_cast<double>(kCorridors[c]));
  }

  std::printf("\n-- spatial reuse: clients spread along a 24-AP corridor --\n");
  std::printf("%-9s %14s %16s\n", "clients", "per-client Mb/s",
              "aggregate Mb/s");
  for (std::size_t c = 0; c < std::size(kClientCounts); ++c) {
    const std::size_t i = std::size(kCorridors) + c;
    const auto& r = outcome.runs[i].result;
    const double per_client = r.mean_goodput_mbps();
    std::printf("%-9zu %14.2f %16.2f\n", kClientCounts[c], per_client,
                per_client * static_cast<double>(kClientCounts[c]));
    report.runs.push_back(scenario::make_run_report(
        "reuse/" + std::to_string(kClientCounts[c]) + "clients", configs[i],
        r, outcome.runs[i].wall_ms));
    report.runs.back().extra.emplace_back(
        "aggregate_mbps",
        per_client * static_cast<double>(kClientCounts[c]));
  }

  std::printf("\nexpected: per-client throughput holds as the corridor grows\n"
              "(switching cost is local), and aggregate capacity scales\n"
              "nearly linearly with well-separated clients — the picocell\n"
              "spatial-reuse dividend the paper's introduction argues for.\n");
  bench::emit_report(report, args);
  return 0;
}
