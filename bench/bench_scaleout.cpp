// Large-area deployment scaling (paper §7: "we plan a large deployment and
// a large-scale measurement study, e.g., measuring the achievable network
// capacity").
//
// Sweeps the corridor length (8 -> 32 APs) and the client count, measuring
// per-client and aggregate UDP capacity.  Picocells re-use the spectrum
// along the road, so aggregate capacity should grow once clients are spread
// out beyond carrier-sense range of each other — the capacity argument that
// motivates the whole system (§1, Cooper's law).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

scenario::TestbedConfig corridor(std::size_t aps) {
  scenario::TestbedConfig tb;
  tb.ap_x.clear();
  for (std::size_t i = 0; i < aps; ++i) {
    tb.ap_x.push_back(static_cast<double>(i) * 7.5);
  }
  return tb;
}

}  // namespace

int main() {
  bench::header("Scale-out (§7)", "corridor length and client count sweep");

  std::printf("\n-- corridor length (1 client, UDP 15 Mb/s, 15 mph) --\n");
  std::printf("%-8s %10s %12s %12s\n", "APs", "Mb/s", "accuracy",
              "switches");
  for (std::size_t aps : {8u, 16u, 24u, 32u}) {
    scenario::DriveScenarioConfig cfg;
    cfg.testbed = corridor(aps);
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.speed_mph = 15.0;
    cfg.seed = 42;
    auto r = scenario::run_drive(cfg);
    std::printf("%-8zu %10.2f %11.1f%% %12zu\n", aps, r.mean_goodput_mbps(),
                r.clients[0].switching_accuracy * 100.0, r.switches.size());
    std::fflush(stdout);
  }

  std::printf("\n-- spatial reuse: clients spread along a 24-AP corridor --\n");
  std::printf("%-9s %14s %16s\n", "clients", "per-client Mb/s",
              "aggregate Mb/s");
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    scenario::DriveScenarioConfig cfg;
    cfg.testbed = corridor(24);
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.udp_offered_mbps = 15.0;
    cfg.speed_mph = 15.0;
    cfg.num_clients = n;
    cfg.pattern = scenario::MultiClientPattern::kFollowing;
    cfg.following_gap_m = 45.0;  // ~6 cells apart: out of mutual CS range
    cfg.seed = 42;
    auto r = scenario::run_drive(cfg);
    std::printf("%-9zu %14.2f %16.2f\n", n, r.mean_goodput_mbps(),
                r.mean_goodput_mbps() * static_cast<double>(n));
    std::fflush(stdout);
  }
  std::printf("\nexpected: per-client throughput holds as the corridor grows\n"
              "(switching cost is local), and aggregate capacity scales\n"
              "nearly linearly with well-separated clients — the picocell\n"
              "spatial-reuse dividend the paper's introduction argues for.\n");
  return 0;
}
