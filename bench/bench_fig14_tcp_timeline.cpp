// Paper Fig. 14: TCP throughput vs time, plus the AP-association timeline,
// for a single client at 15 mph — WGTT against Enhanced 802.11r.
//
// The timeline is read back from the run's TelemetrySampler (500 ms period):
// per-client goodput, selected AP, and TCP cwnd all come from one telemetry
// table rather than ad-hoc probes.
//
// Claims to check: WGTT switches APs ~5 times per second, holding a stable
// throughput through the whole transit; the baseline's throughput crashes
// to zero mid-transit and a TCP timeout follows.
//
// Pass --telemetry [PATH] to keep the WGTT run's full CSV (default
// TELEMETRY_fig14_tcp_timeline.csv); --force overwrites an existing file.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "scenario/telemetry.h"

using namespace wgtt;

namespace {

/// First column whose name ends with `suffix` (the client NodeId embedded in
/// the column prefix is assigned by the testbed, so benches match by suffix).
std::size_t col_by_suffix(const scenario::TelemetryTable& table,
                          const std::string& suffix) {
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    const std::string& name = table.columns[i].name;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return i;
    }
  }
  return scenario::TelemetryTable::npos;
}

void print_run(const char* name, scenario::SystemType sys,
               const bench::BenchArgs& args,
               const std::string& telemetry_path,
               const std::string& packets_path, std::uint32_t packet_sample) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = sys;
  args.apply_policy(cfg);
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  cfg.testbed.enable_telemetry = true;
  cfg.testbed.telemetry_period = Time::ms(500);
  cfg.testbed.telemetry_path = telemetry_path;
  cfg.testbed.packet_log_path = packets_path;
  cfg.testbed.packet_sample = packet_sample;
  auto r = scenario::run_drive(cfg);
  const auto& c = r.clients.front();

  std::printf("\n--- %s ---\n", name);
  const scenario::TelemetryTable& table = r.telemetry;
  const std::size_t col_goodput = col_by_suffix(table, ".goodput_mbps");
  const std::size_t col_ap = col_by_suffix(table, ".ap");
  const std::size_t col_cwnd = col_by_suffix(table, ".cwnd");
  double max_mbps = 1.0;
  for (const auto& row : table.rows) {
    max_mbps = std::max(max_mbps, row[col_goodput]);
  }
  std::printf("%-7s %-9s %-7s %-24s %s\n", "t(s)", "Mb/s", "cwnd", "", "AP");
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    const auto& row = table.rows[i];
    std::printf("%-7.1f %-9.2f %-7.0f %-24s AP%u\n", table.times[i].to_sec(),
                row[col_goodput], row[col_cwnd],
                bench::bar(row[col_goodput], max_mbps, 22).c_str(),
                static_cast<unsigned>(row[col_ap]));
  }
  // Switch cadence.
  std::size_t switch_count = 0;
  net::NodeId prev = 0;
  for (const auto& pt : c.timeline) {
    if (prev != 0 && pt.active != 0 && pt.active != prev) ++switch_count;
    if (pt.active != 0) prev = pt.active;
  }
  std::printf("AP switches: %zu over %.1f s (%.1f per second)\n",
              switch_count, r.measured_duration.to_sec(),
              switch_count / r.measured_duration.to_sec());
  std::printf("TCP: goodput %.2f Mb/s, %llu timeouts, %llu retransmissions\n",
              c.goodput_mbps,
              static_cast<unsigned long long>(c.tcp_stats.timeouts),
              static_cast<unsigned long long>(c.tcp_stats.retransmissions));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 14", "TCP throughput + AP timeline at 15 mph");
  std::string csv_path;
  if (args.telemetry) {
    csv_path = bench::claim_output_path(
        args.telemetry_path.empty() ? "TELEMETRY_fig14_tcp_timeline.csv"
                                    : args.telemetry_path,
        args.force, "telemetry");
  }
  std::string packets_path;
  if (args.packets) {
    packets_path = bench::claim_output_path(
        args.packets_path.empty() ? "PACKETS_fig14_tcp_timeline.jsonl"
                                  : args.packets_path,
        args.force, "packets");
  }
  print_run("WGTT", scenario::SystemType::kWgtt, args, csv_path, packets_path,
            args.packet_sample);
  print_run("Enhanced 802.11r", scenario::SystemType::kEnhanced80211r, args,
            {}, {}, 1);
  std::printf("\npaper: WGTT switches ~5x/s and holds ~5 Mb/s steadily; the\n"
              "baseline rises then collapses to zero with a TCP timeout\n"
              "mid-transit.\n");
  return 0;
}
