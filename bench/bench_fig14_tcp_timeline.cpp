// Paper Fig. 14: TCP throughput vs time, plus the AP-association timeline,
// for a single client at 15 mph — WGTT against Enhanced 802.11r.
//
// Claims to check: WGTT switches APs ~5 times per second, holding a stable
// throughput through the whole transit; the baseline's throughput crashes
// to zero mid-transit and a TCP timeout follows.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

void print_run(const char* name, scenario::SystemType sys) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = sys;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  auto r = scenario::run_drive(cfg);
  const auto& c = r.clients.front();

  std::printf("\n--- %s ---\n", name);
  double max_mbps = 1.0;
  for (const auto& [t, mbps] : c.throughput_bins) {
    max_mbps = std::max(max_mbps, mbps);
  }
  std::printf("%-7s %-9s %-24s %s\n", "t(s)", "Mb/s", "", "AP");
  for (const auto& [t, mbps] : c.throughput_bins) {
    // AP from the association timeline at this instant.
    net::NodeId ap = 0;
    for (const auto& pt : c.timeline) {
      if (pt.t <= t + Time::ms(250)) ap = pt.active;
    }
    std::printf("%-7.1f %-9.2f %-24s AP%u\n", t.to_sec(), mbps,
                bench::bar(mbps, max_mbps, 22).c_str(), ap);
  }
  // Switch cadence.
  std::size_t switch_count = 0;
  net::NodeId prev = 0;
  for (const auto& pt : c.timeline) {
    if (prev != 0 && pt.active != 0 && pt.active != prev) ++switch_count;
    if (pt.active != 0) prev = pt.active;
  }
  std::printf("AP switches: %zu over %.1f s (%.1f per second)\n",
              switch_count, r.measured_duration.to_sec(),
              switch_count / r.measured_duration.to_sec());
  std::printf("TCP: goodput %.2f Mb/s, %llu timeouts, %llu retransmissions\n",
              c.goodput_mbps,
              static_cast<unsigned long long>(c.tcp_stats.timeouts),
              static_cast<unsigned long long>(c.tcp_stats.retransmissions));
}

}  // namespace

int main() {
  bench::header("Fig. 14", "TCP throughput + AP timeline at 15 mph");
  print_run("WGTT", scenario::SystemType::kWgtt);
  print_run("Enhanced 802.11r", scenario::SystemType::kEnhanced80211r);
  std::printf("\npaper: WGTT switches ~5x/s and holds ~5 Mb/s steadily; the\n"
              "baseline rises then collapses to zero with a TCP timeout\n"
              "mid-transit.\n");
  return 0;
}
