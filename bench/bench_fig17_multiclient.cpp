// Paper Fig. 17: average per-client downlink throughput with 1-3 clients
// all moving at 15 mph.
//
// Paper: WGTT 5.3 (TCP) / 8.2 (UDP) Mb/s per client with one client —
// 2.5x / 2.1x the baseline — and the gap *grows* to 2.6x / 2.4x with three
// clients because the baseline suffers the extra multipath/loss while WGTT
// exploits uplink diversity.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

int main() {
  bench::header("Fig. 17", "per-client throughput vs number of clients");

  std::printf("\n%-9s %-10s %-13s %-7s %-10s %-13s %-7s\n", "clients",
              "TCP WGTT", "TCP 802.11r", "ratio", "UDP WGTT", "UDP 802.11r",
              "ratio");
  for (std::size_t n = 1; n <= 3; ++n) {
    double v[2][2];
    for (int traffic = 0; traffic < 2; ++traffic) {
      for (int sys = 0; sys < 2; ++sys) {
        scenario::DriveScenarioConfig cfg;
        cfg.num_clients = n;
        cfg.pattern = scenario::MultiClientPattern::kFollowing;
        cfg.following_gap_m = 5.0;
        cfg.speed_mph = 15.0;
        cfg.seed = 11;
        cfg.traffic = traffic == 0 ? scenario::TrafficType::kTcpDownlink
                                   : scenario::TrafficType::kUdpDownlink;
        cfg.system = sys == 0 ? scenario::SystemType::kWgtt
                              : scenario::SystemType::kEnhanced80211r;
        v[traffic][sys] = scenario::run_drive(cfg).mean_goodput_mbps();
      }
    }
    std::printf("%-9zu %-10.2f %-13.2f %-7.1f %-10.2f %-13.2f %-7.1f\n", n,
                v[0][0], v[0][1], v[0][1] > 0.01 ? v[0][0] / v[0][1] : 0.0,
                v[1][0], v[1][1], v[1][1] > 0.01 ? v[1][0] / v[1][1] : 0.0);
    std::fflush(stdout);
  }
  std::printf("\npaper: 1 client -> 5.3/8.2 Mb/s (2.5x/2.1x baseline);\n"
              "gap grows to 2.6x/2.4x at 3 clients.\n");
  return 0;
}
