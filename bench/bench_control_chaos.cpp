// Control-plane chaos: protocol-hardening gate under adversarial backhaul.
//
// Not a paper figure — the robustness gate for the hardened switch protocol.
// Each run drives a TCP downlink client through the 8-AP testbed while a
// deterministic FaultPlan::control_chaos schedule attacks the control plane
// itself: duplicated control frames (msg_dup), FIFO-breaking reordering
// (msg_reorder), and controller crash/warm-restart cycles (ctrl_crash),
// plus the combined mask.  The interesting outputs are the hardening
// counters (duplicates suppressed, stale messages fenced, resync rounds)
// and the convergence verdict from the health engine's outage ledger: after
// every schedule, no client may be left stranded and at most one AP may be
// transmitting to each client.  Any violation exits 1 — this bench is a
// hard gate, not a trend plot.
//
// The sweep (4 masks x 4 seeds) runs through SweepRunner on all cores;
// BENCH_control_chaos.json records every run for the CI perf gate
// (bench/baselines/control_chaos.json).

#include <cstdio>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "sim/fault_plan.h"

using namespace wgtt;

namespace {

struct Mode {
  const char* name;
  unsigned mask;
};

constexpr Mode kModes[] = {
    {"msg_dup", sim::FaultPlan::kChaosMsgDup},
    {"msg_reorder", sim::FaultPlan::kChaosMsgReorder},
    {"ctrl_crash", sim::FaultPlan::kChaosCtrlCrash},
    {"combined", sim::FaultPlan::kChaosControlAll},
};
constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4};
const Time kHorizon = Time::sec(3);

std::uint64_t counter_sum(const metrics::Snapshot& snap,
                          std::string_view name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("ControlChaos",
                "hardened switch protocol under adversarial backhaul");

  std::vector<scenario::DriveScenarioConfig> configs;
  for (const Mode& mode : kModes) {
    for (std::uint64_t seed : kSeeds) {
      scenario::DriveScenarioConfig cfg;
      cfg.system = scenario::SystemType::kWgtt;
      cfg.traffic = scenario::TrafficType::kTcpDownlink;
      cfg.speed_mph = 25.0;
      cfg.duration = kHorizon;
      cfg.seed = seed;
      // The outage ledger is the convergence verdict, so health is on for
      // every run (control_chaos confines fault windows to [10%, 75%] of
      // the horizon — the tail is convergence headroom).
      cfg.testbed.enable_health = true;
      cfg.testbed.faults = sim::FaultPlan::control_chaos(
          1.5, kHorizon, static_cast<std::uint32_t>(cfg.testbed.ap_x.size()),
          seed, mode.mask);
      configs.push_back(cfg);
    }
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "control_chaos");

  const scenario::SweepRunner runner(args.sweep);
  std::printf("running %zu drives on %zu threads...\n", configs.size(),
              runner.jobs());
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "control_chaos";
  report.title = "hardened switch protocol under adversarial backhaul";
  report.note_outcome(outcome);

  std::printf("\n%-12s %-5s %-7s %-9s %-9s %-6s %-6s %-8s %-9s %s\n", "mode",
              "seed", "faults", "goodput", "switches", "dups", "stale",
              "resyncs", "outages", "verdict");
  std::size_t violations = 0;
  double serial_ms = 0.0;
  for (std::size_t m = 0; m < std::size(kModes); ++m) {
    for (std::size_t s = 0; s < std::size(kSeeds); ++s) {
      const std::size_t i = m * std::size(kSeeds) + s;
      const scenario::SweepRun& run = outcome.runs[i];
      serial_ms += run.wall_ms;
      const scenario::DriveResult& r = run.result;
      const std::uint64_t dups =
          counter_sum(r.metrics, "controller.protocol.dup_suppressed");
      const std::uint64_t stale =
          counter_sum(r.metrics, "controller.protocol.stale_rejected");
      const std::uint64_t resyncs =
          counter_sum(r.metrics, "controller.protocol.resyncs");
      const bool converged = r.health_errors == 0 &&
                             r.unconverged_clients == 0 &&
                             r.dual_active_clients.empty();
      if (!converged) ++violations;
      char label[64];
      std::snprintf(label, sizeof label, "control_chaos/%s/s%llu",
                    kModes[m].name,
                    static_cast<unsigned long long>(kSeeds[s]));
      report.runs.push_back(scenario::make_run_report(
          label, configs[i], r, run.wall_ms));
      std::printf(
          "%-12s %-5llu %-7zu %-9.2f %-9zu %-6llu %-6llu %-8llu %-9llu %s\n",
          kModes[m].name, static_cast<unsigned long long>(kSeeds[s]),
          configs[i].testbed.faults.events.size(), r.mean_goodput_mbps(),
          r.switches.size(), static_cast<unsigned long long>(dups),
          static_cast<unsigned long long>(stale),
          static_cast<unsigned long long>(resyncs),
          static_cast<unsigned long long>(r.outages),
          converged ? "converged" : "VIOLATION");
    }
  }
  report.summary.emplace_back("serial_wall_ms_estimate", serial_ms);
  report.summary.emplace_back(
      "parallel_speedup",
      outcome.wall_ms > 0.0 ? serial_ms / outcome.wall_ms : 0.0);
  report.summary.emplace_back("violations", static_cast<double>(violations));

  bench::note(
      "every row must read 'converged': zero error-severity watchdogs, no "
      "open outage window at end of run, and at most one active transmitter "
      "per client once the schedule's faults cleared.  The dup/stale/resync "
      "columns are the hardening counters doing the work.");
  bench::emit_report(report, args);
  if (violations > 0) {
    std::fprintf(stderr,
                 "control_chaos: GATE FAIL — %zu run(s) violated the "
                 "protocol contract\n",
                 violations);
    return 1;
  }
  return 0;
}
