// Ablation study of WGTT's design choices (beyond the paper's own
// parameter studies in §5.3): what each mechanism buys, measured by
// knocking it out of the full system one at a time.
//
//  * median-ESNR selection  -> replace the window median with the newest
//    reading (§3.1.1 argues the median rides out fading spikes);
//  * downlink fan-out       -> send only to the active AP (removes the
//    pre-placed backlog that makes start(c, k) instant, §3.1.2);
//  * old-AP quench          -> let the abandoned AP retry its NIC backlog
//    indefinitely (the paper's "rapidly quenching each others'
//    transmissions" motivation);
//  * Block-ACK forwarding   -> drop overheard BAs instead of forwarding
//    (§3.2.1);
//  * Minstrel vs ESNR rate control -> the channel-aware alternative the
//    CSI plumbing makes possible (the paper keeps stock Minstrel).
//
// All 42 drives (7 variants x 3 seeds x 2 traffic types) run as one
// SweepRunner batch; per-variant averages land in BENCH_ablations.json.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

struct Row {
  const char* name;
  const char* slug;
  std::function<void(scenario::DriveScenarioConfig&)> mutate;
};

const Row kRows[] = {
    {"full WGTT (default)", "full", [](scenario::DriveScenarioConfig&) {}},
    {"latest-reading selection", "latest_reading",
     [](scenario::DriveScenarioConfig& c) {
       c.wgtt.controller.use_latest_reading = true;
     }},
    {"no downlink fan-out", "no_fanout",
     [](scenario::DriveScenarioConfig& c) {
       c.wgtt.controller.fanout_active_only = true;
     }},
    {"no old-AP quench", "no_quench",
     [](scenario::DriveScenarioConfig& c) {
       c.wgtt.nic_drain_window = Time::sec(30);  // never flush
     }},
    {"no BA forwarding", "no_ba_forwarding",
     [](scenario::DriveScenarioConfig& c) {
       c.wgtt.enable_ba_forwarding = false;
     }},
    {"ESNR rate control", "esnr_rate_control",
     [](scenario::DriveScenarioConfig& c) {
       c.wgtt.rate_control = scenario::RateControlKind::kEsnr;
     }},
    {"selection window W=100ms", "window_100ms",
     [](scenario::DriveScenarioConfig& c) {
       c.wgtt.controller.selection_window = Time::ms(100);
     }},
};

constexpr int kSeedsPerVariant = 3;

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Ablations", "knock out one WGTT mechanism at a time");

  const scenario::TrafficType traffics[] = {
      scenario::TrafficType::kUdpDownlink, scenario::TrafficType::kTcpDownlink};
  const char* traffic_labels[] = {"UDP downlink", "TCP downlink"};

  // One flat batch: [traffic][variant][seed].
  std::vector<scenario::DriveScenarioConfig> configs;
  for (auto traffic : traffics) {
    for (const Row& row : kRows) {
      for (int s = 0; s < kSeedsPerVariant; ++s) {
        scenario::DriveScenarioConfig cfg;
        cfg.traffic = traffic;
        cfg.speed_mph = 15.0;
        cfg.udp_offered_mbps = 15.0;
        cfg.seed = 42 + static_cast<unsigned>(s);
        row.mutate(cfg);
        configs.push_back(cfg);
      }
    }
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "ablations");

  const scenario::SweepRunner runner(args.sweep);
  std::printf("running %zu drives on %zu threads...\n", configs.size(),
              runner.jobs());
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "ablations";
  report.title = "knock out one WGTT mechanism at a time";
  report.note_outcome(outcome);

  std::size_t i = 0;
  for (std::size_t t = 0; t < std::size(traffics); ++t) {
    std::printf("\n--- %s, 15 mph, averaged over %d seeds ---\n",
                traffic_labels[t], kSeedsPerVariant);
    std::printf("%-28s %10s %10s %10s\n", "variant", "Mb/s", "accuracy",
                "switches");
    for (const Row& row : kRows) {
      double goodput = 0.0;
      double acc = 0.0;
      double switches = 0.0;
      for (int s = 0; s < kSeedsPerVariant; ++s, ++i) {
        const auto& r = outcome.runs[i].result;
        goodput += r.mean_goodput_mbps();
        acc += r.clients[0].switching_accuracy;
        switches += static_cast<double>(r.switches.size());
        report.runs.push_back(scenario::make_run_report(
            std::string(row.slug) + "/" +
                scenario::to_string(configs[i].traffic) + "/seed" +
                std::to_string(configs[i].seed),
            configs[i], r, outcome.runs[i].wall_ms));
      }
      std::printf("%-28s %10.2f %9.1f%% %10.1f\n", row.name,
                  goodput / kSeedsPerVariant,
                  acc / kSeedsPerVariant * 100.0,
                  switches / kSeedsPerVariant);
      report.summary.emplace_back(
          std::string(row.slug) + "_" +
              (traffics[t] == scenario::TrafficType::kUdpDownlink ? "udp"
                                                                  : "tcp") +
              "_mbps",
          goodput / kSeedsPerVariant);
    }
  }

  std::printf("\nreading the numbers: the old-AP quench is the largest\n"
              "single-mechanism win for UDP; the median buys ~4%% switching\n"
              "accuracy over latest-reading; fan-out costs little at this\n"
              "offered load because the active AP usually holds the backlog\n"
              "anyway; ESNR rate control is a viable Minstrel alternative.\n"
              "A wider selection window (fewer switches) wins overall in\n"
              "this build — consistent with EXPERIMENTS.md deviations 3/5:\n"
              "our ~19 ms switch cost is large relative to the 2-3 ms\n"
              "channel coherence, so switch churn is pricier than in the\n"
              "paper's testbed.\n");
  bench::emit_report(report, args);
  return 0;
}
