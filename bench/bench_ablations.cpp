// Ablation study of WGTT's design choices (beyond the paper's own
// parameter studies in §5.3): what each mechanism buys, measured by
// knocking it out of the full system one at a time.
//
//  * median-ESNR selection  -> replace the window median with the newest
//    reading (§3.1.1 argues the median rides out fading spikes);
//  * downlink fan-out       -> send only to the active AP (removes the
//    pre-placed backlog that makes start(c, k) instant, §3.1.2);
//  * old-AP quench          -> let the abandoned AP retry its NIC backlog
//    indefinitely (the paper's "rapidly quenching each others'
//    transmissions" motivation);
//  * Block-ACK forwarding   -> drop overheard BAs instead of forwarding
//    (§3.2.1);
//  * Minstrel vs ESNR rate control -> the channel-aware alternative the
//    CSI plumbing makes possible (the paper keeps stock Minstrel).

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

struct Row {
  const char* name;
  std::function<void(scenario::DriveScenarioConfig&)> mutate;
};

void run_suite(scenario::TrafficType traffic, const char* label) {
  const Row rows[] = {
      {"full WGTT (default)", [](scenario::DriveScenarioConfig&) {}},
      {"latest-reading selection",
       [](scenario::DriveScenarioConfig& c) {
         c.wgtt.controller.use_latest_reading = true;
       }},
      {"no downlink fan-out",
       [](scenario::DriveScenarioConfig& c) {
         c.wgtt.controller.fanout_active_only = true;
       }},
      {"no old-AP quench",
       [](scenario::DriveScenarioConfig& c) {
         c.wgtt.nic_drain_window = Time::sec(30);  // never flush
       }},
      {"no BA forwarding",
       [](scenario::DriveScenarioConfig& c) {
         c.wgtt.enable_ba_forwarding = false;
       }},
      {"ESNR rate control",
       [](scenario::DriveScenarioConfig& c) {
         c.wgtt.rate_control = scenario::RateControlKind::kEsnr;
       }},
      {"selection window W=100ms",
       [](scenario::DriveScenarioConfig& c) {
         c.wgtt.controller.selection_window = Time::ms(100);
       }},
  };

  std::printf("\n--- %s, 15 mph, averaged over 3 seeds ---\n", label);
  std::printf("%-28s %10s %10s %10s\n", "variant", "Mb/s", "accuracy",
              "switches");
  for (const Row& row : rows) {
    double goodput = 0.0;
    double acc = 0.0;
    double switches = 0.0;
    const int runs = 3;
    for (int s = 0; s < runs; ++s) {
      scenario::DriveScenarioConfig cfg;
      cfg.traffic = traffic;
      cfg.speed_mph = 15.0;
      cfg.udp_offered_mbps = 15.0;
      cfg.seed = 42 + static_cast<unsigned>(s);
      row.mutate(cfg);
      auto r = scenario::run_drive(cfg);
      goodput += r.mean_goodput_mbps();
      acc += r.clients[0].switching_accuracy;
      switches += static_cast<double>(r.switches.size());
    }
    std::printf("%-28s %10.2f %9.1f%% %10.1f\n", row.name, goodput / runs,
                acc / runs * 100.0, switches / runs);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  bench::header("Ablations", "knock out one WGTT mechanism at a time");
  run_suite(scenario::TrafficType::kUdpDownlink, "UDP downlink");
  run_suite(scenario::TrafficType::kTcpDownlink, "TCP downlink");
  std::printf("\nreading the numbers: the old-AP quench is the largest\n"
              "single-mechanism win for UDP; the median buys ~4%% switching\n"
              "accuracy over latest-reading; fan-out costs little at this\n"
              "offered load because the active AP usually holds the backlog\n"
              "anyway; ESNR rate control is a viable Minstrel alternative.\n"
              "A wider selection window (fewer switches) wins overall in\n"
              "this build — consistent with EXPERIMENTS.md deviations 3/5:\n"
              "our ~19 ms switch cost is large relative to the 2-3 ms\n"
              "channel coherence, so switch churn is pricier than in the\n"
              "paper's testbed.\n");
  return 0;
}
