// Paper Fig. 23 / §5.3.4: impact of AP density.
//
// UDP throughput while the client transits the densely deployed stretch
// (AP2-AP4, 7.5 m spacing) versus the sparse stretch (AP5-AP7, 12 m),
// across low driving speeds.  Claim: WGTT is consistently high in both,
// but the dense area gains from uplink/path diversity (paper: 9.3 vs
// 6.7 Mb/s on average).
//
// The 10 drives (5 speeds x 2 systems) run through SweepRunner; each run's
// dense/sparse split lands in BENCH_fig23_density.json as extra fields.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "util/units.h"

using namespace wgtt;

namespace {

/// Average throughput while the client is inside [x0, x1].
double region_tput(const scenario::DriveScenarioConfig& cfg,
                   const scenario::DriveResult& r, double x0, double x1) {
  const auto& c = r.clients.front();
  // Client position: x = -15 + v * t  (drive_mobility lead-in 15 m).
  const double v = mph_to_mps(cfg.speed_mph);
  double bytes_rate_sum = 0.0;
  int bins = 0;
  for (const auto& [t, mbps] : c.throughput_bins) {
    const double x = -15.0 + v * (t + Time::ms(250)).to_sec();
    if (x >= x0 && x <= x1) {
      bytes_rate_sum += mbps;
      ++bins;
    }
  }
  return bins > 0 ? bytes_rate_sum / bins : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 23", "UDP throughput: dense vs sparse AP deployment");

  constexpr double kSpeeds[] = {2.0, 4.0, 6.0, 8.0, 10.0};
  std::vector<scenario::DriveScenarioConfig> configs;
  for (double mph : kSpeeds) {
    for (int sys = 0; sys < 2; ++sys) {
      scenario::DriveScenarioConfig cfg;
      cfg.traffic = scenario::TrafficType::kUdpDownlink;
      cfg.udp_offered_mbps = 15.0;
      cfg.speed_mph = mph;
      cfg.seed = 31;
      cfg.system = sys == 0 ? scenario::SystemType::kWgtt
                            : scenario::SystemType::kEnhanced80211r;
      configs.push_back(cfg);
    }
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "fig23_density");

  const scenario::SweepRunner runner(args.sweep);
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "fig23_density";
  report.title = "UDP throughput: dense vs sparse AP deployment";
  report.note_outcome(outcome);

  std::printf("\n%-7s %-22s %-22s\n", "", "dense (AP2-AP4)", "sparse (AP5-AP7)");
  std::printf("%-7s %-10s %-11s %-10s %-11s\n", "speed", "WGTT", "802.11r",
              "WGTT", "802.11r");
  double dense_sum = 0.0;
  double sparse_sum = 0.0;
  int n = 0;
  for (std::size_t s = 0; s < std::size(kSpeeds); ++s) {
    double v[2][2];  // [region][system]
    for (int sys = 0; sys < 2; ++sys) {
      const std::size_t i = s * 2 + static_cast<std::size_t>(sys);
      v[0][sys] = region_tput(configs[i], outcome.runs[i].result, 7.5, 22.5);
      v[1][sys] = region_tput(configs[i], outcome.runs[i].result, 34.0, 58.0);
      char label[48];
      std::snprintf(label, sizeof label, "%s/%.0fmph",
                    sys == 0 ? "wgtt" : "80211r", kSpeeds[s]);
      report.runs.push_back(scenario::make_run_report(
          label, configs[i], outcome.runs[i].result, outcome.runs[i].wall_ms));
      report.runs.back().extra.emplace_back("dense_mbps", v[0][sys]);
      report.runs.back().extra.emplace_back("sparse_mbps", v[1][sys]);
    }
    std::printf("%-7.0f %-10.2f %-11.2f %-10.2f %-11.2f\n", kSpeeds[s],
                v[0][0], v[0][1], v[1][0], v[1][1]);
    dense_sum += v[0][0];
    sparse_sum += v[1][0];
    ++n;
  }
  report.summary.emplace_back("wgtt_dense_avg_mbps", dense_sum / n);
  report.summary.emplace_back("wgtt_sparse_avg_mbps", sparse_sum / n);

  std::printf("\nWGTT average: dense %.1f Mb/s, sparse %.1f Mb/s\n",
              dense_sum / n, sparse_sum / n);
  std::printf("paper: ~9.3 Mb/s dense vs ~6.7 Mb/s sparse; WGTT above the\n"
              "baseline in both areas at every speed.\n");
  bench::emit_report(report, args);
  return 0;
}
