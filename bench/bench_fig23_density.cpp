// Paper Fig. 23 / §5.3.4: impact of AP density.
//
// UDP throughput while the client transits the densely deployed stretch
// (AP2-AP4, 7.5 m spacing) versus the sparse stretch (AP5-AP7, 12 m),
// across low driving speeds.  Claim: WGTT is consistently high in both,
// but the dense area gains from uplink/path diversity (paper: 9.3 vs
// 6.7 Mb/s on average).

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "util/units.h"

using namespace wgtt;

namespace {

/// Average throughput while the client is inside [x0, x1].
double region_tput(const scenario::DriveScenarioConfig& cfg, double x0,
                   double x1) {
  auto r = scenario::run_drive(cfg);
  const auto& c = r.clients.front();
  // Client position: x = -15 + v * t  (drive_mobility lead-in 15 m).
  const double v = mph_to_mps(cfg.speed_mph);
  double bytes_rate_sum = 0.0;
  int bins = 0;
  for (const auto& [t, mbps] : c.throughput_bins) {
    const double x = -15.0 + v * (t + Time::ms(250)).to_sec();
    if (x >= x0 && x <= x1) {
      bytes_rate_sum += mbps;
      ++bins;
    }
  }
  return bins > 0 ? bytes_rate_sum / bins : 0.0;
}

}  // namespace

int main() {
  bench::header("Fig. 23", "UDP throughput: dense vs sparse AP deployment");

  std::printf("\n%-7s %-22s %-22s\n", "", "dense (AP2-AP4)", "sparse (AP5-AP7)");
  std::printf("%-7s %-10s %-11s %-10s %-11s\n", "speed", "WGTT", "802.11r",
              "WGTT", "802.11r");
  double dense_sum = 0.0;
  double sparse_sum = 0.0;
  int n = 0;
  for (double mph : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    double v[2][2];  // [region][system]
    for (int sys = 0; sys < 2; ++sys) {
      scenario::DriveScenarioConfig cfg;
      cfg.traffic = scenario::TrafficType::kUdpDownlink;
      cfg.udp_offered_mbps = 15.0;
      cfg.speed_mph = mph;
      cfg.seed = 31;
      cfg.system = sys == 0 ? scenario::SystemType::kWgtt
                            : scenario::SystemType::kEnhanced80211r;
      v[0][sys] = region_tput(cfg, 7.5, 22.5);   // dense stretch
      v[1][sys] = region_tput(cfg, 34.0, 58.0);  // sparse stretch
    }
    std::printf("%-7.0f %-10.2f %-11.2f %-10.2f %-11.2f\n", mph, v[0][0],
                v[0][1], v[1][0], v[1][1]);
    dense_sum += v[0][0];
    sparse_sum += v[1][0];
    ++n;
    std::fflush(stdout);
  }
  std::printf("\nWGTT average: dense %.1f Mb/s, sparse %.1f Mb/s\n",
              dense_sum / n, sparse_sum / n);
  std::printf("paper: ~9.3 Mb/s dense vs ~6.7 Mb/s sparse; WGTT above the\n"
              "baseline in both areas at every speed.\n");
  return 0;
}
