// Paper Fig. 10: ESNR heatmap of the road, measured at each AP.
//
// Samples the large-scale + fading channel on a grid of road positions for
// each of the eight APs and prints a terminal heatmap (one row per AP,
// x along the road).  The paper's claim: the ESNR distribution is coherent
// with the AP placement, and adjacent coverage overlaps 6-10 m.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "phy/esnr.h"
#include "scenario/testbed.h"

using namespace wgtt;

namespace {
char shade(double esnr_db) {
  if (esnr_db >= 15.0) return '@';
  if (esnr_db >= 10.0) return '#';
  if (esnr_db >= 5.0) return '+';
  if (esnr_db >= 2.0) return '.';
  return ' ';
}
}  // namespace

int main() {
  bench::header("Fig. 10", "ESNR heatmap along the road, per AP");

  scenario::TestbedConfig tb;
  tb.seed = 10;
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);

  // A slow "survey" drive provides the positions; we sample the channel
  // directly at 1 m spacing (averaging a few fading realisations by
  // sampling nearby positions, as a measurement campaign would).
  const net::NodeId probe =
      bed.add_client(bed.drive_mobility(/*mph=*/2.2369, 20.0),
                     scenario::kWgttBssid);  // 1 m/s
  std::printf("\nx along road (m):  -10        0         10        20        "
              "30        40        50        60        70\n");

  std::vector<std::vector<double>> grid;
  for (net::NodeId ap : bed.ap_ids()) {
    std::vector<double> row;
    for (int x = -10; x <= 75; ++x) {
      // position x is reached at t = (x - start) / v; start = -20, v = 1.
      const Time t = Time::sec(static_cast<double>(x) + 20.0);
      double mean = 0.0;
      for (int k = 0; k < 5; ++k) {
        const Time tk = t + Time::ms(k * 40);  // ~4 cm apart: fading average
        mean += phy::selection_esnr_db(bed.channel().downlink_csi(ap, probe, tk));
      }
      row.push_back(mean / 5.0);
    }
    grid.push_back(std::move(row));
  }

  for (std::size_t a = 0; a < grid.size(); ++a) {
    std::printf("AP%zu @%5.1fm  |", a + 1, bed.config().ap_x[a]);
    for (double e : grid[a]) std::printf("%c", shade(e));
    std::printf("|\n");
  }
  std::printf("\nlegend: '@' >=15 dB, '#' >=10, '+' >=5, '.' >=2, ' ' below\n");

  // Overlap widths between adjacent APs (span where both >= 5 dB).
  std::printf("\nadjacent-AP coverage overlap (span with both >= 5 dB):\n");
  for (std::size_t a = 0; a + 1 < grid.size(); ++a) {
    int overlap = 0;
    for (std::size_t i = 0; i < grid[a].size(); ++i) {
      if (grid[a][i] >= 5.0 && grid[a + 1][i] >= 5.0) ++overlap;
    }
    std::printf("  AP%zu-AP%zu: %d m\n", a + 1, a + 2, overlap);
  }
  std::printf("\npaper: overlap between adjacent APs is 6-10 m.\n");
  return 0;
}
