// Multi-channel extension study (paper §7, "Multi-channel settings").
//
// The paper argues that putting adjacent APs on different channels would
// avoid inter-AP interference but (a) cut spectrum efficiency, (b) break
// overheard-packet forwarding (uplink diversity and BA forwarding), and
// (c) force clients to retune on every cross-channel switch.  This bench
// quantifies those trade-offs in the full system: single channel vs a
// 2-channel and 3-channel plan, for one client and for two parallel
// clients (where contention relief could pay off).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

namespace {

struct Result {
  double goodput;
  double accuracy;
  double dup_removed;
  double loss;
  std::size_t switches;
};

Result run(const std::vector<unsigned>& plan, std::size_t clients,
           scenario::TrafficType traffic) {
  Result out{};
  const int runs = 3;
  for (int s = 0; s < runs; ++s) {
    scenario::DriveScenarioConfig cfg;
    cfg.traffic = traffic;
    cfg.speed_mph = 15.0;
    cfg.udp_offered_mbps = 15.0;
    cfg.num_clients = clients;
    cfg.pattern = scenario::MultiClientPattern::kParallel;
    cfg.seed = 42 + static_cast<unsigned>(s);
    cfg.wgtt.ap_channels = plan;
    auto r = scenario::run_drive(cfg);
    out.goodput += r.mean_goodput_mbps() / runs;
    out.accuracy += r.clients[0].switching_accuracy / runs;
    out.dup_removed +=
        static_cast<double>(r.uplink_duplicates_removed) / runs;
    out.loss += r.clients[0].udp_loss_rate / runs;
    out.switches += r.switches.size() / static_cast<std::size_t>(runs);
  }
  return out;
}

void suite(std::size_t clients, scenario::TrafficType traffic,
           const char* label) {
  struct Plan {
    const char* name;
    std::vector<unsigned> channels;
  };
  const Plan plans[] = {
      {"single channel (paper)", {}},
      {"2-channel alternating", {1, 11}},
      {"3-channel alternating", {1, 6, 11}},
  };
  std::printf("\n--- %s ---\n", label);
  std::printf("%-24s %8s %10s %10s %10s %8s\n", "channel plan", "Mb/s",
              "accuracy", "switches", "dup-rx", "loss");
  for (const Plan& p : plans) {
    Result r = run(p.channels, clients, traffic);
    std::printf("%-24s %8.2f %9.1f%% %10zu %10.0f %7.1f%%\n", p.name,
                r.goodput, r.accuracy * 100.0, r.switches, r.dup_removed,
                r.loss * 100.0);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  bench::header("Multi-channel (§7)",
                "channel plans vs uplink diversity and retune cost");
  suite(1, scenario::TrafficType::kUdpDownlink, "1 client, UDP 15 Mb/s");
  suite(2, scenario::TrafficType::kUdpDownlink,
        "2 parallel clients, UDP 15 Mb/s each");
  suite(1, scenario::TrafficType::kUdpUplink,
        "1 client, UDP uplink 15 Mb/s (diversity/salvaging path)");
  std::printf("\nexpected (the paper's §7 argument): multi-channel plans\n"
              "lose uplink diversity (duplicate receptions collapse) and\n"
              "switching gets coarser (100 ms scan cadence for off-channel\n"
              "APs + retune pauses); contention relief only helps when\n"
              "multiple clients actually share a cell.\n");
  return 0;
}
