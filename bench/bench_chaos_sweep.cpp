// Chaos sweep: WGTT goodput under injected infrastructure faults.
//
// Not a paper figure — a robustness gate.  Each run drives a TCP downlink
// client through the 8-AP testbed while a deterministic FaultPlan::chaos
// schedule crashes APs, degrades backhaul links, and corrupts CSI reports at
// a configurable intensity (faults per simulated second).  The interesting
// outputs are how gracefully goodput degrades as intensity rises and that
// intensity 0 reproduces the fault-free numbers exactly (the injector is
// never constructed for an empty plan).
//
// The sweep (2 speeds x 4 intensities) runs through SweepRunner on all
// cores; BENCH_chaos_sweep.json records every run for the CI perf gate
// (bench/baselines/chaos.json).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "sim/fault_plan.h"
#include "util/units.h"

using namespace wgtt;

namespace {

constexpr double kSpeeds[] = {15.0, 35.0};
constexpr double kIntensities[] = {0.0, 0.5, 1.0, 2.0};  // faults per sim-sec

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Chaos", "goodput under injected infrastructure faults");

  std::vector<scenario::DriveScenarioConfig> configs;
  for (double mph : kSpeeds) {
    for (double intensity : kIntensities) {
      scenario::DriveScenarioConfig cfg;
      cfg.speed_mph = mph;
      cfg.seed = 42;
      cfg.traffic = scenario::TrafficType::kTcpDownlink;
      cfg.system = scenario::SystemType::kWgtt;
      if (intensity > 0.0) {
        // Fault horizon = the transit time for this speed (road span plus
        // the default 15 m lead-in/out), matching run_drive's duration.
        const double road_m = 65.5 + 2.0 * 15.0;
        const Time horizon = Time::sec(road_m / mph_to_mps(mph));
        cfg.testbed.faults = sim::FaultPlan::chaos(
            intensity, horizon,
            static_cast<std::uint32_t>(cfg.testbed.ap_x.size()), cfg.seed);
      }
      configs.push_back(cfg);
    }
  }
  args.apply_policy(configs);
  args.apply_outputs(configs.front(), "chaos_sweep");

  const scenario::SweepRunner runner(args.sweep);
  std::printf("running %zu drives on %zu threads...\n", configs.size(),
              runner.jobs());
  const scenario::SweepOutcome outcome = runner.run(configs);

  scenario::SweepReport report;
  report.bench_id = "chaos_sweep";
  report.title = "goodput under injected infrastructure faults";
  report.note_outcome(outcome);

  std::printf("\n%-7s %-11s %-8s %-14s %-10s\n", "speed", "intensity",
              "faults", "goodput Mb/s", "vs clean");
  double serial_ms = 0.0;
  for (std::size_t s = 0; s < std::size(kSpeeds); ++s) {
    double clean = 0.0;
    for (std::size_t f = 0; f < std::size(kIntensities); ++f) {
      const std::size_t i = s * std::size(kIntensities) + f;
      const scenario::SweepRun& run = outcome.runs[i];
      serial_ms += run.wall_ms;
      const double goodput = run.result.mean_goodput_mbps();
      if (f == 0) clean = goodput;
      char label[64];
      std::snprintf(label, sizeof label, "chaos/%.0fmph/x%.1f", kSpeeds[s],
                    kIntensities[f]);
      report.runs.push_back(scenario::make_run_report(
          label, configs[i], run.result, run.wall_ms));
      std::printf("%-5.0f   %-11.1f %-8zu %-14.2f %-10.2f\n", kSpeeds[s],
                  kIntensities[f], configs[i].testbed.faults.events.size(),
                  goodput, clean > 0.01 ? goodput / clean : 0.0);
    }
  }
  report.summary.emplace_back("serial_wall_ms_estimate", serial_ms);
  report.summary.emplace_back(
      "parallel_speedup",
      outcome.wall_ms > 0.0 ? serial_ms / outcome.wall_ms : 0.0);

  bench::note(
      "intensity 0 builds no injector, so its rows must equal the fault-free "
      "fig13 numbers for the same speed/seed; higher intensities exercise "
      "liveness failover, quarantine backoff, and stale-CSI exclusion.");
  bench::emit_report(report, args);
  return 0;
}
