// Paper Figs. 19/20: two-client driving patterns — (a) following with a
// small gap, (b) parallel lanes, (c) opposing directions — TCP and UDP.
//
// Claims: opposing direction does best (clients are far apart for most of
// the transit, minimal contention); parallel is worst (they carrier-sense
// each other the whole way); WGTT beats the baseline in all three.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace wgtt;

int main() {
  bench::header("Fig. 20", "two-client driving patterns at 15 mph");

  struct Case {
    const char* name;
    scenario::MultiClientPattern pattern;
  };
  const Case cases[] = {
      {"(a) following, 3 m", scenario::MultiClientPattern::kFollowing},
      {"(b) parallel", scenario::MultiClientPattern::kParallel},
      {"(c) opposing", scenario::MultiClientPattern::kOpposing},
  };

  std::printf("\n%-20s %-10s %-13s %-10s %-13s\n", "pattern", "TCP WGTT",
              "TCP 802.11r", "UDP WGTT", "UDP 802.11r");
  for (const Case& c : cases) {
    double v[2][2];
    for (int traffic = 0; traffic < 2; ++traffic) {
      for (int sys = 0; sys < 2; ++sys) {
        scenario::DriveScenarioConfig cfg;
        cfg.num_clients = 2;
        cfg.pattern = c.pattern;
        cfg.following_gap_m = 3.0;
        cfg.speed_mph = 15.0;
        cfg.udp_offered_mbps = 15.0;
        cfg.seed = 23;
        cfg.traffic = traffic == 0 ? scenario::TrafficType::kTcpDownlink
                                   : scenario::TrafficType::kUdpDownlink;
        cfg.system = sys == 0 ? scenario::SystemType::kWgtt
                              : scenario::SystemType::kEnhanced80211r;
        v[traffic][sys] = scenario::run_drive(cfg).mean_goodput_mbps();
      }
    }
    std::printf("%-20s %-10.2f %-13.2f %-10.2f %-13.2f\n", c.name, v[0][0],
                v[0][1], v[1][0], v[1][1]);
    std::fflush(stdout);
  }
  std::printf("\npaper: highest throughput in case (c) opposing; lowest in\n"
              "case (b) parallel (mutual carrier sensing); WGTT above the\n"
              "baseline in all three.\n");
  return 0;
}
