// Paper Table 5 / §5.4: web page load time at driving speed.
//
// A 2.1 MB page (the paper's eBay homepage) fetched over parallel
// persistent connections from a local server.  Paper: WGTT loads in a
// stable 4.3-4.6 s at every speed; Enhanced 802.11r takes 15.5-18.2 s at
// 5-10 mph and never finishes at 15-20 mph ("inf").

#include <cstdio>
#include <memory>

#include "apps/web_browse.h"
#include "bench_util.h"
#include "scenario/testbed.h"

using namespace wgtt;

namespace {

std::optional<Time> load_page(bool use_wgtt, double mph, std::uint64_t seed) {
  scenario::TestbedConfig tb;
  tb.seed = seed;
  scenario::Testbed bed(tb);
  std::unique_ptr<scenario::WgttNetwork> wgtt;
  std::unique_ptr<scenario::BaselineNetwork> baseline;
  net::NodeId client;
  if (use_wgtt) {
    wgtt = std::make_unique<scenario::WgttNetwork>(bed);
    client = wgtt->add_client(bed.drive_mobility(mph));
  } else {
    baseline = std::make_unique<scenario::BaselineNetwork>(bed);
    client = baseline->add_client(bed.drive_mobility(mph));
  }
  transport::IpIdAllocator ip_ids;
  apps::WebBrowseConfig wcfg;
  wcfg.first_flow_id = 100;
  wcfg.server = scenario::kServerId;
  wcfg.client = client;
  apps::WebBrowseApp app(bed.sched(), ip_ids, transport::TcpConfig{}, wcfg);
  if (use_wgtt) {
    wgtt->wire_web_browse(app, client);
  } else {
    baseline->wire_web_browse(app, client);
  }
  bed.sched().schedule_at(Time::ms(600), [&app]() { app.start(); });
  // The page either loads during the transit or it never does.
  bed.sched().run_until(bed.transit_duration(mph) + Time::ms(600));
  return app.load_time();
}

void row(const char* name, bool use_wgtt) {
  std::printf("%-20s", name);
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    // Average over 3 runs, treating a non-finish as inf for the whole row
    // entry (as the paper reports).
    double total = 0.0;
    bool any_inf = false;
    const int runs = 3;
    for (int s = 0; s < runs; ++s) {
      auto t = load_page(use_wgtt, mph, 40 + static_cast<unsigned>(s));
      if (!t) {
        any_inf = true;
        break;
      }
      total += t->to_sec();
    }
    if (any_inf) {
      std::printf("%10s", "inf");
    } else {
      std::printf("%10.2f", total / runs);
    }
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Table 5", "2.1 MB web page load time (seconds) vs speed");
  std::printf("\n%-20s", "Client speed (mph)");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) std::printf("%10.0f", mph);
  std::printf("\n");
  row("WGTT", true);
  row("Enhanced 802.11r", false);
  std::printf("\npaper: WGTT 4.34-4.64 s, flat across speeds; baseline\n"
              "15.49/18.21 s at 5/10 mph and inf at 15/20 mph.\n");
  return 0;
}
