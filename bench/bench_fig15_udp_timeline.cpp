// Paper Fig. 15: UDP throughput + link bit rate + AP timeline at 15 mph.
//
// The timeline is read back from the run's TelemetrySampler (500 ms period):
// per-client goodput, selected AP, and cumulative loss come from one
// telemetry table; the PHY bit-rate column is averaged from the run's
// bitrate samples over each telemetry period.
//
// Claims: WGTT rides the best link continuously (frequent switches, stable
// rate); Enhanced 802.11r switches only ~3 times in the whole 10 s transit
// and its throughput swings wildly.
//
// Pass --telemetry [PATH] to keep the WGTT run's full CSV (default
// TELEMETRY_fig15_udp_timeline.csv); --force overwrites an existing file.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "scenario/telemetry.h"
#include "util/stats.h"

using namespace wgtt;

namespace {

std::size_t col_by_suffix(const scenario::TelemetryTable& table,
                          const std::string& suffix) {
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    const std::string& name = table.columns[i].name;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return i;
    }
  }
  return scenario::TelemetryTable::npos;
}

void print_run(const char* name, scenario::SystemType sys,
               const bench::BenchArgs& args,
               const std::string& telemetry_path) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = sys;
  args.apply_policy(cfg);
  cfg.traffic = scenario::TrafficType::kUdpDownlink;
  cfg.udp_offered_mbps = 15.0;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  cfg.testbed.enable_telemetry = true;
  cfg.testbed.telemetry_period = Time::ms(500);
  cfg.testbed.telemetry_path = telemetry_path;
  auto r = scenario::run_drive(cfg);
  const auto& c = r.clients.front();

  std::printf("\n--- %s ---\n", name);
  const scenario::TelemetryTable& table = r.telemetry;
  const std::size_t col_goodput = col_by_suffix(table, ".goodput_mbps");
  const std::size_t col_ap = col_by_suffix(table, ".ap");
  std::printf("%-7s %-8s %-10s %s\n", "t(s)", "Mb/s", "bitrate", "AP");
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    const auto& row = table.rows[i];
    const Time t = table.times[i];
    // Average PHY bit rate of exchanges in this telemetry period.
    RunningStats rate;
    for (const auto& [bt, mb] : c.bitrate_series) {
      if (bt >= t - Time::ms(500) && bt < t) rate.add(mb);
    }
    std::printf("%-7.1f %-8.2f %-10.1f AP%u %s\n", t.to_sec(),
                row[col_goodput], rate.mean(),
                static_cast<unsigned>(row[col_ap]),
                bench::bar(row[col_goodput], 16, 20).c_str());
  }
  std::size_t switch_count = 0;
  net::NodeId prev = 0;
  for (const auto& pt : c.timeline) {
    if (prev != 0 && pt.active != 0 && pt.active != prev) ++switch_count;
    if (pt.active != 0) prev = pt.active;
  }
  std::printf("switches: %zu; UDP goodput %.2f Mb/s; loss %.1f%%\n",
              switch_count, c.goodput_mbps, c.udp_loss_rate * 100);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::header("Fig. 15", "UDP throughput + bit rate + AP timeline, 15 mph");
  std::string csv_path;
  if (args.telemetry) {
    csv_path = bench::claim_output_path(
        args.telemetry_path.empty() ? "TELEMETRY_fig15_udp_timeline.csv"
                                    : args.telemetry_path,
        args.force, "telemetry");
  }
  print_run("WGTT", scenario::SystemType::kWgtt, args, csv_path);
  print_run("Enhanced 802.11r", scenario::SystemType::kEnhanced80211r, args,
            {});
  std::printf("\npaper: WGTT switches frequently and keeps a stable rate;\n"
              "Enhanced 802.11r switches only ~3 times in 10 s with low,\n"
              "unstable throughput.\n");
  return 0;
}
