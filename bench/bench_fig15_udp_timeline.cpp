// Paper Fig. 15: UDP throughput + link bit rate + AP timeline at 15 mph.
//
// Claims: WGTT rides the best link continuously (frequent switches, stable
// rate); Enhanced 802.11r switches only ~3 times in the whole 10 s transit
// and its throughput swings wildly.

#include <cstdio>

#include "bench_util.h"
#include "scenario/experiment.h"
#include "util/stats.h"

using namespace wgtt;

namespace {

void print_run(const char* name, scenario::SystemType sys) {
  scenario::DriveScenarioConfig cfg;
  cfg.system = sys;
  cfg.traffic = scenario::TrafficType::kUdpDownlink;
  cfg.udp_offered_mbps = 15.0;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;
  auto r = scenario::run_drive(cfg);
  const auto& c = r.clients.front();

  std::printf("\n--- %s ---\n", name);
  std::printf("%-7s %-8s %-10s %s\n", "t(s)", "Mb/s", "bitrate", "AP");
  for (const auto& [t, mbps] : c.throughput_bins) {
    // Average PHY bit rate of exchanges in this bin.
    RunningStats rate;
    for (const auto& [bt, mb] : c.bitrate_series) {
      if (bt >= t && bt < t + Time::ms(500)) rate.add(mb);
    }
    net::NodeId ap = 0;
    for (const auto& pt : c.timeline) {
      if (pt.t <= t + Time::ms(250)) ap = pt.active;
    }
    std::printf("%-7.1f %-8.2f %-10.1f AP%u %s\n", t.to_sec(), mbps,
                rate.mean(), ap, bench::bar(mbps, 16, 20).c_str());
  }
  std::size_t switch_count = 0;
  net::NodeId prev = 0;
  for (const auto& pt : c.timeline) {
    if (prev != 0 && pt.active != 0 && pt.active != prev) ++switch_count;
    if (pt.active != 0) prev = pt.active;
  }
  std::printf("switches: %zu; UDP goodput %.2f Mb/s; loss %.1f%%\n",
              switch_count, c.goodput_mbps, c.udp_loss_rate * 100);
}

}  // namespace

int main() {
  bench::header("Fig. 15", "UDP throughput + bit rate + AP timeline, 15 mph");
  print_run("WGTT", scenario::SystemType::kWgtt);
  print_run("Enhanced 802.11r", scenario::SystemType::kEnhanced80211r);
  std::printf("\npaper: WGTT switches frequently and keeps a stable rate;\n"
              "Enhanced 802.11r switches only ~3 times in 10 s with low,\n"
              "unstable throughput.\n");
  return 0;
}
