#!/usr/bin/env bash
# Regenerate the committed perf-gate baselines in bench/baselines/.
#
# The CI perf gate diffs each bench's fresh BENCH_*.json against the file
# committed here (wgtt-report diff), so the baselines must be refreshed —
# via this script, never by hand — whenever a simulation change legitimately
# moves the deterministic outputs (goodput, switch counts) or the report
# schema (run labels, metrics keys).
#
# Usage:  bench/refresh_baselines.sh [BUILD_DIR]
#
# Runs each baseline bench single-job for stable wall_ms numbers; expect a
# few minutes.  Run on an otherwise idle machine, then review the printed
# wgtt-report diff before committing the updated baselines.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-baseline}"
baseline_dir="${repo_root}/bench/baselines"

# Bench id -> committed baseline file -> bench args.  Sweep benches run
# --jobs 1 for stable wall_ms; the hot-path microbench sets its own rep
# count.  Add a line per gated bench.
benches=(
  "fig13_speed_sweep fig13.json --jobs 1"
  "chaos_sweep chaos.json --jobs 1"
  "control_chaos control_chaos.json --jobs 1"
  "policy_tournament tournament.json --jobs 1"
  "hotpath hotpath.json --reps 5"
)

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
targets=(wgtt-report bench_soak)
for entry in "${benches[@]}"; do
  read -r bench_id _ <<<"${entry}"
  targets+=("bench_${bench_id}")
done
cmake --build "${build_dir}" -j "$(nproc)" --target "${targets[@]}"

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

for entry in "${benches[@]}"; do
  read -r bench_id baseline_file bench_args <<<"${entry}"
  echo "== ${bench_id} -> baselines/${baseline_file}"
  # shellcheck disable=SC2086  # bench_args is intentionally word-split
  (cd "${workdir}" && "${build_dir}/bench/bench_${bench_id}" ${bench_args} --force)
  report="${workdir}/BENCH_${bench_id}.json"
  if [[ -f "${baseline_dir}/${baseline_file}" ]]; then
    # Show what the refresh changes; the diff warning about wall_ms drift
    # between machines is expected and fine.
    "${build_dir}/src/wgtt-report" diff \
      "${baseline_dir}/${baseline_file}" "${report}" --soft || true
  fi
  cp "${report}" "${baseline_dir}/${baseline_file}"
done

# The soak baseline is different in kind: CI gates the *health stream*
# (window/check/violation counts, packet ledger, drift slopes), not the
# BENCH json, so it is emitted by the analyzer rather than copied.  Keep
# --sim-minutes in lockstep with the soak-health job in ci.yml.
echo "== soak -> baselines/soak.json (health-stream baseline)"
(cd "${workdir}" && "${build_dir}/bench/bench_soak" --sim-minutes 12 --health-strict --force)
"${build_dir}/src/wgtt-report" health "${workdir}/HEALTH_soak.jsonl" \
  --strict --emit-baseline "${baseline_dir}/soak.json"

echo "baselines refreshed; review with git diff before committing"
