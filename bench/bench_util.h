// Shared output helpers for the experiment benches: every binary prints the
// rows/series of one paper table or figure, plus the paper's numbers for
// side-by-side comparison.  Sweep-shaped benches additionally run their
// simulations through scenario::SweepRunner (all cores by default) and leave
// a machine-readable BENCH_<id>.json report behind.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/handoff_policy.h"
#include "scenario/report.h"
#include "scenario/sweep.h"
#include "sim/fault_plan.h"

namespace wgtt::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==========================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Sparkline-ish inline bar for time series in terminal output.
inline std::string bar(double value, double max, int width = 40) {
  if (max <= 0) max = 1;
  int n = static_cast<int>(value / max * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

/// Resolve one bench output path, refusing to silently clobber a file that
/// already exists unless the user passed --force.  Prints the resolved path
/// so the bench summary names every artifact it is about to write.
inline std::string claim_output_path(const std::string& path, bool force,
                                     const char* what) {
  if (!force) {
    if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
      std::fclose(f);
      std::fprintf(stderr,
                   "error: %s output %s already exists; pass --force to "
                   "overwrite\n",
                   what, path.c_str());
      std::exit(1);
    }
  }
  std::printf("%s: %s\n", what, path.c_str());
  return path;
}

/// Command-line options shared by the sweep-shaped benches.  The optional
/// per-run output artifacts (--trace/--telemetry/--decisions/--packets/
/// --health) are described once in kOutputOpts below — the parser, the
/// config application, and the --help text all iterate that table, so a new
/// artifact is one table row plus its fields here.
struct BenchArgs {
  scenario::SweepOptions sweep;  // --jobs N / -j N (0 = env/hardware default)
  /// --trace [PATH]: write a Chrome trace-event JSON of the first run.
  /// Empty = tracing off; the default path is TRACE_<bench_id>.json.
  std::string trace_path;
  bool trace = false;
  /// --telemetry [PATH]: write the first run's telemetry CSV.
  /// Empty = sampling off; the default path is TELEMETRY_<bench_id>.csv.
  std::string telemetry_path;
  bool telemetry = false;
  /// --decisions [PATH]: write the first run's controller decision JSONL.
  /// Empty = audit log off; the default path is DECISIONS_<bench_id>.jsonl.
  std::string decisions_path;
  bool decisions = false;
  /// --packets [PATH]: write the first run's per-packet flight-recorder
  /// JSONL.  Empty = recorder off; default path is PACKETS_<bench_id>.jsonl.
  std::string packets_path;
  bool packets = false;
  /// --health [PATH]: write the first run's runtime-health JSONL (windowed
  /// rollups + watchdog verdicts).  Default path is HEALTH_<bench_id>.jsonl.
  std::string health_path;
  bool health = false;
  /// --causal [PATH]: write the first run's causal event-graph JSONL
  /// (scheduler provenance edges + semantic annotations; feed it to
  /// `wgtt-report critical-path`).  Default path is CAUSAL_<bench_id>.jsonl.
  std::string causal_path;
  bool causal = false;
  /// --health-strict: exit 1 if any health watchdog reports an
  /// error-severity violation (implies --health).
  bool health_strict = false;
  /// --packet-sample N: record 1-in-N sampled data packets (default 1).
  std::uint32_t packet_sample = 1;
  /// --faults [SPEC]: inject infrastructure faults into the first run.
  /// SPEC uses the FaultPlan grammar (EXPERIMENTS.md "Chaos sweeps"); with
  /// no SPEC a deterministic chaos plan (intensity 1 fault/s) is generated
  /// from the run's seed.
  std::string faults_spec;
  bool faults = false;
  /// --policy SPEC: run every WGTT simulation under this handoff policy
  /// ("name[:key=val,...]"; see core/handoff_policy.h).  Validated at parse
  /// time — a bad spec exits 2 before any simulation runs.
  core::PolicySpec policy;
  bool policy_set = false;
  /// --force: overwrite existing trace/telemetry/decision/packet files.
  bool force = false;

  /// Apply the --policy override to every config of a sweep.  Baseline
  /// (802.11r) runs ignore the controller config, so this is safe to apply
  /// unconditionally.
  template <typename DriveConfig>
  void apply_policy(std::vector<DriveConfig>& configs) const {
    if (!policy_set) return;
    for (DriveConfig& cfg : configs) cfg.wgtt.controller.policy = policy;
    std::printf("policy: %s\n", policy.to_string().c_str());
  }

  /// Single-run variant (timeline benches): silent, call per config.
  template <typename DriveConfig>
  void apply_policy(DriveConfig& cfg) const {
    if (policy_set) cfg.wgtt.controller.policy = policy;
  }

  /// Apply the requested output artifacts (kOutputOpts) to the config of
  /// one run (benches instrument the first simulation of their sweep;
  /// instrumenting every run would just overwrite one file per worker).
  /// Exits with an error if a target file exists and --force was not given.
  template <typename DriveConfig>
  void apply_outputs(DriveConfig& cfg, const std::string& bench_id) const;
};

/// One optional per-run output artifact: where its flag parses into
/// BenchArgs and which TestbedConfig path it sets.  parse_args,
/// BenchArgs::apply_outputs, and the --help text all walk this table.
struct OutputOpt {
  const char* flag;            // "--trace"
  const char* what;            // claim_output_path label
  const char* default_prefix;  // "TRACE_"
  const char* default_suffix;  // ".json"
  bool BenchArgs::*enabled;
  std::string BenchArgs::*path;
  std::string scenario::TestbedConfig::*target;
  const char* help;  // --help description (default-path clause appended)
};

inline const OutputOpt kOutputOpts[] = {
    {"--trace", "trace", "TRACE_", ".json", &BenchArgs::trace,
     &BenchArgs::trace_path, &scenario::TestbedConfig::trace_path,
     "write a Chrome trace-event JSON (chrome://tracing, Perfetto) of the "
     "bench's first simulation"},
    {"--telemetry", "telemetry", "TELEMETRY_", ".csv", &BenchArgs::telemetry,
     &BenchArgs::telemetry_path, &scenario::TestbedConfig::telemetry_path,
     "write the first simulation's telemetry time-series CSV"},
    {"--decisions", "decisions", "DECISIONS_", ".jsonl",
     &BenchArgs::decisions, &BenchArgs::decisions_path,
     &scenario::TestbedConfig::decision_log_path,
     "write the first simulation's controller decision audit JSONL"},
    {"--packets", "packets", "PACKETS_", ".jsonl", &BenchArgs::packets,
     &BenchArgs::packets_path, &scenario::TestbedConfig::packet_log_path,
     "write the first simulation's per-packet flight-recorder JSONL"},
    {"--health", "health", "HEALTH_", ".jsonl", &BenchArgs::health,
     &BenchArgs::health_path, &scenario::TestbedConfig::health_path,
     "write the first simulation's runtime-health JSONL (windowed rollups "
     "+ invariant watchdogs)"},
    {"--causal", "causal", "CAUSAL_", ".jsonl", &BenchArgs::causal,
     &BenchArgs::causal_path, &scenario::TestbedConfig::causal_path,
     "write the first simulation's causal event-graph JSONL (scheduler "
     "provenance edges + semantic annotations, for wgtt-report "
     "critical-path)"},
};

template <typename DriveConfig>
void BenchArgs::apply_outputs(DriveConfig& cfg,
                              const std::string& bench_id) const {
  for (const OutputOpt& o : kOutputOpts) {
    if (!(this->*o.enabled)) continue;
    const std::string& p = this->*o.path;
    cfg.testbed.*o.target = claim_output_path(
        p.empty() ? o.default_prefix + bench_id + o.default_suffix : p,
        force, o.what);
  }
  if (packets) cfg.testbed.packet_sample = packet_sample;
  // The causal tracer samples per-packet annotation sites with the same
  // splitmix64 recipe as the flight recorder, so --packet-sample governs
  // both streams and their sampled-uid populations coincide line-for-line.
  if (causal) cfg.testbed.causal_sample = packet_sample;
  if (faults) {
    sim::FaultPlan plan;
    if (faults_spec.empty()) {
      const Time horizon =
          cfg.duration > Time::zero() ? cfg.duration : Time::sec(10);
      plan = sim::FaultPlan::chaos(
          /*intensity=*/1.0, horizon,
          static_cast<std::uint32_t>(cfg.testbed.ap_x.size()), cfg.seed);
    } else {
      std::string err;
      if (!sim::FaultPlan::parse(faults_spec, plan, &err)) {
        std::fprintf(stderr, "error: bad --faults spec: %s\n", err.c_str());
        std::exit(2);
      }
    }
    std::printf("faults:\n%s", plan.describe().c_str());
    cfg.testbed.faults = std::move(plan);
  }
}

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* val = nullptr;
    // Output-artifact flags: "--flag=PATH" or "--flag [PATH]".
    bool matched_output = false;
    for (const OutputOpt& o : kOutputOpts) {
      const std::size_t len = std::strlen(o.flag);
      if (std::strncmp(a, o.flag, len) == 0 && a[len] == '=') {
        args.*o.enabled = true;
        args.*o.path = a + len + 1;
        matched_output = true;
        break;
      }
      if (std::strcmp(a, o.flag) == 0) {
        args.*o.enabled = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') args.*o.path = argv[++i];
        matched_output = true;
        break;
      }
    }
    if (matched_output) continue;
    if (std::strncmp(a, "--jobs=", 7) == 0) {
      val = a + 7;
    } else if ((std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) &&
               i + 1 < argc) {
      val = argv[++i];
    } else if (std::strcmp(a, "--health-strict") == 0) {
      args.health_strict = true;
      args.health = true;
    } else if (std::strncmp(a, "--packet-sample=", 16) == 0) {
      const long v = std::strtol(a + 16, nullptr, 10);
      if (v > 0) args.packet_sample = static_cast<std::uint32_t>(v);
    } else if (std::strcmp(a, "--packet-sample") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) args.packet_sample = static_cast<std::uint32_t>(v);
    } else if (std::strncmp(a, "--faults=", 9) == 0) {
      args.faults = true;
      args.faults_spec = a + 9;
    } else if (std::strcmp(a, "--faults") == 0) {
      args.faults = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.faults_spec = argv[++i];
      }
    } else if (std::strncmp(a, "--policy=", 9) == 0 ||
               (std::strcmp(a, "--policy") == 0 && i + 1 < argc)) {
      const char* spec = a[8] == '=' ? a + 9 : argv[++i];
      std::string err;
      if (!core::parse_policy_spec(spec, args.policy, &err)) {
        std::fprintf(stderr, "error: bad --policy spec \"%s\": %s\n", spec,
                     err.c_str());
        std::fprintf(stderr, "known policies:");
        for (const std::string& n : core::policy_names()) {
          std::fprintf(stderr, " %s", n.c_str());
        }
        std::fprintf(stderr, "\n");
        std::exit(2);
      }
      args.policy_set = true;
    } else if (std::strcmp(a, "--force") == 0) {
      args.force = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::printf("usage: %s [--jobs N] [--policy SPEC]", argv[0]);
      for (const OutputOpt& o : kOutputOpts) {
        std::printf(" [%s [PATH]]", o.flag);
      }
      std::printf(
          " [--health-strict] [--packet-sample N] [--faults [SPEC]] "
          "[--force]\n"
          "  --jobs N            worker threads for the sweep (default: "
          "WGTT_SWEEP_JOBS env or hardware concurrency)\n"
          "  --policy SPEC       handoff policy for every WGTT run, "
          "\"name[:key=val,...]\" (median_esnr, predictive, "
          "make_before_break, bicast)\n");
      for (const OutputOpt& o : kOutputOpts) {
        std::printf("  %-9s [PATH]    %s; default PATH is %s<bench>%s\n",
                    o.flag, o.help, o.default_prefix, o.default_suffix);
      }
      std::printf(
          "  --health-strict     exit 1 on any error-severity health "
          "watchdog violation (implies --health)\n"
          "  --packet-sample N   flight-record 1-in-N data packets "
          "(default 1 = every packet; markers always recorded)\n"
          "  --faults [SPEC]     inject infrastructure faults into the "
          "first simulation; SPEC grammar per EXPERIMENTS.md (\"Chaos "
          "sweeps\"), no SPEC = a seeded chaos plan\n"
          "  --force             overwrite existing output files\n");
      std::exit(0);
    }
    if (val != nullptr) {
      const long v = std::strtol(val, nullptr, 10);
      if (v > 0) args.sweep.jobs = static_cast<std::size_t>(v);
    }
  }
  return args;
}

/// Serialize `report` to BENCH_<id>.json and tell the user where it went.
inline void emit_report(const scenario::SweepReport& report) {
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "warning: failed to write bench report for %s\n",
                 report.bench_id.c_str());
    return;
  }
  std::printf("\nreport: %s (%zu runs, %zu jobs, %.0f ms wall)\n",
              path.c_str(), report.runs.size(), report.jobs, report.wall_ms);
}

/// emit_report + the --health-strict gate: prints the health verdict for
/// the instrumented run(s) and exits 1 when strict mode saw any
/// error-severity watchdog violation.
inline void emit_report(const scenario::SweepReport& report,
                        const BenchArgs& args) {
  emit_report(report);
  if (!args.health) return;
  std::uint64_t windows = 0;
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  std::uint64_t errors = 0;
  for (const auto& run : report.runs) {
    windows += run.health_windows;
    checks += run.health_checks;
    violations += run.health_violations;
    errors += run.health_errors;
  }
  std::printf("health: %llu windows, %llu checks, %llu violations "
              "(%llu error)\n",
              static_cast<unsigned long long>(windows),
              static_cast<unsigned long long>(checks),
              static_cast<unsigned long long>(violations),
              static_cast<unsigned long long>(errors));
  if (args.health_strict && errors > 0) {
    std::fprintf(stderr,
                 "health: STRICT FAIL — %llu error-severity watchdog "
                 "violation(s)\n",
                 static_cast<unsigned long long>(errors));
    std::exit(1);
  }
}

}  // namespace wgtt::bench
