// Shared output helpers for the experiment benches: every binary prints the
// rows/series of one paper table or figure, plus the paper's numbers for
// side-by-side comparison.  Sweep-shaped benches additionally run their
// simulations through scenario::SweepRunner (all cores by default) and leave
// a machine-readable BENCH_<id>.json report behind.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/handoff_policy.h"
#include "scenario/report.h"
#include "scenario/sweep.h"
#include "sim/fault_plan.h"

namespace wgtt::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==========================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Sparkline-ish inline bar for time series in terminal output.
inline std::string bar(double value, double max, int width = 40) {
  if (max <= 0) max = 1;
  int n = static_cast<int>(value / max * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

/// Resolve one bench output path, refusing to silently clobber a file that
/// already exists unless the user passed --force.  Prints the resolved path
/// so the bench summary names every artifact it is about to write.
inline std::string claim_output_path(const std::string& path, bool force,
                                     const char* what) {
  if (!force) {
    if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
      std::fclose(f);
      std::fprintf(stderr,
                   "error: %s output %s already exists; pass --force to "
                   "overwrite\n",
                   what, path.c_str());
      std::exit(1);
    }
  }
  std::printf("%s: %s\n", what, path.c_str());
  return path;
}

/// Command-line options shared by the sweep-shaped benches.
struct BenchArgs {
  scenario::SweepOptions sweep;  // --jobs N / -j N (0 = env/hardware default)
  /// --trace [PATH]: write a Chrome trace-event JSON of the first run.
  /// Empty = tracing off; the default path is TRACE_<bench_id>.json.
  std::string trace_path;
  bool trace = false;
  /// --telemetry [PATH]: write the first run's telemetry CSV.
  /// Empty = sampling off; the default path is TELEMETRY_<bench_id>.csv.
  std::string telemetry_path;
  bool telemetry = false;
  /// --decisions [PATH]: write the first run's controller decision JSONL.
  /// Empty = audit log off; the default path is DECISIONS_<bench_id>.jsonl.
  std::string decisions_path;
  bool decisions = false;
  /// --packets [PATH]: write the first run's per-packet flight-recorder
  /// JSONL.  Empty = recorder off; default path is PACKETS_<bench_id>.jsonl.
  std::string packets_path;
  bool packets = false;
  /// --packet-sample N: record 1-in-N sampled data packets (default 1).
  std::uint32_t packet_sample = 1;
  /// --faults [SPEC]: inject infrastructure faults into the first run.
  /// SPEC uses the FaultPlan grammar (EXPERIMENTS.md "Chaos sweeps"); with
  /// no SPEC a deterministic chaos plan (intensity 1 fault/s) is generated
  /// from the run's seed.
  std::string faults_spec;
  bool faults = false;
  /// --policy SPEC: run every WGTT simulation under this handoff policy
  /// ("name[:key=val,...]"; see core/handoff_policy.h).  Validated at parse
  /// time — a bad spec exits 2 before any simulation runs.
  core::PolicySpec policy;
  bool policy_set = false;
  /// --force: overwrite existing trace/telemetry/decision/packet files.
  bool force = false;

  /// Apply the --policy override to every config of a sweep.  Baseline
  /// (802.11r) runs ignore the controller config, so this is safe to apply
  /// unconditionally.
  template <typename DriveConfig>
  void apply_policy(std::vector<DriveConfig>& configs) const {
    if (!policy_set) return;
    for (DriveConfig& cfg : configs) cfg.wgtt.controller.policy = policy;
    std::printf("policy: %s\n", policy.to_string().c_str());
  }

  /// Single-run variant (timeline benches): silent, call per config.
  template <typename DriveConfig>
  void apply_policy(DriveConfig& cfg) const {
    if (policy_set) cfg.wgtt.controller.policy = policy;
  }

  /// Apply the requested --trace/--telemetry/--decisions outputs to the
  /// config of one run (benches instrument the first simulation of their
  /// sweep; instrumenting every run would just overwrite one file per
  /// worker).  Exits with an error if a target file exists and --force was
  /// not given.
  template <typename DriveConfig>
  void apply_outputs(DriveConfig& cfg, const std::string& bench_id) const {
    if (trace) {
      cfg.testbed.trace_path = claim_output_path(
          trace_path.empty() ? "TRACE_" + bench_id + ".json" : trace_path,
          force, "trace");
    }
    if (telemetry) {
      cfg.testbed.telemetry_path = claim_output_path(
          telemetry_path.empty() ? "TELEMETRY_" + bench_id + ".csv"
                                 : telemetry_path,
          force, "telemetry");
    }
    if (decisions) {
      cfg.testbed.decision_log_path = claim_output_path(
          decisions_path.empty() ? "DECISIONS_" + bench_id + ".jsonl"
                                 : decisions_path,
          force, "decisions");
    }
    if (packets) {
      cfg.testbed.packet_log_path = claim_output_path(
          packets_path.empty() ? "PACKETS_" + bench_id + ".jsonl"
                               : packets_path,
          force, "packets");
      cfg.testbed.packet_sample = packet_sample;
    }
    if (faults) {
      sim::FaultPlan plan;
      if (faults_spec.empty()) {
        const Time horizon =
            cfg.duration > Time::zero() ? cfg.duration : Time::sec(10);
        plan = sim::FaultPlan::chaos(
            /*intensity=*/1.0, horizon,
            static_cast<std::uint32_t>(cfg.testbed.ap_x.size()), cfg.seed);
      } else {
        std::string err;
        if (!sim::FaultPlan::parse(faults_spec, plan, &err)) {
          std::fprintf(stderr, "error: bad --faults spec: %s\n", err.c_str());
          std::exit(2);
        }
      }
      std::printf("faults:\n%s", plan.describe().c_str());
      cfg.testbed.faults = std::move(plan);
    }
  }
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* val = nullptr;
    if (std::strncmp(a, "--jobs=", 7) == 0) {
      val = a + 7;
    } else if ((std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) &&
               i + 1 < argc) {
      val = argv[++i];
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      args.trace = true;
      args.trace_path = a + 8;
    } else if (std::strcmp(a, "--trace") == 0) {
      args.trace = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') args.trace_path = argv[++i];
    } else if (std::strncmp(a, "--telemetry=", 12) == 0) {
      args.telemetry = true;
      args.telemetry_path = a + 12;
    } else if (std::strcmp(a, "--telemetry") == 0) {
      args.telemetry = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.telemetry_path = argv[++i];
      }
    } else if (std::strncmp(a, "--decisions=", 12) == 0) {
      args.decisions = true;
      args.decisions_path = a + 12;
    } else if (std::strcmp(a, "--decisions") == 0) {
      args.decisions = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.decisions_path = argv[++i];
      }
    } else if (std::strncmp(a, "--packets=", 10) == 0) {
      args.packets = true;
      args.packets_path = a + 10;
    } else if (std::strcmp(a, "--packets") == 0) {
      args.packets = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.packets_path = argv[++i];
      }
    } else if (std::strncmp(a, "--packet-sample=", 16) == 0) {
      const long v = std::strtol(a + 16, nullptr, 10);
      if (v > 0) args.packet_sample = static_cast<std::uint32_t>(v);
    } else if (std::strcmp(a, "--packet-sample") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) args.packet_sample = static_cast<std::uint32_t>(v);
    } else if (std::strncmp(a, "--faults=", 9) == 0) {
      args.faults = true;
      args.faults_spec = a + 9;
    } else if (std::strcmp(a, "--faults") == 0) {
      args.faults = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.faults_spec = argv[++i];
      }
    } else if (std::strncmp(a, "--policy=", 9) == 0 ||
               (std::strcmp(a, "--policy") == 0 && i + 1 < argc)) {
      const char* spec = a[8] == '=' ? a + 9 : argv[++i];
      std::string err;
      if (!core::parse_policy_spec(spec, args.policy, &err)) {
        std::fprintf(stderr, "error: bad --policy spec \"%s\": %s\n", spec,
                     err.c_str());
        std::fprintf(stderr, "known policies:");
        for (const std::string& n : core::policy_names()) {
          std::fprintf(stderr, " %s", n.c_str());
        }
        std::fprintf(stderr, "\n");
        std::exit(2);
      }
      args.policy_set = true;
    } else if (std::strcmp(a, "--force") == 0) {
      args.force = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::printf(
          "usage: %s [--jobs N] [--policy SPEC] [--trace [PATH]] "
          "[--telemetry [PATH]] [--decisions [PATH]] [--packets [PATH]] "
          "[--packet-sample N] [--force]\n"
          "  --jobs N            worker threads for the sweep (default: "
          "WGTT_SWEEP_JOBS env or hardware concurrency)\n"
          "  --policy SPEC       handoff policy for every WGTT run, "
          "\"name[:key=val,...]\" (median_esnr, predictive, "
          "make_before_break, bicast)\n"
          "  --trace [PATH]      write a Chrome trace-event JSON "
          "(chrome://tracing, Perfetto) of the bench's first "
          "simulation; default PATH is TRACE_<bench>.json\n"
          "  --telemetry [PATH]  write the first simulation's telemetry "
          "time-series CSV; default PATH is TELEMETRY_<bench>.csv\n"
          "  --decisions [PATH]  write the first simulation's controller "
          "decision audit JSONL; default PATH is DECISIONS_<bench>.jsonl\n"
          "  --packets [PATH]    write the first simulation's per-packet "
          "flight-recorder JSONL; default PATH is PACKETS_<bench>.jsonl\n"
          "  --packet-sample N   flight-record 1-in-N data packets "
          "(default 1 = every packet; markers always recorded)\n"
          "  --faults [SPEC]     inject infrastructure faults into the "
          "first simulation; SPEC grammar per EXPERIMENTS.md (\"Chaos "
          "sweeps\"), no SPEC = a seeded chaos plan\n"
          "  --force             overwrite existing output files\n",
          argv[0]);
      std::exit(0);
    }
    if (val != nullptr) {
      const long v = std::strtol(val, nullptr, 10);
      if (v > 0) args.sweep.jobs = static_cast<std::size_t>(v);
    }
  }
  return args;
}

/// Serialize `report` to BENCH_<id>.json and tell the user where it went.
inline void emit_report(const scenario::SweepReport& report) {
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "warning: failed to write bench report for %s\n",
                 report.bench_id.c_str());
    return;
  }
  std::printf("\nreport: %s (%zu runs, %zu jobs, %.0f ms wall)\n",
              path.c_str(), report.runs.size(), report.jobs, report.wall_ms);
}

}  // namespace wgtt::bench
