// Shared output helpers for the experiment benches: every binary prints the
// rows/series of one paper table or figure, plus the paper's numbers for
// side-by-side comparison.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace wgtt::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==========================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Sparkline-ish inline bar for time series in terminal output.
inline std::string bar(double value, double max, int width = 40) {
  if (max <= 0) max = 1;
  int n = static_cast<int>(value / max * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace wgtt::bench
