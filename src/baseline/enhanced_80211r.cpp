#include "baseline/enhanced_80211r.h"

#include <algorithm>

#include "net/flight_recorder.h"
#include "util/logging.h"

namespace wgtt::baseline {

// ---------------------------------------------------------------------------
// Distribution
// ---------------------------------------------------------------------------

Distribution::Distribution(sim::Scheduler& sched, net::Backhaul& backhaul,
                           Time relearn_delay)
    : sched_(sched), backhaul_(backhaul), relearn_delay_(relearn_delay) {
  health_ = obs::HealthEngine::current();
  backhaul_.attach(net::kControllerId, [this](const net::TunneledPacket& f) {
    on_backhaul_frame(f);
  });
}

void Distribution::send_downlink(net::NodeId client, net::PacketPtr pkt) {
  auto it = assoc_.find(client);
  if (it == assoc_.end()) {
    ++dropped_;
    if (health_ && net::flight_recorded(pkt->type)) health_->packet_dropped();
    return;
  }
  ++downlink_packets_;
  backhaul_.send(net::encapsulate(std::move(pkt), net::kControllerId,
                                  it->second));
}

void Distribution::set_association(net::NodeId client, net::NodeId ap) {
  pending_assoc_[client] = ap;
  sched_.schedule(relearn_delay_, [this, client, ap]() {
    auto pit = pending_assoc_.find(client);
    if (pit == pending_assoc_.end() || pit->second != ap) return;  // superseded
    auto old = assoc_.find(client);
    if (old != assoc_.end() && old->second != ap) {
      // Tell the abandoned AP to flush its stale per-client queue.
      net::Packet p;
      p.type = net::PacketType::kAssocSync;
      p.size_bytes = 16;
      p.payload = FlushClientMsg{client};
      p.src = net::kControllerId;
      p.dst = old->second;
      p.created = sched_.now();
      backhaul_.send(net::encapsulate(net::make_packet(std::move(p)),
                                      net::kControllerId, old->second));
    }
    assoc_[client] = ap;
  });
}

net::NodeId Distribution::associated_ap(net::NodeId client) const {
  auto it = assoc_.find(client);
  return it == assoc_.end() ? 0 : it->second;
}

void Distribution::on_backhaul_frame(const net::TunneledPacket& frame) {
  net::PacketPtr inner = net::decapsulate(frame);
  switch (inner->type) {
    case net::PacketType::kData:
    case net::PacketType::kTcpAck:
      if (on_uplink) {
        on_uplink(std::move(inner));
      } else if (health_) {
        health_->packet_retired();  // no wired-side consumer
      }
      return;
    case net::PacketType::kAssocSync:
      if (const auto* joined = net::payload_as<core::ClientJoinedMsg>(*inner)) {
        set_association(joined->info.client, joined->info.associating_ap);
      }
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// BaselineAp
// ---------------------------------------------------------------------------

BaselineAp::BaselineAp(sim::Scheduler& sched, net::Backhaul& backhaul,
                       mac::WifiDevice& device, BaselineApConfig cfg)
    : sched_(sched), backhaul_(backhaul), device_(device), cfg_(cfg) {
  health_ = obs::HealthEngine::current();
  backhaul_.attach(cfg_.id, [this](const net::TunneledPacket& frame) {
    on_backhaul_frame(frame);
  });
  device_.on_deliver = [this](net::PacketPtr pkt, const mac::RxMeta&) {
    // Uplink: bridge to the distribution system.
    backhaul_.send(net::encapsulate(std::move(pkt), cfg_.id,
                                    cfg_.distribution));
  };
  device_.on_management = [this](net::PacketPtr pkt, const mac::RxMeta& meta) {
    on_management(std::move(pkt), meta);
  };
  // Stagger the first beacon so eight APs do not collide forever.
  sched_.schedule(Time::ms(1) * static_cast<double>(cfg_.id), [this]() {
    beacon();
  });
}

void BaselineAp::beacon() {
  net::Packet b;
  b.type = net::PacketType::kBeacon;
  b.src = cfg_.id;
  b.dst = net::kBroadcast;
  b.size_bytes = 128;
  b.created = sched_.now();
  b.payload = BeaconMsg{cfg_.id};
  device_.send_management(net::kBroadcast, net::make_packet(std::move(b)));
  sched_.schedule(cfg_.beacon_interval, [this]() { beacon(); });
}

void BaselineAp::on_backhaul_frame(const net::TunneledPacket& frame) {
  net::PacketPtr inner = net::decapsulate(frame);
  if (inner->type == net::PacketType::kAssocSync) {
    if (const auto* flush = net::payload_as<FlushClientMsg>(*inner)) {
      auto it = kernel_queues_.find(flush->client);
      if (it != kernel_queues_.end()) {
        stale_flushed_ += it->second.size();
        // Kernel queues hold only flight-recorded types (see enqueue path).
        if (health_) health_->packet_dropped(it->second.size());
        it->second.clear();
      }
      stale_flushed_ += device_.flush_queue(flush->client);
    }
    return;
  }
  if (inner->type == net::PacketType::kData ||
      inner->type == net::PacketType::kTcpAck) {
    const net::NodeId client = inner->dst;
    enqueue_downlink(client, std::move(inner));
  }
}

void BaselineAp::enqueue_downlink(net::NodeId client, net::PacketPtr pkt) {
  auto& q = kernel_queues_[client];
  if (q.size() >= cfg_.kernel_queue_limit) {  // tail drop
    if (health_) health_->packet_dropped();
    return;
  }
  q.push_back(std::move(pkt));
  pump(client);
}

void BaselineAp::pump(net::NodeId client) {
  auto& q = kernel_queues_[client];
  while (!q.empty() && device_.has_room(client)) {
    if (!device_.enqueue(client, q.front())) break;
    q.pop_front();
  }
  if (!q.empty()) {
    device_.set_refill_handler(client, [this, client]() { pump(client); });
  }
}

void BaselineAp::on_management(net::PacketPtr pkt, const mac::RxMeta& meta) {
  (void)meta;
  const auto* req = net::payload_as<core::AssocRequestMsg>(*pkt);
  if (!req) return;

  net::Packet resp;
  resp.type = net::PacketType::kMgmt;
  resp.src = cfg_.id;
  resp.dst = req->client;
  resp.size_bytes = 64;
  resp.created = sched_.now();
  core::AssocResponseMsg body;
  body.ap = cfg_.id;
  body.aid = next_aid_++;
  body.success = true;
  resp.payload = body;
  device_.send_management(req->client, net::make_packet(std::move(resp)));

  // Register with the distribution (auth state is pre-shared, §5.1 (3)).
  core::StaInfo info;
  info.client = req->client;
  info.authorized = true;
  info.associated_at = sched_.now();
  info.associating_ap = cfg_.id;
  net::Packet p;
  p.type = net::PacketType::kAssocSync;
  p.size_bytes = core::ClientJoinedMsg::kWireBytes;
  p.payload = core::ClientJoinedMsg{info};
  p.src = cfg_.id;
  p.dst = cfg_.distribution;
  p.created = sched_.now();
  backhaul_.send(net::encapsulate(net::make_packet(std::move(p)), cfg_.id,
                                  cfg_.distribution));
}

// ---------------------------------------------------------------------------
// RoamingClient
// ---------------------------------------------------------------------------

RoamingClient::RoamingClient(sim::Scheduler& sched, mac::WifiDevice& device,
                             RoamingConfig cfg)
    : sched_(sched), device_(device), cfg_(cfg) {}

void RoamingClient::start() {
  device_.on_management = [this](net::PacketPtr pkt, const mac::RxMeta& meta) {
    on_management(std::move(pkt), meta);
  };
}

double RoamingClient::rssi_of(net::NodeId ap) const {
  auto it = rssi_.find(ap);
  return it == rssi_.end() ? -100.0 : it->second.rssi_dbm;
}

void RoamingClient::on_management(net::PacketPtr pkt,
                                  const mac::RxMeta& meta) {
  const auto* beacon = net::payload_as<BeaconMsg>(*pkt);
  if (!beacon) return;
  const Time now = sched_.now();
  auto [it, inserted] = rssi_.try_emplace(beacon->ap);
  RssiEntry& e = it->second;
  if (inserted) {
    e.rssi_dbm = meta.csi.rssi_dbm;
    e.first_heard = now;
  } else {
    e.rssi_dbm = cfg_.rssi_ewma_weight * meta.csi.rssi_dbm +
                 (1.0 - cfg_.rssi_ewma_weight) * e.rssi_dbm;
  }
  e.last_heard = now;

  if (associated_ap_ == 0 && !handover_in_progress_) {
    // Initial association: take the first AP we hear.
    reassociate(beacon->ap);
    return;
  }
  consider_roaming();
}

void RoamingClient::consider_roaming() {
  if (handover_in_progress_ || associated_ap_ == 0) return;
  const Time now = sched_.now();

  // Stock 802.11r (§2): refuse to decide before the RSSI history of the
  // *current* association is long enough.
  if (cfg_.stock_history_requirement > Time::zero() &&
      now - associated_since_ < cfg_.stock_history_requirement) {
    return;
  }

  // The client only knows what beacons told it: when beacons stop decoding
  // it keeps the last-known (healthy-looking) RSSI until the expiry rolls
  // it off — one of the reasons real 802.11 roaming triggers so late.
  auto cur = rssi_.find(associated_ap_);
  double cur_rssi;
  if (cur == rssi_.end()) {
    cur_rssi = -100.0;
  } else if (now - cur->second.last_heard > cfg_.rssi_expiry) {
    cur_rssi = -100.0;  // stale beyond expiry: assume the AP is gone
  } else {
    cur_rssi = cur->second.rssi_dbm;
  }

  // Time hysteresis: the below-threshold condition must persist.  Any
  // beacon that pops back above the threshold (constructive fading, or a
  // brief return toward a cell centre) resets the timer.
  if (cur_rssi >= cfg_.rssi_threshold_dbm) {
    below_threshold_ = false;
    return;
  }
  if (!below_threshold_) {
    below_threshold_ = true;
    below_threshold_since_ = now;
  }
  if (now - below_threshold_since_ < cfg_.hysteresis) return;

  // Pick the strongest recently-heard alternative.
  net::NodeId best = 0;
  double best_rssi = cur_rssi;
  for (const auto& [ap, e] : rssi_) {
    if (ap == associated_ap_) continue;
    if (now - e.last_heard > cfg_.rssi_expiry) continue;
    if (e.rssi_dbm > best_rssi) {
      best_rssi = e.rssi_dbm;
      best = ap;
    }
  }
  if (best == 0) return;
  reassociate(best);
}

void RoamingClient::reassociate(net::NodeId target) {
  handover_in_progress_ = true;
  const Time started = sched_.now();
  const net::NodeId old_ap = associated_ap_;

  net::Packet req;
  req.type = net::PacketType::kMgmt;
  req.src = device_.id();
  req.dst = target;
  req.size_bytes = 90;
  req.created = started;
  req.payload = core::AssocRequestMsg{device_.id()};
  // Make-before-break: the data path stays on the old AP until the new
  // association succeeds.
  device_.send_management(target, net::make_packet(std::move(req)),
                          [this, target, old_ap, started](bool ok) {
    handover_in_progress_ = false;
    HandoverRecord rec;
    rec.when = started;
    rec.from_ap = old_ap;
    rec.to_ap = target;
    rec.success = ok;
    rec.outage = sched_.now() - started;
    if (ok) {
      associated_ap_ = target;
      associated_since_ = sched_.now();
      last_handover_ = sched_.now();
      below_threshold_ = false;  // fresh association, fresh timer
      device_.set_bssid(target);
      device_.set_keepalive_peer(target);
    }
    handovers_.push_back(rec);
  });
}

}  // namespace wgtt::baseline
