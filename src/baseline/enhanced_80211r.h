// The "Enhanced 802.11r" comparison scheme (paper §5.1) plus the stock
// 802.11r client used in the §2 motivation experiment.
//
// Per the paper, the baseline enhances standard 802.11r/802.11k in exactly
// the way a centralized-controller WLAN product would:
//   (1) each AP beacons every 100 ms; the client estimates per-AP RSSI;
//   (2) the client switches to the highest-RSSI AP once the current AP's
//       RSSI falls below a threshold, with a time hysteresis of one second;
//   (3) association/authentication state is shared among APs, so
//       reassociation is a single fast exchange (make-before-break).
//
// The stock variant reproduces §2's Linksys behaviour: the client does not
// even consider switching until it has collected a 5-second RSSI history
// from its current AP — longer than a 20 mph drive-through of a picocell.
//
// The baseline data plane has no cyclic queues and no controller fan-out:
// the wired distribution system bridges each client's traffic to its
// associated AP only, and packets buffered at an abandoned AP are lost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "core/control_messages.h"
#include "mac/wifi_device.h"
#include "net/backhaul.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/health.h"

namespace wgtt::baseline {

// ---------------------------------------------------------------------------
// Wired side
// ---------------------------------------------------------------------------

/// The distribution system (Ethernet switch + WLAN controller): bridges
/// downlink traffic to the AP each client is associated with and collects
/// uplink traffic from APs.
class Distribution {
 public:
  Distribution(sim::Scheduler& sched, net::Backhaul& backhaul,
               Time relearn_delay = Time::ms(15));

  std::function<void(net::PacketPtr)> on_uplink;

  void send_downlink(net::NodeId client, net::PacketPtr pkt);
  /// Called (via backhaul control traffic) when a client (re)associates.
  /// The bridge tables update after `relearn_delay`; the old AP is told to
  /// flush its stale queue for the client.
  void set_association(net::NodeId client, net::NodeId ap);
  net::NodeId associated_ap(net::NodeId client) const;

  std::uint64_t downlink_packets() const { return downlink_packets_; }
  std::uint64_t packets_dropped_no_assoc() const { return dropped_; }

 private:
  void on_backhaul_frame(const net::TunneledPacket& frame);

  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  obs::HealthEngine* health_ = nullptr;
  Time relearn_delay_;
  std::map<net::NodeId, net::NodeId> assoc_;          // effective (post-delay)
  std::map<net::NodeId, net::NodeId> pending_assoc_;  // announced, not live yet
  std::uint64_t downlink_packets_ = 0;
  std::uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------------
// AP side
// ---------------------------------------------------------------------------

struct BaselineApConfig {
  net::NodeId id = 0;
  net::NodeId distribution = net::kControllerId;
  Time beacon_interval = Time::ms(100);
  std::size_t kernel_queue_limit = 256;
};

/// Beacon body so clients can identify the sender.
struct BeaconMsg {
  net::NodeId ap = 0;
};
/// Distribution -> old AP: client moved away, flush its queue.
struct FlushClientMsg {
  net::NodeId client = 0;
};

class BaselineAp {
 public:
  BaselineAp(sim::Scheduler& sched, net::Backhaul& backhaul,
             mac::WifiDevice& device, BaselineApConfig cfg);

  net::NodeId id() const { return cfg_.id; }
  mac::WifiDevice& device() { return device_; }
  std::uint64_t stale_packets_flushed() const { return stale_flushed_; }

 private:
  void beacon();
  void on_backhaul_frame(const net::TunneledPacket& frame);
  void enqueue_downlink(net::NodeId client, net::PacketPtr pkt);
  void pump(net::NodeId client);
  void on_management(net::PacketPtr pkt, const mac::RxMeta& meta);

  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  mac::WifiDevice& device_;
  obs::HealthEngine* health_ = nullptr;
  BaselineApConfig cfg_;
  std::map<net::NodeId, std::deque<net::PacketPtr>> kernel_queues_;
  std::uint16_t next_aid_ = 1;
  std::uint64_t stale_flushed_ = 0;
};

// ---------------------------------------------------------------------------
// Client roaming agent
// ---------------------------------------------------------------------------

struct RoamingConfig {
  double rssi_threshold_dbm = -82.0;  // switch trigger (link already degrading)
  /// Time hysteresis (paper §5.1 point (2)): the below-threshold condition
  /// must *persist* for this long before the client roams.  A single fading
  /// upswing above the threshold resets the timer — which is why the
  /// paper's baseline switches only ~3 times in a 10 s transit (Fig. 15).
  Time hysteresis = Time::sec(1);
  double rssi_ewma_weight = 0.2;      // newest-beacon weight (sluggish tracking)
  /// Beacons older than this are forgotten (an AP we drove away from).
  Time rssi_expiry = Time::ms(1200);
  /// Stock 802.11r (§2): the decision additionally requires this much RSSI
  /// history — the Linksys "5-second history" rule.  Zero = enhanced mode.
  Time stock_history_requirement = Time::zero();
};

struct HandoverRecord {
  Time when;
  net::NodeId from_ap = 0;
  net::NodeId to_ap = 0;
  bool success = false;
  Time outage;  // time from decision to traffic flowing again
};

class RoamingClient {
 public:
  RoamingClient(sim::Scheduler& sched, mac::WifiDevice& device,
                RoamingConfig cfg);

  /// Begin: associate with the AP whose beacon we hear strongest (waits for
  /// the first beacon).
  void start();

  net::NodeId associated_ap() const { return associated_ap_; }
  const std::vector<HandoverRecord>& handovers() const { return handovers_; }
  /// Latest smoothed RSSI per AP (tests/diagnostics).
  double rssi_of(net::NodeId ap) const;

 private:
  void on_management(net::PacketPtr pkt, const mac::RxMeta& meta);
  void consider_roaming();
  void reassociate(net::NodeId target);

  struct RssiEntry {
    double rssi_dbm = -100.0;
    Time last_heard;
    Time first_heard;
  };

  sim::Scheduler& sched_;
  mac::WifiDevice& device_;
  RoamingConfig cfg_;
  std::map<net::NodeId, RssiEntry> rssi_;
  net::NodeId associated_ap_ = 0;
  Time associated_since_;
  Time last_handover_ = Time::zero();
  bool below_threshold_ = false;   // condition-persistence tracking
  Time below_threshold_since_;
  bool handover_in_progress_ = false;
  std::vector<HandoverRecord> handovers_;
};

}  // namespace wgtt::baseline
