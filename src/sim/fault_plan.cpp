#include "sim/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/rng.h"

namespace wgtt::sim {
namespace {

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

/// "250ms" / "80us" / "1.5s" -> Time.  The suffix is mandatory so specs
/// never silently mean the wrong unit.
bool parse_time(std::string_view v, Time& out) {
  double num = 0.0;
  std::size_t used = 0;
  try {
    num = std::stod(std::string(v), &used);
  } catch (...) {
    return false;
  }
  const std::string_view suffix = v.substr(used);
  if (suffix == "us") out = Time::us(num);
  else if (suffix == "ms") out = Time::ms(num);
  else if (suffix == "s") out = Time::sec(num);
  else return false;
  return true;
}

bool parse_kind(std::string_view v, FaultKind& out) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (v == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool is_link_kind(FaultKind k) {
  return k == FaultKind::kLinkDrop || k == FaultKind::kLinkLatency ||
         k == FaultKind::kPartition || k == FaultKind::kMsgDup ||
         k == FaultKind::kMsgReorder;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kApCrash: return "ap_crash";
    case FaultKind::kLinkDrop: return "link_drop";
    case FaultKind::kLinkLatency: return "link_latency";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kCsiFreeze: return "csi_freeze";
    case FaultKind::kCsiGarbage: return "csi_garbage";
    case FaultKind::kMsgDup: return "msg_dup";
    case FaultKind::kMsgReorder: return "msg_reorder";
    case FaultKind::kCtrlCrash: return "ctrl_crash";
  }
  return "?";
}

bool FaultPlan::parse(std::string_view spec, FaultPlan& out,
                      std::string* error) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos)
      return fail(error, "missing ':' in clause '" + std::string(clause) + "'");
    FaultEvent ev;
    if (!parse_kind(clause.substr(0, colon), ev.kind))
      return fail(error, "unknown fault kind '" +
                             std::string(clause.substr(0, colon)) + "'");

    bool have_at = false, have_node = false, have_rate = false;
    std::size_t kpos = colon + 1;
    while (kpos < clause.size()) {
      std::size_t kend = clause.find(',', kpos);
      if (kend == std::string_view::npos) kend = clause.size();
      const std::string_view kv = clause.substr(kpos, kend - kpos);
      kpos = kend + 1;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos)
        return fail(error, "missing '=' in '" + std::string(kv) + "'");
      const std::string_view key = kv.substr(0, eq);
      const std::string_view val = kv.substr(eq + 1);
      if (key == "ap" || key == "src") {
        ev.node = static_cast<std::uint32_t>(std::atoll(std::string(val).c_str()));
        have_node = true;
      } else if (key == "dst") {
        ev.peer = static_cast<std::uint32_t>(std::atoll(std::string(val).c_str()));
      } else if (key == "at") {
        if (!parse_time(val, ev.at))
          return fail(error, "bad time '" + std::string(val) + "' (use us/ms/s)");
        have_at = true;
      } else if (key == "for") {
        if (!parse_time(val, ev.duration))
          return fail(error, "bad time '" + std::string(val) + "' (use us/ms/s)");
      } else if (key == "rate") {
        ev.rate = std::atof(std::string(val).c_str());
        if (!(ev.rate >= 0.0 && ev.rate <= 1.0))
          return fail(error, "rate must be in [0, 1]");
        have_rate = true;
      } else if (key == "extra") {
        if (!parse_time(val, ev.extra))
          return fail(error, "bad time '" + std::string(val) + "' (use us/ms/s)");
      } else {
        return fail(error, "unknown key '" + std::string(key) + "'");
      }
    }
    // ctrl_crash always targets the controller (node 0), so its node id is
    // optional; every other kind must name the faulted AP / link endpoint.
    if (!have_node && ev.kind != FaultKind::kCtrlCrash)
      return fail(error, std::string(to_string(ev.kind)) +
                             ": missing ap=/src= node id");
    if (!have_at)
      return fail(error, std::string(to_string(ev.kind)) + ": missing at=");
    if (ev.kind == FaultKind::kLinkDrop && ev.rate <= 0.0)
      return fail(error, "link_drop: missing rate=");
    if (ev.kind == FaultKind::kLinkLatency && ev.extra <= Time::zero())
      return fail(error, "link_latency: missing extra=");
    // Unlike link_drop (where the 1.0 default means blackout), a dup or
    // reorder burst has no meaningful default probability: require rate=.
    if (ev.kind == FaultKind::kMsgDup && (!have_rate || ev.rate <= 0.0))
      return fail(error, "msg_dup: missing rate=");
    if (ev.kind == FaultKind::kMsgReorder && (!have_rate || ev.rate <= 0.0))
      return fail(error, "msg_reorder: missing rate=");
    if (ev.kind == FaultKind::kMsgReorder && ev.extra <= Time::zero())
      return fail(error, "msg_reorder: missing extra= (jitter bound)");
    plan.events.push_back(ev);
  }
  out = std::move(plan);
  return true;
}

FaultPlan FaultPlan::chaos(double intensity, Time horizon,
                           std::uint32_t n_aps, std::uint64_t seed) {
  FaultPlan plan;
  if (intensity <= 0.0 || horizon <= Time::zero() || n_aps == 0) return plan;
  Rng rng = Rng(seed).fork("chaos");
  const double horizon_s = horizon.to_sec();
  const auto n = static_cast<std::size_t>(std::llround(intensity * horizon_s));
  const Time lo = horizon * 0.15;
  const Time hi = horizon * 0.85;
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(rng.uniform_int(
        0, static_cast<std::int64_t>(kClassicChaosKindCount) - 1));
    ev.node = static_cast<std::uint32_t>(rng.uniform_int(1, n_aps));
    ev.peer = 0;  // link faults hit the AP <-> controller leg
    ev.at = Time::ns(rng.uniform_int(lo.to_ns(), hi.to_ns()));
    ev.duration = Time::ms(rng.uniform(80.0, 400.0));
    ev.rate = rng.uniform(0.3, 0.9);
    ev.extra = Time::ms(rng.uniform(2.0, 20.0));
    plan.events.push_back(ev);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

FaultPlan FaultPlan::control_chaos(double intensity, Time horizon,
                                   std::uint32_t n_aps, std::uint64_t seed,
                                   unsigned kind_mask) {
  FaultPlan plan;
  if (intensity <= 0.0 || horizon <= Time::zero() || n_aps == 0) return plan;
  std::vector<FaultKind> kinds;
  if (kind_mask & kChaosMsgDup) kinds.push_back(FaultKind::kMsgDup);
  if (kind_mask & kChaosMsgReorder) kinds.push_back(FaultKind::kMsgReorder);
  if (kind_mask & kChaosCtrlCrash) kinds.push_back(FaultKind::kCtrlCrash);
  if (kind_mask & kChaosLinkDrop) kinds.push_back(FaultKind::kLinkDrop);
  if (kind_mask & kChaosLinkLatency) kinds.push_back(FaultKind::kLinkLatency);
  if (kinds.empty()) return plan;
  Rng rng = Rng(seed).fork("control-chaos");
  const double horizon_s = horizon.to_sec();
  const auto n = static_cast<std::size_t>(std::llround(intensity * horizon_s));
  // Windows end by 75% of the horizon plus the longest duration below, so
  // the fuzzer's reconvergence check always has fault-free tail time.
  const Time lo = horizon * 0.10;
  const Time hi = horizon * 0.75;
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.kind = kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
    ev.node = static_cast<std::uint32_t>(rng.uniform_int(1, n_aps));
    ev.peer = 0;  // control traffic rides the AP <-> controller leg
    ev.at = Time::ns(rng.uniform_int(lo.to_ns(), hi.to_ns()));
    ev.duration = Time::ms(rng.uniform(60.0, 250.0));
    ev.rate = rng.uniform(0.2, 0.8);
    ev.extra = Time::ms(rng.uniform(1.0, 8.0));
    if (ev.kind == FaultKind::kCtrlCrash) {
      ev.node = 0;
      // Keep controller blackouts short relative to the horizon: the
      // interesting behaviour is the warm restart, not a long outage.
      ev.duration = Time::ms(rng.uniform(40.0, 120.0));
    }
    plan.events.push_back(ev);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

std::string FaultPlan::describe() const {
  if (events.empty()) return "no faults";
  std::string out;
  char line[160];
  for (const FaultEvent& ev : events) {
    std::snprintf(line, sizeof line, "%s node=%u peer=%u at=%.3fs for=%.0fms",
                  to_string(ev.kind), ev.node, ev.peer, ev.at.to_sec(),
                  ev.duration.to_ms());
    out += line;
    if (ev.kind == FaultKind::kLinkDrop || ev.kind == FaultKind::kMsgDup ||
        ev.kind == FaultKind::kMsgReorder) {
      std::snprintf(line, sizeof line, " rate=%.2f", ev.rate);
      out += line;
    }
    if (ev.kind == FaultKind::kLinkLatency ||
        ev.kind == FaultKind::kMsgReorder) {
      std::snprintf(line, sizeof line, " extra=%.1fms", ev.extra.to_ms());
      out += line;
    }
    out += '\n';
  }
  return out;
}

}  // namespace wgtt::sim
