#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>

#include "util/causal.h"

namespace wgtt::sim {

Scheduler::Scheduler() {
  if (auto* reg = metrics::MetricsRegistry::current()) {
    m_dispatched_ = &reg->counter("sim.events_dispatched");
    m_cancelled_ = &reg->counter("sim.events_cancelled");
    m_queue_depth_ = &reg->histogram(
        "sim.queue_depth", metrics::exponential_buckets(1.0, 2.0, 14));
  }
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_dispatch_ = &p->section("sim.dispatch");
  }
  if (auto* c = obs::CausalTracer::current()) {
    causal_ = c;
    // Annotation sites pull current_event()/now() through the tracer, so
    // they need no scheduler reference of their own.
    c->bind(this);
  }
}

EventId Scheduler::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "cannot schedule in the past");
  const std::uint64_t seq = next_seq_++;
  // Parent capture: an event scheduled while another's callback runs is
  // caused by it; current_event_ is 0 for root (setup-time) schedules.
  if (causal_) causal_->edge(seq, current_event_, when);
  queue_.push(Event{when, seq, std::move(cb)});
  ++pending_;
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
  return EventId{seq};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid() || id.seq_ >= next_seq_ || has_popped(id.seq_)) return false;
  // Lazy cancellation: record the sequence number; the event is skipped when
  // it reaches the head of the queue.
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id.seq_);
  if (it != cancelled_.end() && *it == id.seq_) return false;
  cancelled_.insert(it, id.seq_);
  // Cancelled now, so no longer pending; the queue entry is skipped (with
  // no further pending_ adjustment) when it reaches the head.
  --pending_;
  if (m_cancelled_) m_cancelled_->add();
  return true;
}

bool Scheduler::is_cancelled(std::uint64_t seq) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
}

bool Scheduler::has_popped(std::uint64_t seq) const {
  return seq <= popped_low_water_ ||
         std::binary_search(popped_ahead_.begin(), popped_ahead_.end(), seq);
}

void Scheduler::record_pop(std::uint64_t seq) {
  if (seq != popped_low_water_ + 1) {
    popped_ahead_.insert(
        std::lower_bound(popped_ahead_.begin(), popped_ahead_.end(), seq),
        seq);
    return;
  }
  popped_low_water_ = seq;
  // Absorb any contiguous run the out-of-order set was holding.
  auto it = popped_ahead_.begin();
  while (it != popped_ahead_.end() && *it == popped_low_water_ + 1) {
    popped_low_water_ = *it;
    ++it;
  }
  popped_ahead_.erase(popped_ahead_.begin(), it);
}

void Scheduler::run_until(Time until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    // Move the callback out before popping so re-entrant schedules are safe.
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    record_pop(ev.seq);
    if (is_cancelled(ev.seq)) {
      auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), ev.seq);
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++executed_;
    --pending_;
    if (m_dispatched_) {
      m_dispatched_->add();
      m_queue_depth_->record(static_cast<double>(queue_.size()));
    }
    // "sim.dispatch" covers the whole callback; nested sections (channel,
    // MAC, controller, ...) carve their exclusive self-time out of it.
    prof::ScopedSection timer(prof_, p_dispatch_);
    current_event_ = ev.seq;
    ev.cb();
    current_event_ = 0;
  }
  // On a bounded run, advance the clock to the bound so callers can chain
  // run_until() calls; a stop() leaves the clock at the last executed event.
  if (!stopped_ && until < Time::infinity() && now_ < until) now_ = until;
}

void Scheduler::run() { run_until(Time::infinity()); }

}  // namespace wgtt::sim
