#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>

namespace wgtt::sim {

EventId Scheduler::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "cannot schedule in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(cb)});
  return EventId{seq};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid() || id.seq_ >= next_seq_) return false;
  // Lazy cancellation: record the sequence number; the event is skipped when
  // it reaches the head of the queue.
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id.seq_);
  if (it != cancelled_.end() && *it == id.seq_) return false;
  cancelled_.insert(it, id.seq_);
  return true;
}

bool Scheduler::is_cancelled(std::uint64_t seq) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
}

void Scheduler::run_until(Time until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    // Move the callback out before popping so re-entrant schedules are safe.
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    if (is_cancelled(ev.seq)) {
      auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), ev.seq);
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.cb();
  }
  // On a bounded run, advance the clock to the bound so callers can chain
  // run_until() calls; a stop() leaves the clock at the last executed event.
  if (!stopped_ && until < Time::infinity() && now_ < until) now_ = until;
}

void Scheduler::run() { run_until(Time::infinity()); }

}  // namespace wgtt::sim
