// Discrete-event simulation core.
//
// A single-threaded, deterministic event loop: events fire in (time, insertion
// order) so two events at the same instant execute in the order they were
// scheduled.  Every latency in the system — frame airtime, Ethernet backhaul
// delay, driver processing, protocol timeouts — is an event on this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/metrics.h"
#include "util/profiler.h"
#include "util/time.h"

namespace wgtt::obs {
class CausalTracer;
}  // namespace wgtt::obs

namespace wgtt::sim {

/// Handle for cancelling a scheduled event.  Cancellation is lazy: the event
/// stays in the queue but its callback is not invoked.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Scheduler;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `cb` to run `delay` after the current time.
  EventId schedule(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at an absolute time (must not be in the past).
  EventId schedule_at(Time when, Callback cb);

  /// Cancel a pending event.  Returns false if it already fired, was
  /// already cancelled, or was never scheduled: cancelling a stale id is a
  /// recognised no-op, not a deferred cancellation.
  bool cancel(EventId id);

  /// Run until the event queue is empty or `until` is reached, whichever
  /// comes first.  The clock is left at the time of the last executed event
  /// (or at `until` if it is reached).
  void run_until(Time until);

  /// Run until the queue drains completely.
  void run();

  /// Stop the run loop after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for micro-benchmarks / diagnostics).
  std::uint64_t events_executed() const { return executed_; }
  /// Events scheduled but not yet fired or cancelled.  Maintained as an
  /// explicit counter: the former `queue_.size() - cancelled_.size()`
  /// expression relied on the invariant that every cancelled seq is still
  /// queued — true today, but one missed guard away from a size_t underflow
  /// that reads as ~18 quintillion pending events on a health gauge.  The
  /// counter is exact and underflow-immune by construction.
  std::size_t events_pending() const { return pending_; }
  /// High-water mark of the raw queue size (health-engine resource gauge:
  /// a runaway event loop shows up here before it exhausts memory).
  std::size_t peak_pending() const { return peak_pending_; }

  /// Causal id (the seq) of the event whose callback is currently being
  /// dispatched, 0 outside dispatch.  Every schedule() performed while an
  /// event runs records this as the new event's parent — the contract the
  /// causal event graph (util/causal.h) is built on.  Maintained
  /// unconditionally (two plain stores per dispatch); the edge emission
  /// itself is one branch, so runs without a CausalTracer are unchanged.
  std::uint64_t current_event() const { return current_event_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool is_cancelled(std::uint64_t seq) const;
  bool has_popped(std::uint64_t seq) const;
  void record_pop(std::uint64_t seq);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint64_t current_event_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted insert-order, searched rarely
  // Popped-seq tracking so cancel() can reject ids that already left the
  // queue.  Events pop in time order, not seq order, so alongside the
  // low-water mark (every seq <= it has popped) we keep the sparse set of
  // popped seqs above it; the set drains back into the mark as it advances,
  // keeping memory proportional to the out-of-order window, not history.
  std::uint64_t popped_low_water_ = 0;
  std::vector<std::uint64_t> popped_ahead_;  // sorted, all > popped_low_water_
  // Instrumentation, cached from the context-current registry at
  // construction; null (every site a single branch) when metrics are off.
  metrics::Counter* m_dispatched_ = nullptr;
  metrics::Counter* m_cancelled_ = nullptr;
  metrics::Histogram* m_queue_depth_ = nullptr;
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_dispatch_ = nullptr;
  // Causal event-graph observer, cached from the context-current tracer at
  // construction (null — a single branch per schedule — when tracing is
  // off, which the golden-trace suites pin as byte-identical).
  obs::CausalTracer* causal_ = nullptr;
};

}  // namespace wgtt::sim
