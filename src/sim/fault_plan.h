// Deterministic infrastructure fault schedules.
//
// A FaultPlan is a declarative list of infrastructure faults — AP crashes,
// backhaul drop bursts / latency spikes / partitions, CSI staleness or
// corruption — each pinned to a window on the *simulated* clock.  The plan
// is plain data (no scheduler or RNG state) so it lives in TestbedConfig by
// value and copies across sweep threads; net::FaultInjector turns it into
// scheduled onset/clear events at Testbed construction.
//
// An empty plan is the common case and must stay free: Testbed only
// constructs an injector when the plan is non-empty, so fault-free runs are
// bitwise-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace wgtt::sim {

enum class FaultKind : std::uint8_t {
  kApCrash,      // AP down: queues purged, radio silent, no heartbeats
  kLinkDrop,     // backhaul link drops frames with probability `rate`
  kLinkLatency,  // backhaul link adds `extra` one-way latency
  kPartition,    // backhaul link delivers nothing
  kCsiFreeze,    // AP keeps reporting CSI but the measurement is stale
  kCsiGarbage,   // AP reports CSI with random subcarrier SNRs
  kMsgDup,       // backhaul link duplicates control frames with prob `rate`
  kMsgReorder,   // control frames gain uniform extra delay in (0, `extra`],
                 // bypassing the per-link FIFO guarantee (reordering)
  kCtrlCrash,    // controller down: control state lost, warm restart + resync
};

constexpr std::size_t kFaultKindCount = 9;

/// Kinds the legacy chaos() generator draws from.  Frozen at the PR-5 set:
/// enlarging the draw range would silently reshuffle every existing chaos
/// plan (and its committed baselines) for a given seed.  The control-plane
/// kinds are reachable only through explicit specs and control_chaos().
constexpr std::size_t kClassicChaosKindCount = 6;

const char* to_string(FaultKind k);

/// One fault window [at, at + duration).  `node` is the faulted AP (or one
/// backhaul endpoint for link kinds); `peer` is the other link endpoint
/// (0 = the controller).  Link impairments are symmetric: they apply to
/// frames in both directions.  A non-positive duration means the fault
/// never clears.
struct FaultEvent {
  FaultKind kind = FaultKind::kApCrash;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  Time at;
  Time duration;
  double rate = 1.0;  // kLinkDrop: per-frame drop probability
  Time extra;         // kLinkLatency: added one-way latency
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Parse the `--faults=SPEC` grammar (EXPERIMENTS.md "Chaos sweeps"):
  ///
  ///   SPEC   := clause (';' clause)*
  ///   clause := KIND ':' key '=' value (',' key '=' value)*
  ///   KIND   := ap_crash | link_drop | link_latency | partition |
  ///             csi_freeze | csi_garbage | msg_dup | msg_reorder |
  ///             ctrl_crash
  ///   keys   := ap (node id) | src | dst | at | for | rate | extra
  ///   times  := <number> suffixed us | ms | s
  ///
  /// e.g. "ap_crash:ap=3,at=1s,for=500ms;link_drop:src=2,at=2s,for=1s,rate=0.5"
  /// ctrl_crash targets the controller, so its node id is optional; msg_dup
  /// requires rate= and msg_reorder requires rate= and extra= (jitter bound).
  /// Returns false (and sets *error if given) on a malformed spec.
  static bool parse(std::string_view spec, FaultPlan& out,
                    std::string* error = nullptr);

  /// A deterministic pseudo-random plan: roughly `intensity` faults per
  /// simulated second over [15%, 85%] of `horizon`, drawn from a dedicated
  /// RNG stream so the same (intensity, horizon, n_aps, seed) always yields
  /// the same plan.  intensity <= 0 yields an empty plan.  Draws only the
  /// classic PR-5 kinds (see kClassicChaosKindCount).
  static FaultPlan chaos(double intensity, Time horizon, std::uint32_t n_aps,
                         std::uint64_t seed);

  /// Bitmask selecting which kinds control_chaos() may draw.
  enum : unsigned {
    kChaosMsgDup = 1u << 0,
    kChaosMsgReorder = 1u << 1,
    kChaosCtrlCrash = 1u << 2,
    kChaosLinkDrop = 1u << 3,
    kChaosLinkLatency = 1u << 4,
    kChaosControlAll = (1u << 5) - 1,
  };

  /// The protocol fuzzer's schedule generator: a deterministic adversarial
  /// control-plane plan of roughly `intensity` faults per simulated second
  /// drawn from the kinds enabled in `kind_mask`, windows confined to
  /// [10%, 75%] of `horizon` so every fault clears with convergence
  /// headroom before the run ends.  Its own RNG stream ("control-chaos")
  /// keeps it independent of chaos() for the same seed.
  static FaultPlan control_chaos(double intensity, Time horizon,
                                 std::uint32_t n_aps, std::uint64_t seed,
                                 unsigned kind_mask = kChaosControlAll);

  /// Human-readable one-per-line summary for bench/CLI output.
  std::string describe() const;
};

}  // namespace wgtt::sim
