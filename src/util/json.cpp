#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wgtt {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_in_scope_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view v) {
  comma();
  out_ += v;
  return *this;
}

bool write_text_file(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (written != contents.size()) std::fclose(f);
  return ok;
}

bool read_text_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::string(fallback);
}

namespace {

// Recursive-descent parser over a string_view; positions are byte offsets for
// error messages.  Depth is bounded to keep hostile inputs from overflowing
// the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    bool ok = parse_value(out, 0);
    if (ok) {
      skip_ws();
      if (pos_ != text_.size()) {
        ok = fail("trailing characters after document");
      }
    }
    if (!ok && error != nullptr) *error = error_;
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else return fail("bad hex digit in \\u escape");
      out = out * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return fail("unescaped control character in string");
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half immediately after.
            if (!literal("\\u")) return fail("lone high surrogate");
            unsigned low;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out = JsonValue(v);
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      JsonValue::Object obj;
      skip_ws();
      if (!consume('}')) {
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          JsonValue member;
          if (!parse_value(member, depth + 1)) return false;
          obj.insert_or_assign(std::move(key), std::move(member));
          skip_ws();
          if (consume(',')) continue;
          if (consume('}')) break;
          return fail("expected ',' or '}'");
        }
      }
      out = JsonValue(std::move(obj));
      return true;
    }
    if (c == '[') {
      ++pos_;
      JsonValue::Array arr;
      skip_ws();
      if (!consume(']')) {
        while (true) {
          JsonValue element;
          if (!parse_value(element, depth + 1)) return false;
          arr.push_back(std::move(element));
          skip_ws();
          if (consume(',')) continue;
          if (consume(']')) break;
          return fail("expected ',' or ']'");
        }
      }
      out = JsonValue(std::move(arr));
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = JsonValue(std::move(s));
      return true;
    }
    if (literal("null")) {
      out = JsonValue();
      return true;
    }
    if (literal("true")) {
      out = JsonValue(true);
      return true;
    }
    if (literal("false")) {
      out = JsonValue(false);
      return true;
    }
    return parse_number(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  return JsonParser(text).parse(out, error);
}

}  // namespace wgtt
