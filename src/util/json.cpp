#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace wgtt {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_in_scope_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view v) {
  comma();
  out_ += v;
  return *this;
}

bool write_text_file(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (written != contents.size()) std::fclose(f);
  return ok;
}

}  // namespace wgtt
