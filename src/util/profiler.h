// Scoped host-time profiler: where does simulator CPU actually go?
//
// Unlike the metrics registry and tracer (which observe *simulated* events on
// the simulated clock), the profiler measures *host* wall-clock spent inside
// instrumented sections — scheduler dispatch, channel CSI synthesis, MAC
// exchanges, PHY rate selection, controller passes — so bench reports can
// track the simulator's own performance across commits.
//
// Attribution is exclusive (self-time): when sections nest, elapsed time is
// charged to the innermost open section only, so the per-section totals of a
// run always sum to no more than the run's wall time.  Like LogSink /
// MetricsRegistry / Tracer, a Profiler is owned by one Testbed, installed as
// the constructing thread's context-current profiler for the Testbed's
// lifetime, and components cache `Profiler::current()` plus typed Section
// pointers at construction — a null pointer (profiling off) makes every
// timed site a single branch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wgtt {
class JsonWriter;
}

namespace wgtt::prof {

/// One named section's accumulated self-time.  References returned by
/// Profiler::section() stay valid for the profiler's lifetime.
struct Section {
  std::uint64_t calls = 0;
  std::int64_t self_ns = 0;
};

/// Registry-independent copy of every section — what lands in RunReport's
/// "profile" block.  Ordered lexicographically by name (deterministic JSON).
struct ProfileSnapshot {
  struct Entry {
    std::string name;
    std::uint64_t calls = 0;
    std::int64_t self_ns = 0;
  };
  std::vector<Entry> sections;

  bool empty() const { return sections.empty(); }
  /// Sum of all sections' self-time; <= the run's host wall time by
  /// construction (exclusive attribution, sections only open inside the run).
  std::int64_t total_ns() const;
  /// {"sections":{name:{"calls":..,"self_ns":..},..},"total_ns":..}
  void write_json(JsonWriter& w) const;
  std::string to_json() const;
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Find-or-create by name; the reference is stable (node-based map).
  Section& section(std::string_view name);

  ProfileSnapshot snapshot() const;

  /// The profiler the calling thread's current simulation times into, or
  /// nullptr when profiling is off (the default outside a Testbed).
  static Profiler* current();

  /// Monotonic host clock in nanoseconds.
  static std::int64_t now_ns();

 private:
  friend class ScopedSection;
  friend class ScopedProfiler;

  // Exclusive attribution: elapsed host time is always charged to the top of
  // the open-section stack; entering or leaving a section settles the time
  // accrued since the last transition.
  void enter(Section& s);
  void leave();

  std::map<std::string, Section, std::less<>> sections_;
  std::vector<Section*> stack_;
  std::int64_t last_mark_ns_ = 0;
};

/// RAII timed scope.  A null profiler makes construction and destruction a
/// single branch each; scopes are strictly LIFO (C++ scoping guarantees it).
class ScopedSection {
 public:
  ScopedSection(Profiler* profiler, Section* section) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->enter(*section);
  }
  ~ScopedSection() {
    if (profiler_ != nullptr) profiler_->leave();
  }
  ScopedSection(const ScopedSection&) = delete;
  ScopedSection& operator=(const ScopedSection&) = delete;

 private:
  Profiler* profiler_;
};

/// Install `profiler` as the calling thread's current profiler for this
/// object's lifetime (RAII; nests).  Passing nullptr keeps the current one.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler* profiler);
  ~ScopedProfiler();
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* installed_ = nullptr;
  Profiler* previous_ = nullptr;
};

}  // namespace wgtt::prof
