// A small hand-rolled JSON writer — just enough to serialize bench reports
// (objects, arrays, strings, numbers, booleans) without an external
// dependency.  Output is UTF-8 with standard escaping; non-finite doubles
// become null so downstream parsers never see "nan".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wgtt {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Streaming writer.  Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.field("bench", "fig13").field("jobs", 8);
///   w.key("runs").begin_array();
///   ... w.begin_object()...end_object() per run ...
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
///
/// The writer tracks nesting and comma placement; keys are only legal inside
/// objects, values only at the top level, inside arrays, or after a key.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();
  /// Emit a pre-formatted JSON value verbatim (caller guarantees validity).
  /// Used where the byte-exact rendering matters, e.g. trace timestamps
  /// formatted with integer arithmetic.
  JsonWriter& raw(std::string_view v);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_in_scope_;  // per nesting level
  bool after_key_ = false;
};

/// Write `contents` to `path` atomically enough for bench output (truncate +
/// write).  Returns false (and leaves a partial file possible) on I/O error.
bool write_text_file(const std::string& path, std::string_view contents);

}  // namespace wgtt
