// A small hand-rolled JSON writer and parser — just enough to serialize and
// re-load bench reports (objects, arrays, strings, numbers, booleans) without
// an external dependency.  Output is UTF-8 with standard escaping; non-finite
// doubles become null so downstream parsers never see "nan".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wgtt {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Streaming writer.  Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.field("bench", "fig13").field("jobs", 8);
///   w.key("runs").begin_array();
///   ... w.begin_object()...end_object() per run ...
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
///
/// The writer tracks nesting and comma placement; keys are only legal inside
/// objects, values only at the top level, inside arrays, or after a key.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();
  /// Emit a pre-formatted JSON value verbatim (caller guarantees validity).
  /// Used where the byte-exact rendering matters, e.g. trace timestamps
  /// formatted with integer arithmetic.
  JsonWriter& raw(std::string_view v);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_in_scope_;  // per nesting level
  bool after_key_ = false;
};

/// Write `contents` to `path` atomically enough for bench output (truncate +
/// write).  Returns false (and leaves a partial file possible) on I/O error.
bool write_text_file(const std::string& path, std::string_view contents);

/// Read a whole text file into `out`.  Returns false on I/O error.
bool read_text_file(const std::string& path, std::string& out);

/// Parsed JSON document.  Numbers are kept as double (bench reports never
/// exceed 2^53); object keys are ordered (std::map) so iteration is
/// deterministic regardless of input order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), num_(n) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  const Object& as_object() const { return obj_; }

  /// Object member lookup; nullptr when absent or when this isn't an object.
  const JsonValue* find(std::string_view key) const;
  /// Convenience accessors with fallbacks for absent/mistyped members.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string_view fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse a complete JSON document.  On success returns true and fills `out`;
/// on failure returns false and `error` (if non-null) describes the problem
/// with a byte offset.  Accepts exactly what JsonWriter emits plus standard
/// JSON (whitespace, \uXXXX escapes decoded to UTF-8, null/true/false).
bool json_parse(std::string_view text, JsonValue& out, std::string* error = nullptr);

}  // namespace wgtt
