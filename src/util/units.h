// Unit conversions used throughout the channel / PHY layers.
#pragma once

#include <cmath>

namespace wgtt {

/// Decibel <-> linear power-ratio conversions.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

/// dBm <-> milliwatt conversions (power levels rather than ratios).
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Vehicular speed: the paper quotes all speeds in mph.
inline double mph_to_mps(double mph) { return mph * 0.44704; }
inline double mps_to_mph(double mps) { return mps / 0.44704; }

/// Thermal noise floor for bandwidth `bw_hz` at room temperature with the
/// given receiver noise figure, in dBm. kT = -174 dBm/Hz.
inline double noise_floor_dbm(double bw_hz, double noise_figure_db) {
  return -174.0 + 10.0 * std::log10(bw_hz) + noise_figure_db;
}

/// Free-space wavelength in meters for carrier frequency in Hz.
inline double wavelength_m(double freq_hz) { return 299792458.0 / freq_hz; }

constexpr double kPi = 3.14159265358979323846;

inline double deg_to_rad(double deg) { return deg * kPi / 180.0; }
inline double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

}  // namespace wgtt
