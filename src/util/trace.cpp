#include "util/trace.h"

#include <cassert>

namespace wgtt::trace {

Tracer::Tracer() {
  w_.begin_object();
  w_.field("displayTimeUnit", "ms");
  w_.key("traceEvents").begin_array();
}

std::string Tracer::format_ts(Time t) {
  std::int64_t ns = t.to_ns();
  assert(ns >= 0 && "trace timestamps are sim times, never negative");
  const std::int64_t us = ns / 1000;
  const std::int64_t frac = ns % 1000;
  std::string out = std::to_string(us);
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

void Tracer::begin_event(char ph, std::string_view cat, std::string_view name,
                         Time ts, std::int64_t tid) {
  assert(!finished_ && "trace already finished");
  ++events_;
  w_.begin_object();
  w_.field("name", name);
  w_.field("cat", cat);
  const char ph_str[2] = {ph, '\0'};
  w_.field("ph", static_cast<const char*>(ph_str));
  w_.key("ts").raw(format_ts(ts));
  w_.field("pid", std::int64_t{1});
  w_.field("tid", tid);
}

void Tracer::write_args(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return;
  w_.key("args").begin_object();
  for (const TraceArg& a : args) w_.field(a.key, a.value);
  w_.end_object();
}

void Tracer::instant(std::string_view cat, std::string_view name, Time t,
                     std::int64_t tid, std::initializer_list<TraceArg> args) {
  begin_event('i', cat, name, t, tid);
  w_.field("s", "t");  // thread-scoped instant
  write_args(args);
  w_.end_object();
}

void Tracer::complete(std::string_view cat, std::string_view name, Time start,
                      Time dur, std::int64_t tid,
                      std::initializer_list<TraceArg> args) {
  begin_event('X', cat, name, start, tid);
  w_.key("dur").raw(format_ts(dur));
  write_args(args);
  w_.end_object();
}

void Tracer::flow_start(std::string_view cat, std::string_view name, Time t,
                        std::uint64_t id, std::int64_t tid) {
  begin_event('s', cat, name, t, tid);
  w_.field("id", static_cast<std::int64_t>(id));
  w_.end_object();
}

void Tracer::flow_finish(std::string_view cat, std::string_view name, Time t,
                         std::uint64_t id, std::int64_t tid) {
  begin_event('f', cat, name, t, tid);
  // Bind to the enclosing slice's end so the arrow lands on the event that
  // completes the flow, not on the next slice of the track.
  w_.field("bp", "e");
  w_.field("id", static_cast<std::int64_t>(id));
  w_.end_object();
}

void Tracer::counter(std::string_view cat, std::string_view name, Time t,
                     double value, std::int64_t tid) {
  begin_event('C', cat, name, t, tid);
  w_.key("args").begin_object();
  w_.field("value", value);
  w_.end_object();
  w_.end_object();
}

const std::string& Tracer::finish() {
  if (!finished_) {
    w_.end_array();
    w_.end_object();
    finished_ = true;
  }
  return w_.str();
}

// ---------------------------------------------------------------------------
// Thread context
// ---------------------------------------------------------------------------

namespace {
thread_local Tracer* t_current_tracer = nullptr;
}  // namespace

Tracer* Tracer::current() { return t_current_tracer; }

ScopedTracer::ScopedTracer(Tracer* tracer) : installed_(tracer) {
  if (installed_ != nullptr) {
    previous_ = t_current_tracer;
    t_current_tracer = installed_;
  }
}

ScopedTracer::~ScopedTracer() {
  if (installed_ != nullptr) t_current_tracer = previous_;
}

}  // namespace wgtt::trace
