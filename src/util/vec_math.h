// Vectorized elementary-function kernels for the hot paths.
//
// These wrap glibc's libmvec AVX2 variants (_ZGVdN4v_exp10 & friends) behind
// plain double-array entry points.  They are the "optimized" side of the
// reference-vs-optimized seam (DESIGN.md): results are NOT bitwise identical
// to scalar libm — libmvec documents a worst-case error of 4 ulp per element
// — so every consumer keeps the original scalar implementation alive
// (ReferenceFading, phy::reference_effective_snr_db) and the differential
// suite (tests/fading_diff_test.cpp) bounds the divergence.
//
// Consumers must preserve the reference summation ORDER when they reduce
// vectorized elements, so the seam's only divergence is per-element ulps
// from the transcendental kernels, never reassociation.
//
// When libmvec or AVX2 is unavailable (non-x86-64, non-glibc, old CPU),
// available() is false and callers fall back to the scalar reference path;
// outputs are then bit-identical to the pre-optimization simulator, but the
// canonical golden hashes are pinned from the vectorized path.
#pragma once

#include <cstddef>

namespace wgtt::vecm {

/// True when the libmvec kernels were compiled in AND the CPU supports
/// AVX2.  Constant after first call; cheap to query on hot paths.
bool available();

/// out[i] = pow(10, x[i] / 10)  — db_to_linear / dbm_to_mw, <= ~4 ulp.
void db_to_linear(const double* x, double* out, std::size_t n);

/// out[i] = 10 * log10(x[i])  — linear_to_db / mw_to_dbm, <= ~4 ulp.
void linear_to_db(const double* x, double* out, std::size_t n);

/// out[i] = erfc(x[i]), <= ~4 ulp.
void erfc(const double* x, double* out, std::size_t n);

/// cos_out[i] = cos(x[i]); sin_out[i] = sin(x[i]), <= ~4 ulp.
void sin_cos(const double* x, double* cos_out, double* sin_out,
             std::size_t n);

}  // namespace wgtt::vecm
