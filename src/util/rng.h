// Deterministic random number generation.
//
// Every stochastic element of the simulation (fading tap phases, shadowing,
// packet error draws, MAC backoff) pulls from an Rng derived from a single
// experiment seed, so whole end-to-end runs are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <string_view>

namespace wgtt {

/// xoshiro256** PRNG.  Small, fast, high quality; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// True with probability p.
  bool bernoulli(double p);

  /// Derive an independent child generator.  `tag` separates streams that
  /// share the same parent (e.g. one per AP-client link).
  Rng fork(std::uint64_t tag) const;
  Rng fork(std::string_view tag) const;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace wgtt
