#include "util/profiler.h"

#include <chrono>

#include "util/json.h"

namespace wgtt::prof {

namespace {
thread_local Profiler* t_current_profiler = nullptr;
}  // namespace

std::int64_t ProfileSnapshot::total_ns() const {
  std::int64_t total = 0;
  for (const Entry& e : sections) total += e.self_ns;
  return total;
}

void ProfileSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("sections");
  w.begin_object();
  for (const Entry& e : sections) {
    w.key(e.name);
    w.begin_object();
    w.field("calls", e.calls);
    w.field("self_ns", e.self_ns);
    w.end_object();
  }
  w.end_object();
  w.field("total_ns", total_ns());
  w.end_object();
}

std::string ProfileSnapshot::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

Section& Profiler::section(std::string_view name) {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    it = sections_.emplace(std::string(name), Section{}).first;
  }
  return it->second;
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snap;
  snap.sections.reserve(sections_.size());
  for (const auto& [name, s] : sections_) {
    // Components cache sections at construction; ones they never entered
    // carry no information and would only pad the reports.
    if (s.calls == 0) continue;
    snap.sections.push_back({name, s.calls, s.self_ns});
  }
  return snap;
}

Profiler* Profiler::current() { return t_current_profiler; }

std::int64_t Profiler::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Profiler::enter(Section& s) {
  const std::int64_t now = now_ns();
  if (!stack_.empty()) stack_.back()->self_ns += now - last_mark_ns_;
  s.calls += 1;
  stack_.push_back(&s);
  last_mark_ns_ = now;
}

void Profiler::leave() {
  const std::int64_t now = now_ns();
  if (!stack_.empty()) {
    stack_.back()->self_ns += now - last_mark_ns_;
    stack_.pop_back();
  }
  last_mark_ns_ = now;
}

ScopedProfiler::ScopedProfiler(Profiler* profiler) {
  if (profiler == nullptr) return;
  installed_ = profiler;
  previous_ = t_current_profiler;
  t_current_profiler = profiler;
}

ScopedProfiler::~ScopedProfiler() {
  if (installed_ != nullptr) t_current_profiler = previous_;
}

}  // namespace wgtt::prof
