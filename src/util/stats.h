// Online and batch statistics used by the experiment harness and metric
// collectors: running mean/variance, percentiles, empirical CDFs, and
// fixed-window timeseries accumulation.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/time.h"

namespace wgtt {

/// Welford online mean / variance accumulator.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set with exact percentiles and CDF export.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  /// q in [0, 1]; linear interpolation between order statistics.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(1.0); }
  /// Empirical CDF sampled at `points` evenly spaced quantiles:
  /// pairs of (value, cumulative probability).
  std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;
  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Accumulates (time, bytes) arrivals into fixed-width throughput bins,
/// e.g. for "throughput vs time" figures.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(Time bin_width = Time::ms(500));
  void add(Time when, std::size_t bytes);
  /// Total bytes accumulated.
  std::size_t total_bytes() const { return total_bytes_; }
  /// Average throughput in Mbit/s between first and last arrival.
  double average_mbps() const;
  /// Average throughput in Mbit/s over an explicit duration.
  double average_mbps_over(Time duration) const;
  /// Per-bin throughput in Mbit/s: pairs of (bin start time, Mbit/s).
  std::vector<std::pair<Time, double>> bins() const;

 private:
  Time bin_width_;
  std::vector<std::size_t> bin_bytes_;
  std::size_t total_bytes_ = 0;
  Time first_ = Time::infinity();
  Time last_ = Time::zero();
};

/// Text histogram / table rendering helpers for the bench binaries.
std::vector<std::pair<double, double>> downsample_cdf(
    const std::vector<std::pair<double, double>>& cdf, std::size_t points);

}  // namespace wgtt
