#include "util/rng.h"

#include <cmath>

#include "util/units.h"

namespace wgtt {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used for seeding and stream derivation.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(2.0 * kPi * u2);
  has_cached_gaussian_ = true;
  return r * std::cos(2.0 * kPi * u2);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork(std::uint64_t tag) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0x9E3779B97F4A7C15ull);
  return Rng{splitmix64(mix)};
}

Rng Rng::fork(std::string_view tag) const { return fork(fnv1a(tag)); }

}  // namespace wgtt
