#include "util/vec_math.h"

#include <cmath>

#if defined(WGTT_HAVE_LIBMVEC) && defined(__x86_64__)
#include <immintrin.h>

// glibc's vector-math library exports the AVX2 variants under the GCC
// vector-ABI mangling.  The __m256d signature matches the vector ABI's
// register convention (argument and result in ymm0), so declaring and
// calling them directly is well-defined.
extern "C" {
__m256d _ZGVdN4v_exp10(__m256d);
__m256d _ZGVdN4v_log10(__m256d);
__m256d _ZGVdN4v_erfc(__m256d);
__m256d _ZGVdN4v_sin(__m256d);
__m256d _ZGVdN4v_cos(__m256d);
}

namespace wgtt::vecm {

bool available() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

namespace {

// Apply a 4-wide kernel across n elements.  The tail (n % 4) goes through
// the SAME vector kernel on a zero-padded block, so an element's result
// never depends on where it falls relative to the vector width.
template <typename Kernel>
inline void map4(const double* x, double* out, std::size_t n, Kernel k) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, k(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    alignas(32) double pad[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = i; j < n; ++j) pad[j - i] = x[j];
    const __m256d r = k(_mm256_load_pd(pad));
    _mm256_store_pd(pad, r);
    for (std::size_t j = i; j < n; ++j) out[j] = pad[j - i];
  }
}

}  // namespace

void db_to_linear(const double* x, double* out, std::size_t n) {
  const __m256d ten = _mm256_set1_pd(10.0);
  map4(x, out, n, [ten](__m256d v) {
    // Same rounding as the scalar path's db / 10.0 (IEEE division), then
    // exp10 instead of pow(10, .): the one ulp-divergent step.
    return _ZGVdN4v_exp10(_mm256_div_pd(v, ten));
  });
}

void linear_to_db(const double* x, double* out, std::size_t n) {
  const __m256d ten = _mm256_set1_pd(10.0);
  map4(x, out, n, [ten](__m256d v) {
    return _mm256_mul_pd(ten, _ZGVdN4v_log10(v));
  });
}

void erfc(const double* x, double* out, std::size_t n) {
  map4(x, out, n, [](__m256d v) { return _ZGVdN4v_erfc(v); });
}

void sin_cos(const double* x, double* cos_out, double* sin_out,
             std::size_t n) {
  map4(x, cos_out, n, [](__m256d v) { return _ZGVdN4v_cos(v); });
  map4(x, sin_out, n, [](__m256d v) { return _ZGVdN4v_sin(v); });
}

}  // namespace wgtt::vecm

#else  // scalar fallback: no libmvec at build time or non-x86-64 target

namespace wgtt::vecm {

bool available() { return false; }

// The fallbacks mirror the scalar reference expressions exactly; they only
// run if a caller ignores available(), and then they are bit-identical to
// the reference path.
void db_to_linear(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::pow(10.0, x[i] / 10.0);
}

void linear_to_db(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = 10.0 * std::log10(x[i]);
}

void erfc(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::erfc(x[i]);
}

void sin_cos(const double* x, double* cos_out, double* sin_out,
             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    cos_out[i] = std::cos(x[i]);
    sin_out[i] = std::sin(x[i]);
  }
}

}  // namespace wgtt::vecm

#endif
