#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace wgtt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> SampleSet::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(percentile(q), q);
  }
  return out;
}

ThroughputSeries::ThroughputSeries(Time bin_width) : bin_width_(bin_width) {}

void ThroughputSeries::add(Time when, std::size_t bytes) {
  const auto bin = static_cast<std::size_t>(when.to_ns() / bin_width_.to_ns());
  if (bin >= bin_bytes_.size()) bin_bytes_.resize(bin + 1, 0);
  bin_bytes_[bin] += bytes;
  total_bytes_ += bytes;
  first_ = std::min(first_, when);
  last_ = std::max(last_, when);
}

double ThroughputSeries::average_mbps() const {
  if (total_bytes_ == 0 || last_ <= first_) return 0.0;
  return average_mbps_over(last_ - first_);
}

double ThroughputSeries::average_mbps_over(Time duration) const {
  if (duration <= Time::zero()) return 0.0;
  return static_cast<double>(total_bytes_) * 8.0 / duration.to_sec() / 1e6;
}

std::vector<std::pair<Time, double>> ThroughputSeries::bins() const {
  std::vector<std::pair<Time, double>> out;
  out.reserve(bin_bytes_.size());
  for (std::size_t i = 0; i < bin_bytes_.size(); ++i) {
    const Time start = Time::ns(static_cast<std::int64_t>(i) * bin_width_.to_ns());
    const double mbps =
        static_cast<double>(bin_bytes_[i]) * 8.0 / bin_width_.to_sec() / 1e6;
    out.emplace_back(start, mbps);
  }
  return out;
}

std::vector<std::pair<double, double>> downsample_cdf(
    const std::vector<std::pair<double, double>>& cdf, std::size_t points) {
  std::vector<std::pair<double, double>> out;
  if (cdf.empty() || points == 0) return out;
  const std::size_t step = std::max<std::size_t>(1, cdf.size() / points);
  for (std::size_t i = 0; i < cdf.size(); i += step) out.push_back(cdf[i]);
  if (out.back() != cdf.back()) out.push_back(cdf.back());
  return out;
}

}  // namespace wgtt
