// Causal event-graph tracing (provenance for every scheduled event).
//
// The observability stack records *what* happened at every layer — Chrome
// trace spans, flight-recorder hops, decision JSONL, health windows — but
// not *why*: no stream links an effect to the event that caused it, so
// attributing a 40 ms failover to its stop/ioctl/relay/ack segments means
// eyeballing three logs side by side.  The CausalTracer closes that gap.
//
// Every event the sim::Scheduler dispatches already carries a deterministic
// 64-bit sequence number; that number doubles as the event's causal id.
// While a callback runs, the scheduler exposes it as `current_event()`, and
// every schedule() performed inside it records a parent -> child edge here.
// The result is the full causation DAG of the run: walking parents from a
// switch-ack delivery leads back through the AP start/ioctl/stop chain to
// the selection pass that initiated the switch, with every hop stamped on
// the simulated clock — `wgtt-report critical-path` turns that walk into a
// per-layer latency attribution whose segments sum *exactly* to the
// measured end-to-end time (the paper's Table 1 decomposition, computed
// automatically).
//
// Two record kinds share the stream, distinguished by field shape:
//   {"ev":N,"parent":P,"at_us":T}            an edge: event N was scheduled
//                                            by event P to fire at T
//                                            (P = 0 for root events)
//   {"ev":N,"site":"ap.ioctl","t_us":T,...}  a semantic annotation attached
//                                            to the dispatching event
// Annotation sites tag events with packet uid / client / AP / switch id so
// the DAG is joinable against the decision log and the flight recorder.
//
// Thread-scoped exactly like LogSink / MetricsRegistry / Tracer /
// FlightRecorder / HealthEngine: owned by one Testbed, installed as the
// constructing thread's context-current tracer; the Scheduler and each
// annotation site cache `current()` once at construction.  A null pointer
// (tracing off, the default) costs one branch per schedule — and the
// scheduler's current-event bookkeeping is two plain stores per dispatch —
// so disabled runs stay byte-identical, pinned by the golden-trace suites.
//
// Uid-tagged annotations (per-packet sites) share the flight recorder's
// seeded uid-hash sampler, so at the same (seed, sample) the two streams
// cover the same packet population and join line for line.  Switch/control
// annotations are never sampled away.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/time.h"

namespace wgtt::sim {
class Scheduler;
}  // namespace wgtt::sim

namespace wgtt::obs {

/// One integer field on an annotation (key must be a static string and must
/// not collide with ev/site/t_us).
struct CausalArg {
  const char* key;
  std::int64_t value;
};

struct CausalTracerConfig {
  std::uint64_t seed = 1;    // sampler seed (the Testbed passes its sim seed)
  std::uint32_t sample = 1;  // annotate 1-in-N data packets (1 = every one)
};

/// JSONL schema version emitted as the stream's header line
/// ({"kind":"schema","stream":"wgtt.causal","version":N}); wgtt-report
/// refuses causal streams whose version it does not understand (exit 2).
constexpr int kCausalSchemaVersion = 1;

class CausalTracer {
 public:
  explicit CausalTracer(CausalTracerConfig cfg = {});
  CausalTracer(const CausalTracer&) = delete;
  CausalTracer& operator=(const CausalTracer&) = delete;

  /// Record that event `child` was scheduled by event `parent` (0 = root)
  /// to fire at `when`.  Called by the Scheduler on every schedule() when a
  /// tracer is installed; `when` is exact — the event loop fires events at
  /// precisely their scheduled time.
  void edge(std::uint64_t child, std::uint64_t parent, Time when);

  /// Attach a semantic annotation to the event the bound scheduler is
  /// currently dispatching (ev 0 when called outside dispatch, e.g. during
  /// construction).  Sites gate per-packet calls on sampled(uid) themselves;
  /// switch/control annotations are unconditional.
  void annotate(const char* site, std::initializer_list<CausalArg> args = {});

  /// Seeded uid-hash sampler, identical to the flight recorder's: the same
  /// (seed, sample) selects the same packets in both streams.
  bool sampled(std::uint64_t uid) const;

  /// The scheduler whose current_event()/now() annotations read.  Bound by
  /// the Scheduler itself at construction (the Testbed constructs the
  /// tracer first, so the scheduler finds it installed).
  void bind(const sim::Scheduler* sched) { sched_ = sched; }

  /// Causal id of the event currently being dispatched (0 outside
  /// dispatch) — what annotation call sites key flow events on.
  std::uint64_t current_event() const;

  std::size_t records() const { return records_; }
  /// The accumulated JSONL document (one '\n'-terminated object per line).
  const std::string& jsonl() const { return out_; }
  const CausalTracerConfig& config() const { return cfg_; }

  /// The tracer the calling thread's current simulation records into, or
  /// nullptr when causal tracing is off (the default).
  static CausalTracer* current();

 private:
  CausalTracerConfig cfg_;
  const sim::Scheduler* sched_ = nullptr;
  std::string out_;
  std::size_t records_ = 0;
};

/// Install `tracer` as the calling thread's current causal tracer for this
/// object's lifetime (RAII; nests).  Passing nullptr keeps the current one.
class ScopedCausalTracer {
 public:
  explicit ScopedCausalTracer(CausalTracer* tracer);
  ~ScopedCausalTracer();
  ScopedCausalTracer(const ScopedCausalTracer&) = delete;
  ScopedCausalTracer& operator=(const ScopedCausalTracer&) = delete;

 private:
  CausalTracer* installed_ = nullptr;
  CausalTracer* previous_ = nullptr;
};

}  // namespace wgtt::obs
