#include "util/health.h"

#include <cmath>
#include <cstdio>

#include "util/trace.h"

#ifdef __linux__
#include <unistd.h>
#endif

namespace wgtt::obs {

namespace {

thread_local HealthEngine* t_current_health = nullptr;

/// Fixed-point rendering with exactly 3 decimals, computed with integer
/// arithmetic (llround of the scaled value) — deterministic across
/// platforms, unlike printf's shortest-round-trip formats.
std::string format_fixed3(double v) {
  if (!std::isfinite(v)) return "0.000";
  const bool neg = v < 0.0;
  const long long scaled = std::llround(std::fabs(v) * 1000.0);
  const long long whole = scaled / 1000;
  const long long frac = scaled % 1000;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld.%03lld", neg ? "-" : "", whole,
                frac);
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// Resident set size in KiB from /proc/self/statm, or -1 off Linux.
std::int64_t read_rss_kb() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return -1;
  long long vm_pages = 0, rss_pages = 0;
  const int n = std::fscanf(f, "%lld %lld", &vm_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) return -1;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::int64_t>(rss_pages) * page / 1024;
#else
  return -1;
#endif
}

}  // namespace

HealthEngine::HealthEngine(HealthConfig cfg)
    : cfg_(cfg), metrics_(metrics::MetricsRegistry::current()) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
  out_.reserve(1 << 14);
  out_ += "{\"kind\":\"schema\",\"stream\":\"wgtt.health\",\"version\":";
  out_ += std::to_string(cfg_.fault_aware ? kHealthSchemaVersionFaultAware
                                          : kHealthSchemaVersion);
  out_ += "}\n";
}

void HealthEngine::client_stranded(std::uint32_t client, bool stranded,
                                   Time t) {
  if (!cfg_.fault_aware) return;
  auto it = open_outages_.find(client);
  if (stranded) {
    if (it == open_outages_.end()) open_outages_.emplace(client, t);
    return;
  }
  if (it == open_outages_.end()) return;
  OutageRecord rec{client, it->second, t, false};
  open_outages_.erase(it);
  out_ += "{\"kind\":\"outage\",\"client\":";
  out_ += std::to_string(rec.client);
  out_ += ",\"begin_us\":";
  out_ += trace::Tracer::format_ts(rec.begin);
  out_ += ",\"end_us\":";
  out_ += trace::Tracer::format_ts(rec.end);
  out_ += ",\"open\":false}\n";
  outages_.push_back(rec);
}

void HealthEngine::fault_mark(Time t, const char* kind, std::uint32_t node,
                              bool active) {
  if (!cfg_.fault_aware) return;
  out_ += "{\"kind\":\"fault\",\"t_us\":";
  out_ += trace::Tracer::format_ts(t);
  out_ += ",\"fault\":\"";
  append_escaped(out_, kind);
  out_ += "\",\"node\":";
  out_ += std::to_string(node);
  out_ += ",\"active\":";
  out_ += active ? "true" : "false";
  out_ += "}\n";
  if (!active) last_fault_clear_ = t;
}

HealthEngine* HealthEngine::current() { return t_current_health; }

void HealthEngine::add_gauge(std::string name, std::function<double()> probe,
                             double ceiling) {
  gauges_.push_back({std::move(name), std::move(probe), ceiling});
}

void HealthEngine::append_window_line(const HealthWindow& w) {
  out_ += "{\"kind\":\"window\",\"t_us\":";
  out_ += trace::Tracer::format_ts(w.t);
  out_ += ",\"sent\":";
  out_ += std::to_string(w.sent);
  out_ += ",\"copies\":";
  out_ += std::to_string(w.copies);
  out_ += ",\"delivered\":";
  out_ += std::to_string(w.delivered);
  out_ += ",\"retired\":";
  out_ += std::to_string(w.retired);
  out_ += ",\"dropped\":";
  out_ += std::to_string(w.dropped);
  out_ += ",\"in_flight\":";
  out_ += std::to_string(w.in_flight);
  out_ += ",\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i > 0) out_ += ",";
    out_ += "\"";
    append_escaped(out_, gauges_[i].name);
    out_ += "\":";
    out_ += format_fixed3(w.gauges[i]);
  }
  out_ += "}";
  if (w.rss_kb >= 0) {
    out_ += ",\"rss_kb\":";
    out_ += std::to_string(w.rss_kb);
  }
  out_ += "}\n";
}

void HealthEngine::violate(std::string watchdog, std::string severity, Time t,
                           double value, double limit, std::string detail) {
  out_ += "{\"kind\":\"violation\",\"t_us\":";
  out_ += trace::Tracer::format_ts(t);
  out_ += ",\"watchdog\":\"";
  append_escaped(out_, watchdog);
  out_ += "\",\"severity\":\"";
  append_escaped(out_, severity);
  out_ += "\",\"value\":";
  out_ += format_fixed3(value);
  out_ += ",\"limit\":";
  out_ += format_fixed3(limit);
  out_ += ",\"detail\":\"";
  append_escaped(out_, detail);
  out_ += "\"}\n";
  violations_.push_back({std::move(watchdog), std::move(severity), t, value,
                         limit, std::move(detail)});
}

void HealthEngine::run_watchdogs(const HealthWindow& w) {
  // 1. Packet conservation: every instance that came into existence must be
  // accounted for; a negative balance means double-termination.
  ++checks_;
  if (w.in_flight < 0) {
    violate("packet_conservation", "error", w.t,
            static_cast<double>(w.in_flight), 0.0,
            "ledger in_flight went negative (double-terminated instances)");
  }
  // 2. In-flight ceiling: monotone in_flight growth is the signature of a
  // drop site missing its ledger mirror (a packet leak).
  if (cfg_.max_in_flight > 0) {
    ++checks_;
    if (w.in_flight > static_cast<std::int64_t>(cfg_.max_in_flight)) {
      violate("in_flight_ceiling", "error", w.t,
              static_cast<double>(w.in_flight),
              static_cast<double>(cfg_.max_in_flight),
              "in-flight instances exceed the configured ceiling "
              "(unterminated packets are accumulating)");
    }
  }
  // 3. Bounded gauges: any registered gauge with a ceiling must stay under
  // it (queue depths, pool census, log cardinality).
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].ceiling <= 0.0) continue;
    ++checks_;
    if (w.gauges[i] > gauges_[i].ceiling) {
      violate("bounded_gauge", "warn", w.t, w.gauges[i], gauges_[i].ceiling,
              "gauge " + gauges_[i].name + " above its ceiling");
    }
  }
  // 4 + 5. Metrics-registry invariants: counters are monotone by contract
  // (saturating, never decreasing), and the controller's liveness FSM never
  // reacts (failover / quarantine) more often than it suspects.
  if (metrics_ != nullptr) {
    std::uint64_t suspects = 0, failovers = 0, quarantines = 0;
    const metrics::Snapshot snap = metrics_->snapshot();
    for (const auto& [name, value] : snap.counters) {
      ++checks_;
      auto it = prev_counters_.find(name);
      if (it != prev_counters_.end() && value < it->second) {
        violate("monotone_counters", "error", w.t,
                static_cast<double>(value), static_cast<double>(it->second),
                "counter " + name + " decreased between windows");
      }
      prev_counters_[name] = value;
      if (name == "controller.liveness.suspects") suspects = value;
      if (name == "controller.liveness.failovers") failovers = value;
      if (name == "controller.liveness.quarantines") quarantines = value;
    }
    ++checks_;
    if (failovers > suspects || quarantines > suspects) {
      violate("liveness_fsm", "error", w.t,
              static_cast<double>(failovers > suspects ? failovers
                                                       : quarantines),
              static_cast<double>(suspects),
              "liveness reactions outnumber suspect events");
    }
  }
}

void HealthEngine::on_window_close(Time t) {
  HealthWindow w;
  w.t = t;
  w.sent = sent_;
  w.copies = copies_;
  w.delivered = delivered_;
  w.retired = retired_;
  w.dropped = dropped_;
  w.in_flight = in_flight();
  w.gauges.reserve(gauges_.size());
  for (const GaugeSlot& g : gauges_) w.gauges.push_back(g.probe());
  if (cfg_.sample_host_rss) w.rss_kb = read_rss_kb();

  append_window_line(w);
  run_watchdogs(w);

  if (ring_.size() < cfg_.ring_capacity) {
    ring_.push_back(std::move(w));
  } else {
    ring_[ring_next_ % cfg_.ring_capacity] = std::move(w);
  }
  ++ring_next_;
  ++windows_closed_;
}

void HealthEngine::finalize(Time t) {
  if (finalized_) return;
  finalized_ = true;
  // Flush still-open outages: a client stranded at teardown is exactly what
  // the convergence gate must see, so each one becomes an open=true record.
  for (const auto& [client, begin] : open_outages_) {
    OutageRecord rec{client, begin, t, true};
    out_ += "{\"kind\":\"outage\",\"client\":";
    out_ += std::to_string(rec.client);
    out_ += ",\"begin_us\":";
    out_ += trace::Tracer::format_ts(rec.begin);
    out_ += ",\"end_us\":";
    out_ += trace::Tracer::format_ts(rec.end);
    out_ += ",\"open\":true}\n";
    outages_.push_back(rec);
  }
  const std::size_t unconverged = open_outages_.size();
  open_outages_.clear();
  out_ += "{\"kind\":\"summary\",\"t_us\":";
  out_ += trace::Tracer::format_ts(t);
  out_ += ",\"windows\":";
  out_ += std::to_string(windows_closed_);
  out_ += ",\"checks\":";
  out_ += std::to_string(checks_);
  out_ += ",\"violations\":";
  out_ += std::to_string(violations_.size());
  out_ += ",\"sent\":";
  out_ += std::to_string(sent_);
  out_ += ",\"copies\":";
  out_ += std::to_string(copies_);
  out_ += ",\"delivered\":";
  out_ += std::to_string(delivered_);
  out_ += ",\"retired\":";
  out_ += std::to_string(retired_);
  out_ += ",\"dropped\":";
  out_ += std::to_string(dropped_);
  out_ += ",\"in_flight\":";
  out_ += std::to_string(in_flight());
  if (cfg_.fault_aware) {
    out_ += ",\"outages\":";
    out_ += std::to_string(outages_.size());
    out_ += ",\"unconverged\":";
    out_ += std::to_string(unconverged);
  }
  out_ += "}\n";
}

std::vector<HealthWindow> HealthEngine::windows() const {
  std::vector<HealthWindow> out;
  const std::size_t n = ring_.size();
  out.reserve(n);
  // Oldest first: once the ring has wrapped, ring_next_ points past the
  // newest entry, so the oldest lives at ring_next_ % capacity.
  const std::size_t start = ring_next_ >= n ? ring_next_ - n : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % cfg_.ring_capacity]);
  }
  return out;
}

ScopedHealthEngine::ScopedHealthEngine(HealthEngine* engine) {
  if (engine == nullptr) return;
  installed_ = engine;
  previous_ = t_current_health;
  t_current_health = engine;
}

ScopedHealthEngine::~ScopedHealthEngine() {
  if (installed_ != nullptr) t_current_health = previous_;
}

}  // namespace wgtt::obs
