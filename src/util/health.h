// Runtime health engine: streaming windowed telemetry + invariant watchdogs.
//
// Every other observability surface (Tracer, TelemetrySampler, decision /
// packet JSONL) buffers raw events for post-hoc analysis, which stops
// working at soak horizons — hours of simulated time where raw event volume
// is unbounded and "did it drift or leak?" must be answered *during* the
// run.  The HealthEngine instead keeps fixed-memory state: a cross-layer
// packet-conservation ledger, a set of cheap resource gauges sampled once
// per window (~1 s simulated), and a ring of per-window rollups.  At every
// window close it evaluates invariant watchdogs — packet conservation,
// in-flight ceiling, monotone counters, bounded gauges, liveness-FSM sanity
// — and records each violation as a structured record with a severity.
//
// The per-window rollups stream into a `health.jsonl` document (one JSON
// object per line, hand-serialized with fixed field order and pure-integer
// number formatting, so a fixed-seed run emits byte-identical output on any
// platform).  The only optional nondeterministic field is the host RSS
// sample, off by default and enabled for soak drift analysis.
//
// Thread-scoped exactly like LogSink / MetricsRegistry / Tracer /
// FlightRecorder: a HealthEngine is owned by one Testbed, installed as the
// constructing thread's context-current engine, and components cache
// `current()` once at construction — a null pointer (health off, the
// default) makes every ledger site a single branch with zero allocations.
//
// The packet-conservation ledger counts *per-copy instances* of the
// flight-recorded transport payloads (kData / kTcpAck; management and
// control frames are excluded):
//
//   sent       transport emitted a brand-new payload (TCP seg/ack, UDP)
//   copies     an extra instance came into existence: each controller
//              fan-out tunnel and each MAC decode at a receiving radio
//   delivered  transport consumed an instance at the far end
//   retired    an instance terminated benignly (MAC ack at the transmitter,
//              reorder-buffer duplicate discard, controller handing an
//              uplink payload to the flow layer, inbound copy joined after
//              fan-out, ...)
//   dropped    an instance was lost for a DropCause (every recorder drop()
//              site mirrors into the ledger, *unconditionally* — the ledger
//              is exact even when packet recording is off or sampled)
//
// Invariant: in_flight = sent + copies - delivered - retired - dropped >= 0,
// and bounded in steady state.  A drop site that forgets its DropCause (or
// its ledger mirror) shows up as monotone in_flight growth — the seeded-leak
// test in tests/health_test.cpp proves the watchdog catches exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/time.h"

namespace wgtt::obs {

/// JSONL schema version emitted in the header line; wgtt-report refuses
/// files whose version it does not understand (exit 2).  Version 2 adds the
/// "outage" / "fault" record kinds and the convergence summary fields, and
/// is only emitted by fault-aware engines so fault-free streams stay
/// byte-identical to version 1.
constexpr int kHealthSchemaVersion = 1;
constexpr int kHealthSchemaVersionFaultAware = 2;

struct HealthConfig {
  /// Rollup window on the simulated clock.
  Time window = Time::sec(1);
  /// In-memory ring of recent windows (the JSONL stream keeps them all).
  std::size_t ring_capacity = 4096;
  /// Ceiling for the in-flight watchdog; 0 disables the ceiling check
  /// (conservation — in_flight >= 0 — is always on).
  std::uint64_t max_in_flight = 0;
  /// Sample /proc/self/statm RSS into each window ("rss_kb").  Off by
  /// default: it is the only nondeterministic field in the stream.
  bool sample_host_rss = false;
  /// Arm the fault-tolerance ledger (client outage windows, fault marks,
  /// convergence summary) and advertise schema version 2.  The scenario
  /// layer sets this when a FaultInjector is installed; fault-free runs
  /// keep it off so their streams stay byte-identical.
  bool fault_aware = false;
};

/// One client-stranded interval (fault-aware engines only).  `end` equals
/// `begin` while the outage is still open at finalize.
struct OutageRecord {
  std::uint32_t client = 0;
  Time begin;
  Time end;
  bool open = false;  // still stranded when the run ended
};

/// One watchdog violation, also serialized as a {"kind":"violation"} line.
struct HealthViolation {
  std::string watchdog;  // "packet_conservation", "monotone_counters", ...
  std::string severity;  // "error" | "warn"
  Time t;                // window close time
  double value = 0.0;
  double limit = 0.0;
  std::string detail;
};

/// One closed window's rollup (cumulative ledger + sampled gauges).
struct HealthWindow {
  Time t;  // close time
  std::uint64_t sent = 0;
  std::uint64_t copies = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retired = 0;
  std::uint64_t dropped = 0;
  std::int64_t in_flight = 0;
  std::vector<double> gauges;  // registration order
  std::int64_t rss_kb = -1;    // < 0: not sampled
};

class HealthEngine {
 public:
  explicit HealthEngine(HealthConfig cfg = {});
  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  // -- packet-conservation ledger (hot paths: one add each) --------------
  void packet_sent(std::uint64_t n = 1) { sent_ += n; }
  void packet_copies(std::uint64_t n = 1) { copies_ += n; }
  void packet_delivered(std::uint64_t n = 1) { delivered_ += n; }
  void packet_retired(std::uint64_t n = 1) { retired_ += n; }
  void packet_dropped(std::uint64_t n = 1) { dropped_ += n; }

  // -- fault-tolerance ledger (no-ops unless cfg.fault_aware) ------------

  /// Report whether `client` is stranded (no live active AP) at time `t`.
  /// Idempotent: repeated same-state reports are absorbed; a transition
  /// opens or closes an outage window ({"kind":"outage"} line on close).
  /// The controller's liveness tick drives this every heartbeat period.
  void client_stranded(std::uint32_t client, bool stranded, Time t);

  /// Record a fault-plan edge ({"kind":"fault"} line): `kind` names the
  /// FaultKind, `active` marks onset vs clear.  The clear edges feed the
  /// convergence summary (reconvergence = last outage close vs last clear).
  void fault_mark(Time t, const char* kind, std::uint32_t node, bool active);

  /// Register a resource gauge before the first window closes; sampled in
  /// registration order at every window close.  `ceiling` > 0 arms the
  /// bounded_gauge watchdog for this gauge.
  void add_gauge(std::string name, std::function<double()> probe,
                 double ceiling = 0.0);

  /// Close the window ending at `t`: sample every gauge, snapshot the
  /// ledger, run the watchdogs, and append the window (+ any violation)
  /// lines to the JSONL stream.  The Testbed drives this from a periodic
  /// scheduler event.
  void on_window_close(Time t);

  /// Close the final (possibly partial) window at `t` and append the
  /// {"kind":"summary"} line.  Never samples gauges — by Testbed teardown
  /// the probes' targets (overlay networks, apps) may already be gone.
  /// Idempotent.
  void finalize(Time t);

  std::int64_t in_flight() const {
    return static_cast<std::int64_t>(sent_ + copies_) -
           static_cast<std::int64_t>(delivered_ + retired_ + dropped_);
  }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t copies() const { return copies_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t retired() const { return retired_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Ring of the most recent windows (up to ring_capacity), oldest first.
  std::vector<HealthWindow> windows() const;
  std::size_t windows_closed() const { return windows_closed_; }
  const std::vector<HealthViolation>& violations() const {
    return violations_;
  }
  /// Total watchdog evaluations (counted whether they pass or fail).
  std::uint64_t checks() const { return checks_; }
  /// Closed outage windows, in close order (fault-aware engines only;
  /// finalize() flushes any still-open outages here with open = true).
  const std::vector<OutageRecord>& outages() const { return outages_; }
  /// Clients stranded right now (open outage windows).
  std::size_t open_outages() const { return open_outages_.size(); }
  /// Time of the last fault *clear* edge seen (Time() if none).
  Time last_fault_clear() const { return last_fault_clear_; }
  /// The accumulated JSONL document, starting with the schema header line.
  const std::string& jsonl() const { return out_; }
  const HealthConfig& config() const { return cfg_; }

  /// The engine the calling thread's current simulation reports into, or
  /// nullptr when health is off (the default).
  static HealthEngine* current();

 private:
  struct GaugeSlot {
    std::string name;
    std::function<double()> probe;
    double ceiling = 0.0;
  };

  void run_watchdogs(const HealthWindow& w);
  void violate(std::string watchdog, std::string severity, Time t,
               double value, double limit, std::string detail);
  void append_window_line(const HealthWindow& w);

  HealthConfig cfg_;
  std::uint64_t sent_ = 0;
  std::uint64_t copies_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<GaugeSlot> gauges_;
  std::vector<HealthWindow> ring_;  // circular once full
  std::size_t ring_next_ = 0;
  std::size_t windows_closed_ = 0;
  std::vector<HealthViolation> violations_;
  std::uint64_t checks_ = 0;
  std::string out_;
  bool finalized_ = false;
  // Previous window's metrics-counter values for the monotone watchdog and
  // the liveness-FSM sanity check.
  metrics::MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, std::uint64_t> prev_counters_;
  // Fault-tolerance ledger (only touched when cfg_.fault_aware).
  std::map<std::uint32_t, Time> open_outages_;  // client -> outage begin
  std::vector<OutageRecord> outages_;
  Time last_fault_clear_;
};

/// Install `engine` as the calling thread's current health engine for this
/// object's lifetime (RAII; nests).  Passing nullptr keeps the current one.
class ScopedHealthEngine {
 public:
  explicit ScopedHealthEngine(HealthEngine* engine);
  ~ScopedHealthEngine();
  ScopedHealthEngine(const ScopedHealthEngine&) = delete;
  ScopedHealthEngine& operator=(const ScopedHealthEngine&) = delete;

 private:
  HealthEngine* installed_ = nullptr;
  HealthEngine* previous_ = nullptr;
};

}  // namespace wgtt::obs
