// Deterministic event tracing in the Chrome trace-event JSON format.
//
// A Tracer records instant ("i"), complete ("X"), and counter ("C") events
// keyed on *simulated* time, streamed through the util/json writer into one
// in-memory document that chrome://tracing and Perfetto load directly.
// Timestamps are formatted from integer nanoseconds with integer arithmetic
// (microseconds with exactly three decimals), so for a fixed seed the output
// is bitwise-reproducible across runs, thread counts, and libcs — the
// property the golden-trace regression suite pins with a SHA-256 hash.
//
// Like the MetricsRegistry, a Tracer is owned by a Testbed and installed as
// the constructing thread's context-current tracer for the Testbed's
// lifetime.  Components cache `Tracer::current()` at construction; a null
// pointer (tracing off, the default) makes every record site a single branch.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/time.h"

namespace wgtt::trace {

/// One numeric "args" entry on an event.
struct TraceArg {
  std::string_view key;
  double value;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Point event at sim time `t`.  `tid` separates tracks in the viewer
  /// (we use the node id of the acting device, 0 for the controller).
  void instant(std::string_view cat, std::string_view name, Time t,
               std::int64_t tid = 0, std::initializer_list<TraceArg> args = {});
  /// Duration ("complete") event spanning [start, start + dur].
  void complete(std::string_view cat, std::string_view name, Time start,
                Time dur, std::int64_t tid = 0,
                std::initializer_list<TraceArg> args = {});
  /// Counter track sample.
  void counter(std::string_view cat, std::string_view name, Time t,
               double value, std::int64_t tid = 0);
  /// Flow-event pair (ph "s"/"f") keyed on `id` — the arrows the trace
  /// viewer draws between tracks.  Call sites key `id` on the causal event
  /// id and emit only when causal tracing is on, so traces without it stay
  /// byte-identical (the golden-trace hash).
  void flow_start(std::string_view cat, std::string_view name, Time t,
                  std::uint64_t id, std::int64_t tid = 0);
  void flow_finish(std::string_view cat, std::string_view name, Time t,
                   std::uint64_t id, std::int64_t tid = 0);

  std::size_t events() const { return events_; }

  /// Close the document and return the full JSON.  Idempotent; no events may
  /// be recorded afterwards.
  const std::string& finish();

  /// Format a sim time as a Chrome-trace "ts" value: microseconds with three
  /// decimals, derived purely from integer arithmetic.
  static std::string format_ts(Time t);

  static Tracer* current();

 private:
  void begin_event(char ph, std::string_view cat, std::string_view name,
                   Time ts, std::int64_t tid);
  void write_args(std::initializer_list<TraceArg> args);

  JsonWriter w_;
  std::size_t events_ = 0;
  bool finished_ = false;
};

/// Install `tracer` as the calling thread's current tracer for this object's
/// lifetime (RAII; nests).  Passing nullptr keeps the current tracer.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* installed_ = nullptr;
  Tracer* previous_ = nullptr;
};

}  // namespace wgtt::trace
