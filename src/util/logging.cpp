#include "util/logging.h"

#include <cstdio>

namespace wgtt {
namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_emit(LogLevel level, const std::string& component,
              const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}
}  // namespace detail

}  // namespace wgtt
