#include "util/logging.h"

#include <cstdio>

namespace wgtt {
namespace {

/// Innermost ScopedLogSink on this thread; null = use the default sink.
thread_local LogSink* t_current_sink = nullptr;

}  // namespace

const char* to_string(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void LogSink::write(LogLevel level, std::string_view component,
                    std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", to_string(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

LogSink& default_log_sink() {
  static LogSink sink;  // magic static: thread-safe init, immortal
  return sink;
}

LogSink& current_log_sink() {
  return t_current_sink != nullptr ? *t_current_sink : default_log_sink();
}

ScopedLogSink::ScopedLogSink(LogSink* sink) {
  if (sink == nullptr) return;
  installed_ = sink;
  previous_ = t_current_sink;
  t_current_sink = sink;
}

ScopedLogSink::~ScopedLogSink() {
  if (installed_ != nullptr) t_current_sink = previous_;
}

LogLevel log_level() { return current_log_sink().threshold(); }

void set_log_level(LogLevel level) { current_log_sink().set_threshold(level); }

namespace detail {
void log_emit(LogLevel level, const std::string& component,
              const std::string& message) {
  current_log_sink().write(level, component, message);
}
}  // namespace detail

}  // namespace wgtt
