#include "util/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/json.h"

namespace wgtt::metrics {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  // Empty bounds are legal: the histogram degenerates to the single overflow
  // bucket, and quantile() interpolates over [min, max].
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

namespace {

/// Saturating add: histogram bucket / sample counts must stay monotone at
/// soak horizons instead of wrapping (same contract as Counter::add).
inline std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t v = a + b;
  return v < a ? ~std::uint64_t{0} : v;
}

}  // namespace

void Histogram::record(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  auto& bucket = buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  bucket = sat_add(bucket, 1);
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  count_ = sat_add(count_, 1);
  sum_ += x;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (cum + buckets_[i] < rank) {
      cum += buckets_[i];
      continue;
    }
    // The rank-th sample lives in bucket i: (lo, hi].
    double lo = i == 0 ? min_ : bounds_[i - 1];
    double hi = i < bounds_.size() ? bounds_[i] : max_;
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi < lo) hi = lo;
    const double frac = static_cast<double>(rank - cum) /
                        static_cast<double>(buckets_[i]);
    return lo + (hi - lo) * frac;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  assert(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] = sat_add(buckets_[i], other.buckets_[i]);
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ = sat_add(count_, other.count_);
  sum_ += other.sum_;
}

std::vector<double> linear_buckets(double start, double width, std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(start + width * static_cast<double>(i));
  }
  return b;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(v);
    v *= factor;
  }
  return b;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c.value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h.bounds();
    hs.buckets = h.buckets();
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    hs.p50 = h.quantile(0.5);
    hs.p99 = h.quantile(0.99);
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void Snapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.field(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.field(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSnapshot& h : histograms) {
    w.key(h.name).begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("p50", h.p50);
    w.field("p99", h.p99);
    w.key("bounds").begin_array();
    for (double b : h.bounds) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (std::uint64_t c : h.buckets) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Snapshot::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

// ---------------------------------------------------------------------------
// Thread context
// ---------------------------------------------------------------------------

namespace {
thread_local MetricsRegistry* t_current_registry = nullptr;
}  // namespace

MetricsRegistry* MetricsRegistry::current() { return t_current_registry; }

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : installed_(registry) {
  if (installed_ != nullptr) {
    previous_ = t_current_registry;
    t_current_registry = installed_;
  }
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  if (installed_ != nullptr) t_current_registry = previous_;
}

}  // namespace wgtt::metrics
