// Minimal SHA-256 (FIPS 180-4), dependency-free.
//
// Used by the golden-trace regression suite to pin the exact bytes a
// fixed-seed simulation's trace serializes to.  Not performance-critical and
// not intended for any security purpose.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace wgtt {

/// Raw 32-byte digest of `data`.
std::array<std::uint8_t, 32> sha256(std::string_view data);

/// Lowercase hex rendering of the digest (64 characters).
std::string sha256_hex(std::string_view data);

}  // namespace wgtt
