// Per-simulation metrics: counters, gauges, and fixed-bucket histograms.
//
// A MetricsRegistry is owned by the Testbed of one simulation (alongside its
// LogSink) and installed as the *context-current* registry of the
// constructing thread for the Testbed's lifetime, so concurrent simulations
// on different threads each record into their own registry with no shared
// mutable state.  Components grab `MetricsRegistry::current()` once at
// construction and cache typed pointers to the instruments they update; with
// no registry installed the cached pointers are null and every record site
// reduces to a single inlineable branch — instrumentation is free when off
// and never perturbs simulation behaviour when on (instruments only observe).
//
// Iteration order over instruments is the lexicographic name order, so
// snapshots and their JSON serialization are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wgtt {
class JsonWriter;
}

namespace wgtt::metrics {

/// Monotone event count.  Saturates at UINT64_MAX instead of wrapping: soak
/// horizons (hours of simulated time, ~1e10 events) must never produce a
/// counter that appears to decrease — the health engine's monotone watchdog
/// treats a decrease as a hard invariant violation.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    const std::uint64_t v = value_ + n;
    value_ = v < value_ ? ~std::uint64_t{0} : v;
  }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value plus the high-water mark it reached.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(double d) { set(value_ + d); }
  double value() const { return value_; }
  double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus-style upper-inclusive buckets:
/// sample x lands in the first bucket whose bound b satisfies x <= b, or in
/// the implicit overflow bucket past the last bound.
class Histogram {
 public:
  /// `upper_bounds` must be sorted.  An empty list is legal and degenerates
  /// to the single overflow bucket (quantiles interpolate over [min, max]).
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Nearest-rank quantile estimate, q in [0, 1]: locate the bucket holding
  /// the ceil(q*n)-th sample and interpolate linearly inside it.  The
  /// estimate always lies within that bucket's bounds (clamped to the
  /// observed min/max at the edges), so it brackets the exact sample
  /// quantile to within one bucket width.  Defined for every histogram
  /// state: an empty histogram returns 0.0, and a single-bucket (empty
  /// bounds) histogram interpolates over [min, max].
  double quantile(double q) const;

  /// Accumulate `other` (same bounds required) as if its samples had been
  /// recorded here.
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// `n` buckets: start, start+width, ...
std::vector<double> linear_buckets(double start, double width, std::size_t n);
/// `n` buckets: start, start*factor, ... (factor > 1).
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t n);

/// A flattened, registry-independent copy of every instrument — what outlives
/// the simulation and lands in the bench reports.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;  // (name, value)
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Writes one JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name.  References stay valid for the registry's
  /// lifetime (node-based map), so callers cache them at construction.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First caller fixes the bucket bounds; later callers get the existing
  /// histogram regardless of the bounds they pass.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  Snapshot snapshot() const;

  /// The registry the calling thread's current simulation records into, or
  /// nullptr when instrumentation is off (the default outside a Testbed).
  static MetricsRegistry* current();

 private:
  friend class ScopedMetricsRegistry;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Install `registry` as the calling thread's current registry for this
/// object's lifetime (RAII; nests).  Passing nullptr is a no-op, keeping
/// whatever registry (if any) is already current.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* installed_ = nullptr;
  MetricsRegistry* previous_ = nullptr;
};

}  // namespace wgtt::metrics
