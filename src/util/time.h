// Simulation time: a strong type over integer nanoseconds.
//
// All latencies in the system (airtime, backhaul delay, queue drain, protocol
// timeouts) are expressed as Time values; the discrete-event scheduler
// (sim/scheduler.h) advances a single global clock of this type.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace wgtt {

/// A point in (or span of) simulated time, with nanosecond resolution.
///
/// Time is totally ordered and supports the usual affine arithmetic
/// (point - point = span, point + span = point); we do not distinguish
/// points from spans at the type level because simulation code mixes them
/// freely (e.g. "now + airtime").
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors; prefer these over raw nanosecond counts.
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time us(double v) { return Time{static_cast<std::int64_t>(v * 1e3)}; }
  static constexpr Time ms(double v) { return Time{static_cast<std::int64_t>(v * 1e6)}; }
  static constexpr Time sec(double v) { return Time{static_cast<std::int64_t>(v * 1e9)}; }
  static constexpr Time zero() { return Time{0}; }
  /// A sentinel later than any event the simulator will ever schedule.
  static constexpr Time infinity() { return Time{INT64_MAX}; }

  constexpr std::int64_t to_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time o) const { return Time{ns_ + o.ns_}; }
  constexpr Time operator-(Time o) const { return Time{ns_ - o.ns_}; }
  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }
  constexpr Time operator*(double f) const {
    return Time{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }
  constexpr double operator/(Time o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

  std::string to_string() const {
    if (ns_ >= 1'000'000'000) return std::to_string(to_sec()) + "s";
    if (ns_ >= 1'000'000) return std::to_string(to_ms()) + "ms";
    if (ns_ >= 1'000) return std::to_string(to_us()) + "us";
    return std::to_string(ns_) + "ns";
  }

 private:
  explicit constexpr Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace wgtt
