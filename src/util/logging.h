// Minimal leveled logging.  Off by default so benchmark runs stay quiet;
// tests and examples can turn on per-component tracing.
#pragma once

#include <sstream>
#include <string>

namespace wgtt {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& component,
              const std::string& message);
}

/// Usage: WGTT_LOG(kDebug, "mac", "retry " << n << " for seq " << s);
#define WGTT_LOG(level, component, expr)                                \
  do {                                                                  \
    if (::wgtt::LogLevel::level >= ::wgtt::log_level()) {               \
      std::ostringstream wgtt_log_oss;                                  \
      wgtt_log_oss << expr;                                             \
      ::wgtt::detail::log_emit(::wgtt::LogLevel::level, (component),    \
                               wgtt_log_oss.str());                     \
    }                                                                   \
  } while (0)

}  // namespace wgtt
