// Minimal leveled logging, thread-isolatable per simulation.
//
// Messages flow through a LogSink.  Which sink receives a message is decided
// by a *context-current* pointer (thread-local), so concurrent simulations on
// different threads each log through their own sink without touching any
// shared mutable state.  When no sink has been installed on the calling
// thread, messages fall back to the process-wide default sink, whose
// threshold is a std::atomic so the WGTT_LOG fast path stays a relaxed load.
//
// Off by default so benchmark runs stay quiet; tests and examples can turn
// on per-component tracing with set_log_level(), or capture output with a
// CapturingLogSink installed via ScopedLogSink.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace wgtt {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

/// Destination for log messages.  The base class writes to stderr; override
/// write() to capture messages elsewhere.  The threshold is atomic so one
/// thread may adjust it while another is inside the WGTT_LOG fast path.
class LogSink {
 public:
  explicit LogSink(LogLevel threshold = LogLevel::kOff)
      : threshold_(threshold) {}
  virtual ~LogSink() = default;
  LogSink(const LogSink&) = delete;
  LogSink& operator=(const LogSink&) = delete;

  LogLevel threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }
  void set_threshold(LogLevel level) {
    threshold_.store(level, std::memory_order_relaxed);
  }

  virtual void write(LogLevel level, std::string_view component,
                     std::string_view message);

 private:
  std::atomic<LogLevel> threshold_;
};

/// Sink that records messages in memory; for tests and per-sim capture.
/// Not internally synchronized: each simulation owns its sink and runs on
/// one thread at a time.
class CapturingLogSink : public LogSink {
 public:
  struct Entry {
    LogLevel level;
    std::string component;
    std::string message;
  };

  explicit CapturingLogSink(LogLevel threshold = LogLevel::kTrace)
      : LogSink(threshold) {}

  void write(LogLevel level, std::string_view component,
             std::string_view message) override {
    entries_.push_back(Entry{level, std::string(component),
                             std::string(message)});
  }

  const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

/// The process-wide fallback sink (writes to stderr).
LogSink& default_log_sink();

/// The sink WGTT_LOG currently routes to on this thread: the innermost
/// installed ScopedLogSink, or the default sink when none is installed.
LogSink& current_log_sink();

/// Install `sink` as the calling thread's current sink for the lifetime of
/// this object (RAII; nests).  Passing nullptr is a no-op, keeping whatever
/// sink is already current — convenient for optional per-sim sinks.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink* sink);
  ~ScopedLogSink();
  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LogSink* installed_ = nullptr;
  LogSink* previous_ = nullptr;
};

/// Threshold of the calling thread's current sink; messages below it are
/// discarded cheaply (a thread-local read plus a relaxed atomic load).
LogLevel log_level();

/// Set the threshold of the calling thread's current sink.  With no scoped
/// sink installed this adjusts the process-wide default, preserving the
/// historical "global log level" behaviour.
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& component,
              const std::string& message);
}

/// Usage: WGTT_LOG(kDebug, "mac", "retry " << n << " for seq " << s);
#define WGTT_LOG(level, component, expr)                                \
  do {                                                                  \
    if (::wgtt::LogLevel::level >= ::wgtt::log_level()) {               \
      std::ostringstream wgtt_log_oss;                                  \
      wgtt_log_oss << expr;                                             \
      ::wgtt::detail::log_emit(::wgtt::LogLevel::level, (component),    \
                               wgtt_log_oss.str());                     \
    }                                                                   \
  } while (0)

}  // namespace wgtt
