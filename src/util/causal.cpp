#include "util/causal.h"

#include "sim/scheduler.h"
#include "util/trace.h"

namespace wgtt::obs {

namespace {

thread_local CausalTracer* t_current_causal_tracer = nullptr;

// splitmix64 finalizer — the flight recorder's sampler, bit for bit, so the
// two streams sample the same uid population at the same (seed, sample).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CausalTracer::CausalTracer(CausalTracerConfig cfg) : cfg_(cfg) {
  out_.reserve(1 << 20);
  out_ += "{\"kind\":\"schema\",\"stream\":\"wgtt.causal\",\"version\":";
  out_ += std::to_string(kCausalSchemaVersion);
  out_ += "}\n";
}

bool CausalTracer::sampled(std::uint64_t uid) const {
  if (uid == 0 || cfg_.sample <= 1) return true;
  return mix64(uid ^ cfg_.seed) % cfg_.sample == 0;
}

std::uint64_t CausalTracer::current_event() const {
  return sched_ != nullptr ? sched_->current_event() : 0;
}

void CausalTracer::edge(std::uint64_t child, std::uint64_t parent, Time when) {
  std::string& s = out_;
  s += "{\"ev\":";
  s += std::to_string(child);
  s += ",\"parent\":";
  s += std::to_string(parent);
  s += ",\"at_us\":";
  s += trace::Tracer::format_ts(when);
  s += "}\n";
  ++records_;
}

void CausalTracer::annotate(const char* site,
                            std::initializer_list<CausalArg> args) {
  std::uint64_t ev = 0;
  Time t = Time::zero();
  if (sched_ != nullptr) {
    ev = sched_->current_event();
    t = sched_->now();
  }
  std::string& s = out_;
  s += "{\"ev\":";
  s += std::to_string(ev);
  s += ",\"site\":\"";
  s += site;
  s += "\",\"t_us\":";
  s += trace::Tracer::format_ts(t);
  for (const CausalArg& a : args) {
    s += ",\"";
    s += a.key;
    s += "\":";
    s += std::to_string(a.value);
  }
  s += "}\n";
  ++records_;
}

CausalTracer* CausalTracer::current() { return t_current_causal_tracer; }

ScopedCausalTracer::ScopedCausalTracer(CausalTracer* tracer) {
  if (tracer == nullptr) return;
  installed_ = tracer;
  previous_ = t_current_causal_tracer;
  t_current_causal_tracer = tracer;
}

ScopedCausalTracer::~ScopedCausalTracer() {
  if (installed_ != nullptr) t_current_causal_tracer = previous_;
}

}  // namespace wgtt::obs
