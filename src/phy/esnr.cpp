#include "phy/esnr.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/units.h"
#include "util/vec_math.h"

namespace wgtt::phy {
namespace {

inline double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

}  // namespace

double ber(Modulation mod, double snr_linear) {
  snr_linear = std::max(snr_linear, 0.0);
  switch (mod) {
    case Modulation::kBpsk:
      return q_function(std::sqrt(2.0 * snr_linear));
    case Modulation::kQpsk:
      return q_function(std::sqrt(snr_linear));
    // Gray-coded square M-QAM nearest-neighbour approximation.  The two
    // orders are split so m, log2(m), and sqrt(m) fold to compile-time
    // constants (they are exact doubles, so this is bitwise-identical to
    // computing them per call).
    case Modulation::kQam16: {
      constexpr double m = 16.0;
      const double k = std::log2(m);
      return 4.0 / k * (1.0 - 1.0 / std::sqrt(m)) *
             q_function(std::sqrt(3.0 * snr_linear / (m - 1.0)));
    }
    case Modulation::kQam64: {
      constexpr double m = 64.0;
      const double k = std::log2(m);
      return 4.0 / k * (1.0 - 1.0 / std::sqrt(m)) *
             q_function(std::sqrt(3.0 * snr_linear / (m - 1.0)));
    }
  }
  return 0.5;
}

namespace {

// ber() is monotone decreasing in SNR, so its inverse can be tabulated once
// per modulation: SNR from -30 dB to +50 dB in 0.05 dB steps.  The inverse
// lookup is a binary search over the (descending) BER table plus linear
// interpolation — this sits on the hot path of every ESNR computation.
struct BerTable {
  static constexpr int kSteps = 1601;
  static constexpr double kLoDb = -30.0;
  static constexpr double kStepDb = 0.05;
  std::array<double, kSteps> ber_at{};  // descending in index

  explicit BerTable(Modulation mod) {
    for (int i = 0; i < kSteps; ++i) {
      ber_at[static_cast<std::size_t>(i)] =
          ber(mod, db_to_linear(kLoDb + kStepDb * i));
    }
  }

  double snr_db_for(double target) const {
    if (target >= ber_at.front()) return kLoDb;
    if (target <= ber_at.back()) return kLoDb + kStepDb * (kSteps - 1);
    // Find the first index with ber < target (table is descending).
    int lo = 0;
    int hi = kSteps - 1;
    while (hi - lo > 1) {
      const int mid = (lo + hi) / 2;
      if (ber_at[static_cast<std::size_t>(mid)] > target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double b_lo = ber_at[static_cast<std::size_t>(lo)];
    const double b_hi = ber_at[static_cast<std::size_t>(hi)];
    const double frac = b_lo > b_hi ? (b_lo - target) / (b_lo - b_hi) : 0.0;
    return kLoDb + kStepDb * (lo + frac);
  }
};

const BerTable& ber_table(Modulation mod) {
  static const BerTable bpsk{Modulation::kBpsk};
  static const BerTable qpsk{Modulation::kQpsk};
  static const BerTable qam16{Modulation::kQam16};
  static const BerTable qam64{Modulation::kQam64};
  switch (mod) {
    case Modulation::kBpsk: return bpsk;
    case Modulation::kQpsk: return qpsk;
    case Modulation::kQam16: return qam16;
    case Modulation::kQam64: return qam64;
  }
  return bpsk;
}

// Vectorized mean-BER: batch the per-subcarrier pow into one exp10 sweep
// and the erfc tail into one erfc sweep, with every surrounding arithmetic
// step (scale, divide, sqrt, final sum) kept in the reference expression
// order so the only divergence from reference_effective_snr_db() is the
// per-element ulps of exp10-vs-pow and vector-vs-scalar erfc.
constexpr std::size_t kMaxVecSubcarriers = 64;

double vectorized_mean_ber(std::span<const double> subcarrier_snr_db,
                           Modulation mod) {
  const std::size_t n = subcarrier_snr_db.size();
  double lin[kMaxVecSubcarriers];
  vecm::db_to_linear(subcarrier_snr_db.data(), lin, n);

  // Per-modulation constants, written with the same expressions ber() uses
  // so they fold to the same doubles (all intermediate values are exact).
  double scale = 1.0;   // multiplies snr before the divide
  double denom = 1.0;   // divides scale * snr
  double c1 = 1.0;      // multiplies the Q-function
  switch (mod) {
    case Modulation::kBpsk:
      scale = 2.0;
      break;
    case Modulation::kQpsk:
      break;
    case Modulation::kQam16: {
      constexpr double m = 16.0;
      c1 = 4.0 / std::log2(m) * (1.0 - 1.0 / std::sqrt(m));
      scale = 3.0;
      denom = m - 1.0;
      break;
    }
    case Modulation::kQam64: {
      constexpr double m = 64.0;
      c1 = 4.0 / std::log2(m) * (1.0 - 1.0 / std::sqrt(m));
      scale = 3.0;
      denom = m - 1.0;
      break;
    }
  }

  double arg[kMaxVecSubcarriers];
  const double sqrt2 = std::sqrt(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    // max / * / / / sqrt / / are all exactly-rounded IEEE ops, matching the
    // scalar path bit for bit (multiplying or dividing by 1.0 is exact).
    const double snr = std::max(lin[i], 0.0);
    arg[i] = std::sqrt(scale * snr / denom) / sqrt2;
  }
  double erfc_out[kMaxVecSubcarriers];
  vecm::erfc(arg, erfc_out, n);

  double mean_ber = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_ber += c1 * (0.5 * erfc_out[i]);
  }
  return mean_ber / static_cast<double>(n);
}

}  // namespace

double ber_inverse(Modulation mod, double target_ber) {
  target_ber = std::clamp(target_ber, 1e-12, 0.5);
  return db_to_linear(ber_table(mod).snr_db_for(target_ber));
}

double reference_effective_snr_db(std::span<const double> subcarrier_snr_db,
                                  Modulation mod) {
  double mean_ber = 0.0;
  for (double snr_db : subcarrier_snr_db) {
    mean_ber += ber(mod, db_to_linear(snr_db));
  }
  mean_ber /= static_cast<double>(subcarrier_snr_db.size());
  return linear_to_db(ber_inverse(mod, mean_ber));
}

double effective_snr_db(std::span<const double> subcarrier_snr_db,
                        Modulation mod) {
  const std::size_t n = subcarrier_snr_db.size();
  if (n == 0 || n > kMaxVecSubcarriers || !vecm::available()) {
    return reference_effective_snr_db(subcarrier_snr_db, mod);
  }
  const double mean_ber = vectorized_mean_ber(subcarrier_snr_db, mod);
  return linear_to_db(ber_inverse(mod, mean_ber));
}

double effective_snr_db(const Csi& csi, Modulation mod) {
  return effective_snr_db(
      std::span<const double>(csi.subcarrier_snr_db.data(), kNumSubcarriers),
      mod);
}

double selection_esnr_db(const Csi& csi) {
  return effective_snr_db(csi, Modulation::kQam16);
}

double selection_esnr_db(std::span<const double> subcarrier_snr_db) {
  return effective_snr_db(subcarrier_snr_db, Modulation::kQam16);
}

}  // namespace wgtt::phy
