// Transmit bit-rate adaptation.
//
// The testbed keeps the stock Atheros rate control (Minstrel) — paper §4 —
// so the default here is a Minstrel-style sampler: per-rate delivery
// probability EWMAs learned from A-MPDU completion feedback, occasional
// probing of non-best rates, and expected-throughput rate selection.
//
// An ESNR-driven controller is also provided (the channel-aware alternative
// WGTT's CSI plumbing makes possible); experiments use Minstrel unless noted.
#pragma once

#include <array>
#include <cstddef>
#include <memory>

#include "phy/error_model.h"
#include "phy/mcs.h"
#include "util/profiler.h"
#include "util/time.h"

namespace wgtt::phy {

class RateControl {
 public:
  virtual ~RateControl() = default;
  /// Rate to use for the next aggregate to this client.
  virtual const McsInfo& select(Time now) = 0;
  /// True if the rate just returned by select() was a sampling probe; the
  /// MAC keeps probe aggregates short so a failed probe costs little
  /// airtime (as Minstrel's sampling does).
  virtual bool last_was_probe() const { return false; }
  /// Feedback from Block-ACK processing: `delivered` of `attempted` MPDUs
  /// of the aggregate sent at `used` got through.
  virtual void report(const McsInfo& used, unsigned attempted,
                      unsigned delivered, Time now) = 0;
};

struct MinstrelConfig {
  double ewma_weight = 0.25;  // weight of the newest observation
  unsigned probe_period = 4;  // probe a non-best rate every N selections
};

class MinstrelRateControl final : public RateControl {
 public:
  explicit MinstrelRateControl(MinstrelConfig cfg = {});
  const McsInfo& select(Time now) override;
  bool last_was_probe() const override { return last_was_probe_; }
  void report(const McsInfo& used, unsigned attempted, unsigned delivered,
              Time now) override;

  /// Current success-probability estimate for an MCS (for tests/telemetry).
  double success_estimate(unsigned mcs_index) const;

 private:
  unsigned best_rate_index() const;

  MinstrelConfig cfg_;
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_select_ = nullptr;
  struct RateStats {
    double ewma_prob = 1.0;  // optimistic start => rates get sampled
    bool ever_reported = false;
  };
  std::array<RateStats, kNumMcs> stats_{};
  unsigned selections_ = 0;
  unsigned probe_cursor_ = 0;  // cycles the lookaround pattern
  bool last_was_probe_ = false;
};

/// Channel-aware selection from the most recent ESNR estimate, falling back
/// to a robust rate when the estimate is stale (older than `max_age`).
class EsnrRateControl final : public RateControl {
 public:
  EsnrRateControl(const ErrorModel& error_model, Time max_age = Time::ms(50),
                  std::size_t mpdu_bytes = 1460);
  const McsInfo& select(Time now) override;
  void report(const McsInfo&, unsigned, unsigned, Time) override {}

  void update_esnr(double esnr_db, Time now);

 private:
  const ErrorModel& error_model_;
  Time max_age_;
  std::size_t mpdu_bytes_;
  double esnr_db_ = 0.0;
  Time esnr_at_ = Time::zero();
  bool have_esnr_ = false;
};

}  // namespace wgtt::phy
