// Packet-error model: delivery probability as a function of ESNR and MCS.
//
// Halperin et al. show that the delivery-vs-ESNR curve of a coded 802.11
// rate is a sharp sigmoid: below a per-MCS threshold nothing gets through,
// within ~2 dB of it delivery transitions, above it delivery is clean.  We
// model exactly that: a logistic in ESNR anchored at the MCS's 50 %-PER
// point for a reference MPDU size, with the usual per-bit length scaling.
#pragma once

#include <cstddef>

#include "phy/mcs.h"
#include "util/profiler.h"

namespace wgtt::phy {

struct ErrorModelConfig {
  double logistic_slope_db = 0.8;       // transition width parameter
  std::size_t reference_bytes = 1460;   // MPDU size the anchors are quoted at
};

class ErrorModel {
 public:
  explicit ErrorModel(ErrorModelConfig cfg = {});

  /// Probability that a single MPDU of `bytes` at `m` is lost, given the
  /// effective SNR (dB) for that modulation at the receiver.
  double per(const McsInfo& m, double esnr_db, std::size_t bytes) const;

  /// Convenience: 1 - per().
  double delivery_probability(const McsInfo& m, double esnr_db,
                              std::size_t bytes) const {
    return 1.0 - per(m, esnr_db, bytes);
  }

  /// Highest MCS whose predicted PER at this ESNR is below `target_per`
  /// (returns MCS 0 if none qualifies) — used by the ESNR-driven rate
  /// selection path.
  const McsInfo& best_mcs_for(double esnr_db, std::size_t bytes,
                              double target_per = 0.1) const;

 private:
  ErrorModelConfig cfg_;
  // Host-time profiling of the PER-driven MCS scan; null without a profiler
  // context (per() itself is too cheap to time without skewing the result).
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_mcs_ = nullptr;
};

}  // namespace wgtt::phy
