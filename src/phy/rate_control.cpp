#include "phy/rate_control.h"

#include <algorithm>

namespace wgtt::phy {

MinstrelRateControl::MinstrelRateControl(MinstrelConfig cfg) : cfg_(cfg) {
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_select_ = &p->section("phy.rate_select");
  }
}

unsigned MinstrelRateControl::best_rate_index() const {
  unsigned best = 0;
  double best_tput = -1.0;
  for (unsigned i = 0; i < kNumMcs; ++i) {
    const double p = stats_[i].ewma_prob;
    // Rates with hopeless delivery are excluded outright (Minstrel's
    // "prob < 10%" rule) unless nothing else qualifies.
    const double tput = mcs(i).rate_mbps_lgi * (p < 0.1 ? 0.0 : p);
    if (tput > best_tput) {
      best_tput = tput;
      best = i;
    }
  }
  return best;
}

const McsInfo& MinstrelRateControl::select(Time) {
  prof::ScopedSection timer(prof_, p_select_);
  ++selections_;
  const unsigned best = best_rate_index();
  if (cfg_.probe_period > 0 && selections_ % cfg_.probe_period == 0) {
    // Lookaround sampling, biased to the neighbourhood of the current best
    // rate so the controller climbs quickly when the channel improves (the
    // dominant pattern in the picocell regime: every approach to a cell
    // centre is an upswing).  The MAC keeps probe aggregates short.
    static constexpr int kPattern[] = {+1, +2, -1, +1, +3, -2};
    constexpr unsigned kPatternLen = sizeof(kPattern) / sizeof(kPattern[0]);
    const int offset = kPattern[probe_cursor_ % kPatternLen];
    ++probe_cursor_;
    const int candidate = static_cast<int>(best) + offset;
    if (candidate >= 0 && candidate < static_cast<int>(kNumMcs) &&
        candidate != static_cast<int>(best)) {
      last_was_probe_ = true;
      return mcs(static_cast<unsigned>(candidate));
    }
  }
  last_was_probe_ = false;
  return mcs(best);
}

void MinstrelRateControl::report(const McsInfo& used, unsigned attempted,
                                 unsigned delivered, Time) {
  if (attempted == 0) return;
  RateStats& st = stats_[used.index];
  const double sample =
      static_cast<double>(delivered) / static_cast<double>(attempted);
  if (!st.ever_reported) {
    st.ewma_prob = sample;
    st.ever_reported = true;
  } else {
    st.ewma_prob =
        (1.0 - cfg_.ewma_weight) * st.ewma_prob + cfg_.ewma_weight * sample;
  }
}

double MinstrelRateControl::success_estimate(unsigned mcs_index) const {
  return stats_[std::min<unsigned>(mcs_index, kNumMcs - 1)].ewma_prob;
}

EsnrRateControl::EsnrRateControl(const ErrorModel& error_model, Time max_age,
                                 std::size_t mpdu_bytes)
    : error_model_(error_model), max_age_(max_age), mpdu_bytes_(mpdu_bytes) {}

const McsInfo& EsnrRateControl::select(Time now) {
  if (!have_esnr_ || now - esnr_at_ > max_age_) return basic_mcs();
  return error_model_.best_mcs_for(esnr_db_, mpdu_bytes_);
}

void EsnrRateControl::update_esnr(double esnr_db, Time now) {
  esnr_db_ = esnr_db;
  esnr_at_ = now;
  have_esnr_ = true;
}

}  // namespace wgtt::phy
