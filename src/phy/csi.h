// Channel State Information snapshot.
//
// The Atheros CSI Tool on each WGTT AP reports the complex channel response
// of all 56 HT20 OFDM subcarriers for every overheard uplink frame (§3.1.1).
// We carry the derived per-subcarrier SNRs — the input to the Effective SNR
// computation — plus the aggregate RSSI used by the 802.11r baseline.
#pragma once

#include <array>
#include <cstddef>

#include "util/time.h"

namespace wgtt::phy {

constexpr std::size_t kNumSubcarriers = 56;

struct Csi {
  std::array<double, kNumSubcarriers> subcarrier_snr_db{};
  double rssi_dbm = -100.0;  // wideband received power
  Time measured_at;

  double mean_snr_db() const {
    double s = 0.0;
    for (double v : subcarrier_snr_db) s += v;
    return s / static_cast<double>(kNumSubcarriers);
  }
};

}  // namespace wgtt::phy
