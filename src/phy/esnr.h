// Effective SNR, after Halperin et al., "Predictable 802.11 Packet Delivery
// from Wireless Channel Measurements" (SIGCOMM 2010).
//
// A frequency-selective channel delivers different SNRs on different OFDM
// subcarriers; a flat average over-estimates link quality when a few deep
// fades dominate the error rate.  ESNR instead (1) maps each subcarrier's
// SNR to the bit-error rate of the target modulation, (2) averages the BERs,
// and (3) inverts the BER curve to express the result as the SNR of an
// equivalent *flat* channel.  WGTT uses ESNR as its AP-selection metric
// (§3.1.1) because it accurately predicts delivery under strong multipath.
#pragma once

#include "phy/csi.h"
#include "phy/mcs.h"

namespace wgtt::phy {

/// Uncoded bit-error rate of `mod` at the given symbol SNR (linear).
double ber(Modulation mod, double snr_linear);

/// Inverse of ber(): the linear SNR at which `mod` attains `target_ber`.
/// Monotone bisection; exact to ~1e-4 dB.
double ber_inverse(Modulation mod, double target_ber);

/// Effective SNR in dB of the measured channel for the given modulation.
double effective_snr_db(const Csi& csi, Modulation mod);

/// The scalar selection metric used by the WGTT controller: ESNR for the
/// mid-table modulation (16-QAM), a good discriminator across the whole
/// operating range.
double selection_esnr_db(const Csi& csi);

}  // namespace wgtt::phy
