// Effective SNR, after Halperin et al., "Predictable 802.11 Packet Delivery
// from Wireless Channel Measurements" (SIGCOMM 2010).
//
// A frequency-selective channel delivers different SNRs on different OFDM
// subcarriers; a flat average over-estimates link quality when a few deep
// fades dominate the error rate.  ESNR instead (1) maps each subcarrier's
// SNR to the bit-error rate of the target modulation, (2) averages the BERs,
// and (3) inverts the BER curve to express the result as the SNR of an
// equivalent *flat* channel.  WGTT uses ESNR as its AP-selection metric
// (§3.1.1) because it accurately predicts delivery under strong multipath.
#pragma once

#include <span>

#include "phy/csi.h"
#include "phy/mcs.h"

namespace wgtt::phy {

/// Uncoded bit-error rate of `mod` at the given symbol SNR (linear).
double ber(Modulation mod, double snr_linear);

/// Inverse of ber(): the linear SNR at which `mod` attains `target_ber`.
/// Monotone bisection; exact to ~1e-4 dB.
double ber_inverse(Modulation mod, double target_ber);

/// Effective SNR in dB of the measured channel for the given modulation.
double effective_snr_db(const Csi& csi, Modulation mod);

/// Same computation on a bare per-subcarrier SNR array — the hot-path
/// entry point for callers that never need the full Csi (RSSI etc.); the
/// Csi overload delegates here, so both are bitwise-identical.
///
/// Uses the vectorized libmvec kernels when available: results are
/// ULP-bounded against reference_effective_snr_db(), not bitwise (see
/// DESIGN.md on the reference-vs-optimized seam).
double effective_snr_db(std::span<const double> subcarrier_snr_db,
                        Modulation mod);

/// The retained scalar reference: per-subcarrier pow/erfc through libm,
/// exactly the pre-optimization implementation.  The differential suite
/// asserts effective_snr_db() stays within tight bounds of this, and it is
/// the runtime fallback when vecm::available() is false.
double reference_effective_snr_db(std::span<const double> subcarrier_snr_db,
                                  Modulation mod);

/// The scalar selection metric used by the WGTT controller: ESNR for the
/// mid-table modulation (16-QAM), a good discriminator across the whole
/// operating range.
double selection_esnr_db(const Csi& csi);
double selection_esnr_db(std::span<const double> subcarrier_snr_db);

}  // namespace wgtt::phy
