#include "phy/error_model.h"

#include <algorithm>
#include <cmath>

namespace wgtt::phy {

ErrorModel::ErrorModel(ErrorModelConfig cfg) : cfg_(cfg) {
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_mcs_ = &p->section("phy.mcs_select");
  }
}

double ErrorModel::per(const McsInfo& m, double esnr_db,
                       std::size_t bytes) const {
  // Logistic PER at the reference length...
  const double x = (esnr_db - m.per50_esnr_db) / cfg_.logistic_slope_db;
  // Guard against overflow in exp().
  double per_ref;
  if (x > 40.0) {
    per_ref = 0.0;
  } else if (x < -40.0) {
    per_ref = 1.0;
  } else {
    per_ref = 1.0 / (1.0 + std::exp(x));
  }
  if (bytes == cfg_.reference_bytes || per_ref <= 0.0 || per_ref >= 1.0) {
    return std::clamp(per_ref, 0.0, 1.0);
  }
  // ...then scale to the actual length: success is per-bit-independent, so
  // P_success(len) = P_success(ref)^(len/ref).
  const double ratio =
      static_cast<double>(std::max<std::size_t>(bytes, 1)) /
      static_cast<double>(cfg_.reference_bytes);
  return std::clamp(1.0 - std::pow(1.0 - per_ref, ratio), 0.0, 1.0);
}

const McsInfo& ErrorModel::best_mcs_for(double esnr_db, std::size_t bytes,
                                        double target_per) const {
  prof::ScopedSection timer(prof_, p_mcs_);
  const McsInfo* best = &mcs(0);
  for (const McsInfo& m : mcs_table()) {
    if (per(m, esnr_db, bytes) <= target_per) best = &m;
  }
  return *best;
}

}  // namespace wgtt::phy
