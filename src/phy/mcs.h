// 802.11n HT20 single-spatial-stream MCS table.
//
// The testbed AP (TP-Link N750 / Atheros AR9344) drives one spatial stream
// through the splitter-combiner (paper §4.2 footnote), so MCS 0-7 apply.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

namespace wgtt::phy {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Constellation size M.
unsigned modulation_order(Modulation m);
const char* to_string(Modulation m);

struct McsInfo {
  unsigned index = 0;
  Modulation modulation = Modulation::kBpsk;
  double code_rate = 0.5;
  double rate_mbps_lgi = 6.5;  // 800 ns guard interval
  double rate_mbps_sgi = 7.2;  // 400 ns guard interval
  /// ESNR (dB) at which a 1460-byte MPDU has 50 % error probability;
  /// anchor point of the logistic PER model (error_model.h).
  double per50_esnr_db = 2.0;

  double rate_mbps(bool short_gi) const {
    return short_gi ? rate_mbps_sgi : rate_mbps_lgi;
  }
  double rate_bps(bool short_gi) const { return rate_mbps(short_gi) * 1e6; }
};

constexpr std::size_t kNumMcs = 8;

/// The full HT20 1-stream table, MCS 0..7.
std::span<const McsInfo, kNumMcs> mcs_table();

const McsInfo& mcs(unsigned index);

/// Robust rate used for management/control frames and Block ACKs.
const McsInfo& basic_mcs();

std::string to_string(const McsInfo& m);

}  // namespace wgtt::phy
