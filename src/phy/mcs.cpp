#include "phy/mcs.h"

#include <cassert>
#include <sstream>

namespace wgtt::phy {

unsigned modulation_order(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 2;
    case Modulation::kQpsk: return 4;
    case Modulation::kQam16: return 16;
    case Modulation::kQam64: return 64;
  }
  return 2;
}

const char* to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

namespace {
// per50_esnr_db values follow the relative spacing of Halperin et al.'s
// measured delivery-vs-ESNR curves for HT20 (SIGCOMM'10, Fig. 5) shifted to
// typical Atheros sensitivity.
constexpr std::array<McsInfo, kNumMcs> kTable{{
    {0, Modulation::kBpsk, 1.0 / 2, 6.5, 7.2, 2.0},
    {1, Modulation::kQpsk, 1.0 / 2, 13.0, 14.4, 5.0},
    {2, Modulation::kQpsk, 3.0 / 4, 19.5, 21.7, 7.5},
    {3, Modulation::kQam16, 1.0 / 2, 26.0, 28.9, 10.5},
    {4, Modulation::kQam16, 3.0 / 4, 39.0, 43.3, 14.0},
    {5, Modulation::kQam64, 2.0 / 3, 52.0, 57.8, 18.0},
    {6, Modulation::kQam64, 3.0 / 4, 58.5, 65.0, 19.5},
    {7, Modulation::kQam64, 5.0 / 6, 65.0, 72.2, 21.5},
}};
}  // namespace

std::span<const McsInfo, kNumMcs> mcs_table() { return kTable; }

const McsInfo& mcs(unsigned index) {
  assert(index < kNumMcs);
  return kTable[index];
}

const McsInfo& basic_mcs() { return kTable[0]; }

std::string to_string(const McsInfo& m) {
  std::ostringstream oss;
  oss << "MCS" << m.index << " (" << to_string(m.modulation) << " r="
      << m.code_rate << ", " << m.rate_mbps_lgi << "/" << m.rate_mbps_sgi
      << " Mb/s)";
  return oss.str();
}

}  // namespace wgtt::phy
