#include "net/backhaul.h"

#include <algorithm>

namespace wgtt::net {

namespace {

/// Frames whose backhaul hops get causal annotations: the switch-protocol
/// control messages (always — they are the switch critical path) and the
/// sampled data packets.  CSI reports, heartbeats, and the other chatty
/// control types stay edge-only, keeping the stream proportional to the
/// interesting traffic.
bool causal_annotated(const TunneledPacket& f, const obs::CausalTracer& c) {
  if (f.inner == nullptr) return false;
  switch (f.inner->type) {
    case PacketType::kStop:
    case PacketType::kStart:
    case PacketType::kSwitchAck:
      return true;
    case PacketType::kData:
    case PacketType::kTcpAck:
      return c.sampled(f.inner->uid);
    default:
      return false;
  }
}

}  // namespace

Backhaul::Backhaul(sim::Scheduler& sched, BackhaulConfig cfg, Rng rng)
    : sched_(sched), cfg_(cfg), rng_(rng) {
  if (auto* reg = metrics::MetricsRegistry::current()) {
    m_latency_us_ = &reg->histogram(
        "net.backhaul_latency_us", metrics::exponential_buckets(25.0, 2.0, 10));
    m_bytes_ = &reg->counter("net.backhaul_bytes");
  }
  recorder_ = FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
  injector_ = FaultInjector::current();
}

void Backhaul::attach(NodeId node, DeliverFn on_receive) {
  nodes_[node] = std::move(on_receive);
}

Time Backhaul::delivery_delay(std::size_t bytes) {
  const double serialization_s =
      static_cast<double>(bytes) * 8.0 / cfg_.link_rate_bps;
  Time d = cfg_.base_latency + Time::sec(serialization_s);
  if (cfg_.jitter > Time::zero()) {
    d += Time::ns(rng_.uniform_int(0, cfg_.jitter.to_ns()));
  }
  return d;
}

void Backhaul::send(TunneledPacket frame) {
  const bool rec = recorder_ && frame.inner != nullptr &&
                   flight_recorded(frame.inner->type);
  auto it = nodes_.find(frame.outer_dst);
  // Note the evaluation order matches the original short-circuit: the loss
  // coin is only tossed for attached destinations (RNG stream unchanged).
  bool dropped = false;
  DropCause drop_cause = DropCause::kUnattached;
  if (it == nodes_.end()) {
    dropped = true;
    drop_cause = DropCause::kUnattached;
  } else if (cfg_.loss_rate > 0.0 && rng_.bernoulli(cfg_.loss_rate)) {
    dropped = true;
    drop_cause = DropCause::kLoss;
  }
  // Injected link faults come last so they never perturb the loss-coin
  // stream, and their coins come from the injector's own RNG.
  LinkImpairment fault;
  if (!dropped && injector_ != nullptr) {
    fault = injector_->link(frame.outer_src, frame.outer_dst);
    if (fault.blocked ||
        (fault.drop_rate > 0.0 && injector_->coin(fault.drop_rate))) {
      dropped = true;
      drop_cause = DropCause::kFaultInjected;
    }
  }
  if (dropped) {
    ++frames_dropped_;
    if (health_ && frame.inner != nullptr && flight_recorded(frame.inner->type)) {
      health_->packet_dropped();
    }
    if (rec) {
      recorder_->drop(frame.inner->uid, sched_.now(), Hop::kBackhaulDrop,
                      frame.outer_src, drop_cause, {{"dst", frame.outer_dst}});
    }
    return;
  }
  ++frames_sent_;
  bytes_sent_ += frame.wire_bytes;

  // Fault-injected latency spikes stack on top of the normal delay model
  // (after delivery_delay so the jitter draw is undisturbed).
  Time arrival =
      sched_.now() + delivery_delay(frame.wire_bytes) + fault.extra_latency;
  // msg_reorder: a coin-selected control frame gains bounded extra delay and
  // bypasses the FIFO book, so frames sent after it may overtake it — the
  // in-order guarantee the switch protocol otherwise enjoys is broken for
  // exactly these frames.  Data stays FIFO: TCP reordering is modelled at
  // the MAC, not here.
  const bool ctrl = frame.inner != nullptr && !flight_recorded(frame.inner->type);
  bool reordered = false;
  if (ctrl && fault.reorder_rate > 0.0 && injector_->coin(fault.reorder_rate)) {
    reordered = true;
    ++frames_reordered_;
    arrival += Time::ns(
        injector_->rng().uniform_int(1, std::max<std::int64_t>(
                                            1, fault.reorder_jitter.to_ns())));
  }
  if (!reordered) {
    // FIFO per (src, dst): never deliver earlier than a previously sent
    // frame.
    auto key = std::make_pair(frame.outer_src, frame.outer_dst);
    auto [prev, inserted] = last_delivery_.try_emplace(key, arrival);
    if (!inserted) {
      arrival = std::max(arrival, prev->second);
      prev->second = arrival;
    }
  }

  if (m_latency_us_) {
    m_latency_us_->record((arrival - sched_.now()).to_us());
    m_bytes_->add(frame.wire_bytes);
  }
  if (rec) {
    recorder_->record(frame.inner->uid, sched_.now(), Hop::kBackhaulTx,
                      frame.outer_src,
                      {{"dst", frame.outer_dst},
                       {"bytes", static_cast<std::int64_t>(frame.wire_bytes)}});
  }
  const bool causal = causal_ != nullptr && causal_annotated(frame, *causal_);
  if (causal) {
    causal_->annotate("backhaul.tx",
                      {{"uid", static_cast<std::int64_t>(frame.inner->uid)},
                       {"src", frame.outer_src},
                       {"dst", frame.outer_dst}});
  }
  // msg_dup: schedule a second, slightly later delivery of the same control
  // frame (same uid, same ctrl_seq — exactly what a duplicating switch
  // fabric produces).  The copy also bypasses the FIFO book.
  if (ctrl && fault.dup_rate > 0.0 && injector_->coin(fault.dup_rate)) {
    ++frames_duplicated_;
    const Time dup_arrival =
        arrival + Time::ns(injector_->rng().uniform_int(1, Time::ms(1).to_ns()));
    DeliverFn& dup_deliver = it->second;
    TunneledPacket copy = frame;
    sched_.schedule_at(dup_arrival,
                       [&dup_deliver, copy = std::move(copy)]() {
                         dup_deliver(copy);
                       });
  }
  DeliverFn& deliver = it->second;
  sched_.schedule_at(arrival, [this, rec, causal, &deliver,
                               frame = std::move(frame)]() {
    if (rec) {
      recorder_->record(frame.inner->uid, sched_.now(), Hop::kBackhaulRx,
                        frame.outer_dst, {{"src", frame.outer_src}});
    }
    if (causal) {
      causal_->annotate("backhaul.rx",
                        {{"uid", static_cast<std::int64_t>(frame.inner->uid)},
                         {"src", frame.outer_src},
                         {"dst", frame.outer_dst}});
    }
    deliver(frame);
  });
}

}  // namespace wgtt::net
