// Per-packet flight recorder (JSONL lifecycle provenance).
//
// The paper's headline claims are per-packet claims — zero downlink loss
// across a sub-25 ms switch gap, uplink de-duplication on src ++ IP-ID,
// cyclic-index replay on handover — but metrics, traces, telemetry, and the
// decision log are all aggregate views.  The FlightRecorder closes that gap:
// it records every lifecycle hop of a sampled set of data packets, keyed by
// Packet::uid, from the transport send through controller fan-out, backhaul,
// the per-AP cyclic/kernel/NIC queue stages, and each MAC transmission
// attempt, down to delivery, drop, or dedup suppression.  Each record is
// stamped with the simulated clock and the acting node id, so a packet's
// records line up with trace spans and decision-log entries by t_us.
//
// One JSON object per line, hand-serialized with a fixed field order and
// pure-integer timestamp formatting (the tracer's), so a fixed-seed run
// emits byte-identical output on any platform, any thread count.
//
// Thread-scoped exactly like LogSink / MetricsRegistry / Tracer /
// DecisionLog: a FlightRecorder is owned by one Testbed, installed as the
// constructing thread's context-current recorder, and components cache
// `current()` once at construction — a null pointer (recording off, the
// default) makes every hop site a single branch with zero allocations.
//
// Sampling: a seeded uid-hash selects 1-in-N data packets, so long sweeps
// can afford full-lifecycle records without drowning in output.  Marker
// records (uid 0: switch start/done, stack activation) are always written —
// they are what `wgtt-report packets --switches` attributes packet stalls to.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include "net/packet.h"
#include "util/time.h"

namespace wgtt::net {

/// Lifecycle hop taxonomy.  Order groups the layers: transport, controller,
/// backhaul, AP queue stack, MAC, then the uid-0 marker events.
enum class Hop : std::uint8_t {
  kTransportSend,  // transport layer emitted the packet (TCP seg/ack, UDP)
  kTransportRx,    // transport layer consumed it at the far end
  kTransportDrop,  // delivered to a flow nobody registered (miswired run)
  kCtrlFanout,     // controller stamped the cyclic index + sent one AP a copy
  kCtrlUplink,     // controller forwarded a de-duplicated uplink packet
  kDedupSuppress,  // controller suppressed a duplicate (48-bit src++IP-ID)
  kBackhaulTx,     // tunneled frame entered the wired backhaul
  kBackhaulRx,     // tunneled frame delivered by the backhaul
  kBackhaulDrop,   // backhaul loss or unattached destination
  kApEnqueue,      // AP inserted the packet into its cyclic queue
  kApNic,          // packet crossed the kernel -> NIC boundary (seq stamped)
  kApDrop,         // AP-side discard (stale lap, kernel flush, unknown client)
  kMacTx,          // one MPDU transmission attempt inside an A-MPDU
  kMacAck,         // MPDU covered by the (merged) Block ACK
  kMacRequeue,     // MPDU failed, re-queued for another attempt
  kMacDrop,        // MPDU abandoned (retry limit, quench, handover flush)
  kMacRx,          // MPDU decoded at the receiving radio
  kApActivate,     // marker: stack activated at start(c, k)
  kSwitchStart,    // marker: controller initiated a switch
  kSwitchDone,     // marker: switch ack received, new AP active
  kFaultOn,        // marker: a FaultInjector window opened on this node/link
  kFaultOff,       // marker: the fault window closed
};
constexpr std::size_t kHopCount = 22;

const char* to_string(Hop h);

/// Why a packet left the pipeline before delivery.  Drop/suppress hops carry
/// exactly one of these — a compile-time enum (not a free-form string) so a
/// new drop site cannot ship without a cause and `wgtt-report packets` can
/// enumerate the full autopsy vocabulary.
enum class DropCause : std::uint8_t {
  kNoFlowHandler,  // delivered to a flow nobody registered (miswired run)
  kUnattached,     // backhaul destination has no handler attached
  kLoss,           // backhaul random loss (BackhaulConfig::loss_rate)
  kDuplicate,      // controller dedup suppressed an uplink copy
  kStale,          // cyclic-queue packet older than max_packet_age
  kKernelFlush,    // kernel queue flushed on stack deactivation
  kUnknownClient,  // AP received a downlink for a client it never saw
  kHandoverFlush,  // NIC queue flushed when the client moved to another AP
  kQuench,         // in-flight exchange abandoned after a handover flush
  kRetryLimit,     // MPDU exhausted its MAC retry budget
  kFaultInjected,  // destroyed by an injected infrastructure fault
};
constexpr std::size_t kDropCauseCount = 11;

const char* to_string(DropCause c);

/// One integer "extra" field on a record (key must be a static string and
/// must not collide with uid/t_us/hop/node/cause).
struct FlightArg {
  const char* key;
  std::int64_t value;
};

struct FlightRecorderConfig {
  std::uint64_t seed = 1;    // sampler seed (the Testbed passes its sim seed)
  std::uint32_t sample = 1;  // record 1-in-N data packets (1 = every packet)
};

/// JSONL schema version emitted as the stream's header line
/// ({"kind":"schema","stream":"wgtt.packets","version":N}); wgtt-report
/// refuses packet logs whose version it does not understand (exit 2).
constexpr int kPacketLogSchemaVersion = 1;

/// True for the packet types the recorder follows: transport payloads.
/// Control-plane packets (stop/start/CSI/...) are visible through markers
/// and the trace instead.
inline bool flight_recorded(PacketType t) {
  return t == PacketType::kData || t == PacketType::kTcpAck;
}

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Seeded uid-hash sampler: deterministic for a fixed (seed, sample),
  /// independent of arrival order.  uid 0 (markers) is always sampled.
  bool sampled(std::uint64_t uid) const;

  /// Append one lifecycle record for `uid` (no-op unless sampled).  For
  /// drop/suppress hops use drop() instead — it makes the cause mandatory.
  void record(std::uint64_t uid, Time t, Hop hop, NodeId node,
              std::initializer_list<FlightArg> args = {});

  /// Append a terminal record for `uid` with a mandatory cause.  Every site
  /// that removes a packet from the pipeline (transport/backhaul/AP/MAC
  /// drops, dedup suppression) must go through this overload.
  void drop(std::uint64_t uid, Time t, Hop hop, NodeId node, DropCause cause,
            std::initializer_list<FlightArg> args = {});

  /// Append a uid-0 marker record (switch/activation events); never sampled
  /// away, so switch attribution works at any sampling rate.
  void marker(Time t, Hop hop, NodeId node,
              std::initializer_list<FlightArg> args = {});

  std::size_t records() const { return records_; }
  /// The accumulated JSONL document (one '\n'-terminated object per line).
  const std::string& jsonl() const { return out_; }
  const FlightRecorderConfig& config() const { return cfg_; }

  /// The recorder the calling thread's current simulation records into, or
  /// nullptr when packet recording is off (the default).
  static FlightRecorder* current();

 private:
  void append(std::uint64_t uid, Time t, Hop hop, NodeId node,
              std::initializer_list<FlightArg> args, const char* cause);

  FlightRecorderConfig cfg_;
  std::string out_;
  std::size_t records_ = 0;
};

/// Install `rec` as the calling thread's current flight recorder for this
/// object's lifetime (RAII; nests).  Passing nullptr keeps the current one.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder* rec);
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* installed_ = nullptr;
  FlightRecorder* previous_ = nullptr;
};

}  // namespace wgtt::net
