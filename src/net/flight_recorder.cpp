#include "net/flight_recorder.h"

#include "util/trace.h"

namespace wgtt::net {

const char* to_string(Hop h) {
  switch (h) {
    case Hop::kTransportSend: return "transport_send";
    case Hop::kTransportRx: return "transport_rx";
    case Hop::kTransportDrop: return "transport_drop";
    case Hop::kCtrlFanout: return "ctrl_fanout";
    case Hop::kCtrlUplink: return "ctrl_uplink";
    case Hop::kDedupSuppress: return "dedup_suppress";
    case Hop::kBackhaulTx: return "backhaul_tx";
    case Hop::kBackhaulRx: return "backhaul_rx";
    case Hop::kBackhaulDrop: return "backhaul_drop";
    case Hop::kApEnqueue: return "ap_enqueue";
    case Hop::kApNic: return "ap_nic";
    case Hop::kApDrop: return "ap_drop";
    case Hop::kMacTx: return "mac_tx";
    case Hop::kMacAck: return "mac_ack";
    case Hop::kMacRequeue: return "mac_requeue";
    case Hop::kMacDrop: return "mac_drop";
    case Hop::kMacRx: return "mac_rx";
    case Hop::kApActivate: return "ap_activate";
    case Hop::kSwitchStart: return "switch_start";
    case Hop::kSwitchDone: return "switch_done";
    case Hop::kFaultOn: return "fault_on";
    case Hop::kFaultOff: return "fault_off";
  }
  return "?";
}

const char* to_string(DropCause c) {
  switch (c) {
    case DropCause::kNoFlowHandler: return "no_flow_handler";
    case DropCause::kUnattached: return "unattached";
    case DropCause::kLoss: return "loss";
    case DropCause::kDuplicate: return "duplicate";
    case DropCause::kStale: return "stale";
    case DropCause::kKernelFlush: return "kernel_flush";
    case DropCause::kUnknownClient: return "unknown_client";
    case DropCause::kHandoverFlush: return "handover_flush";
    case DropCause::kQuench: return "quench";
    case DropCause::kRetryLimit: return "retry_limit";
    case DropCause::kFaultInjected: return "fault_injected";
  }
  return "?";
}

namespace {

thread_local FlightRecorder* t_current_flight_recorder = nullptr;

// splitmix64 finalizer: cheap, well-mixed uid hash for the sampler.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(cfg) {
  out_.reserve(1 << 16);
  // Schema header line.  Not a lifecycle record (records_ stays 0): it
  // declares the stream identity + version so consumers (wgtt-report, soak
  // baselines) fail loudly on a format they do not understand instead of
  // mis-parsing it.
  out_ += "{\"kind\":\"schema\",\"stream\":\"wgtt.packets\",\"version\":";
  out_ += std::to_string(kPacketLogSchemaVersion);
  out_ += "}\n";
}

bool FlightRecorder::sampled(std::uint64_t uid) const {
  if (uid == 0 || cfg_.sample <= 1) return true;
  return mix64(uid ^ cfg_.seed) % cfg_.sample == 0;
}

void FlightRecorder::record(std::uint64_t uid, Time t, Hop hop, NodeId node,
                            std::initializer_list<FlightArg> args) {
  append(uid, t, hop, node, args, nullptr);
}

void FlightRecorder::drop(std::uint64_t uid, Time t, Hop hop, NodeId node,
                          DropCause cause,
                          std::initializer_list<FlightArg> args) {
  append(uid, t, hop, node, args, to_string(cause));
}

void FlightRecorder::append(std::uint64_t uid, Time t, Hop hop, NodeId node,
                            std::initializer_list<FlightArg> args,
                            const char* cause) {
  if (!sampled(uid)) return;
  // Hand-rolled serialization with a fixed field order and integer-only
  // number formatting (the decision log's recipe) — every byte deterministic.
  std::string& s = out_;
  s += "{\"uid\":";
  s += std::to_string(uid);
  s += ",\"t_us\":";
  s += trace::Tracer::format_ts(t);
  s += ",\"hop\":\"";
  s += to_string(hop);
  s += "\",\"node\":";
  s += std::to_string(node);
  for (const FlightArg& a : args) {
    s += ",\"";
    s += a.key;
    s += "\":";
    s += std::to_string(a.value);
  }
  if (cause != nullptr) {
    s += ",\"cause\":\"";
    s += cause;
    s += '"';
  }
  s += "}\n";
  ++records_;
}

void FlightRecorder::marker(Time t, Hop hop, NodeId node,
                            std::initializer_list<FlightArg> args) {
  append(0, t, hop, node, args, nullptr);
}

FlightRecorder* FlightRecorder::current() { return t_current_flight_recorder; }

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder* rec) {
  if (rec == nullptr) return;
  installed_ = rec;
  previous_ = t_current_flight_recorder;
  t_current_flight_recorder = rec;
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
  if (installed_ != nullptr) t_current_flight_recorder = previous_;
}

}  // namespace wgtt::net
