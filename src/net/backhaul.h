// Switched-Ethernet backhaul model.
//
// The WGTT testbed interconnects all APs and the controller through a wired
// Ethernet switch (paper §4).  We model it as a full mesh where each frame
// experiences store-and-forward serialization at the link rate plus a fixed
// propagation/switching latency and optional jitter.  Frames between a given
// (src, dst) pair are delivered in FIFO order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "net/fault_injector.h"
#include "net/flight_recorder.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/causal.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/time.h"

namespace wgtt::net {

struct BackhaulConfig {
  double link_rate_bps = 1e9;        // gigabit Ethernet
  Time base_latency = Time::us(100); // switch + cable + kernel path
  Time jitter = Time::us(20);        // uniform in [0, jitter]
  double loss_rate = 0.0;            // wired loss (normally 0; fault injection)
};

class Backhaul {
 public:
  using DeliverFn = std::function<void(const TunneledPacket&)>;

  Backhaul(sim::Scheduler& sched, BackhaulConfig cfg, Rng rng);

  /// Register the receive handler for a node.  A node must be attached
  /// before traffic can be delivered to it.
  void attach(NodeId node, DeliverFn on_receive);

  /// Send a tunneled frame; delivery is scheduled per the latency model.
  /// Frames to unattached nodes are counted as dropped.
  void send(TunneledPacket frame);

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Adversarial deliveries manufactured by msg_dup / msg_reorder windows
  /// (always 0 outside chaos runs).
  std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  std::uint64_t frames_reordered() const { return frames_reordered_; }

 private:
  Time delivery_delay(std::size_t bytes);

  sim::Scheduler& sched_;
  BackhaulConfig cfg_;
  Rng rng_;
  std::map<NodeId, DeliverFn> nodes_;
  // Last scheduled delivery per (src, dst), to preserve FIFO order even when
  // jitter would reorder frames.
  std::map<std::pair<NodeId, NodeId>, Time> last_delivery_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t frames_reordered_ = 0;
  // Instrumentation (null when the sim has no metrics context).
  metrics::Histogram* m_latency_us_ = nullptr;
  metrics::Counter* m_bytes_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
  // Fault injection (null outside chaos runs): per-frame link impairment
  // queries; drop coins come from the injector's stream, not rng_.
  FaultInjector* injector_ = nullptr;
};

}  // namespace wgtt::net
