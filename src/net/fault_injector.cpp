#include "net/fault_injector.h"

#include <string>

#include "util/health.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace wgtt::net {
namespace {

thread_local FaultInjector* t_current_fault_injector = nullptr;

}  // namespace

FaultInjector::FaultInjector(sim::Scheduler& sched, sim::FaultPlan plan,
                             Rng rng)
    : sched_(sched), plan_(std::move(plan)), rng_(rng) {
  if (auto* reg = metrics::MetricsRegistry::current()) {
    m_injected_ = &reg->counter("fault.injected");
    m_cleared_ = &reg->counter("fault.cleared");
    m_active_ = &reg->gauge("fault.active");
    m_by_kind_.resize(sim::kFaultKindCount);
    for (std::size_t k = 0; k < sim::kFaultKindCount; ++k) {
      m_by_kind_[k] = &reg->counter(
          std::string("fault.") + to_string(static_cast<sim::FaultKind>(k)));
    }
  }
  tracer_ = trace::Tracer::current();
  recorder_ = FlightRecorder::current();
  health_ = obs::HealthEngine::current();
  for (const sim::FaultEvent& ev : plan_.events) {
    sched_.schedule_at(ev.at, [this, &ev] { apply(ev, true); });
    if (ev.duration > Time::zero()) {
      sched_.schedule_at(ev.at + ev.duration, [this, &ev] { apply(ev, false); });
    }
  }
}

FaultInjector* FaultInjector::current() { return t_current_fault_injector; }

std::pair<NodeId, NodeId> FaultInjector::link_key(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

bool FaultInjector::ap_down(NodeId ap) const {
  const auto it = aps_.find(ap);
  return it != aps_.end() && it->second.down > 0;
}

CsiFaultMode FaultInjector::csi_mode(NodeId ap) const {
  const auto it = aps_.find(ap);
  if (it == aps_.end()) return CsiFaultMode::kNormal;
  if (it->second.garbage > 0) return CsiFaultMode::kGarbage;
  if (it->second.freeze > 0) return CsiFaultMode::kFreeze;
  return CsiFaultMode::kNormal;
}

LinkImpairment FaultInjector::link(NodeId a, NodeId b) const {
  LinkImpairment imp;
  const auto it = links_.find(link_key(a, b));
  if (it == links_.end()) return imp;
  imp.blocked = it->second.blocked > 0;
  imp.drop_rate = it->second.drop_rate > 1.0 ? 1.0 : it->second.drop_rate;
  imp.extra_latency = Time::ns(it->second.extra_ns);
  imp.dup_rate = it->second.dup_rate > 1.0 ? 1.0 : it->second.dup_rate;
  imp.reorder_rate =
      it->second.reorder_rate > 1.0 ? 1.0 : it->second.reorder_rate;
  imp.reorder_jitter = Time::ns(it->second.reorder_jitter_ns);
  return imp;
}

void FaultInjector::on_ap_fault(NodeId ap, std::function<void(bool)> cb) {
  ap_callbacks_.emplace(ap, std::move(cb));
}

void FaultInjector::apply(const sim::FaultEvent& ev, bool onset) {
  const int delta = onset ? 1 : -1;
  bool crash_transition = false;
  switch (ev.kind) {
    case sim::FaultKind::kApCrash: {
      ApState& st = aps_[ev.node];
      const bool was_down = st.down > 0;
      st.down += delta;
      crash_transition = was_down != (st.down > 0);
      break;
    }
    case sim::FaultKind::kCsiFreeze:
      aps_[ev.node].freeze += delta;
      break;
    case sim::FaultKind::kCsiGarbage:
      aps_[ev.node].garbage += delta;
      break;
    case sim::FaultKind::kPartition:
      links_[link_key(ev.node, ev.peer)].blocked += delta;
      break;
    case sim::FaultKind::kLinkDrop:
      links_[link_key(ev.node, ev.peer)].drop_rate += delta * ev.rate;
      break;
    case sim::FaultKind::kLinkLatency:
      links_[link_key(ev.node, ev.peer)].extra_ns += delta * ev.extra.to_ns();
      break;
    case sim::FaultKind::kMsgDup:
      links_[link_key(ev.node, ev.peer)].dup_rate += delta * ev.rate;
      break;
    case sim::FaultKind::kMsgReorder: {
      LinkState& st = links_[link_key(ev.node, ev.peer)];
      st.reorder_rate += delta * ev.rate;
      st.reorder_jitter_ns += delta * ev.extra.to_ns();
      break;
    }
    case sim::FaultKind::kCtrlCrash: {
      // The controller is node 0 regardless of what the clause named.
      ApState& st = aps_[kControllerId];
      const bool was_down = st.down > 0;
      st.down += delta;
      crash_transition = was_down != (st.down > 0);
      break;
    }
  }
  if (onset) {
    ++faults_applied_;
    ++active_;
  } else if (active_ > 0) {
    --active_;
  }
  observe(ev, onset);
  // Fire crash subscriptions after the books are updated so a callback that
  // re-queries ap_down() sees the new state.
  if (crash_transition) {
    const NodeId victim =
        ev.kind == sim::FaultKind::kCtrlCrash ? kControllerId : ev.node;
    const auto [lo, hi] = ap_callbacks_.equal_range(victim);
    for (auto it = lo; it != hi; ++it) it->second(onset);
  }
}

void FaultInjector::observe(const sim::FaultEvent& ev, bool onset) {
  const Time now = sched_.now();
  WGTT_LOG(kInfo, "fault",
           to_string(ev.kind) << (onset ? " on" : " off") << " node="
                              << ev.node << " peer=" << ev.peer
                              << " active=" << active_);
  if (onset) {
    if (m_injected_) m_injected_->add();
    if (m_by_kind_.size() > static_cast<std::size_t>(ev.kind))
      m_by_kind_[static_cast<std::size_t>(ev.kind)]->add();
  } else if (m_cleared_) {
    m_cleared_->add();
  }
  if (m_active_) m_active_->set(static_cast<double>(active_));
  if (tracer_) {
    tracer_->instant("fault", to_string(ev.kind), now,
                     static_cast<std::int64_t>(ev.node),
                     {{"on", onset ? 1.0 : 0.0},
                      {"peer", static_cast<double>(ev.peer)}});
  }
  if (recorder_) {
    recorder_->marker(now, onset ? Hop::kFaultOn : Hop::kFaultOff, ev.node,
                      {{"kind", static_cast<std::int64_t>(ev.kind)},
                       {"peer", static_cast<std::int64_t>(ev.peer)}});
  }
  if (health_) {
    health_->fault_mark(now, to_string(ev.kind), ev.node, onset);
  }
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* inj) {
  if (inj == nullptr) return;
  installed_ = inj;
  previous_ = t_current_fault_injector;
  t_current_fault_injector = inj;
}

ScopedFaultInjector::~ScopedFaultInjector() {
  if (installed_ != nullptr) t_current_fault_injector = previous_;
}

}  // namespace wgtt::net
