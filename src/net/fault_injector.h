// Deterministic infrastructure fault injection.
//
// A FaultInjector turns a sim::FaultPlan into scheduled onset/clear events
// on the simulated clock and answers point queries from the components that
// honour faults: the Backhaul asks link(a, b) per frame, WgttAp asks
// ap_down()/csi_mode() and subscribes to crash transitions, the controller
// checks for an installed injector to arm its liveness machinery.
//
// Thread-scoped exactly like LogSink / MetricsRegistry / Tracer /
// FlightRecorder: the Testbed owns at most one injector, installs it as the
// constructing thread's context-current injector, and every component caches
// `current()` once at construction.  With no FaultPlan configured no
// injector exists, `current()` is null everywhere, and not one scheduler
// event, RNG draw, metric instrument, or trace byte differs from a build
// without this subsystem.
//
// Determinism: all fault randomness (drop-burst coins, garbage CSI values)
// comes from the injector's own RNG stream, forked from the sim seed under
// a dedicated tag, so enabling faults never perturbs the channel / MAC /
// backhaul streams and the same (plan, seed) always replays byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "net/flight_recorder.h"
#include "net/packet.h"
#include "sim/fault_plan.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/time.h"

namespace wgtt::metrics {
class Counter;
class Gauge;
}  // namespace wgtt::metrics
namespace wgtt::trace {
class Tracer;
}
namespace wgtt::obs {
class HealthEngine;
}

namespace wgtt::net {

/// How an AP's CSI pipeline is currently lying (sim::FaultKind kCsiFreeze /
/// kCsiGarbage).  Garbage wins when both windows overlap.
enum class CsiFaultMode : std::uint8_t { kNormal, kFreeze, kGarbage };

/// Net effect of every fault window currently open on one backhaul link.
struct LinkImpairment {
  bool blocked = false;          // partition: deliver nothing
  double drop_rate = 0.0;        // drop burst: per-frame loss probability
  Time extra_latency;            // latency spike: added one-way delay
  double dup_rate = 0.0;         // msg_dup: control-frame copy probability
  double reorder_rate = 0.0;     // msg_reorder: per-frame jitter probability
  Time reorder_jitter;           // msg_reorder: max added delay (FIFO bypass)
  bool impaired() const {
    return blocked || drop_rate > 0.0 || extra_latency > Time::zero() ||
           dup_rate > 0.0 || reorder_rate > 0.0;
  }
};

class FaultInjector {
 public:
  /// Schedules every plan event (onset and, for finite windows, clear) on
  /// `sched` immediately.  `rng` must be a stream dedicated to faults.
  FaultInjector(sim::Scheduler& sched, sim::FaultPlan plan, Rng rng);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The injector the calling thread's current simulation consults, or
  /// nullptr when fault injection is off (the default).
  static FaultInjector* current();

  bool ap_down(NodeId ap) const;
  /// ctrl_crash windows open on the controller (kControllerId books).
  bool ctrl_down() const { return ap_down(kControllerId); }
  CsiFaultMode csi_mode(NodeId ap) const;
  /// Combined impairment on the (undirected) link between `a` and `b`.
  LinkImpairment link(NodeId a, NodeId b) const;

  /// One Bernoulli draw from the fault stream (drop bursts).
  bool coin(double p) { return rng_.bernoulli(p); }
  /// The fault RNG stream (garbage CSI synthesis).
  Rng& rng() { return rng_; }

  /// Subscribe to crash/recover transitions of one AP; `cb(true)` fires at
  /// onset (purge queues, silence the radio), `cb(false)` at recovery.
  /// Subscribing with ap == kControllerId observes ctrl_crash windows.
  void on_ap_fault(NodeId ap, std::function<void(bool down)> cb);

  /// Onset events applied so far (fault.injected metric mirror).
  std::uint64_t faults_applied() const { return faults_applied_; }
  /// Fault windows currently open.
  std::size_t active_faults() const { return active_; }
  const sim::FaultPlan& plan() const { return plan_; }

 private:
  struct ApState {
    int down = 0;
    int freeze = 0;
    int garbage = 0;
  };
  struct LinkState {
    int blocked = 0;
    double drop_rate = 0.0;
    std::int64_t extra_ns = 0;
    double dup_rate = 0.0;
    double reorder_rate = 0.0;
    std::int64_t reorder_jitter_ns = 0;
  };
  static std::pair<NodeId, NodeId> link_key(NodeId a, NodeId b);

  void apply(const sim::FaultEvent& ev, bool onset);
  void observe(const sim::FaultEvent& ev, bool onset);

  sim::Scheduler& sched_;
  sim::FaultPlan plan_;
  Rng rng_;
  std::map<NodeId, ApState> aps_;
  std::map<std::pair<NodeId, NodeId>, LinkState> links_;
  std::multimap<NodeId, std::function<void(bool)>> ap_callbacks_;
  std::uint64_t faults_applied_ = 0;
  std::size_t active_ = 0;

  trace::Tracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
  metrics::Counter* m_injected_ = nullptr;
  metrics::Counter* m_cleared_ = nullptr;
  metrics::Gauge* m_active_ = nullptr;
  std::vector<metrics::Counter*> m_by_kind_;  // indexed by FaultKind
};

/// Install `inj` as the calling thread's current fault injector for this
/// object's lifetime (RAII; nests).  Passing nullptr keeps the current one.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* inj);
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* installed_ = nullptr;
  FaultInjector* previous_ = nullptr;
};

}  // namespace wgtt::net
