// Packet model and tunnel encapsulation.
//
// Packets are the unit passed between the transport layer, the WGTT
// controller/AP data plane, the 802.11 MAC, and the Ethernet backhaul.
// A packet is strictly immutable after creation — PacketPtr is a
// shared_ptr<const Packet> and the controller duplicates a packet to many
// APs by sharing ownership, so no per-transmission state may live on the
// packet itself.  MAC bookkeeping (retry/attempt counters, sequence
// numbers) belongs to each AP's per-peer tx state (mac::Mpdu and the AP
// queue stack), which is also where the flight recorder reads it.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>

#include "util/time.h"

namespace wgtt::net {

/// Logical node address.  The scenario layer assigns: 0 = controller,
/// 1..N = APs, kClientBase.. = clients, kServerBase.. = wired servers.
using NodeId = std::uint32_t;
constexpr NodeId kControllerId = 0;
constexpr NodeId kClientBase = 100;
constexpr NodeId kServerBase = 1000;
constexpr NodeId kBroadcast = 0xFFFFFFFFu;

inline bool is_client(NodeId id) { return id >= kClientBase && id < kServerBase; }
inline bool is_ap(NodeId id) { return id > kControllerId && id < kClientBase; }

enum class PacketType : std::uint8_t {
  kData,        // transport payload (UDP datagram or TCP segment)
  kTcpAck,      // TCP acknowledgement travelling uplink
  kCsiReport,   // AP -> controller: CSI of an overheard uplink frame (§3.1.1)
  kStop,        // controller -> AP: cease sending to client c (§3.1.2)
  kStart,       // AP -> AP: begin at cyclic index k (§3.1.2)
  kSwitchAck,   // AP -> controller: switch complete (§3.1.2)
  kBlockAckFwd, // AP -> AP: forwarded overheard Block ACK (§3.2.1)
  kAssocSync,   // AP -> AP: client association state (sta_info) (§4.3)
  kActiveAp,    // controller -> APs: who currently serves a client
  kBeacon,      // AP -> air: 802.11 beacon (baseline discovery)
  kMgmt,        // authentication / (re)association frames
  kHeartbeat,   // AP -> controller: liveness beacon (fault tolerance)
  kResync,      // controller <-> AP: warm-restart state resynchronization
};

/// One past the last PacketType value.  Keep in sync when adding a type;
/// the exhaustive-switch unit test fails loudly if this lags the enum.
constexpr std::size_t kPacketTypeCount = 13;

const char* to_string(PacketType t);

/// Number of cyclic-queue index bits (paper §3.1.2: m = 12).
constexpr unsigned kIndexBits = 12;
constexpr std::uint32_t kIndexSpace = 1u << kIndexBits;  // 4096

struct Packet {
  std::uint64_t uid = 0;        // globally unique, assigned by make_packet()
  PacketType type = PacketType::kData;
  NodeId src = 0;               // original layer-3 source
  NodeId dst = 0;               // original layer-3 destination
  std::uint32_t flow_id = 0;    // transport flow this packet belongs to
  std::uint64_t seq = 0;        // transport sequence (TCP byte offset or UDP #)
  std::uint16_t ip_id = 0;      // IP identification field (dedup key, §3.2.3)
  std::uint32_t index = 0;      // WGTT per-client cyclic index (12-bit space)
  std::size_t size_bytes = 0;   // layer-3 size including headers
  Time created;                 // creation time (for latency accounting)
  /// Per-link control-frame sequence number (0 = unsequenced).  Stamped by
  /// the hardened control plane (only when a FaultInjector is installed) so
  /// receivers can suppress adversarial duplicates; a deliberate
  /// retransmission is a fresh packet with a fresh sequence number, so it
  /// is never mistaken for a duplicate.  Packs into spare bytes of each
  /// control message's modelled wire size — size_bytes is unchanged.
  std::uint64_t ctrl_seq = 0;
  /// Controller epoch at send time (0 = unfenced).  Bumped by each warm
  /// restart; receivers reject control frames from earlier epochs.
  std::uint32_t ctrl_epoch = 0;
  /// Structured control payload (stop/start/CSI/BA-forward messages) —
  /// the simulation's stand-in for the wire encoding of control packets.
  std::any payload;
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Typed accessor for the control payload; nullptr when absent/mismatched.
template <typename T>
const T* payload_as(const Packet& p) {
  return std::any_cast<T>(&p.payload);
}

/// Create a packet with a fresh unique id (from the calling thread's
/// PacketUidAllocator when one is installed, else a process-global counter).
PacketPtr make_packet(Packet fields);

/// Per-simulation uid source.  Each Testbed owns one, installed thread-
/// scoped like the other sim contexts, so uids are deterministic per run —
/// a process-global counter would interleave uids across the parallel
/// sweep workers and break byte-reproducible flight-recorder output.
class PacketUidAllocator {
 public:
  std::uint64_t next() { return next_uid_++; }
  static PacketUidAllocator* current();

 private:
  std::uint64_t next_uid_ = 1;
};

/// Install `alloc` as the calling thread's uid allocator for this object's
/// lifetime (RAII; nests).  Passing nullptr keeps the current one.
class ScopedPacketUidAllocator {
 public:
  explicit ScopedPacketUidAllocator(PacketUidAllocator* alloc);
  ~ScopedPacketUidAllocator();
  ScopedPacketUidAllocator(const ScopedPacketUidAllocator&) = delete;
  ScopedPacketUidAllocator& operator=(const ScopedPacketUidAllocator&) = delete;

 private:
  PacketUidAllocator* installed_ = nullptr;
  PacketUidAllocator* previous_ = nullptr;
};

/// Per-simulation freelist for the shared_ptr control-block + Packet nodes
/// that make_packet() allocates.  A busy run creates and retires millions
/// of identically-sized packet nodes; recycling them through a freelist
/// removes most of that malloc/free traffic from the hot path.  Owned by
/// Testbed and installed thread-scoped (like PacketUidAllocator), so each
/// parallel sweep worker recycles only its own simulation's nodes; without
/// an installed pool make_packet() falls back to plain make_shared.  The
/// pool affects only where nodes live in memory — uids, contents, and
/// destruction order are untouched, so outputs stay byte-identical.
class PacketPool {
 public:
  PacketPool();
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  static PacketPool* current();

  /// Allocate a packet node, reusing a retired one when available.
  PacketPtr make(Packet&& fields);

  /// Nodes handed out from the freelist / freshly malloc'd (for tests and
  /// the hot-path microbench).
  std::size_t reused() const;
  std::size_t fresh() const;
  /// Nodes returned after their packet died (freelisted or freed).
  std::size_t retired() const;
  /// Packet nodes currently alive: handed out and not yet retired.  The
  /// health engine samples this each window — a live census that keeps
  /// growing is a PacketPtr leak.
  std::size_t live() const;
  /// Nodes currently parked on the freelist, and their size in bytes.
  std::size_t free_nodes() const;
  std::size_t node_size() const;

  struct State;  // shared with in-flight packets; outlives the pool

 private:
  std::shared_ptr<State> state_;
};

/// RAII thread-scoped installation of a PacketPool (nests, like the uid
/// allocator scope above).
class ScopedPacketPool {
 public:
  explicit ScopedPacketPool(PacketPool* pool);
  ~ScopedPacketPool();
  ScopedPacketPool(const ScopedPacketPool&) = delete;
  ScopedPacketPool& operator=(const ScopedPacketPool&) = delete;

 private:
  PacketPool* installed_ = nullptr;
  PacketPool* previous_ = nullptr;
};

/// 48-bit uplink de-duplication key: source address (32) ++ IP-ID (16),
/// exactly the composition the paper describes in §3.2.2.
inline std::uint64_t dedup_key(const Packet& p) {
  return (static_cast<std::uint64_t>(p.src) << 16) | p.ip_id;
}

// ---------------------------------------------------------------------------
// Tunneling (§3.1.3 downlink, §3.2.2 uplink).
//
// Downlink packets keep the client's L2/L3 destination so the AP knows which
// client queue to place them in; the controller therefore wraps them in an
// outer IP/UDP header addressed to the AP.  Uplink packets are wrapped by the
// receiving AP with the AP as outer source and the controller as destination
// so the controller can attribute receptions to APs.
// ---------------------------------------------------------------------------

/// Outer header cost: IP (20) + UDP (8) + inner Ethernet (14) + 4 (tag).
constexpr std::size_t kTunnelOverheadBytes = 46;

struct TunneledPacket {
  PacketPtr inner;
  NodeId outer_src = 0;
  NodeId outer_dst = 0;
  std::size_t wire_bytes = 0;  // inner size + kTunnelOverheadBytes
};

/// Encapsulate `inner` for backhaul transport from `from` to `to`.
TunneledPacket encapsulate(PacketPtr inner, NodeId from, NodeId to);

/// Strip the tunnel header; returns the inner packet.
PacketPtr decapsulate(const TunneledPacket& t);

std::string describe(const Packet& p);

}  // namespace wgtt::net
