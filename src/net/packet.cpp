#include "net/packet.h"

#include <atomic>
#include <sstream>

namespace wgtt::net {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kTcpAck: return "TCP_ACK";
    case PacketType::kCsiReport: return "CSI_REPORT";
    case PacketType::kStop: return "STOP";
    case PacketType::kStart: return "START";
    case PacketType::kSwitchAck: return "SWITCH_ACK";
    case PacketType::kBlockAckFwd: return "BA_FWD";
    case PacketType::kAssocSync: return "ASSOC_SYNC";
    case PacketType::kActiveAp: return "ACTIVE_AP";
    case PacketType::kBeacon: return "BEACON";
    case PacketType::kMgmt: return "MGMT";
    case PacketType::kHeartbeat: return "HEARTBEAT";
  }
  return "?";
}

namespace {

thread_local PacketUidAllocator* t_current_uid_allocator = nullptr;

}  // namespace

PacketUidAllocator* PacketUidAllocator::current() {
  return t_current_uid_allocator;
}

ScopedPacketUidAllocator::ScopedPacketUidAllocator(PacketUidAllocator* alloc) {
  if (alloc == nullptr) return;
  installed_ = alloc;
  previous_ = t_current_uid_allocator;
  t_current_uid_allocator = alloc;
}

ScopedPacketUidAllocator::~ScopedPacketUidAllocator() {
  if (installed_ != nullptr) t_current_uid_allocator = previous_;
}

PacketPtr make_packet(Packet fields) {
  if (PacketUidAllocator* alloc = PacketUidAllocator::current()) {
    fields.uid = alloc->next();
  } else {
    // No simulation context (bare unit tests): fall back to a process-global
    // counter so uids stay unique, if not reproducible across interleavings.
    static std::atomic<std::uint64_t> next_uid{1};
    fields.uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  }
  return std::make_shared<const Packet>(fields);
}

TunneledPacket encapsulate(PacketPtr inner, NodeId from, NodeId to) {
  TunneledPacket t;
  t.wire_bytes = inner->size_bytes + kTunnelOverheadBytes;
  t.inner = std::move(inner);
  t.outer_src = from;
  t.outer_dst = to;
  return t;
}

PacketPtr decapsulate(const TunneledPacket& t) { return t.inner; }

std::string describe(const Packet& p) {
  std::ostringstream oss;
  oss << to_string(p.type) << " uid=" << p.uid << " " << p.src << "->" << p.dst
      << " flow=" << p.flow_id << " seq=" << p.seq << " idx=" << p.index
      << " len=" << p.size_bytes;
  return oss.str();
}

}  // namespace wgtt::net
