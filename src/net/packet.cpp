#include "net/packet.h"

#include <atomic>
#include <sstream>
#include <vector>

namespace wgtt::net {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kTcpAck: return "TCP_ACK";
    case PacketType::kCsiReport: return "CSI_REPORT";
    case PacketType::kStop: return "STOP";
    case PacketType::kStart: return "START";
    case PacketType::kSwitchAck: return "SWITCH_ACK";
    case PacketType::kBlockAckFwd: return "BA_FWD";
    case PacketType::kAssocSync: return "ASSOC_SYNC";
    case PacketType::kActiveAp: return "ACTIVE_AP";
    case PacketType::kBeacon: return "BEACON";
    case PacketType::kMgmt: return "MGMT";
    case PacketType::kHeartbeat: return "HEARTBEAT";
    case PacketType::kResync: return "RESYNC";
  }
  return "?";
}

namespace {

thread_local PacketUidAllocator* t_current_uid_allocator = nullptr;
thread_local PacketPool* t_current_packet_pool = nullptr;

}  // namespace

PacketUidAllocator* PacketUidAllocator::current() {
  return t_current_uid_allocator;
}

ScopedPacketUidAllocator::ScopedPacketUidAllocator(PacketUidAllocator* alloc) {
  if (alloc == nullptr) return;
  installed_ = alloc;
  previous_ = t_current_uid_allocator;
  t_current_uid_allocator = alloc;
}

ScopedPacketUidAllocator::~ScopedPacketUidAllocator() {
  if (installed_ != nullptr) t_current_uid_allocator = previous_;
}

/// Shared freelist state.  Kept alive by a shared_ptr copy inside every
/// pooled control block's allocator, so packets that outlive their Testbed
/// (stragglers held by tests) still deallocate into live state, which the
/// last reference then frees.
struct PacketPool::State {
  // Retired nodes, all of node_size bytes.  Capped so a pathological run
  // holding millions of packets cannot park them all here at teardown.
  static constexpr std::size_t kMaxFree = 8192;
  std::vector<void*> free;
  std::size_t node_size = 0;  // locked to the first single-node request
  std::size_t reused = 0;
  std::size_t fresh = 0;
  std::size_t retired = 0;  // nodes returned (freelisted or freed)

  ~State() {
    for (void* p : free) ::operator delete(p);
  }
};

namespace {

/// Rebindable allocator handed to allocate_shared: the single-object
/// allocation it performs is the combined control-block + Packet node, which
/// is what the freelist recycles.  Any other request size (rebinds for
/// internal bookkeeping, if an implementation makes them) passes through to
/// the global heap untouched.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  std::shared_ptr<PacketPool::State> state;

  explicit PoolAllocator(std::shared_ptr<PacketPool::State> s)
      : state(std::move(s)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : state(other.state) {}

  T* allocate(std::size_t n) {
    PacketPool::State& s = *state;
    if (n == 1) {
      if (s.node_size == 0) s.node_size = sizeof(T);
      if (s.node_size == sizeof(T) && !s.free.empty()) {
        void* p = s.free.back();
        s.free.pop_back();
        ++s.reused;
        return static_cast<T*>(p);
      }
      ++s.fresh;
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    PacketPool::State& s = *state;
    if (n == 1) ++s.retired;
    if (n == 1 && sizeof(T) == s.node_size &&
        s.free.size() < PacketPool::State::kMaxFree) {
      s.free.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return state == other.state;
  }
};

}  // namespace

PacketPool::PacketPool() : state_(std::make_shared<State>()) {}

PacketPool::~PacketPool() = default;

PacketPool* PacketPool::current() { return t_current_packet_pool; }

PacketPtr PacketPool::make(Packet&& fields) {
  return std::allocate_shared<const Packet>(PoolAllocator<const Packet>(state_),
                                            std::move(fields));
}

std::size_t PacketPool::reused() const { return state_->reused; }

std::size_t PacketPool::fresh() const { return state_->fresh; }

std::size_t PacketPool::retired() const { return state_->retired; }

std::size_t PacketPool::live() const {
  const std::size_t out = state_->fresh + state_->reused;
  return out >= state_->retired ? out - state_->retired : 0;
}

std::size_t PacketPool::free_nodes() const { return state_->free.size(); }

std::size_t PacketPool::node_size() const { return state_->node_size; }

ScopedPacketPool::ScopedPacketPool(PacketPool* pool) {
  if (pool == nullptr) return;
  installed_ = pool;
  previous_ = t_current_packet_pool;
  t_current_packet_pool = pool;
}

ScopedPacketPool::~ScopedPacketPool() {
  if (installed_ != nullptr) t_current_packet_pool = previous_;
}

PacketPtr make_packet(Packet fields) {
  if (PacketUidAllocator* alloc = PacketUidAllocator::current()) {
    fields.uid = alloc->next();
  } else {
    // No simulation context (bare unit tests): fall back to a process-global
    // counter so uids stay unique, if not reproducible across interleavings.
    static std::atomic<std::uint64_t> next_uid{1};
    fields.uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  }
  if (PacketPool* pool = PacketPool::current()) {
    return pool->make(std::move(fields));
  }
  return std::make_shared<const Packet>(fields);
}

TunneledPacket encapsulate(PacketPtr inner, NodeId from, NodeId to) {
  TunneledPacket t;
  t.wire_bytes = inner->size_bytes + kTunnelOverheadBytes;
  t.inner = std::move(inner);
  t.outer_src = from;
  t.outer_dst = to;
  return t;
}

PacketPtr decapsulate(const TunneledPacket& t) { return t.inner; }

std::string describe(const Packet& p) {
  std::ostringstream oss;
  oss << to_string(p.type) << " uid=" << p.uid << " " << p.src << "->" << p.dst
      << " flow=" << p.flow_id << " seq=" << p.seq << " idx=" << p.index
      << " len=" << p.size_bytes;
  return oss.str();
}

}  // namespace wgtt::net
