#include "scenario/testbed.h"

#include <algorithm>
#include <cassert>

#include "util/json.h"
#include "util/units.h"

namespace wgtt::scenario {

// ---------------------------------------------------------------------------
// Testbed
// ---------------------------------------------------------------------------

Testbed::Testbed(TestbedConfig cfg)
    : log_sink_(cfg.log_sink),
      log_scope_(log_sink_.get()),
      cfg_(std::move(cfg)),
      metrics_(cfg_.enable_metrics
                   ? std::make_unique<metrics::MetricsRegistry>()
                   : nullptr),
      metrics_scope_(metrics_.get()),
      tracer_(cfg_.trace_path.empty() ? nullptr
                                      : std::make_unique<trace::Tracer>()),
      trace_scope_(tracer_.get()),
      profiler_(cfg_.enable_profiler ? std::make_unique<prof::Profiler>()
                                     : nullptr),
      profiler_scope_(profiler_.get()),
      decision_log_((cfg_.enable_decision_log || !cfg_.decision_log_path.empty())
                        ? std::make_unique<core::DecisionLog>(
                              /*protocol_extensions=*/!cfg_.faults.empty())
                        : nullptr),
      decision_scope_(decision_log_.get()),
      uid_scope_(&uid_alloc_),
      packet_pool_scope_(&packet_pool_),
      flight_recorder_(
          (cfg_.enable_packet_log || !cfg_.packet_log_path.empty())
              ? std::make_unique<net::FlightRecorder>(
                    net::FlightRecorderConfig{cfg_.seed, cfg_.packet_sample})
              : nullptr),
      flight_scope_(flight_recorder_.get()),
      health_engine_((cfg_.enable_health || !cfg_.health_path.empty())
                         ? std::make_unique<obs::HealthEngine>(
                               obs::HealthConfig{cfg_.health_window,
                                                 /*ring_capacity=*/4096,
                                                 cfg_.health_max_in_flight,
                                                 cfg_.health_sample_rss,
                                                 /*fault_aware=*/
                                                 !cfg_.faults.empty()})
                         : nullptr),
      health_scope_(health_engine_.get()),
      causal_tracer_((cfg_.enable_causal || !cfg_.causal_path.empty())
                         ? std::make_unique<obs::CausalTracer>(
                               obs::CausalTracerConfig{cfg_.seed,
                                                       cfg_.causal_sample})
                         : nullptr),
      causal_scope_(causal_tracer_.get()),
      fault_injector_(cfg_.faults.empty()
                          ? nullptr
                          : std::make_unique<net::FaultInjector>(
                                sched_, cfg_.faults,
                                Rng(cfg_.seed).fork("faults"))),
      fault_scope_(fault_injector_.get()),
      telemetry_((cfg_.enable_telemetry || !cfg_.telemetry_path.empty())
                     ? std::make_unique<TelemetrySampler>(sched_,
                                                          cfg_.telemetry_period)
                     : nullptr),
      rng_(cfg_.seed),
      error_model_(cfg_.error_model) {
  channel_ = std::make_unique<channel::ChannelModel>(
      cfg_.radio, cfg_.pathloss, cfg_.shadowing, cfg_.fading,
      rng_.fork("channel"));
  channel_->set_candidate_radius(cfg_.candidate_radius_m);
  medium_ = std::make_unique<mac::Medium>(sched_, *channel_, cfg_.medium);
  mac_ = std::make_unique<mac::MacContext>(sched_, *medium_, *channel_,
                                           error_model_, rng_.fork("mac"));
  backhaul_ = std::make_unique<net::Backhaul>(sched_, cfg_.backhaul,
                                              rng_.fork("backhaul"));
  if (health_engine_) {
    // Substrate resource gauges.  Probes read members the Testbed owns, so
    // they stay valid for every periodic tick (finalize() never samples —
    // caller-owned overlays may already be gone by teardown).
    health_engine_->add_gauge("sched.pending", [this] {
      return static_cast<double>(sched_.events_pending());
    });
    health_engine_->add_gauge("sched.peak_pending", [this] {
      return static_cast<double>(sched_.peak_pending());
    });
    health_engine_->add_gauge("pool.live", [this] {
      return static_cast<double>(packet_pool_.live());
    });
    health_engine_->add_gauge("pool.free", [this] {
      return static_cast<double>(packet_pool_.free_nodes());
    });
    if (flight_recorder_) {
      health_engine_->add_gauge("fr.records", [this] {
        return static_cast<double>(flight_recorder_->records());
      });
    }
    if (decision_log_) {
      health_engine_->add_gauge("decisions.records", [this] {
        return static_cast<double>(decision_log_->entries() +
                                   decision_log_->liveness_entries());
      });
    }
    // Coarse heap estimate: packet nodes (live + pooled) plus the buffered
    // observability documents — the allocations that grow with run length.
    health_engine_->add_gauge("heap.est_bytes", [this] {
      double bytes = static_cast<double>(
          (packet_pool_.live() + packet_pool_.free_nodes()) *
          packet_pool_.node_size());
      if (flight_recorder_) bytes += static_cast<double>(
          flight_recorder_->jsonl().size());
      if (decision_log_) bytes += static_cast<double>(
          decision_log_->jsonl().size());
      if (causal_tracer_) bytes += static_cast<double>(
          causal_tracer_->jsonl().size());
      if (health_engine_) bytes += static_cast<double>(
          health_engine_->jsonl().size());
      return bytes;
    });
    sched_.schedule(cfg_.health_window, [this]() { health_tick(); });
  }
}

void Testbed::health_tick() {
  health_engine_->on_window_close(sched_.now());
  sched_.schedule(cfg_.health_window, [this]() { health_tick(); });
}

Testbed::~Testbed() {
  if (tracer_) write_text_file(cfg_.trace_path, tracer_->finish());
  if (telemetry_ && !cfg_.telemetry_path.empty()) {
    write_text_file(cfg_.telemetry_path, telemetry_->to_csv());
  }
  if (decision_log_ && !cfg_.decision_log_path.empty()) {
    write_text_file(cfg_.decision_log_path, decision_log_->jsonl());
  }
  if (flight_recorder_ && !cfg_.packet_log_path.empty()) {
    write_text_file(cfg_.packet_log_path, flight_recorder_->jsonl());
  }
  if (causal_tracer_ && !cfg_.causal_path.empty()) {
    write_text_file(cfg_.causal_path, causal_tracer_->jsonl());
  }
  if (health_engine_) {
    health_engine_->finalize(sched_.now());
    if (!cfg_.health_path.empty()) {
      write_text_file(cfg_.health_path, health_engine_->jsonl());
    }
  }
}

metrics::Snapshot Testbed::metrics_snapshot() const {
  return metrics_ ? metrics_->snapshot() : metrics::Snapshot{};
}

prof::ProfileSnapshot Testbed::profile_snapshot() const {
  return profiler_ ? profiler_->snapshot() : prof::ProfileSnapshot{};
}

mac::WifiDevice& Testbed::create_ap_device(net::NodeId id,
                                           mac::WifiDeviceConfig dev_cfg) {
  assert(devices_.count(id) == 0);
  const std::size_t ap_index = ap_ids_.size();
  assert(ap_index < cfg_.ap_x.size() && "more APs than configured positions");

  channel::ApSite site;
  site.id = id;
  site.position = {cfg_.ap_x[ap_index], cfg_.ap_y, cfg_.ap_z};
  // Boresight: aimed at the road surface directly across from the window.
  site.boresight = channel::Vec3{0.0, cfg_.lane_y - cfg_.ap_y,
                                 cfg_.client_z - cfg_.ap_z}
                       .normalized();
  site.antenna = std::make_shared<channel::ParabolicAntenna>(
      cfg_.antenna_peak_dbi, cfg_.antenna_hpbw_deg, cfg_.antenna_side_lobe_db);
  channel_->add_ap(site);
  ap_ids_.push_back(id);

  dev_cfg.is_ap = true;
  dev_cfg.airtime = cfg_.airtime;
  auto dev = std::make_unique<mac::WifiDevice>(*mac_, id, std::move(dev_cfg));
  mac::WifiDevice& ref = *dev;
  devices_.emplace(id, std::move(dev));
  return ref;
}

net::NodeId Testbed::add_client(
    std::shared_ptr<const channel::MobilityModel> mob, net::NodeId bssid) {
  const net::NodeId id = next_client_++;
  channel_->add_client(id, std::move(mob), cfg_.client_antenna_dbi);
  mac::WifiDeviceConfig dev_cfg;
  dev_cfg.is_ap = false;
  dev_cfg.bssid = bssid;
  dev_cfg.monitor_mode = false;
  dev_cfg.keepalive_interval = cfg_.client_keepalive;
  dev_cfg.hw_queue_limit = 256;  // the client's socket + driver queues
  dev_cfg.airtime = cfg_.airtime;
  auto dev = std::make_unique<mac::WifiDevice>(*mac_, id, std::move(dev_cfg));
  devices_.emplace(id, std::move(dev));
  client_ids_.push_back(id);
  return id;
}

mac::WifiDevice& Testbed::client_device(net::NodeId id) {
  auto it = devices_.find(id);
  assert(it != devices_.end());
  return *it->second;
}

mac::WifiDevice& Testbed::ap_device(net::NodeId id) {
  return client_device(id);  // same storage
}

double Testbed::road_length() const {
  const auto [lo, hi] =
      std::minmax_element(cfg_.ap_x.begin(), cfg_.ap_x.end());
  return *hi - *lo;
}

std::shared_ptr<channel::MobilityModel> Testbed::drive_mobility(
    double mph, double lead_in_m, double lane_y_offset, int direction,
    double start_offset_m) const {
  const double v = mph_to_mps(mph);
  const auto [lo, hi] =
      std::minmax_element(cfg_.ap_x.begin(), cfg_.ap_x.end());
  const double y = cfg_.lane_y + lane_y_offset;
  if (v <= 0.0) {
    // Static client parked mid-deployment.
    return std::make_shared<channel::StaticMobility>(
        channel::Vec3{(*lo + *hi) / 2.0, y, cfg_.client_z});
  }
  double start_x;
  channel::Vec3 vel;
  if (direction >= 0) {
    start_x = *lo - lead_in_m - start_offset_m;
    vel = {v, 0.0, 0.0};
  } else {
    start_x = *hi + lead_in_m + start_offset_m;
    vel = {-v, 0.0, 0.0};
  }
  return std::make_shared<channel::LinearMobility>(
      channel::Vec3{start_x, y, cfg_.client_z}, vel);
}

Time Testbed::transit_duration(double mph, double lead_in_m) const {
  const double v = mph_to_mps(mph);
  if (v <= 0.0) return Time::sec(10);
  return Time::sec((road_length() + 2.0 * lead_in_m) / v);
}

// ---------------------------------------------------------------------------
// WgttNetwork
// ---------------------------------------------------------------------------

WgttNetwork::WgttNetwork(Testbed& bed, WgttNetworkConfig cfg)
    : bed_(bed),
      cfg_(cfg),
      client_rx_(&bed.sched()),
      server_rx_(&bed.sched()) {
  const std::size_t n_aps = bed_.config().ap_x.size();
  std::vector<net::NodeId> ap_ids;
  for (std::size_t i = 0; i < n_aps; ++i) {
    ap_ids.push_back(static_cast<net::NodeId>(i + 1));
  }
  // Roadside geometry for trajectory-predicting handoff policies.
  cfg_.controller.ap_sites.clear();
  for (std::size_t i = 0; i < n_aps; ++i) {
    cfg_.controller.ap_sites.push_back(core::ApSite{
        static_cast<net::NodeId>(i + 1), bed_.config().ap_x[i],
        bed_.config().ap_y, bed_.config().ap_z});
  }
  if (core::policy_duplicates_downlink(cfg_.controller.policy)) {
    if (auto* reg = metrics::MetricsRegistry::current()) {
      m_client_dedup_ = &reg->counter("client.dedup_hits");
    }
  }
  controller_ = std::make_unique<core::WgttController>(
      bed_.sched(), bed_.backhaul(), ap_ids, cfg_.controller);
  controller_->on_uplink = [this](net::PacketPtr pkt) {
    server_rx_.deliver(pkt);
  };
  if (multi_channel()) {
    // Clients follow their serving AP across channels (a short retune
    // pause), as the §7 multi-channel design requires.
    controller_->on_switch = [this](const core::SwitchRecord& rec) {
      bed_.client_device(rec.client)
          .set_channel(ap_channel(rec.to_ap), cfg_.client_retune_pause);
    };
  }
  for (net::NodeId id : ap_ids) {
    mac::WifiDeviceConfig dev_cfg;
    dev_cfg.bssid = kWgttBssid;
    dev_cfg.monitor_mode = true;  // the second virtual interface (§3.2.1)
    dev_cfg.ba_completion_grace = cfg_.ba_completion_grace;
    dev_cfg.channel = ap_channel(id);
    if (cfg_.rate_control == RateControlKind::kEsnr) {
      const phy::ErrorModel& em = bed_.error_model();
      dev_cfg.rate_control_factory = [&em] {
        return std::make_unique<phy::EsnrRateControl>(em);
      };
    }
    mac::WifiDevice& dev = bed_.create_ap_device(id, std::move(dev_cfg));

    core::WgttApConfig ap_cfg;
    ap_cfg.id = id;
    ap_cfg.controller = net::kControllerId;
    for (net::NodeId peer : ap_ids) {
      if (peer != id) ap_cfg.peer_aps.push_back(peer);
    }
    ap_cfg.control_processing = cfg_.control_processing;
    ap_cfg.control_jitter = cfg_.control_jitter;
    ap_cfg.ioctl_delay = cfg_.ioctl_delay;
    ap_cfg.stack = cfg_.stack;
    ap_cfg.enable_ba_forwarding = cfg_.enable_ba_forwarding;
    ap_cfg.nic_drain_window = cfg_.nic_drain_window;
    ap_cfg.feed_esnr_to_rate_control =
        cfg_.rate_control == RateControlKind::kEsnr;
    ap_cfg.heartbeat_period = cfg_.controller.heartbeat_period;
    aps_.emplace(id, std::make_unique<core::WgttAp>(bed_.sched(),
                                                    bed_.backhaul(), dev,
                                                    ap_cfg));
  }
  // Observational dual-active gauge (fault-injected runs only, so fault-free
  // health streams stay byte-identical).  No ceiling: transient overlap
  // during switches is legitimate — the authoritative at-most-one check is
  // the end-of-run dual_active_clients() probe the protocol fuzzer asserts.
  if (bed_.health() != nullptr && bed_.fault_injector() != nullptr) {
    bed_.health()->add_gauge("protocol.dual_active", [this] {
      return static_cast<double>(dual_active_clients().size());
    });
  }
}

core::WgttAp& WgttNetwork::ap(net::NodeId id) {
  auto it = aps_.find(id);
  assert(it != aps_.end());
  return *it->second;
}

std::vector<net::NodeId> WgttNetwork::dual_active_clients() const {
  std::vector<net::NodeId> out;
  for (net::NodeId client : bed_.client_ids()) {
    if (controller_->switch_in_flight(client)) continue;
    std::size_t active = 0;
    for (const auto& [id, ap] : aps_) {
      if (ap->transmitting(client)) ++active;
    }
    if (active > 1) out.push_back(client);
  }
  return out;
}

unsigned WgttNetwork::ap_channel(net::NodeId ap) const {
  if (cfg_.ap_channels.empty()) return 11;
  return cfg_.ap_channels[(ap - 1) % cfg_.ap_channels.size()];
}

void WgttNetwork::scan_tick(net::NodeId client) {
  mac::WifiDevice& dev = bed_.client_device(client);
  const Time now = bed_.sched().now();
  // Candidate pruning bounds the scan at city scale; the default unlimited
  // radius visits every AP, as before.
  std::vector<net::NodeId> candidates;
  bed_.channel().candidate_aps(client, now, candidates);
  for (net::NodeId ap : candidates) {
    if (ap_channel(ap) == dev.channel()) continue;  // heard natively
    const phy::Csi csi = bed_.channel().uplink_csi(ap, client, now);
    // Only report APs that would actually hear a probe (in range).
    if (csi.mean_snr_db() > 0.0) controller_->inject_csi(ap, client, csi);
  }
  bed_.sched().schedule(cfg_.scan_report_period,
                        [this, client]() { scan_tick(client); });
}

net::NodeId WgttNetwork::add_client(
    std::shared_ptr<const channel::MobilityModel> mob, Time associate_at) {
  std::shared_ptr<const channel::MobilityModel> mob_ref = mob;
  const net::NodeId id = bed_.add_client(std::move(mob), kWgttBssid);
  mac::WifiDevice& dev = bed_.client_device(id);
  dev.set_keepalive_peer(kWgttBssid);
  if (multi_channel()) {
    dev.set_channel(ap_channel(1), Time::zero());  // start on AP1's channel
    bed_.sched().schedule(cfg_.scan_report_period,
                          [this, id]() { scan_tick(id); });
  }
  // Kinematics hints for trajectory-predicting policies (plain doubles so
  // core never depends on channel/).
  controller_->set_mobility_provider(id, [mob_ref](Time t) {
    core::MobilityHint h;
    const channel::Vec3 p = mob_ref->position(t);
    const channel::Vec3 v = mob_ref->velocity(t);
    h.valid = true;
    h.x = p.x; h.y = p.y; h.z = p.z;
    h.vx = v.x; h.vy = v.y; h.vz = v.z;
    return h;
  });
  if (core::policy_duplicates_downlink(cfg_.controller.policy)) {
    // Start-first / bicast handoffs deliver overlap duplicates over the
    // air; absorb them at the client exactly as the controller does for
    // uplink fan-in (§3.2.3, same (src, IP-ID) key).
    auto dedup = std::make_shared<core::Deduplicator>(Time::sec(2));
    client_dedups_[id] = dedup;
    dev.on_deliver = [this, id, dedup](net::PacketPtr pkt,
                                       const mac::RxMeta&) {
      if (core::Deduplicator::needs_dedup(*pkt) &&
          dedup->is_duplicate(*pkt, bed_.sched().now())) {
        if (m_client_dedup_) m_client_dedup_->add();
        // Resolved per delivery: the flight recorder is installed after the
        // testbed is built, so a construction-time capture would be null.
        if (auto* recorder = net::FlightRecorder::current()) {
          recorder->drop(pkt->uid, bed_.sched().now(),
                         net::Hop::kDedupSuppress, id,
                         net::DropCause::kDuplicate,
                         {{"ip_id", pkt->ip_id}});
        }
        if (auto* health = obs::HealthEngine::current()) {
          if (net::flight_recorded(pkt->type)) health->packet_dropped();
        }
        return;
      }
      client_rx_.deliver(pkt);
    };
  } else {
    dev.on_deliver = [this](net::PacketPtr pkt, const mac::RxMeta&) {
      client_rx_.deliver(pkt);
    };
  }
  // Schedule the association handshake; retry until it succeeds.
  std::function<void()> try_associate = [this, id, &dev]() {
    const net::NodeId target =
        bed_.channel().best_ap(id, bed_.sched().now());
    net::Packet req;
    req.type = net::PacketType::kMgmt;
    req.src = id;
    req.dst = target;
    req.size_bytes = 90;
    req.created = bed_.sched().now();
    req.payload = core::AssocRequestMsg{id};
    dev.send_management(target, net::make_packet(std::move(req)),
                        [this, id, &dev](bool ok) {
                          if (!ok) {
                            bed_.sched().schedule(Time::ms(200), [this, id]() {
                              // Retry from scratch (the client may have
                              // moved into range of a different AP).
                              retry_associate(id);
                            });
                          }
                        });
  };
  bed_.sched().schedule_at(std::max(associate_at, bed_.sched().now()),
                           try_associate);
  return id;
}

void WgttNetwork::retry_associate(net::NodeId client) {
  mac::WifiDevice& dev = bed_.client_device(client);
  const net::NodeId target =
      bed_.channel().best_ap(client, bed_.sched().now());
  net::Packet req;
  req.type = net::PacketType::kMgmt;
  req.src = client;
  req.dst = target;
  req.size_bytes = 90;
  req.created = bed_.sched().now();
  req.payload = core::AssocRequestMsg{client};
  dev.send_management(target, net::make_packet(std::move(req)),
                      [this, client](bool ok) {
                        if (!ok) {
                          bed_.sched().schedule(Time::ms(200), [this, client]() {
                            retry_associate(client);
                          });
                        }
                      });
}

std::uint64_t WgttNetwork::client_duplicates_removed() const {
  std::uint64_t total = 0;
  for (const auto& [client, dedup] : client_dedups_) {
    (void)client;
    total += dedup->duplicates_dropped();
  }
  return total;
}

void WgttNetwork::client_uplink(net::NodeId client, net::PacketPtr pkt) {
  mac::WifiDevice& dev = bed_.client_device(client);
  const bool fr = net::flight_recorded(pkt->type);
  if (!dev.enqueue(dev.bssid(), std::move(pkt)) && fr) {
    if (auto* health = obs::HealthEngine::current()) health->packet_dropped();
  }
}

void WgttNetwork::server_downlink(net::NodeId client, net::PacketPtr pkt) {
  bed_.sched().schedule(bed_.config().wan_latency,
                        [this, client, pkt = std::move(pkt)]() {
                          controller_->send_downlink(client, pkt);
                        });
}

void WgttNetwork::wire_tcp_downlink(transport::TcpConnection& conn) {
  const net::NodeId client = conn.receiver();
  conn.transmit_data = [this, client](net::PacketPtr pkt) {
    server_downlink(client, std::move(pkt));
  };
  conn.transmit_ack = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  client_rx_.register_flow(conn.flow_id(), [&conn](const net::PacketPtr& p) {
    conn.on_network_data(p);
  });
  server_rx_.register_flow(conn.flow_id(),
                           [this, &conn](const net::PacketPtr& p) {
                             bed_.sched().schedule(bed_.config().wan_latency,
                                                   [&conn, p]() {
                                                     conn.on_network_ack(p);
                                                   });
                           });
}

void WgttNetwork::wire_udp_downlink(transport::UdpSender& sender,
                                    transport::UdpReceiver& receiver,
                                    net::NodeId client) {
  sender.transmit = [this, client](net::PacketPtr pkt) {
    server_downlink(client, std::move(pkt));
  };
  client_rx_.register_flow(sender.config().flow_id,
                           [&receiver](const net::PacketPtr& p) {
                             receiver.on_packet(p);
                           });
}

void WgttNetwork::wire_udp_uplink(transport::UdpSender& sender,
                                  transport::UdpReceiver& receiver,
                                  net::NodeId client) {
  sender.transmit = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  server_rx_.register_flow(sender.config().flow_id,
                           [&receiver](const net::PacketPtr& p) {
                             receiver.on_packet(p);
                           });
}

void WgttNetwork::wire_conference_downlink(apps::ConferenceApp& app,
                                           net::NodeId client) {
  app.transmit = [this, client](net::PacketPtr pkt) {
    server_downlink(client, std::move(pkt));
  };
  client_rx_.register_flow(app.flow_id(),
                           [&app](const net::PacketPtr& p) {
                             app.on_packet(p);
                           });
}

void WgttNetwork::wire_conference_uplink(apps::ConferenceApp& app,
                                         net::NodeId client) {
  app.transmit = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  server_rx_.register_flow(app.flow_id(),
                           [&app](const net::PacketPtr& p) {
                             app.on_packet(p);
                           });
}

void WgttNetwork::wire_web_browse(apps::WebBrowseApp& app,
                                  net::NodeId client) {
  app.transmit_request = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  for (std::size_t i = 0; i < app.connections(); ++i) {
    transport::TcpConnection& conn = app.connection(i);
    conn.transmit_data = [this, client](net::PacketPtr pkt) {
      server_downlink(client, std::move(pkt));
    };
    conn.transmit_ack = [this, client](net::PacketPtr pkt) {
      client_uplink(client, std::move(pkt));
    };
    client_rx_.register_flow(conn.flow_id(),
                             [&conn](const net::PacketPtr& p) {
                               conn.on_network_data(p);
                             });
    server_rx_.register_flow(
        conn.flow_id(), [this, &conn, &app](const net::PacketPtr& p) {
          if (p->type == net::PacketType::kTcpAck) {
            bed_.sched().schedule(bed_.config().wan_latency, [&conn, p]() {
              conn.on_network_ack(p);
            });
          } else if (const auto* req =
                         net::payload_as<apps::WebRequestMsg>(*p)) {
            apps::WebRequestMsg r = *req;
            bed_.sched().schedule(bed_.config().wan_latency, [&app, r]() {
              app.on_request(r);
            });
          } else if (net::flight_recorded(p->type)) {
            // Unparseable payload: the ledger instance terminates here.
            if (auto* health = obs::HealthEngine::current()) {
              health->packet_retired();
            }
          }
        });
  }
}

// ---------------------------------------------------------------------------
// BaselineNetwork
// ---------------------------------------------------------------------------

BaselineNetwork::BaselineNetwork(Testbed& bed, BaselineNetworkConfig cfg)
    : bed_(bed),
      cfg_(cfg),
      client_rx_(&bed.sched()),
      server_rx_(&bed.sched()) {
  distribution_ = std::make_unique<baseline::Distribution>(
      bed_.sched(), bed_.backhaul(), cfg_.distribution_relearn);
  distribution_->on_uplink = [this](net::PacketPtr pkt) {
    server_rx_.deliver(pkt);
  };
  const std::size_t n_aps = bed_.config().ap_x.size();
  for (std::size_t i = 0; i < n_aps; ++i) {
    const auto id = static_cast<net::NodeId>(i + 1);
    mac::WifiDeviceConfig dev_cfg;
    dev_cfg.bssid = id;  // every baseline AP is its own BSS
    dev_cfg.monitor_mode = false;
    mac::WifiDevice& dev = bed_.create_ap_device(id, std::move(dev_cfg));
    baseline::BaselineApConfig ap_cfg = cfg_.ap_template;
    ap_cfg.id = id;
    ap_cfg.distribution = net::kControllerId;
    aps_.push_back(std::make_unique<baseline::BaselineAp>(
        bed_.sched(), bed_.backhaul(), dev, ap_cfg));
  }
}

baseline::RoamingClient& BaselineNetwork::roaming(net::NodeId client) {
  auto it = roaming_.find(client);
  assert(it != roaming_.end());
  return *it->second;
}

net::NodeId BaselineNetwork::add_client(
    std::shared_ptr<const channel::MobilityModel> mob) {
  const net::NodeId id = bed_.add_client(std::move(mob), /*bssid=*/0);
  mac::WifiDevice& dev = bed_.client_device(id);
  dev.on_deliver = [this](net::PacketPtr pkt, const mac::RxMeta&) {
    client_rx_.deliver(pkt);
  };
  auto rc = std::make_unique<baseline::RoamingClient>(bed_.sched(), dev,
                                                      cfg_.roaming);
  rc->start();
  roaming_.emplace(id, std::move(rc));
  return id;
}

void BaselineNetwork::client_uplink(net::NodeId client, net::PacketPtr pkt) {
  mac::WifiDevice& dev = bed_.client_device(client);
  const bool fr = net::flight_recorded(pkt->type);
  if (dev.bssid() == 0) {  // not associated yet
    if (fr) {
      if (auto* health = obs::HealthEngine::current()) {
        health->packet_dropped();
      }
    }
    return;
  }
  if (!dev.enqueue(dev.bssid(), std::move(pkt)) && fr) {
    if (auto* health = obs::HealthEngine::current()) health->packet_dropped();
  }
}

void BaselineNetwork::server_downlink(net::NodeId client, net::PacketPtr pkt) {
  bed_.sched().schedule(bed_.config().wan_latency,
                        [this, client, pkt = std::move(pkt)]() {
                          distribution_->send_downlink(client, pkt);
                        });
}

void BaselineNetwork::wire_tcp_downlink(transport::TcpConnection& conn) {
  const net::NodeId client = conn.receiver();
  conn.transmit_data = [this, client](net::PacketPtr pkt) {
    server_downlink(client, std::move(pkt));
  };
  conn.transmit_ack = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  client_rx_.register_flow(conn.flow_id(), [&conn](const net::PacketPtr& p) {
    conn.on_network_data(p);
  });
  server_rx_.register_flow(conn.flow_id(),
                           [this, &conn](const net::PacketPtr& p) {
                             bed_.sched().schedule(bed_.config().wan_latency,
                                                   [&conn, p]() {
                                                     conn.on_network_ack(p);
                                                   });
                           });
}

void BaselineNetwork::wire_udp_downlink(transport::UdpSender& sender,
                                        transport::UdpReceiver& receiver,
                                        net::NodeId client) {
  sender.transmit = [this, client](net::PacketPtr pkt) {
    server_downlink(client, std::move(pkt));
  };
  client_rx_.register_flow(sender.config().flow_id,
                           [&receiver](const net::PacketPtr& p) {
                             receiver.on_packet(p);
                           });
}

void BaselineNetwork::wire_udp_uplink(transport::UdpSender& sender,
                                      transport::UdpReceiver& receiver,
                                      net::NodeId client) {
  sender.transmit = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  server_rx_.register_flow(sender.config().flow_id,
                           [&receiver](const net::PacketPtr& p) {
                             receiver.on_packet(p);
                           });
}

void BaselineNetwork::wire_conference_downlink(apps::ConferenceApp& app,
                                               net::NodeId client) {
  app.transmit = [this, client](net::PacketPtr pkt) {
    server_downlink(client, std::move(pkt));
  };
  client_rx_.register_flow(app.flow_id(),
                           [&app](const net::PacketPtr& p) {
                             app.on_packet(p);
                           });
}

void BaselineNetwork::wire_conference_uplink(apps::ConferenceApp& app,
                                             net::NodeId client) {
  app.transmit = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  server_rx_.register_flow(app.flow_id(),
                           [&app](const net::PacketPtr& p) {
                             app.on_packet(p);
                           });
}

void BaselineNetwork::wire_web_browse(apps::WebBrowseApp& app,
                                      net::NodeId client) {
  app.transmit_request = [this, client](net::PacketPtr pkt) {
    client_uplink(client, std::move(pkt));
  };
  for (std::size_t i = 0; i < app.connections(); ++i) {
    transport::TcpConnection& conn = app.connection(i);
    conn.transmit_data = [this, client](net::PacketPtr pkt) {
      server_downlink(client, std::move(pkt));
    };
    conn.transmit_ack = [this, client](net::PacketPtr pkt) {
      client_uplink(client, std::move(pkt));
    };
    client_rx_.register_flow(conn.flow_id(),
                             [&conn](const net::PacketPtr& p) {
                               conn.on_network_data(p);
                             });
    server_rx_.register_flow(
        conn.flow_id(), [this, &conn, &app](const net::PacketPtr& p) {
          if (p->type == net::PacketType::kTcpAck) {
            bed_.sched().schedule(bed_.config().wan_latency, [&conn, p]() {
              conn.on_network_ack(p);
            });
          } else if (const auto* req =
                         net::payload_as<apps::WebRequestMsg>(*p)) {
            apps::WebRequestMsg r = *req;
            bed_.sched().schedule(bed_.config().wan_latency, [&app, r]() {
              app.on_request(r);
            });
          } else if (net::flight_recorded(p->type)) {
            // Unparseable payload: the ledger instance terminates here.
            if (auto* health = obs::HealthEngine::current()) {
              health->packet_retired();
            }
          }
        });
  }
}

}  // namespace wgtt::scenario
