// Turn-key drive-through experiments.
//
// run_drive() builds the full testbed, overlays WGTT or the Enhanced/stock
// 802.11r baseline, attaches the requested traffic workload to one or more
// mobile clients, runs the discrete-event simulation for a whole transit,
// and returns every metric the paper's evaluation plots: per-client
// throughput (total and binned), UDP loss, AP-association timelines,
// ground-truth switching accuracy, link bit-rate samples, TCP stats, and
// the controller's switch log.  All bench binaries are thin wrappers over
// this entry point.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/wgtt_controller.h"
#include "scenario/metrics.h"
#include "scenario/testbed.h"
#include "util/metrics.h"

namespace wgtt::scenario {

enum class SystemType {
  kWgtt,
  kEnhanced80211r,  // the paper's §5.1 comparison scheme
  kStock80211r,     // §2: 5-second RSSI history before any decision
};

enum class TrafficType {
  kTcpDownlink,
  kUdpDownlink,
  kUdpUplink,
};

enum class MultiClientPattern {
  kFollowing,  // same lane, 3 m gaps (Fig. 19a)
  kParallel,   // adjacent lanes, abreast (Fig. 19b)
  kOpposing,   // opposite directions (Fig. 19c)
};

struct DriveScenarioConfig {
  SystemType system = SystemType::kWgtt;
  TrafficType traffic = TrafficType::kTcpDownlink;
  double speed_mph = 15.0;
  std::size_t num_clients = 1;
  MultiClientPattern pattern = MultiClientPattern::kFollowing;
  double following_gap_m = 3.0;
  double lane_width_m = 3.0;
  double udp_offered_mbps = 15.0;
  /// Shuttle mode (soak runs): clients drive back and forth over the whole
  /// deployment for the scenario duration instead of a single transit.
  /// The multi-client pattern still applies (following = staggered along
  /// the route, parallel = adjacent lanes, opposing = half a route apart).
  bool shuttle = false;
  /// 0 = run for one full transit (plus setup time).
  Time duration = Time::zero();
  Time app_start = Time::ms(500);
  bool record_seq_trace = false;  // per-packet (time, seq) points (Fig. 4)
  std::uint64_t seed = 1;
  TestbedConfig testbed{};
  WgttNetworkConfig wgtt{};
  BaselineNetworkConfig baseline{};
  transport::TcpConfig tcp{};
};

struct ClientDriveResult {
  net::NodeId client = 0;
  double goodput_mbps = 0.0;
  double udp_loss_rate = 0.0;
  double switching_accuracy = 0.0;
  std::vector<std::pair<Time, double>> throughput_bins;
  std::vector<DriveMetrics::TimelinePoint> timeline;
  std::vector<double> bitrate_samples;
  std::vector<std::pair<Time, double>> bitrate_series;
  std::vector<std::pair<Time, std::uint64_t>> seq_trace;
  transport::TcpStats tcp_stats;
  std::size_t handovers = 0;            // baseline reassociations
  std::size_t failed_handovers = 0;
};

struct DriveResult {
  std::vector<ClientDriveResult> clients;
  Time measured_duration;               // app_start .. end
  double medium_utilization = 0.0;
  // WGTT-only:
  std::vector<core::SwitchRecord> switches;
  std::uint64_t stop_retransmissions = 0;
  std::uint64_t uplink_duplicates_removed = 0;
  /// Downlink duplicates absorbed at the clients (nonzero only under
  /// start-first / bicast handoff policies).
  std::uint64_t downlink_duplicates_removed = 0;
  std::vector<double> switch_latencies_ms;
  /// Every instrument the sim recorded (empty when testbed.enable_metrics
  /// is false).  Exported into the bench reports' "metrics" section.
  metrics::Snapshot metrics;
  /// The sampled telemetry table (empty unless testbed.enable_telemetry /
  /// telemetry_path is set).  run_drive wires the standard column set:
  /// per-client active AP, per-(client, AP) median ESNR, instantaneous
  /// goodput, TCP cwnd/retransmissions or UDP loss, and per-AP backlog.
  TelemetryTable telemetry;
  /// Controller decision audit log (JSONL; empty unless
  /// testbed.enable_decision_log / decision_log_path is set).
  std::string decision_jsonl;
  std::uint64_t decision_records = 0;
  std::uint64_t decision_switch_records = 0;
  /// Per-packet flight-recorder log (JSONL; empty unless
  /// testbed.enable_packet_log / packet_log_path is set).
  std::string packet_jsonl;
  std::uint64_t packet_records = 0;
  /// Causal event-graph stream (JSONL; empty unless testbed.enable_causal /
  /// causal_path is set).
  std::string causal_jsonl;
  std::uint64_t causal_records = 0;
  /// Host self-time per instrumented section (empty when
  /// testbed.enable_profiler is false).  Exported as the reports' "profile"
  /// block.
  prof::ProfileSnapshot profile;
  /// Runtime health stream (JSONL; empty unless testbed.enable_health /
  /// health_path is set).  run_drive finalizes the engine before collecting
  /// so the summary line is included; the Testbed still writes the file.
  std::string health_jsonl;
  std::uint64_t health_windows = 0;
  std::uint64_t health_checks = 0;
  std::uint64_t health_violations = 0;
  /// Violations with severity "error" (a strict run fails on these).
  std::uint64_t health_errors = 0;
  /// Final packet-conservation balance (sent + copies - delivered -
  /// retired - dropped); small and non-negative in a healthy run.
  std::int64_t health_in_flight = 0;
  // Control-plane convergence (populated only on fault-injected WGTT runs).
  /// Clients two or more APs were still actively transmitting to at the end
  /// of the run (transient in-flight switches excluded) — the at-most-one
  /// transmitter invariant; must be empty after convergence.
  std::vector<net::NodeId> dual_active_clients;
  /// Client outage windows the health engine ledgered (closed + open).
  std::uint64_t outages = 0;
  /// Clients still stranded when the run ended (open outage windows).
  std::uint64_t unconverged_clients = 0;
  /// Longest single outage window (ms).
  double longest_outage_ms = 0.0;

  double mean_goodput_mbps() const {
    if (clients.empty()) return 0.0;
    double s = 0.0;
    for (const auto& c : clients) s += c.goodput_mbps;
    return s / static_cast<double>(clients.size());
  }
};

DriveResult run_drive(const DriveScenarioConfig& cfg);

}  // namespace wgtt::scenario
