#include "scenario/experiment.h"

#include <algorithm>
#include <memory>

#include "apps/bulk.h"
#include "util/units.h"

namespace wgtt::scenario {

namespace {

std::shared_ptr<channel::MobilityModel> shuttle_mobility(
    const Testbed& bed, const DriveScenarioConfig& cfg, std::size_t i) {
  const TestbedConfig& tb = bed.config();
  const auto [lo, hi] = std::minmax_element(tb.ap_x.begin(), tb.ap_x.end());
  const double lead = 15.0;
  double lane_off = 0.0;
  double phase = 0.0;
  switch (cfg.pattern) {
    case MultiClientPattern::kFollowing:
      phase = cfg.following_gap_m * static_cast<double>(i);
      break;
    case MultiClientPattern::kParallel:
      lane_off = cfg.lane_width_m * static_cast<double>(i);
      break;
    case MultiClientPattern::kOpposing:
      if (i % 2 == 1) {
        lane_off = cfg.lane_width_m;
        phase = (*hi - *lo) + 2.0 * lead;  // start the return leg
      }
      break;
  }
  const double y = tb.lane_y + lane_off;
  return std::make_shared<channel::PingPongMobility>(
      channel::Vec3{*lo - lead, y, tb.client_z},
      channel::Vec3{*hi + lead, y, tb.client_z}, mph_to_mps(cfg.speed_mph),
      phase);
}

std::shared_ptr<channel::MobilityModel> client_mobility(
    const Testbed& bed, const DriveScenarioConfig& cfg, std::size_t i) {
  if (cfg.shuttle) return shuttle_mobility(bed, cfg, i);
  switch (cfg.pattern) {
    case MultiClientPattern::kFollowing:
      return bed.drive_mobility(cfg.speed_mph, 15.0, 0.0, +1,
                                cfg.following_gap_m * static_cast<double>(i));
    case MultiClientPattern::kParallel:
      return bed.drive_mobility(cfg.speed_mph, 15.0,
                                cfg.lane_width_m * static_cast<double>(i), +1,
                                0.0);
    case MultiClientPattern::kOpposing:
      if (i % 2 == 0) {
        return bed.drive_mobility(cfg.speed_mph, 15.0, 0.0, +1, 0.0);
      }
      return bed.drive_mobility(cfg.speed_mph, 15.0, cfg.lane_width_m, -1,
                                0.0);
  }
  return bed.drive_mobility(cfg.speed_mph);
}

}  // namespace

DriveResult run_drive(const DriveScenarioConfig& cfg) {
  TestbedConfig tb = cfg.testbed;
  tb.seed = cfg.seed;
  Testbed bed(tb);

  const Time duration = cfg.duration > Time::zero()
                            ? cfg.duration
                            : bed.transit_duration(cfg.speed_mph) +
                                  cfg.app_start;

  // --- overlay the system under test --------------------------------------
  std::unique_ptr<WgttNetwork> wgtt;
  std::unique_ptr<BaselineNetwork> baseline;
  if (cfg.system == SystemType::kWgtt) {
    wgtt = std::make_unique<WgttNetwork>(bed, cfg.wgtt);
  } else {
    BaselineNetworkConfig bcfg = cfg.baseline;
    if (cfg.system == SystemType::kStock80211r) {
      bcfg.roaming.stock_history_requirement = Time::sec(5);
    }
    baseline = std::make_unique<BaselineNetwork>(bed, bcfg);
  }

  // --- clients -------------------------------------------------------------
  std::vector<net::NodeId> clients;
  for (std::size_t i = 0; i < cfg.num_clients; ++i) {
    auto mob = client_mobility(bed, cfg, i);
    clients.push_back(wgtt ? wgtt->add_client(std::move(mob))
                           : baseline->add_client(std::move(mob)));
  }

  // --- workload ------------------------------------------------------------
  transport::IpIdAllocator ip_ids;
  std::vector<std::unique_ptr<apps::BulkTcpApp>> tcp_apps;
  std::vector<std::unique_ptr<apps::BulkUdpApp>> udp_apps;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const net::NodeId client = clients[i];
    const auto flow = static_cast<std::uint32_t>(100 + i);
    switch (cfg.traffic) {
      case TrafficType::kTcpDownlink: {
        auto app = std::make_unique<apps::BulkTcpApp>(
            bed.sched(), ip_ids, cfg.tcp, flow, kServerId, client);
        if (wgtt) {
          wgtt->wire_tcp_downlink(app->connection());
        } else {
          baseline->wire_tcp_downlink(app->connection());
        }
        bed.sched().schedule_at(cfg.app_start,
                                [a = app.get()]() { a->start(); });
        tcp_apps.push_back(std::move(app));
        break;
      }
      case TrafficType::kUdpDownlink:
      case TrafficType::kUdpUplink: {
        const bool down = cfg.traffic == TrafficType::kUdpDownlink;
        transport::UdpFlowConfig ucfg;
        ucfg.flow_id = flow;
        ucfg.src = down ? kServerId : client;
        ucfg.dst = down ? client : kServerId;
        ucfg.offered_load_bps = cfg.udp_offered_mbps * 1e6;
        auto app = std::make_unique<apps::BulkUdpApp>(bed.sched(), ip_ids,
                                                      ucfg);
        if (cfg.record_seq_trace) app->receiver().enable_trace(true);
        if (down) {
          if (wgtt) {
            wgtt->wire_udp_downlink(app->sender(), app->receiver(), client);
          } else {
            baseline->wire_udp_downlink(app->sender(), app->receiver(),
                                        client);
          }
        } else {
          if (wgtt) {
            wgtt->wire_udp_uplink(app->sender(), app->receiver(), client);
          } else {
            baseline->wire_udp_uplink(app->sender(), app->receiver(), client);
          }
        }
        bed.sched().schedule_at(cfg.app_start,
                                [a = app.get()]() { a->start(); });
        udp_apps.push_back(std::move(app));
        break;
      }
    }
  }

  // --- instrumentation -----------------------------------------------------
  auto active_lookup = [&](net::NodeId client) -> net::NodeId {
    if (wgtt) return wgtt->controller().active_ap(client);
    return baseline->roaming(client).associated_ap();
  };
  DriveMetrics metrics(bed, active_lookup);
  for (net::NodeId c : clients) metrics.track_client(c);
  for (net::NodeId ap : bed.ap_ids()) {
    metrics.attach_bitrate_probe(bed.ap_device(ap));
  }
  bed.sched().schedule_at(cfg.app_start, [&metrics]() { metrics.start(); });

  // --- telemetry columns ---------------------------------------------------
  // Probes read live state owned by this frame (overlay, apps); they only
  // fire during run_until below, while everything they capture is alive.
  if (TelemetrySampler* tel = bed.telemetry()) {
    const double period_ns = static_cast<double>(tel->period().to_ns());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const net::NodeId client = clients[i];
      const std::string prefix = "c" + std::to_string(client);
      tel->add_column(prefix + ".ap", 0, [active_lookup, client]() {
        return static_cast<double>(active_lookup(client));
      });
      if (wgtt) {
        for (net::NodeId ap : bed.ap_ids()) {
          // The ESNR lookup table's floor (-30 dB) doubles as the
          // "no in-window readings" sentinel.
          tel->add_column(prefix + ".esnr_ap" + std::to_string(ap), 3,
                          [w = wgtt.get(), client, ap]() {
                            return w->controller()
                                .median_esnr(client, ap)
                                .value_or(-30.0);
                          });
        }
      }
      std::function<std::uint64_t()> bytes_now;
      if (cfg.traffic == TrafficType::kTcpDownlink) {
        auto* conn = &tcp_apps[i]->connection();
        bytes_now = [conn]() { return conn->delivered_bytes(); };
        tel->add_column(prefix + ".cwnd", 2,
                        [conn]() { return conn->cwnd_segments(); });
        tel->add_column(prefix + ".tcp_retx", 0, [conn]() {
          return static_cast<double>(conn->stats().retransmissions);
        });
      } else {
        auto* app = udp_apps[i].get();
        bytes_now = [app]() {
          return static_cast<std::uint64_t>(
              app->receiver().throughput().total_bytes());
        };
        tel->add_column(prefix + ".udp_loss", 4,
                        [app]() { return app->loss_rate(); });
      }
      auto prev = std::make_shared<std::uint64_t>(0);
      tel->add_column(prefix + ".goodput_mbps", 3,
                      [bytes_now, prev, period_ns]() {
                        const std::uint64_t b = bytes_now();
                        const double delta =
                            static_cast<double>(b - *prev);
                        *prev = b;
                        // bytes/period -> Mbit/s
                        return delta * 8000.0 / period_ns;
                      });
    }
    if (wgtt) {
      for (net::NodeId ap : bed.ap_ids()) {
        tel->add_column("ap" + std::to_string(ap) + ".backlog", 0,
                        [w = wgtt.get(), ap, clients]() {
                          double backlog = 0.0;
                          for (net::NodeId c : clients) {
                            if (const auto* stack = w->ap(ap).stack_for(c)) {
                              backlog += static_cast<double>(
                                  stack->total_backlog());
                            }
                          }
                          return backlog;
                        });
      }
    }
    bed.sched().schedule_at(cfg.app_start, [tel]() { tel->start(); });
  }

  // --- health gauges -------------------------------------------------------
  // Overlay-level resource probes for the windowed rollups.  They fire only
  // during run_until below, while the overlay and apps this frame owns are
  // alive (finalize never samples gauges).
  if (obs::HealthEngine* health = bed.health()) {
    if (wgtt) {
      health->add_gauge("ap.backlog_sum", [w = wgtt.get(), &bed, clients]() {
        double backlog = 0.0;
        for (net::NodeId ap : bed.ap_ids()) {
          for (net::NodeId c : clients) {
            if (const auto* stack = w->ap(ap).stack_for(c)) {
              backlog += static_cast<double>(stack->total_backlog());
            }
          }
        }
        return backlog;
      });
    }
    if (cfg.traffic == TrafficType::kTcpDownlink) {
      std::vector<const transport::TcpConnection*> conns;
      for (const auto& app : tcp_apps) conns.push_back(&app->connection());
      health->add_gauge("tcp.retx_total", [conns = std::move(conns)]() {
        double retx = 0.0;
        for (const auto* c : conns) {
          retx += static_cast<double>(c->stats().retransmissions);
        }
        return retx;
      });
    }
  }

  // --- run -----------------------------------------------------------------
  bed.sched().run_until(duration);

  // --- collect ---------------------------------------------------------
  DriveResult result;
  result.measured_duration = duration - cfg.app_start;
  result.medium_utilization = bed.medium().utilization();
  result.metrics = bed.metrics_snapshot();
  result.profile = bed.profile_snapshot();
  if (const TelemetrySampler* tel = bed.telemetry()) {
    result.telemetry = tel->table();
  }
  if (const core::DecisionLog* dlog = bed.decision_log()) {
    result.decision_jsonl = dlog->jsonl();
    result.decision_records = dlog->entries();
    result.decision_switch_records = dlog->switches();
  }
  if (net::FlightRecorder* fr = bed.flight_recorder()) {
    result.packet_jsonl = fr->jsonl();
    result.packet_records = fr->records();
  }
  if (const obs::CausalTracer* causal = bed.causal()) {
    result.causal_jsonl = causal->jsonl();
    result.causal_records = causal->records();
  }
  if (obs::HealthEngine* health = bed.health()) {
    // Idempotent: the Testbed dtor's finalize becomes a no-op, but still
    // writes cfg.testbed.health_path with the summary included.
    health->finalize(bed.sched().now());
    result.health_jsonl = health->jsonl();
    result.health_windows = health->windows_closed();
    result.health_checks = health->checks();
    result.health_violations = health->violations().size();
    for (const auto& v : health->violations()) {
      if (v.severity == "error") ++result.health_errors;
    }
    result.health_in_flight = health->in_flight();
    for (const obs::OutageRecord& o : health->outages()) {
      ++result.outages;
      if (o.open) ++result.unconverged_clients;
      const double ms =
          static_cast<double>((o.end - o.begin).to_ns()) / 1e6;
      if (ms > result.longest_outage_ms) result.longest_outage_ms = ms;
    }
  }
  if (wgtt) {
    result.switches = wgtt->controller().switch_log();
    result.stop_retransmissions =
        wgtt->controller().stats().stop_retransmissions;
    result.uplink_duplicates_removed =
        wgtt->controller().stats().uplink_duplicates;
    result.downlink_duplicates_removed = wgtt->client_duplicates_removed();
    result.switch_latencies_ms =
        wgtt->controller().stats().switch_latency_ms.samples();
    // At-most-one-transmitter snapshot, taken before teardown while the
    // overlay is still alive.  Only meaningful (and only nonempty) on
    // fault-injected runs — the hardened protocol's fences keep it empty.
    if (bed.fault_injector() != nullptr) {
      result.dual_active_clients = wgtt->dual_active_clients();
    }
  }
  std::size_t tcp_i = 0;
  std::size_t udp_i = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const net::NodeId client = clients[i];
    ClientDriveResult cr;
    cr.client = client;
    cr.switching_accuracy = metrics.switching_accuracy(client);
    cr.timeline = metrics.timeline(client);
    cr.bitrate_samples = metrics.bitrate_samples(client).samples();
    cr.bitrate_series = metrics.bitrate_series(client);
    if (cfg.traffic == TrafficType::kTcpDownlink) {
      auto& app = *tcp_apps[tcp_i++];
      cr.goodput_mbps =
          app.connection().goodput().average_mbps_over(result.measured_duration);
      cr.throughput_bins = app.connection().goodput().bins();
      cr.tcp_stats = app.connection().stats();
    } else {
      auto& app = *udp_apps[udp_i++];
      cr.goodput_mbps =
          app.receiver().throughput().average_mbps_over(result.measured_duration);
      cr.throughput_bins = app.receiver().throughput().bins();
      cr.udp_loss_rate = app.loss_rate();
      cr.seq_trace = app.receiver().trace();
    }
    if (baseline) {
      for (const auto& h : baseline->roaming(client).handovers()) {
        if (h.from_ap != 0) {  // don't count the initial association
          if (h.success) {
            ++cr.handovers;
          } else {
            ++cr.failed_handovers;
          }
        }
      }
    }
    result.clients.push_back(std::move(cr));
  }
  return result;
}

}  // namespace wgtt::scenario
