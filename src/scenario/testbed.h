// Testbed construction: the eight-AP roadside deployment of paper §4
// (Fig. 9), with a dense cluster (AP2-AP4 at 7.5 m spacing) and a sparse
// stretch (AP5-AP7 at 12 m) so the Fig. 23 density experiment has both
// regimes, plus the radio calibration that produces meter-scale picocells
// with 6-10 m coverage overlap.
//
// `Testbed` owns the substrate (scheduler, channel, medium, backhaul, MAC
// context, radios).  `WgttNetwork` / `BaselineNetwork` overlay the two
// systems under test and provide flow-wiring helpers so experiments read
// like the paper's methodology section.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/conference.h"
#include "apps/web_browse.h"
#include "baseline/enhanced_80211r.h"
#include "channel/channel_model.h"
#include "core/decision_log.h"
#include "core/wgtt_ap.h"
#include "core/wgtt_controller.h"
#include "mac/medium.h"
#include "mac/wifi_device.h"
#include "net/backhaul.h"
#include "net/fault_injector.h"
#include "net/flight_recorder.h"
#include "scenario/telemetry.h"
#include "sim/fault_plan.h"
#include "sim/scheduler.h"
#include "transport/tcp_connection.h"
#include "transport/udp_flow.h"
#include "util/causal.h"
#include "util/health.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/trace.h"

namespace wgtt::scenario {

/// The shared virtual BSSID all WGTT APs advertise (§4.3).
constexpr net::NodeId kWgttBssid = 90;
constexpr net::NodeId kServerId = net::kServerBase;

struct TestbedConfig {
  /// AP x positions along the road (m).  Default: the 8-AP layout with the
  /// dense AP2-AP4 cluster and sparse AP5-AP7 stretch.
  std::vector<double> ap_x = {0.0, 7.5, 15.0, 22.5, 34.0, 46.0, 58.0, 65.5};
  double ap_y = 15.0;      // perpendicular distance building -> road (m)
  double ap_z = 8.0;       // third floor
  double client_z = 1.5;   // car-mounted antenna
  double lane_y = 0.0;     // default driving lane
  /// Radio calibration: TP-Link through a splitter-combiner into the Laird
  /// antenna, chosen so each AP yields a meter-scale picocell — high MCS
  /// inside the 21-degree main lobe (~±6 m on the road), marginal in the
  /// side lobes, dead beyond ~25 m — with 6-10 m overlap between adjacent
  /// cells, matching the paper's Figs. 9/10.
  channel::RadioConfig radio{.ap_tx_power_dbm = 18.0,
                             .client_tx_power_dbm = 20.0,
                             .ap_system_loss_db = 35.0};
  channel::PathLossConfig pathloss{.exponent = 2.9};
  channel::ShadowingConfig shadowing{};
  channel::FadingConfig fading{};
  double antenna_peak_dbi = 14.0;
  double antenna_hpbw_deg = 21.0;
  double antenna_side_lobe_db = 32.0;
  double client_antenna_dbi = 2.0;
  mac::AirtimeConfig airtime{};
  mac::MediumConfig medium{};
  /// Candidate-AP pruning radius for exhaustive scans (best_ap, metrics
  /// sampling, 802.11k background scans).  Non-positive / infinite (the
  /// default) evaluates every AP — byte-identical to unpruned runs; finite
  /// radii bound per-client channel work for city-scale deployments.
  double candidate_radius_m = 0.0;
  phy::ErrorModelConfig error_model{};
  net::BackhaulConfig backhaul{};
  Time wan_latency = Time::ms(2);  // content cached at the local server (§5.4)
  Time client_keepalive = Time::ms(4);
  std::uint64_t seed = 1;
  /// Per-sim log destination.  When set, the Testbed installs it as the
  /// constructing thread's context-current sink for its whole lifetime, so
  /// concurrent simulations on different threads log independently.  Null
  /// inherits whatever sink is already current (ultimately the process-wide
  /// default).
  std::shared_ptr<LogSink> log_sink{};
  /// Per-sim instrumentation.  When true the Testbed owns a MetricsRegistry
  /// and installs it as the constructing thread's context-current registry
  /// for its lifetime; components cache typed instrument pointers at
  /// construction, so recording is a single branch per site and free when
  /// off.  Instruments only observe — enabling them never changes behaviour.
  bool enable_metrics = true;
  /// When non-empty, the Testbed owns a Tracer and writes the Chrome
  /// trace-event JSON (chrome://tracing / Perfetto) here on destruction.
  std::string trace_path{};
  /// Host-time profiler: the Testbed owns a prof::Profiler and installs it
  /// as the constructing thread's context-current profiler for its lifetime;
  /// instrumented hot paths (scheduler dispatch, channel CSI synthesis, MAC
  /// exchanges, PHY rate selection, controller passes) accumulate exclusive
  /// self-time that lands in the bench report's "profile" block.  Measures
  /// host wall-clock only — it never touches the simulated clock.
  bool enable_profiler = true;
  /// Controller decision audit log (JSONL, one record per AP-selection
  /// evaluation).  Enabled when true or when decision_log_path is set; the
  /// file (if any) is written on destruction.
  bool enable_decision_log = false;
  std::string decision_log_path{};
  /// Periodic telemetry sampling (columnar CSV on the simulated clock).
  /// Enabled when true or when telemetry_path is set; experiments register
  /// the probe columns (run_drive wires the standard set) and the CSV (if a
  /// path is set) is written on destruction.
  bool enable_telemetry = false;
  std::string telemetry_path{};
  Time telemetry_period = Time::ms(100);
  /// Per-packet flight recorder (JSONL, one record per lifecycle hop of a
  /// sampled set of data packets).  Enabled when true or when
  /// packet_log_path is set; the file (if any) is written on destruction.
  /// packet_sample records 1-in-N data packets by seeded uid hash.
  bool enable_packet_log = false;
  std::string packet_log_path{};
  std::uint32_t packet_sample = 1;
  /// Deterministic infrastructure fault schedule (chaos testing).  When
  /// non-empty the Testbed owns a net::FaultInjector driven by a dedicated
  /// RNG stream forked from `seed`, and installs it as the constructing
  /// thread's context-current injector; components then arm their
  /// degradation paths (heartbeats, liveness monitoring, failover).  When
  /// empty — the default — no injector exists, nothing extra is scheduled,
  /// and runs are byte-identical to builds without this feature.
  sim::FaultPlan faults{};
  /// Causal event-graph tracing (util/causal.h): the scheduler records a
  /// parent edge for every scheduled event and ~enough semantic annotation
  /// sites to attribute switch latency per layer.  Enabled when true or
  /// when causal_path is set; the JSONL (if a path is set) is written on
  /// destruction.  Off — the default — every other output stream is
  /// byte-identical to builds without this feature.  Per-packet annotation
  /// sites sample 1-in-causal_sample data packets with the flight
  /// recorder's seeded uid hash, so at equal sampling rates the two
  /// streams cover the same packets; edges and switch/control annotations
  /// are never sampled away.
  bool enable_causal = false;
  std::string causal_path{};
  std::uint32_t causal_sample = 1;
  /// Runtime health engine (streaming windowed telemetry + invariant
  /// watchdogs; see util/health.h).  Enabled when true or when health_path
  /// is set; the health JSONL (if a path is set) is written on destruction.
  /// The engine only observes — the simulation and every other output
  /// stream stay byte-identical with health on or off.
  bool enable_health = false;
  std::string health_path{};
  /// Rollup window on the simulated clock.
  Time health_window = Time::sec(1);
  /// Arms the in-flight ceiling watchdog when nonzero (conservation —
  /// in_flight >= 0 — is always checked).
  std::uint64_t health_max_in_flight = 0;
  /// Sample host RSS into each window — the one nondeterministic field,
  /// off by default so health files stay byte-reproducible.
  bool health_sample_rss = false;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg = {});
  /// Flushes the trace (if tracing) to cfg.trace_path before teardown.
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Scheduler& sched() { return sched_; }
  channel::ChannelModel& channel() { return *channel_; }
  const phy::ErrorModel& error_model() const { return error_model_; }
  mac::Medium& medium() { return *medium_; }
  mac::MacContext& mac() { return *mac_; }
  net::Backhaul& backhaul() { return *backhaul_; }
  const TestbedConfig& config() const { return cfg_; }
  const std::vector<net::NodeId>& ap_ids() const { return ap_ids_; }
  /// This simulation's registry / tracer (null when disabled).
  metrics::MetricsRegistry* metrics() { return metrics_.get(); }
  trace::Tracer* tracer() { return tracer_.get(); }
  /// Flattened copy of every instrument; empty when metrics are disabled.
  metrics::Snapshot metrics_snapshot() const;
  /// This simulation's profiler / decision log / telemetry sampler (null
  /// when the corresponding TestbedConfig switch is off).
  prof::Profiler* profiler() { return profiler_.get(); }
  core::DecisionLog* decision_log() { return decision_log_.get(); }
  net::FlightRecorder* flight_recorder() { return flight_recorder_.get(); }
  net::FaultInjector* fault_injector() { return fault_injector_.get(); }
  TelemetrySampler* telemetry() { return telemetry_.get(); }
  obs::HealthEngine* health() { return health_engine_.get(); }
  obs::CausalTracer* causal() { return causal_tracer_.get(); }
  /// Per-section host self-time; empty when profiling is disabled.
  prof::ProfileSnapshot profile_snapshot() const;

  /// Create an AP radio (called by the network overlays).
  mac::WifiDevice& create_ap_device(net::NodeId id,
                                    mac::WifiDeviceConfig dev_cfg);
  /// Create a client radio bound to a mobility trace.
  net::NodeId add_client(std::shared_ptr<const channel::MobilityModel> mob,
                         net::NodeId bssid);
  mac::WifiDevice& client_device(net::NodeId id);
  mac::WifiDevice& ap_device(net::NodeId id);
  const std::vector<net::NodeId>& client_ids() const { return client_ids_; }

  /// Convenience: mobility for a straight drive down the road at `mph`,
  /// entering `lead_in_m` before the first AP.  Direction +1 / -1.
  std::shared_ptr<channel::MobilityModel> drive_mobility(
      double mph, double lead_in_m = 15.0, double lane_y_offset = 0.0,
      int direction = +1, double start_offset_m = 0.0) const;
  /// Road x-extent of the AP deployment.
  double road_length() const;
  /// Time for a drive-through at `mph` incl. lead-in/out.
  Time transit_duration(double mph, double lead_in_m = 15.0) const;

 private:
  /// Periodic health-window close (read-only: touches no RNG stream, no
  /// tracer, no recorder — so enabling health never perturbs the run).
  void health_tick();
  // Declared first so the sink outlives (and its scope encloses) everything
  // the testbed constructs or destroys on this thread.
  std::shared_ptr<LogSink> log_sink_;
  ScopedLogSink log_scope_;
  TestbedConfig cfg_;
  // Metrics/trace contexts install right after cfg_ so every later member
  // (the scheduler first of all) constructs with them current.
  std::unique_ptr<metrics::MetricsRegistry> metrics_;
  metrics::ScopedMetricsRegistry metrics_scope_;
  std::unique_ptr<trace::Tracer> tracer_;
  trace::ScopedTracer trace_scope_;
  std::unique_ptr<prof::Profiler> profiler_;
  prof::ScopedProfiler profiler_scope_;
  std::unique_ptr<core::DecisionLog> decision_log_;
  core::ScopedDecisionLog decision_scope_;
  // Per-sim packet uids (always installed: parallel sweep workers sharing a
  // process-global counter would make uids — and therefore flight-recorder
  // output — depend on thread interleaving).
  net::PacketUidAllocator uid_alloc_;
  net::ScopedPacketUidAllocator uid_scope_;
  // Per-sim packet-node freelist (recycles make_packet allocations; affects
  // only where nodes live in memory, never their contents or uids).
  net::PacketPool packet_pool_;
  net::ScopedPacketPool packet_pool_scope_;
  std::unique_ptr<net::FlightRecorder> flight_recorder_;
  net::ScopedFlightRecorder flight_scope_;
  // Before sched_: every component constructed after the scheduler caches
  // HealthEngine::current() for its ledger hooks.
  std::unique_ptr<obs::HealthEngine> health_engine_;
  obs::ScopedHealthEngine health_scope_;
  // Before sched_: the scheduler caches CausalTracer::current() — and binds
  // itself into the tracer — at construction.
  std::unique_ptr<obs::CausalTracer> causal_tracer_;
  obs::ScopedCausalTracer causal_scope_;
  sim::Scheduler sched_;
  // After sched_ (schedules its fault events at construction), before every
  // component that caches FaultInjector::current().
  std::unique_ptr<net::FaultInjector> fault_injector_;
  net::ScopedFaultInjector fault_scope_;
  std::unique_ptr<TelemetrySampler> telemetry_;  // after sched_: holds a ref
  Rng rng_;
  phy::ErrorModel error_model_;
  std::unique_ptr<channel::ChannelModel> channel_;
  std::unique_ptr<mac::Medium> medium_;
  std::unique_ptr<mac::MacContext> mac_;
  std::unique_ptr<net::Backhaul> backhaul_;
  std::vector<net::NodeId> ap_ids_;
  std::vector<net::NodeId> client_ids_;
  std::map<net::NodeId, std::unique_ptr<mac::WifiDevice>> devices_;
  net::NodeId next_client_ = net::kClientBase;
};

// ---------------------------------------------------------------------------
// Flow routing shared by both network overlays
// ---------------------------------------------------------------------------

class FlowRouter {
 public:
  using Handler = std::function<void(const net::PacketPtr&)>;
  explicit FlowRouter(sim::Scheduler* sched = nullptr) : sched_(sched) {
    if (auto* reg = metrics::MetricsRegistry::current()) {
      m_dropped_ = &reg->counter("net.flow_router_drops");
    }
    recorder_ = net::FlightRecorder::current();
    health_ = obs::HealthEngine::current();
  }
  void register_flow(std::uint32_t flow_id, Handler h) {
    handlers_[flow_id] = std::move(h);
  }
  void deliver(const net::PacketPtr& pkt) {
    auto it = handlers_.find(pkt->flow_id);
    if (it == handlers_.end()) {
      ++dropped_;
      if (m_dropped_) m_dropped_->add();
      if (health_ && net::flight_recorded(pkt->type)) {
        health_->packet_dropped();
      }
      if (recorder_ && sched_ && net::flight_recorded(pkt->type)) {
        recorder_->drop(pkt->uid, sched_->now(), net::Hop::kTransportDrop,
                        pkt->dst, net::DropCause::kNoFlowHandler,
                        {{"flow", pkt->flow_id}});
      }
      WGTT_LOG(kDebug, "flow",
               "no handler for flow " << pkt->flow_id << ", dropping "
                                      << net::to_string(pkt->type) << " "
                                      << pkt->src << "->" << pkt->dst);
      return;
    }
    it->second(pkt);
  }
  /// Packets delivered to a flow_id nobody registered — a miswired
  /// experiment if nonzero.
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::map<std::uint32_t, Handler> handlers_;
  std::uint64_t dropped_ = 0;
  metrics::Counter* m_dropped_ = nullptr;
  sim::Scheduler* sched_ = nullptr;
  net::FlightRecorder* recorder_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
};

// ---------------------------------------------------------------------------
// WGTT overlay
// ---------------------------------------------------------------------------

enum class RateControlKind {
  kMinstrel,  // the testbed default (stock Atheros rate control)
  kEsnr,      // channel-aware: select from the freshest CSI-derived ESNR
};

struct WgttNetworkConfig {
  core::ControllerConfig controller{};
  Time control_processing = Time::ms(5.5);
  Time control_jitter = Time::ms(6);
  Time ioctl_delay = Time::ms(2.5);
  Time ba_completion_grace = Time::ms(1);
  core::QueueStackConfig stack{};
  bool enable_ba_forwarding = true;              // ablation knob
  Time nic_drain_window = Time::ms(8);           // old-AP quench deadline
  RateControlKind rate_control = RateControlKind::kMinstrel;
  /// Multi-channel extension (paper §7): channel plan applied round-robin
  /// across APs (empty = the prototype's single channel 11).  Clients
  /// retune to the new AP's channel when a switch completes (a short deaf
  /// period), and an 802.11k-style scan report gives the controller coarse
  /// 100 ms-cadence ESNR for APs on other channels.
  std::vector<unsigned> ap_channels{};
  Time client_retune_pause = Time::ms(3);
  Time scan_report_period = Time::ms(100);
};

class WgttNetwork {
 public:
  WgttNetwork(Testbed& bed, WgttNetworkConfig cfg = {});

  core::WgttController& controller() { return *controller_; }
  core::WgttAp& ap(net::NodeId id);

  /// Create a client driving on `mob` and schedule its association.
  net::NodeId add_client(std::shared_ptr<const channel::MobilityModel> mob,
                         Time associate_at = Time::ms(250));

  /// Inject an uplink packet at the client radio.
  void client_uplink(net::NodeId client, net::PacketPtr pkt);
  /// Inject a downlink packet at the wired server (adds WAN latency).
  void server_downlink(net::NodeId client, net::PacketPtr pkt);

  // -- flow wiring -------------------------------------------------------
  void wire_tcp_downlink(transport::TcpConnection& conn);
  void wire_udp_downlink(transport::UdpSender& sender,
                         transport::UdpReceiver& receiver,
                         net::NodeId client);
  void wire_udp_uplink(transport::UdpSender& sender,
                       transport::UdpReceiver& receiver, net::NodeId client);
  void wire_conference_downlink(apps::ConferenceApp& app, net::NodeId client);
  void wire_conference_uplink(apps::ConferenceApp& app, net::NodeId client);
  void wire_web_browse(apps::WebBrowseApp& app, net::NodeId client);

  FlowRouter& client_rx() { return client_rx_; }
  FlowRouter& server_rx() { return server_rx_; }
  /// Channel the AP with this id operates on.
  unsigned ap_channel(net::NodeId ap) const;
  bool multi_channel() const { return !cfg_.ap_channels.empty(); }
  /// Downlink duplicates absorbed at the clients (start-first / bicast
  /// policies interpose a per-client Deduplicator; 0 for stop-start).
  std::uint64_t client_duplicates_removed() const;
  /// At-most-one-transmitter probe: clients that more than one AP is
  /// actively transmitting to right now, excluding clients whose switch
  /// handshake is still in flight (stop-start relays and declared overlap
  /// windows legitimately pass through two-transmitter states).  Must be
  /// empty once a chaos run has converged; the protocol fuzzer asserts it.
  std::vector<net::NodeId> dual_active_clients() const;

 private:
  void retry_associate(net::NodeId client);
  /// 802.11k-style background scan: inject coarse CSI for APs the client's
  /// current channel cannot hear (multi-channel mode only).
  void scan_tick(net::NodeId client);

  Testbed& bed_;
  WgttNetworkConfig cfg_;
  std::unique_ptr<core::WgttController> controller_;
  std::map<net::NodeId, std::unique_ptr<core::WgttAp>> aps_;
  FlowRouter client_rx_;
  FlowRouter server_rx_;
  /// Client-side downlink dedup (only populated when the configured policy
  /// intentionally duplicates: make_before_break / bicast overlap windows).
  std::map<net::NodeId, std::shared_ptr<core::Deduplicator>> client_dedups_;
  metrics::Counter* m_client_dedup_ = nullptr;
};

// ---------------------------------------------------------------------------
// Enhanced 802.11r overlay
// ---------------------------------------------------------------------------

struct BaselineNetworkConfig {
  baseline::RoamingConfig roaming{};
  baseline::BaselineApConfig ap_template{};
  Time distribution_relearn = Time::ms(15);
};

class BaselineNetwork {
 public:
  BaselineNetwork(Testbed& bed, BaselineNetworkConfig cfg = {});

  baseline::Distribution& distribution() { return *distribution_; }
  baseline::RoamingClient& roaming(net::NodeId client);

  net::NodeId add_client(std::shared_ptr<const channel::MobilityModel> mob);

  void client_uplink(net::NodeId client, net::PacketPtr pkt);
  void server_downlink(net::NodeId client, net::PacketPtr pkt);

  void wire_tcp_downlink(transport::TcpConnection& conn);
  void wire_udp_downlink(transport::UdpSender& sender,
                         transport::UdpReceiver& receiver,
                         net::NodeId client);
  void wire_udp_uplink(transport::UdpSender& sender,
                       transport::UdpReceiver& receiver, net::NodeId client);
  void wire_conference_downlink(apps::ConferenceApp& app, net::NodeId client);
  void wire_conference_uplink(apps::ConferenceApp& app, net::NodeId client);
  void wire_web_browse(apps::WebBrowseApp& app, net::NodeId client);

  FlowRouter& client_rx() { return client_rx_; }
  FlowRouter& server_rx() { return server_rx_; }

 private:
  Testbed& bed_;
  BaselineNetworkConfig cfg_;
  std::unique_ptr<baseline::Distribution> distribution_;
  std::vector<std::unique_ptr<baseline::BaselineAp>> aps_;
  std::map<net::NodeId, std::unique_ptr<baseline::RoamingClient>> roaming_;
  FlowRouter client_rx_;
  FlowRouter server_rx_;
};

}  // namespace wgtt::scenario
