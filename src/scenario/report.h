// Machine-readable bench reports.
//
// Every sweep-shaped bench emits a BENCH_<id>.json next to its
// human-readable table: one RunReport per simulation (the config axes that
// varied, the headline metrics, and the host wall-clock), wrapped in a
// SweepReport carrying the sweep-level aggregates and the parallelism that
// produced them.  The recorded wall_ms/jobs pair is the bench's perf
// trajectory: rerunning after an optimisation (or with more cores) leaves a
// comparable artifact behind.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "scenario/experiment.h"
#include "scenario/sweep.h"

namespace wgtt::scenario {

const char* to_string(SystemType s);
const char* to_string(TrafficType t);

/// One simulation's row in the report.
struct RunReport {
  std::string label;  // bench-assigned, e.g. "tcp/wgtt/15mph"
  // Config axes.
  std::string system;
  std::string traffic;
  /// Handoff policy (canonical spec, e.g. "median_esnr" or
  /// "bicast:hold_ms=20") for WGTT runs; "client_roam" for the 802.11r
  /// baselines, whose clients pick their own AP.  wgtt-report diff refuses
  /// to compare runs whose policies differ.
  std::string policy;
  double speed_mph = 0.0;
  std::uint64_t seed = 0;
  std::size_t num_clients = 1;
  // Headline metrics (mirrors DriveResult).
  double goodput_mbps = 0.0;
  double udp_loss_rate = 0.0;
  double switching_accuracy = 0.0;
  std::size_t switches = 0;
  std::size_t handovers = 0;
  std::size_t failed_handovers = 0;
  double medium_utilization = 0.0;
  double wall_ms = 0.0;
  /// Bench-specific scalars (e.g. dense/sparse region throughput).
  std::vector<std::pair<std::string, double>> extra;
  /// Full instrument snapshot from the run's MetricsRegistry (counters,
  /// gauges, histograms); serialized as the run's "metrics" object.
  metrics::Snapshot metrics;
  /// Per-section host self-time from the run's Profiler; serialized as the
  /// run's "profile" object (where the simulator's CPU went).
  prof::ProfileSnapshot profile;
  /// Runtime health rollup (nonzero only when the run enabled health);
  /// serialized as the run's "health" object.
  std::uint64_t health_windows = 0;
  std::uint64_t health_checks = 0;
  std::uint64_t health_violations = 0;
  std::uint64_t health_errors = 0;
  std::int64_t health_in_flight = 0;
};

/// Populate a RunReport from a finished run.  `label` is free-form.
RunReport make_run_report(std::string label, const DriveScenarioConfig& cfg,
                          const DriveResult& result, double wall_ms = 0.0);

struct SweepReport {
  std::string bench_id;  // e.g. "fig13_speed_sweep"
  std::string title;
  std::size_t jobs = 1;
  double wall_ms = 0.0;
  /// Sweep-level aggregates (e.g. "tcp_speedup_vs_baseline").
  std::vector<std::pair<std::string, double>> summary;
  std::vector<RunReport> runs;

  /// Record sweep-level execution facts from a SweepOutcome.
  void note_outcome(const SweepOutcome& outcome) {
    jobs = outcome.jobs;
    wall_ms = outcome.wall_ms;
  }

  std::string to_json() const;
  /// Serialize to `path` (default BENCH_<bench_id>.json in the working
  /// directory).  Returns the path written, or empty on I/O failure.
  std::string write(std::string path = {}) const;
};

}  // namespace wgtt::scenario
