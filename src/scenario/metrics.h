// Experiment instrumentation.
//
// DriveMetrics samples, at a fixed cadence, which AP the system under test
// is using for each client versus the ground-truth optimal AP (the argmax
// of instantaneous downlink ESNR the simulator can compute but a real
// testbed must estimate) — yielding the paper's switching-accuracy metric
// (Table 2) and the AP-association timelines under the throughput plots of
// Figs. 14/15/22.  It also taps AP radios' data-exchange telemetry to
// collect the link bit-rate distribution of Fig. 16.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mac/wifi_device.h"
#include "net/packet.h"
#include "scenario/testbed.h"
#include "util/stats.h"

namespace wgtt::scenario {

class DriveMetrics {
 public:
  struct TimelinePoint {
    Time t;
    net::NodeId active = 0;   // AP the system is using
    net::NodeId optimal = 0;  // ground-truth best AP
    double optimal_esnr_db = -30.0;
    bool in_coverage = false;
  };

  /// `active_lookup(client)` reports the system's current AP for a client
  /// (controller state for WGTT, association for the baseline).
  DriveMetrics(Testbed& bed,
               std::function<net::NodeId(net::NodeId)> active_lookup,
               Time sample_period = Time::ms(10),
               double coverage_esnr_threshold_db = 3.0);

  void track_client(net::NodeId client);
  /// Record link bit rates of data exchanges this AP radio performs.
  void attach_bitrate_probe(mac::WifiDevice& ap_device);
  void start();

  // All per-client accessors are total: a client that was never tracked
  // yields an empty timeline / sample set / series (accuracy 0.0), never UB.
  const std::vector<TimelinePoint>& timeline(net::NodeId client) const;
  /// Fraction of in-coverage samples where active == optimal (Table 2).
  double switching_accuracy(net::NodeId client) const;
  const SampleSet& bitrate_samples(net::NodeId client) const;
  const std::vector<std::pair<Time, double>>& bitrate_series(
      net::NodeId client) const;

 private:
  void sample();

  Testbed& bed_;
  std::function<net::NodeId(net::NodeId)> active_lookup_;
  Time period_;
  double coverage_threshold_db_;
  struct PerClient {
    std::vector<TimelinePoint> timeline;
    SampleSet bitrates;
    std::vector<std::pair<Time, double>> bitrate_series;
  };
  std::map<net::NodeId, PerClient> clients_;
  std::vector<net::NodeId> candidate_scratch_;  // reused across samples
  bool started_ = false;
};

}  // namespace wgtt::scenario
