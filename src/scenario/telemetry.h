// Periodic telemetry sampling on the simulated clock.
//
// The paper's headline figures are time series — Fig. 2's per-AP ESNR traces,
// Fig. 14/15's TCP/UDP throughput timelines across switches — so the
// simulator needs one shared mechanism that samples live signals (median
// ESNR per (client, AP), the selected AP, instantaneous goodput, AP queue
// backlog, TCP cwnd/retransmissions) on a fixed simulated-clock period and
// renders them as columnar CSV.
//
// A TelemetrySampler is owned by the Testbed (enabled via TestbedConfig);
// experiments register probe columns, the sampler ticks every `period`, and
// the in-memory table is both written as CSV on Testbed teardown and copied
// into DriveResult so benches print figures from it directly.  All CSV
// numbers are fixed-point renderings computed with integer arithmetic
// (timestamps via the tracer's formatter), so a fixed-seed run produces a
// byte-identical file on any platform.  Probes only observe: the sampler's
// events interleave with the simulation's, but reading state never changes
// it — and with telemetry off no events are scheduled at all.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scheduler.h"
#include "util/profiler.h"
#include "util/time.h"

namespace wgtt::scenario {

/// Render `v` with exactly `decimals` fixed decimal places using integer
/// arithmetic (llround of the scaled value) — deterministic across platforms,
/// unlike printf's shortest-round-trip formats.  Non-finite values render as
/// "nan".
std::string format_fixed(double v, int decimals);

/// The sampled data, independent of the sampler: column specs, one timestamp
/// per row, and a dense row-major value matrix.
struct TelemetryTable {
  struct ColumnSpec {
    std::string name;
    int decimals = 3;
  };
  std::vector<ColumnSpec> columns;
  std::vector<Time> times;
  std::vector<std::vector<double>> rows;  // rows[i].size() == columns.size()

  bool empty() const { return times.empty(); }
  std::size_t row_count() const { return times.size(); }
  /// Index of a column by name, or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t column_index(std::string_view name) const;

  /// Header "t_us,<col>,..." then one line per row; timestamps are the
  /// tracer's integer-formatted microseconds, values fixed-point per column.
  std::string to_csv() const;
};

class TelemetrySampler {
 public:
  TelemetrySampler(sim::Scheduler& sched, Time period);
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Register a probe before start(); sampled left-to-right in registration
  /// order on every tick.
  void add_column(std::string name, int decimals,
                  std::function<double()> probe);

  /// Take the first sample now and re-sample every period() until the
  /// simulation ends.  Idempotent.
  void start();

  Time period() const { return period_; }
  bool started() const { return started_; }
  const TelemetryTable& table() const { return table_; }
  std::string to_csv() const { return table_.to_csv(); }

 private:
  void tick();

  sim::Scheduler& sched_;
  Time period_;
  std::vector<std::function<double()>> probes_;
  TelemetryTable table_;
  bool started_ = false;
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_sample_ = nullptr;
};

}  // namespace wgtt::scenario
