// Parallel sweep execution.
//
// Every evaluation figure in the paper is a sweep — Fig. 13 alone is 28 full
// drive-through simulations (7 speeds x 2 traffic types x 2 systems).  Each
// run_drive() call is fully self-contained (the Testbed owns its scheduler,
// channel, RNG tree, and log sink), so a sweep can saturate every core:
// SweepRunner executes a vector of configs on a bounded thread pool and
// returns results in input order, bitwise-identical to serial execution.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "scenario/experiment.h"

namespace wgtt::scenario {

struct SweepOptions {
  /// Worker threads.  0 = take WGTT_SWEEP_JOBS from the environment if set,
  /// else std::thread::hardware_concurrency().  1 = serial execution on the
  /// calling thread.
  std::size_t jobs = 0;
};

/// One completed simulation plus its host-side cost.
struct SweepRun {
  DriveResult result;
  double wall_ms = 0.0;  // host wall-clock for this run
};

struct SweepOutcome {
  std::vector<SweepRun> runs;  // input order, regardless of thread count
  std::size_t jobs = 1;        // resolved worker count actually used
  double wall_ms = 0.0;        // host wall-clock for the whole sweep
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Resolved worker-thread count this runner will use.
  std::size_t jobs() const { return jobs_; }

  /// Run every config (in parallel, up to jobs() at a time) and return the
  /// results in input order.  Deterministic: each run's metrics depend only
  /// on its config, never on scheduling, so the outcome is bitwise-identical
  /// to a serial loop over run_drive().  Exceptions from a run are rethrown
  /// on the calling thread after all workers have stopped.
  SweepOutcome run(const std::vector<DriveScenarioConfig>& configs) const;

  /// Apply SweepOptions defaulting: 0 -> WGTT_SWEEP_JOBS env var if set and
  /// positive, else hardware_concurrency (min 1).
  static std::size_t resolve_jobs(std::size_t requested);

 private:
  std::size_t jobs_;
};

/// Expand `base` into `n` runs whose seeds derive from `sweep_seed` via the
/// Rng::fork discipline — independent of execution order or thread count, so
/// replicate i always sees the same seed.
std::vector<DriveScenarioConfig> seed_replicates(DriveScenarioConfig base,
                                                 std::size_t n,
                                                 std::uint64_t sweep_seed);

/// Bounded-parallel index loop: invoke fn(0..n-1), at most `jobs` at a time
/// (jobs <= 1 runs inline on the calling thread).  The building block under
/// SweepRunner, reusable by benches whose unit of work is not run_drive()
/// (e.g. Fig. 21's trace recording).  fn must be safe to call concurrently
/// for distinct indices.  The first exception thrown is rethrown here after
/// all workers finish.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace wgtt::scenario
