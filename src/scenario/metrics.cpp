#include "scenario/metrics.h"

#include "phy/esnr.h"

namespace wgtt::scenario {

DriveMetrics::DriveMetrics(Testbed& bed,
                           std::function<net::NodeId(net::NodeId)> lookup,
                           Time sample_period,
                           double coverage_esnr_threshold_db)
    : bed_(bed),
      active_lookup_(std::move(lookup)),
      period_(sample_period),
      coverage_threshold_db_(coverage_esnr_threshold_db) {}

void DriveMetrics::track_client(net::NodeId client) { clients_[client]; }

void DriveMetrics::attach_bitrate_probe(mac::WifiDevice& ap_device) {
  ap_device.on_data_exchange = [this](net::NodeId peer,
                                      const phy::McsInfo& mcs,
                                      unsigned attempted, unsigned delivered,
                                      Time when) {
    (void)attempted;
    (void)delivered;
    auto it = clients_.find(peer);
    if (it == clients_.end()) return;
    it->second.bitrates.add(mcs.rate_mbps_lgi);
    it->second.bitrate_series.emplace_back(when, mcs.rate_mbps_lgi);
  };
}

void DriveMetrics::start() {
  if (started_) return;
  started_ = true;
  sample();
}

void DriveMetrics::sample() {
  const Time now = bed_.sched().now();
  for (auto& [client, pc] : clients_) {
    TimelinePoint pt;
    pt.t = now;
    pt.active = active_lookup_ ? active_lookup_(client) : 0;
    // Ground truth: best instantaneous downlink ESNR across candidate APs
    // (all of them at the default unlimited radius).  The ESNR-only fast
    // path skips the RSSI synthesis this sampler never reads.
    double best = -1e9;
    bed_.channel().candidate_aps(client, now, candidate_scratch_);
    for (net::NodeId ap : candidate_scratch_) {
      const double esnr =
          bed_.channel().downlink_selection_esnr_db(ap, client, now);
      if (esnr > best) {
        best = esnr;
        pt.optimal = ap;
      }
    }
    pt.optimal_esnr_db = best;
    pt.in_coverage = best >= coverage_threshold_db_;
    pc.timeline.push_back(pt);
  }
  bed_.sched().schedule(period_, [this]() { sample(); });
}

// Accessors for untracked clients return empty results rather than asserting:
// in a release build the assert would vanish and dereferencing end() is UB,
// which a mislabeled client id in an experiment should not turn into memory
// corruption.  The statics are never written after construction, so the
// shared references are safe even with concurrent sims on other threads.

const std::vector<DriveMetrics::TimelinePoint>& DriveMetrics::timeline(
    net::NodeId client) const {
  static const std::vector<TimelinePoint> kEmpty;
  auto it = clients_.find(client);
  if (it == clients_.end()) return kEmpty;
  return it->second.timeline;
}

double DriveMetrics::switching_accuracy(net::NodeId client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return 0.0;
  std::size_t considered = 0;
  std::size_t correct = 0;
  for (const TimelinePoint& pt : it->second.timeline) {
    if (!pt.in_coverage || pt.active == 0) continue;
    ++considered;
    if (pt.active == pt.optimal) ++correct;
  }
  if (considered == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(considered);
}

const SampleSet& DriveMetrics::bitrate_samples(net::NodeId client) const {
  static const SampleSet kEmpty;
  auto it = clients_.find(client);
  if (it == clients_.end()) return kEmpty;
  return it->second.bitrates;
}

const std::vector<std::pair<Time, double>>& DriveMetrics::bitrate_series(
    net::NodeId client) const {
  static const std::vector<std::pair<Time, double>> kEmpty;
  auto it = clients_.find(client);
  if (it == clients_.end()) return kEmpty;
  return it->second.bitrate_series;
}

}  // namespace wgtt::scenario
