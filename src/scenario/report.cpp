#include "scenario/report.h"

#include "util/json.h"

namespace wgtt::scenario {

const char* to_string(SystemType s) {
  switch (s) {
    case SystemType::kWgtt: return "wgtt";
    case SystemType::kEnhanced80211r: return "enhanced_80211r";
    case SystemType::kStock80211r: return "stock_80211r";
  }
  return "?";
}

const char* to_string(TrafficType t) {
  switch (t) {
    case TrafficType::kTcpDownlink: return "tcp_downlink";
    case TrafficType::kUdpDownlink: return "udp_downlink";
    case TrafficType::kUdpUplink: return "udp_uplink";
  }
  return "?";
}

RunReport make_run_report(std::string label, const DriveScenarioConfig& cfg,
                          const DriveResult& result, double wall_ms) {
  RunReport r;
  r.label = std::move(label);
  r.system = to_string(cfg.system);
  r.traffic = to_string(cfg.traffic);
  r.policy = cfg.system == SystemType::kWgtt
                 ? cfg.wgtt.controller.policy.to_string()
                 : "client_roam";
  r.speed_mph = cfg.speed_mph;
  r.seed = cfg.seed;
  r.num_clients = cfg.num_clients;
  r.goodput_mbps = result.mean_goodput_mbps();
  r.switches = result.switches.size();
  r.medium_utilization = result.medium_utilization;
  r.wall_ms = wall_ms;
  r.metrics = result.metrics;
  r.profile = result.profile;
  r.health_windows = result.health_windows;
  r.health_checks = result.health_checks;
  r.health_violations = result.health_violations;
  r.health_errors = result.health_errors;
  r.health_in_flight = result.health_in_flight;
  if (!result.clients.empty()) {
    double loss = 0.0;
    double acc = 0.0;
    for (const auto& c : result.clients) {
      loss += c.udp_loss_rate;
      acc += c.switching_accuracy;
      r.handovers += c.handovers;
      r.failed_handovers += c.failed_handovers;
    }
    const auto n = static_cast<double>(result.clients.size());
    r.udp_loss_rate = loss / n;
    r.switching_accuracy = acc / n;
  }
  return r;
}

std::string SweepReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("bench", bench_id);
  w.field("title", title);
  w.field("jobs", jobs);
  w.field("wall_ms", wall_ms);
  w.key("summary").begin_object();
  for (const auto& [k, v] : summary) w.field(k, v);
  w.end_object();
  w.key("runs").begin_array();
  for (const RunReport& r : runs) {
    w.begin_object();
    w.field("label", r.label);
    w.field("system", r.system);
    w.field("traffic", r.traffic);
    w.field("policy", r.policy);
    w.field("speed_mph", r.speed_mph);
    w.field("seed", r.seed);
    w.field("num_clients", r.num_clients);
    w.field("goodput_mbps", r.goodput_mbps);
    w.field("udp_loss_rate", r.udp_loss_rate);
    w.field("switching_accuracy", r.switching_accuracy);
    w.field("switches", r.switches);
    w.field("handovers", r.handovers);
    w.field("failed_handovers", r.failed_handovers);
    w.field("medium_utilization", r.medium_utilization);
    w.field("wall_ms", r.wall_ms);
    if (!r.extra.empty()) {
      w.key("extra").begin_object();
      for (const auto& [k, v] : r.extra) w.field(k, v);
      w.end_object();
    }
    if (!r.metrics.empty()) {
      w.key("metrics");
      r.metrics.write_json(w);
    }
    if (!r.profile.empty()) {
      w.key("profile");
      r.profile.write_json(w);
    }
    if (r.health_checks > 0) {
      w.key("health").begin_object();
      w.field("windows", r.health_windows);
      w.field("checks", r.health_checks);
      w.field("violations", r.health_violations);
      w.field("errors", r.health_errors);
      w.field("in_flight", r.health_in_flight);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

std::string SweepReport::write(std::string path) const {
  if (path.empty()) path = "BENCH_" + bench_id + ".json";
  if (!write_text_file(path, to_json())) return {};
  return path;
}

}  // namespace wgtt::scenario
