#include "scenario/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/rng.h"

namespace wgtt::scenario {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t workers = std::min(jobs, n);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t SweepRunner::resolve_jobs(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("WGTT_SWEEP_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(SweepOptions opts)
    : jobs_(resolve_jobs(opts.jobs)) {}

SweepOutcome SweepRunner::run(
    const std::vector<DriveScenarioConfig>& configs) const {
  SweepOutcome out;
  out.jobs = jobs_;
  out.runs.resize(configs.size());
  const auto start = std::chrono::steady_clock::now();
  parallel_for(configs.size(), jobs_, [&](std::size_t i) {
    const auto run_start = std::chrono::steady_clock::now();
    out.runs[i].result = run_drive(configs[i]);
    out.runs[i].wall_ms = elapsed_ms(run_start);
  });
  out.wall_ms = elapsed_ms(start);
  return out;
}

std::vector<DriveScenarioConfig> seed_replicates(DriveScenarioConfig base,
                                                 std::size_t n,
                                                 std::uint64_t sweep_seed) {
  std::vector<DriveScenarioConfig> configs;
  configs.reserve(n);
  const Rng parent(sweep_seed);
  for (std::size_t i = 0; i < n; ++i) {
    base.seed = parent.fork(i).next_u64();
    configs.push_back(base);
  }
  return configs;
}

}  // namespace wgtt::scenario
