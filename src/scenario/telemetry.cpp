#include "scenario/telemetry.h"

#include <cmath>

#include "util/trace.h"

namespace wgtt::scenario {

std::string format_fixed(double v, int decimals) {
  if (!std::isfinite(v)) return "nan";
  long long scale = 1;
  for (int i = 0; i < decimals; ++i) scale *= 10;
  const long long scaled = std::llround(v * static_cast<double>(scale));
  const bool neg = scaled < 0;
  unsigned long long mag =
      neg ? -static_cast<unsigned long long>(scaled)
          : static_cast<unsigned long long>(scaled);
  std::string out;
  if (neg) out += '-';
  out += std::to_string(mag / static_cast<unsigned long long>(scale));
  if (decimals > 0) {
    out += '.';
    const std::string frac =
        std::to_string(mag % static_cast<unsigned long long>(scale));
    out.append(static_cast<std::size_t>(decimals) - frac.size(), '0');
    out += frac;
  }
  return out;
}

std::size_t TelemetryTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  return npos;
}

std::string TelemetryTable::to_csv() const {
  std::string out = "t_us";
  for (const ColumnSpec& c : columns) {
    out += ',';
    out += c.name;
  }
  out += '\n';
  for (std::size_t r = 0; r < times.size(); ++r) {
    out += trace::Tracer::format_ts(times[r]);
    for (std::size_t c = 0; c < columns.size(); ++c) {
      out += ',';
      out += format_fixed(rows[r][c], columns[c].decimals);
    }
    out += '\n';
  }
  return out;
}

TelemetrySampler::TelemetrySampler(sim::Scheduler& sched, Time period)
    : sched_(sched), period_(period) {
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_sample_ = &p->section("scenario.telemetry");
  }
}

void TelemetrySampler::add_column(std::string name, int decimals,
                                  std::function<double()> probe) {
  table_.columns.push_back({std::move(name), decimals});
  probes_.push_back(std::move(probe));
}

void TelemetrySampler::start() {
  if (started_) return;
  started_ = true;
  tick();
}

void TelemetrySampler::tick() {
  {
    prof::ScopedSection timer(prof_, p_sample_);
    table_.times.push_back(sched_.now());
    std::vector<double> row;
    row.reserve(probes_.size());
    for (const auto& probe : probes_) row.push_back(probe());
    table_.rows.push_back(std::move(row));
  }
  sched_.schedule(period_, [this]() { tick(); });
}

}  // namespace wgtt::scenario
