// Uplink packet de-duplication (paper §3.2.3).
//
// Every AP that decodes a client's uplink frame tunnels it to the
// controller, so the controller sees one copy per hearing AP.  Forwarding
// duplicates upstream would trigger spurious TCP retransmissions, so the
// controller drops all but the first copy, keyed by the paper's 48-bit
// (source address ++ IP-ID) composition over a bounded time window.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "net/packet.h"
#include "util/time.h"

namespace wgtt::core {

class Deduplicator {
 public:
  /// `window`: how long a key stays hot.  IP-ID wraps at 65536 packets per
  /// client, so the window must be much shorter than the wrap period at
  /// line rate (~8 s at 90 Mbit/s of 1500-byte packets).
  explicit Deduplicator(Time window = Time::sec(2));

  /// Returns true (and swallows the key) if this packet was seen within the
  /// window; false if it is new.
  bool is_duplicate(const net::Packet& pkt, Time now);

  /// ARP and other non-IP packets are forwarded unconditionally (§3.2.2
  /// footnote: they carry no IP-ID and need no de-duplication).
  static bool needs_dedup(const net::Packet& pkt) {
    return pkt.type == net::PacketType::kData ||
           pkt.type == net::PacketType::kTcpAck;
  }

  std::size_t size() const { return keys_.size(); }
  std::uint64_t duplicates_dropped() const { return dropped_; }

 private:
  void expire(Time now);

  Time window_;
  std::unordered_set<std::uint64_t> keys_;
  std::deque<std::pair<Time, std::uint64_t>> order_;
  std::uint64_t dropped_ = 0;
};

}  // namespace wgtt::core
