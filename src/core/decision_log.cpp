#include "core/decision_log.h"

#include <cmath>

#include "util/trace.h"

namespace wgtt::core {

const char* to_string(DecisionOutcome o) {
  switch (o) {
    case DecisionOutcome::kKeep: return "keep";
    case DecisionOutcome::kSwitch: return "switch";
    case DecisionOutcome::kDefer: return "defer";
  }
  return "?";
}

const char* to_string(DecisionReason r) {
  switch (r) {
    case DecisionReason::kNotJoined: return "not_joined";
    case DecisionReason::kSwitchInFlight: return "switch_in_flight";
    case DecisionReason::kHysteresis: return "hysteresis";
    case DecisionReason::kNoCandidate: return "no_candidate";
    case DecisionReason::kIncumbentBest: return "incumbent_best";
    case DecisionReason::kBelowMargin: return "below_margin";
    case DecisionReason::kChallengerAhead: return "challenger_ahead";
    case DecisionReason::kApSuspect: return "ap_suspect";
    case DecisionReason::kAllSuspect: return "all_suspect";
    case DecisionReason::kResync: return "resync";
  }
  return "?";
}

namespace {

thread_local DecisionLog* t_current_decision_log = nullptr;

// Fixed-point milli-units via integer arithmetic: byte-identical rendering of
// doubles across platforms (printf %g is not).
std::string format_milli(double v) {
  const long long m = std::llround(v * 1000.0);
  return std::to_string(m);
}

}  // namespace

DecisionLog::DecisionLog(bool protocol_extensions) {
  // Schema header line.  Not a decision record (entries_ stays 0): it
  // declares the stream identity + version so consumers fail loudly on a
  // format they do not understand instead of mis-parsing it.  Only runs with
  // the hardened control plane armed advertise version 2 (which adds the
  // "resync" reason); fault-free logs stay byte-identical to version 1.
  out_ += "{\"kind\":\"schema\",\"stream\":\"wgtt.decisions\",\"version\":";
  out_ += std::to_string(protocol_extensions ? kDecisionLogSchemaVersionResync
                                             : kDecisionLogSchemaVersion);
  out_ += "}\n";
}

void DecisionLog::append(const DecisionRecord& rec) {
  // Hand-rolled serialization (field order fixed by this code, numbers
  // integer-formatted) rather than JsonWriter — every byte is deterministic.
  std::string& s = out_;
  s += "{\"t_us\":";
  s += trace::Tracer::format_ts(rec.t);
  s += ",\"client\":";
  s += std::to_string(rec.client);
  s += ",\"incumbent\":";
  s += std::to_string(rec.incumbent);
  s += ",\"chosen\":";
  s += std::to_string(rec.chosen);
  s += ",\"policy\":\"";
  s += rec.policy;
  s += "\",\"outcome\":\"";
  s += to_string(rec.outcome);
  s += "\",\"reason\":\"";
  s += to_string(rec.reason);
  s += "\",\"margin_mdb\":";
  s += format_milli(rec.margin_db);
  s += ",\"hyst_remaining_us\":";
  s += trace::Tracer::format_ts(rec.hysteresis_remaining);
  s += ",\"candidates\":[";
  bool first = true;
  for (const DecisionCandidate& c : rec.candidates) {
    if (!first) s += ',';
    first = false;
    s += "{\"ap\":";
    s += std::to_string(c.ap);
    s += ",\"median_mdb\":";
    s += format_milli(c.median_db);
    s += ",\"readings\":";
    s += std::to_string(c.readings);
    s += ",\"eligible\":";
    s += c.eligible ? "true" : "false";
    s += '}';
  }
  s += "]}\n";
  ++entries_;
  if (rec.outcome == DecisionOutcome::kSwitch) ++switches_;
}

void DecisionLog::append_liveness(const LivenessRecord& rec) {
  std::string& s = out_;
  s += "{\"t_us\":";
  s += trace::Tracer::format_ts(rec.t);
  s += ",\"kind\":\"liveness\",\"ap\":";
  s += std::to_string(rec.ap);
  s += ",\"event\":\"";
  s += rec.event;
  s += "\",\"flaps\":";
  s += std::to_string(rec.flaps);
  s += ",\"quarantine_us\":";
  s += trace::Tracer::format_ts(rec.quarantine);
  s += "}\n";
  ++liveness_entries_;
}

DecisionLog* DecisionLog::current() { return t_current_decision_log; }

ScopedDecisionLog::ScopedDecisionLog(DecisionLog* log) {
  if (log == nullptr) return;
  installed_ = log;
  previous_ = t_current_decision_log;
  t_current_decision_log = log;
}

ScopedDecisionLog::~ScopedDecisionLog() {
  if (installed_ != nullptr) t_current_decision_log = previous_;
}

}  // namespace wgtt::core
