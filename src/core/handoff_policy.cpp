#include "core/handoff_policy.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace wgtt::core {

double MobilityHint::speed_mps() const {
  return std::sqrt(vx * vx + vy * vy + vz * vz);
}

const char* to_string(SwitchStyle s) {
  switch (s) {
    case SwitchStyle::kStopStart: return "stop_start";
    case SwitchStyle::kStartFirst: return "start_first";
    case SwitchStyle::kBicast: return "bicast";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

double PolicySpec::param(const std::string& key, double fallback) const {
  for (const auto& kv : params) {
    if (kv.first == key) return kv.second;
  }
  return fallback;
}

bool PolicySpec::has_param(const std::string& key) const {
  for (const auto& kv : params) {
    if (kv.first == key) return true;
  }
  return false;
}

std::string PolicySpec::to_string() const {
  std::string out = name;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ":" : ",";
    out += params[i].first;
    out += "=";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", params[i].second);
    out += buf;
  }
  return out;
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> names = {
      "median_esnr", "predictive", "make_before_break", "bicast"};
  return names;
}

bool parse_policy_spec(const std::string& text, PolicySpec& spec,
                       std::string* err) {
  PolicySpec out;
  const std::size_t colon = text.find(':');
  out.name = text.substr(0, colon);
  bool known = false;
  for (const std::string& n : policy_names()) known |= n == out.name;
  if (!known) {
    if (err) {
      *err = "unknown policy '" + out.name + "' (known:";
      for (const std::string& n : policy_names()) *err += " " + n;
      *err += ")";
    }
    return false;
  }
  if (colon != std::string::npos) {
    std::string rest = text.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
      const std::size_t comma = rest.find(',', pos);
      const std::string kv = rest.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      const std::size_t eq = kv.find('=');
      if (kv.empty() || eq == 0 || eq == std::string::npos) {
        if (err) *err = "bad policy param '" + kv + "' (expected key=value)";
        return false;
      }
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      char* end = nullptr;
      const double v = std::strtod(val.c_str(), &end);
      if (val.empty() || end == nullptr || *end != '\0') {
        if (err) *err = "bad numeric value in policy param '" + kv + "'";
        return false;
      }
      out.params.emplace_back(key, v);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  spec = std::move(out);
  return true;
}

bool policy_duplicates_downlink(const PolicySpec& spec) {
  return spec.name == "make_before_break" || spec.name == "bicast";
}

// ---------------------------------------------------------------------------
// median_esnr — the paper's §3.1.1 algorithm, extracted verbatim
// ---------------------------------------------------------------------------

namespace {

/// The pre-refactor controller pass body: hysteresis gate, prune, liveness-
/// filtered argmax, incumbent/margin checks.  Shared by every policy that
/// keeps the paper's selection rule and only changes the switching style.
PolicyDecision median_decide(const PolicyInput& in, Time hysteresis,
                             double margin_db) {
  if (in.now - in.last_switch < hysteresis) {
    return PolicyDecision::defer(DecisionReason::kHysteresis,
                                 hysteresis - (in.now - in.last_switch));
  }
  in.windows.prune(in.now);

  // With faults possible, exclude suspect/quarantined APs and frozen-CSI
  // candidates; without an injector this is exactly the paper's argmax.
  const net::NodeId best =
      in.env.fault_aware() ? in.env.select_live() : in.windows.select(in.now);
  if (best == 0) {
    return PolicyDecision::keep(DecisionReason::kNoCandidate, 0);
  }
  if (best == in.incumbent) {
    return PolicyDecision::keep(DecisionReason::kIncumbentBest, best);
  }
  const auto best_median = in.windows.median(best, in.now);
  const auto active_median = in.windows.median(in.incumbent, in.now);
  if (active_median && *best_median < *active_median + margin_db) {
    return PolicyDecision::keep(DecisionReason::kBelowMargin, best);
  }
  return PolicyDecision::switch_to(best);
}

class MedianEsnrPolicy final : public HandoffPolicy {
 public:
  MedianEsnrPolicy(Time hysteresis, double margin_db)
      : hysteresis_(hysteresis), margin_db_(margin_db) {}
  const char* name() const override { return "median_esnr"; }
  PolicyDecision decide(const PolicyInput& in) override {
    return median_decide(in, hysteresis_, margin_db_);
  }

 private:
  Time hysteresis_;
  double margin_db_;
};

// ---------------------------------------------------------------------------
// predictive — median ESNR corroborated by trajectory geometry
// ---------------------------------------------------------------------------

class PredictivePolicy final : public HandoffPolicy {
 public:
  PredictivePolicy(Time hysteresis, double margin_db, double hysteresis_scale,
                   double min_speed_mps)
      : hysteresis_(hysteresis),
        margin_db_(margin_db),
        hysteresis_scale_(hysteresis_scale),
        min_speed_mps_(min_speed_mps) {}
  const char* name() const override { return "predictive"; }

  PolicyDecision decide(const PolicyInput& in) override {
    const net::NodeId predicted = predict_next_ap(in);
    in.windows.prune(in.now);
    const net::NodeId best = in.env.fault_aware() ? in.env.select_live()
                                                  : in.windows.select(in.now);

    // Hysteresis: when the window argmax agrees with where the trajectory
    // says the client is headed, the switch is corroborated — commit after
    // a fraction of the usual settle time.  Disagreement (or no hint) gets
    // the full window, so fading spikes are still ridden out.
    const bool corroborated = best != 0 && best == predicted;
    const Time hyst =
        corroborated
            ? Time::ns(static_cast<std::int64_t>(
                  static_cast<double>(hysteresis_.to_ns()) * hysteresis_scale_))
            : hysteresis_;
    PolicyDecision d;
    if (in.now - in.last_switch < hyst) {
      d = PolicyDecision::defer(DecisionReason::kHysteresis,
                                hyst - (in.now - in.last_switch));
    } else if (best == 0) {
      d = PolicyDecision::keep(DecisionReason::kNoCandidate, 0);
    } else if (best == in.incumbent) {
      d = PolicyDecision::keep(DecisionReason::kIncumbentBest, best);
    } else {
      const auto best_median = in.windows.median(best, in.now);
      const auto active_median = in.windows.median(in.incumbent, in.now);
      if (active_median && *best_median < *active_median + margin_db_) {
        d = PolicyDecision::keep(DecisionReason::kBelowMargin, best);
      } else {
        d = PolicyDecision::switch_to(best);
      }
    }
    // Pre-arm the predicted AP regardless of the verdict: its cyclic queue
    // fills with fan-out copies before its CSI puts it in the range set, so
    // the eventual start(c, k) finds the backlog already in place.
    d.prearm = predicted;
    return d;
  }

 private:
  /// Nearest AP site strictly ahead along the velocity vector (along-track
  /// projection), or 0 when the client is parked / unhinted / past the end.
  net::NodeId predict_next_ap(const PolicyInput& in) const {
    const MobilityHint hint = in.env.mobility();
    if (!hint.valid) return 0;
    const double speed = hint.speed_mps();
    if (speed < min_speed_mps_) return 0;
    net::NodeId next = 0;
    double next_dist = 1e300;
    for (const ApSite& site : in.env.ap_sites()) {
      const double along = ((site.x - hint.x) * hint.vx +
                            (site.y - hint.y) * hint.vy) /
                           speed;
      if (along <= 0.5 || along >= next_dist) continue;  // behind / farther
      if (site.ap == in.incumbent) continue;
      next_dist = along;
      next = site.ap;
    }
    return next;
  }

  Time hysteresis_;
  double margin_db_;
  double hysteresis_scale_;
  double min_speed_mps_;
};

// ---------------------------------------------------------------------------
// make_before_break / bicast — paper selection rule, overlap switching
// ---------------------------------------------------------------------------

class MakeBeforeBreakPolicy final : public HandoffPolicy {
 public:
  MakeBeforeBreakPolicy(Time hysteresis, double margin_db)
      : hysteresis_(hysteresis), margin_db_(margin_db) {}
  const char* name() const override { return "make_before_break"; }
  PolicyDecision decide(const PolicyInput& in) override {
    PolicyDecision d = median_decide(in, hysteresis_, margin_db_);
    if (d.outcome == DecisionOutcome::kSwitch) d.style = SwitchStyle::kStartFirst;
    return d;
  }

 private:
  Time hysteresis_;
  double margin_db_;
};

class BicastPolicy final : public HandoffPolicy {
 public:
  BicastPolicy(Time hysteresis, double margin_db, Time hold)
      : hysteresis_(hysteresis), margin_db_(margin_db), hold_(hold) {}
  const char* name() const override { return "bicast"; }
  PolicyDecision decide(const PolicyInput& in) override {
    PolicyDecision d = median_decide(in, hysteresis_, margin_db_);
    if (d.outcome == DecisionOutcome::kSwitch) {
      d.style = SwitchStyle::kBicast;
      d.bicast_hold = hold_;
    }
    return d;
  }

 private:
  Time hysteresis_;
  double margin_db_;
  Time hold_;
};

}  // namespace

std::unique_ptr<HandoffPolicy> make_handoff_policy(const PolicySpec& spec,
                                                   const PolicyTuning& tuning) {
  // Use the controller default verbatim unless overridden: a float ms->ns
  // round-trip of an unmodified default could perturb it by a nanosecond.
  const Time hysteresis =
      spec.has_param("hysteresis_ms")
          ? Time::ns(static_cast<std::int64_t>(
                spec.param("hysteresis_ms", 0.0) * 1e6))
          : tuning.switch_hysteresis;
  const double margin = spec.param("margin_db", tuning.switch_margin_db);
  if (spec.name == "predictive") {
    return std::make_unique<PredictivePolicy>(
        hysteresis, margin, spec.param("hysteresis_scale", 0.5),
        spec.param("min_speed_mps", 0.5));
  }
  if (spec.name == "make_before_break") {
    return std::make_unique<MakeBeforeBreakPolicy>(hysteresis, margin);
  }
  if (spec.name == "bicast") {
    return std::make_unique<BicastPolicy>(
        hysteresis, margin,
        Time::ns(static_cast<std::int64_t>(spec.param("hold_ms", 30.0) * 1e6)));
  }
  if (spec.name != "median_esnr") {
    WGTT_LOG(kWarn, "policy",
             "unknown handoff policy '" << spec.name
                                        << "', using median_esnr");
  }
  return std::make_unique<MedianEsnrPolicy>(hysteresis, margin);
}

}  // namespace wgtt::core
