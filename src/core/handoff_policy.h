// Pluggable handoff policies (the AP-selection seam).
//
// The paper's contribution is one specific policy — median ESNR over a
// 10 ms window with time hysteresis (§3.1.1) — but the question it answers
// ("which AP should serve this client *now*?") admits a family of answers.
// HandoffPolicy extracts that question from the controller: per selection
// pass and per client, the controller hands the policy the client's CSI
// windows, the incumbent, a liveness view, and a mobility hint, and the
// policy returns keep / switch / defer with a machine-readable reason plus
// the switching *style* (stop-then-start, start-then-stop, or bicast).
//
// Policies shipped here:
//   median_esnr        the paper's algorithm, bit-identical to the
//                      pre-refactor controller (pinned by the golden-trace,
//                      packet, and chaos byte-identity suites);
//   predictive         median ESNR plus MobilityModel velocity: pre-arms
//                      the next AP along the trajectory (extra fan-out
//                      copy) and relaxes hysteresis when the ESNR argmax
//                      agrees with the geometric prediction;
//   make_before_break  mass-transit style (PAPERS.md: Ramani & Savage
//                      SyncScan lineage): start the challenger first, then
//                      quench the incumbent once the ack confirms — the
//                      client absorbs the duplicate overlap;
//   bicast             start-then-stop plus a hold window during which the
//                      incumbent keeps transmitting alongside the new AP —
//                      sustained duplication absorbed by a client-side
//                      core::Deduplicator.
//
// The controller keeps everything a policy must not own: the switch FSM,
// failover off dead incumbents, the stop/start/ack protocol, and the
// decision audit log.  Policies are per-client instances (they may carry
// state), created by make_handoff_policy from a PolicySpec parsed out of
// "name[:key=val,...]" strings (--policy on every sweep bench).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ap_selector.h"
#include "core/decision_log.h"
#include "net/packet.h"
#include "util/time.h"

namespace wgtt::core {

/// Best-effort client kinematics sampled from the scenario's MobilityModel
/// (plain doubles: core cannot depend on channel/).  `valid` is false when
/// the scenario registered no provider for the client.
struct MobilityHint {
  bool valid = false;
  double x = 0.0, y = 0.0, z = 0.0;     // position (m)
  double vx = 0.0, vy = 0.0, vz = 0.0;  // velocity (m/s)
  double speed_mps() const;
};

/// Roadside AP site (for trajectory prediction).  Filled by the scenario
/// layer from the testbed geometry; empty in bare-controller unit tests.
struct ApSite {
  net::NodeId ap = 0;
  double x = 0.0, y = 0.0, z = 0.0;
};

/// How the controller executes a switch this policy requested.
enum class SwitchStyle {
  /// §3.1.2: stop(c) the incumbent, which relays start(c, k) — the paper's
  /// protocol, zero duplication, one control round-trip of silence.
  kStopStart,
  /// Make-before-break: start the challenger directly (resume-from-head),
  /// quench the incumbent only after the ack.  Overlap duplicates are
  /// absorbed by the client-side dedup layer.
  kStartFirst,
  /// kStartFirst plus a bicast hold: the incumbent keeps transmitting for
  /// `PolicyDecision::bicast_hold` after the ack before being quenched.
  kBicast,
};

const char* to_string(SwitchStyle s);

/// One policy verdict for one client at one selection pass.
struct PolicyDecision {
  DecisionOutcome outcome = DecisionOutcome::kKeep;
  DecisionReason reason = DecisionReason::kNoCandidate;
  /// The argmax candidate (what the decision log records as "chosen"); the
  /// switch target when outcome is kSwitch.  0 when no candidate exists.
  net::NodeId target = 0;
  Time hysteresis_remaining;  // > 0 only for kHysteresis deferrals
  SwitchStyle style = SwitchStyle::kStopStart;
  /// Extra AP to include in the downlink fan-out (predictive pre-arm);
  /// 0 = none.  Persisted by the controller until the next pass.
  net::NodeId prearm = 0;
  /// Incumbent overlap window after the ack (style kBicast only).
  Time bicast_hold;

  static PolicyDecision keep(DecisionReason r, net::NodeId chosen) {
    PolicyDecision d;
    d.outcome = DecisionOutcome::kKeep;
    d.reason = r;
    d.target = chosen;
    return d;
  }
  static PolicyDecision defer(DecisionReason r, Time remaining) {
    PolicyDecision d;
    d.outcome = DecisionOutcome::kDefer;
    d.reason = r;
    d.hysteresis_remaining = remaining;
    return d;
  }
  static PolicyDecision switch_to(net::NodeId target,
                                  SwitchStyle s = SwitchStyle::kStopStart) {
    PolicyDecision d;
    d.outcome = DecisionOutcome::kSwitch;
    d.reason = DecisionReason::kChallengerAhead;
    d.target = target;
    d.style = s;
    return d;
  }
};

/// The controller-side view a policy consults while deciding.  Scoped to
/// one (client, pass): the controller rebinds it before every decide().
class PolicyEnv {
 public:
  virtual ~PolicyEnv() = default;
  /// True when a FaultInjector is installed (liveness filtering armed).
  virtual bool fault_aware() const = 0;
  /// Liveness-filtered window argmax for the current client: excludes
  /// suspect/quarantined APs and frozen-CSI candidates, counting the
  /// exclusions in the controller's stats.  Only meaningful when
  /// fault_aware(); 0 when no live candidate is eligible.
  virtual net::NodeId select_live() = 0;
  virtual bool ap_live(net::NodeId ap) const = 0;
  /// Kinematics hint for the current client (invalid when the scenario
  /// registered no mobility provider).
  virtual MobilityHint mobility() const = 0;
  /// Roadside AP sites (may be empty in bare-controller tests).
  virtual const std::vector<ApSite>& ap_sites() const = 0;
};

/// Per-pass inputs.  `windows` is the client's CSI window selector; decide()
/// is expected to prune() it exactly once before reading medians (matching
/// the pre-refactor controller's pass structure).
struct PolicyInput {
  net::NodeId client = 0;
  net::NodeId incumbent = 0;
  Time now;
  Time last_switch;
  MedianEsnrSelector& windows;
  PolicyEnv& env;
};

class HandoffPolicy {
 public:
  virtual ~HandoffPolicy() = default;
  /// Stable identifier recorded in the decision log and bench reports.
  virtual const char* name() const = 0;
  virtual PolicyDecision decide(const PolicyInput& in) = 0;
};

// ---------------------------------------------------------------------------
// Spec parsing + factory
// ---------------------------------------------------------------------------

/// Parsed "name[:key=val,...]" policy selector.  Defaults to the paper's
/// algorithm, so a default-constructed spec reproduces the pre-refactor
/// controller byte for byte.
struct PolicySpec {
  std::string name = "median_esnr";
  std::vector<std::pair<std::string, double>> params;

  double param(const std::string& key, double fallback) const;
  bool has_param(const std::string& key) const;
  /// Canonical "name" / "name:k=v,..." rendering (reports, labels).
  std::string to_string() const;
};

/// Parse "name[:key=val,...]" into `spec`.  Returns false (with a message
/// in *err when non-null) on grammar errors or unknown policy names.
bool parse_policy_spec(const std::string& text, PolicySpec& spec,
                       std::string* err = nullptr);

/// Known policy names, for --help text and validation.
const std::vector<std::string>& policy_names();

/// True when `spec` intentionally delivers duplicate downlink frames to the
/// client (start-first / bicast overlap) and the scenario must interpose a
/// client-side Deduplicator.
bool policy_duplicates_downlink(const PolicySpec& spec);

/// Controller-level defaults a policy inherits unless overridden by params.
struct PolicyTuning {
  Time switch_hysteresis = Time::ms(40);
  double switch_margin_db = 0.0;
};

/// Create a per-client policy instance.  Unknown names fall back to
/// median_esnr with a warning (benches validate specs up front and exit
/// instead).
std::unique_ptr<HandoffPolicy> make_handoff_policy(const PolicySpec& spec,
                                                   const PolicyTuning& tuning);

}  // namespace wgtt::core
