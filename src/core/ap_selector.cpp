#include "core/ap_selector.h"

#include <algorithm>

namespace wgtt::core {

MedianEsnrSelector::MedianEsnrSelector(Time window, std::size_t min_readings,
                                       bool use_latest)
    : window_(window), min_readings_(min_readings), use_latest_(use_latest) {}

void MedianEsnrSelector::add_reading(net::NodeId ap, Time when,
                                     double esnr_db) {
  windows_[ap].push_back(Reading{when, esnr_db});
}

void MedianEsnrSelector::prune(Time now) {
  const Time cutoff = now >= window_ ? now - window_ : Time::zero();
  for (auto& [ap, window] : windows_) {
    while (!window.empty() && window.front().when < cutoff) window.pop_front();
  }
}

std::optional<double> MedianEsnrSelector::median(net::NodeId ap,
                                                 Time now) const {
  auto it = windows_.find(ap);
  if (it == windows_.end()) return std::nullopt;
  const Time cutoff = now >= window_ ? now - window_ : Time::zero();
  std::vector<double> vals;
  vals.reserve(it->second.size());
  for (const Reading& r : it->second) {
    if (r.when >= cutoff) vals.push_back(r.esnr_db);
  }
  if (vals.size() < min_readings_) return std::nullopt;
  if (use_latest_) return vals.back();  // ablation: newest reading wins
  // e_{L/2} of the sorted sequence, exactly as §3.1.1 defines it.
  std::nth_element(vals.begin(), vals.begin() + vals.size() / 2, vals.end());
  return vals[vals.size() / 2];
}

net::NodeId MedianEsnrSelector::select(Time now) const {
  net::NodeId best = 0;
  double best_median = -1e300;
  for (const auto& [ap, window] : windows_) {
    (void)window;
    const auto m = median(ap, now);
    if (m && *m > best_median) {
      best_median = *m;
      best = ap;
    }
  }
  return best;
}

std::size_t MedianEsnrSelector::reading_count(net::NodeId ap, Time now) const {
  auto it = windows_.find(ap);
  if (it == windows_.end()) return 0;
  const Time cutoff = now >= window_ ? now - window_ : Time::zero();
  std::size_t n = 0;
  for (const Reading& r : it->second) {
    if (r.when >= cutoff) ++n;
  }
  return n;
}

std::vector<net::NodeId> MedianEsnrSelector::aps_in_range(Time now) const {
  const Time cutoff = now >= window_ ? now - window_ : Time::zero();
  std::vector<net::NodeId> out;
  for (const auto& [ap, window] : windows_) {
    for (auto it = window.rbegin(); it != window.rend(); ++it) {
      if (it->when >= cutoff) {
        out.push_back(ap);
        break;
      }
      break;  // readings are time-ordered; the newest is at the back
    }
  }
  return out;
}

}  // namespace wgtt::core
