// The WGTT access point (paper §3, §4.2).
//
// Wraps one WifiDevice (the radio, with its AP-mode and monitor-mode
// behaviour) and implements the AP half of every WGTT mechanism:
//
//  * per-client cyclic queue + kernel queue stack, fed from controller
//    downlink tunnels (§3.1.2);
//  * the stop(c) / start(c, k) switching protocol, with control packets
//    processed on a priority path that bypasses the data queues;
//  * CSI reports to the controller for every overheard client frame
//    (§3.1.1);
//  * uplink packet tunneling to the controller (§3.2.2);
//  * Block ACK forwarding from the monitor interface to the client's
//    active AP, with duplicate suppression at the receiving side (§3.2.1);
//  * association handling and sta_info replication to peer APs (§4.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/ap_queue_stack.h"
#include "core/association.h"
#include "core/control_link.h"
#include "core/control_messages.h"
#include "mac/wifi_device.h"
#include "net/backhaul.h"
#include "net/fault_injector.h"
#include "net/flight_recorder.h"
#include "phy/csi.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace wgtt::core {

struct WgttApConfig {
  net::NodeId id = 0;
  net::NodeId controller = net::kControllerId;
  std::vector<net::NodeId> peer_aps;
  /// User-level (Click) processing latency for a prioritized control packet.
  /// The paper measures the whole stop->ack protocol at 17-21 ms (Table 1)
  /// and attributes it to user/kernel crossings; this is the per-hop share.
  Time control_processing = Time::ms(5.5);
  /// Scheduling jitter on top (uniform in [0, jitter]): OS wakeup latency
  /// of the user-level Click process — the source of Table 1's 3-5 ms
  /// standard deviation.
  Time control_jitter = Time::ms(6);
  /// ioctl round trip to read the first-unsent index from the kernel.
  Time ioctl_delay = Time::ms(2.5);
  /// After a stop(c), the NIC hardware queue keeps draining over the air
  /// for about this long (the paper measures ~6 ms); whatever remains is
  /// then flushed so an abandoned AP cannot jam the new cell with retries.
  Time nic_drain_window = Time::ms(8);
  QueueStackConfig stack;
  /// How long a (client, start_seq) BA stays in the duplicate filter.
  Time ba_dedup_window = Time::ms(50);
  /// Ablation: disable forwarding of overheard Block ACKs (§3.2.1).
  bool enable_ba_forwarding = true;
  /// Feed the controller-grade ESNR of every heard client frame into this
  /// AP's rate controller (only meaningful with EsnrRateControl radios).
  bool feed_esnr_to_rate_control = false;
  /// Liveness heartbeat cadence (mirrors ControllerConfig::heartbeat_period;
  /// the network wiring keeps the two in sync).  Heartbeats are only sent
  /// when a net::FaultInjector is installed.
  Time heartbeat_period = Time::ms(10);
};

struct WgttApStats {
  std::uint64_t downlink_packets_buffered = 0;
  std::uint64_t csi_reports_sent = 0;
  std::uint64_t uplink_packets_tunneled = 0;
  std::uint64_t block_acks_forwarded = 0;
  std::uint64_t forwarded_bas_applied = 0;
  std::uint64_t forwarded_bas_duplicate = 0;
  std::uint64_t stops_handled = 0;
  std::uint64_t quench_stops_handled = 0;  // start-first styles: no relay
  std::uint64_t starts_handled = 0;
  std::uint64_t kernel_packets_flushed = 0;
  // Fault tolerance (all zero without an installed FaultInjector):
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t fault_crashes = 0;        // crash onsets seen
  std::uint64_t crash_purged_packets = 0; // queued packets lost to crashes
  // Control-plane hardening (all zero without an installed FaultInjector):
  std::uint64_t ctrl_dups_suppressed = 0;   // adversarial duplicates dropped
  std::uint64_t stale_epoch_rejected = 0;   // frames from an older epoch
  std::uint64_t stale_stops_rejected = 0;   // fenced-off stop(c) messages
  std::uint64_t stale_starts_rejected = 0;  // fenced-off start(c, k) messages
  std::uint64_t stale_actives_rejected = 0; // fenced-off active-AP broadcasts
  std::uint64_t resync_reports_sent = 0;    // warm-restart state reports
};

class WgttAp {
 public:
  WgttAp(sim::Scheduler& sched, net::Backhaul& backhaul,
         mac::WifiDevice& device, WgttApConfig cfg);

  net::NodeId id() const { return cfg_.id; }
  mac::WifiDevice& device() { return device_; }
  const AssociationTable& associations() const { return assoc_; }
  const WgttApStats& stats() const { return stats_; }

  /// True if this AP currently transmits to `client`.
  bool active_for(net::NodeId client) const;
  /// True while an injected ap_crash fault holds this AP down.
  bool down() const { return down_; }
  /// Queue-stack introspection (microbenchmarks / tests).
  const ApQueueStack* stack_for(net::NodeId client) const;
  /// True if this AP's queue stack is actively transmitting to `client`
  /// under the shared BSSID (shadow-stream overlap windows excluded).  The
  /// scenario layer's dual-active probe counts these per client.
  bool transmitting(net::NodeId client) const;

 private:
  void on_backhaul_frame(const net::TunneledPacket& frame);
  void handle_downlink_data(net::PacketPtr pkt);
  void handle_stop(const StopMsg& msg);
  void handle_start(const StartMsg& msg);
  void handle_active_ap(const ActiveApMsg& msg);
  void handle_assoc_sync(const AssocSyncMsg& msg);
  void handle_ba_forward(const BaForwardMsg& msg);
  /// Warm-restart support: report this AP's replicated client state to the
  /// controller.  `epoch` echoes a ResyncRequestMsg; 0 marks the unsolicited
  /// rejoin report sent when this AP recovers from its own crash.
  void send_resync_report(std::uint32_t epoch);
  /// (epoch, switch_id) fence shared by stop and start handling: false for
  /// strictly older pairs (stale — reject and count), true otherwise (equal
  /// pairs re-process idempotently, e.g. a retransmitted stop).
  bool fence_accept(net::NodeId client, std::uint32_t epoch,
                    std::uint32_t switch_id);

  void on_frame_heard(const mac::RxMeta& meta);
  void on_fault(bool down);
  void heartbeat_tick();
  void on_uplink_deliver(net::PacketPtr pkt, const mac::RxMeta& meta);
  void on_overheard_block_ack(const mac::BlockAckInfo& ba,
                              const mac::RxMeta& meta);
  void on_management(net::PacketPtr pkt, const mac::RxMeta& meta);

  ApQueueStack& stack(net::NodeId client);
  void send_to(net::NodeId dst, net::Packet fields);

  /// Control-packet processing delay including jitter.
  Time control_delay();

  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  mac::WifiDevice& device_;
  WgttApConfig cfg_;
  Rng rng_;
  AssociationTable assoc_;
  std::map<net::NodeId, std::unique_ptr<ApQueueStack>> stacks_;
  /// Controller-maintained map: which AP currently serves each client.
  std::map<net::NodeId, net::NodeId> active_ap_;
  /// Duplicate filter for forwarded BAs: (client -> last BA + when).
  struct SeenBa {
    std::uint16_t start_seq = 0;
    std::uint64_t bitmap = 0;
    Time when;
  };
  std::map<net::NodeId, SeenBa> seen_ba_;
  std::uint16_t next_aid_ = 1;
  WgttApStats stats_;
  net::FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
  // Fault wiring (null/false/empty unless a FaultInjector is installed).
  net::FaultInjector* injector_ = nullptr;
  bool down_ = false;
  /// Last genuine CSI per client, replayed while a csi_freeze fault holds.
  std::map<net::NodeId, phy::Csi> last_csi_;
  // Hardened control plane (inert without an installed FaultInjector).
  ControlSequencer ctrl_seq_;
  ControlDedup ctrl_dedup_;
  /// Highest controller epoch seen on any accepted control frame.
  std::uint32_t epoch_seen_ = 0;
  /// Per-client (epoch, switch_id) high-water across stop/start messages.
  std::map<net::NodeId, std::pair<std::uint32_t, std::uint32_t>> switch_fence_;
  /// Per-client (epoch, version) high-water across active-AP broadcasts.
  std::map<net::NodeId, std::pair<std::uint32_t, std::uint32_t>> active_fence_;
  /// Shared control-plane counters (see WgttController: get-or-create names
  /// total each phenomenon across controller + APs).
  metrics::Counter* m_dup_suppressed_ = nullptr;
  metrics::Counter* m_stale_rejected_ = nullptr;
};

}  // namespace wgtt::core
