// Per-client cyclic packet queue (paper §3.1.2, Fig. 7).
//
// Every WGTT AP buffers every downlink packet for every nearby client in a
// ring indexed by the controller-assigned m-bit packet index (m = 12, so
// 4096 slots).  The ring is what makes millisecond AP switching possible:
// when the controller moves a client from AP1 to AP2, AP2 already holds the
// backlogged packets and only needs the index k of the first unsent one to
// resume instantly.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>

#include "net/packet.h"

namespace wgtt::core {

class CyclicQueue {
 public:
  /// Number of slots — the full 12-bit index space.
  static constexpr std::uint32_t kSlots = net::kIndexSpace;

  /// Place a packet at slot `index % 4096`.  Overwriting a still-pending
  /// slot (the producer lapped the consumer) counts as an overrun and drops
  /// the old packet.
  void insert(std::uint32_t index, net::PacketPtr pkt);

  /// Pop the packet at the head index and advance.  Empty slots between the
  /// head and the most recent insertion are skipped (counted as gaps).
  /// Returns (index, packet), or nullopt if nothing is pending.
  std::optional<std::pair<std::uint32_t, net::PacketPtr>> pop();

  /// Reposition the head to `index` (the start(c, k) handover step).
  /// Slots logically before the new head are discarded — another AP
  /// already delivered them.
  void set_head(std::uint32_t index);

  std::uint32_t head() const { return head_; }
  /// Number of occupied slots still ahead of (or at) the head.
  std::size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  std::uint64_t overruns() const { return overruns_; }
  std::uint64_t discarded() const { return discarded_; }

  void clear();

 private:
  static std::uint32_t wrap(std::uint32_t i) { return i & (kSlots - 1); }
  /// Forward distance from a to b in index space.
  static std::uint32_t fwd(std::uint32_t a, std::uint32_t b) {
    return wrap(b - a);
  }

  struct Slot {
    net::PacketPtr pkt;
    bool occupied = false;
  };
  std::array<Slot, kSlots> slots_{};
  std::uint32_t head_ = 0;
  std::uint32_t tail_ = 0;  // one past the most recently inserted index
  std::size_t pending_ = 0;
  std::uint64_t overruns_ = 0;
  std::uint64_t discarded_ = 0;
};

}  // namespace wgtt::core
