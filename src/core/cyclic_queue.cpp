#include "core/cyclic_queue.h"

namespace wgtt::core {

void CyclicQueue::insert(std::uint32_t index, net::PacketPtr pkt) {
  const std::uint32_t i = wrap(index);
  Slot& slot = slots_[i];
  if (slot.occupied) {
    // The 12-bit index space wrapped before this slot drained (we are not
    // the active AP, or the consumer lagged a full ring) — overwrite, as
    // the hardware ring does.
    ++overruns_;
  } else {
    slot.occupied = true;
    ++pending_;
  }
  slot.pkt = std::move(pkt);
  if (fwd(head_, i) >= fwd(head_, tail_) || tail_ == head_) {
    tail_ = wrap(i + 1);
  }
}

std::optional<std::pair<std::uint32_t, net::PacketPtr>> CyclicQueue::pop() {
  if (pending_ == 0) return std::nullopt;
  while (!slots_[head_].occupied) head_ = wrap(head_ + 1);
  Slot& slot = slots_[head_];
  const std::uint32_t index = head_;
  net::PacketPtr pkt = std::move(slot.pkt);
  slot.occupied = false;
  --pending_;
  head_ = wrap(head_ + 1);
  return std::make_pair(index, std::move(pkt));
}

void CyclicQueue::set_head(std::uint32_t index) {
  const std::uint32_t target = wrap(index);
  // Discard everything from the current head up to (not including) the new
  // head: those packets were already delivered by the previously-active AP.
  // A "backwards" target (more than half the ring away) means our head was
  // stale, and the walk degenerates into a cheap reposition.
  std::uint32_t steps = fwd(head_, target);
  if (steps >= kSlots / 2) {
    head_ = target;
    return;
  }
  while (head_ != target) {
    Slot& slot = slots_[head_];
    if (slot.occupied) {
      slot.occupied = false;
      slot.pkt.reset();
      --pending_;
      ++discarded_;
    }
    head_ = wrap(head_ + 1);
  }
}

void CyclicQueue::clear() {
  for (Slot& s : slots_) {
    s.occupied = false;
    s.pkt.reset();
  }
  pending_ = 0;
  head_ = tail_ = 0;
  // overruns_/discarded_ are lifetime counters and survive clear().
}

}  // namespace wgtt::core
