// The WGTT AP's per-client transmit buffering stack (paper Fig. 7).
//
// Four stages, mirroring the real packet path:
//
//   cyclic queue (Click, user level, 4096 slots)
//     -> kernel queue (mac80211 + driver transmit ring)
//       -> NIC internal queue (the WifiDevice per-peer hardware queue)
//         -> air
//
// When the AP is `active` for the client, the stack keeps the lower stages
// fed (pull model: the WifiDevice's refill callback drains upward demand).
// The index of the next packet to cross the kernel->NIC boundary is tracked
// exactly as the paper's modified ieee80211_ops_tx() does: it is the `k`
// returned by the stop-time ioctl and shipped in start(c, k).
//
// On stop(c): the stack pauses (no more NIC refills), flushes the kernel
// queue (those packets will be sent by the next AP, which already has them
// in its own cyclic queue), and leaves the NIC queue to drain over the air
// (~6 ms) — the paper's deliberate choice (§3.1.2).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include <optional>

#include "core/cyclic_queue.h"
#include "mac/wifi_device.h"
#include "net/flight_recorder.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/causal.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace wgtt::core {

struct QueueStackConfig {
  std::size_t kernel_queue_limit = 256;  // mac80211 + driver ring combined
  /// Packets that sat in the cyclic ring longer than this are dropped at
  /// dequeue time: with a 12-bit index space the ring wraps every few
  /// seconds at line rate, so anything this old is from a previous lap and
  /// long since delivered (or abandoned) by another AP.
  Time max_packet_age = Time::ms(500);
};

class ApQueueStack {
 public:
  /// `device` outlives the stack; `client` is the peer the NIC queue feeds.
  ApQueueStack(sim::Scheduler& sched, mac::WifiDevice& device,
               net::NodeId client, QueueStackConfig cfg = {});

  /// Downlink packet from the controller (already carries its 12-bit index).
  void on_downlink(std::uint32_t index, net::PacketPtr pkt);

  /// Become the transmitting AP starting at cyclic index `k`.
  void activate(std::uint32_t start_index);

  /// stop(c): pause refills and flush the kernel stage.  Returns the index
  /// of the first unsent packet (the ioctl result, to ship in start(c, k)).
  /// With `requeue_kernel` (the start-first quench path) the kernel stage
  /// is rewound into the cyclic ring instead of flushed, so a later
  /// resume-from-head restarts at the true first-unsent index.
  std::uint32_t deactivate(bool requeue_kernel = false);

  /// Fault path (AP crash / controller-link partition): drop *everything*
  /// still buffered — kernel and cyclic stages — recording each packet with
  /// `cause`, and deactivate.  Unlike deactivate(), no other AP is assumed
  /// to hold copies; the drops are real.  Returns the number purged.
  std::size_t purge(net::DropCause cause);

  /// Keep lower stages fed; invoked by the device refill callback and after
  /// every insertion while active.
  void pump();

  bool active() const { return active_; }
  std::uint32_t next_nic_index() const;
  std::size_t cyclic_pending() const { return cyclic_.pending(); }
  std::size_t kernel_pending() const { return kernel_.size(); }
  std::size_t nic_pending() const { return device_.queue_depth(client_); }
  /// Total backlog across all stages (the paper's 1,600-2,000 figure).
  std::size_t total_backlog() const {
    return cyclic_pending() + kernel_pending() + nic_pending();
  }

  const CyclicQueue& cyclic() const { return cyclic_; }
  std::uint64_t kernel_flushed() const { return kernel_flushed_; }
  std::uint64_t stale_dropped() const { return stale_dropped_; }
  std::uint64_t purged() const { return purged_; }

 private:
  /// Pull one packet off the cyclic ring, skipping previous-lap leftovers.
  std::optional<std::pair<std::uint32_t, net::PacketPtr>> pop_fresh();
  /// Retire ring-internal evictions (insert overruns, set_head discards)
  /// with the health ledger; called after every cyclic_ mutation.
  void note_ring_evictions();

  sim::Scheduler& sched_;
  mac::WifiDevice& device_;
  net::NodeId client_;
  QueueStackConfig cfg_;
  CyclicQueue cyclic_;
  std::deque<std::pair<std::uint32_t, net::PacketPtr>> kernel_;
  bool active_ = false;
  std::uint64_t kernel_flushed_ = 0;
  std::uint64_t stale_dropped_ = 0;
  std::uint64_t purged_ = 0;
  std::uint64_t ring_evictions_seen_ = 0;  // overruns+discards already retired
  // Instrumentation (null when the sim has no metrics/trace context).
  metrics::Histogram* m_backlog_ = nullptr;
  metrics::Counter* m_activations_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  net::FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
};

}  // namespace wgtt::core
