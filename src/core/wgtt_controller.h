// The WGTT controller (paper §3, Fig. 5 control plane).
//
// A single wired host that:
//  * receives CSI reports from every AP for every overheard client frame
//    and maintains a sliding window W of ESNR readings per (client, AP);
//  * selects, per client, the AP with the maximal median ESNR in the window
//    (§3.1.1, Fig. 6) and drives the stop/start/ack switching protocol with
//    a 30 ms ack timeout (§3.1.2) and a configurable time hysteresis
//    between switches (§5.3.3);
//  * fans every downlink packet out to all APs within communication range
//    of the client (the APs that reported CSI within the window), tagging
//    it with the client's 12-bit cyclic index;
//  * de-duplicates uplink packets tunneled by multiple APs before handing
//    them to the wired network (§3.2.3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/ap_selector.h"
#include "core/control_link.h"
#include "core/control_messages.h"
#include "core/decision_log.h"
#include "core/dedup.h"
#include "core/handoff_policy.h"
#include "net/backhaul.h"
#include "net/fault_injector.h"
#include "net/flight_recorder.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/causal.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/stats.h"
#include "util/trace.h"

namespace wgtt::core {

struct ControllerConfig {
  Time selection_window = Time::ms(10);   // W (Fig. 21: 10 ms is optimal)
  Time switch_hysteresis = Time::ms(40);  // T (Fig. 22 sweeps 40-120 ms)
  Time ack_timeout = Time::ms(30);        // stop retransmission timer
  Time selection_period = Time::ms(2);    // how often selection runs
  /// Require the challenger's median ESNR to beat the incumbent's by this
  /// much (dB) — 0 reproduces the paper's plain argmax.
  double switch_margin_db = 0.0;
  /// Minimum CSI readings from an AP before it is eligible for selection.
  std::size_t min_readings = 2;
  /// Ablation: select on the newest reading instead of the window median.
  bool use_latest_reading = false;
  /// Ablation: send each downlink packet only to the active AP instead of
  /// fanning out to every in-range AP — removes the pre-placed backlog the
  /// start(c, k) handover depends on.
  bool fanout_active_only = false;

  // -- fault tolerance (armed only when a net::FaultInjector is installed;
  //    fault-free runs never evaluate any of these) ------------------------
  /// AP heartbeat cadence; must be <= the CSI report cadence so liveness
  /// reacts no slower than selection data goes stale.
  Time heartbeat_period = Time::ms(10);
  /// Consecutive missed heartbeats before an AP is marked suspect.
  std::size_t liveness_misses = 3;
  /// Quarantine backoff for a flapping AP: base * 2^(flaps-1), capped.
  Time quarantine_base = Time::ms(200);
  Time quarantine_cap = Time::sec(5);
  /// Bounded control-message retries (stop / failover start): after this
  /// many retransmissions the switch is abandoned instead of retrying
  /// forever into a dead AP.
  std::size_t max_control_retries = 4;
  /// Consecutive byte-identical ESNR readings from one (client, AP) pair
  /// before the AP's CSI is considered frozen and excluded from selection.
  std::size_t stale_csi_repeats = 8;

  // -- handoff policy ------------------------------------------------------
  /// Which HandoffPolicy answers the per-client keep/switch/defer question.
  /// The default reproduces the paper's median-ESNR algorithm byte for byte.
  PolicySpec policy{};
  /// Roadside AP sites for trajectory-predicting policies.  Filled by the
  /// scenario layer from the testbed geometry; empty in bare unit tests.
  std::vector<ApSite> ap_sites{};
};

struct SwitchRecord {
  Time initiated;
  Time completed;
  net::NodeId client = 0;
  net::NodeId from_ap = 0;
  net::NodeId to_ap = 0;
  unsigned stop_retransmissions = 0;
  /// Protocol identity of the completed switch (hardened runs; 0/0 in
  /// fault-free runs).  The protocol fuzzer asserts (epoch, switch_id) is
  /// non-decreasing per client across this log.
  std::uint32_t switch_id = 0;
  std::uint32_t epoch = 0;
};

struct ControllerStats {
  std::uint64_t csi_reports = 0;
  std::uint64_t downlink_packets = 0;
  std::uint64_t downlink_copies = 0;     // fan-out multiplicity total
  std::uint64_t uplink_packets = 0;      // after de-duplication
  std::uint64_t uplink_duplicates = 0;
  std::uint64_t switches_initiated = 0;
  std::uint64_t switches_completed = 0;
  std::uint64_t stop_retransmissions = 0;
  SampleSet switch_latency_ms;           // stop sent -> ack received
  // Fault tolerance (all zero without an installed FaultInjector):
  std::uint64_t heartbeats_received = 0;
  std::uint64_t liveness_suspects = 0;     // live -> suspect transitions
  std::uint64_t liveness_failovers = 0;    // switches initiated off dead APs
  std::uint64_t liveness_quarantines = 0;  // flapping APs put in backoff
  std::uint64_t abandoned_switches = 0;    // control retries exhausted
  std::uint64_t stale_csi_exclusions = 0;  // frozen-CSI selection vetoes
  // Handoff-policy extensions (all zero under the default median policy):
  std::uint64_t prearm_copies = 0;         // extra fan-out to pre-armed APs
  std::uint64_t direct_starts = 0;         // start-first switch initiations
  std::uint64_t quench_stops = 0;          // post-ack incumbent quenches
  std::uint64_t bicast_windows = 0;        // overlap windows opened
  std::uint64_t quenches_skipped = 0;      // stale quenches suppressed
  // Control-plane hardening (all zero without an installed FaultInjector):
  std::uint64_t dup_frames_suppressed = 0;  // adversarial duplicates dropped
  std::uint64_t stale_acks = 0;             // fenced-off SwitchAckMsgs
  std::uint64_t ctrl_crashes = 0;           // injected controller crashes
  std::uint64_t ctrl_restarts = 0;          // warm restarts completed
  std::uint64_t resync_rounds = 0;          // resync requests broadcast
  std::uint64_t resync_reports = 0;         // AP state reports consumed
  std::uint64_t stale_resyncs = 0;          // reports from an older epoch
  std::uint64_t resync_adoptions = 0;       // active claims adopted
  std::uint64_t resync_readoptions = 0;     // orphans re-homed post-restart
  std::uint64_t resync_conflicts = 0;       // dual-claim quenches issued
};

class WgttController {
 public:
  WgttController(sim::Scheduler& sched, net::Backhaul& backhaul,
                 std::vector<net::NodeId> ap_ids, ControllerConfig cfg = {});

  /// Wired-side egress: de-duplicated uplink packets (to the server stack).
  std::function<void(net::PacketPtr)> on_uplink;
  /// Fired on every completed switch (metrics hooks).
  std::function<void(const SwitchRecord&)> on_switch;

  /// Wired-side ingress: a downlink packet for `client` from the servers.
  void send_downlink(net::NodeId client, net::PacketPtr pkt);

  /// AP currently serving the client (0 if none yet).
  net::NodeId active_ap(net::NodeId client) const;

  /// Out-of-band CSI injection: the 802.11k-style scan-report path used by
  /// the multi-channel extension, where APs on other channels cannot hear
  /// the client directly.  Equivalent to receiving a CsiReportMsg.
  void inject_csi(net::NodeId ap, net::NodeId client, const phy::Csi& csi);
  /// Median-ESNR table for a client (diagnostics / AP-selection tests).
  std::optional<double> median_esnr(net::NodeId client, net::NodeId ap) const;

  /// Kinematics feed for trajectory-predicting policies: sampled on demand
  /// during the selection pass.  Plain doubles, so the scenario layer can
  /// adapt any channel::MobilityModel without a core -> channel dependency.
  using MobilityProvider = std::function<MobilityHint(Time)>;
  void set_mobility_provider(net::NodeId client, MobilityProvider provider) {
    mobility_[client] = std::move(provider);
  }

  const ControllerStats& stats() const { return stats_; }
  const std::vector<SwitchRecord>& switch_log() const { return switch_log_; }
  const ControllerConfig& config() const { return cfg_; }
  /// Current fencing epoch (1 until the first warm restart bumps it).
  std::uint32_t epoch() const { return epoch_; }
  /// True while an injected ctrl_crash fault holds the controller down.
  bool crashed() const { return ctrl_down_; }
  /// True while a stop/start/ack handshake is outstanding for `client`
  /// (the scenario layer's dual-active probe excludes these transitions).
  bool switch_in_flight(net::NodeId client) const {
    auto it = clients_.find(client);
    return it != clients_.end() && it->second.switch_in_flight;
  }

 private:
  /// Per-(client, AP) frozen-CSI detector state (stale-CSI defense).
  struct CsiRepeat {
    double last_esnr = 0.0;
    std::size_t repeats = 0;
  };

  struct ClientState {
    net::NodeId active_ap = 0;
    std::unique_ptr<MedianEsnrSelector> selector;  // per-client windows
    std::unique_ptr<HandoffPolicy> policy;         // per-client instance
    std::uint32_t next_index = 0;     // cyclic downlink index counter
    Time last_switch = Time::zero();  // hysteresis anchor
    // Switch FSM: at most one outstanding switch per client (§3.1.2 fn. 2).
    bool switch_in_flight = false;
    std::uint32_t switch_id = 0;
    net::NodeId switch_target = 0;
    Time switch_started;
    unsigned stop_retx = 0;
    sim::EventId retx_event;
    bool failover_in_flight = false;  // current switch is a liveness failover
    /// How the in-flight switch hands over (policy-chosen; §3.1.2 default).
    SwitchStyle switch_style = SwitchStyle::kStopStart;
    Time bicast_hold;                 // incumbent overlap (kBicast only)
    /// Extra fan-out target requested by the policy (0 = none).
    net::NodeId prearm_ap = 0;
    /// Causal id of the event that initiated the in-flight switch — the key
    /// the ctrl.switch_start/done trace flow events pair on (causal only).
    std::uint64_t causal_start_ev = 0;
    std::map<net::NodeId, CsiRepeat> csi_repeat;  // only fed when injector on
    /// Per-client ActiveApMsg broadcast version (hardened runs only).
    std::uint32_t active_version = 0;
    /// The client is known-associated (join or resync report) — a client
    /// with associated && active_ap == 0 is an orphan the liveness tick
    /// re-adopts after a warm restart.
    bool associated = false;
  };

  /// Liveness monitor state per AP (fault tolerance; only maintained when a
  /// FaultInjector is installed).
  struct ApHealth {
    enum class State { kLive, kSuspect, kQuarantine };
    State state = State::kLive;
    Time last_heartbeat = Time::zero();
    bool heard = false;            // at least one heartbeat ever received
    std::uint32_t flaps = 0;       // suspect transitions (backoff exponent)
    Time quarantined_until = Time::zero();
  };

  void on_backhaul_frame(const net::TunneledPacket& frame);
  void handle_csi_report(const CsiReportMsg& msg);
  void handle_switch_ack(const SwitchAckMsg& msg);
  void handle_client_joined(const ClientJoinedMsg& msg);
  void handle_uplink_data(net::PacketPtr pkt, net::NodeId from_ap);
  void handle_heartbeat(const HeartbeatMsg& msg);
  void handle_resync_report(const ResyncReportMsg& msg);

  // -- warm restart (ctrl_crash faults; injector-armed runs only) ----------
  void on_ctrl_fault(bool down);
  void broadcast_resync_request();
  /// Ack-timeout with exponential backoff on hardened runs (fault-free runs
  /// keep the paper's flat 30 ms cadence, part of the golden timing).
  Time retx_timeout(unsigned retx) const;

  // -- liveness / failover (no-ops unless a FaultInjector is installed) ----
  void liveness_tick();
  bool ap_live(net::NodeId ap) const;
  /// Selection with degraded candidates excluded: suspect/quarantined APs
  /// and APs whose CSI for this client looks frozen.
  net::NodeId select_live(const ClientState& st, net::NodeId client, Time now);
  bool csi_frozen(const ClientState& st, net::NodeId ap) const;
  void attempt_failover(net::NodeId client, ClientState& st, Time now,
                        DecisionReason reason = DecisionReason::kApSuspect);
  void send_failover_start(net::NodeId client, ClientState& st);
  Time quarantine_for(std::uint32_t flaps) const;
  void log_liveness(net::NodeId ap, const char* event, std::uint32_t flaps,
                    Time quarantine);

  /// PolicyEnv adapter handed to HandoffPolicy::decide (defined in the
  /// .cpp): binds the controller's liveness view and mobility providers to
  /// one (client, pass).
  struct PolicyEnvImpl;

  void run_selection();
  void log_decision(net::NodeId client, const ClientState& st, Time now,
                    DecisionOutcome outcome, DecisionReason reason,
                    net::NodeId chosen, Time hysteresis_remaining);
  void initiate_switch(net::NodeId client, ClientState& st, net::NodeId target,
                       SwitchStyle style = SwitchStyle::kStopStart,
                       Time bicast_hold = Time::zero());
  void send_stop(net::NodeId client, ClientState& st);
  /// Start-first styles: originate start(c, resume-from-head) at the target
  /// without stopping the incumbent (it is quenched after the ack).
  void send_direct_start(net::NodeId client, ClientState& st);
  /// Tell `ap` to stop transmitting to `client` with no handover relay (the
  /// successor is already active).
  void send_quench(net::NodeId ap, net::NodeId client, net::NodeId new_ap,
                   std::uint32_t switch_id);
  void broadcast_active(net::NodeId client, net::NodeId ap, bool bootstrap,
                        bool overlap = false);
  ClientState& client_state(net::NodeId client);
  void send_to(net::NodeId dst, net::Packet fields);

  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  std::vector<net::NodeId> ap_ids_;
  ControllerConfig cfg_;
  std::map<net::NodeId, ClientState> clients_;
  std::map<net::NodeId, MobilityProvider> mobility_;
  Deduplicator dedup_;
  std::uint32_t next_switch_id_ = 1;
  // Hardened control plane (inert without an installed FaultInjector: no
  // sequence numbers are stamped and no fences are evaluated).
  ControlSequencer ctrl_seq_;
  ControlDedup ctrl_dedup_;
  std::uint32_t epoch_ = 1;   // bumped by each warm restart
  bool ctrl_down_ = false;    // a ctrl_crash fault currently holds us down
  ControllerStats stats_;
  std::vector<SwitchRecord> switch_log_;
  // Liveness monitor (populated only when a FaultInjector is installed;
  // empty otherwise, so fault-free runs never touch it).
  std::map<net::NodeId, ApHealth> ap_health_;
  net::FaultInjector* injector_ = nullptr;
  // Instrumentation (null when the sim has no metrics/trace context).
  metrics::Counter* m_switches_ = nullptr;
  metrics::Counter* m_dedup_hits_ = nullptr;
  metrics::Histogram* m_switch_latency_ms_ = nullptr;
  // Liveness instruments (created only when a FaultInjector is installed,
  // keeping the fault-free metrics snapshot byte-identical).
  metrics::Counter* m_suspects_ = nullptr;
  metrics::Counter* m_failovers_ = nullptr;
  metrics::Counter* m_quarantines_ = nullptr;
  metrics::Gauge* m_live_aps_ = nullptr;
  // Protocol-hardening instruments (injector-armed runs only).  The dup /
  // stale counters are shared with the APs via the registry's get-or-create
  // naming, so one counter totals each phenomenon across the control plane.
  metrics::Counter* m_dup_suppressed_ = nullptr;
  metrics::Counter* m_stale_rejected_ = nullptr;
  metrics::Counter* m_stale_acks_ = nullptr;
  metrics::Counter* m_retries_ = nullptr;
  metrics::Counter* m_resyncs_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  DecisionLog* decision_log_ = nullptr;
  net::FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_selection_ = nullptr;
  prof::Section* p_csi_ = nullptr;
};

}  // namespace wgtt::core
