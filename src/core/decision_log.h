// Controller decision audit log (JSONL).
//
// The WgttController's AP-selection pass runs every selection_period and,
// per client, either keeps the incumbent AP, initiates a switch, or defers
// the decision.  The paper's evaluation argues about *why* switches happen
// (median windows riding out fading spikes, hysteresis suppressing flapping)
// — this log records every evaluation with enough context to replay that
// argument: the candidate APs' median ESNRs and window fill, the incumbent,
// the configured margin, and the outcome with a machine-readable reason.
//
// One JSON object per line; timestamps use the tracer's integer-formatted
// microsecond rendering and ESNR medians are fixed-point milli-dB integers,
// so a fixed-seed run produces byte-identical output on any platform and the
// records cross-link to trace spans by simulated timestamp.
//
// Thread-scoped exactly like LogSink / MetricsRegistry / Tracer: a
// DecisionLog is owned by one Testbed, installed as the constructing
// thread's context-current log, and the controller caches `current()` once
// at construction — a null pointer (logging off) costs one branch per
// selection pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace wgtt::core {

enum class DecisionOutcome { kKeep, kSwitch, kDefer };

enum class DecisionReason {
  kNotJoined,       // defer: client has no active AP yet
  kSwitchInFlight,  // defer: a stop/start/ack handshake is outstanding
  kHysteresis,      // defer: within switch_hysteresis of the last switch
  kNoCandidate,     // keep: no AP has min_readings in-window readings
  kIncumbentBest,   // keep: the incumbent has the maximal median
  kBelowMargin,     // keep: challenger ahead but under switch_margin_db
  kChallengerAhead, // switch: challenger beats incumbent (+margin)
  kApSuspect,       // switch: liveness failover off a dead/suspect AP
  kAllSuspect,      // defer: every candidate AP is suspect/quarantined
  kResync,          // switch/keep: warm-restart resync adoption or orphan
                    // re-start after a controller crash wiped client state
};

/// One past the last DecisionReason value.  Keep in sync when adding a
/// reason; the exhaustive-coverage unit test fails loudly if this lags.
constexpr std::size_t kDecisionReasonCount = 10;

const char* to_string(DecisionOutcome o);
const char* to_string(DecisionReason r);

struct DecisionCandidate {
  net::NodeId ap = 0;
  double median_db = 0.0;    // windowed median ESNR
  std::size_t readings = 0;  // window fill (eligible when >= min_readings)
  bool eligible = false;     // has min_readings in-window readings
};

struct DecisionRecord {
  Time t;
  net::NodeId client = 0;
  net::NodeId incumbent = 0;  // active AP at evaluation time (0 = none)
  net::NodeId chosen = 0;     // argmax-median AP (0 when none eligible)
  /// HandoffPolicy that produced this decision (stable name; "" in bare
  /// unit-test records).  Serialized as the record's "policy" field.
  const char* policy = "";
  DecisionOutcome outcome = DecisionOutcome::kKeep;
  DecisionReason reason = DecisionReason::kNoCandidate;
  double margin_db = 0.0;        // configured switch margin
  Time hysteresis_remaining;     // > 0 only for kHysteresis deferrals
  std::vector<DecisionCandidate> candidates;  // sorted by AP id
};

/// AP liveness lifecycle event (fault-tolerance extension).  Serialized as
/// its own JSONL line with "kind":"liveness", so existing decision-record
/// consumers that key on "client" skip them untouched.
struct LivenessRecord {
  Time t;
  net::NodeId ap = 0;
  /// "suspect" | "quarantined" | "reinstated"
  const char* event = "";
  std::uint32_t flaps = 0;    // suspect transitions seen for this AP so far
  Time quarantine;            // backoff window (quarantined events only)
};

/// JSONL schema version emitted as the stream's header line
/// ({"kind":"schema","stream":"wgtt.decisions","version":N}); wgtt-report
/// refuses decision logs whose version it does not understand (exit 2).
/// Version 2 adds the "resync" reason enum value and is only emitted by
/// fault-injected runs (the constructor's protocol_extensions flag), so
/// fault-free decision logs stay byte-identical to version 1.
constexpr int kDecisionLogSchemaVersion = 1;
constexpr int kDecisionLogSchemaVersionResync = 2;

class DecisionLog {
 public:
  /// `protocol_extensions` marks a run with the hardened control plane armed
  /// (a FaultInjector installed): the header advertises schema version 2.
  explicit DecisionLog(bool protocol_extensions = false);
  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  /// Serialize `rec` as one JSONL line and append it.
  void append(const DecisionRecord& rec);

  /// Serialize an AP liveness event as one JSONL line and append it.
  void append_liveness(const LivenessRecord& rec);

  std::size_t entries() const { return entries_; }
  std::size_t liveness_entries() const { return liveness_entries_; }
  std::uint64_t switches() const { return switches_; }
  /// The accumulated JSONL document (one '\n'-terminated object per line).
  const std::string& jsonl() const { return out_; }

  /// The log the calling thread's current simulation records into, or
  /// nullptr when decision auditing is off (the default).
  static DecisionLog* current();

 private:
  std::string out_;
  std::size_t entries_ = 0;
  std::size_t liveness_entries_ = 0;
  std::uint64_t switches_ = 0;  // records with outcome kSwitch
};

/// Install `log` as the calling thread's current decision log for this
/// object's lifetime (RAII; nests).  Passing nullptr keeps the current one.
class ScopedDecisionLog {
 public:
  explicit ScopedDecisionLog(DecisionLog* log);
  ~ScopedDecisionLog();
  ScopedDecisionLog(const ScopedDecisionLog&) = delete;
  ScopedDecisionLog& operator=(const ScopedDecisionLog&) = delete;

 private:
  DecisionLog* installed_ = nullptr;
  DecisionLog* previous_ = nullptr;
};

}  // namespace wgtt::core
