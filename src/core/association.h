// Client association state, shared across APs (paper §4.3, Fig. 12).
//
// All WGTT APs advertise one BSSID, so a client associates once; the AP that
// completes the handshake then replicates the client's sta_info (layer-2
// address, authorization state, capabilities) to every other AP over the
// Ethernet backhaul, exactly as the modified hostapd does.  This table is
// each AP's local copy of that replicated state.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace wgtt::core {

/// The subset of hostapd's sta_info / hostapd_sta_add_params that matters
/// for the data plane.
struct StaInfo {
  net::NodeId client = 0;
  bool authorized = false;
  Time associated_at;
  net::NodeId associating_ap = 0;  // AP that ran the handshake
  std::uint16_t aid = 0;           // association ID
};

class AssociationTable {
 public:
  /// Insert or refresh a client's state.  Returns true if this was a new
  /// association (first time we learn about the client).
  bool add(const StaInfo& info);

  bool known(net::NodeId client) const { return table_.count(client) != 0; }
  bool authorized(net::NodeId client) const;
  const StaInfo* find(net::NodeId client) const;
  void remove(net::NodeId client) { table_.erase(client); }

  std::vector<net::NodeId> clients() const;
  std::size_t size() const { return table_.size(); }

 private:
  std::map<net::NodeId, StaInfo> table_;
};

}  // namespace wgtt::core
