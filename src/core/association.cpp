#include "core/association.h"

namespace wgtt::core {

bool AssociationTable::add(const StaInfo& info) {
  auto [it, inserted] = table_.insert_or_assign(info.client, info);
  (void)it;
  return inserted;
}

bool AssociationTable::authorized(net::NodeId client) const {
  auto it = table_.find(client);
  return it != table_.end() && it->second.authorized;
}

const StaInfo* AssociationTable::find(net::NodeId client) const {
  auto it = table_.find(client);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<net::NodeId> AssociationTable::clients() const {
  std::vector<net::NodeId> out;
  out.reserve(table_.size());
  for (const auto& [id, info] : table_) out.push_back(id);
  return out;
}

}  // namespace wgtt::core
