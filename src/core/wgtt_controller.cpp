#include "core/wgtt_controller.h"

#include <algorithm>
#include <cassert>

#include "phy/esnr.h"
#include "util/logging.h"

namespace wgtt::core {

WgttController::WgttController(sim::Scheduler& sched, net::Backhaul& backhaul,
                               std::vector<net::NodeId> ap_ids,
                               ControllerConfig cfg)
    : sched_(sched),
      backhaul_(backhaul),
      ap_ids_(std::move(ap_ids)),
      cfg_(cfg) {
  if (auto* reg = metrics::MetricsRegistry::current()) {
    m_switches_ = &reg->counter("core.switches_completed");
    m_dedup_hits_ = &reg->counter("core.dedup_hits");
    m_switch_latency_ms_ = &reg->histogram(
        "core.switch_latency_ms", metrics::exponential_buckets(0.5, 2.0, 10));
  }
  tracer_ = trace::Tracer::current();
  decision_log_ = DecisionLog::current();
  recorder_ = net::FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_selection_ = &p->section("core.selection");
    p_csi_ = &p->section("core.csi_report");
  }
  backhaul_.attach(net::kControllerId, [this](const net::TunneledPacket& f) {
    on_backhaul_frame(f);
  });
  // Periodic AP-selection pass.
  sched_.schedule(cfg_.selection_period, [this]() { run_selection(); });

  // Liveness monitor: armed only when the sim injects faults, so fault-free
  // runs schedule no extra events and create no extra metrics.
  injector_ = net::FaultInjector::current();
  if (injector_ != nullptr) {
    for (net::NodeId ap : ap_ids_) {
      ApHealth h;
      h.last_heartbeat = sched_.now();
      ap_health_.emplace(ap, h);
    }
    if (auto* reg = metrics::MetricsRegistry::current()) {
      m_suspects_ = &reg->counter("controller.liveness.suspects");
      m_failovers_ = &reg->counter("controller.liveness.failovers");
      m_quarantines_ = &reg->counter("controller.liveness.quarantines");
      m_live_aps_ = &reg->gauge("controller.liveness.live_aps");
      m_live_aps_->set(static_cast<double>(ap_ids_.size()));
      m_dup_suppressed_ = &reg->counter("controller.protocol.dup_suppressed");
      m_stale_rejected_ = &reg->counter("controller.protocol.stale_rejected");
      m_stale_acks_ = &reg->counter("controller.protocol.stale_acks");
      m_retries_ = &reg->counter("controller.protocol.retries");
      m_resyncs_ = &reg->counter("controller.protocol.resyncs");
    }
    sched_.schedule(cfg_.heartbeat_period, [this]() { liveness_tick(); });
    // ctrl_crash faults target node 0 — this process.
    injector_->on_ap_fault(net::kControllerId,
                           [this](bool down) { on_ctrl_fault(down); });
  }
}

void WgttController::send_to(net::NodeId dst, net::Packet fields) {
  fields.src = net::kControllerId;
  fields.dst = dst;
  fields.created = sched_.now();
  // Hardened runs stamp state-bearing control frames with a per-link seq
  // (dup suppression) and the fencing epoch.  A retransmission rebuilds its
  // packet, so it always carries a fresh seq and is never mistaken for an
  // adversarial duplicate.
  if (injector_ != nullptr && sequenced_control(fields.type)) {
    fields.ctrl_seq = ctrl_seq_.next(dst);
    fields.ctrl_epoch = epoch_;
  }
  backhaul_.send(net::encapsulate(net::make_packet(std::move(fields)),
                                  net::kControllerId, dst));
}

net::NodeId WgttController::active_ap(net::NodeId client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.active_ap;
}

std::optional<double> WgttController::median_esnr(net::NodeId client,
                                                  net::NodeId ap) const {
  auto it = clients_.find(client);
  if (it == clients_.end() || !it->second.selector) return std::nullopt;
  return it->second.selector->median(ap, sched_.now());
}

WgttController::ClientState& WgttController::client_state(
    net::NodeId client) {
  ClientState& st = clients_[client];
  if (!st.selector) {
    st.selector = std::make_unique<MedianEsnrSelector>(
        cfg_.selection_window, cfg_.min_readings, cfg_.use_latest_reading);
    st.policy = make_handoff_policy(
        cfg_.policy, PolicyTuning{cfg_.switch_hysteresis,
                                  cfg_.switch_margin_db});
  }
  return st;
}

/// Binds the controller's fault-tolerance view and the scenario's mobility
/// feed to one (client, selection pass) for HandoffPolicy::decide.
struct WgttController::PolicyEnvImpl final : PolicyEnv {
  PolicyEnvImpl(WgttController& c, ClientState& s, net::NodeId cl, Time t)
      : self(c), st(s), client(cl), now(t) {}
  bool fault_aware() const override { return self.injector_ != nullptr; }
  net::NodeId select_live() override {
    return self.select_live(st, client, now);
  }
  bool ap_live(net::NodeId ap) const override { return self.ap_live(ap); }
  MobilityHint mobility() const override {
    auto it = self.mobility_.find(client);
    return it == self.mobility_.end() ? MobilityHint{} : it->second(now);
  }
  const std::vector<ApSite>& ap_sites() const override {
    return self.cfg_.ap_sites;
  }

  WgttController& self;
  ClientState& st;
  net::NodeId client;
  Time now;
};

// ---------------------------------------------------------------------------
// Backhaul ingress
// ---------------------------------------------------------------------------

void WgttController::on_backhaul_frame(const net::TunneledPacket& frame) {
  net::PacketPtr inner = net::decapsulate(frame);
  if (ctrl_down_) {
    // A crashed controller consumes nothing: uplink data dies (with a ledger
    // mirror), control vanishes — AP-side senders have no ack machinery for
    // these types, so the post-restart resync round repairs the state.
    if (net::flight_recorded(inner->type)) {
      if (health_) health_->packet_dropped();
      if (recorder_) {
        recorder_->drop(inner->uid, sched_.now(), net::Hop::kCtrlUplink,
                        net::kControllerId, net::DropCause::kFaultInjected,
                        {{"src", frame.outer_src}});
      }
    }
    return;
  }
  // Duplicate suppression: an adversarially duplicated control frame
  // carries the seq of its original and is dropped here, before dispatch.
  if (injector_ != nullptr && sequenced_control(inner->type) &&
      !ctrl_dedup_.accept(frame.outer_src, inner->ctrl_seq)) {
    ++stats_.dup_frames_suppressed;
    if (m_dup_suppressed_) m_dup_suppressed_->add();
    return;
  }
  switch (inner->type) {
    case net::PacketType::kCsiReport:
      if (const auto* msg = net::payload_as<CsiReportMsg>(*inner)) {
        handle_csi_report(*msg);
      }
      return;
    case net::PacketType::kSwitchAck:
      if (const auto* msg = net::payload_as<SwitchAckMsg>(*inner)) {
        handle_switch_ack(*msg);
      }
      return;
    case net::PacketType::kAssocSync:
      if (const auto* msg = net::payload_as<ClientJoinedMsg>(*inner)) {
        handle_client_joined(*msg);
      }
      return;
    case net::PacketType::kHeartbeat:
      if (const auto* msg = net::payload_as<HeartbeatMsg>(*inner)) {
        handle_heartbeat(*msg);
      }
      return;
    case net::PacketType::kResync:
      if (const auto* msg = net::payload_as<ResyncReportMsg>(*inner)) {
        handle_resync_report(*msg);
      }
      return;
    case net::PacketType::kData:
    case net::PacketType::kTcpAck:
      handle_uplink_data(std::move(inner), frame.outer_src);
      return;
    default:
      return;
  }
}

void WgttController::inject_csi(net::NodeId ap, net::NodeId client,
                                const phy::Csi& csi) {
  CsiReportMsg msg;
  msg.ap = ap;
  msg.client = client;
  msg.csi = csi;
  handle_csi_report(msg);
}

void WgttController::handle_csi_report(const CsiReportMsg& msg) {
  prof::ScopedSection timer(prof_, p_csi_);
  ++stats_.csi_reports;
  ClientState& st = client_state(msg.client);
  const double esnr = phy::selection_esnr_db(msg.csi);
  st.selector->add_reading(msg.ap, sched_.now(), esnr);
  st.selector->prune(sched_.now());
  if (injector_ != nullptr) {
    // Frozen-CSI detector: a faulty AP replaying its last report produces a
    // run of bit-identical ESNRs; real fading never holds a double exactly
    // constant across reports.
    CsiRepeat& r = st.csi_repeat[msg.ap];
    if (r.repeats > 0 && esnr == r.last_esnr) {
      ++r.repeats;
    } else {
      r.last_esnr = esnr;
      r.repeats = 1;
    }
  }
}

void WgttController::handle_client_joined(const ClientJoinedMsg& msg) {
  ClientState& st = client_state(msg.info.client);
  st.associated = true;
  if (st.active_ap != 0) return;  // already bootstrapped
  st.active_ap = msg.info.associating_ap;
  st.last_switch = sched_.now();
  broadcast_active(msg.info.client, st.active_ap, /*bootstrap=*/true);
}

void WgttController::handle_uplink_data(net::PacketPtr pkt,
                                        net::NodeId from_ap) {
  if (dedup_.is_duplicate(*pkt, sched_.now())) {
    ++stats_.uplink_duplicates;
    if (m_dedup_hits_) m_dedup_hits_->add();
    if (health_) health_->packet_dropped();
    if (recorder_) {
      recorder_->drop(pkt->uid, sched_.now(), net::Hop::kDedupSuppress,
                      net::kControllerId, net::DropCause::kDuplicate,
                      {{"ap", from_ap},
                       {"ip_id", pkt->ip_id}});
    }
    return;
  }
  ++stats_.uplink_packets;
  if (recorder_) {
    recorder_->record(pkt->uid, sched_.now(), net::Hop::kCtrlUplink,
                      net::kControllerId, {{"ap", from_ap}});
  }
  if (causal_ && causal_->sampled(pkt->uid)) {
    causal_->annotate("ctrl.uplink",
                      {{"uid", static_cast<std::int64_t>(pkt->uid)},
                       {"ap", from_ap}});
  }
  if (on_uplink) {
    on_uplink(std::move(pkt));
  } else if (health_) {
    // No wired-side consumer: the de-duplicated instance ends here.
    health_->packet_retired();
  }
}

// ---------------------------------------------------------------------------
// Downlink fan-out (§3.1.2: every AP in communication range buffers a copy)
// ---------------------------------------------------------------------------

void WgttController::send_downlink(net::NodeId client, net::PacketPtr pkt) {
  const bool hfr = health_ != nullptr && net::flight_recorded(pkt->type);
  if (ctrl_down_) {
    // Crashed: the wired side's packets die at our ingress.
    if (hfr) health_->packet_dropped();
    if (recorder_ && net::flight_recorded(pkt->type)) {
      recorder_->drop(pkt->uid, sched_.now(), net::Hop::kCtrlFanout,
                      net::kControllerId, net::DropCause::kFaultInjected,
                      {{"client", client}});
    }
    return;
  }
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second.active_ap == 0) {
    // Not joined: pre-association traffic ends at the controller (benign;
    // nothing downstream ever holds it).
    if (hfr) health_->packet_retired();
    return;
  }
  ClientState& st = it->second;
  ++stats_.downlink_packets;
  // Fan-out replaces the inbound transport instance with one ledger copy
  // per AP (packet_copies below): retire the original unit here.
  if (hfr) health_->packet_retired();

  // Assign the 12-bit cyclic index.  The Packet is shared across APs, so
  // stamp a copy once here — keeping the original uid, so the flight
  // recorder sees one provenance chain from transport send to delivery.
  net::Packet stamped = *pkt;
  stamped.index = st.next_index & (net::kIndexSpace - 1);
  st.next_index = (st.next_index + 1) & (net::kIndexSpace - 1);
  net::PacketPtr shared =
      std::make_shared<const net::Packet>(std::move(stamped));

  // Range set: APs with a CSI reading inside the window; always include the
  // active AP.
  st.selector->prune(sched_.now());
  const bool rec = recorder_ && net::flight_recorded(shared->type);
  // One annotation per packet (the fan-out copies all leave from this same
  // event), so the DAG joins this uid's delivery chain to the fan-out pass.
  if (causal_ && net::flight_recorded(shared->type) &&
      causal_->sampled(shared->uid)) {
    causal_->annotate("ctrl.fanout",
                      {{"uid", static_cast<std::int64_t>(shared->uid)},
                       {"client", client},
                       {"index", shared->index}});
  }
  bool active_covered = false;
  bool prearm_covered = false;
  if (!cfg_.fanout_active_only) {
    for (net::NodeId ap : st.selector->aps_in_range(sched_.now())) {
      if (rec) {
        recorder_->record(shared->uid, sched_.now(), net::Hop::kCtrlFanout,
                          net::kControllerId,
                          {{"ap", ap},
                           {"index", shared->index},
                           {"active", ap == st.active_ap ? 1 : 0}});
      }
      if (hfr) health_->packet_copies();
      backhaul_.send(net::encapsulate(shared, net::kControllerId, ap));
      ++stats_.downlink_copies;
      if (ap == st.active_ap) active_covered = true;
      if (ap == st.prearm_ap) prearm_covered = true;
    }
    // Policy pre-arm (predictive): the next AP along the trajectory buffers
    // copies before its CSI puts it in the range set, so a future
    // start(c, k) finds the backlog already in place.
    if (st.prearm_ap != 0 && !prearm_covered &&
        st.prearm_ap != st.active_ap) {
      if (rec) {
        recorder_->record(shared->uid, sched_.now(), net::Hop::kCtrlFanout,
                          net::kControllerId,
                          {{"ap", st.prearm_ap},
                           {"index", shared->index},
                           {"active", 0},
                           {"prearm", 1}});
      }
      if (hfr) health_->packet_copies();
      backhaul_.send(
          net::encapsulate(shared, net::kControllerId, st.prearm_ap));
      ++stats_.downlink_copies;
      ++stats_.prearm_copies;
    }
  }
  if (!active_covered) {
    if (rec) {
      recorder_->record(shared->uid, sched_.now(), net::Hop::kCtrlFanout,
                        net::kControllerId,
                        {{"ap", st.active_ap},
                         {"index", shared->index},
                         {"active", 1}});
    }
    if (hfr) health_->packet_copies();
    backhaul_.send(net::encapsulate(shared, net::kControllerId, st.active_ap));
    ++stats_.downlink_copies;
  }
}

// ---------------------------------------------------------------------------
// AP selection + switching protocol
// ---------------------------------------------------------------------------

void WgttController::log_decision(net::NodeId client, const ClientState& st,
                                  Time now, DecisionOutcome outcome,
                                  DecisionReason reason, net::NodeId chosen,
                                  Time hysteresis_remaining) {
  DecisionRecord rec;
  rec.t = now;
  rec.client = client;
  rec.incumbent = st.active_ap;
  rec.chosen = chosen;
  rec.policy = st.policy ? st.policy->name() : "";
  rec.outcome = outcome;
  rec.reason = reason;
  rec.margin_db = cfg_.switch_margin_db;
  rec.hysteresis_remaining = hysteresis_remaining;
  if (st.selector) {
    // aps_in_range iterates the selector's NodeId-ordered window map, so the
    // candidate list is sorted and the serialization deterministic.
    for (net::NodeId ap : st.selector->aps_in_range(now)) {
      DecisionCandidate c;
      c.ap = ap;
      c.readings = st.selector->reading_count(ap, now);
      if (const auto m = st.selector->median(ap, now)) {
        c.median_db = *m;
        c.eligible = true;
      }
      rec.candidates.push_back(c);
    }
  }
  decision_log_->append(rec);
}

void WgttController::run_selection() {
  prof::ScopedSection timer(prof_, p_selection_);
  if (ctrl_down_) {
    // Crashed: no selection, but keep the pass scheduled so it resumes the
    // instant the fault clears.
    sched_.schedule(cfg_.selection_period, [this]() { run_selection(); });
    return;
  }
  const Time now = sched_.now();
  for (auto& [client, st] : clients_) {
    // Every early-out below is an auditable decision: when a DecisionLog is
    // installed, record why this client was not switched (observation only —
    // the control flow is identical with auditing off).
    if (st.active_ap == 0 || st.switch_in_flight || !st.selector) {
      if (decision_log_ && st.selector) {
        log_decision(client, st, now, DecisionOutcome::kDefer,
                     st.active_ap == 0 ? DecisionReason::kNotJoined
                                       : DecisionReason::kSwitchInFlight,
                     /*chosen=*/0, Time::zero());
      }
      continue;
    }
    // A dead incumbent cannot complete the stop handshake: route stranded
    // clients through the failover path (bypasses hysteresis, starts the new
    // AP directly) instead of racing the liveness tick with ordinary
    // switches whose stop(c) would be sent into the void.
    if (injector_ != nullptr && !ap_live(st.active_ap)) {
      st.selector->prune(now);
      attempt_failover(client, st, now);
      continue;
    }
    // The keep/switch/defer question itself is delegated to the client's
    // HandoffPolicy (median_esnr by default — the paper's §3.1.1 rule,
    // reproduced decision for decision).  The policy prunes the windows and
    // reads medians; the controller keeps the FSM, protocol, and audit log.
    PolicyEnvImpl env(*this, st, client, now);
    const PolicyDecision d = st.policy->decide(
        PolicyInput{client, st.active_ap, now, st.last_switch,
                    *st.selector, env});
    st.prearm_ap =
        (d.prearm != 0 && d.prearm != st.active_ap) ? d.prearm : 0;
    if (decision_log_) {
      log_decision(client, st, now, d.outcome, d.reason, d.target,
                   d.hysteresis_remaining);
    }
    if (d.outcome == DecisionOutcome::kSwitch) {
      initiate_switch(client, st, d.target, d.style, d.bicast_hold);
    }
  }
  sched_.schedule(cfg_.selection_period, [this]() { run_selection(); });
}

void WgttController::initiate_switch(net::NodeId client, ClientState& st,
                                     net::NodeId target, SwitchStyle style,
                                     Time bicast_hold) {
  ++stats_.switches_initiated;
  st.switch_in_flight = true;
  st.switch_id = next_switch_id_++;
  st.switch_target = target;
  st.switch_started = sched_.now();
  st.stop_retx = 0;
  st.switch_style = style;
  st.bicast_hold = bicast_hold;
  if (tracer_) {
    tracer_->instant("core", "switch_start", sched_.now(),
                     static_cast<std::int64_t>(net::kControllerId),
                     {{"client", static_cast<double>(client)},
                      {"from", static_cast<double>(st.active_ap)},
                      {"to", static_cast<double>(target)}});
  }
  if (recorder_) {
    recorder_->marker(sched_.now(), net::Hop::kSwitchStart, net::kControllerId,
                      {{"client", client},
                       {"from", st.active_ap},
                       {"to", target}});
  }
  if (causal_) {
    st.causal_start_ev = causal_->current_event();
    causal_->annotate("ctrl.switch_start",
                      {{"client", client},
                       {"from", st.active_ap},
                       {"to", target},
                       {"switch", st.switch_id}});
    if (tracer_) {
      tracer_->flow_start("core", "switch_flow", sched_.now(),
                          st.causal_start_ev,
                          static_cast<std::int64_t>(net::kControllerId));
    }
  }
  if (style == SwitchStyle::kStopStart) {
    send_stop(client, st);
  } else {
    // Make-before-break / bicast: the challenger starts first; the incumbent
    // keeps transmitting until quenched after the ack.
    ++stats_.direct_starts;
    send_direct_start(client, st);
  }
}

void WgttController::send_stop(net::NodeId client, ClientState& st) {
  net::Packet p;
  p.type = net::PacketType::kStop;
  p.size_bytes = StopMsg::kWireBytes;
  StopMsg msg;
  msg.client = client;
  msg.next_ap = st.switch_target;
  msg.switch_id = st.switch_id;
  if (injector_ != nullptr) msg.epoch = epoch_;
  p.payload = msg;
  // On a retransmission this attaches to the retx-timeout event, labelling
  // the timeout wait in the critical path.
  if (causal_) {
    causal_->annotate("ctrl.stop_tx",
                      {{"client", client},
                       {"ap", st.active_ap},
                       {"switch", st.switch_id},
                       {"retx", st.stop_retx}});
  }
  send_to(st.active_ap, std::move(p));

  // Retransmit the stop if the ack does not arrive in time (§3.1.2).
  st.retx_event = sched_.schedule(retx_timeout(st.stop_retx),
                                  [this, client]() {
    auto it = clients_.find(client);
    if (it == clients_.end() || !it->second.switch_in_flight) return;
    ClientState& cs = it->second;
    if (injector_ != nullptr && cs.stop_retx >= cfg_.max_control_retries) {
      // Bounded retry: the stop target (or the start relay behind it) is not
      // answering — abandon instead of retransmitting into a dead AP forever.
      // The liveness monitor will fail the client over once the AP is marked
      // suspect.
      cs.switch_in_flight = false;
      ++stats_.abandoned_switches;
      WGTT_LOG(kWarn, "controller",
               "abandoning switch for client " << client << " after "
                                               << cs.stop_retx << " retries");
      return;
    }
    ++stats_.stop_retransmissions;
    ++cs.stop_retx;
    if (m_retries_) m_retries_->add();
    send_stop(client, cs);
  });
}

void WgttController::send_direct_start(net::NodeId client, ClientState& st) {
  // Unlike stop(c)-relayed starts there is no first-unsent index (no ioctl
  // ran at the incumbent): the challenger resumes from its own cyclic head.
  // Quench deactivations rewind the head to the true first-unsent index, so
  // a challenger that held this client before restarts exactly where it
  // stopped — overlapping the incumbent's current range, the deliberate
  // duplication the client-side dedup layer absorbs.
  net::Packet p;
  p.type = net::PacketType::kStart;
  p.size_bytes = StartMsg::kWireBytes;
  StartMsg msg;
  msg.client = client;
  msg.first_unsent_index = kResumeHeadIndex;
  msg.switch_id = st.switch_id;
  msg.from_ap = 0;
  if (injector_ != nullptr) msg.epoch = epoch_;
  p.payload = msg;
  if (causal_) {
    causal_->annotate("ctrl.start_tx",
                      {{"client", client},
                       {"ap", st.switch_target},
                       {"switch", st.switch_id},
                       {"retx", st.stop_retx}});
  }
  send_to(st.switch_target, std::move(p));

  st.retx_event = sched_.schedule(retx_timeout(st.stop_retx),
                                  [this, client]() {
    auto it = clients_.find(client);
    if (it == clients_.end() || !it->second.switch_in_flight) return;
    ClientState& cs = it->second;
    if (cs.stop_retx >= cfg_.max_control_retries) {
      // The challenger is not answering; the incumbent was never stopped, so
      // abandoning simply leaves the client where it was.
      cs.switch_in_flight = false;
      ++stats_.abandoned_switches;
      WGTT_LOG(kWarn, "controller",
               "abandoning start-first switch for client "
                   << client << " after " << cs.stop_retx << " retries");
      return;
    }
    ++stats_.stop_retransmissions;
    ++cs.stop_retx;
    if (m_retries_) m_retries_->add();
    send_direct_start(client, cs);
  });
}

void WgttController::send_quench(net::NodeId ap, net::NodeId client,
                                 net::NodeId new_ap,
                                 std::uint32_t switch_id) {
  ++stats_.quench_stops;
  net::Packet p;
  p.type = net::PacketType::kStop;
  p.size_bytes = StopMsg::kWireBytes;
  StopMsg msg;
  msg.client = client;
  msg.next_ap = new_ap;
  msg.switch_id = switch_id;
  msg.quench = true;  // the successor is already active: no start relay
  if (injector_ != nullptr) msg.epoch = epoch_;
  p.payload = msg;
  if (causal_) {
    causal_->annotate("ctrl.quench_tx",
                      {{"client", client},
                       {"ap", ap},
                       {"switch", switch_id}});
  }
  send_to(ap, std::move(p));
}

void WgttController::handle_switch_ack(const SwitchAckMsg& msg) {
  auto it = clients_.find(msg.client);
  // Fencing: an ack must name the in-flight switch AND (on hardened runs)
  // the current epoch.  Anything else is stale — a duplicate of an already
  // consumed ack, the ack of an abandoned switch arriving after its
  // successor was initiated, or an ack from before a controller restart.
  // Before this fence, a reordered old ack whose switch_id happened to
  // match a recycled post-restart id could complete the wrong switch.
  const bool stale =
      it == clients_.end() || !it->second.switch_in_flight ||
      msg.switch_id != it->second.switch_id ||
      (injector_ != nullptr && msg.epoch != epoch_);
  if (stale) {
    if (injector_ != nullptr) {
      ++stats_.stale_acks;
      if (m_stale_acks_) m_stale_acks_->add();
      if (m_stale_rejected_) m_stale_rejected_->add();
    }
    return;
  }
  ClientState& st = it->second;

  sched_.cancel(st.retx_event);
  ++stats_.switches_completed;
  SwitchRecord rec;
  rec.initiated = st.switch_started;
  rec.completed = sched_.now();
  rec.client = msg.client;
  rec.from_ap = st.active_ap;
  rec.to_ap = msg.new_ap;
  rec.stop_retransmissions = st.stop_retx;
  rec.switch_id = msg.switch_id;
  rec.epoch = injector_ != nullptr ? epoch_ : 0;
  stats_.switch_latency_ms.add((rec.completed - rec.initiated).to_ms());
  switch_log_.push_back(rec);
  if (m_switches_) {
    m_switches_->add();
    m_switch_latency_ms_->record((rec.completed - rec.initiated).to_ms());
  }
  if (tracer_) {
    tracer_->complete("core", "switch", rec.initiated,
                      rec.completed - rec.initiated,
                      static_cast<std::int64_t>(net::kControllerId),
                      {{"client", static_cast<double>(rec.client)},
                       {"from", static_cast<double>(rec.from_ap)},
                       {"to", static_cast<double>(rec.to_ap)},
                       {"stop_retx",
                        static_cast<double>(rec.stop_retransmissions)}});
  }
  if (recorder_) {
    recorder_->marker(sched_.now(), net::Hop::kSwitchDone, net::kControllerId,
                      {{"client", rec.client},
                       {"from", rec.from_ap},
                       {"to", rec.to_ap},
                       {"stop_retx", rec.stop_retransmissions},
                       {"gap_us", (rec.completed - rec.initiated).to_ns() / 1000}});
  }
  if (causal_) {
    causal_->annotate("ctrl.switch_done",
                      {{"client", rec.client},
                       {"from", rec.from_ap},
                       {"to", rec.to_ap},
                       {"switch", msg.switch_id},
                       {"retx", rec.stop_retransmissions}});
    if (tracer_) {
      tracer_->flow_finish("core", "switch_flow", sched_.now(),
                           st.causal_start_ev,
                           static_cast<std::int64_t>(net::kControllerId));
    }
    st.causal_start_ev = 0;
  }

  const net::NodeId old_ap = st.active_ap;
  const SwitchStyle style = st.switch_style;
  st.active_ap = msg.new_ap;
  st.switch_in_flight = false;
  st.failover_in_flight = false;
  st.last_switch = sched_.now();
  st.switch_style = SwitchStyle::kStopStart;
  if (style != SwitchStyle::kStopStart && old_ap != 0 &&
      old_ap != msg.new_ap) {
    // Start-first styles never sent stop(c): quench the incumbent now —
    // immediately for make-before-break, after the overlap window for
    // bicast (during which both APs transmit and the client de-duplicates).
    if (style == SwitchStyle::kBicast && st.bicast_hold > Time::zero()) {
      ++stats_.bicast_windows;
      sched_.schedule(st.bicast_hold,
                      [this, old_ap, client = msg.client,
                       new_ap = msg.new_ap, id = msg.switch_id]() {
                        // The hold can outlive the next selection round.  If
                        // the incumbent has been (or is being) re-selected as
                        // the active AP, a late quench would silence the very
                        // AP the client now depends on — skip it; the switch
                        // that re-chose it quenches the other side.
                        auto cit = clients_.find(client);
                        if (cit != clients_.end() &&
                            (cit->second.active_ap == old_ap ||
                             (cit->second.switch_in_flight &&
                              cit->second.switch_target == old_ap))) {
                          ++stats_.quenches_skipped;
                          return;
                        }
                        send_quench(old_ap, client, new_ap, id);
                      });
    } else {
      send_quench(old_ap, msg.client, msg.new_ap, msg.switch_id);
    }
  }
  broadcast_active(msg.client, msg.new_ap, /*bootstrap=*/false,
                   /*overlap=*/style != SwitchStyle::kStopStart);
  if (on_switch) on_switch(rec);
}

// ---------------------------------------------------------------------------
// Liveness monitoring + failover (active only with a FaultInjector installed)
// ---------------------------------------------------------------------------

void WgttController::handle_heartbeat(const HeartbeatMsg& msg) {
  ++stats_.heartbeats_received;
  auto it = ap_health_.find(msg.ap);
  if (it == ap_health_.end()) return;
  ApHealth& h = it->second;
  if (h.state == ApHealth::State::kSuspect) {
    // The AP came back after being declared suspect: it flapped.  Quarantine
    // it with exponential backoff so an unstable AP cannot keep re-capturing
    // clients the moment it blips up.
    h.state = ApHealth::State::kQuarantine;
    const Time window = quarantine_for(h.flaps);
    h.quarantined_until = sched_.now() + window;
    ++stats_.liveness_quarantines;
    if (m_quarantines_) m_quarantines_->add();
    log_liveness(msg.ap, "quarantined", h.flaps, window);
  }
  h.last_heartbeat = sched_.now();
  h.heard = true;
}

bool WgttController::ap_live(net::NodeId ap) const {
  auto it = ap_health_.find(ap);
  return it == ap_health_.end() || it->second.state == ApHealth::State::kLive;
}

bool WgttController::csi_frozen(const ClientState& st, net::NodeId ap) const {
  auto it = st.csi_repeat.find(ap);
  return it != st.csi_repeat.end() &&
         it->second.repeats >= cfg_.stale_csi_repeats;
}

Time WgttController::quarantine_for(std::uint32_t flaps) const {
  // base * 2^(flaps-1), saturating at quarantine_cap (ns arithmetic; the
  // shift is bounded by the early exit, so no overflow before the cap).
  std::int64_t ns = cfg_.quarantine_base.to_ns();
  const std::int64_t cap = cfg_.quarantine_cap.to_ns();
  for (std::uint32_t i = 1; i < flaps && ns < cap; ++i) ns <<= 1;
  return Time::ns(std::min(ns, cap));
}

net::NodeId WgttController::select_live(const ClientState& st,
                                        net::NodeId client, Time now) {
  (void)client;
  net::NodeId best = 0;
  double best_median = -1e300;
  for (net::NodeId ap : st.selector->aps_in_range(now)) {
    const auto m = st.selector->median(ap, now);
    if (!m) continue;
    if (!ap_live(ap)) continue;
    if (csi_frozen(st, ap)) {
      ++stats_.stale_csi_exclusions;
      continue;
    }
    if (*m > best_median) {
      best_median = *m;
      best = ap;
    }
  }
  return best;
}

void WgttController::liveness_tick() {
  if (ctrl_down_) {
    // Crashed: the monitor is dark, but keep the tick alive so it resumes
    // with the warm restart.
    sched_.schedule(cfg_.heartbeat_period, [this]() { liveness_tick(); });
    return;
  }
  const Time now = sched_.now();
  const Time deadline = Time::ns(cfg_.heartbeat_period.to_ns() *
                                 static_cast<std::int64_t>(cfg_.liveness_misses));
  for (auto& [ap, h] : ap_health_) {
    switch (h.state) {
      case ApHealth::State::kLive:
        if (h.heard && now - h.last_heartbeat > deadline) {
          h.state = ApHealth::State::kSuspect;
          ++h.flaps;
          ++stats_.liveness_suspects;
          if (m_suspects_) m_suspects_->add();
          log_liveness(ap, "suspect", h.flaps, Time::zero());
          if (tracer_) {
            tracer_->instant("core", "ap_suspect", now,
                             static_cast<std::int64_t>(net::kControllerId),
                             {{"ap", static_cast<double>(ap)},
                              {"flaps", static_cast<double>(h.flaps)}});
          }
        }
        break;
      case ApHealth::State::kSuspect:
        break;  // leaves via a heartbeat (-> quarantine)
      case ApHealth::State::kQuarantine:
        if (now >= h.quarantined_until) {
          h.state = ApHealth::State::kLive;
          // Grace: grant the full miss budget before re-suspecting.
          h.last_heartbeat = now;
          log_liveness(ap, "reinstated", h.flaps, Time::zero());
        }
        break;
    }
  }
  if (m_live_aps_) {
    std::size_t live = 0;
    for (const auto& [ap, h] : ap_health_) {
      if (h.state == ApHealth::State::kLive) ++live;
    }
    m_live_aps_->set(static_cast<double>(live));
  }
  // Stranded clients: the serving AP went suspect/quarantined mid-dwell.
  // Fail over immediately, bypassing hysteresis — and keep retrying every
  // tick while no live candidate exists.  Orphans (associated but with no
  // active AP — a warm restart whose resync round found no active claim,
  // because the crash hit mid-switch) are re-adopted through the same
  // direct-start path.
  for (auto& [client, st] : clients_) {
    if (health_) {
      health_->client_stranded(
          client, st.active_ap == 0 || !ap_live(st.active_ap), now);
    }
    if (st.switch_in_flight || !st.selector) continue;
    if (st.active_ap != 0 && !ap_live(st.active_ap)) {
      attempt_failover(client, st, now);
    } else if (st.active_ap == 0 && st.associated) {
      attempt_failover(client, st, now, DecisionReason::kResync);
    }
  }
  sched_.schedule(cfg_.heartbeat_period, [this]() { liveness_tick(); });
}

void WgttController::attempt_failover(net::NodeId client, ClientState& st,
                                      Time now, DecisionReason reason) {
  net::NodeId target = select_live(st, client, now);
  if (target == 0 || target == st.active_ap) {
    // No live AP has an eligible median: a dwell on a dead AP silences the
    // client's uplink, so every ESNR window goes stale within ~W of the
    // crash.  Last resort: the live AP with the best last-known reading for
    // this client — a stale guess beats certain starvation on a dead AP.
    target = 0;
    double best_esnr = -1e300;
    for (const auto& [ap, rep] : st.csi_repeat) {
      if (ap == st.active_ap || !ap_live(ap) || csi_frozen(st, ap)) continue;
      if (rep.last_esnr > best_esnr) {
        best_esnr = rep.last_esnr;
        target = ap;
      }
    }
  }
  if (target == 0 || target == st.active_ap) {
    if (decision_log_) {
      log_decision(client, st, now, DecisionOutcome::kDefer,
                   DecisionReason::kAllSuspect, /*chosen=*/0, Time::zero());
    }
    return;
  }
  if (decision_log_) {
    log_decision(client, st, now, DecisionOutcome::kSwitch, reason, target,
                 Time::zero());
  }
  if (reason == DecisionReason::kResync) {
    // A warm-restart re-adoption: no suspect event drove it, so it counts
    // under the resync machinery, not as a liveness reaction (the health
    // engine's liveness_fsm watchdog holds failovers <= suspects).
    ++stats_.resync_readoptions;
  } else {
    ++stats_.liveness_failovers;
    if (m_failovers_) m_failovers_->add();
  }
  ++stats_.switches_initiated;
  st.switch_in_flight = true;
  st.failover_in_flight = true;
  st.switch_id = next_switch_id_++;
  st.switch_target = target;
  st.switch_started = now;
  st.stop_retx = 0;
  // The incumbent is dead: plain stop-start semantics (no quench on ack),
  // whatever style the policy last used.
  st.switch_style = SwitchStyle::kStopStart;
  if (tracer_) {
    tracer_->instant("core", "switch_start", now,
                     static_cast<std::int64_t>(net::kControllerId),
                     {{"client", static_cast<double>(client)},
                      {"from", static_cast<double>(st.active_ap)},
                      {"to", static_cast<double>(target)}});
  }
  if (recorder_) {
    recorder_->marker(now, net::Hop::kSwitchStart, net::kControllerId,
                      {{"client", client},
                       {"from", st.active_ap},
                       {"to", target},
                       {"failover", 1}});
  }
  if (causal_) {
    st.causal_start_ev = causal_->current_event();
    causal_->annotate("ctrl.switch_start",
                      {{"client", client},
                       {"from", st.active_ap},
                       {"to", target},
                       {"switch", st.switch_id},
                       {"failover", 1}});
    if (tracer_) {
      tracer_->flow_start("core", "switch_flow", now, st.causal_start_ev,
                          static_cast<std::int64_t>(net::kControllerId));
    }
  }
  send_failover_start(client, st);
}

void WgttController::send_failover_start(net::NodeId client, ClientState& st) {
  // The predecessor AP is presumed dead: skip stop(c) and originate the
  // start ourselves with the resume-from-head sentinel (§3.1.2 adapted).
  net::Packet p;
  p.type = net::PacketType::kStart;
  p.size_bytes = StartMsg::kWireBytes;
  StartMsg msg;
  msg.client = client;
  msg.first_unsent_index = kResumeHeadIndex;
  msg.switch_id = st.switch_id;
  msg.from_ap = 0;
  if (injector_ != nullptr) msg.epoch = epoch_;
  p.payload = msg;
  if (causal_) {
    causal_->annotate("ctrl.start_tx",
                      {{"client", client},
                       {"ap", st.switch_target},
                       {"switch", st.switch_id},
                       {"retx", st.stop_retx},
                       {"failover", 1}});
  }
  send_to(st.switch_target, std::move(p));

  st.retx_event = sched_.schedule(retx_timeout(st.stop_retx),
                                  [this, client]() {
    auto it = clients_.find(client);
    if (it == clients_.end() || !it->second.switch_in_flight) return;
    ClientState& cs = it->second;
    if (cs.stop_retx >= cfg_.max_control_retries) {
      // The failover target is unreachable too.  Clear the FSM so the next
      // liveness tick can re-select (possibly a different AP).
      cs.switch_in_flight = false;
      cs.failover_in_flight = false;
      ++stats_.abandoned_switches;
      WGTT_LOG(kWarn, "controller",
               "abandoning failover for client " << client << " after "
                                                 << cs.stop_retx
                                                 << " retries");
      return;
    }
    ++stats_.stop_retransmissions;
    ++cs.stop_retx;
    if (m_retries_) m_retries_->add();
    send_failover_start(client, cs);
  });
}

Time WgttController::retx_timeout(unsigned retx) const {
  // Hardened runs back off exponentially (1x, 2x, 4x, 8x, then capped):
  // under adversarial loss a flat timer synchronizes retransmission storms
  // with the fault window.  Fault-free runs keep the paper's flat 30 ms.
  if (injector_ == nullptr || retx == 0) return cfg_.ack_timeout;
  const unsigned shift = std::min(retx, 3u);
  return Time::ns(cfg_.ack_timeout.to_ns() << shift);
}

void WgttController::log_liveness(net::NodeId ap, const char* event,
                                  std::uint32_t flaps, Time quarantine) {
  WGTT_LOG(kInfo, "liveness",
           "ap=" << ap << " " << event << " flaps=" << flaps);
  if (decision_log_) {
    LivenessRecord rec;
    rec.t = sched_.now();
    rec.ap = ap;
    rec.event = event;
    rec.flaps = flaps;
    rec.quarantine = quarantine;
    decision_log_->append_liveness(rec);
  }
}

void WgttController::broadcast_active(net::NodeId client, net::NodeId ap,
                                      bool bootstrap, bool overlap) {
  // One version draw per broadcast (hardened runs): every AP receives the
  // same (epoch, version), so a reordered older broadcast loses to a newer
  // one at every receiver identically.
  std::uint32_t version = 0;
  if (injector_ != nullptr) version = ++client_state(client).active_version;
  for (net::NodeId dest : ap_ids_) {
    net::Packet p;
    p.type = net::PacketType::kActiveAp;
    p.size_bytes = ActiveApMsg::kWireBytes;
    ActiveApMsg msg;
    msg.client = client;
    msg.active_ap = ap;
    msg.bootstrap = bootstrap;
    msg.overlap = overlap;
    msg.version = version;
    if (injector_ != nullptr) msg.epoch = epoch_;
    p.payload = msg;
    send_to(dest, std::move(p));
  }
}

// ---------------------------------------------------------------------------
// Warm restart (ctrl_crash faults)
// ---------------------------------------------------------------------------

void WgttController::on_ctrl_fault(bool down) {
  if (down == ctrl_down_) return;
  ctrl_down_ = down;
  if (down) {
    ++stats_.ctrl_crashes;
    // Crash semantics: every piece of soft state dies — association and
    // active-AP beliefs, switch FSMs (cancel their timers first), the
    // liveness monitor, and both dedup filters.  The APs keep transmitting
    // from their replicated state; only *coordination* is lost.
    for (auto& [client, st] : clients_) {
      if (st.switch_in_flight) sched_.cancel(st.retx_event);
      if (health_) health_->client_stranded(client, true, sched_.now());
    }
    clients_.clear();
    ap_health_.clear();
    dedup_ = Deduplicator();
    ctrl_dedup_.reset();
    // The per-link send sequencer survives deliberately: it models the
    // NIC-level counter, and resetting it would make post-restart frames
    // look like ancient duplicates to the APs' dedup windows.
    log_liveness(net::kControllerId, "ctrl_down", 0, Time::zero());
    WGTT_LOG(kWarn, "controller", "controller crashed (control state lost)");
  } else {
    ++stats_.ctrl_restarts;
    ++epoch_;
    next_switch_id_ = 1;  // ids restart; (epoch, id) stays monotonic
    for (net::NodeId ap : ap_ids_) {
      ApHealth h;
      h.last_heartbeat = sched_.now();
      ap_health_.emplace(ap, h);
    }
    if (m_live_aps_) m_live_aps_->set(static_cast<double>(ap_ids_.size()));
    log_liveness(net::kControllerId, "ctrl_restart", epoch_, Time::zero());
    WGTT_LOG(kInfo, "controller",
             "controller restarted (epoch " << epoch_ << "), resyncing");
    broadcast_resync_request();
  }
}

void WgttController::broadcast_resync_request() {
  ++stats_.resync_rounds;
  if (m_resyncs_) m_resyncs_->add();
  for (net::NodeId ap : ap_ids_) {
    net::Packet p;
    p.type = net::PacketType::kResync;
    p.size_bytes = ResyncRequestMsg::kWireBytes;
    p.payload = ResyncRequestMsg{epoch_};
    send_to(ap, std::move(p));
  }
}

void WgttController::handle_resync_report(const ResyncReportMsg& msg) {
  // epoch == 0 marks an unsolicited rejoin report (an AP recovering from its
  // own crash); anything else must match the current epoch, or the report
  // predates an even later restart and would poison the rebuild.
  if (msg.epoch != 0 && msg.epoch != epoch_) {
    ++stats_.stale_resyncs;
    if (m_stale_rejected_) m_stale_rejected_->add();
    return;
  }
  ++stats_.resync_reports;
  const Time now = sched_.now();
  for (const ResyncEntry& e : msg.entries) {
    ClientState& st = client_state(e.info.client);
    st.associated = true;
    if (!e.active) continue;
    if (st.active_ap == 0 && !st.switch_in_flight) {
      // First active claim for this client: adopt it.
      st.active_ap = msg.ap;
      st.last_switch = now;
      ++stats_.resync_adoptions;
      if (decision_log_) {
        log_decision(e.info.client, st, now, DecisionOutcome::kKeep,
                     DecisionReason::kResync, msg.ap, Time::zero());
      }
      broadcast_active(e.info.client, msg.ap, /*bootstrap=*/false);
    } else if (st.active_ap != msg.ap) {
      // A second AP also believes it transmits to this client (crash or
      // recovery raced a switch): keep the adopted claim, quench this one.
      ++stats_.resync_conflicts;
      send_quench(msg.ap, e.info.client, st.active_ap, 0);
    }
  }
}

}  // namespace wgtt::core
