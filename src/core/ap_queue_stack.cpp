#include "core/ap_queue_stack.h"

namespace wgtt::core {

ApQueueStack::ApQueueStack(sim::Scheduler& sched, mac::WifiDevice& device,
                           net::NodeId client, QueueStackConfig cfg)
    : sched_(sched), device_(device), client_(client), cfg_(cfg) {
  if (auto* reg = metrics::MetricsRegistry::current()) {
    m_backlog_ = &reg->histogram(
        "core.queue_stack_backlog", metrics::exponential_buckets(1.0, 2.0, 13));
    m_activations_ = &reg->counter("core.queue_stack_activations");
  }
  tracer_ = trace::Tracer::current();
  recorder_ = net::FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
  device_.set_refill_handler(client_, [this]() { pump(); });
}

std::optional<std::pair<std::uint32_t, net::PacketPtr>>
ApQueueStack::pop_fresh() {
  while (auto item = cyclic_.pop()) {
    if (sched_.now() - item->second->created <= cfg_.max_packet_age) {
      return item;
    }
    ++stale_dropped_;
    if (health_) health_->packet_dropped();
    if (recorder_) {
      recorder_->drop(item->second->uid, sched_.now(), net::Hop::kApDrop,
                      device_.id(), net::DropCause::kStale,
                      {{"client", client_}, {"index", item->first}});
    }
  }
  return std::nullopt;
}

void ApQueueStack::note_ring_evictions() {
  // The cyclic ring destroys packets on its own in two places: insert()
  // overwrites a slot the index space lapped, and set_head() discards slots
  // another AP already delivered.  Both are benign custody ends for this
  // AP's fan-out copy, so the ledger retires (not drops) the delta.
  if (!health_) return;
  const std::uint64_t evicted = cyclic_.overruns() + cyclic_.discarded();
  if (evicted > ring_evictions_seen_) {
    health_->packet_retired(evicted - ring_evictions_seen_);
    ring_evictions_seen_ = evicted;
  }
}

void ApQueueStack::on_downlink(std::uint32_t index, net::PacketPtr pkt) {
  if (recorder_) {
    recorder_->record(pkt->uid, sched_.now(), net::Hop::kApEnqueue,
                      device_.id(), {{"client", client_}, {"index", index}});
  }
  if (causal_ && causal_->sampled(pkt->uid)) {
    causal_->annotate("ap.enqueue",
                      {{"uid", static_cast<std::int64_t>(pkt->uid)},
                       {"ap", device_.id()},
                       {"client", client_}});
  }
  cyclic_.insert(index, std::move(pkt));
  note_ring_evictions();
  if (active_) pump();
}

void ApQueueStack::activate(std::uint32_t start_index) {
  cyclic_.set_head(start_index);
  note_ring_evictions();
  active_ = true;
  if (m_activations_) m_activations_->add();
  if (m_backlog_) m_backlog_->record(static_cast<double>(total_backlog()));
  if (tracer_) {
    tracer_->instant("core", "stack_activate", sched_.now(),
                     static_cast<std::int64_t>(device_.id()),
                     {{"client", static_cast<double>(client_)},
                      {"start_index", static_cast<double>(start_index)},
                      {"backlog", static_cast<double>(total_backlog())}});
  }
  if (recorder_) {
    recorder_->marker(sched_.now(), net::Hop::kApActivate, device_.id(),
                      {{"client", client_},
                       {"start_index", start_index},
                       {"backlog",
                        static_cast<std::int64_t>(total_backlog())}});
  }
  if (causal_) {
    causal_->annotate("ap.activate",
                      {{"ap", device_.id()},
                       {"client", client_},
                       {"backlog",
                        static_cast<std::int64_t>(total_backlog())}});
  }
  pump();
}

std::uint32_t ApQueueStack::deactivate(bool requeue_kernel) {
  active_ = false;
  const std::uint32_t k = next_nic_index();
  if (m_backlog_) m_backlog_->record(static_cast<double>(total_backlog()));
  if (tracer_) {
    tracer_->instant("core", "stack_deactivate", sched_.now(),
                     static_cast<std::int64_t>(device_.id()),
                     {{"client", static_cast<double>(client_)},
                      {"k", static_cast<double>(k)},
                      {"backlog", static_cast<double>(total_backlog())}});
  }
  if (requeue_kernel) {
    // Quench path (start-first overlap styles): this AP remains a live
    // fallback in the shared BSSID, so the kernel stage rewinds instead of
    // flushing — the packets return to their cyclic slots and the head
    // returns to k.  A later start-first resume from this AP's own head
    // then lands exactly on its true first-unsent index, which is what
    // makes the next overlap window retransmit the same packets the
    // incumbent is sending (the deliberate bicast duplication).
    for (auto& [index, pkt] : kernel_) cyclic_.insert(index, std::move(pkt));
    kernel_.clear();
    cyclic_.set_head(k);
    note_ring_evictions();
    return k;
  }
  // Flush the kernel stage back into oblivion: the next AP's cyclic queue
  // already holds these packets, so local copies would only be duplicates.
  kernel_flushed_ += kernel_.size();
  if (health_) health_->packet_dropped(kernel_.size());
  if (recorder_) {
    for (const auto& [index, pkt] : kernel_) {
      recorder_->drop(pkt->uid, sched_.now(), net::Hop::kApDrop, device_.id(),
                      net::DropCause::kKernelFlush,
                      {{"client", client_}, {"index", index}});
    }
  }
  kernel_.clear();
  // NIC queue is left alone: the hardware keeps draining it over the air.
  return k;
}

std::size_t ApQueueStack::purge(net::DropCause cause) {
  std::size_t purged = 0;
  // Kernel stage: record and drop in place.
  for (const auto& [index, pkt] : kernel_) {
    ++purged;
    if (recorder_) {
      recorder_->drop(pkt->uid, sched_.now(), net::Hop::kApDrop, device_.id(),
                      cause, {{"client", client_}, {"index", index}});
    }
  }
  kernel_.clear();
  // Cyclic stage: drain through pop() so occupancy bookkeeping stays right.
  while (auto item = cyclic_.pop()) {
    ++purged;
    if (recorder_) {
      recorder_->drop(item->second->uid, sched_.now(), net::Hop::kApDrop,
                      device_.id(), cause,
                      {{"client", client_}, {"index", item->first}});
    }
  }
  cyclic_.clear();
  active_ = false;
  purged_ += purged;
  if (health_) health_->packet_dropped(purged);
  if (tracer_) {
    tracer_->instant("core", "stack_purge", sched_.now(),
                     static_cast<std::int64_t>(device_.id()),
                     {{"client", static_cast<double>(client_)},
                      {"purged", static_cast<double>(purged)}});
  }
  return purged;
}

std::uint32_t ApQueueStack::next_nic_index() const {
  if (!kernel_.empty()) return kernel_.front().first;
  return cyclic_.head();
}

void ApQueueStack::pump() {
  if (!active_) return;
  // Stage 1: cyclic -> kernel.
  while (kernel_.size() < cfg_.kernel_queue_limit) {
    auto item = pop_fresh();
    if (!item) break;
    kernel_.push_back(std::move(*item));
  }
  // Stage 2: kernel -> NIC.  The 802.11 sequence number is the packet's
  // 12-bit cyclic index (the WGTT block-ACK integration).
  while (!kernel_.empty() && device_.has_room(client_)) {
    auto& [index, pkt] = kernel_.front();
    const auto seq = static_cast<std::uint16_t>(index & (net::kIndexSpace - 1));
    const std::uint64_t uid = pkt->uid;
    if (!device_.enqueue(client_, std::move(pkt), seq)) break;
    if (recorder_) {
      recorder_->record(uid, sched_.now(), net::Hop::kApNic, device_.id(),
                        {{"client", client_}, {"seq", seq}});
    }
    if (causal_ && causal_->sampled(uid)) {
      causal_->annotate("ap.nic", {{"uid", static_cast<std::int64_t>(uid)},
                                   {"ap", device_.id()},
                                   {"client", client_}});
    }
    kernel_.pop_front();
    // Top up the kernel stage as it drains.
    if (auto item = pop_fresh()) kernel_.push_back(std::move(*item));
  }
}

}  // namespace wgtt::core
