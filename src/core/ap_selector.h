// WGTT's AP selection algorithm (paper §3.1.1, Fig. 6).
//
// For one client: keep the ESNR readings reported by each AP over a sliding
// window of duration W, and select the AP whose *median* windowed reading is
// maximal.  The median (rather than latest or mean) rides out single-frame
// fading spikes while still reacting within W; the paper's Fig. 21 sweep
// finds W = 10 ms optimal, which this class defaults to.
//
// The class is deliberately standalone: the live controller drives it with
// backhaul CSI reports, and the Fig. 21 emulation benchmark replays recorded
// ESNR traces through it at different window sizes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace wgtt::core {

class MedianEsnrSelector {
 public:
  /// `use_latest` replaces the median with the newest in-window reading —
  /// the naive policy the paper's median is an ablation against (a single
  /// constructive-fade spike then flips the selection).
  explicit MedianEsnrSelector(Time window = Time::ms(10),
                              std::size_t min_readings = 2,
                              bool use_latest = false);

  void add_reading(net::NodeId ap, Time when, double esnr_db);

  /// Drop readings older than the window.
  void prune(Time now);

  /// Median ESNR of an AP's in-window readings (paper's e_{L/2}), or
  /// nullopt with fewer than min_readings readings.
  std::optional<double> median(net::NodeId ap, Time now) const;

  /// The argmax-median AP, or 0 if no AP is eligible.
  net::NodeId select(Time now) const;

  /// APs with at least one reading in the window — the controller's
  /// downlink fan-out set (§3.1.2 footnote 1).
  std::vector<net::NodeId> aps_in_range(Time now) const;

  /// Window fill: number of in-window readings for `ap` (an AP needs
  /// min_readings of them to be eligible).  Audit-log diagnostics.
  std::size_t reading_count(net::NodeId ap, Time now) const;

  Time window() const { return window_; }

 private:
  struct Reading {
    Time when;
    double esnr_db;
  };
  Time window_;
  std::size_t min_readings_;
  bool use_latest_;
  std::map<net::NodeId, std::deque<Reading>> windows_;
};

}  // namespace wgtt::core
