// Per-link control-frame sequencing and duplicate suppression.
//
// The hardened control plane (armed only when a FaultInjector is installed)
// stamps every state-bearing control frame with a per-destination monotonic
// sequence number (net::Packet::ctrl_seq).  Receivers run each (source,
// seq) pair through a ControlDedup window: an adversarially duplicated
// frame carries the same seq as its original and is suppressed, while a
// deliberate retransmission is a fresh packet with a fresh seq and always
// passes.  Bounded reordering is tolerated with a 64-deep bitmap per
// source.  Pure memory — no RNG, no scheduler events — so merely compiling
// this in changes nothing; fault-free runs never stamp a sequence number.
#pragma once

#include <cstdint>
#include <map>

#include "net/packet.h"

namespace wgtt::core {

/// The state-bearing control types the hardened plane sequences and fences.
/// Idempotent chatter (CSI reports, heartbeats, assoc sync) and data frames
/// are deliberately excluded: duplicating or reordering them is harmless by
/// construction, and sequencing them would bloat the dedup windows.
inline bool sequenced_control(net::PacketType t) {
  switch (t) {
    case net::PacketType::kStop:
    case net::PacketType::kStart:
    case net::PacketType::kSwitchAck:
    case net::PacketType::kActiveAp:
    case net::PacketType::kResync:
      return true;
    default:
      return false;
  }
}

/// Sender side: one monotonic counter per destination, starting at 1
/// (0 means "unsequenced" and is never issued).
class ControlSequencer {
 public:
  std::uint64_t next(net::NodeId dst) { return ++next_[dst]; }
  void reset() { next_.clear(); }

 private:
  std::map<net::NodeId, std::uint64_t> next_;
};

/// Receiver side: per-source high-water mark plus a 64-bit bitmap over the
/// seqs just below it, so duplicates are caught even when the duplicate
/// overtakes its original under msg_reorder.
class ControlDedup {
 public:
  /// True if (src, seq) is fresh (first sighting); false for a duplicate.
  /// seq == 0 (unsequenced, e.g. a fault-free sender) always passes.
  bool accept(net::NodeId src, std::uint64_t seq) {
    if (seq == 0) return true;
    PerSrc& st = seen_[src];
    if (seq > st.high) {
      const std::uint64_t shift = seq - st.high;
      // Slide the window up; the old high-water seq becomes bit 0.
      st.window = shift >= 64 ? 0 : (st.window << shift) | (1ull << (shift - 1));
      st.high = seq;
      return true;
    }
    if (seq == st.high) {
      ++duplicates_;
      return false;
    }
    const std::uint64_t offset = st.high - seq;  // >= 1
    if (offset > 64) {
      // Older than the window tracks: treat as duplicate — a live protocol
      // never legitimately delivers a frame 64 control messages late.
      ++duplicates_;
      return false;
    }
    const std::uint64_t bit = 1ull << (offset - 1);
    if (st.window & bit) {
      ++duplicates_;
      return false;
    }
    st.window |= bit;
    return true;
  }

  void reset() { seen_.clear(); }
  std::uint64_t duplicates() const { return duplicates_; }

 private:
  struct PerSrc {
    std::uint64_t high = 0;    // highest seq accepted
    std::uint64_t window = 0;  // bit i set => seq high-1-i already seen
  };
  std::map<net::NodeId, PerSrc> seen_;
  std::uint64_t duplicates_ = 0;
};

}  // namespace wgtt::core
