#include "core/dedup.h"

namespace wgtt::core {

Deduplicator::Deduplicator(Time window) : window_(window) {}

void Deduplicator::expire(Time now) {
  while (!order_.empty() && now - order_.front().first > window_) {
    keys_.erase(order_.front().second);
    order_.pop_front();
  }
}

bool Deduplicator::is_duplicate(const net::Packet& pkt, Time now) {
  if (!needs_dedup(pkt)) return false;
  expire(now);
  const std::uint64_t key = net::dedup_key(pkt);
  if (keys_.count(key) != 0) {
    ++dropped_;
    return true;
  }
  keys_.insert(key);
  order_.emplace_back(now, key);
  return false;
}

}  // namespace wgtt::core
