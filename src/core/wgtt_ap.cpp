#include "core/wgtt_ap.h"

#include <cassert>
#include <utility>

#include "phy/esnr.h"
#include "util/logging.h"

namespace wgtt::core {

WgttAp::WgttAp(sim::Scheduler& sched, net::Backhaul& backhaul,
               mac::WifiDevice& device, WgttApConfig cfg)
    : sched_(sched),
      backhaul_(backhaul),
      device_(device),
      cfg_(std::move(cfg)),
      rng_(0xA9000ull + cfg_.id) {
  recorder_ = net::FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
  backhaul_.attach(cfg_.id, [this](const net::TunneledPacket& frame) {
    on_backhaul_frame(frame);
  });
  device_.on_frame_heard = [this](const mac::RxMeta& meta) {
    on_frame_heard(meta);
  };
  device_.on_deliver = [this](net::PacketPtr pkt, const mac::RxMeta& meta) {
    on_uplink_deliver(std::move(pkt), meta);
  };
  device_.on_overheard_block_ack = [this](const mac::BlockAckInfo& ba,
                                          const mac::RxMeta& meta) {
    on_overheard_block_ack(ba, meta);
  };
  device_.on_management = [this](net::PacketPtr pkt, const mac::RxMeta& meta) {
    on_management(std::move(pkt), meta);
  };
  // Fault wiring: only when this sim injects faults does the AP register a
  // crash callback and start heartbeating (fault-free runs schedule nothing).
  injector_ = net::FaultInjector::current();
  if (injector_ != nullptr) {
    injector_->on_ap_fault(cfg_.id, [this](bool down) { on_fault(down); });
    sched_.schedule(cfg_.heartbeat_period, [this]() { heartbeat_tick(); });
    if (auto* reg = metrics::MetricsRegistry::current()) {
      m_dup_suppressed_ = &reg->counter("controller.protocol.dup_suppressed");
      m_stale_rejected_ = &reg->counter("controller.protocol.stale_rejected");
    }
  }
}

void WgttAp::on_fault(bool down) {
  down_ = down;
  device_.set_down(down);
  if (down) {
    ++stats_.fault_crashes;
    // Crash semantics: every queued packet dies with the AP — cyclic and
    // kernel queues both, each recorded with the fault_injected drop cause.
    for (auto& [client, st] : stacks_) {
      (void)client;
      stats_.crash_purged_packets += st->purge(net::DropCause::kFaultInjected);
    }
    WGTT_LOG(kInfo, "ap", "ap " << cfg_.id << " crashed");
  } else {
    // Recovery: associations survive (sta_info is replicated state), queues
    // restart empty; the controller's fan-out refills them.  Announce the
    // rejoin with an unsolicited state report (epoch 0) so the controller
    // can quench us if it failed our clients over while we were dark.
    WGTT_LOG(kInfo, "ap", "ap " << cfg_.id << " recovered");
    send_resync_report(0);
  }
}

void WgttAp::heartbeat_tick() {
  if (!down_) {
    ++stats_.heartbeats_sent;
    net::Packet p;
    p.type = net::PacketType::kHeartbeat;
    p.size_bytes = HeartbeatMsg::kWireBytes;
    HeartbeatMsg msg;
    msg.ap = cfg_.id;
    p.payload = msg;
    send_to(cfg_.controller, std::move(p));
  }
  // Keep ticking while down so heartbeats resume the instant the AP does.
  sched_.schedule(cfg_.heartbeat_period, [this]() { heartbeat_tick(); });
}

Time WgttAp::control_delay() {
  Time d = cfg_.control_processing;
  if (cfg_.control_jitter > Time::zero()) {
    d += Time::ns(rng_.uniform_int(0, cfg_.control_jitter.to_ns()));
  }
  return d;
}

bool WgttAp::active_for(net::NodeId client) const {
  auto it = active_ap_.find(client);
  return it != active_ap_.end() && it->second == cfg_.id;
}

bool WgttAp::transmitting(net::NodeId client) const {
  if (down_) return false;
  auto it = stacks_.find(client);
  return it != stacks_.end() && it->second->active() &&
         !device_.shadow_stream(client);
}

const ApQueueStack* WgttAp::stack_for(net::NodeId client) const {
  auto it = stacks_.find(client);
  return it == stacks_.end() ? nullptr : it->second.get();
}

ApQueueStack& WgttAp::stack(net::NodeId client) {
  auto it = stacks_.find(client);
  if (it == stacks_.end()) {
    it = stacks_
             .emplace(client, std::make_unique<ApQueueStack>(
                                  sched_, device_, client, cfg_.stack))
             .first;
  }
  return *it->second;
}

void WgttAp::send_to(net::NodeId dst, net::Packet fields) {
  fields.src = cfg_.id;
  fields.dst = dst;
  fields.created = sched_.now();
  // Hardened runs: per-link seq for dup suppression, plus the highest
  // controller epoch we have seen (relays inherit it; 0 until heard).
  if (injector_ != nullptr && sequenced_control(fields.type)) {
    fields.ctrl_seq = ctrl_seq_.next(dst);
    fields.ctrl_epoch = epoch_seen_;
  }
  backhaul_.send(net::encapsulate(net::make_packet(std::move(fields)),
                                  cfg_.id, dst));
}

// ---------------------------------------------------------------------------
// Backhaul reception
// ---------------------------------------------------------------------------

void WgttAp::on_backhaul_frame(const net::TunneledPacket& frame) {
  net::PacketPtr inner = net::decapsulate(frame);
  if (down_) {
    // A crashed AP consumes nothing: data dies (with a drop record for the
    // autopsy), control vanishes — the sender's timeout machinery copes.
    if (health_ && net::flight_recorded(inner->type)) {
      health_->packet_dropped();
    }
    if (recorder_ && net::flight_recorded(inner->type)) {
      recorder_->drop(inner->uid, sched_.now(), net::Hop::kApDrop, cfg_.id,
                      net::DropCause::kFaultInjected,
                      {{"client", inner->dst}, {"index", inner->index}});
    }
    return;
  }
  if (injector_ != nullptr && sequenced_control(inner->type)) {
    // Duplicate suppression before dispatch: an adversarial duplicate
    // carries its original's seq (a retransmission carries a fresh one).
    if (!ctrl_dedup_.accept(frame.outer_src, inner->ctrl_seq)) {
      ++stats_.ctrl_dups_suppressed;
      if (m_dup_suppressed_) m_dup_suppressed_->add();
      return;
    }
    // Coarse epoch fence: a frame stamped before a controller restart is
    // stale wholesale (per-message (epoch, id) fences below catch the
    // finer-grained races inside one epoch).
    if (inner->ctrl_epoch != 0) {
      if (inner->ctrl_epoch < epoch_seen_) {
        ++stats_.stale_epoch_rejected;
        if (m_stale_rejected_) m_stale_rejected_->add();
        return;
      }
      epoch_seen_ = inner->ctrl_epoch;
    }
  }
  switch (inner->type) {
    case net::PacketType::kData:
      handle_downlink_data(std::move(inner));
      return;
    case net::PacketType::kStop:
      // Control packets are prioritized: they bypass the cyclic queue and
      // are handled after only the processing latency (§3.1.2).
      if (const auto* msg = net::payload_as<StopMsg>(*inner)) {
        StopMsg m = *msg;
        sched_.schedule(control_delay(), [this, m]() { handle_stop(m); });
      }
      return;
    case net::PacketType::kStart:
      if (const auto* msg = net::payload_as<StartMsg>(*inner)) {
        StartMsg m = *msg;
        sched_.schedule(control_delay(), [this, m]() { handle_start(m); });
      }
      return;
    case net::PacketType::kBlockAckFwd:
      if (const auto* msg = net::payload_as<BaForwardMsg>(*inner)) {
        handle_ba_forward(*msg);
      }
      return;
    case net::PacketType::kAssocSync:
      if (const auto* msg = net::payload_as<AssocSyncMsg>(*inner)) {
        handle_assoc_sync(*msg);
      }
      return;
    case net::PacketType::kActiveAp:
      if (const auto* msg = net::payload_as<ActiveApMsg>(*inner)) {
        handle_active_ap(*msg);
      }
      return;
    case net::PacketType::kResync:
      // Warm-restart state query: answer over the same prioritized control
      // path as stop/start (the report is control-plane work too).
      if (const auto* msg = net::payload_as<ResyncRequestMsg>(*inner)) {
        const std::uint32_t epoch = msg->epoch;
        sched_.schedule(control_delay(), [this, epoch]() {
          if (!down_) send_resync_report(epoch);
        });
      }
      return;
    default:
      return;
  }
}

void WgttAp::handle_downlink_data(net::PacketPtr pkt) {
  const net::NodeId client = pkt->dst;
  if (!assoc_.known(client)) {
    // Shouldn't normally happen: the controller only forwards for
    // associated clients.  Drop rather than queue for a stranger.
    if (health_) health_->packet_dropped();
    if (recorder_) {
      recorder_->drop(pkt->uid, sched_.now(), net::Hop::kApDrop, cfg_.id,
                      net::DropCause::kUnknownClient,
                      {{"client", client}, {"index", pkt->index}});
    }
    return;
  }
  ++stats_.downlink_packets_buffered;
  const std::uint32_t index = pkt->index;
  stack(client).on_downlink(index, std::move(pkt));
}

void WgttAp::handle_stop(const StopMsg& msg) {
  if (injector_ != nullptr &&
      !fence_accept(msg.client, msg.epoch, msg.switch_id)) {
    // A stop from an already-superseded switch (delayed past a newer one by
    // msg_reorder, or from before a controller restart).  Obeying it would
    // silence the transmitter the newer switch installed.
    ++stats_.stale_stops_rejected;
    if (m_stale_rejected_) m_stale_rejected_->add();
    return;
  }
  ++stats_.stops_handled;
  if (causal_) {
    causal_->annotate("ap.stop", {{"ap", cfg_.id},
                                  {"client", msg.client},
                                  {"quench", msg.quench ? 1 : 0}});
  }
  // Query the kernel for the first unsent index (the ioctl), then flush and
  // hand over.  A repeated stop (the controller's ack timeout fired) takes
  // the same path: the stack is already inactive, so next_nic_index()
  // re-derives the same k and start(c, k) is simply re-sent.
  sched_.schedule(cfg_.ioctl_delay, [this, msg]() {
    // A quench that raced a restart: the controller re-selected this AP and
    // its start(c) was processed first.  We are the active transmitter again
    // — obeying the stale quench would silence the client's only AP.
    if (msg.quench && active_for(msg.client)) return;
    ApQueueStack& st = stack(msg.client);
    // Quench deactivations (start-first styles) rewind the kernel stage into
    // the cyclic ring instead of flushing it: this AP stays a live fallback
    // and its next resume-from-head must restart at the true first-unsent
    // index.  Relay stops keep the paper's flush semantics — the successor
    // resumes from the relayed k, so local copies are pure duplicates.
    const std::uint32_t k = st.active() ? st.deactivate(msg.quench)
                                        : st.next_nic_index();
    if (causal_) {
      causal_->annotate("ap.ioctl",
                        {{"ap", cfg_.id},
                         {"client", msg.client},
                         {"k", static_cast<std::int64_t>(k)}});
    }
    stats_.kernel_packets_flushed = st.kernel_flushed();
    active_ap_[msg.client] = msg.next_ap;

    // Let the NIC queue drain over the air (§3.1.2: "these packets take
    // 6 ms to deliver"), then flush the remainder — the next AP already
    // owns those indices, and lingering retries would interfere with it.
    sched_.schedule(cfg_.nic_drain_window, [this, client = msg.client]() {
      if (!active_for(client)) device_.flush_queue(client);
      // End of any overlap window: the frames drained above were the last
      // shadow-stream transmissions (no-op outside start-first styles).
      device_.set_shadow_stream(client, false);
    });

    // Quench (start-first handoff styles): the successor already activated
    // via a controller-originated start, so there is nobody to relay to.
    if (msg.quench) {
      ++stats_.quench_stops_handled;
      return;
    }
    net::Packet p;
    p.type = net::PacketType::kStart;
    p.size_bytes = StartMsg::kWireBytes;
    StartMsg start;
    start.client = msg.client;
    start.first_unsent_index = k;
    start.switch_id = msg.switch_id;
    start.epoch = msg.epoch;
    start.from_ap = cfg_.id;
    p.payload = start;
    send_to(msg.next_ap, std::move(p));
  });
}

void WgttAp::handle_start(const StartMsg& msg) {
  if (injector_ != nullptr &&
      !fence_accept(msg.client, msg.epoch, msg.switch_id)) {
    // The pre-hardening bug: a stale start (a reordered duplicate of an old
    // switch, or one relayed across a controller restart) used to activate
    // this AP unconditionally, leaving two APs transmitting to the client
    // under the shared BSSID.  Fence it off instead.
    ++stats_.stale_starts_rejected;
    if (m_stale_rejected_) m_stale_rejected_->add();
    return;
  }
  ++stats_.starts_handled;
  active_ap_[msg.client] = cfg_.id;
  // Becoming the active member of the BSSID again ends any shadow window
  // left over from a prior overlap switch away from this AP.
  device_.set_shadow_stream(msg.client, false);
  ApQueueStack& st = stack(msg.client);
  // Resume-from-head starts (failover and start-first styles): no
  // first-unsent index was relayed, so restart from our own cyclic head —
  // which quench deactivations keep rewound to this AP's true first-unsent
  // position.
  const std::uint32_t k = msg.first_unsent_index == kResumeHeadIndex
                              ? st.cyclic().head()
                              : msg.first_unsent_index;
  if (causal_) {
    causal_->annotate("ap.start",
                      {{"ap", cfg_.id},
                       {"client", msg.client},
                       {"index", static_cast<std::int64_t>(k)}});
  }
  st.activate(k);

  net::Packet p;
  p.type = net::PacketType::kSwitchAck;
  p.size_bytes = SwitchAckMsg::kWireBytes;
  SwitchAckMsg ack;
  ack.client = msg.client;
  ack.new_ap = cfg_.id;
  ack.switch_id = msg.switch_id;
  ack.epoch = msg.epoch;
  p.payload = ack;
  send_to(cfg_.controller, std::move(p));
}

void WgttAp::handle_active_ap(const ActiveApMsg& msg) {
  if (injector_ != nullptr && msg.version != 0) {
    // (epoch, version) fence: a reordered older broadcast must not roll the
    // active-AP map back.  Versions restart per epoch (the controller wipes
    // client state on crash), hence the lexicographic pair.
    const auto stamp = std::make_pair(msg.epoch, msg.version);
    auto it = active_fence_.find(msg.client);
    if (it != active_fence_.end() && stamp < it->second) {
      ++stats_.stale_actives_rejected;
      if (m_stale_rejected_) m_stale_rejected_->add();
      return;
    }
    active_fence_[msg.client] = stamp;
  }
  active_ap_[msg.client] = msg.active_ap;
  if (msg.bootstrap && msg.active_ap == cfg_.id) {
    ApQueueStack& st = stack(msg.client);
    if (!st.active()) st.activate(st.cyclic().head());
  }
  // Overlap switch styles (make-before-break / bicast): we are the outgoing
  // AP and deliberately still transmitting until the quench lands.  Drop out
  // of the shared-BSSID illusion for this client — our remaining downlink
  // frames deliver under our own id as the reorder stream, so the client
  // sees a second independent transmitter (as in a classic double
  // association) and its IP-layer dedup, not the shared BA reorder buffer,
  // absorbs the duplicate copies.  Failover broadcasts have overlap unset,
  // so a falsely-suspected incumbent is unaffected.
  if (msg.overlap && msg.active_ap != cfg_.id) {
    auto it = stacks_.find(msg.client);
    if (it != stacks_.end() && it->second->active()) {
      device_.set_shadow_stream(msg.client, true);
    }
  } else if (msg.active_ap == cfg_.id) {
    device_.set_shadow_stream(msg.client, false);
  }
}

void WgttAp::handle_assoc_sync(const AssocSyncMsg& msg) {
  assoc_.add(msg.info);
}

bool WgttAp::fence_accept(net::NodeId client, std::uint32_t epoch,
                          std::uint32_t switch_id) {
  const auto stamp = std::make_pair(epoch, switch_id);
  auto it = switch_fence_.find(client);
  if (it != switch_fence_.end() && stamp < it->second) return false;
  switch_fence_[client] = stamp;
  return true;
}

void WgttAp::send_resync_report(std::uint32_t epoch) {
  ++stats_.resync_reports_sent;
  ResyncReportMsg report;
  report.ap = cfg_.id;
  report.epoch = epoch;
  for (net::NodeId client : assoc_.clients()) {
    const StaInfo* info = assoc_.find(client);
    if (info == nullptr) continue;
    ResyncEntry entry;
    entry.info = *info;
    auto it = stacks_.find(client);
    entry.active = it != stacks_.end() && it->second->active();
    report.entries.push_back(entry);
  }
  if (causal_) {
    causal_->annotate("ap.resync_report",
                      {{"ap", cfg_.id},
                       {"epoch", epoch},
                       {"entries",
                        static_cast<std::int64_t>(report.entries.size())}});
  }
  net::Packet p;
  p.type = net::PacketType::kResync;
  p.size_bytes = ResyncReportMsg::kWireBytes +
                 report.entries.size() * ResyncReportMsg::kEntryWireBytes;
  p.payload = std::move(report);
  send_to(cfg_.controller, std::move(p));
}

void WgttAp::handle_ba_forward(const BaForwardMsg& msg) {
  // Duplicate check: same BA may arrive from several monitor APs (§3.2.1:
  // "AP1 first checks whether this Block ACK has been received before").
  auto it = seen_ba_.find(msg.ba.client);
  const Time now = sched_.now();
  if (it != seen_ba_.end() && it->second.start_seq == msg.ba.start_seq &&
      it->second.bitmap == msg.ba.bitmap.to_ullong() &&
      now - it->second.when <= cfg_.ba_dedup_window) {
    ++stats_.forwarded_bas_duplicate;
    return;
  }
  seen_ba_[msg.ba.client] =
      SeenBa{msg.ba.start_seq, msg.ba.bitmap.to_ullong(), now};
  if (device_.apply_external_block_ack(msg.ba)) {
    ++stats_.forwarded_bas_applied;
  }
}

// ---------------------------------------------------------------------------
// Radio-side events
// ---------------------------------------------------------------------------

void WgttAp::on_frame_heard(const mac::RxMeta& meta) {
  if (cfg_.feed_esnr_to_rate_control) {
    device_.update_peer_esnr(meta.transmitter,
                             phy::selection_esnr_db(meta.csi), sched_.now());
  }
  // Every decoded client frame yields a CSI report to the controller.
  ++stats_.csi_reports_sent;
  phy::Csi csi = meta.csi;
  if (injector_ != nullptr) {
    // CSI extraction faults corrupt the *reporting* path (the firmware-side
    // tool wedging), not the radio itself.
    switch (injector_->csi_mode(cfg_.id)) {
      case net::CsiFaultMode::kFreeze: {
        auto it = last_csi_.find(meta.transmitter);
        if (it != last_csi_.end()) csi = it->second;
        break;
      }
      case net::CsiFaultMode::kGarbage: {
        Rng& rng = injector_->rng();
        for (double& snr : csi.subcarrier_snr_db) {
          snr = rng.uniform(-10.0, 40.0);
        }
        break;
      }
      case net::CsiFaultMode::kNormal:
        last_csi_[meta.transmitter] = csi;
        break;
    }
  }
  net::Packet p;
  p.type = net::PacketType::kCsiReport;
  p.size_bytes = CsiReportMsg::kWireBytes;
  CsiReportMsg msg;
  msg.ap = cfg_.id;
  msg.client = meta.transmitter;
  msg.csi = csi;
  p.payload = msg;
  send_to(cfg_.controller, std::move(p));
}

void WgttAp::on_uplink_deliver(net::PacketPtr pkt, const mac::RxMeta& meta) {
  (void)meta;
  // §3.2.2: encapsulate with this AP as outer source, controller as outer
  // destination, and let the controller de-duplicate.
  ++stats_.uplink_packets_tunneled;
  backhaul_.send(net::encapsulate(std::move(pkt), cfg_.id, cfg_.controller));
}

void WgttAp::on_overheard_block_ack(const mac::BlockAckInfo& ba,
                                    const mac::RxMeta& meta) {
  (void)meta;
  if (!cfg_.enable_ba_forwarding) return;
  // Forward to the client's active AP — unless that is us (our AP-mode
  // interface already saw or missed it; forwarding to ourselves is useless).
  auto it = active_ap_.find(ba.client);
  if (it == active_ap_.end() || it->second == cfg_.id) return;
  ++stats_.block_acks_forwarded;
  net::Packet p;
  p.type = net::PacketType::kBlockAckFwd;
  p.size_bytes = BaForwardMsg::kWireBytes;
  BaForwardMsg msg;
  msg.ba = ba;
  msg.from_ap = cfg_.id;
  p.payload = msg;
  send_to(it->second, std::move(p));
}

void WgttAp::on_management(net::PacketPtr pkt, const mac::RxMeta& meta) {
  const auto* req = net::payload_as<AssocRequestMsg>(*pkt);
  if (!req) return;  // null keepalives etc. only matter as CSI sources
  (void)meta;
  StaInfo info;
  info.client = req->client;
  info.authorized = true;
  info.associated_at = sched_.now();
  info.associating_ap = cfg_.id;
  info.aid = next_aid_++;
  const bool is_new = assoc_.add(info);

  // Respond over the air.
  net::Packet resp;
  resp.type = net::PacketType::kMgmt;
  resp.src = cfg_.id;
  resp.dst = req->client;
  resp.size_bytes = 64;
  resp.created = sched_.now();
  AssocResponseMsg body;
  body.ap = cfg_.id;
  body.aid = info.aid;
  body.success = true;
  resp.payload = body;
  device_.send_management(req->client, net::make_packet(std::move(resp)));

  if (is_new) {
    // Replicate sta_info to peers (§4.3) and tell the controller.
    for (net::NodeId peer : cfg_.peer_aps) {
      net::Packet p;
      p.type = net::PacketType::kAssocSync;
      p.size_bytes = AssocSyncMsg::kWireBytes;
      p.payload = AssocSyncMsg{info};
      send_to(peer, std::move(p));
    }
    net::Packet p;
    p.type = net::PacketType::kAssocSync;
    p.size_bytes = ClientJoinedMsg::kWireBytes;
    p.payload = ClientJoinedMsg{info};
    send_to(cfg_.controller, std::move(p));
  }
}

}  // namespace wgtt::core
