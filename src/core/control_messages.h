// Control-plane message bodies exchanged between the WGTT controller and
// APs over the Ethernet backhaul.  Each rides in a net::Packet's payload;
// the PacketType identifies which struct to expect.
//
// Wire sizes below are what the real UDP encodings would occupy; they feed
// the backhaul serialization model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/association.h"
#include "mac/block_ack.h"
#include "net/packet.h"
#include "phy/csi.h"

namespace wgtt::core {

/// Controller -> AP1: cease sending to `client`; hand over to `next_ap`
/// (§3.1.2 step 1).  The stop packet carries the L2 addresses of both.
struct StopMsg {
  net::NodeId client = 0;
  net::NodeId next_ap = 0;
  std::uint32_t switch_id = 0;
  /// Start-first handoff styles (make-before-break / bicast): `next_ap` is
  /// already transmitting, so deactivate and flush but relay no start(c, k).
  bool quench = false;
  /// Controller fencing epoch (0 = unfenced, the fault-free wire format).
  /// Stamped only by the hardened control plane; receivers reject strictly
  /// older (epoch, switch_id) pairs.  Packs into the spare wire bytes —
  /// kWireBytes feeds the backhaul timing model and must not change.
  std::uint32_t epoch = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// Sentinel `first_unsent_index`: the predecessor AP is dead, so no ioctl
/// k exists — the new AP resumes from its own cyclic-queue head.  Used by
/// the controller's liveness failover (which sends start directly, skipping
/// stop).  Outside the 12-bit index space, so it can never collide.
constexpr std::uint32_t kResumeHeadIndex = 0xFFFFFFFFu;

/// AP1 -> AP2: begin transmitting to `client` from cyclic index `k`
/// (§3.1.2 step 2).  On failover the controller originates this message
/// itself with `first_unsent_index = kResumeHeadIndex` and `from_ap = 0`.
struct StartMsg {
  net::NodeId client = 0;
  std::uint32_t first_unsent_index = 0;  // k
  std::uint32_t switch_id = 0;
  net::NodeId from_ap = 0;
  /// Controller fencing epoch, relayed from the stop(c) that caused this
  /// start (0 = unfenced; packs into spare wire bytes).
  std::uint32_t epoch = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// AP2 -> controller: switch complete (§3.1.2 step 3).
struct SwitchAckMsg {
  net::NodeId client = 0;
  net::NodeId new_ap = 0;
  std::uint32_t switch_id = 0;
  /// Echo of the start's fencing epoch (0 = unfenced; spare wire bytes).  A
  /// restarted controller uses it to reject acks from before its crash.
  std::uint32_t epoch = 0;
  static constexpr std::size_t kWireBytes = 20;
};

/// AP -> controller: CSI of an overheard client uplink frame (§3.1.1).
/// 56 subcarriers x (2 bytes each) + addressing.
struct CsiReportMsg {
  net::NodeId ap = 0;
  net::NodeId client = 0;
  phy::Csi csi;
  static constexpr std::size_t kWireBytes = 20 + 2 * phy::kNumSubcarriers;
};

/// Monitor AP -> active AP: an overheard Block ACK (§3.2.1) — client
/// address, starting sequence number, and the 64-bit bitmap.
struct BaForwardMsg {
  mac::BlockAckInfo ba;
  net::NodeId from_ap = 0;
  static constexpr std::size_t kWireBytes = 28;
};

/// Associating AP -> peers: replicated sta_info (§4.3).
struct AssocSyncMsg {
  StaInfo info;
  static constexpr std::size_t kWireBytes = 64;
};

/// Associating AP -> controller: a client finished associating with us.
struct ClientJoinedMsg {
  StaInfo info;
  static constexpr std::size_t kWireBytes = 64;
};

/// Controller -> all APs: who currently transmits to `client` (keeps the
/// Block-ACK forwarding target and monitor filtering current).
struct ActiveApMsg {
  net::NodeId client = 0;
  net::NodeId active_ap = 0;
  /// First activation after association: the named AP must activate its
  /// queue stack in place (no start(c, k) will arrive).
  bool bootstrap = false;
  /// This switch used a start-first style (make-before-break / bicast): the
  /// outgoing AP is deliberately still transmitting until its quench lands.
  /// It should shadow its remaining downlink frames (deliver them under its
  /// own id, not the shared BSSID) so the client sees a second independent
  /// transmitter and its IP-layer dedup absorbs the duplicates.  Failover
  /// broadcasts leave this false: a falsely-suspected incumbent keeps the
  /// shared-BSSID behaviour.
  bool overlap = false;
  /// Per-client monotonic broadcast version (hardened runs only; 0 =
  /// unfenced).  A reordered older broadcast must not overwrite a newer
  /// active-AP belief at the receiving AP.  Packs into the 6 spare wire
  /// bytes — kWireBytes is part of the timing model and must not change.
  std::uint32_t version = 0;
  /// Controller fencing epoch the version counts within: versions restart
  /// at 1 after a warm restart, so receivers order by (epoch, version).
  std::uint32_t epoch = 0;
  static constexpr std::size_t kWireBytes = 16;
};

/// AP -> controller: periodic liveness beacon.  Sent at the controller's
/// heartbeat period (<= the CSI-report cadence) whenever the AP is up; the
/// controller's liveness monitor marks an AP suspect after missing K.
struct HeartbeatMsg {
  net::NodeId ap = 0;
  static constexpr std::size_t kWireBytes = 12;
};

/// Controller -> all APs after a warm restart (ctrl_crash clear): report
/// your replicated client state.  `epoch` is the restarted controller's new
/// fencing epoch; the reply must echo it so a delayed report from before an
/// even later restart cannot poison the rebuild.
struct ResyncRequestMsg {
  std::uint32_t epoch = 0;
  static constexpr std::size_t kWireBytes = 12;
};

/// One client's replicated state at an AP: the §4.3 sta_info plus whether
/// this AP's queue stack is actively transmitting to the client.
struct ResyncEntry {
  StaInfo info;
  bool active = false;
};

/// AP -> controller: full replicated-state report.  Sent in response to a
/// ResyncRequestMsg (epoch echoed), and unsolicited with epoch = 0 when the
/// AP itself recovers from a crash (rejoin — lets the controller re-start
/// clients stranded on a recovered AP whose stacks were purged).
struct ResyncReportMsg {
  net::NodeId ap = 0;
  std::uint32_t epoch = 0;
  std::vector<ResyncEntry> entries;
  /// Base wire size; each entry adds one replicated sta_info record.
  static constexpr std::size_t kWireBytes = 16;
  static constexpr std::size_t kEntryWireBytes = 72;
};

/// Over-the-air management bodies (client association handshake).
struct AssocRequestMsg {
  net::NodeId client = 0;
};
struct AssocResponseMsg {
  net::NodeId ap = 0;
  std::uint16_t aid = 0;
  bool success = false;
};

}  // namespace wgtt::core
