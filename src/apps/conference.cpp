#include "apps/conference.h"

#include <algorithm>
#include <cmath>

namespace wgtt::apps {

ConferenceApp::ConferenceApp(sim::Scheduler& sched,
                             transport::IpIdAllocator& ip_ids,
                             ConferenceConfig cfg)
    : sched_(sched), ip_ids_(ip_ids), cfg_(cfg) {
  health_ = obs::HealthEngine::current();
}

void ConferenceApp::start() {
  if (running_) return;
  running_ = true;
  send_frame();
  sched_.schedule(Time::sec(1), [this]() { sample_fps(); });
  if (cfg_.adaptive) {
    sched_.schedule(cfg_.adaptation_period, [this]() { adapt(); });
  }
}

void ConferenceApp::send_frame() {
  if (!running_) return;
  const double nominal_frame_bytes =
      cfg_.nominal_bitrate_bps / 8.0 / cfg_.frame_rate;
  const auto frame_bytes = static_cast<std::size_t>(
      std::max(200.0, nominal_frame_bytes * scale_));
  const std::size_t fragments =
      (frame_bytes + cfg_.fragment_bytes - 1) / cfg_.fragment_bytes;
  const std::uint64_t frame_id = frames_sent_++;
  ++frames_sent_this_period_;

  for (std::size_t f = 0; f < fragments; ++f) {
    net::Packet p;
    p.type = net::PacketType::kData;
    p.src = cfg_.src;
    p.dst = cfg_.dst;
    p.flow_id = cfg_.flow_id;
    // seq encodes (frame, fragment, count) — 16 bits each is plenty.
    p.seq = (frame_id << 32) | (static_cast<std::uint64_t>(f) << 16) |
            fragments;
    p.ip_id = ip_ids_.next(cfg_.src);
    const std::size_t remaining = frame_bytes - f * cfg_.fragment_bytes;
    p.size_bytes = std::min(cfg_.fragment_bytes, remaining) + 28;
    p.created = sched_.now();
    if (transmit) {
      if (health_) health_->packet_sent();
      transmit(net::make_packet(std::move(p)));
    }
  }
  sched_.schedule(Time::sec(1.0 / cfg_.frame_rate), [this]() { send_frame(); });
}

void ConferenceApp::on_packet(const net::PacketPtr& pkt) {
  if (health_) health_->packet_delivered();
  const std::uint64_t frame_id = pkt->seq >> 32;
  const std::size_t fragments = pkt->seq & 0xFFFF;
  FrameProgress& fp = pending_[frame_id];
  fp.fragments_expected = fragments;
  if (++fp.fragments_received >= fp.fragments_expected) {
    ++frames_rendered_;
    ++rendered_this_second_;
    ++frames_rendered_this_period_;
    pending_.erase(frame_id);
  }
  // Garbage-collect frames that will never complete (old ids).
  while (!pending_.empty() &&
         pending_.begin()->first + 120 < frames_sent_) {
    pending_.erase(pending_.begin());
  }
}

void ConferenceApp::sample_fps() {
  if (!running_) return;
  fps_samples_.add(static_cast<double>(rendered_this_second_));
  rendered_this_second_ = 0;
  sched_.schedule(Time::sec(1), [this]() { sample_fps(); });
}

void ConferenceApp::adapt() {
  if (!running_) return;
  if (frames_sent_this_period_ > 0) {
    const double delivery =
        static_cast<double>(frames_rendered_this_period_) /
        static_cast<double>(frames_sent_this_period_);
    if (delivery < 0.9) {
      scale_ = std::max(cfg_.min_scale, scale_ * 0.7);  // drop resolution
    } else if (delivery > 0.95) {
      scale_ = std::min(1.0, scale_ * 1.1);  // recover resolution
    }
  }
  frames_sent_this_period_ = 0;
  frames_rendered_this_period_ = 0;
  sched_.schedule(cfg_.adaptation_period, [this]() { adapt(); });
}

}  // namespace wgtt::apps
