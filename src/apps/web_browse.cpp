#include "apps/web_browse.h"

namespace wgtt::apps {

WebBrowseApp::WebBrowseApp(sim::Scheduler& sched,
                           transport::IpIdAllocator& ip_ids,
                           transport::TcpConfig tcp_cfg, WebBrowseConfig cfg)
    : sched_(sched), ip_ids_(ip_ids), cfg_(cfg) {
  health_ = obs::HealthEngine::current();
  object_bytes_ = cfg_.page_bytes / cfg_.num_objects;
  conns_.reserve(cfg_.parallel_connections);
  conn_outstanding_bytes_.assign(cfg_.parallel_connections, 0);
  conn_got_bytes_.assign(cfg_.parallel_connections, false);
  for (std::size_t i = 0; i < cfg_.parallel_connections; ++i) {
    auto conn = std::make_unique<transport::TcpConnection>(
        sched, ip_ids, tcp_cfg,
        cfg_.first_flow_id + static_cast<std::uint32_t>(i), cfg_.server,
        cfg_.client);
    conn->on_app_receive = [this, i](std::size_t bytes, Time) {
      on_object_bytes(i, bytes);
    };
    conns_.push_back(std::move(conn));
  }
}

void WebBrowseApp::start() {
  if (started_flag_) return;
  started_flag_ = true;
  started_ = sched_.now();
  for (std::size_t i = 0; i < conns_.size(); ++i) issue_next_request(i);
}

void WebBrowseApp::issue_next_request(std::size_t conn_index) {
  if (next_object_ >= cfg_.num_objects) return;
  const std::size_t object = next_object_++;
  conn_outstanding_bytes_[conn_index] = object_bytes_;
  conn_got_bytes_[conn_index] = false;
  send_request(conn_index, object, cfg_.request_timeout);
}

void WebBrowseApp::send_request(std::size_t conn_index, std::size_t object,
                                Time timeout) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = cfg_.client;
  p.dst = cfg_.server;
  p.flow_id = conns_[conn_index]->flow_id();
  p.seq = object;
  p.ip_id = ip_ids_.next(cfg_.client);
  p.size_bytes = cfg_.request_bytes;
  p.created = sched_.now();
  p.payload = WebRequestMsg{object, conns_[conn_index]->flow_id()};
  if (transmit_request) {
    if (health_) health_->packet_sent();
    transmit_request(net::make_packet(std::move(p)));
  }

  // Retry with exponential backoff until the response starts flowing.
  sched_.schedule(timeout, [this, conn_index, object, timeout]() {
    if (loaded_ || conn_got_bytes_[conn_index]) return;
    if (conn_outstanding_bytes_[conn_index] == 0) return;  // done already
    send_request(conn_index, object,
                 std::min(timeout * 2.0, Time::sec(8)));
  });
}

void WebBrowseApp::on_request(const WebRequestMsg& req) {
  // The request packet reached the server: its ledger instance terminates
  // here even when the object was already served by an earlier retry.
  if (health_) health_->packet_delivered();
  const std::size_t conn_index = req.flow_id - cfg_.first_flow_id;
  if (conn_index >= conns_.size()) return;
  // A retried request may arrive after the original: serve each object once.
  if (req.object_index >= served_.size()) served_.resize(cfg_.num_objects);
  if (served_[req.object_index]) return;
  served_[req.object_index] = true;
  conns_[conn_index]->app_send(object_bytes_);
}

void WebBrowseApp::on_object_bytes(std::size_t conn_index, std::size_t bytes) {
  if (loaded_) return;
  conn_got_bytes_[conn_index] = true;
  auto& remaining = conn_outstanding_bytes_[conn_index];
  remaining = bytes >= remaining ? 0 : remaining - bytes;
  if (remaining > 0) return;
  ++objects_completed_;
  if (objects_completed_ >= cfg_.num_objects) {
    loaded_ = true;
    load_time_ = sched_.now() - started_;
    if (on_page_loaded) on_page_loaded(load_time_);
    return;
  }
  issue_next_request(conn_index);
}

}  // namespace wgtt::apps
