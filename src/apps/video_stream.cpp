#include "apps/video_stream.h"

namespace wgtt::apps {

VideoStreamApp::VideoStreamApp(sim::Scheduler& sched,
                               transport::IpIdAllocator& ip_ids,
                               transport::TcpConfig tcp_cfg,
                               VideoStreamConfig cfg, std::uint32_t flow_id,
                               net::NodeId server, net::NodeId client)
    : sched_(sched),
      cfg_(cfg),
      conn_(sched, ip_ids, tcp_cfg, flow_id, server, client) {
  conn_.on_app_receive = [this](std::size_t bytes, Time when) {
    on_bytes(bytes, when);
  };
}

void VideoStreamApp::start() {
  started_ = true;
  stall_pending_refill_ = true;  // initial pre-buffering counts as not playing
  // The server streams the whole file as fast as TCP allows.
  conn_.app_send(std::size_t{1} << 38);
  tick();
}

void VideoStreamApp::on_bytes(std::size_t bytes, Time) {
  buffer_bytes_ += bytes;
}

void VideoStreamApp::tick() {
  if (!started_) return;
  const double prebuffer_bytes =
      cfg_.video_bitrate_bps / 8.0 * cfg_.prebuffer.to_sec();

  if (stall_pending_refill_) {
    if (static_cast<double>(buffer_bytes_) >= prebuffer_bytes) {
      stall_pending_refill_ = false;
      playing_ = true;
    }
  }

  if (playing_) {
    began_playback_ = true;
    const auto need = static_cast<std::uint64_t>(
        cfg_.video_bitrate_bps / 8.0 * cfg_.playback_tick.to_sec());
    if (buffer_bytes_ >= need) {
      buffer_bytes_ -= need;
      played_ += cfg_.playback_tick;
    } else {
      // Rebuffer: stop playback until the pre-buffer refills.
      playing_ = false;
      stall_pending_refill_ = true;
      ++rebuffer_events_;
      stalled_ += cfg_.playback_tick;
    }
  } else if (began_playback_) {
    // Initial pre-buffering is startup latency, not a rebuffer (the paper's
    // metric counts interruptions of playback).
    stalled_ += cfg_.playback_tick;
  }
  sched_.schedule(cfg_.playback_tick, [this]() { tick(); });
}

}  // namespace wgtt::apps
