// wgtt-report: analyzer for the BENCH_*.json reports the sweep benches emit.
//
//   wgtt-report show FILE
//       Pretty-print one report: sweep header, per-run metrics table, and
//       the aggregated host-time profile (where simulator CPU went).
//
//   wgtt-report diff BASELINE CURRENT [--tolerance PCT] [--soft]
//       Compare two reports of the same bench.  Schema mismatches (different
//       bench id, run count, or run labels) always fail with exit 2.
//       Performance regressions — sweep wall time, per-run wall time, or an
//       aggregated profile section slower than baseline by more than the
//       tolerance (default 25 %) — fail with exit 1, or only warn when
//       --soft is given (CI runners are noisy; schema breaks are not).
//       Deterministic simulation outputs (goodput, switch counts) that drift
//       between same-seed reports are reported as warnings.
//
// Exit codes: 0 ok / warnings only, 1 performance regression, 2 schema or
// usage error.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using wgtt::JsonValue;

struct ProfileTotals {
  std::vector<std::pair<std::string, std::int64_t>> sections;  // sorted desc
  std::int64_t total_ns = 0;
};

// Sum each profile section's self_ns across all runs of a report.
ProfileTotals aggregate_profile(const JsonValue& report) {
  std::map<std::string, std::int64_t> acc;
  if (const JsonValue* runs = report.find("runs"); runs && runs->is_array()) {
    for (const JsonValue& run : runs->as_array()) {
      const JsonValue* profile = run.find("profile");
      if (!profile) continue;
      const JsonValue* sections = profile->find("sections");
      if (!sections || !sections->is_object()) continue;
      for (const auto& [name, sec] : sections->as_object()) {
        acc[name] += static_cast<std::int64_t>(sec.number_or("self_ns", 0.0));
      }
    }
  }
  ProfileTotals out;
  for (const auto& [name, ns] : acc) {
    out.sections.emplace_back(name, ns);
    out.total_ns += ns;
  }
  std::sort(out.sections.begin(), out.sections.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

bool load_report(const std::string& path, JsonValue& out) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!wgtt::json_parse(text, out, &error)) {
    std::fprintf(stderr, "wgtt-report: %s: JSON parse error: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  if (!out.is_object() || !out.find("bench") || !out.find("runs") ||
      !out.find("runs")->is_array()) {
    std::fprintf(stderr,
                 "wgtt-report: %s: not a bench report (missing \"bench\" or "
                 "\"runs\")\n",
                 path.c_str());
    return false;
  }
  return true;
}

int cmd_show(const std::string& path) {
  JsonValue report;
  if (!load_report(path, report)) return 2;

  std::printf("bench:  %s\n", report.string_or("bench", "?").c_str());
  std::printf("title:  %s\n", report.string_or("title", "").c_str());
  std::printf("jobs:   %d    wall: %.1f ms\n",
              static_cast<int>(report.number_or("jobs", 0.0)),
              report.number_or("wall_ms", 0.0));
  if (const JsonValue* summary = report.find("summary");
      summary && summary->is_object() && !summary->as_object().empty()) {
    std::printf("summary:\n");
    for (const auto& [k, v] : summary->as_object()) {
      if (v.is_number()) std::printf("  %-32s %.4g\n", k.c_str(), v.as_number());
    }
  }

  const auto& runs = report.find("runs")->as_array();
  std::printf("\n%-28s %10s %8s %9s %9s %10s\n", "run", "goodput", "loss",
              "accuracy", "switches", "wall_ms");
  for (const JsonValue& run : runs) {
    std::printf("%-28s %10.2f %8.3f %9.3f %9d %10.1f\n",
                run.string_or("label", "?").c_str(),
                run.number_or("goodput_mbps", 0.0),
                run.number_or("udp_loss_rate", 0.0),
                run.number_or("switching_accuracy", 0.0),
                static_cast<int>(run.number_or("switches", 0.0)),
                run.number_or("wall_ms", 0.0));
  }

  const ProfileTotals profile = aggregate_profile(report);
  if (!profile.sections.empty()) {
    std::printf("\nprofile (host self-time, all runs):\n");
    std::printf("%-28s %12s %7s\n", "section", "self_ms", "share");
    for (const auto& [name, ns] : profile.sections) {
      std::printf("%-28s %12.1f %6.1f%%\n", name.c_str(),
                  static_cast<double>(ns) / 1e6,
                  profile.total_ns > 0
                      ? 100.0 * static_cast<double>(ns) /
                            static_cast<double>(profile.total_ns)
                      : 0.0);
    }
  }
  return 0;
}

struct DiffState {
  double tolerance_pct = 25.0;
  bool soft = false;
  int regressions = 0;
  int warnings = 0;

  // A wall-time (or section-time) comparison: regression when current
  // exceeds baseline by more than the tolerance.  Sub-millisecond baselines
  // are pure scheduling noise and only ever warn.
  void check_time(const std::string& what, double base, double cur) {
    if (base <= 0.0) return;
    const double ratio = cur / base;
    const bool over = ratio > 1.0 + tolerance_pct / 100.0;
    if (!over) return;
    const bool noise_floor = base < 1.0;
    if (noise_floor) {
      std::printf("WARN  %-40s %10.2f -> %10.2f ms (%.2fx, below noise "
                  "floor)\n",
                  what.c_str(), base, cur, ratio);
      ++warnings;
      return;
    }
    std::printf("%s  %-40s %10.2f -> %10.2f ms (%.2fx > %.0f%% tolerance)\n",
                soft ? "WARN" : "FAIL", what.c_str(), base, cur, ratio,
                tolerance_pct);
    if (soft) {
      ++warnings;
    } else {
      ++regressions;
    }
  }

  void warn_drift(const std::string& what, double base, double cur) {
    std::printf("WARN  %-40s %g -> %g (same-seed metric drift)\n",
                what.c_str(), base, cur);
    ++warnings;
  }
};

int cmd_diff(const std::string& base_path, const std::string& cur_path,
             DiffState st) {
  JsonValue base, cur;
  if (!load_report(base_path, base) || !load_report(cur_path, cur)) return 2;

  // --- schema gate: the reports must describe the same sweep --------------
  const std::string base_bench = base.string_or("bench", "");
  const std::string cur_bench = cur.string_or("bench", "");
  if (base_bench != cur_bench) {
    std::fprintf(stderr,
                 "wgtt-report: bench id mismatch: \"%s\" vs \"%s\"\n",
                 base_bench.c_str(), cur_bench.c_str());
    return 2;
  }
  const auto& base_runs = base.find("runs")->as_array();
  const auto& cur_runs = cur.find("runs")->as_array();
  if (base_runs.size() != cur_runs.size()) {
    std::fprintf(stderr, "wgtt-report: run count mismatch: %zu vs %zu\n",
                 base_runs.size(), cur_runs.size());
    return 2;
  }
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    const std::string bl = base_runs[i].string_or("label", "");
    const std::string cl = cur_runs[i].string_or("label", "");
    if (bl != cl) {
      std::fprintf(stderr,
                   "wgtt-report: run %zu label mismatch: \"%s\" vs \"%s\"\n",
                   i, bl.c_str(), cl.c_str());
      return 2;
    }
  }

  std::printf("diff %s: %s -> %s (tolerance %.0f%%%s)\n", base_bench.c_str(),
              base_path.c_str(), cur_path.c_str(), st.tolerance_pct,
              st.soft ? ", soft" : "");

  // --- deterministic outputs: same seed should mean same numbers ----------
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    const std::string label = base_runs[i].string_or("label", "?");
    const double bg = base_runs[i].number_or("goodput_mbps", 0.0);
    const double cg = cur_runs[i].number_or("goodput_mbps", 0.0);
    if (std::fabs(cg - bg) > 0.01 * std::max(std::fabs(bg), 1e-9)) {
      st.warn_drift(label + " goodput_mbps", bg, cg);
    }
    const double bs = base_runs[i].number_or("switches", 0.0);
    const double cs = cur_runs[i].number_or("switches", 0.0);
    if (bs != cs) st.warn_drift(label + " switches", bs, cs);
  }

  // --- performance: sweep wall, per-run wall, profile sections ------------
  st.check_time("sweep wall_ms", base.number_or("wall_ms", 0.0),
                cur.number_or("wall_ms", 0.0));
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    st.check_time(base_runs[i].string_or("label", "?") + " wall_ms",
                  base_runs[i].number_or("wall_ms", 0.0),
                  cur_runs[i].number_or("wall_ms", 0.0));
  }

  const ProfileTotals base_prof = aggregate_profile(base);
  const ProfileTotals cur_prof = aggregate_profile(cur);
  for (const auto& [name, base_ns] : base_prof.sections) {
    // Sections under 1 % of the baseline total are timer noise; skip them.
    if (base_prof.total_ns <= 0 || base_ns * 100 < base_prof.total_ns) {
      continue;
    }
    std::int64_t cur_ns = 0;
    for (const auto& [cn, cv] : cur_prof.sections) {
      if (cn == name) {
        cur_ns = cv;
        break;
      }
    }
    st.check_time("profile " + name, static_cast<double>(base_ns) / 1e6,
                  static_cast<double>(cur_ns) / 1e6);
  }

  if (st.regressions > 0) {
    std::printf("result: %d regression(s), %d warning(s)\n", st.regressions,
                st.warnings);
    return 1;
  }
  std::printf("result: ok (%d warning(s))\n", st.warnings);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: wgtt-report show FILE\n"
      "       wgtt-report diff BASELINE CURRENT [--tolerance PCT] [--soft]\n"
      "\n"
      "exit codes: 0 ok, 1 performance regression, 2 schema/usage error\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  if (args[0] == "show") {
    if (args.size() != 2) return usage();
    return cmd_show(args[1]);
  }
  if (args[0] == "diff") {
    DiffState st;
    std::vector<std::string> paths;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--soft") {
        st.soft = true;
      } else if (args[i] == "--tolerance") {
        if (i + 1 >= args.size()) return usage();
        st.tolerance_pct = std::atof(args[++i].c_str());
      } else if (args[i].rfind("--tolerance=", 0) == 0) {
        st.tolerance_pct = std::atof(args[i].c_str() + std::strlen("--tolerance="));
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else {
        paths.push_back(args[i]);
      }
    }
    if (paths.size() != 2) return usage();
    return cmd_diff(paths[0], paths[1], st);
  }
  return usage();
}
